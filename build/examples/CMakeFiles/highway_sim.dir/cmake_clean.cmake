file(REMOVE_RECURSE
  "CMakeFiles/highway_sim.dir/highway_sim.cpp.o"
  "CMakeFiles/highway_sim.dir/highway_sim.cpp.o.d"
  "highway_sim"
  "highway_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/highway_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
