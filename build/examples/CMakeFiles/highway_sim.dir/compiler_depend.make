# Empty compiler generated dependencies file for highway_sim.
# This may be replaced when dependencies are built.
