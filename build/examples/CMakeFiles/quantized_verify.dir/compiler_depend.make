# Empty compiler generated dependencies file for quantized_verify.
# This may be replaced when dependencies are built.
