file(REMOVE_RECURSE
  "CMakeFiles/quantized_verify.dir/quantized_verify.cpp.o"
  "CMakeFiles/quantized_verify.dir/quantized_verify.cpp.o.d"
  "quantized_verify"
  "quantized_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quantized_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
