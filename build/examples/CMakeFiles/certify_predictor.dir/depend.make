# Empty dependencies file for certify_predictor.
# This may be replaced when dependencies are built.
