file(REMOVE_RECURSE
  "CMakeFiles/certify_predictor.dir/certify_predictor.cpp.o"
  "CMakeFiles/certify_predictor.dir/certify_predictor.cpp.o.d"
  "certify_predictor"
  "certify_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/certify_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
