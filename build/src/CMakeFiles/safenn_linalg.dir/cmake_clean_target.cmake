file(REMOVE_RECURSE
  "libsafenn_linalg.a"
)
