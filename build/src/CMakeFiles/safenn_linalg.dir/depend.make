# Empty dependencies file for safenn_linalg.
# This may be replaced when dependencies are built.
