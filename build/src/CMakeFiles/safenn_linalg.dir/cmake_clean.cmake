file(REMOVE_RECURSE
  "CMakeFiles/safenn_linalg.dir/linalg/matrix.cpp.o"
  "CMakeFiles/safenn_linalg.dir/linalg/matrix.cpp.o.d"
  "CMakeFiles/safenn_linalg.dir/linalg/vector.cpp.o"
  "CMakeFiles/safenn_linalg.dir/linalg/vector.cpp.o.d"
  "libsafenn_linalg.a"
  "libsafenn_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safenn_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
