file(REMOVE_RECURSE
  "libsafenn_smt.a"
)
