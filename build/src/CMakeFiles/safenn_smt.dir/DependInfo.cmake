
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/smt/bitblast.cpp" "src/CMakeFiles/safenn_smt.dir/smt/bitblast.cpp.o" "gcc" "src/CMakeFiles/safenn_smt.dir/smt/bitblast.cpp.o.d"
  "/root/repo/src/smt/bitvector.cpp" "src/CMakeFiles/safenn_smt.dir/smt/bitvector.cpp.o" "gcc" "src/CMakeFiles/safenn_smt.dir/smt/bitvector.cpp.o.d"
  "/root/repo/src/smt/qnn_encoder.cpp" "src/CMakeFiles/safenn_smt.dir/smt/qnn_encoder.cpp.o" "gcc" "src/CMakeFiles/safenn_smt.dir/smt/qnn_encoder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/safenn_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/safenn_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/safenn_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/safenn_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/safenn_milp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/safenn_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/safenn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
