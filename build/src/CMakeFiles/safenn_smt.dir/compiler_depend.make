# Empty compiler generated dependencies file for safenn_smt.
# This may be replaced when dependencies are built.
