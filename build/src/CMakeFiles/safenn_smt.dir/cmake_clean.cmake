file(REMOVE_RECURSE
  "CMakeFiles/safenn_smt.dir/smt/bitblast.cpp.o"
  "CMakeFiles/safenn_smt.dir/smt/bitblast.cpp.o.d"
  "CMakeFiles/safenn_smt.dir/smt/bitvector.cpp.o"
  "CMakeFiles/safenn_smt.dir/smt/bitvector.cpp.o.d"
  "CMakeFiles/safenn_smt.dir/smt/qnn_encoder.cpp.o"
  "CMakeFiles/safenn_smt.dir/smt/qnn_encoder.cpp.o.d"
  "libsafenn_smt.a"
  "libsafenn_smt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safenn_smt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
