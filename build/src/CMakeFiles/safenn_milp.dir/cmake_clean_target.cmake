file(REMOVE_RECURSE
  "libsafenn_milp.a"
)
