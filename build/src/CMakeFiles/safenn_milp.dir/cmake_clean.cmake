file(REMOVE_RECURSE
  "CMakeFiles/safenn_milp.dir/milp/branch_and_bound.cpp.o"
  "CMakeFiles/safenn_milp.dir/milp/branch_and_bound.cpp.o.d"
  "CMakeFiles/safenn_milp.dir/milp/model.cpp.o"
  "CMakeFiles/safenn_milp.dir/milp/model.cpp.o.d"
  "libsafenn_milp.a"
  "libsafenn_milp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safenn_milp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
