# Empty compiler generated dependencies file for safenn_milp.
# This may be replaced when dependencies are built.
