
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/dataset.cpp" "src/CMakeFiles/safenn_data.dir/data/dataset.cpp.o" "gcc" "src/CMakeFiles/safenn_data.dir/data/dataset.cpp.o.d"
  "/root/repo/src/data/io.cpp" "src/CMakeFiles/safenn_data.dir/data/io.cpp.o" "gcc" "src/CMakeFiles/safenn_data.dir/data/io.cpp.o.d"
  "/root/repo/src/data/schema.cpp" "src/CMakeFiles/safenn_data.dir/data/schema.cpp.o" "gcc" "src/CMakeFiles/safenn_data.dir/data/schema.cpp.o.d"
  "/root/repo/src/data/validation.cpp" "src/CMakeFiles/safenn_data.dir/data/validation.cpp.o" "gcc" "src/CMakeFiles/safenn_data.dir/data/validation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/safenn_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/safenn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
