file(REMOVE_RECURSE
  "libsafenn_data.a"
)
