# Empty compiler generated dependencies file for safenn_data.
# This may be replaced when dependencies are built.
