file(REMOVE_RECURSE
  "CMakeFiles/safenn_data.dir/data/dataset.cpp.o"
  "CMakeFiles/safenn_data.dir/data/dataset.cpp.o.d"
  "CMakeFiles/safenn_data.dir/data/io.cpp.o"
  "CMakeFiles/safenn_data.dir/data/io.cpp.o.d"
  "CMakeFiles/safenn_data.dir/data/schema.cpp.o"
  "CMakeFiles/safenn_data.dir/data/schema.cpp.o.d"
  "CMakeFiles/safenn_data.dir/data/validation.cpp.o"
  "CMakeFiles/safenn_data.dir/data/validation.cpp.o.d"
  "libsafenn_data.a"
  "libsafenn_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safenn_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
