# Empty compiler generated dependencies file for safenn_common.
# This may be replaced when dependencies are built.
