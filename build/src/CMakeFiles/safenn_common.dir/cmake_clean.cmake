file(REMOVE_RECURSE
  "CMakeFiles/safenn_common.dir/common/csv.cpp.o"
  "CMakeFiles/safenn_common.dir/common/csv.cpp.o.d"
  "CMakeFiles/safenn_common.dir/common/log.cpp.o"
  "CMakeFiles/safenn_common.dir/common/log.cpp.o.d"
  "CMakeFiles/safenn_common.dir/common/rng.cpp.o"
  "CMakeFiles/safenn_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/safenn_common.dir/common/stopwatch.cpp.o"
  "CMakeFiles/safenn_common.dir/common/stopwatch.cpp.o.d"
  "libsafenn_common.a"
  "libsafenn_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safenn_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
