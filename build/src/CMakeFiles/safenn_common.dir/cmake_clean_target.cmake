file(REMOVE_RECURSE
  "libsafenn_common.a"
)
