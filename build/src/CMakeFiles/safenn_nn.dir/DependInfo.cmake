
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activation.cpp" "src/CMakeFiles/safenn_nn.dir/nn/activation.cpp.o" "gcc" "src/CMakeFiles/safenn_nn.dir/nn/activation.cpp.o.d"
  "/root/repo/src/nn/layer.cpp" "src/CMakeFiles/safenn_nn.dir/nn/layer.cpp.o" "gcc" "src/CMakeFiles/safenn_nn.dir/nn/layer.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/CMakeFiles/safenn_nn.dir/nn/loss.cpp.o" "gcc" "src/CMakeFiles/safenn_nn.dir/nn/loss.cpp.o.d"
  "/root/repo/src/nn/mdn.cpp" "src/CMakeFiles/safenn_nn.dir/nn/mdn.cpp.o" "gcc" "src/CMakeFiles/safenn_nn.dir/nn/mdn.cpp.o.d"
  "/root/repo/src/nn/network.cpp" "src/CMakeFiles/safenn_nn.dir/nn/network.cpp.o" "gcc" "src/CMakeFiles/safenn_nn.dir/nn/network.cpp.o.d"
  "/root/repo/src/nn/quantize.cpp" "src/CMakeFiles/safenn_nn.dir/nn/quantize.cpp.o" "gcc" "src/CMakeFiles/safenn_nn.dir/nn/quantize.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/CMakeFiles/safenn_nn.dir/nn/serialize.cpp.o" "gcc" "src/CMakeFiles/safenn_nn.dir/nn/serialize.cpp.o.d"
  "/root/repo/src/nn/trainer.cpp" "src/CMakeFiles/safenn_nn.dir/nn/trainer.cpp.o" "gcc" "src/CMakeFiles/safenn_nn.dir/nn/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/safenn_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/safenn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
