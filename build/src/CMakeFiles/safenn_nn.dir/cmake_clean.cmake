file(REMOVE_RECURSE
  "CMakeFiles/safenn_nn.dir/nn/activation.cpp.o"
  "CMakeFiles/safenn_nn.dir/nn/activation.cpp.o.d"
  "CMakeFiles/safenn_nn.dir/nn/layer.cpp.o"
  "CMakeFiles/safenn_nn.dir/nn/layer.cpp.o.d"
  "CMakeFiles/safenn_nn.dir/nn/loss.cpp.o"
  "CMakeFiles/safenn_nn.dir/nn/loss.cpp.o.d"
  "CMakeFiles/safenn_nn.dir/nn/mdn.cpp.o"
  "CMakeFiles/safenn_nn.dir/nn/mdn.cpp.o.d"
  "CMakeFiles/safenn_nn.dir/nn/network.cpp.o"
  "CMakeFiles/safenn_nn.dir/nn/network.cpp.o.d"
  "CMakeFiles/safenn_nn.dir/nn/quantize.cpp.o"
  "CMakeFiles/safenn_nn.dir/nn/quantize.cpp.o.d"
  "CMakeFiles/safenn_nn.dir/nn/serialize.cpp.o"
  "CMakeFiles/safenn_nn.dir/nn/serialize.cpp.o.d"
  "CMakeFiles/safenn_nn.dir/nn/trainer.cpp.o"
  "CMakeFiles/safenn_nn.dir/nn/trainer.cpp.o.d"
  "libsafenn_nn.a"
  "libsafenn_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safenn_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
