file(REMOVE_RECURSE
  "libsafenn_nn.a"
)
