# Empty dependencies file for safenn_nn.
# This may be replaced when dependencies are built.
