# Empty dependencies file for safenn_sat.
# This may be replaced when dependencies are built.
