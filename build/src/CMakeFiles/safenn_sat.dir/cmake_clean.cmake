file(REMOVE_RECURSE
  "CMakeFiles/safenn_sat.dir/sat/cnf.cpp.o"
  "CMakeFiles/safenn_sat.dir/sat/cnf.cpp.o.d"
  "CMakeFiles/safenn_sat.dir/sat/solver.cpp.o"
  "CMakeFiles/safenn_sat.dir/sat/solver.cpp.o.d"
  "libsafenn_sat.a"
  "libsafenn_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safenn_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
