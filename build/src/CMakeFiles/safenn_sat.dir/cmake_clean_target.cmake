file(REMOVE_RECURSE
  "libsafenn_sat.a"
)
