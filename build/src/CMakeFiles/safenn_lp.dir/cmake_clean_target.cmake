file(REMOVE_RECURSE
  "libsafenn_lp.a"
)
