# Empty compiler generated dependencies file for safenn_lp.
# This may be replaced when dependencies are built.
