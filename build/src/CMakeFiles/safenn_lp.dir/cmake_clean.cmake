file(REMOVE_RECURSE
  "CMakeFiles/safenn_lp.dir/lp/problem.cpp.o"
  "CMakeFiles/safenn_lp.dir/lp/problem.cpp.o.d"
  "CMakeFiles/safenn_lp.dir/lp/simplex.cpp.o"
  "CMakeFiles/safenn_lp.dir/lp/simplex.cpp.o.d"
  "libsafenn_lp.a"
  "libsafenn_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safenn_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
