file(REMOVE_RECURSE
  "CMakeFiles/safenn_highway.dir/highway/dataset_builder.cpp.o"
  "CMakeFiles/safenn_highway.dir/highway/dataset_builder.cpp.o.d"
  "CMakeFiles/safenn_highway.dir/highway/idm.cpp.o"
  "CMakeFiles/safenn_highway.dir/highway/idm.cpp.o.d"
  "CMakeFiles/safenn_highway.dir/highway/lane_change.cpp.o"
  "CMakeFiles/safenn_highway.dir/highway/lane_change.cpp.o.d"
  "CMakeFiles/safenn_highway.dir/highway/safety_rules.cpp.o"
  "CMakeFiles/safenn_highway.dir/highway/safety_rules.cpp.o.d"
  "CMakeFiles/safenn_highway.dir/highway/scenario.cpp.o"
  "CMakeFiles/safenn_highway.dir/highway/scenario.cpp.o.d"
  "CMakeFiles/safenn_highway.dir/highway/scene_encoder.cpp.o"
  "CMakeFiles/safenn_highway.dir/highway/scene_encoder.cpp.o.d"
  "CMakeFiles/safenn_highway.dir/highway/simulator.cpp.o"
  "CMakeFiles/safenn_highway.dir/highway/simulator.cpp.o.d"
  "CMakeFiles/safenn_highway.dir/highway/vehicle.cpp.o"
  "CMakeFiles/safenn_highway.dir/highway/vehicle.cpp.o.d"
  "libsafenn_highway.a"
  "libsafenn_highway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safenn_highway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
