file(REMOVE_RECURSE
  "libsafenn_highway.a"
)
