
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/highway/dataset_builder.cpp" "src/CMakeFiles/safenn_highway.dir/highway/dataset_builder.cpp.o" "gcc" "src/CMakeFiles/safenn_highway.dir/highway/dataset_builder.cpp.o.d"
  "/root/repo/src/highway/idm.cpp" "src/CMakeFiles/safenn_highway.dir/highway/idm.cpp.o" "gcc" "src/CMakeFiles/safenn_highway.dir/highway/idm.cpp.o.d"
  "/root/repo/src/highway/lane_change.cpp" "src/CMakeFiles/safenn_highway.dir/highway/lane_change.cpp.o" "gcc" "src/CMakeFiles/safenn_highway.dir/highway/lane_change.cpp.o.d"
  "/root/repo/src/highway/safety_rules.cpp" "src/CMakeFiles/safenn_highway.dir/highway/safety_rules.cpp.o" "gcc" "src/CMakeFiles/safenn_highway.dir/highway/safety_rules.cpp.o.d"
  "/root/repo/src/highway/scenario.cpp" "src/CMakeFiles/safenn_highway.dir/highway/scenario.cpp.o" "gcc" "src/CMakeFiles/safenn_highway.dir/highway/scenario.cpp.o.d"
  "/root/repo/src/highway/scene_encoder.cpp" "src/CMakeFiles/safenn_highway.dir/highway/scene_encoder.cpp.o" "gcc" "src/CMakeFiles/safenn_highway.dir/highway/scene_encoder.cpp.o.d"
  "/root/repo/src/highway/simulator.cpp" "src/CMakeFiles/safenn_highway.dir/highway/simulator.cpp.o" "gcc" "src/CMakeFiles/safenn_highway.dir/highway/simulator.cpp.o.d"
  "/root/repo/src/highway/vehicle.cpp" "src/CMakeFiles/safenn_highway.dir/highway/vehicle.cpp.o" "gcc" "src/CMakeFiles/safenn_highway.dir/highway/vehicle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/safenn_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/safenn_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/safenn_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/safenn_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/safenn_milp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/safenn_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/safenn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
