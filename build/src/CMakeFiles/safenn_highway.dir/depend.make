# Empty dependencies file for safenn_highway.
# This may be replaced when dependencies are built.
