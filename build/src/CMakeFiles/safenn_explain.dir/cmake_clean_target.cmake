file(REMOVE_RECURSE
  "libsafenn_explain.a"
)
