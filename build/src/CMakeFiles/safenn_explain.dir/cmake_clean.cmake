file(REMOVE_RECURSE
  "CMakeFiles/safenn_explain.dir/explain/saliency.cpp.o"
  "CMakeFiles/safenn_explain.dir/explain/saliency.cpp.o.d"
  "CMakeFiles/safenn_explain.dir/explain/traceability.cpp.o"
  "CMakeFiles/safenn_explain.dir/explain/traceability.cpp.o.d"
  "libsafenn_explain.a"
  "libsafenn_explain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safenn_explain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
