# Empty dependencies file for safenn_explain.
# This may be replaced when dependencies are built.
