file(REMOVE_RECURSE
  "libsafenn_verify.a"
)
