
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/verify/input_split.cpp" "src/CMakeFiles/safenn_verify.dir/verify/input_split.cpp.o" "gcc" "src/CMakeFiles/safenn_verify.dir/verify/input_split.cpp.o.d"
  "/root/repo/src/verify/interval.cpp" "src/CMakeFiles/safenn_verify.dir/verify/interval.cpp.o" "gcc" "src/CMakeFiles/safenn_verify.dir/verify/interval.cpp.o.d"
  "/root/repo/src/verify/milp_encoder.cpp" "src/CMakeFiles/safenn_verify.dir/verify/milp_encoder.cpp.o" "gcc" "src/CMakeFiles/safenn_verify.dir/verify/milp_encoder.cpp.o.d"
  "/root/repo/src/verify/property.cpp" "src/CMakeFiles/safenn_verify.dir/verify/property.cpp.o" "gcc" "src/CMakeFiles/safenn_verify.dir/verify/property.cpp.o.d"
  "/root/repo/src/verify/resilience.cpp" "src/CMakeFiles/safenn_verify.dir/verify/resilience.cpp.o" "gcc" "src/CMakeFiles/safenn_verify.dir/verify/resilience.cpp.o.d"
  "/root/repo/src/verify/verifier.cpp" "src/CMakeFiles/safenn_verify.dir/verify/verifier.cpp.o" "gcc" "src/CMakeFiles/safenn_verify.dir/verify/verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/safenn_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/safenn_milp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/safenn_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/safenn_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/safenn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
