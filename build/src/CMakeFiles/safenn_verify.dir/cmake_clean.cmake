file(REMOVE_RECURSE
  "CMakeFiles/safenn_verify.dir/verify/input_split.cpp.o"
  "CMakeFiles/safenn_verify.dir/verify/input_split.cpp.o.d"
  "CMakeFiles/safenn_verify.dir/verify/interval.cpp.o"
  "CMakeFiles/safenn_verify.dir/verify/interval.cpp.o.d"
  "CMakeFiles/safenn_verify.dir/verify/milp_encoder.cpp.o"
  "CMakeFiles/safenn_verify.dir/verify/milp_encoder.cpp.o.d"
  "CMakeFiles/safenn_verify.dir/verify/property.cpp.o"
  "CMakeFiles/safenn_verify.dir/verify/property.cpp.o.d"
  "CMakeFiles/safenn_verify.dir/verify/resilience.cpp.o"
  "CMakeFiles/safenn_verify.dir/verify/resilience.cpp.o.d"
  "CMakeFiles/safenn_verify.dir/verify/verifier.cpp.o"
  "CMakeFiles/safenn_verify.dir/verify/verifier.cpp.o.d"
  "libsafenn_verify.a"
  "libsafenn_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safenn_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
