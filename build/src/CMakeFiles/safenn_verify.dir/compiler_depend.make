# Empty compiler generated dependencies file for safenn_verify.
# This may be replaced when dependencies are built.
