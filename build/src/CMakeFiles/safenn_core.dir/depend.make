# Empty dependencies file for safenn_core.
# This may be replaced when dependencies are built.
