file(REMOVE_RECURSE
  "CMakeFiles/safenn_core.dir/core/certification.cpp.o"
  "CMakeFiles/safenn_core.dir/core/certification.cpp.o.d"
  "CMakeFiles/safenn_core.dir/core/hints.cpp.o"
  "CMakeFiles/safenn_core.dir/core/hints.cpp.o.d"
  "CMakeFiles/safenn_core.dir/core/monitor.cpp.o"
  "CMakeFiles/safenn_core.dir/core/monitor.cpp.o.d"
  "CMakeFiles/safenn_core.dir/core/pipeline.cpp.o"
  "CMakeFiles/safenn_core.dir/core/pipeline.cpp.o.d"
  "CMakeFiles/safenn_core.dir/core/repair.cpp.o"
  "CMakeFiles/safenn_core.dir/core/repair.cpp.o.d"
  "CMakeFiles/safenn_core.dir/core/report.cpp.o"
  "CMakeFiles/safenn_core.dir/core/report.cpp.o.d"
  "libsafenn_core.a"
  "libsafenn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safenn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
