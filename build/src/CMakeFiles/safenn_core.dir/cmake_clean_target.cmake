file(REMOVE_RECURSE
  "libsafenn_core.a"
)
