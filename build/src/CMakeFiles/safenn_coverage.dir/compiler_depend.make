# Empty compiler generated dependencies file for safenn_coverage.
# This may be replaced when dependencies are built.
