file(REMOVE_RECURSE
  "libsafenn_coverage.a"
)
