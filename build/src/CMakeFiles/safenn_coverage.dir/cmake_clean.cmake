file(REMOVE_RECURSE
  "CMakeFiles/safenn_coverage.dir/coverage/mcdc.cpp.o"
  "CMakeFiles/safenn_coverage.dir/coverage/mcdc.cpp.o.d"
  "CMakeFiles/safenn_coverage.dir/coverage/neuron_coverage.cpp.o"
  "CMakeFiles/safenn_coverage.dir/coverage/neuron_coverage.cpp.o.d"
  "libsafenn_coverage.a"
  "libsafenn_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safenn_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
