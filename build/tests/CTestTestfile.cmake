# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_nn[1]_include.cmake")
include("/root/repo/build/tests/test_lp[1]_include.cmake")
include("/root/repo/build/tests/test_milp[1]_include.cmake")
include("/root/repo/build/tests/test_verify[1]_include.cmake")
include("/root/repo/build/tests/test_sat[1]_include.cmake")
include("/root/repo/build/tests/test_smt[1]_include.cmake")
include("/root/repo/build/tests/test_coverage[1]_include.cmake")
include("/root/repo/build/tests/test_explain[1]_include.cmake")
include("/root/repo/build/tests/test_data[1]_include.cmake")
include("/root/repo/build/tests/test_highway[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
