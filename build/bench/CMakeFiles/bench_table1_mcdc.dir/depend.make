# Empty dependencies file for bench_table1_mcdc.
# This may be replaced when dependencies are built.
