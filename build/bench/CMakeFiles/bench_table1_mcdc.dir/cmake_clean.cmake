file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_mcdc.dir/bench_table1_mcdc.cpp.o"
  "CMakeFiles/bench_table1_mcdc.dir/bench_table1_mcdc.cpp.o.d"
  "bench_table1_mcdc"
  "bench_table1_mcdc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_mcdc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
