file(REMOVE_RECURSE
  "CMakeFiles/bench_hints_training.dir/bench_hints_training.cpp.o"
  "CMakeFiles/bench_hints_training.dir/bench_hints_training.cpp.o.d"
  "bench_hints_training"
  "bench_hints_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hints_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
