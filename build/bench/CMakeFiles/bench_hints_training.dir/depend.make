# Empty dependencies file for bench_hints_training.
# This may be replaced when dependencies are built.
