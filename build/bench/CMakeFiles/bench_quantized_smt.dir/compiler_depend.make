# Empty compiler generated dependencies file for bench_quantized_smt.
# This may be replaced when dependencies are built.
