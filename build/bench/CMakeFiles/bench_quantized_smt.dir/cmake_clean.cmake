file(REMOVE_RECURSE
  "CMakeFiles/bench_quantized_smt.dir/bench_quantized_smt.cpp.o"
  "CMakeFiles/bench_quantized_smt.dir/bench_quantized_smt.cpp.o.d"
  "bench_quantized_smt"
  "bench_quantized_smt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_quantized_smt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
