
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_data_validation.cpp" "bench/CMakeFiles/bench_data_validation.dir/bench_data_validation.cpp.o" "gcc" "bench/CMakeFiles/bench_data_validation.dir/bench_data_validation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/safenn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/safenn_highway.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/safenn_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/safenn_coverage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/safenn_explain.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/safenn_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/safenn_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/safenn_milp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/safenn_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/safenn_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/safenn_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/safenn_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/safenn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
