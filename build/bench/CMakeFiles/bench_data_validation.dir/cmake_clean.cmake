file(REMOVE_RECURSE
  "CMakeFiles/bench_data_validation.dir/bench_data_validation.cpp.o"
  "CMakeFiles/bench_data_validation.dir/bench_data_validation.cpp.o.d"
  "bench_data_validation"
  "bench_data_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_data_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
