# Empty dependencies file for bench_fig1_predictor.
# This may be replaced when dependencies are built.
