file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_predictor.dir/bench_fig1_predictor.cpp.o"
  "CMakeFiles/bench_fig1_predictor.dir/bench_fig1_predictor.cpp.o.d"
  "bench_fig1_predictor"
  "bench_fig1_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
