#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "sat/solver.hpp"

namespace safenn::sat {
namespace {

TEST(Cnf, VariableAllocation) {
  Cnf cnf;
  EXPECT_EQ(cnf.new_var(), 1);
  EXPECT_EQ(cnf.new_var(), 2);
  EXPECT_EQ(cnf.new_vars(3), 3);
  EXPECT_EQ(cnf.num_vars(), 5);
}

TEST(Cnf, RejectsUnknownVariables) {
  Cnf cnf;
  cnf.new_var();
  EXPECT_THROW(cnf.add_unit(2), Error);
  EXPECT_THROW(cnf.add_unit(0), Error);
}

TEST(Solver, TrivialSat) {
  Cnf cnf;
  const Var a = cnf.new_var();
  cnf.add_unit(a);
  Solver s;
  ASSERT_EQ(s.solve(cnf), SatResult::kSat);
  EXPECT_TRUE(s.model_value(a));
}

TEST(Solver, TrivialUnsat) {
  Cnf cnf;
  const Var a = cnf.new_var();
  cnf.add_unit(a);
  cnf.add_unit(-a);
  EXPECT_EQ(Solver().solve(cnf), SatResult::kUnsat);
}

TEST(Solver, EmptyClauseIsUnsat) {
  Cnf cnf;
  cnf.new_var();
  cnf.add_clause({});
  EXPECT_EQ(Solver().solve(cnf), SatResult::kUnsat);
}

TEST(Solver, EmptyFormulaIsSat) {
  Cnf cnf;
  cnf.new_vars(3);
  EXPECT_EQ(Solver().solve(cnf), SatResult::kSat);
}

TEST(Solver, ImplicationChainPropagates) {
  // a, a->b, b->c, c->d: all must be true.
  Cnf cnf;
  const Var a = cnf.new_var(), b = cnf.new_var(), c = cnf.new_var(),
            d = cnf.new_var();
  cnf.add_unit(a);
  cnf.add_binary(-a, b);
  cnf.add_binary(-b, c);
  cnf.add_binary(-c, d);
  Solver s;
  ASSERT_EQ(s.solve(cnf), SatResult::kSat);
  EXPECT_TRUE(s.model_value(a));
  EXPECT_TRUE(s.model_value(b));
  EXPECT_TRUE(s.model_value(c));
  EXPECT_TRUE(s.model_value(d));
}

TEST(Solver, XorChainSat) {
  // x1 xor x2 = 1, x2 xor x3 = 1, x1 xor x3 = 0: satisfiable.
  Cnf cnf;
  const Var x1 = cnf.new_var(), x2 = cnf.new_var(), x3 = cnf.new_var();
  auto add_xor = [&](Var p, Var q, bool rhs) {
    if (rhs) {
      cnf.add_binary(p, q);
      cnf.add_binary(-p, -q);
    } else {
      cnf.add_binary(-p, q);
      cnf.add_binary(p, -q);
    }
  };
  add_xor(x1, x2, true);
  add_xor(x2, x3, true);
  add_xor(x1, x3, false);
  Solver s;
  ASSERT_EQ(s.solve(cnf), SatResult::kSat);
  EXPECT_NE(s.model_value(x1), s.model_value(x2));
  EXPECT_EQ(s.model_value(x1), s.model_value(x3));
}

TEST(Solver, XorChainUnsat) {
  // x1 xor x2 = 1, x2 xor x3 = 1, x1 xor x3 = 1: odd cycle, unsat.
  Cnf cnf;
  const Var x1 = cnf.new_var(), x2 = cnf.new_var(), x3 = cnf.new_var();
  auto add_xor1 = [&](Var p, Var q) {
    cnf.add_binary(p, q);
    cnf.add_binary(-p, -q);
  };
  add_xor1(x1, x2);
  add_xor1(x2, x3);
  add_xor1(x1, x3);
  EXPECT_EQ(Solver().solve(cnf), SatResult::kUnsat);
}

/// Pigeonhole principle PHP(n+1, n): n+1 pigeons into n holes, UNSAT.
Cnf pigeonhole(int holes) {
  Cnf cnf;
  const int pigeons = holes + 1;
  // var(p, h): pigeon p sits in hole h.
  std::vector<std::vector<Var>> v(static_cast<std::size_t>(pigeons));
  for (int p = 0; p < pigeons; ++p) {
    for (int h = 0; h < holes; ++h) {
      v[static_cast<std::size_t>(p)].push_back(cnf.new_var());
    }
  }
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> at_least;
    for (int h = 0; h < holes; ++h)
      at_least.push_back(v[static_cast<std::size_t>(p)][static_cast<std::size_t>(h)]);
    cnf.add_clause(at_least);
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        cnf.add_binary(-v[static_cast<std::size_t>(p1)][static_cast<std::size_t>(h)],
                       -v[static_cast<std::size_t>(p2)][static_cast<std::size_t>(h)]);
      }
    }
  }
  return cnf;
}

TEST(Solver, PigeonholeUnsat) {
  for (int holes : {2, 3, 4, 5}) {
    EXPECT_EQ(Solver().solve(pigeonhole(holes)), SatResult::kUnsat)
        << "holes=" << holes;
  }
}

TEST(Solver, AssumptionsRestrictModels) {
  Cnf cnf;
  const Var a = cnf.new_var(), b = cnf.new_var();
  cnf.add_binary(a, b);  // a or b
  Solver s1;
  ASSERT_EQ(s1.solve(cnf, {-a}), SatResult::kSat);
  EXPECT_FALSE(s1.model_value(a));
  EXPECT_TRUE(s1.model_value(b));
  Solver s2;
  EXPECT_EQ(s2.solve(cnf, {-a, -b}), SatResult::kUnsat);
}

TEST(Solver, ConflictBudgetReturnsUnknown) {
  SolverOptions opt;
  opt.max_conflicts = 1;
  const SatResult r = Solver(opt).solve(pigeonhole(6));
  EXPECT_TRUE(r == SatResult::kUnknown || r == SatResult::kUnsat);
}

TEST(Solver, StatsArePopulated) {
  Solver s;
  ASSERT_EQ(s.solve(pigeonhole(4)), SatResult::kUnsat);
  EXPECT_GT(s.stats().conflicts, 0);
  EXPECT_GT(s.stats().propagations, 0);
}

TEST(Solver, TautologyAndDuplicateLiteralsHandled) {
  Cnf cnf;
  const Var a = cnf.new_var(), b = cnf.new_var();
  cnf.add_clause({a, -a});      // tautology: no constraint
  cnf.add_clause({b, b, b});    // same as unit b
  Solver s;
  ASSERT_EQ(s.solve(cnf), SatResult::kSat);
  EXPECT_TRUE(s.model_value(b));
}

/// Reference: brute-force satisfiability check over all assignments.
bool brute_force_sat(const Cnf& cnf) {
  const int n = cnf.num_vars();
  for (std::uint64_t mask = 0; mask < (1ull << n); ++mask) {
    bool ok = true;
    for (const auto& clause : cnf.clauses()) {
      bool clause_sat = false;
      for (Lit l : clause) {
        const bool val = (mask >> (lit_var(l) - 1)) & 1;
        if (val != lit_sign(l)) {
          clause_sat = true;
          break;
        }
      }
      if (!clause_sat) {
        ok = false;
        break;
      }
    }
    if (ok) return true;
  }
  return false;
}

/// Verifies a model against the formula directly.
bool model_satisfies(const Solver& s, const Cnf& cnf) {
  for (const auto& clause : cnf.clauses()) {
    bool clause_sat = false;
    for (Lit l : clause) {
      if (s.model_value(lit_var(l)) != lit_sign(l)) {
        clause_sat = true;
        break;
      }
    }
    if (!clause_sat) return false;
  }
  return true;
}

// Property: random 3-SAT instances near the phase transition, checked
// against exhaustive enumeration.
class Random3Sat : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Random3Sat, AgreesWithBruteForce) {
  Rng rng(GetParam() + 31);
  const int n = 8 + static_cast<int>(rng.uniform_index(6));  // 8..13 vars
  const int m = static_cast<int>(4.3 * n);                   // near transition
  Cnf cnf;
  cnf.new_vars(n);
  for (int i = 0; i < m; ++i) {
    std::vector<Lit> clause;
    while (clause.size() < 3) {
      const Var v = 1 + static_cast<Var>(rng.uniform_index(
                            static_cast<std::uint64_t>(n)));
      const Lit l = rng.bernoulli(0.5) ? v : -v;
      bool dup = false;
      for (Lit existing : clause) {
        if (lit_var(existing) == v) dup = true;
      }
      if (!dup) clause.push_back(l);
    }
    cnf.add_clause(clause);
  }
  Solver s;
  const SatResult got = s.solve(cnf);
  const bool expected = brute_force_sat(cnf);
  ASSERT_NE(got, SatResult::kUnknown);
  EXPECT_EQ(got == SatResult::kSat, expected) << "seed " << GetParam();
  if (got == SatResult::kSat) {
    EXPECT_TRUE(model_satisfies(s, cnf)) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Random3Sat,
                         ::testing::Range<std::uint64_t>(0, 30));

}  // namespace
}  // namespace safenn::sat
