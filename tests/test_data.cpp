#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "data/dataset.hpp"
#include "data/schema.hpp"
#include "data/validation.hpp"

namespace safenn::data {
namespace {

using linalg::Vector;

Dataset make_toy(std::size_t n = 10) {
  Dataset d(2, 1);
  for (std::size_t i = 0; i < n; ++i) {
    const double v = static_cast<double>(i);
    d.add(Vector{v, -v}, Vector{2.0 * v});
  }
  return d;
}

TEST(Dataset, AddAndAccess) {
  Dataset d = make_toy(3);
  EXPECT_EQ(d.size(), 3u);
  EXPECT_EQ(d.input_dim(), 2u);
  EXPECT_EQ(d.target_dim(), 1u);
  EXPECT_DOUBLE_EQ(d.input(1)[0], 1.0);
  EXPECT_DOUBLE_EQ(d.target(2)[0], 4.0);
}

TEST(Dataset, RejectsDimensionMismatch) {
  Dataset d(2, 1);
  EXPECT_THROW(d.add(Vector{1.0}, Vector{1.0}), Error);
  EXPECT_THROW(d.add(Vector{1.0, 2.0}, Vector{1.0, 2.0}), Error);
  EXPECT_THROW(d.input(0), Error);
}

TEST(Dataset, SplitPreservesOrderAndCounts) {
  Dataset d = make_toy(10);
  auto [train, test] = d.split(0.8);
  EXPECT_EQ(train.size(), 8u);
  EXPECT_EQ(test.size(), 2u);
  EXPECT_DOUBLE_EQ(test.input(0)[0], 8.0);
}

TEST(Dataset, ShuffleKeepsPairsAligned) {
  Dataset d = make_toy(50);
  Rng rng(1);
  d.shuffle(rng);
  for (std::size_t i = 0; i < d.size(); ++i) {
    // Invariant from construction: target == 2 * input[0].
    EXPECT_DOUBLE_EQ(d.target(i)[0], 2.0 * d.input(i)[0]);
  }
}

TEST(Dataset, SubsetSelectsIndices) {
  Dataset d = make_toy(5);
  Dataset s = d.subset({0, 3});
  EXPECT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.input(1)[0], 3.0);
  EXPECT_THROW(d.subset({99}), Error);
}

TEST(Dataset, InputRange) {
  Dataset d = make_toy(4);
  auto [lo, hi] = d.input_range();
  EXPECT_DOUBLE_EQ(lo[0], 0.0);
  EXPECT_DOUBLE_EQ(hi[0], 3.0);
  EXPECT_DOUBLE_EQ(lo[1], -3.0);
  EXPECT_DOUBLE_EQ(hi[1], 0.0);
  EXPECT_THROW(Dataset(2, 1).input_range(), Error);
}

TEST(Schema, NamesAndGroups) {
  FeatureSchema s;
  EXPECT_EQ(s.add("speed", "ego"), 0u);
  EXPECT_EQ(s.add("gap", "neighbor"), 1u);
  EXPECT_EQ(s.add("rel_speed", "neighbor"), 2u);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.index_of("gap"), 1u);
  EXPECT_TRUE(s.contains("speed"));
  EXPECT_FALSE(s.contains("nope"));
  EXPECT_THROW(s.index_of("nope"), Error);
  EXPECT_THROW(s.add("speed", "dup"), Error);
  const auto nb = s.group_indices("neighbor");
  ASSERT_EQ(nb.size(), 2u);
  EXPECT_EQ(nb[0], 1u);
  EXPECT_EQ(s.names()[2], "rel_speed");
}

TEST(Validator, TargetBoundRule) {
  Validator v;
  v.add_rule(Validator::target_bound("lat-bound", 0, -2.0, 2.0));
  Dataset d(1, 1);
  d.add(Vector{0.0}, Vector{1.0});   // clean
  d.add(Vector{0.0}, Vector{3.0});   // violates
  d.add(Vector{0.0}, Vector{-2.5});  // violates
  const ValidationReport report = v.validate(d);
  EXPECT_EQ(report.samples_checked, 3u);
  EXPECT_EQ(report.samples_clean, 1u);
  EXPECT_EQ(report.rules[0].violations, 2u);
  EXPECT_FALSE(report.all_clean());
  EXPECT_EQ(report.total_violations(), 2u);
}

TEST(Validator, InputBoundRule) {
  Validator v;
  v.add_rule(Validator::input_bound("x0-range", 0, 0.0, 1.0));
  Dataset d(1, 1);
  d.add(Vector{0.5}, Vector{0.0});
  d.add(Vector{1.5}, Vector{0.0});
  EXPECT_EQ(v.validate(d).samples_clean, 1u);
}

TEST(Validator, ConditionalRuleOnlyFiresWhenConditionHolds) {
  // The paper's rule shape: when input[0] > 0.5 ("vehicle on left"), the
  // target must stay <= 1.0.
  Validator v;
  v.add_rule(Validator::conditional_target_max(
      "no-risky-left", [](const Vector& x) { return x[0] > 0.5; }, 0, 1.0));
  Dataset d(1, 1);
  d.add(Vector{0.9}, Vector{2.0});  // condition + violation
  d.add(Vector{0.1}, Vector{2.0});  // no condition: clean
  d.add(Vector{0.9}, Vector{0.5});  // condition, safe label: clean
  const ValidationReport report = v.validate(d);
  EXPECT_EQ(report.rules[0].violations, 1u);
  EXPECT_EQ(report.rules[0].violating_indices[0], 0u);
}

TEST(Validator, SanitizeRemovesExactlyTheViolators) {
  Validator v;
  v.add_rule(Validator::target_bound("bound", 0, -1.0, 1.0));
  Dataset d(1, 1);
  for (int i = 0; i < 10; ++i) {
    d.add(Vector{static_cast<double>(i)},
          Vector{i % 3 == 0 ? 5.0 : 0.5});  // every 3rd is dirty
  }
  auto [clean, report] = v.sanitize(d);
  EXPECT_EQ(clean.size(), 6u);
  EXPECT_EQ(report.samples_clean, 6u);
  for (std::size_t i = 0; i < clean.size(); ++i) {
    EXPECT_LE(clean.target(i)[0], 1.0);
  }
}

TEST(Validator, MultipleRulesIntersect) {
  Validator v;
  v.add_rule(Validator::target_bound("t", 0, -1.0, 1.0));
  v.add_rule(Validator::input_bound("i", 0, 0.0, 5.0));
  Dataset d(1, 1);
  d.add(Vector{2.0}, Vector{0.0});   // clean
  d.add(Vector{9.0}, Vector{0.0});   // input violation
  d.add(Vector{2.0}, Vector{9.0});   // target violation
  d.add(Vector{9.0}, Vector{9.0});   // both
  const ValidationReport report = v.validate(d);
  EXPECT_EQ(report.samples_clean, 1u);
  EXPECT_EQ(report.rules[0].violations, 2u);
  EXPECT_EQ(report.rules[1].violations, 2u);
  auto [clean, r2] = v.sanitize(d);
  EXPECT_EQ(clean.size(), 1u);
}

TEST(Validator, ReportRenders) {
  Validator v;
  v.add_rule(Validator::target_bound("my-rule", 0, 0.0, 1.0));
  Dataset d(1, 1);
  d.add(Vector{0.0}, Vector{0.5});
  const std::string text = v.validate(d).render();
  EXPECT_NE(text.find("my-rule"), std::string::npos);
  EXPECT_NE(text.find("PASS"), std::string::npos);
}

TEST(Validator, RecordedIndicesCapped) {
  Validator v(4);  // cap at 4 recorded indices
  v.add_rule(Validator::target_bound("b", 0, -1.0, 1.0));
  Dataset d(1, 1);
  for (int i = 0; i < 20; ++i) d.add(Vector{0.0}, Vector{5.0});
  const ValidationReport report = v.validate(d);
  EXPECT_EQ(report.rules[0].violations, 20u);
  EXPECT_EQ(report.rules[0].violating_indices.size(), 4u);
}

TEST(Validator, RejectsMalformedRules) {
  Validator v;
  EXPECT_THROW(v.add_rule(ValidationRule{"", "", nullptr}), Error);
  EXPECT_THROW(v.add_rule(ValidationRule{"named", "", nullptr}), Error);
}

}  // namespace
}  // namespace safenn::data

// ---------------------------------------------------------------------------
// CSV dataset I/O (appended suite).
// ---------------------------------------------------------------------------
#include <sstream>

#include "data/io.hpp"

namespace safenn::data {
namespace {

TEST(DatasetIo, RoundTripPreservesValues) {
  Dataset d(3, 2);
  Rng rng(1);
  for (int i = 0; i < 25; ++i) {
    linalg::Vector x(3), y(2);
    for (auto& v : x) v = rng.normal();
    for (auto& v : y) v = rng.normal();
    d.add(std::move(x), std::move(y));
  }
  std::stringstream ss;
  save_dataset_csv(ss, d);
  const Dataset back = load_dataset_csv(ss, 2);
  ASSERT_EQ(back.size(), d.size());
  ASSERT_EQ(back.input_dim(), 3u);
  ASSERT_EQ(back.target_dim(), 2u);
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_TRUE(linalg::approx_equal(back.input(i), d.input(i), 1e-12));
    EXPECT_TRUE(linalg::approx_equal(back.target(i), d.target(i), 1e-12));
  }
}

TEST(DatasetIo, HeaderUsesSchemaNames) {
  FeatureSchema schema;
  schema.add("speed", "ego");
  schema.add("gap", "nb");
  Dataset d(2, 1);
  d.add(linalg::Vector{1.0, 2.0}, linalg::Vector{3.0});
  std::stringstream ss;
  save_dataset_csv(ss, d, &schema);
  std::string header;
  std::getline(ss, header);
  EXPECT_EQ(header, "speed,gap,y0");
}

TEST(DatasetIo, RejectsEmptyAndRagged) {
  std::stringstream empty("");
  EXPECT_THROW(load_dataset_csv(empty, 1), Error);
  std::stringstream ragged("x0,x1,y0\n1,2,3\n1,2\n");
  EXPECT_THROW(load_dataset_csv(ragged, 1), Error);
  std::stringstream non_numeric("x0,y0\nhello,3\n");
  EXPECT_THROW(load_dataset_csv(non_numeric, 1), Error);
}

TEST(DatasetIo, FileRoundTrip) {
  Dataset d(1, 1);
  d.add(linalg::Vector{0.5}, linalg::Vector{-0.25});
  const std::string path = "/tmp/safenn_test_dataset.csv";
  save_dataset_csv_file(path, d);
  const Dataset back = load_dataset_csv_file(path, 1);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_DOUBLE_EQ(back.input(0)[0], 0.5);
  EXPECT_DOUBLE_EQ(back.target(0)[0], -0.25);
}

}  // namespace
}  // namespace safenn::data
