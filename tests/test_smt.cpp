#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "nn/quantize.hpp"
#include "smt/bitvector.hpp"
#include "smt/qnn_encoder.hpp"

namespace safenn::smt {
namespace {

using linalg::Vector;
using nn::Activation;
using nn::Network;
using sat::SatResult;
using sat::Solver;

TEST(Gates, ConstantsFold) {
  sat::Cnf cnf;
  GateBuilder g(cnf);
  EXPECT_EQ(g.land(g.true_lit(), g.true_lit()), g.true_lit());
  EXPECT_EQ(g.land(g.true_lit(), g.false_lit()), g.false_lit());
  EXPECT_EQ(g.lor(g.false_lit(), g.false_lit()), g.false_lit());
  EXPECT_EQ(g.lxor(g.true_lit(), g.true_lit()), g.false_lit());
  EXPECT_EQ(g.lxor(g.true_lit(), g.false_lit()), g.true_lit());
  const sat::Lit a = cnf.new_var();
  EXPECT_EQ(g.land(g.true_lit(), a), a);
  EXPECT_EQ(g.lxor(g.false_lit(), a), a);
  EXPECT_EQ(g.lxor(g.true_lit(), a), -a);
  EXPECT_EQ(g.mux(g.true_lit(), a, g.false_lit()), a);
}

TEST(Gates, TruthTablesViaSat) {
  // For every gate and every input combination, assert inputs and check
  // the output literal is forced to the expected value.
  for (int av = 0; av <= 1; ++av) {
    for (int bv = 0; bv <= 1; ++bv) {
      sat::Cnf cnf;
      GateBuilder g(cnf);
      const sat::Lit a = cnf.new_var();
      const sat::Lit b = cnf.new_var();
      const sat::Lit and_ab = g.land(a, b);
      const sat::Lit or_ab = g.lor(a, b);
      const sat::Lit xor_ab = g.lxor(a, b);
      g.assert_true(av ? a : -a);
      g.assert_true(bv ? b : -b);
      Solver s;
      ASSERT_EQ(s.solve(cnf), SatResult::kSat);
      auto lit_value = [&s](sat::Lit l) {
        const bool var_val = s.model_value(sat::lit_var(l));
        return sat::lit_sign(l) ? !var_val : var_val;
      };
      EXPECT_EQ(lit_value(and_ab), av && bv);
      EXPECT_EQ(lit_value(or_ab), av || bv);
      EXPECT_EQ(lit_value(xor_ab), (av ^ bv) != 0);
    }
  }
}

/// Helper: evaluate a constant circuit expression via one SAT call.
std::int64_t eval_const_expr(
    const std::function<BitVec(BitVecBuilder&)>& build) {
  sat::Cnf cnf;
  GateBuilder g(cnf);
  BitVecBuilder bv(g);
  const BitVec result = build(bv);
  Solver s;
  // Constant circuits still need the true-literal unit to be solvable.
  if (s.solve(cnf) != SatResult::kSat) {
    ADD_FAILURE() << "constant circuit unsatisfiable";
    return 0;
  }
  return bv.decode(result, s);
}

TEST(BitVector, ConstantRoundTrip) {
  for (std::int64_t v : {0ll, 1ll, -1ll, 5ll, -7ll, 100ll, -128ll, 127ll}) {
    const std::int64_t got = eval_const_expr(
        [&](BitVecBuilder& bv) { return bv.constant(v, 9); });
    EXPECT_EQ(got, v);
  }
}

TEST(BitVector, BitsForMagnitude) {
  EXPECT_EQ(bits_for_magnitude(0), 1u);
  EXPECT_EQ(bits_for_magnitude(1), 2u);
  EXPECT_EQ(bits_for_magnitude(127), 8u);
  EXPECT_EQ(bits_for_magnitude(128), 9u);
}

TEST(BitVector, AdditionOnConstants) {
  Rng rng(1);
  for (int trial = 0; trial < 40; ++trial) {
    const std::int64_t a = static_cast<std::int64_t>(rng.uniform(-500, 500));
    const std::int64_t b = static_cast<std::int64_t>(rng.uniform(-500, 500));
    const std::int64_t got = eval_const_expr([&](BitVecBuilder& bv) {
      return bv.add(bv.constant(a, 12), bv.constant(b, 12));
    });
    EXPECT_EQ(got, a + b) << a << " + " << b;
  }
}

TEST(BitVector, SubtractionAndNegation) {
  Rng rng(2);
  for (int trial = 0; trial < 40; ++trial) {
    const std::int64_t a = static_cast<std::int64_t>(rng.uniform(-500, 500));
    const std::int64_t b = static_cast<std::int64_t>(rng.uniform(-500, 500));
    EXPECT_EQ(eval_const_expr([&](BitVecBuilder& bv) {
                return bv.sub(bv.constant(a, 12), bv.constant(b, 12));
              }),
              a - b);
    EXPECT_EQ(eval_const_expr([&](BitVecBuilder& bv) {
                return bv.negate(bv.constant(a, 12));
              }),
              -a);
  }
}

TEST(BitVector, ConstantMultiplication) {
  Rng rng(3);
  for (int trial = 0; trial < 60; ++trial) {
    const std::int64_t a = static_cast<std::int64_t>(rng.uniform(-60, 60));
    const std::int64_t c = static_cast<std::int64_t>(rng.uniform(-60, 60));
    const std::int64_t got = eval_const_expr([&](BitVecBuilder& bv) {
      return bv.mul_const(bv.constant(a, 8), c, 16);
    });
    EXPECT_EQ(got, a * c) << a << " * " << c;
  }
}

TEST(BitVector, ArithmeticShiftRightIsFloorDivision) {
  for (std::int64_t v : {37ll, -37ll, 64ll, -64ll, 1ll, -1ll, 0ll, -100ll}) {
    for (std::size_t k : {1u, 2u, 4u}) {
      const std::int64_t got = eval_const_expr([&](BitVecBuilder& bv) {
        return bv.ashr(bv.constant(v, 12), k);
      });
      // Arithmetic shift = floor division by 2^k, including negatives.
      const std::int64_t expected = static_cast<std::int64_t>(
          std::floor(static_cast<double>(v) / std::ldexp(1.0, static_cast<int>(k))));
      EXPECT_EQ(got, expected) << v << " >> " << k;
    }
  }
}

TEST(BitVector, ReluSemantics) {
  for (std::int64_t v : {17ll, -17ll, 0ll, -1ll, 255ll}) {
    const std::int64_t got = eval_const_expr([&](BitVecBuilder& bv) {
      return bv.relu(bv.constant(v, 10));
    });
    EXPECT_EQ(got, std::max<std::int64_t>(0, v)) << v;
  }
}

TEST(BitVector, SignedComparisons) {
  Rng rng(4);
  for (int trial = 0; trial < 40; ++trial) {
    const std::int64_t a = static_cast<std::int64_t>(rng.uniform(-200, 200));
    const std::int64_t b = static_cast<std::int64_t>(rng.uniform(-200, 200));
    sat::Cnf cnf;
    GateBuilder g(cnf);
    BitVecBuilder bv(g);
    const sat::Lit lt = bv.less_than(bv.constant(a, 10), bv.constant(b, 10));
    // Constant folding may make this a constant literal.
    if (g.is_const(lt)) {
      EXPECT_EQ(g.const_value(lt), a < b);
    } else {
      Solver s;
      ASSERT_EQ(s.solve(cnf), SatResult::kSat);
      const bool val = sat::lit_sign(lt) ? !s.model_value(sat::lit_var(lt))
                                         : s.model_value(sat::lit_var(lt));
      EXPECT_EQ(val, a < b) << a << " < " << b;
    }
  }
}

TEST(BitVector, RangeAssertionRestrictsInputs) {
  sat::Cnf cnf;
  GateBuilder g(cnf);
  BitVecBuilder bv(g);
  const BitVec x = bv.input(10);
  bv.assert_in_range(x, -3, 5);
  // Force x > 5: must be UNSAT.
  g.assert_true(bv.less_than(bv.constant(5, 11), bv.sign_extend(x, 11)));
  EXPECT_EQ(Solver().solve(cnf), SatResult::kUnsat);
}

/// Builds a small random ReLU network and its quantization.
nn::QuantizedNetwork small_qnet(std::uint64_t seed, int frac_bits,
                                Network* out_net = nullptr) {
  Rng rng(seed);
  Network net = Network::make_mlp({2, 4, 2}, Activation::kRelu,
                                  Activation::kIdentity, rng);
  nn::QuantizedNetwork q = nn::QuantizedNetwork::quantize(net, frac_bits);
  if (out_net) *out_net = std::move(net);
  return q;
}

// The pivotal equivalence property: the SAT circuit reproduces the exact
// integer semantics of QuantizedNetwork::forward_fixed. We check it
// indirectly: the prove-query must agree with exhaustive input sampling.
class QnnSoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QnnSoundness, ProveAgreesWithExhaustiveCheck) {
  const int frac_bits = 3;  // coarse grid keeps exhaustive check feasible
  const nn::QuantizedNetwork q = small_qnet(GetParam(), frac_bits);
  verify::Box box(2, verify::Interval{-1.0, 1.0});

  // Exhaustive scan of the quantized input lattice.
  const std::int64_t lo = q.to_fixed(-1.0), hi = q.to_fixed(1.0);
  double true_max = -1e100;
  for (std::int64_t i = lo; i <= hi; ++i) {
    for (std::int64_t j = lo; j <= hi; ++j) {
      const auto out = q.forward_fixed({i, j});
      true_max = std::max(true_max, q.from_fixed(out[0]));
    }
  }

  // Property with threshold above the true maximum must be UNSAT (proved).
  {
    const QnnVerdict v = prove_quantized_output_bound(
        q, box, 0, true_max + 0.5);
    EXPECT_EQ(v.sat, SatResult::kUnsat) << "seed " << GetParam();
  }
  // Threshold strictly below the true maximum must yield a counterexample.
  {
    const QnnVerdict v = prove_quantized_output_bound(
        q, box, 0, true_max - 0.26);
    ASSERT_EQ(v.sat, SatResult::kSat) << "seed " << GetParam();
    ASSERT_TRUE(v.counterexample.has_value());
    // Counterexample must be inside the box and actually exceed the bound.
    const Vector& x = *v.counterexample;
    EXPECT_GE(x[0], -1.0 - 1e-9);
    EXPECT_LE(x[0], 1.0 + 1e-9);
    EXPECT_GT(v.output_value, true_max - 0.26);
    // And the reported output value must match a replay of the quantized
    // network at the witness.
    EXPECT_NEAR(q.forward_real(x)[0], v.output_value, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QnnSoundness,
                         ::testing::Range<std::uint64_t>(0, 6));

TEST(QnnEncoder, BinarySearchFindsMaximum) {
  const int frac_bits = 3;
  const nn::QuantizedNetwork q = small_qnet(99, frac_bits);
  verify::Box box(2, verify::Interval{-1.0, 1.0});

  const std::int64_t lo = q.to_fixed(-1.0), hi = q.to_fixed(1.0);
  double true_max = -1e100;
  for (std::int64_t i = lo; i <= hi; ++i) {
    for (std::int64_t j = lo; j <= hi; ++j) {
      const auto out = q.forward_fixed({i, j});
      true_max = std::max(true_max, q.from_fixed(out[0]));
    }
  }

  const QnnMaxResult r =
      maximize_quantized_output(q, box, 0, true_max - 4.0, true_max + 4.0);
  EXPECT_TRUE(r.exact);
  EXPECT_NEAR(r.max_value, true_max, std::ldexp(1.0, -frac_bits) + 1e-9);
  EXPECT_GT(r.probes, 0);
}

TEST(QnnEncoder, ReportsCnfSize) {
  const nn::QuantizedNetwork q = small_qnet(5, 4);
  verify::Box box(2, verify::Interval{-1.0, 1.0});
  const QnnVerdict v = prove_quantized_output_bound(q, box, 0, 1000.0);
  EXPECT_GT(v.cnf_variables, 10);
  EXPECT_GT(v.cnf_clauses, 10u);
  EXPECT_EQ(v.sat, SatResult::kUnsat);  // bound far above anything reachable
}

TEST(QnnEncoder, RejectsBadOutputIndex) {
  const nn::QuantizedNetwork q = small_qnet(6, 4);
  verify::Box box(2, verify::Interval{-1.0, 1.0});
  EXPECT_THROW(prove_quantized_output_bound(q, box, 7, 0.0), safenn::Error);
}

TEST(QnnEncoder, CnfReplayBitwiseMatchesForwardFixed) {
  // The serving replay gate: pin the inputs, solve, decode — the CNF
  // circuit must reproduce forward_fixed bit for bit on every lattice
  // point we throw at it, across several networks.
  for (const std::uint64_t seed : {1u, 7u, 23u}) {
    const int frac_bits = 4;
    const nn::QuantizedNetwork q = small_qnet(seed, frac_bits);
    Rng rng(seed * 31 + 5);
    const std::int64_t lo = q.to_fixed(-1.0), hi = q.to_fixed(1.0);
    for (int trial = 0; trial < 8; ++trial) {
      std::vector<std::int64_t> in(q.input_size());
      for (auto& v : in) {
        v = lo + static_cast<std::int64_t>(
                     rng.uniform_index(static_cast<std::uint64_t>(hi - lo + 1)));
      }
      EXPECT_EQ(eval_quantized_through_cnf(q, in), q.forward_fixed(in))
          << "seed " << seed << " trial " << trial;
    }
  }
}

TEST(QnnEncoder, CnfReplayRejectsDimensionMismatch) {
  const nn::QuantizedNetwork q = small_qnet(6, 4);
  EXPECT_THROW(eval_quantized_through_cnf(q, {1, 2, 3}), safenn::Error);
}

}  // namespace
}  // namespace safenn::smt
