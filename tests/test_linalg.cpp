#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "linalg/aligned.hpp"
#include "linalg/kernels.hpp"
#include "linalg/matrix.hpp"
#include "linalg/qmatrix.hpp"
#include "linalg/vector.hpp"
#include "linalg/verify_kernels.hpp"

namespace safenn::linalg {
namespace {

TEST(Vector, ConstructionAndAccess) {
  Vector v(3, 1.5);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[0], 1.5);
  v[1] = -2.0;
  EXPECT_DOUBLE_EQ(v[1], -2.0);
}

TEST(Vector, InitializerList) {
  Vector v{1.0, 2.0, 3.0};
  EXPECT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[2], 3.0);
}

TEST(Vector, OutOfRangeThrows) {
  Vector v(2);
  EXPECT_THROW(v[2], Error);
  const Vector& cv = v;
  EXPECT_THROW(cv[5], Error);
}

TEST(Vector, Arithmetic) {
  Vector a{1.0, 2.0};
  Vector b{3.0, -1.0};
  EXPECT_TRUE(approx_equal(a + b, Vector{4.0, 1.0}));
  EXPECT_TRUE(approx_equal(a - b, Vector{-2.0, 3.0}));
  EXPECT_TRUE(approx_equal(2.0 * a, Vector{2.0, 4.0}));
  EXPECT_TRUE(approx_equal(a * 0.5, Vector{0.5, 1.0}));
}

TEST(Vector, SizeMismatchThrows) {
  Vector a(2), b(3);
  EXPECT_THROW(a += b, Error);
  EXPECT_THROW(a.dot(b), Error);
  EXPECT_THROW(hadamard(a, b), Error);
}

TEST(Vector, DotAndNorms) {
  Vector a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.dot(a), 25.0);
  EXPECT_DOUBLE_EQ(a.norm2(), 5.0);
  EXPECT_DOUBLE_EQ(a.norm_inf(), 4.0);
  Vector b{-7.0, 2.0};
  EXPECT_DOUBLE_EQ(b.norm_inf(), 7.0);
}

TEST(Vector, AddScaled) {
  Vector a{1.0, 1.0};
  Vector b{2.0, -2.0};
  a.add_scaled(0.5, b);
  EXPECT_TRUE(approx_equal(a, Vector{2.0, 0.0}));
}

TEST(Vector, Reductions) {
  Vector v{-1.0, 5.0, 2.0};
  EXPECT_DOUBLE_EQ(v.sum(), 6.0);
  EXPECT_DOUBLE_EQ(v.max(), 5.0);
  EXPECT_DOUBLE_EQ(v.min(), -1.0);
  EXPECT_EQ(v.argmax(), 1u);
}

TEST(Vector, EmptyReductionsThrow) {
  Vector v;
  EXPECT_THROW(v.max(), Error);
  EXPECT_THROW(v.min(), Error);
  EXPECT_THROW(v.argmax(), Error);
}

TEST(Vector, Hadamard) {
  Vector a{2.0, 3.0};
  Vector b{4.0, -1.0};
  EXPECT_TRUE(approx_equal(hadamard(a, b), Vector{8.0, -3.0}));
}

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3, 0.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 0.5);
  m.at(0, 0) = 7.0;
  EXPECT_DOUBLE_EQ(m(0, 0), 7.0);
}

TEST(Matrix, InitializerListAndRagged) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), Error);
}

TEST(Matrix, AtBoundsChecked) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), Error);
  EXPECT_THROW(m.at(0, 2), Error);
}

TEST(Matrix, Matvec) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  Vector x{1.0, -1.0};
  EXPECT_TRUE(approx_equal(m.matvec(x), Vector{-1.0, -1.0, -1.0}));
  EXPECT_THROW(m.matvec(Vector(3)), Error);
}

TEST(Matrix, MatvecTransposed) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  Vector y{1.0, 0.0, -1.0};
  // m^T y = [1-5, 2-6] = [-4, -4]
  EXPECT_TRUE(approx_equal(m.matvec_transposed(y), Vector{-4.0, -4.0}));
}

TEST(Matrix, TransposedConsistentWithMatvec) {
  Rng rng(3);
  Matrix m(4, 6);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 6; ++c) m(r, c) = rng.normal();
  Vector y(4);
  for (std::size_t i = 0; i < 4; ++i) y[i] = rng.normal();
  EXPECT_TRUE(
      approx_equal(m.matvec_transposed(y), m.transposed().matvec(y), 1e-12));
}

TEST(Matrix, MatrixProduct) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{0.0, 1.0}, {1.0, 0.0}};
  Matrix c = a * b;
  EXPECT_TRUE(approx_equal(c, Matrix{{2.0, 1.0}, {4.0, 3.0}}));
}

TEST(Matrix, IdentityIsNeutral) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_TRUE(approx_equal(a * Matrix::identity(2), a));
  EXPECT_TRUE(approx_equal(Matrix::identity(2) * a, a));
}

TEST(Matrix, AddOuter) {
  Matrix m(2, 2);
  m.add_outer(2.0, Vector{1.0, 0.0}, Vector{3.0, 4.0});
  EXPECT_TRUE(approx_equal(m, Matrix{{6.0, 8.0}, {0.0, 0.0}}));
}

TEST(Matrix, AddScaledAndScale) {
  Matrix a{{1.0, 1.0}, {1.0, 1.0}};
  Matrix b{{1.0, 2.0}, {3.0, 4.0}};
  a.add_scaled(2.0, b);
  EXPECT_TRUE(approx_equal(a, Matrix{{3.0, 5.0}, {7.0, 9.0}}));
  a *= 0.0;
  EXPECT_DOUBLE_EQ(a.norm_inf(), 0.0);
}

TEST(Matrix, RowColExtraction) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_TRUE(approx_equal(m.row(1), Vector{3.0, 4.0}));
  EXPECT_TRUE(approx_equal(m.col(0), Vector{1.0, 3.0}));
  EXPECT_THROW(m.row(2), Error);
  EXPECT_THROW(m.col(2), Error);
}

namespace {

Matrix random_matrix(Rng& rng, std::size_t rows, std::size_t cols) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.normal();
  return m;
}

/// Reference GEMM: naive triple loop, ascending k — the rounding the
/// blocked kernels promise to reproduce exactly.
Matrix naive_product(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) acc += a(i, k) * b(k, j);
      c(i, j) = acc;
    }
  }
  return c;
}

}  // namespace

TEST(Matrix, Resize) {
  Matrix m(2, 3, 1.0);
  m.resize(5, 4);
  EXPECT_EQ(m.rows(), 5u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 20u);
  m.fill(2.0);
  EXPECT_DOUBLE_EQ(m(4, 3), 2.0);
  m.resize(1, 2);  // shrink keeps a valid dense layout
  EXPECT_EQ(m.size(), 2u);
}

TEST(Matrix, GemmMatchesNaiveTripleLoop) {
  // Shapes straddling the kKc=64 K-panel boundary and the kJr=4 register
  // tile: bitwise equality against the naive ascending-k reference.
  const std::size_t shapes[][3] = {{1, 1, 1},   {3, 5, 2},   {7, 63, 9},
                                   {4, 64, 4},  {5, 65, 6},  {2, 130, 3},
                                   {33, 84, 15}};
  Rng rng(17);
  for (const auto& s : shapes) {
    const Matrix a = random_matrix(rng, s[0], s[1]);
    const Matrix b = random_matrix(rng, s[1], s[2]);
    const Matrix expected = naive_product(a, b);
    const Matrix got = Matrix::gemm(a, b);
    ASSERT_EQ(got.rows(), expected.rows());
    ASSERT_EQ(got.cols(), expected.cols());
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got.data()[i], expected.data()[i])
          << "entry " << i << " of " << s[0] << "x" << s[1] << "*" << s[1]
          << "x" << s[2];
    }
    // operator* routes through the same kernel.
    const Matrix via_op = a * b;
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(via_op.data()[i], expected.data()[i]);
    }
  }
}

TEST(Matrix, GemmShapeMismatchThrows) {
  Matrix a(2, 3), b(4, 2);
  EXPECT_THROW(Matrix::gemm(a, b), Error);
}

TEST(Matrix, AddGemmNtMatchesMatvecBitwise) {
  // Row i of A * W^T must equal W.matvec(row i) bit for bit — this is
  // the contract that makes batched forward reproduce per-sample
  // forward exactly.
  Rng rng(19);
  const std::size_t shapes[][3] = {{1, 84, 32}, {7, 65, 5}, {32, 84, 15},
                                   {6, 128, 31}};
  for (const auto& s : shapes) {
    const std::size_t batch = s[0], in = s[1], out = s[2];
    const Matrix x = random_matrix(rng, batch, in);
    const Matrix w = random_matrix(rng, out, in);
    Matrix y(batch, out);
    y.add_gemm_nt(1.0, x, w);
    for (std::size_t r = 0; r < batch; ++r) {
      const Vector yr = w.matvec(x.row(r));
      for (std::size_t c = 0; c < out; ++c) {
        ASSERT_EQ(y(r, c), yr[c]) << "row " << r << " col " << c;
      }
    }
  }
}

TEST(Matrix, AddGemmNtAccumulatesScaled) {
  Rng rng(23);
  const Matrix a = random_matrix(rng, 3, 70);
  const Matrix b = random_matrix(rng, 5, 70);
  Matrix c(3, 5, 1.0);
  c.add_gemm_nt(-2.0, a, b);
  const Matrix ref = naive_product(a, b.transposed());
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_NEAR(c(i, j), 1.0 - 2.0 * ref(i, j), 1e-12);
    }
  }
  EXPECT_THROW(c.add_gemm_nt(1.0, a, random_matrix(rng, 5, 71)), Error);
}

TEST(Matrix, AddGemmTnMatchesOuterSumBitwise) {
  // C += s * A^T B must reproduce the per-sample rank-1 accumulation
  // (add_outer per row, ascending) bit for bit — the contract behind
  // batched weight gradients.
  Rng rng(29);
  const std::size_t shapes[][3] = {{1, 4, 6}, {7, 15, 32}, {64, 9, 5},
                                   {65, 3, 3}};
  for (const auto& s : shapes) {
    const std::size_t batch = s[0], m = s[1], n = s[2];
    const Matrix a = random_matrix(rng, batch, m);
    const Matrix b = random_matrix(rng, batch, n);
    Matrix got(m, n);
    got.add_gemm_tn(0.5, a, b);
    Matrix expected(m, n);
    for (std::size_t p = 0; p < batch; ++p) {
      expected.add_outer(0.5, a.row(p), b.row(p));
    }
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got.data()[i], expected.data()[i]);
    }
  }
}

TEST(Matrix, GemmIntoReusesStorage) {
  Rng rng(31);
  const Matrix a = random_matrix(rng, 4, 66);
  const Matrix b = random_matrix(rng, 66, 3);
  Matrix out(1, 1, 99.0);  // wrong shape, stale contents
  Matrix::gemm_into(a, b, out);
  const Matrix expected = naive_product(a, b);
  ASSERT_EQ(out.rows(), 4u);
  ASSERT_EQ(out.cols(), 3u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out.data()[i], expected.data()[i]);
  }
}

// Property: (A*B)x == A*(Bx) over random matrices.
class MatmulProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MatmulProperty, ProductConsistentWithComposedMatvec) {
  Rng rng(GetParam());
  const std::size_t p = 3 + rng.uniform_index(4);
  const std::size_t q = 2 + rng.uniform_index(5);
  const std::size_t r = 2 + rng.uniform_index(4);
  Matrix a(p, q), b(q, r);
  for (std::size_t i = 0; i < p; ++i)
    for (std::size_t j = 0; j < q; ++j) a(i, j) = rng.normal();
  for (std::size_t i = 0; i < q; ++i)
    for (std::size_t j = 0; j < r; ++j) b(i, j) = rng.normal();
  Vector x(r);
  for (std::size_t i = 0; i < r; ++i) x[i] = rng.normal();
  EXPECT_TRUE(approx_equal((a * b).matvec(x), a.matvec(b.matvec(x)), 1e-10));
}

INSTANTIATE_TEST_SUITE_P(RandomShapes, MatmulProperty,
                         ::testing::Range<std::uint64_t>(0, 12));

// --- Storage alignment -------------------------------------------------

bool is_storage_aligned(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p) % kStorageAlignment == 0;
}

TEST(Alignment, MatrixStorageIs64ByteAligned) {
  Matrix m(3, 5, 1.0);
  EXPECT_TRUE(is_storage_aligned(m.data()));
  m.resize(17, 9);  // reallocation must preserve the guarantee
  EXPECT_TRUE(is_storage_aligned(m.data()));
  const Matrix moved = std::move(m);
  EXPECT_TRUE(is_storage_aligned(moved.data()));
}

TEST(Alignment, VectorStorageIs64ByteAligned) {
  Vector v(7, 2.0);
  EXPECT_TRUE(is_storage_aligned(v.data()));
  const Vector from_std(std::vector<double>{1.0, 2.0, 3.0});
  EXPECT_TRUE(is_storage_aligned(from_std.data()));
}

// --- Kernel backend dispatch -------------------------------------------

TEST(KernelBackend, StringRoundTrip) {
  EXPECT_EQ(to_string(KernelBackend::kReference), "reference");
  EXPECT_EQ(to_string(KernelBackend::kSimd), "simd");
  EXPECT_EQ(kernel_backend_from_string("reference"),
            KernelBackend::kReference);
  EXPECT_EQ(kernel_backend_from_string("simd"), KernelBackend::kSimd);
  EXPECT_THROW(kernel_backend_from_string("avx512"), Error);
}

TEST(KernelBackend, ActiveIsaConsistentWithBuild) {
  const SimdIsa isa = active_simd_isa();
  if (!simd_kernels_compiled()) {
    EXPECT_EQ(isa, SimdIsa::kPortable);
  }
  EXPECT_NE(std::string(to_string(isa)), "");
  EXPECT_EQ(isa, active_simd_isa());  // cached — stable across calls
}

// Awkward shapes for the SIMD kernels: empty, 1x1, n below the kJr tile,
// remainder lanes (n % 4 != 0), odd / sub-vector k, and a full tile.
const std::size_t kAwkwardShapes[][3] = {
    {0, 0, 0}, {1, 1, 1},  {2, 3, 2},   {1, 7, 3},   {5, 2, 5},
    {4, 9, 6}, {3, 13, 7}, {6, 33, 10}, {3, 84, 15}, {32, 84, 32}};

TEST(SimdKernels, GemmNtWithinToleranceAtAwkwardShapes) {
  Rng rng(41);
  for (const auto& s : kAwkwardShapes) {
    const std::size_t m = s[0], k = s[1], n = s[2];
    const Matrix a = random_matrix(rng, m, k);
    const Matrix b = random_matrix(rng, n, k);
    Matrix c_ref = random_matrix(rng, m, n);
    Matrix c_simd = c_ref;
    c_ref.add_gemm_nt(0.5, a, b);
    c_simd.add_gemm_nt(0.5, a, b, KernelBackend::kSimd);
    const double rms = rms_range(c_ref.data(), c_simd.data(), c_ref.size());
    EXPECT_LE(rms, dot_tolerance(k)) << m << "x" << k << "x" << n;
  }
}

TEST(SimdKernels, GemmNnAndTnWithinToleranceAtAwkwardShapes) {
  Rng rng(43);
  for (const auto& s : kAwkwardShapes) {
    const std::size_t m = s[0], k = s[1], n = s[2];
    {
      const Matrix a = random_matrix(rng, m, k);
      const Matrix b = random_matrix(rng, k, n);
      Matrix out_ref, out_simd;
      Matrix::gemm_into(a, b, out_ref);
      Matrix::gemm_into(a, b, out_simd, KernelBackend::kSimd);
      EXPECT_LE(rms_range(out_ref.data(), out_simd.data(), out_ref.size()),
                dot_tolerance(k))
          << "nn " << m << "x" << k << "x" << n;
    }
    {
      const Matrix a = random_matrix(rng, k, m);
      const Matrix b = random_matrix(rng, k, n);
      Matrix c_ref = random_matrix(rng, m, n);
      Matrix c_simd = c_ref;
      c_ref.add_gemm_tn(-0.5, a, b);
      c_simd.add_gemm_tn(-0.5, a, b, KernelBackend::kSimd);
      EXPECT_LE(rms_range(c_ref.data(), c_simd.data(), c_ref.size()),
                dot_tolerance(k))
          << "tn " << m << "x" << k << "x" << n;
    }
  }
}

TEST(SimdKernels, ReluExactIncludingSignedZeroAndNan) {
  Rng rng(47);
  const std::size_t n = 133;  // exercises the vector body and the tail
  std::vector<double> in(n), ref(n), simd(n);
  for (std::size_t i = 0; i < n; ++i) in[i] = rng.uniform(-2.0, 2.0);
  in[0] = -0.0;
  in[1] = 0.0;
  in[2] = std::numeric_limits<double>::quiet_NaN();
  for (std::size_t i = 0; i < n; ++i) ref[i] = in[i] > 0.0 ? in[i] : 0.0;
  kernels::simd_relu(in.data(), simd.data(), n);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(ref[i], simd[i]) << "index " << i;
  }
  EXPECT_FALSE(std::signbit(simd[0]));  // relu(-0.0) == +0.0
  EXPECT_EQ(simd[2], 0.0);              // relu(NaN) == 0.0, like the scalar
}

// --- rms_range / dot_tolerance -----------------------------------------

TEST(RmsRange, ZeroForIdenticalRanges) {
  Rng rng(53);
  const Matrix m = random_matrix(rng, 6, 9);
  EXPECT_EQ(rms_range(m.data(), m.data(), m.size()), 0.0);
  EXPECT_EQ(rms_range(nullptr, nullptr, 0), 0.0);
}

TEST(RmsRange, SingleElementCorruptionFailsTheGate) {
  // A kernel that drops one term of a modest dot product must land far
  // outside dot_tolerance — the harness is sensitive to real defects.
  Rng rng(59);
  const std::size_t n = 64, k = 84;
  Matrix a = random_matrix(rng, 1, n);
  Matrix b = a;
  b.data()[n / 2] += 1e-8;  // one wrong element, still "close"
  const double rms = rms_range(a.data(), b.data(), n);
  EXPECT_GT(rms, dot_tolerance(k));
  EXPECT_LT(rms, 1.0);  // magnitude-normalized, not absolute
}

TEST(RmsRange, NormalizedByLargestMagnitude) {
  const double a[] = {1000.0, -2000.0};
  const double b[] = {1000.0, -2000.0 + 2e-10};
  // Absolute diff 2e-10, magnitude 2000 -> rms_range ~ 7e-14.
  const double rms = rms_range(a, b, 2);
  EXPECT_NEAR(rms, 2e-10 / std::sqrt(2.0) / 2000.0, 1e-15);
}

TEST(DotTolerance, MonotoneAndEpsilonProportional) {
  EXPECT_EQ(dot_tolerance(0), dot_tolerance(1));
  EXPECT_LT(dot_tolerance(1), dot_tolerance(2));
  EXPECT_LT(dot_tolerance(84), dot_tolerance(128));
  EXPECT_DOUBLE_EQ(dot_tolerance(2), 2.0 * dot_tolerance(1));
  EXPECT_LT(dot_tolerance(1 << 20), 1e-8);  // stays tiny even for huge k
}

// --- Tolerance harness -------------------------------------------------

TEST(KernelHarness, ReferenceBackendIsExactlyEqualToItself) {
  const KernelReport report =
      verify_kernel_backend(KernelBackend::kReference);
  EXPECT_TRUE(report.pass) << report.summary();
  EXPECT_EQ(report.worst_rms, 0.0);
}

TEST(KernelHarness, SimdBackendPassesOnThisHost) {
  KernelVerifyConfig config;
  config.extra_shapes.push_back({32, 84, 32});  // serving-layer shape
  const KernelReport report =
      verify_kernel_backend(KernelBackend::kSimd, config);
  EXPECT_TRUE(report.pass) << report.summary();
  EXPECT_FALSE(report.checks.empty());
  // Every GEMM check carries the k-derived tolerance; relu stays exact.
  for (const KernelCheck& check : report.checks) {
    if (check.op == "relu") {
      EXPECT_EQ(check.tolerance, 0.0);
      EXPECT_EQ(check.rms, 0.0) << report.summary();
    } else {
      EXPECT_EQ(check.tolerance, dot_tolerance(check.k)) << check.op;
    }
  }
}

// --- Packed integer matrices + bitwise quantized kernels ---------------

TEST(QuantizedMatrix, PaddedStrideAndZeroedPadding) {
  EXPECT_EQ(quant_stride(0), 0u);
  EXPECT_EQ(quant_stride(1), kQuantPad);
  EXPECT_EQ(quant_stride(16), 16u);
  EXPECT_EQ(quant_stride(17), 32u);
  Int16Matrix w(3, 5);
  EXPECT_EQ(w.stride(), 16u);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 5; ++c) w(r, c) = -1;
    for (std::size_t c = 5; c < w.stride(); ++c) {
      EXPECT_EQ(w.row(r)[c], 0) << "padding must stay zero";
    }
  }
  w.resize(2, 9);
  EXPECT_EQ(w.stride(), 16u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < w.stride(); ++c) {
      EXPECT_EQ(w.row(r)[c], 0) << "resize must re-zero";
    }
  }
}

TEST(QuantizedMatrix, StorageIs64ByteAligned) {
  Int32Matrix x(4, 11);
  EXPECT_TRUE(is_storage_aligned(x.row(0)));
}

TEST(KernelBackend, QuantizedStringRoundTrip) {
  EXPECT_EQ(to_string(KernelBackend::kQuantized), "quantized");
  EXPECT_EQ(kernel_backend_from_string("quantized"),
            KernelBackend::kQuantized);
}

TEST(KernelBackend, QuantizedIsNotAFloatGemmBackend) {
  Rng rng(61);
  const Matrix a = random_matrix(rng, 2, 3);
  const Matrix b = random_matrix(rng, 4, 3);
  Matrix out;
  EXPECT_THROW(Matrix::gemm_nt_into(a, b, out, KernelBackend::kQuantized),
               Error);
  EXPECT_THROW(Matrix::gemm(a, b.transposed(), KernelBackend::kQuantized),
               Error);
}

// Awkward shapes for the integer kernels: empty, 1x1, remainder lanes
// (k % 8 != 0), odd k, and a j-tile remainder (n % 4 != 0).
TEST(QuantizedKernels, BitwiseEqualAtAwkwardShapes) {
  Rng rng(67);
  const std::size_t shapes[][3] = {
      {0, 0, 0}, {1, 1, 1},  {2, 3, 2},   {1, 7, 3},   {5, 2, 5},
      {4, 9, 6}, {3, 13, 7}, {6, 33, 10}, {3, 84, 15}, {32, 84, 32}};
  for (const auto& s : shapes) {
    const std::size_t m = s[0], k = s[1], n = s[2];
    Int32Matrix x(m, k);
    Int16Matrix w(n, k);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t p = 0; p < k; ++p) {
        x(i, p) = static_cast<std::int32_t>(rng.uniform_index(1u << 25)) -
                  (1 << 24);
      }
    }
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t p = 0; p < k; ++p) {
        w(j, p) = static_cast<std::int16_t>(
            static_cast<int>(rng.uniform_index(65536)) - 32768);
      }
    }
    std::vector<std::int64_t> c_ref(m * n, 17);
    std::vector<std::int64_t> c_simd(m * n, 17);
    qkernels::qgemm_nt_reference(c_ref.data(), x, w);
    qkernels::qgemm_nt(c_simd.data(), x, w, KernelBackend::kSimd);
    for (std::size_t e = 0; e < c_ref.size(); ++e) {
      ASSERT_EQ(c_ref[e], c_simd[e])
          << m << "x" << k << "x" << n << " element " << e;
    }
    // kQuantized resolves through the same dispatch — also bitwise.
    std::vector<std::int64_t> c_quant(m * n, 17);
    qkernels::qgemm_nt(c_quant.data(), x, w, KernelBackend::kQuantized);
    EXPECT_EQ(c_ref, c_quant);
  }
}

TEST(QuantizedKernels, ReferenceDispatchMatchesDirectReference) {
  Rng rng(71);
  Int32Matrix x(3, 10);
  Int16Matrix w(4, 10);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t p = 0; p < 10; ++p) {
      x(i, p) = static_cast<std::int32_t>(rng.uniform_index(2001)) - 1000;
    }
  }
  for (std::size_t j = 0; j < 4; ++j) {
    for (std::size_t p = 0; p < 10; ++p) {
      w(j, p) = static_cast<std::int16_t>(
          static_cast<int>(rng.uniform_index(201)) - 100);
    }
  }
  std::vector<std::int64_t> a(12, 0), b(12, 0);
  qkernels::qgemm_nt_reference(a.data(), x, w);
  qkernels::qgemm_nt(b.data(), x, w, KernelBackend::kReference);
  EXPECT_EQ(a, b);
}

TEST(QuantizedKernels, MismatchedContractionWidthThrows) {
  Int32Matrix x(2, 3);
  Int16Matrix w(2, 4);
  std::vector<std::int64_t> c(4, 0);
  EXPECT_THROW(qkernels::qgemm_nt(c.data(), x, w, KernelBackend::kSimd),
               Error);
}

TEST(QuantizedKernelHarness, PassesBitwiseOnThisHost) {
  QuantKernelVerifyConfig config;
  config.extra_shapes.push_back({32, 84, 32});  // serving-layer shape
  const QuantKernelReport report = verify_quantized_kernels(config);
  EXPECT_TRUE(report.pass) << report.summary();
  EXPECT_EQ(report.worst_abs_diff, 0u);
  EXPECT_GE(report.checks.size(), 12u + 16u + 1u);
  for (const QuantKernelCheck& check : report.checks) {
    EXPECT_EQ(check.max_abs_diff, 0u)
        << check.m << "x" << check.k << "x" << check.n;
  }
  EXPECT_EQ(report.isa, active_simd_isa());
}

}  // namespace
}  // namespace safenn::linalg
