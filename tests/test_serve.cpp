#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "highway/safety_rules.hpp"
#include "linalg/verify_kernels.hpp"
#include "serve/metrics.hpp"
#include "serve/worker_pool.hpp"

namespace safenn::serve {
namespace {

using linalg::Vector;

// -------------------------------------------------------------------------
// Fixtures: a hand-crafted predictor (identity layer, no training) whose
// lateral-velocity output depends on the scene, so shield decisions are
// scene-dependent yet fully deterministic — cheap enough for TSan runs.
// -------------------------------------------------------------------------

core::TrainedPredictor make_craft_predictor(std::uint64_t seed = 11) {
  core::TrainedPredictor p;
  p.head = nn::MdnHead(1, highway::kActionDims);
  nn::DenseLayer layer(highway::kSceneFeatures, p.head.raw_output_size(),
                       nn::Activation::kIdentity);
  Rng rng(seed);
  const std::size_t lat = p.head.mean_index(0, highway::kActionLateral);
  layer.biases()[lat] = 1.0;
  layer.biases()[p.head.mean_index(0, highway::kActionAccel)] = -0.25;
  for (std::size_t i = 0; i < 16; ++i) {
    layer.weights().at(lat, i) = rng.uniform(-0.6, 0.6);
  }
  nn::Network net;
  net.add_layer(std::move(layer));
  p.network = std::move(net);
  return p;
}

/// Scenes sampled over the region box; every odd scene is pushed inside
/// the monitored region (left-front occupied), every even one outside.
std::vector<Vector> make_scene_set(const highway::SceneEncoder& encoder,
                                   const verify::InputRegion& region,
                                   std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vector> scenes;
  scenes.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Vector x(highway::kSceneFeatures);
    for (std::size_t j = 0; j < x.size(); ++j) {
      x[j] = rng.uniform(region.box[j].lo, region.box[j].hi);
    }
    const std::size_t presence =
        encoder.presence_index(highway::NeighborSlot::kLeftFront);
    const std::size_t gap =
        encoder.gap_index(highway::NeighborSlot::kLeftFront);
    if (i % 2 == 1) {
      x[presence] = 1.0;
      x[gap] = 0.1;
    } else {
      x[presence] = 0.0;
    }
    scenes.push_back(std::move(x));
  }
  return scenes;
}

ServeRequest make_request(std::uint64_t id, Vector scene,
                          Clock::time_point deadline =
                              Clock::time_point::max()) {
  ServeRequest r;
  r.id = id;
  r.scene = std::move(scene);
  r.enqueue_time = Clock::now();
  r.deadline = deadline;
  return r;
}

// -------------------------------------------------------------------------
// RequestQueue semantics.
// -------------------------------------------------------------------------

TEST(RequestQueue, BoundedFifoAndTryPushSheds) {
  RequestQueue q(4);
  EXPECT_EQ(q.capacity(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(q.try_push(make_request(i, Vector(1))));
  }
  EXPECT_FALSE(q.try_push(make_request(99, Vector(1))));  // full
  EXPECT_EQ(q.size(), 4u);

  std::vector<ServeRequest> out;
  EXPECT_EQ(q.pop_batch(out, 2), 2u);
  EXPECT_EQ(out[0].id, 0u);
  EXPECT_EQ(out[1].id, 1u);
  EXPECT_TRUE(q.try_push(make_request(4, Vector(1))));  // space again
  out.clear();
  EXPECT_EQ(q.pop_batch(out, 10), 3u);  // drains what's there, no more
  EXPECT_EQ(out.back().id, 4u);
}

TEST(RequestQueue, CloseDrainsBacklogThenReturnsZero) {
  RequestQueue q(8);
  for (std::uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(q.try_push(make_request(i, Vector(1))));
  }
  q.close();
  EXPECT_FALSE(q.try_push(make_request(9, Vector(1))));
  EXPECT_FALSE(q.push(make_request(9, Vector(1))));
  std::vector<ServeRequest> out;
  EXPECT_EQ(q.pop_batch(out, 3), 3u);
  EXPECT_EQ(q.pop_batch(out, 3), 2u);
  EXPECT_EQ(q.pop_batch(out, 3), 0u);  // closed and empty: no block
  EXPECT_EQ(out.size(), 5u);
}

TEST(RequestQueue, BatchFormationRespectsMaxBatch) {
  RequestQueue q(64);
  for (std::uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(q.try_push(make_request(i, Vector(1))));
  }
  std::vector<ServeRequest> out;
  EXPECT_EQ(q.pop_batch(out, 4), 4u);
  EXPECT_EQ(q.pop_batch(out, 4), 4u);
  EXPECT_EQ(q.pop_batch(out, 4), 2u);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(out[i].id, i);
}

TEST(RequestQueue, ContendedMpmcDeliversEveryRequestOnce) {
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kConsumers = 3;
  constexpr std::size_t kPerProducer = 500;
  RequestQueue q(32);

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(
            q.push(make_request(p * kPerProducer + i, Vector(1))));
      }
    });
  }

  std::mutex seen_mu;
  std::set<std::uint64_t> seen;
  std::vector<std::thread> consumers;
  for (std::size_t c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      std::vector<ServeRequest> batch;
      for (;;) {
        batch.clear();
        if (q.pop_batch(batch, 7) == 0) return;
        std::lock_guard<std::mutex> lock(seen_mu);
        for (const ServeRequest& r : batch) {
          EXPECT_TRUE(seen.insert(r.id).second) << "duplicate id " << r.id;
        }
      }
    });
  }

  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(seen.size(), kProducers * kPerProducer);
}

// -------------------------------------------------------------------------
// ShieldedEngine outcomes and degradation.
// -------------------------------------------------------------------------

class EngineFixture : public ::testing::Test {
 protected:
  EngineFixture()
      : region_(highway::make_vehicle_on_left_region(encoder_)),
        predictor_(make_craft_predictor()),
        monitor_(region_, 1.0) {}

  highway::SceneEncoder encoder_;
  verify::InputRegion region_;
  core::TrainedPredictor predictor_;
  core::SafetyMonitor monitor_;
};

TEST_F(EngineFixture, ServesClampsAndDegrades) {
  ShieldedEngine engine(predictor_, monitor_);
  const auto scenes = make_scene_set(encoder_, region_, 2, 3);

  // Outside the region: served untouched regardless of lateral value.
  ServeRequest outside = make_request(0, scenes[0]);
  ServeResponse r0 = engine.serve(outside, Clock::now());
  EXPECT_EQ(r0.outcome, ServeOutcome::kServed);
  EXPECT_FALSE(r0.assumption_hit);
  EXPECT_FALSE(r0.intervened);

  // Inside the region with lateral forced high: clamped to threshold.
  Vector hot = scenes[1];
  // Zero the weighted dims so lateral == bias (1.0); raise the bias via a
  // dedicated predictor instead: simpler — craft a predictor variant.
  core::TrainedPredictor loud = make_craft_predictor();
  loud.network.layer(0).biases()[loud.head.mean_index(
      0, highway::kActionLateral)] = 5.0;
  core::SafetyMonitor hot_monitor(region_, 1.0);
  ShieldedEngine hot_engine(loud, hot_monitor);
  ServeRequest inside = make_request(1, hot);
  ServeResponse r1 = hot_engine.serve(inside, Clock::now());
  EXPECT_EQ(r1.outcome, ServeOutcome::kClamped);
  EXPECT_TRUE(r1.assumption_hit);
  EXPECT_TRUE(r1.intervened);
  EXPECT_NEAR(r1.action[highway::kActionLateral], 1.0, 1e-9);

  // Expired deadline: degraded to the safe action, no inference.
  ServeRequest late = make_request(2, scenes[1],
                                   Clock::now() - std::chrono::seconds(1));
  const core::MonitorStats before = hot_monitor.stats();
  ServeResponse r2 = hot_engine.serve(late, Clock::now());
  EXPECT_EQ(r2.outcome, ServeOutcome::kDegraded);
  EXPECT_EQ(r2.infer_seconds, 0.0);
  EXPECT_EQ(hot_monitor.stats().queries, before.queries);  // untouched
  const Vector safe = hot_monitor.safe_action();
  EXPECT_EQ(r2.action[highway::kActionLateral],
            safe[highway::kActionLateral]);
}

TEST_F(EngineFixture, ServeBatchMatchesPerRequestServe) {
  // 33 requests (not a multiple of anything convenient), a few with
  // already-expired deadlines sprinkled in: serve_batch must reproduce
  // per-request serve() decision for decision, on its own monitor.
  const auto scenes = make_scene_set(encoder_, region_, 33, 7);
  const Clock::time_point now = Clock::now();
  std::vector<ServeRequest> requests;
  requests.reserve(scenes.size());
  for (std::size_t i = 0; i < scenes.size(); ++i) {
    requests.push_back(make_request(
        i, scenes[i],
        i % 5 == 0 ? now - std::chrono::milliseconds(1)
                   : Clock::time_point::max()));
  }

  core::SafetyMonitor seq_monitor(region_, 0.5);
  ShieldedEngine seq_engine(predictor_, seq_monitor);
  std::vector<ServeResponse> expected;
  expected.reserve(requests.size());
  for (const ServeRequest& request : requests) {
    expected.push_back(seq_engine.serve(request, now));
  }

  core::SafetyMonitor batch_monitor(region_, 0.5);
  ShieldedEngine batch_engine(predictor_, batch_monitor);
  const std::vector<ServeResponse> batched =
      batch_engine.serve_batch(requests, now);

  ASSERT_EQ(batched.size(), requests.size());
  bool any_clamped = false, any_degraded = false;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(batched[i].id, expected[i].id);
    EXPECT_EQ(batched[i].outcome, expected[i].outcome) << i;
    EXPECT_EQ(batched[i].assumption_hit, expected[i].assumption_hit) << i;
    EXPECT_EQ(batched[i].intervened, expected[i].intervened) << i;
    ASSERT_EQ(batched[i].action.size(), expected[i].action.size());
    for (std::size_t d = 0; d < expected[i].action.size(); ++d) {
      EXPECT_EQ(batched[i].action[d], expected[i].action[d]) << i;
    }
    any_clamped = any_clamped || expected[i].outcome == ServeOutcome::kClamped;
    any_degraded =
        any_degraded || expected[i].outcome == ServeOutcome::kDegraded;
  }
  // The batch must actually exercise all three outcomes for this check
  // to mean anything.
  EXPECT_TRUE(any_clamped);
  EXPECT_TRUE(any_degraded);
  EXPECT_EQ(batch_monitor.stats().queries, seq_monitor.stats().queries);
  EXPECT_EQ(batch_monitor.stats().assumption_hits,
            seq_monitor.stats().assumption_hits);
  EXPECT_EQ(batch_monitor.stats().interventions,
            seq_monitor.stats().interventions);
}

TEST_F(EngineFixture, ServeBatchAllExpiredNeverTouchesPredictor) {
  ShieldedEngine engine(predictor_, monitor_);
  const auto scenes = make_scene_set(encoder_, region_, 4, 9);
  const Clock::time_point now = Clock::now();
  std::vector<ServeRequest> requests;
  for (std::size_t i = 0; i < scenes.size(); ++i) {
    requests.push_back(
        make_request(i, scenes[i], now - std::chrono::seconds(1)));
  }
  const std::vector<ServeResponse> responses =
      engine.serve_batch(requests, now);
  ASSERT_EQ(responses.size(), requests.size());
  for (const ServeResponse& r : responses) {
    EXPECT_EQ(r.outcome, ServeOutcome::kDegraded);
    EXPECT_EQ(r.infer_seconds, 0.0);
  }
  EXPECT_EQ(monitor_.stats().queries, 0u);  // predictor/monitor untouched

  EXPECT_TRUE(engine.serve_batch({}, now).empty());
}

// -------------------------------------------------------------------------
// InferenceServer end to end.
// -------------------------------------------------------------------------

TEST_F(EngineFixture, ServerRejectsWhenQueueFullAndNoWorkersDrain) {
  // One slot, one worker, but the worker is starved by submitting faster
  // than it can possibly drain is racy — instead verify rejection by
  // stopping the server first: every submit must reject immediately.
  InferenceServer::Config cfg;
  cfg.queue_capacity = 1;
  cfg.pool.workers = 1;
  InferenceServer server(predictor_, monitor_, cfg);
  server.stop();
  auto f = server.submit(Vector(highway::kSceneFeatures));
  ASSERT_EQ(f.wait_for(std::chrono::seconds(5)), std::future_status::ready);
  EXPECT_EQ(f.get().outcome, ServeOutcome::kRejected);
  EXPECT_EQ(server.metrics().rejected.load(), 1u);
}

TEST_F(EngineFixture, ServerStopFulfilsEveryPendingRequest) {
  InferenceServer::Config cfg;
  cfg.queue_capacity = 4096;
  cfg.pool.workers = 3;
  cfg.pool.max_batch = 8;
  InferenceServer server(predictor_, monitor_, cfg);
  const auto scenes = make_scene_set(encoder_, region_, 400, 17);
  std::vector<std::future<ServeResponse>> futures;
  futures.reserve(scenes.size());
  for (const Vector& s : scenes) futures.push_back(server.submit(s));
  server.stop();
  std::size_t resolved = 0;
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(30)),
              std::future_status::ready);
    const ServeResponse r = f.get();
    EXPECT_NE(r.outcome, ServeOutcome::kRejected);
    ++resolved;
  }
  EXPECT_EQ(resolved, scenes.size());
  EXPECT_EQ(server.metrics().completed(), scenes.size());
}

TEST_F(EngineFixture, ExpiredDeadlinesDegradeUnderLoad) {
  InferenceServer::Config cfg;
  cfg.queue_capacity = 512;
  cfg.pool.workers = 2;
  cfg.deadline_seconds = 1e-9;  // effectively already expired
  InferenceServer server(predictor_, monitor_, cfg);
  const auto scenes = make_scene_set(encoder_, region_, 64, 29);
  std::vector<std::future<ServeResponse>> futures;
  for (const Vector& s : scenes) futures.push_back(server.submit_blocking(s));
  const Vector safe = monitor_.safe_action();
  std::size_t degraded = 0;
  for (auto& f : futures) {
    const ServeResponse r = f.get();
    if (r.outcome == ServeOutcome::kDegraded) {
      ++degraded;
      EXPECT_EQ(r.action[highway::kActionLateral],
                safe[highway::kActionLateral]);
    }
  }
  // With a 1ns deadline essentially everything must degrade.
  EXPECT_GT(degraded, scenes.size() / 2);
  EXPECT_EQ(server.metrics().degraded.load(), degraded);
}

// -------------------------------------------------------------------------
// Determinism of the shield: concurrent intervention accounting must
// match a sequential replay of the same scene set exactly.
// -------------------------------------------------------------------------

TEST_F(EngineFixture, ConcurrentInterventionsMatchSequentialReplay) {
  const auto scenes = make_scene_set(encoder_, region_, 1200, 41);

  // Sequential ground truth.
  core::SafetyMonitor sequential(region_, 1.0);
  std::size_t seq_interventions = 0;
  for (const Vector& s : scenes) {
    if (sequential.guard(predictor_, s).intervened) ++seq_interventions;
  }
  ASSERT_GT(sequential.stats().assumption_hits, 0u);
  EXPECT_EQ(sequential.stats().interventions, seq_interventions);

  // Concurrent replay through the full runtime, twice to shake schedules.
  for (int round = 0; round < 2; ++round) {
    core::SafetyMonitor concurrent(region_, 1.0);
    InferenceServer::Config cfg;
    cfg.queue_capacity = 256;
    cfg.pool.workers = 4;
    cfg.pool.max_batch = 16;
    InferenceServer server(predictor_, concurrent, cfg);
    std::vector<std::future<ServeResponse>> futures;
    futures.reserve(scenes.size());
    for (const Vector& s : scenes) {
      futures.push_back(server.submit_blocking(s));
    }
    for (auto& f : futures) f.wait();
    server.stop();

    EXPECT_EQ(server.metrics().interventions.load(), seq_interventions);
    EXPECT_EQ(server.metrics().assumption_hits.load(),
              sequential.stats().assumption_hits);
    EXPECT_EQ(concurrent.stats().interventions, seq_interventions);
    EXPECT_EQ(server.metrics().completed(), scenes.size());
  }
}

// -------------------------------------------------------------------------
// Metrics.
// -------------------------------------------------------------------------

TEST_F(EngineFixture, SimdBackendGateAdmitsOrFallsBackToReference) {
  // kReference passes through the gate untouched.
  EXPECT_EQ(resolve_serving_backend(predictor_,
                                    linalg::KernelBackend::kReference, 16),
            linalg::KernelBackend::kReference);
  // kSimd must resolve to whatever the tolerance harness says on this
  // host — and the harness itself must agree with the gate's verdict.
  const linalg::KernelBackend resolved = resolve_serving_backend(
      predictor_, linalg::KernelBackend::kSimd, 16);
  const linalg::KernelReport report =
      linalg::verify_kernel_backend(linalg::KernelBackend::kSimd);
  EXPECT_EQ(resolved, report.pass ? linalg::KernelBackend::kSimd
                                  : linalg::KernelBackend::kReference);
}

TEST_F(EngineFixture, SimdServeBatchMatchesReferenceDecisions) {
  const auto scenes = make_scene_set(encoder_, region_, 33, 7);
  const Clock::time_point now = Clock::now();
  std::vector<ServeRequest> requests;
  requests.reserve(scenes.size());
  for (std::size_t i = 0; i < scenes.size(); ++i) {
    requests.push_back(make_request(i, scenes[i]));
  }

  core::SafetyMonitor ref_monitor(region_, 0.5);
  ShieldedEngine ref_engine(predictor_, ref_monitor);
  const std::vector<ServeResponse> expected =
      ref_engine.serve_batch(requests, now);

  core::SafetyMonitor simd_monitor(region_, 0.5);
  ShieldedEngine simd_engine(predictor_, simd_monitor,
                             linalg::KernelBackend::kSimd);
  const std::vector<ServeResponse> simd =
      simd_engine.serve_batch(requests, now);

  // Guard decisions must agree and actions must coincide to far below
  // any actuation-relevant precision (the forward outputs differ only by
  // the reassociated contraction rounding).
  ASSERT_EQ(simd.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(simd[i].outcome, expected[i].outcome) << i;
    EXPECT_EQ(simd[i].intervened, expected[i].intervened) << i;
    ASSERT_EQ(simd[i].action.size(), expected[i].action.size());
    for (std::size_t d = 0; d < expected[i].action.size(); ++d) {
      EXPECT_NEAR(simd[i].action[d], expected[i].action[d], 1e-9) << i;
    }
  }
  EXPECT_EQ(simd_monitor.stats().interventions,
            ref_monitor.stats().interventions);
}

TEST_F(EngineFixture, ServerWithSimdConfigResolvesGateAndServes) {
  InferenceServer::Config config;
  config.pool.workers = 2;
  config.pool.max_batch = 8;
  config.backend = linalg::KernelBackend::kSimd;
  InferenceServer server(predictor_, monitor_, config);
  // Whatever the gate decided, the server must report it and serve.
  const linalg::KernelBackend active = server.backend();
  EXPECT_TRUE(active == linalg::KernelBackend::kSimd ||
              active == linalg::KernelBackend::kReference);
  const auto scenes = make_scene_set(encoder_, region_, 24, 13);
  std::vector<std::future<ServeResponse>> futures;
  futures.reserve(scenes.size());
  for (const Vector& scene : scenes) {
    futures.push_back(server.submit_blocking(scene));
  }
  for (std::future<ServeResponse>& f : futures) {
    const ServeResponse response = f.get();
    EXPECT_NE(response.outcome, ServeOutcome::kRejected);
    EXPECT_FALSE(response.action.size() == 0);
  }
  server.stop();
}

TEST(Metrics, HistogramPercentilesBracketSamples) {
  LatencyHistogram h;
  EXPECT_EQ(h.percentile_ns(0.5), 0.0);
  for (std::uint64_t i = 1; i <= 1000; ++i) h.record(i * 1000);  // 1us..1ms
  EXPECT_EQ(h.count(), 1000u);
  const double p50 = h.percentile_ns(0.50);
  const double p95 = h.percentile_ns(0.95);
  const double p99 = h.percentile_ns(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // Bucket upper bounds over-approximate by at most 2x.
  EXPECT_GE(p50, 500.0 * 1000);
  EXPECT_LE(p50, 2.0 * 500.0 * 1000);
  EXPECT_GE(p99, 990.0 * 1000 / 2);
  EXPECT_NEAR(h.mean_ns(), 500.5 * 1000, 1000.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
}

TEST(Metrics, ConcurrentRecordingLosesNothing) {
  LatencyHistogram h;
  constexpr int kThreads = 8, kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 1; i <= kPerThread; ++i) {
        h.record(static_cast<std::uint64_t>(i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Metrics, JsonDumpContainsEverySection) {
  MetricsRegistry m;
  m.submitted.store(10);
  m.served.store(7);
  m.clamped.store(2);
  m.degraded.store(1);
  m.interventions.store(2);
  m.batches.store(5);
  m.batch_items.store(10);
  m.total_latency.record(1500000);
  const std::string json = m.to_json(2.0);
  for (const char* key :
       {"\"requests\"", "\"shield\"", "\"batching\"", "\"latency\"",
        "\"queue\"", "\"infer\"", "\"total\"", "\"p99_ms\"",
        "\"throughput_rps\"", "\"interventions\": 2",
        "\"mean_batch_size\": 2"}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  EXPECT_DOUBLE_EQ(m.mean_batch_size(), 2.0);
  EXPECT_EQ(m.completed(), 10u);
  m.note_queue_depth(3);
  m.note_queue_depth(2);
  EXPECT_EQ(m.queue_depth_peak.load(), 3u);
  m.reset();
  EXPECT_EQ(m.submitted.load(), 0u);
  EXPECT_EQ(m.total_latency.count(), 0u);
}

}  // namespace
}  // namespace safenn::serve
