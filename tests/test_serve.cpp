#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <map>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "highway/safety_rules.hpp"
#include "linalg/verify_kernels.hpp"
#include "registry/artifact.hpp"
#include "serve/metrics.hpp"
#include "serve/multi_model.hpp"
#include "serve/worker_pool.hpp"

namespace safenn::serve {
namespace {

using linalg::Vector;

// -------------------------------------------------------------------------
// Fixtures: a hand-crafted predictor (identity layer, no training) whose
// lateral-velocity output depends on the scene, so shield decisions are
// scene-dependent yet fully deterministic — cheap enough for TSan runs.
// -------------------------------------------------------------------------

core::TrainedPredictor make_craft_predictor(std::uint64_t seed = 11) {
  core::TrainedPredictor p;
  p.head = nn::MdnHead(1, highway::kActionDims);
  nn::DenseLayer layer(highway::kSceneFeatures, p.head.raw_output_size(),
                       nn::Activation::kIdentity);
  Rng rng(seed);
  const std::size_t lat = p.head.mean_index(0, highway::kActionLateral);
  layer.biases()[lat] = 1.0;
  layer.biases()[p.head.mean_index(0, highway::kActionAccel)] = -0.25;
  for (std::size_t i = 0; i < 16; ++i) {
    layer.weights().at(lat, i) = rng.uniform(-0.6, 0.6);
  }
  nn::Network net;
  net.add_layer(std::move(layer));
  p.network = std::move(net);
  return p;
}

/// Scenes sampled over the region box; every odd scene is pushed inside
/// the monitored region (left-front occupied), every even one outside.
std::vector<Vector> make_scene_set(const highway::SceneEncoder& encoder,
                                   const verify::InputRegion& region,
                                   std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vector> scenes;
  scenes.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Vector x(highway::kSceneFeatures);
    for (std::size_t j = 0; j < x.size(); ++j) {
      x[j] = rng.uniform(region.box[j].lo, region.box[j].hi);
    }
    const std::size_t presence =
        encoder.presence_index(highway::NeighborSlot::kLeftFront);
    const std::size_t gap =
        encoder.gap_index(highway::NeighborSlot::kLeftFront);
    if (i % 2 == 1) {
      x[presence] = 1.0;
      x[gap] = 0.1;
    } else {
      x[presence] = 0.0;
    }
    scenes.push_back(std::move(x));
  }
  return scenes;
}

ServeRequest make_request(std::uint64_t id, Vector scene,
                          Clock::time_point deadline =
                              Clock::time_point::max()) {
  ServeRequest r;
  r.id = id;
  r.scene = std::move(scene);
  r.enqueue_time = Clock::now();
  r.deadline = deadline;
  return r;
}

// -------------------------------------------------------------------------
// RequestQueue semantics.
// -------------------------------------------------------------------------

TEST(RequestQueue, BoundedFifoAndTryPushSheds) {
  RequestQueue q(4);
  EXPECT_EQ(q.capacity(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(q.try_push(make_request(i, Vector(1))));
  }
  EXPECT_FALSE(q.try_push(make_request(99, Vector(1))));  // full
  EXPECT_EQ(q.size(), 4u);

  std::vector<ServeRequest> out;
  EXPECT_EQ(q.pop_batch(out, 2), 2u);
  EXPECT_EQ(out[0].id, 0u);
  EXPECT_EQ(out[1].id, 1u);
  EXPECT_TRUE(q.try_push(make_request(4, Vector(1))));  // space again
  out.clear();
  EXPECT_EQ(q.pop_batch(out, 10), 3u);  // drains what's there, no more
  EXPECT_EQ(out.back().id, 4u);
}

TEST(RequestQueue, CloseDrainsBacklogThenReturnsZero) {
  RequestQueue q(8);
  for (std::uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(q.try_push(make_request(i, Vector(1))));
  }
  q.close();
  EXPECT_FALSE(q.try_push(make_request(9, Vector(1))));
  EXPECT_FALSE(q.push(make_request(9, Vector(1))));
  std::vector<ServeRequest> out;
  EXPECT_EQ(q.pop_batch(out, 3), 3u);
  EXPECT_EQ(q.pop_batch(out, 3), 2u);
  EXPECT_EQ(q.pop_batch(out, 3), 0u);  // closed and empty: no block
  EXPECT_EQ(out.size(), 5u);
}

TEST(RequestQueue, BatchFormationRespectsMaxBatch) {
  RequestQueue q(64);
  for (std::uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(q.try_push(make_request(i, Vector(1))));
  }
  std::vector<ServeRequest> out;
  EXPECT_EQ(q.pop_batch(out, 4), 4u);
  EXPECT_EQ(q.pop_batch(out, 4), 4u);
  EXPECT_EQ(q.pop_batch(out, 4), 2u);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(out[i].id, i);
}

TEST(RequestQueue, TryPushAtExactCapacityBoundary) {
  RequestQueue q(3);
  ASSERT_TRUE(q.try_push(make_request(0, Vector(1))));
  ASSERT_TRUE(q.try_push(make_request(1, Vector(1))));
  EXPECT_EQ(q.size(), 2u);
  // The push that lands exactly on capacity succeeds; the next one sheds.
  EXPECT_TRUE(q.try_push(make_request(2, Vector(1))));
  EXPECT_EQ(q.size(), q.capacity());
  EXPECT_FALSE(q.try_push(make_request(3, Vector(1))));
  EXPECT_EQ(q.size(), 3u);  // the failed push must not consume a slot
  // Freeing exactly one slot re-admits exactly one request.
  std::vector<ServeRequest> out;
  EXPECT_EQ(q.pop_batch(out, 1), 1u);
  EXPECT_TRUE(q.try_push(make_request(4, Vector(1))));
  EXPECT_FALSE(q.try_push(make_request(5, Vector(1))));
}

TEST(RequestQueue, DrainAfterCloseKeepsFifoOrder) {
  RequestQueue q(32);
  for (std::uint64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(q.try_push(make_request(i, Vector(1))));
  }
  q.close();
  // Batch boundaries must not perturb FIFO order while draining a closed
  // queue, and the terminal 0 must be sticky.
  std::vector<ServeRequest> out;
  while (q.pop_batch(out, 7) > 0) {
  }
  ASSERT_EQ(out.size(), 20u);
  for (std::uint64_t i = 0; i < 20; ++i) EXPECT_EQ(out[i].id, i);
  out.clear();
  EXPECT_EQ(q.pop_batch(out, 7), 0u);
  EXPECT_FALSE(q.try_push(make_request(99, Vector(1))));
  EXPECT_FALSE(q.push(make_request(99, Vector(1))));
}

TEST(RequestQueue, CloseRacingPushAndPopBatchLosesNoAcceptedRequest) {
  // close() lands at a different point in the producer/consumer schedule
  // each round; whatever was accepted before the close must be popped
  // exactly once, and pushes after the close must be refused.
  for (int round = 0; round < 25; ++round) {
    RequestQueue q(16);
    std::atomic<bool> go{false};
    std::atomic<std::uint64_t> accepted{0};
    std::vector<std::thread> producers;
    for (int p = 0; p < 3; ++p) {
      producers.emplace_back([&] {
        while (!go.load(std::memory_order_acquire)) {
        }
        for (std::uint64_t i = 0; i < 200; ++i) {
          if (!q.push(make_request(i, Vector(1)))) return;  // closed
          accepted.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    std::atomic<std::uint64_t> popped{0};
    std::vector<std::thread> consumers;
    for (int c = 0; c < 2; ++c) {
      consumers.emplace_back([&] {
        std::vector<ServeRequest> batch;
        for (;;) {
          batch.clear();
          const std::size_t n = q.pop_batch(batch, 5);
          if (n == 0) return;
          popped.fetch_add(n, std::memory_order_relaxed);
        }
      });
    }
    go.store(true, std::memory_order_release);
    std::this_thread::sleep_for(std::chrono::microseconds(20 * round));
    q.close();
    for (auto& t : producers) t.join();
    for (auto& t : consumers) t.join();
    EXPECT_EQ(popped.load(), accepted.load()) << "round " << round;
    EXPECT_FALSE(q.try_push(make_request(9999, Vector(1))));
  }
}

TEST(RequestQueue, ContendedMpmcDeliversEveryRequestOnce) {
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kConsumers = 3;
  constexpr std::size_t kPerProducer = 500;
  RequestQueue q(32);

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(
            q.push(make_request(p * kPerProducer + i, Vector(1))));
      }
    });
  }

  std::mutex seen_mu;
  std::set<std::uint64_t> seen;
  std::vector<std::thread> consumers;
  for (std::size_t c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      std::vector<ServeRequest> batch;
      for (;;) {
        batch.clear();
        if (q.pop_batch(batch, 7) == 0) return;
        std::lock_guard<std::mutex> lock(seen_mu);
        for (const ServeRequest& r : batch) {
          EXPECT_TRUE(seen.insert(r.id).second) << "duplicate id " << r.id;
        }
      }
    });
  }

  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(seen.size(), kProducers * kPerProducer);
}

// -------------------------------------------------------------------------
// ShieldedEngine outcomes and degradation.
// -------------------------------------------------------------------------

class EngineFixture : public ::testing::Test {
 protected:
  EngineFixture()
      : region_(highway::make_vehicle_on_left_region(encoder_)),
        predictor_(make_craft_predictor()),
        monitor_(region_, 1.0) {}

  highway::SceneEncoder encoder_;
  verify::InputRegion region_;
  core::TrainedPredictor predictor_;
  core::SafetyMonitor monitor_;
};

TEST_F(EngineFixture, ServesClampsAndDegrades) {
  ShieldedEngine engine(predictor_, monitor_);
  const auto scenes = make_scene_set(encoder_, region_, 2, 3);

  // Outside the region: served untouched regardless of lateral value.
  ServeRequest outside = make_request(0, scenes[0]);
  ServeResponse r0 = engine.serve(outside, Clock::now());
  EXPECT_EQ(r0.outcome, ServeOutcome::kServed);
  EXPECT_FALSE(r0.assumption_hit);
  EXPECT_FALSE(r0.intervened);

  // Inside the region with lateral forced high: clamped to threshold.
  Vector hot = scenes[1];
  // Zero the weighted dims so lateral == bias (1.0); raise the bias via a
  // dedicated predictor instead: simpler — craft a predictor variant.
  core::TrainedPredictor loud = make_craft_predictor();
  loud.network.layer(0).biases()[loud.head.mean_index(
      0, highway::kActionLateral)] = 5.0;
  core::SafetyMonitor hot_monitor(region_, 1.0);
  ShieldedEngine hot_engine(loud, hot_monitor);
  ServeRequest inside = make_request(1, hot);
  ServeResponse r1 = hot_engine.serve(inside, Clock::now());
  EXPECT_EQ(r1.outcome, ServeOutcome::kClamped);
  EXPECT_TRUE(r1.assumption_hit);
  EXPECT_TRUE(r1.intervened);
  EXPECT_NEAR(r1.action[highway::kActionLateral], 1.0, 1e-9);

  // Expired deadline: degraded to the safe action, no inference.
  ServeRequest late = make_request(2, scenes[1],
                                   Clock::now() - std::chrono::seconds(1));
  const core::MonitorStats before = hot_monitor.stats();
  ServeResponse r2 = hot_engine.serve(late, Clock::now());
  EXPECT_EQ(r2.outcome, ServeOutcome::kDegraded);
  EXPECT_EQ(r2.infer_seconds, 0.0);
  EXPECT_EQ(hot_monitor.stats().queries, before.queries);  // untouched
  const Vector safe = hot_monitor.safe_action();
  EXPECT_EQ(r2.action[highway::kActionLateral],
            safe[highway::kActionLateral]);
}

TEST_F(EngineFixture, ServeBatchMatchesPerRequestServe) {
  // 33 requests (not a multiple of anything convenient), a few with
  // already-expired deadlines sprinkled in: serve_batch must reproduce
  // per-request serve() decision for decision, on its own monitor.
  const auto scenes = make_scene_set(encoder_, region_, 33, 7);
  const Clock::time_point now = Clock::now();
  std::vector<ServeRequest> requests;
  requests.reserve(scenes.size());
  for (std::size_t i = 0; i < scenes.size(); ++i) {
    requests.push_back(make_request(
        i, scenes[i],
        i % 5 == 0 ? now - std::chrono::milliseconds(1)
                   : Clock::time_point::max()));
  }

  core::SafetyMonitor seq_monitor(region_, 0.5);
  ShieldedEngine seq_engine(predictor_, seq_monitor);
  std::vector<ServeResponse> expected;
  expected.reserve(requests.size());
  for (const ServeRequest& request : requests) {
    expected.push_back(seq_engine.serve(request, now));
  }

  core::SafetyMonitor batch_monitor(region_, 0.5);
  ShieldedEngine batch_engine(predictor_, batch_monitor);
  const std::vector<ServeResponse> batched =
      batch_engine.serve_batch(requests, now);

  ASSERT_EQ(batched.size(), requests.size());
  bool any_clamped = false, any_degraded = false;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(batched[i].id, expected[i].id);
    EXPECT_EQ(batched[i].outcome, expected[i].outcome) << i;
    EXPECT_EQ(batched[i].assumption_hit, expected[i].assumption_hit) << i;
    EXPECT_EQ(batched[i].intervened, expected[i].intervened) << i;
    ASSERT_EQ(batched[i].action.size(), expected[i].action.size());
    for (std::size_t d = 0; d < expected[i].action.size(); ++d) {
      EXPECT_EQ(batched[i].action[d], expected[i].action[d]) << i;
    }
    any_clamped = any_clamped || expected[i].outcome == ServeOutcome::kClamped;
    any_degraded =
        any_degraded || expected[i].outcome == ServeOutcome::kDegraded;
  }
  // The batch must actually exercise all three outcomes for this check
  // to mean anything.
  EXPECT_TRUE(any_clamped);
  EXPECT_TRUE(any_degraded);
  EXPECT_EQ(batch_monitor.stats().queries, seq_monitor.stats().queries);
  EXPECT_EQ(batch_monitor.stats().assumption_hits,
            seq_monitor.stats().assumption_hits);
  EXPECT_EQ(batch_monitor.stats().interventions,
            seq_monitor.stats().interventions);
}

TEST_F(EngineFixture, ServeBatchAllExpiredNeverTouchesPredictor) {
  ShieldedEngine engine(predictor_, monitor_);
  const auto scenes = make_scene_set(encoder_, region_, 4, 9);
  const Clock::time_point now = Clock::now();
  std::vector<ServeRequest> requests;
  for (std::size_t i = 0; i < scenes.size(); ++i) {
    requests.push_back(
        make_request(i, scenes[i], now - std::chrono::seconds(1)));
  }
  const std::vector<ServeResponse> responses =
      engine.serve_batch(requests, now);
  ASSERT_EQ(responses.size(), requests.size());
  for (const ServeResponse& r : responses) {
    EXPECT_EQ(r.outcome, ServeOutcome::kDegraded);
    EXPECT_EQ(r.infer_seconds, 0.0);
  }
  EXPECT_EQ(monitor_.stats().queries, 0u);  // predictor/monitor untouched

  EXPECT_TRUE(engine.serve_batch({}, now).empty());
}

// -------------------------------------------------------------------------
// InferenceServer end to end.
// -------------------------------------------------------------------------

TEST_F(EngineFixture, ServerRejectsWhenQueueFullAndNoWorkersDrain) {
  // One slot, one worker, but the worker is starved by submitting faster
  // than it can possibly drain is racy — instead verify rejection by
  // stopping the server first: every submit must reject immediately.
  InferenceServer::Config cfg;
  cfg.queue_capacity = 1;
  cfg.pool.workers = 1;
  InferenceServer server(predictor_, monitor_, cfg);
  server.stop();
  auto f = server.submit(Vector(highway::kSceneFeatures));
  ASSERT_EQ(f.wait_for(std::chrono::seconds(5)), std::future_status::ready);
  EXPECT_EQ(f.get().outcome, ServeOutcome::kRejected);
  EXPECT_EQ(server.metrics().rejected.load(), 1u);
}

TEST_F(EngineFixture, ServerStopFulfilsEveryPendingRequest) {
  InferenceServer::Config cfg;
  cfg.queue_capacity = 4096;
  cfg.pool.workers = 3;
  cfg.pool.max_batch = 8;
  InferenceServer server(predictor_, monitor_, cfg);
  const auto scenes = make_scene_set(encoder_, region_, 400, 17);
  std::vector<std::future<ServeResponse>> futures;
  futures.reserve(scenes.size());
  for (const Vector& s : scenes) futures.push_back(server.submit(s));
  server.stop();
  std::size_t resolved = 0;
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(30)),
              std::future_status::ready);
    const ServeResponse r = f.get();
    EXPECT_NE(r.outcome, ServeOutcome::kRejected);
    ++resolved;
  }
  EXPECT_EQ(resolved, scenes.size());
  EXPECT_EQ(server.metrics().completed(), scenes.size());
}

TEST_F(EngineFixture, ExpiredDeadlinesDegradeUnderLoad) {
  InferenceServer::Config cfg;
  cfg.queue_capacity = 512;
  cfg.pool.workers = 2;
  cfg.deadline_seconds = 1e-9;  // effectively already expired
  InferenceServer server(predictor_, monitor_, cfg);
  const auto scenes = make_scene_set(encoder_, region_, 64, 29);
  std::vector<std::future<ServeResponse>> futures;
  for (const Vector& s : scenes) futures.push_back(server.submit_blocking(s));
  const Vector safe = monitor_.safe_action();
  std::size_t degraded = 0;
  for (auto& f : futures) {
    const ServeResponse r = f.get();
    if (r.outcome == ServeOutcome::kDegraded) {
      ++degraded;
      EXPECT_EQ(r.action[highway::kActionLateral],
                safe[highway::kActionLateral]);
    }
  }
  // With a 1ns deadline essentially everything must degrade.
  EXPECT_GT(degraded, scenes.size() / 2);
  EXPECT_EQ(server.metrics().degraded.load(), degraded);
}

// -------------------------------------------------------------------------
// Determinism of the shield: concurrent intervention accounting must
// match a sequential replay of the same scene set exactly.
// -------------------------------------------------------------------------

TEST_F(EngineFixture, ConcurrentInterventionsMatchSequentialReplay) {
  const auto scenes = make_scene_set(encoder_, region_, 1200, 41);

  // Sequential ground truth.
  core::SafetyMonitor sequential(region_, 1.0);
  std::size_t seq_interventions = 0;
  for (const Vector& s : scenes) {
    if (sequential.guard(predictor_, s).intervened) ++seq_interventions;
  }
  ASSERT_GT(sequential.stats().assumption_hits, 0u);
  EXPECT_EQ(sequential.stats().interventions, seq_interventions);

  // Concurrent replay through the full runtime, twice to shake schedules.
  for (int round = 0; round < 2; ++round) {
    core::SafetyMonitor concurrent(region_, 1.0);
    InferenceServer::Config cfg;
    cfg.queue_capacity = 256;
    cfg.pool.workers = 4;
    cfg.pool.max_batch = 16;
    InferenceServer server(predictor_, concurrent, cfg);
    std::vector<std::future<ServeResponse>> futures;
    futures.reserve(scenes.size());
    for (const Vector& s : scenes) {
      futures.push_back(server.submit_blocking(s));
    }
    for (auto& f : futures) f.wait();
    server.stop();

    EXPECT_EQ(server.metrics().interventions.load(), seq_interventions);
    EXPECT_EQ(server.metrics().assumption_hits.load(),
              sequential.stats().assumption_hits);
    EXPECT_EQ(concurrent.stats().interventions, seq_interventions);
    EXPECT_EQ(server.metrics().completed(), scenes.size());
  }
}

// -------------------------------------------------------------------------
// Hot reload: atomic model swap under live traffic.
// -------------------------------------------------------------------------

/// Crafts a registered-artifact analogue of make_craft_predictor with a
/// chosen lateral bias (which controls how often the shield intervenes),
/// content-hashed as the registry would.
registry::ModelArtifact make_serve_artifact(const std::string& version,
                                            double lateral_bias,
                                            const verify::InputRegion& region,
                                            double threshold = 1.0) {
  core::TrainedPredictor p = make_craft_predictor();
  p.network.layer(0).biases()[p.head.mean_index(
      0, highway::kActionLateral)] = lateral_bias;
  registry::MonitorConfig config;
  config.region = region;
  config.lateral_threshold = threshold;
  registry::ModelArtifact artifact =
      registry::make_artifact(version, p, config);
  std::stringstream ss;
  artifact.content_hash = registry::save_artifact(ss, artifact);
  return artifact;
}

TEST_F(EngineFixture, HotReloadUnderLiveTrafficKeepsShieldContinuity) {
  const auto scenes = make_scene_set(encoder_, region_, 900, 51);
  // Three models with different intervention profiles: v2's loud lateral
  // bias clamps on every in-region scene, v1/v3 only sometimes.
  const registry::ModelArtifact v1 = make_serve_artifact("v1", 0.6, region_);
  const registry::ModelArtifact v2 = make_serve_artifact("v2", 5.0, region_);
  const registry::ModelArtifact v3 = make_serve_artifact("v3", 1.2, region_);

  InferenceServer::Config cfg;
  cfg.queue_capacity = 64;
  cfg.pool.workers = 2;
  cfg.pool.max_batch = 8;
  InferenceServer server(v1, cfg);
  EXPECT_EQ(server.model_version(), "v1");

  std::vector<std::future<ServeResponse>> futures(scenes.size());
  std::thread producer([&] {
    for (std::size_t i = 0; i < scenes.size(); ++i) {
      futures[i] = server.submit_blocking(scenes[i]);
    }
  });

  // Swap twice while the producer is mid-stream: each swap waits until
  // enough requests completed that the retiring version demonstrably
  // served traffic, then publishes the next model.
  const auto wait_completed = [&server](std::uint64_t target) {
    while (server.metrics().completed() < target) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  wait_completed(250);
  server.reload(v2);
  EXPECT_EQ(server.model_version(), "v2");
  wait_completed(550);
  server.reload(v3);
  producer.join();
  server.stop();

  EXPECT_EQ(server.metrics().reloads.load(), 2u);
  EXPECT_EQ(server.live_model().swap_count(), 2u);
  EXPECT_EQ(server.model_version(), "v3");

  // Every request was answered (no drops across swaps), every response
  // carries the version that actually served it, and all three versions
  // took traffic.
  std::map<std::string, std::vector<std::size_t>> by_version;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const ServeResponse r = futures[i].get();
    ASSERT_NE(r.outcome, ServeOutcome::kRejected) << i;
    ASSERT_FALSE(r.model_version.empty()) << i;
    by_version[r.model_version].push_back(i);
  }
  ASSERT_EQ(by_version.size(), 3u);
  for (const char* v : {"v1", "v2", "v3"}) {
    EXPECT_GT(by_version[v].size(), 0u) << v;
  }
  EXPECT_EQ(server.metrics().completed(), scenes.size());

  // Shield continuity: each version's intervention slice must equal a
  // sequential replay of exactly the scenes that version served, and the
  // global counters must be the sum of the slices.
  std::uint64_t sum_interventions = 0, sum_hits = 0, sum_completed = 0;
  for (const auto& [version, indices] : by_version) {
    const registry::ModelArtifact& artifact =
        version == "v1" ? v1 : (version == "v2" ? v2 : v3);
    core::SafetyMonitor replay(artifact.monitor.region,
                               artifact.monitor.lateral_threshold);
    const core::TrainedPredictor predictor = artifact.predictor();
    for (const std::size_t i : indices) replay.guard(predictor, scenes[i]);
    const core::MonitorStats stats = replay.stats();
    VersionCounters& slice = server.metrics().version_counters(version);
    EXPECT_EQ(slice.interventions.load(), stats.interventions) << version;
    EXPECT_EQ(slice.assumption_hits.load(), stats.assumption_hits) << version;
    EXPECT_EQ(slice.completed(), indices.size()) << version;
    sum_interventions += slice.interventions.load();
    sum_hits += slice.assumption_hits.load();
    sum_completed += slice.completed();
  }
  EXPECT_EQ(server.metrics().interventions.load(), sum_interventions);
  EXPECT_EQ(server.metrics().assumption_hits.load(), sum_hits);
  EXPECT_EQ(server.metrics().completed(), sum_completed);
  EXPECT_GT(sum_interventions, 0u);

  // The metrics dump carries the per-version slices and lifecycle counts.
  const std::string json = server.metrics().to_json(1.0);
  for (const char* key : {"\"versions\"", "\"v1\"", "\"v2\"", "\"v3\"",
                          "\"lifecycle\"", "\"reloads\": 2"}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
}

TEST_F(EngineFixture, ReloadRerunsBackendAdmissionPerArtifact) {
  const registry::ModelArtifact v1 = make_serve_artifact("v1", 0.6, region_);
  const registry::ModelArtifact v2 = make_serve_artifact("v2", 1.2, region_);
  InferenceServer::Config cfg;
  cfg.pool.workers = 1;
  cfg.backend = linalg::KernelBackend::kSimd;
  InferenceServer server(v1, cfg);
  // Whatever the gate decided at construction it must re-decide at
  // reload: the returned backend matches the resolver's verdict for the
  // new artifact's network, and the live snapshot reports it.
  const linalg::KernelBackend resolved = resolve_serving_backend(
      v2.network, linalg::KernelBackend::kSimd, cfg.pool.max_batch);
  EXPECT_EQ(server.reload(v2), resolved);
  EXPECT_EQ(server.backend(), resolved);
  EXPECT_EQ(server.model_version(), "v2");
  server.stop();
}

// -------------------------------------------------------------------------
// Admission control.
// -------------------------------------------------------------------------

TEST_F(EngineFixture, DegradeAtWatermarkShedsWithSafeActionUnderOverload) {
  InferenceServer::Config cfg;
  cfg.queue_capacity = 8;
  cfg.pool.workers = 1;
  cfg.pool.max_batch = 4;
  cfg.admission = AdmissionPolicy::kDegradeAtWatermark;
  cfg.queue_watermark = 0.25;  // shed at depth 2 of 8
  cfg.model_version = "wm";
  InferenceServer server(predictor_, monitor_, cfg);
  const auto scenes = make_scene_set(encoder_, region_, 64, 33);
  const Vector safe = monitor_.safe_action();

  // A tight single-threaded producer outruns one worker near-immediately;
  // keep bursting until shedding is observed (bounded, deterministic in
  // practice on any scheduler).
  std::vector<std::future<ServeResponse>> futures;
  for (int burst = 0; burst < 200 && server.metrics().shed.load() == 0;
       ++burst) {
    for (const Vector& s : scenes) futures.push_back(server.submit(s));
  }
  server.stop();

  std::size_t degraded = 0;
  for (auto& f : futures) {
    const ServeResponse r = f.get();
    // Under this policy nothing is rejected: the main thread is the only
    // producer, so once the depth check passes the push cannot race full.
    ASSERT_NE(r.outcome, ServeOutcome::kRejected);
    EXPECT_EQ(r.model_version, "wm");
    if (r.outcome == ServeOutcome::kDegraded) {
      ++degraded;
      EXPECT_EQ(r.action[highway::kActionLateral],
                safe[highway::kActionLateral]);
      EXPECT_EQ(r.infer_seconds, 0.0);  // shed answers skip inference
    }
  }
  EXPECT_GT(server.metrics().shed.load(), 0u);
  EXPECT_EQ(server.metrics().shed.load(), degraded);  // no deadline set
  EXPECT_EQ(server.metrics().degraded.load(), degraded);
  EXPECT_EQ(server.metrics().completed(), futures.size());
  EXPECT_EQ(server.metrics().version_counters("wm").completed(),
            futures.size());
  EXPECT_GE(server.metrics().queue_depth_peak.load(), 1u);
}

TEST_F(EngineFixture, RejectWhenFullStaysTheDefaultPolicy) {
  InferenceServer::Config cfg;
  EXPECT_EQ(cfg.admission, AdmissionPolicy::kRejectWhenFull);
  EXPECT_STREQ(to_string(AdmissionPolicy::kRejectWhenFull),
               "reject-when-full");
  EXPECT_STREQ(to_string(AdmissionPolicy::kDegradeAtWatermark),
               "degrade-at-watermark");
}

// -------------------------------------------------------------------------
// Multi-model serving.
// -------------------------------------------------------------------------

TEST_F(EngineFixture, MultiModelRoutesTagsAndMatchesPerModelReplay) {
  const auto scenes = make_scene_set(encoder_, region_, 600, 61);
  // Distinct intervention profiles, so a routing mistake is visible in
  // the counters, not just the tags.
  const registry::ModelArtifact a =
      make_serve_artifact("alpha-v1", 0.6, region_);
  const registry::ModelArtifact b =
      make_serve_artifact("beta-v1", 5.0, region_);
  MultiModelConfig cfg;
  cfg.queue_capacity = 32;
  cfg.pool.workers = 3;  // more workers than a busy queue -> stealing
  cfg.pool.max_batch = 8;
  MultiModelServer server({{"alpha", a}, {"beta", b}}, cfg);
  EXPECT_EQ(server.num_models(), 2u);
  EXPECT_EQ(server.version("alpha"), "alpha-v1");
  EXPECT_EQ(server.version("beta"), "beta-v1");

  std::vector<std::future<ServeResponse>> futures;
  futures.reserve(scenes.size());
  for (std::size_t i = 0; i < scenes.size(); ++i) {
    futures.push_back(
        server.submit_blocking(i % 2 == 0 ? "alpha" : "beta", scenes[i]));
  }
  std::map<std::string, std::vector<std::size_t>> by_model;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const ServeResponse r = futures[i].get();
    ASSERT_NE(r.outcome, ServeOutcome::kRejected) << i;
    EXPECT_EQ(r.model_id, i % 2 == 0 ? "alpha" : "beta") << i;
    EXPECT_EQ(r.model_version, i % 2 == 0 ? "alpha-v1" : "beta-v1") << i;
    by_model[r.model_id].push_back(i);
  }
  server.stop();
  EXPECT_EQ(server.metrics().completed(), scenes.size());
  EXPECT_EQ(server.metrics().mixed_batches.load(), 0u);

  // Per-model slices must equal a sequential replay of exactly the
  // scenes routed to that model (bitwise shield determinism per model).
  std::uint64_t sum_interventions = 0;
  for (const auto& [model_id, indices] : by_model) {
    const registry::ModelArtifact& artifact = model_id == "alpha" ? a : b;
    core::SafetyMonitor replay(artifact.monitor.region,
                               artifact.monitor.lateral_threshold);
    const core::TrainedPredictor predictor = artifact.predictor();
    for (const std::size_t i : indices) replay.guard(predictor, scenes[i]);
    const ModelMetrics& slice = server.metrics().model_metrics(model_id);
    EXPECT_EQ(slice.counters.interventions.load(),
              replay.stats().interventions)
        << model_id;
    EXPECT_EQ(slice.counters.assumption_hits.load(),
              replay.stats().assumption_hits)
        << model_id;
    EXPECT_EQ(slice.counters.completed(), indices.size()) << model_id;
    EXPECT_GT(slice.batches.load(), 0u) << model_id;
    sum_interventions += slice.counters.interventions.load();
  }
  EXPECT_EQ(server.metrics().interventions.load(), sum_interventions);
  EXPECT_GT(sum_interventions, 0u);

  // The dump carries the per-model section.
  const std::string json = server.metrics().to_json(1.0);
  for (const char* key :
       {"\"models\"", "\"alpha\"", "\"beta\"", "\"mixed_batches\": 0"}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
}

TEST_F(EngineFixture, MultiModelUnknownIdRejectsImmediately) {
  const registry::ModelArtifact a =
      make_serve_artifact("alpha-v1", 0.6, region_);
  MultiModelConfig cfg;
  cfg.pool.workers = 1;
  MultiModelServer server({{"alpha", a}}, cfg);
  auto f = server.submit("nope", Vector(highway::kSceneFeatures));
  ASSERT_EQ(f.wait_for(std::chrono::seconds(5)), std::future_status::ready);
  EXPECT_EQ(f.get().outcome, ServeOutcome::kRejected);
  auto g = server.submit_blocking("nope", Vector(highway::kSceneFeatures));
  EXPECT_EQ(g.get().outcome, ServeOutcome::kRejected);
  EXPECT_EQ(server.metrics().rejected.load(), 2u);
  EXPECT_THROW(server.reload("nope", a), Error);
  server.stop();
}

TEST_F(EngineFixture, MultiModelReloadSwapsOnlyThatSlot) {
  const registry::ModelArtifact a =
      make_serve_artifact("alpha-v1", 0.6, region_);
  const registry::ModelArtifact b1 =
      make_serve_artifact("beta-v1", 0.6, region_);
  const registry::ModelArtifact b2 =
      make_serve_artifact("beta-v2", 5.0, region_);
  MultiModelConfig cfg;
  cfg.pool.workers = 2;
  MultiModelServer server({{"alpha", a}, {"beta", b1}}, cfg);
  server.reload("beta", b2);
  EXPECT_EQ(server.version("beta"), "beta-v2");
  EXPECT_EQ(server.version("alpha"), "alpha-v1");  // untouched
  EXPECT_EQ(server.metrics().reloads.load(), 1u);

  const auto scenes = make_scene_set(encoder_, region_, 16, 71);
  std::vector<std::future<ServeResponse>> futures;
  for (std::size_t i = 0; i < scenes.size(); ++i) {
    futures.push_back(
        server.submit_blocking(i % 2 == 0 ? "alpha" : "beta", scenes[i]));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const ServeResponse r = futures[i].get();
    EXPECT_EQ(r.model_version, i % 2 == 0 ? "alpha-v1" : "beta-v2") << i;
  }
  server.stop();
}

TEST_F(EngineFixture, MultiModelShedIsFleetLevelAtWatermark) {
  const registry::ModelArtifact a =
      make_serve_artifact("alpha-v1", 0.6, region_);
  const registry::ModelArtifact b =
      make_serve_artifact("beta-v1", 0.6, region_);
  MultiModelConfig cfg;
  cfg.queue_capacity = 64;
  cfg.admission_budget = 8;
  cfg.pool.workers = 1;
  cfg.pool.max_batch = 4;
  cfg.admission = AdmissionPolicy::kDegradeAtWatermark;
  cfg.queue_watermark = 0.25;  // shed at FLEET depth 2 of budget 8
  MultiModelServer server({{"alpha", a}, {"beta", b}}, cfg);
  const auto scenes = make_scene_set(encoder_, region_, 64, 33);

  // Burst both models from one producer until the fleet watermark trips;
  // the shed decision reads the GLOBAL depth, so backlog on one model
  // sheds traffic for the other too.
  std::vector<std::future<ServeResponse>> futures;
  for (int burst = 0; burst < 200 && server.metrics().shed.load() == 0;
       ++burst) {
    for (std::size_t i = 0; i < scenes.size(); ++i) {
      futures.push_back(
          server.submit(i % 2 == 0 ? "alpha" : "beta", scenes[i]));
    }
  }
  server.stop();

  std::size_t degraded = 0;
  for (auto& f : futures) {
    const ServeResponse r = f.get();
    ASSERT_NE(r.outcome, ServeOutcome::kRejected);
    EXPECT_FALSE(r.model_id.empty());
    EXPECT_EQ(r.model_version,
              r.model_id == "alpha" ? "alpha-v1" : "beta-v1");
    if (r.outcome == ServeOutcome::kDegraded) ++degraded;
  }
  EXPECT_GT(server.metrics().shed.load(), 0u);
  EXPECT_EQ(server.metrics().shed.load(), degraded);
  // The global shed is exactly the sum of the per-model shed slices.
  const std::uint64_t model_shed =
      server.metrics().model_metrics("alpha").shed.load() +
      server.metrics().model_metrics("beta").shed.load();
  EXPECT_EQ(server.metrics().shed.load(), model_shed);
  EXPECT_EQ(server.metrics().completed(), futures.size());
}

// -------------------------------------------------------------------------
// Metrics.
// -------------------------------------------------------------------------

TEST_F(EngineFixture, SimdBackendGateAdmitsOrFallsBackToReference) {
  // kReference passes through the gate untouched.
  EXPECT_EQ(resolve_serving_backend(predictor_,
                                    linalg::KernelBackend::kReference, 16),
            linalg::KernelBackend::kReference);
  // kSimd must resolve to whatever the tolerance harness says on this
  // host — and the harness itself must agree with the gate's verdict.
  const linalg::KernelBackend resolved = resolve_serving_backend(
      predictor_, linalg::KernelBackend::kSimd, 16);
  const linalg::KernelReport report =
      linalg::verify_kernel_backend(linalg::KernelBackend::kSimd);
  EXPECT_EQ(resolved, report.pass ? linalg::KernelBackend::kSimd
                                  : linalg::KernelBackend::kReference);
}

TEST_F(EngineFixture, SimdServeBatchMatchesReferenceDecisions) {
  const auto scenes = make_scene_set(encoder_, region_, 33, 7);
  const Clock::time_point now = Clock::now();
  std::vector<ServeRequest> requests;
  requests.reserve(scenes.size());
  for (std::size_t i = 0; i < scenes.size(); ++i) {
    requests.push_back(make_request(i, scenes[i]));
  }

  core::SafetyMonitor ref_monitor(region_, 0.5);
  ShieldedEngine ref_engine(predictor_, ref_monitor);
  const std::vector<ServeResponse> expected =
      ref_engine.serve_batch(requests, now);

  core::SafetyMonitor simd_monitor(region_, 0.5);
  ShieldedEngine simd_engine(predictor_, simd_monitor,
                             linalg::KernelBackend::kSimd);
  const std::vector<ServeResponse> simd =
      simd_engine.serve_batch(requests, now);

  // Guard decisions must agree and actions must coincide to far below
  // any actuation-relevant precision (the forward outputs differ only by
  // the reassociated contraction rounding).
  ASSERT_EQ(simd.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(simd[i].outcome, expected[i].outcome) << i;
    EXPECT_EQ(simd[i].intervened, expected[i].intervened) << i;
    ASSERT_EQ(simd[i].action.size(), expected[i].action.size());
    for (std::size_t d = 0; d < expected[i].action.size(); ++d) {
      EXPECT_NEAR(simd[i].action[d], expected[i].action[d], 1e-9) << i;
    }
  }
  EXPECT_EQ(simd_monitor.stats().interventions,
            ref_monitor.stats().interventions);
}

TEST_F(EngineFixture, ServerWithSimdConfigResolvesGateAndServes) {
  InferenceServer::Config config;
  config.pool.workers = 2;
  config.pool.max_batch = 8;
  config.backend = linalg::KernelBackend::kSimd;
  InferenceServer server(predictor_, monitor_, config);
  // Whatever the gate decided, the server must report it and serve.
  const linalg::KernelBackend active = server.backend();
  EXPECT_TRUE(active == linalg::KernelBackend::kSimd ||
              active == linalg::KernelBackend::kReference);
  const auto scenes = make_scene_set(encoder_, region_, 24, 13);
  std::vector<std::future<ServeResponse>> futures;
  futures.reserve(scenes.size());
  for (const Vector& scene : scenes) {
    futures.push_back(server.submit_blocking(scene));
  }
  for (std::future<ServeResponse>& f : futures) {
    const ServeResponse response = f.get();
    EXPECT_NE(response.outcome, ServeOutcome::kRejected);
    EXPECT_FALSE(response.action.size() == 0);
  }
  server.stop();
}

TEST(Metrics, HistogramPercentilesBracketSamples) {
  LatencyHistogram h;
  EXPECT_EQ(h.percentile_ns(0.5), 0.0);
  for (std::uint64_t i = 1; i <= 1000; ++i) h.record(i * 1000);  // 1us..1ms
  EXPECT_EQ(h.count(), 1000u);
  const double p50 = h.percentile_ns(0.50);
  const double p95 = h.percentile_ns(0.95);
  const double p99 = h.percentile_ns(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // Bucket upper bounds over-approximate by at most 2x.
  EXPECT_GE(p50, 500.0 * 1000);
  EXPECT_LE(p50, 2.0 * 500.0 * 1000);
  EXPECT_GE(p99, 990.0 * 1000 / 2);
  EXPECT_NEAR(h.mean_ns(), 500.5 * 1000, 1000.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
}

TEST(Metrics, ConcurrentRecordingLosesNothing) {
  LatencyHistogram h;
  constexpr int kThreads = 8, kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 1; i <= kPerThread; ++i) {
        h.record(static_cast<std::uint64_t>(i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Metrics, JsonDumpContainsEverySection) {
  MetricsRegistry m;
  m.submitted.store(10);
  m.served.store(7);
  m.clamped.store(2);
  m.degraded.store(1);
  m.interventions.store(2);
  m.batches.store(5);
  m.batch_items.store(10);
  m.shed.store(4);
  m.reloads.store(1);
  m.version_counters("vX").served.store(6);
  m.total_latency.record(1500000);
  const std::string json = m.to_json(2.0);
  for (const char* key :
       {"\"requests\"", "\"shield\"", "\"batching\"", "\"latency\"",
        "\"queue\"", "\"infer\"", "\"total\"", "\"p99_ms\"",
        "\"throughput_rps\"", "\"interventions\": 2",
        "\"mean_batch_size\": 2", "\"lifecycle\"", "\"shed\": 4",
        "\"reloads\": 1", "\"versions\"", "\"vX\"", "\"served\": 6",
        "\"queue_depth_peak\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  EXPECT_DOUBLE_EQ(m.mean_batch_size(), 2.0);
  EXPECT_EQ(m.completed(), 10u);
  m.note_queue_depth(3);
  m.note_queue_depth(2);
  EXPECT_EQ(m.queue_depth_peak.load(), 3u);
  // Version slices must survive reset() by identity (handed-out
  // references stay valid) while their counts zero.
  VersionCounters& slice = m.version_counters("vX");
  m.reset();
  EXPECT_EQ(m.submitted.load(), 0u);
  EXPECT_EQ(m.total_latency.count(), 0u);
  EXPECT_EQ(m.shed.load(), 0u);
  EXPECT_EQ(slice.served.load(), 0u);
  EXPECT_EQ(&slice, &m.version_counters("vX"));
}

// -------------------------------------------------------------------------
// Quantized serving: the exact integer semantics under the shield.
// -------------------------------------------------------------------------

/// Input-domain bound covering the whole region box (the scene sets are
/// sampled inside it), so saturation never distorts the replay.
double region_input_limit(const verify::InputRegion& region) {
  double limit = 1.0;
  for (const auto& iv : region.box) {
    limit = std::max(limit, std::max(std::abs(iv.lo), std::abs(iv.hi)));
  }
  return limit;
}

/// make_serve_artifact + an attached quantized payload (re-hashed).
registry::ModelArtifact make_quantized_serve_artifact(
    const std::string& version, double lateral_bias,
    const verify::InputRegion& region, double threshold = 1.0,
    int frac_bits = 10) {
  registry::ModelArtifact artifact =
      make_serve_artifact(version, lateral_bias, region, threshold);
  registry::attach_quantized(artifact, frac_bits,
                             region_input_limit(region));
  std::stringstream ss;
  artifact.content_hash = registry::save_artifact(ss, artifact);
  return artifact;
}

/// Scalar fixed-point replay of one scene: the same saturating
/// quantization the engine applies, then QuantizedNetwork::forward_fixed
/// (the semantic reference the CNF encoder compiles) and the same MDN
/// head parse — what every quantized serving decision must match bit for
/// bit.
Vector replay_quantized_mean(const registry::ModelArtifact& artifact,
                             const nn::QuantizedEngine& engine,
                             const nn::MdnHead& head, const Vector& scene) {
  const nn::QuantizedNetwork& q = artifact.quantized->network;
  std::vector<std::int64_t> fixed(scene.size());
  for (std::size_t j = 0; j < scene.size(); ++j) {
    fixed[j] = engine.to_fixed(scene[j]);
  }
  const std::vector<std::int64_t> out = q.forward_fixed(fixed);
  Vector raw(out.size());
  for (std::size_t j = 0; j < out.size(); ++j) {
    raw[j] = engine.from_fixed(out[j]);
  }
  return head.parse(raw).mean();
}

TEST_F(EngineFixture, QuantizedBackendGateAdmitsPayloadOrFallsBack) {
  const registry::ModelArtifact plain =
      make_serve_artifact("vf", 0.6, region_);
  const registry::ModelArtifact quant =
      make_quantized_serve_artifact("vq", 0.6, region_);

  // No payload: kQuantized degrades to float reference with a warning.
  const ResolvedBackend none = resolve_serving_backend(
      plain, linalg::KernelBackend::kQuantized, 16);
  EXPECT_EQ(none.backend, linalg::KernelBackend::kReference);

  // Payload present: admitted; the inner integer kernel must agree with
  // the bitwise harness's verdict on this host.
  const ResolvedBackend admitted = resolve_serving_backend(
      quant, linalg::KernelBackend::kQuantized, 16);
  EXPECT_EQ(admitted.backend, linalg::KernelBackend::kQuantized);
  const linalg::QuantKernelReport report =
      linalg::verify_quantized_kernels();
  EXPECT_EQ(admitted.quantized_kernel,
            report.pass ? linalg::KernelBackend::kQuantized
                        : linalg::KernelBackend::kReference);

  // Non-quantized requests on a quantized artifact defer to the float
  // gates untouched.
  const ResolvedBackend ref = resolve_serving_backend(
      quant, linalg::KernelBackend::kReference, 16);
  EXPECT_EQ(ref.backend, linalg::KernelBackend::kReference);
}

TEST_F(EngineFixture, QuantizedServeBatchBitwiseMatchesScalarReplay) {
  const registry::ModelArtifact artifact =
      make_quantized_serve_artifact("vq", 0.6, region_, 0.5);
  const registry::ModelSnapshot snapshot(
      artifact, linalg::KernelBackend::kQuantized);
  const ShieldedEngine engine(snapshot);
  ASSERT_NE(snapshot.quantized_engine(), nullptr);

  // 33 requests with expired deadlines sprinkled in, exactly like the
  // float equivalence test.
  const auto scenes = make_scene_set(encoder_, region_, 33, 7);
  const Clock::time_point now = Clock::now();
  std::vector<ServeRequest> requests;
  requests.reserve(scenes.size());
  for (std::size_t i = 0; i < scenes.size(); ++i) {
    requests.push_back(make_request(
        i, scenes[i],
        i % 5 == 0 ? now - std::chrono::milliseconds(1)
                   : Clock::time_point::max()));
  }
  const std::vector<ServeResponse> responses =
      engine.serve_batch(requests, now);

  core::SafetyMonitor replay_monitor(region_, 0.5);
  const Vector safe = replay_monitor.safe_action();
  bool any_clamped = false;
  ASSERT_EQ(responses.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const ServeResponse& r = responses[i];
    EXPECT_EQ(r.backend, linalg::KernelBackend::kQuantized) << i;
    if (i % 5 == 0) {
      EXPECT_EQ(r.outcome, ServeOutcome::kDegraded) << i;
      EXPECT_EQ(r.action[highway::kActionLateral],
                safe[highway::kActionLateral]);
      continue;
    }
    // Bitwise: the served action IS the scalar fixed-point replay's.
    const Vector mean = replay_quantized_mean(
        artifact, *snapshot.quantized_engine(), snapshot.predictor().head,
        scenes[i]);
    const core::GuardDecision expected =
        replay_monitor.guard_action(scenes[i], mean);
    EXPECT_EQ(r.outcome, expected.intervened ? ServeOutcome::kClamped
                                             : ServeOutcome::kServed)
        << i;
    EXPECT_EQ(r.assumption_hit, expected.assumption_hit) << i;
    EXPECT_EQ(r.intervened, expected.intervened) << i;
    ASSERT_EQ(r.action.size(), expected.action.size());
    for (std::size_t d = 0; d < expected.action.size(); ++d) {
      EXPECT_EQ(r.action[d], expected.action[d]) << i << "," << d;
    }
    any_clamped = any_clamped || expected.intervened;

    // Single-request quantized serve is the same arithmetic at batch 1.
    ServeRequest single = make_request(i, scenes[i]);
    const ServeResponse one = engine.serve(single, now);
    EXPECT_EQ(one.outcome, r.outcome) << i;
    for (std::size_t d = 0; d < r.action.size(); ++d) {
      EXPECT_EQ(one.action[d], r.action[d]) << i << "," << d;
    }
  }
  EXPECT_TRUE(any_clamped);
}

TEST_F(EngineFixture, HotSwapBetweenFloatAndQuantizedUnderTraffic) {
  const auto scenes = make_scene_set(encoder_, region_, 900, 51);
  const registry::ModelArtifact v1 = make_serve_artifact("v1", 0.6, region_);
  const registry::ModelArtifact v2 =
      make_quantized_serve_artifact("v2", 1.2, region_);
  const registry::ModelArtifact v3 = make_serve_artifact("v3", 0.9, region_);

  InferenceServer::Config cfg;
  cfg.queue_capacity = 64;
  cfg.pool.workers = 2;
  cfg.pool.max_batch = 8;
  cfg.backend = linalg::KernelBackend::kQuantized;
  InferenceServer server(v1, cfg);
  // v1 has no payload: the gate falls back to float reference kernels.
  EXPECT_EQ(server.backend(), linalg::KernelBackend::kReference);

  // The producer swaps models at submission milestones. With a 64-slot
  // queue, everything more than 64 submissions behind a milestone has
  // already been popped — so each version is guaranteed a non-empty
  // slice of traffic under any thread scheduling (TSan included), while
  // the swap still races live workers mid-batch.
  std::vector<std::future<ServeResponse>> futures(scenes.size());
  std::thread producer([&] {
    for (std::size_t i = 0; i < scenes.size(); ++i) {
      if (i == 300) {
        EXPECT_EQ(server.reload(v2), linalg::KernelBackend::kQuantized);
      }
      if (i == 600) {
        EXPECT_EQ(server.reload(v3), linalg::KernelBackend::kReference);
      }
      futures[i] = server.submit_blocking(scenes[i]);
    }
  });
  producer.join();
  server.stop();
  EXPECT_EQ(server.metrics().reloads.load(), 2u);

  // Every response carries the version AND the arithmetic that produced
  // it; all three versions took traffic, v2's through the integer engine.
  std::map<std::string, std::vector<std::size_t>> by_version;
  std::vector<ServeResponse> responses(futures.size());
  for (std::size_t i = 0; i < futures.size(); ++i) {
    responses[i] = futures[i].get();
    const ServeResponse& r = responses[i];
    ASSERT_NE(r.outcome, ServeOutcome::kRejected) << i;
    EXPECT_EQ(r.backend, r.model_version == "v2"
                             ? linalg::KernelBackend::kQuantized
                             : linalg::KernelBackend::kReference)
        << i;
    by_version[r.model_version].push_back(i);
  }
  ASSERT_EQ(by_version.size(), 3u);
  for (const char* v : {"v1", "v2", "v3"}) {
    EXPECT_GT(by_version[v].size(), 0u) << v;
  }

  // The quantized slice of traffic must replay bitwise through the
  // scalar fixed-point reference — shield decisions included.
  const nn::QuantizedEngine replay_engine(
      v2.quantized->network, v2.quantized->input_limit,
      linalg::KernelBackend::kReference);
  const core::TrainedPredictor v2_predictor = v2.predictor();
  core::SafetyMonitor replay_monitor(v2.monitor.region,
                                     v2.monitor.lateral_threshold);
  std::uint64_t replayed_interventions = 0;
  for (const std::size_t i : by_version["v2"]) {
    const Vector mean = replay_quantized_mean(v2, replay_engine,
                                              v2_predictor.head, scenes[i]);
    const core::GuardDecision expected =
        replay_monitor.guard_action(scenes[i], mean);
    if (expected.intervened) ++replayed_interventions;
    // Bitwise per-response: the served action IS the replayed one.
    EXPECT_EQ(responses[i].intervened, expected.intervened) << i;
    ASSERT_EQ(responses[i].action.size(), expected.action.size());
    for (std::size_t d = 0; d < expected.action.size(); ++d) {
      EXPECT_EQ(responses[i].action[d], expected.action[d]) << i;
    }
  }
  VersionCounters& v2_slice = server.metrics().version_counters("v2");
  EXPECT_EQ(v2_slice.interventions.load(), replayed_interventions);
  EXPECT_EQ(v2_slice.completed(), by_version["v2"].size());

  // Per-backend metrics slices: the quantized slice is exactly v2's
  // traffic, the reference slice is v1's + v3's, and the dump carries
  // the "backends" section.
  VersionCounters& qslice = server.metrics().backend_counters("quantized");
  VersionCounters& rslice = server.metrics().backend_counters("reference");
  EXPECT_EQ(qslice.completed(), by_version["v2"].size());
  EXPECT_EQ(rslice.completed(),
            by_version["v1"].size() + by_version["v3"].size());
  EXPECT_EQ(qslice.interventions.load(), replayed_interventions);
  const std::string json = server.metrics().to_json(1.0);
  for (const char* key : {"\"backends\"", "\"quantized\"", "\"reference\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
}

}  // namespace
}  // namespace safenn::serve
