#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "verify/cache.hpp"
#include "verify/portfolio.hpp"

namespace safenn::verify {
namespace {

namespace fs = std::filesystem;
using linalg::Vector;
using nn::Activation;
using nn::Network;

constexpr double kInf = std::numeric_limits<double>::infinity();

// -------------------------------------------------------------------------
// Fixture network with hand-computable semantics over [-1,1]^2:
//   h1 = relu(0.5 a + 0.25 b)        h2 = relu(-0.5 a + 0.5 b)
//   out = 0.5 h1 + 0.5 h2
// True maximum 0.5 (at a=-1, b=1); interval bound 0.875; symbolic /
// triangle-LP root bound exactly 0.625 (the relaxations couple through
// u+v = 0.75 b). All weights sit on the 2^-6 grid, so the quantized
// engine's margin analysis stays tight. Thresholds used below:
//   0.85  — above 0.625: the root symbolic bound decides instantly
//   0.60  — inside (0.5 + sat margin, 0.625): only the CNF probe proves
//   0.55  — below 0.625, above 0.5: needs branching (split or MILP)
//   0.499 — below the true max: violated, witness at the corner
// -------------------------------------------------------------------------

Network craft_net() {
  nn::DenseLayer l1(2, 2, Activation::kRelu);
  l1.weights() = linalg::Matrix{{0.5, 0.25}, {-0.5, 0.5}};
  l1.biases() = Vector{0.0, 0.0};
  nn::DenseLayer l2(2, 1, Activation::kIdentity);
  l2.weights() = linalg::Matrix{{0.5, 0.5}};
  l2.biases() = Vector{0.0};
  Network net;
  net.add_layer(std::move(l1));
  net.add_layer(std::move(l2));
  return net;
}

SafetyProperty craft_property(double threshold,
                              const std::string& name = "craft") {
  SafetyProperty prop;
  prop.name = name;
  prop.region.box = Box(2, Interval{-1.0, 1.0});
  prop.expr.terms = {{0, 1.0}};
  prop.threshold = threshold;
  return prop;
}

PortfolioOptions det_options() {
  PortfolioOptions o;
  o.deterministic = true;
  o.num_workers = 1;
  return o;
}

class CacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::path(::testing::TempDir()) /
            ("safenn_vcache_" +
             std::string(
                 ::testing::UnitTest::GetInstance()->current_test_info()->name())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

// -------------------------------------------------------------------------
// Cache keys: pure functions of content.
// -------------------------------------------------------------------------

TEST(CacheKey, StableAcrossReconstruction) {
  // Rebuilding identical artifacts (as a process restart would) yields
  // the identical key — nothing address- or session-dependent leaks in.
  const CacheKey a = make_cache_key(craft_net(), craft_property(0.55));
  const CacheKey b = make_cache_key(craft_net(), craft_property(0.55));
  EXPECT_EQ(a.network, b.network);
  EXPECT_EQ(a.property, b.property);
  EXPECT_EQ(a.combined, b.combined);
  EXPECT_EQ(a.hex(), b.hex());
}

TEST(CacheKey, PropertyNameExcluded) {
  const CacheKey a = make_cache_key(craft_net(), craft_property(0.55, "v1"));
  const CacheKey b =
      make_cache_key(craft_net(), craft_property(0.55, "renamed"));
  EXPECT_EQ(a.combined, b.combined);
}

TEST(CacheKey, RetrainInvalidates) {
  Network retrained = craft_net();
  retrained.layer(0).weights().at(0, 0) += 1e-9;  // one ulp of retraining
  const CacheKey before = make_cache_key(craft_net(), craft_property(0.55));
  const CacheKey after = make_cache_key(retrained, craft_property(0.55));
  EXPECT_NE(before.network, after.network);
  EXPECT_NE(before.combined, after.combined);
  EXPECT_EQ(before.property, after.property);
}

TEST(CacheKey, PropertyEditInvalidates) {
  const CacheKey a = make_cache_key(craft_net(), craft_property(0.55));
  const CacheKey b = make_cache_key(craft_net(), craft_property(0.56));
  EXPECT_EQ(a.network, b.network);
  EXPECT_NE(a.property, b.property);
  EXPECT_NE(a.combined, b.combined);

  SafetyProperty shifted = craft_property(0.55);
  shifted.region.box[1].hi = 0.75;
  const CacheKey c = make_cache_key(craft_net(), shifted);
  EXPECT_NE(a.property, c.property);
}

// -------------------------------------------------------------------------
// Cache entries: bitwise round-trip, typed rejection, quarantine.
// -------------------------------------------------------------------------

TEST_F(CacheTest, BitwiseRoundTrip) {
  VerificationCache cache(dir_);
  const CacheKey key = make_cache_key(craft_net(), craft_property(0.55));
  CachedVerdict v;
  v.verdict = Verdict::kViolated;
  v.upper_bound = 1.0 / 3.0;
  v.has_value = true;
  v.max_value = std::nextafter(0.5, 1.0);
  v.engine = "input_split";
  v.seconds = 0.123456789;
  cache.store(key, v);

  // A separate instance on the same directory = a process restart.
  VerificationCache reopened(dir_);
  const CachedVerdict r = reopened.load(key);
  EXPECT_EQ(r.verdict, v.verdict);
  EXPECT_EQ(r.upper_bound, v.upper_bound);  // exact, not near
  EXPECT_EQ(r.has_value, v.has_value);
  EXPECT_EQ(r.max_value, v.max_value);
  EXPECT_EQ(r.engine, v.engine);
  EXPECT_EQ(r.seconds, v.seconds);
}

TEST_F(CacheTest, RoundTripsInfinitiesAndEmptyEngine) {
  VerificationCache cache(dir_);
  const CacheKey key = make_cache_key(craft_net(), craft_property(0.55));
  CachedVerdict v;
  v.verdict = Verdict::kProved;
  v.upper_bound = -kInf;  // vacuous property over an empty region
  v.engine = "";
  cache.store(key, v);
  const CachedVerdict r = cache.load(key);
  EXPECT_EQ(r.upper_bound, -kInf);
  EXPECT_EQ(r.engine, "");
  EXPECT_FALSE(r.has_value);
}

TEST_F(CacheTest, MissingEntryIsTypedNotFound) {
  VerificationCache cache(dir_);
  const CacheKey key = make_cache_key(craft_net(), craft_property(0.55));
  try {
    cache.load(key);
    FAIL() << "expected CacheError";
  } catch (const CacheError& e) {
    EXPECT_EQ(e.kind(), CacheError::Kind::kNotFound);
  }
  EXPECT_FALSE(cache.lookup(key).has_value());
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.stats().rejected, 0);  // absence is not corruption
}

TEST_F(CacheTest, CorruptEntryRejectedAndQuarantined) {
  VerificationCache cache(dir_);
  const CacheKey key = make_cache_key(craft_net(), craft_property(0.55));
  CachedVerdict v;
  v.verdict = Verdict::kProved;
  v.upper_bound = 0.5;
  v.engine = "milp";
  cache.store(key, v);

  // Flip payload bytes, keeping the recorded checksum: the mismatch must
  // be detected before any field is trusted.
  const std::string path = cache.entry_path(key);
  std::string text;
  {
    std::ifstream is(path);
    std::ostringstream os;
    os << is.rdbuf();
    text = os.str();
  }
  const auto pos = text.find("proved");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 6, "prized");
  {
    std::ofstream os(path);
    os << text;
  }

  try {
    cache.load(key);
    FAIL() << "expected CacheError";
  } catch (const CacheError& e) {
    EXPECT_EQ(e.kind(), CacheError::Kind::kChecksumMismatch);
  }

  EXPECT_FALSE(cache.lookup(key).has_value());
  EXPECT_EQ(cache.stats().rejected, 1);
  EXPECT_FALSE(fs::exists(path));  // never served again...
  EXPECT_TRUE(fs::exists(path + ".quarantined"));  // ...never deleted

  // The poisoned key is writable again after quarantine.
  cache.store(key, v);
  EXPECT_TRUE(cache.lookup(key).has_value());
}

TEST_F(CacheTest, TruncatedEntryRejectedAndQuarantined) {
  VerificationCache cache(dir_);
  const CacheKey key = make_cache_key(craft_net(), craft_property(0.55));
  cache.store(key, CachedVerdict{});
  const std::string path = cache.entry_path(key);
  fs::resize_file(path, fs::file_size(path) / 2);

  try {
    cache.load(key);
    FAIL() << "expected CacheError";
  } catch (const CacheError& e) {
    EXPECT_EQ(e.kind(), CacheError::Kind::kBadEntry);
  }
  EXPECT_FALSE(cache.lookup(key).has_value());
  EXPECT_EQ(cache.stats().rejected, 1);
  EXPECT_TRUE(fs::exists(path + ".quarantined"));
}

TEST_F(CacheTest, ForeignFileRejectedAsBadEntry) {
  VerificationCache cache(dir_);
  const CacheKey key = make_cache_key(craft_net(), craft_property(0.55));
  {
    std::ofstream os(cache.entry_path(key));
    os << "not a cache entry at all\n";
  }
  try {
    cache.load(key);
    FAIL() << "expected CacheError";
  } catch (const CacheError& e) {
    EXPECT_EQ(e.kind(), CacheError::Kind::kBadEntry);
  }
}

// -------------------------------------------------------------------------
// Portfolio: verdicts on the hand-computed fixture.
// -------------------------------------------------------------------------

TEST(Portfolio, RootBoundDecidesTrivialQuery) {
  // 0.85 < interval bound 0.875 but above the symbolic root bound 0.625:
  // the hoisted work decides before any engine launches.
  const PortfolioResult r =
      PortfolioVerifier(det_options()).prove(craft_net(), craft_property(0.85));
  EXPECT_EQ(r.verdict, Verdict::kProved);
  EXPECT_EQ(r.engine_name, "root");
  EXPECT_DOUBLE_EQ(r.upper_bound, 0.625);
  EXPECT_FALSE(r.timed_out);
}

TEST(Portfolio, InputSplitWinsBranchingQuery) {
  const PortfolioResult r =
      PortfolioVerifier(det_options()).prove(craft_net(), craft_property(0.55));
  EXPECT_EQ(r.verdict, Verdict::kProved);
  EXPECT_EQ(r.engine_name, "input_split");
  EXPECT_LE(r.upper_bound, 0.55 + 1e-6);
  EXPECT_GE(r.upper_bound, 0.5);  // still a sound bound on the true max
}

TEST(Portfolio, InputSplitFindsViolationWitness) {
  const Network net = craft_net();
  const SafetyProperty prop = craft_property(0.499);
  const PortfolioResult r = PortfolioVerifier(det_options()).prove(net, prop);
  EXPECT_EQ(r.verdict, Verdict::kViolated);
  EXPECT_EQ(r.engine_name, "input_split");
  ASSERT_TRUE(r.has_value);
  ASSERT_EQ(r.witness.size(), 2u);
  EXPECT_TRUE(prop.region.contains(r.witness));
  // The violation is certified by the network itself, not engine algebra.
  EXPECT_GT(prop.expr.evaluate(net.forward(r.witness)), prop.threshold);
  EXPECT_NEAR(r.max_value, 0.5, 1e-6);
}

TEST(Portfolio, MilpWinsWhenSplitBudgetExhausted) {
  PortfolioOptions o = det_options();
  o.det_max_boxes = 1;  // split sees only the root box: bound 0.625 > 0.55
  o.use_sat = false;
  const PortfolioResult r =
      PortfolioVerifier(o).prove(craft_net(), craft_property(0.55));
  EXPECT_EQ(r.verdict, Verdict::kProved);
  EXPECT_EQ(r.engine_name, "milp");
  // The undecided split engine still contributed its (looser) evidence.
  ASSERT_EQ(r.engines.size(), 4u);
  EXPECT_FALSE(r.engines[1].decided);
  EXPECT_TRUE(r.engines[2].decided);
}

TEST(Portfolio, SatQuantizedWinsInsideItsMargin) {
  // 0.60 sits below every LP/symbolic relaxation (0.625) and the split /
  // MILP budgets are capped at one box / one node — but the quantized
  // maximum (0.5) plus the certified float-vs-quantized margin stays
  // under the probe threshold, so a single UNSAT call proves the float
  // property.
  PortfolioOptions o = det_options();
  o.det_max_boxes = 1;
  o.det_max_nodes = 1;
  o.sat_frac_bits = 6;
  const PortfolioResult r =
      PortfolioVerifier(o).prove(craft_net(), craft_property(0.60));
  EXPECT_EQ(r.verdict, Verdict::kProved);
  EXPECT_EQ(r.engine_name, "sat_quantized");
  EXPECT_LE(r.upper_bound, 0.60 + 1e-12);
}

TEST(Portfolio, ReportsTightestBoundOnTimeout) {
  PortfolioOptions o = det_options();
  o.det_max_boxes = 1;
  o.det_max_nodes = 1;
  o.use_sat = false;
  const PortfolioResult r =
      PortfolioVerifier(o).prove(craft_net(), craft_property(0.60));
  EXPECT_EQ(r.verdict, Verdict::kUnknown);
  EXPECT_TRUE(r.timed_out);
  // Merged evidence is tighter than the interval bound and sound.
  EXPECT_LE(r.upper_bound, 0.625 + 1e-6);
  EXPECT_GE(r.upper_bound, 0.5);
  EXPECT_FALSE(r.engine_name.empty());
}

TEST(Portfolio, EnginesDisagreeIsImpossibleOnFixture) {
  // Every engine that decides must agree with the portfolio verdict —
  // prove() itself asserts this; run the three decisive queries and check
  // the recorded evidence is consistent.
  for (double threshold : {0.55, 0.499, 0.85}) {
    const PortfolioResult r = PortfolioVerifier(det_options())
                                  .prove(craft_net(), craft_property(threshold));
    for (const EngineOutcome& o : r.engines) {
      if (o.decided) EXPECT_EQ(o.verdict, r.verdict) << to_string(o.engine);
    }
  }
}

// -------------------------------------------------------------------------
// Portfolio determinism: verdict, bound, and winning engine bit-identical
// for any worker count and across repeated runs.
// -------------------------------------------------------------------------

struct DetCase {
  const char* name;
  double threshold;
  PortfolioOptions options;
};

std::vector<DetCase> determinism_cases() {
  std::vector<DetCase> cases;
  cases.push_back({"split_proves", 0.55, det_options()});
  cases.push_back({"split_violates", 0.499, det_options()});
  PortfolioOptions milp = det_options();
  milp.det_max_boxes = 1;
  milp.use_sat = false;
  cases.push_back({"milp_proves", 0.55, milp});
  PortfolioOptions sat = det_options();
  sat.det_max_boxes = 1;
  sat.det_max_nodes = 1;
  sat.sat_frac_bits = 6;
  cases.push_back({"sat_proves", 0.60, sat});
  PortfolioOptions timeout = det_options();
  timeout.det_max_boxes = 1;
  timeout.det_max_nodes = 1;
  timeout.use_sat = false;
  cases.push_back({"timeout", 0.60, timeout});
  return cases;
}

TEST(PortfolioDeterminism, IdenticalAcrossWorkerCountsAndRuns) {
  const Network net = craft_net();
  for (const DetCase& c : determinism_cases()) {
    const SafetyProperty prop = craft_property(c.threshold);
    PortfolioOptions base = c.options;
    base.num_workers = 1;
    const PortfolioResult ref = PortfolioVerifier(base).prove(net, prop);
    for (int workers : {1, 2, 4}) {
      for (int run = 0; run < 2; ++run) {
        PortfolioOptions o = c.options;
        o.num_workers = workers;
        const PortfolioResult r = PortfolioVerifier(o).prove(net, prop);
        EXPECT_EQ(r.verdict, ref.verdict) << c.name << " w=" << workers;
        EXPECT_EQ(r.engine_name, ref.engine_name)
            << c.name << " w=" << workers;
        EXPECT_EQ(r.upper_bound, ref.upper_bound)  // bitwise
            << c.name << " w=" << workers;
        EXPECT_EQ(r.has_value, ref.has_value) << c.name << " w=" << workers;
        if (ref.has_value) {
          EXPECT_EQ(r.max_value, ref.max_value)  // bitwise
              << c.name << " w=" << workers;
        }
        EXPECT_EQ(r.timed_out, ref.timed_out) << c.name << " w=" << workers;
      }
    }
  }
}

// -------------------------------------------------------------------------
// Racing mode: sound verdicts under full sharing and cancellation.
// -------------------------------------------------------------------------

TEST(PortfolioRacing, AgreesWithDeterministicVerdicts) {
  const Network net = craft_net();
  for (double threshold : {0.85, 0.60, 0.55, 0.499}) {
    const SafetyProperty prop = craft_property(threshold);
    const Verdict det_verdict =
        PortfolioVerifier(det_options()).prove(net, prop).verdict;
    PortfolioOptions o;
    o.time_limit_seconds = 30.0;
    o.num_workers = 3;
    o.sat_frac_bits = 6;
    const PortfolioResult r = PortfolioVerifier(o).prove(net, prop);
    if (det_verdict != Verdict::kUnknown && r.verdict != Verdict::kUnknown) {
      EXPECT_EQ(r.verdict, det_verdict) << "threshold " << threshold;
    }
    if (r.verdict == Verdict::kViolated) {
      ASSERT_TRUE(r.has_value);
      EXPECT_GT(prop.expr.evaluate(net.forward(r.witness)), prop.threshold);
    }
    if (r.verdict == Verdict::kProved) {
      EXPECT_LE(0.5, r.upper_bound + 1e-9);  // bound covers the true max
    }
  }
}

TEST(PortfolioRacing, SharedDeadlineProducesUnknownNotHang) {
  Rng rng(7);
  const Network net =
      Network::make_mlp({4, 24, 24, 2}, Activation::kRelu,
                        Activation::kIdentity, rng);
  SafetyProperty prop;
  prop.name = "hard";
  prop.region.box = Box(4, Interval{-2.0, 2.0});
  prop.expr.terms = {{0, 1.0}, {1, -1.0}};
  prop.threshold = 0.0;  // far below the reachable maximum spread? if a
  // witness exists it is found fast; otherwise the deadline binds.
  PortfolioOptions o;
  o.time_limit_seconds = 0.5;
  o.num_workers = 3;
  const PortfolioResult r = PortfolioVerifier(o).prove(net, prop);
  // Whatever the verdict, the result is sound and the call returned —
  // this is a hang check, so the ceiling is generous enough to absorb a
  // sanitizer build's 10-20x slowdown of one polling stride.
  EXPECT_LT(r.seconds, 60.0);
  if (r.verdict == Verdict::kViolated) {
    EXPECT_GT(prop.expr.evaluate(net.forward(r.witness)), prop.threshold);
  }
}

// -------------------------------------------------------------------------
// Portfolio + cache: warm answers are the recorded fresh run, bit for bit.
// -------------------------------------------------------------------------

TEST_F(CacheTest, PortfolioWarmHitIsBitwiseEqual) {
  const Network net = craft_net();
  const SafetyProperty prop = craft_property(0.55);

  VerificationCache cache(dir_);
  const PortfolioResult fresh =
      PortfolioVerifier(det_options(), &cache).prove(net, prop);
  EXPECT_FALSE(fresh.from_cache);
  EXPECT_EQ(cache.stats().stores, 1);

  // New cache instance on the same directory: a later session.
  VerificationCache warm_cache(dir_);
  const PortfolioResult warm =
      PortfolioVerifier(det_options(), &warm_cache).prove(net, prop);
  EXPECT_TRUE(warm.from_cache);
  EXPECT_EQ(warm_cache.stats().hits, 1);
  EXPECT_EQ(warm.verdict, fresh.verdict);
  EXPECT_EQ(warm.engine_name, fresh.engine_name);
  EXPECT_EQ(warm.upper_bound, fresh.upper_bound);  // bitwise
  EXPECT_EQ(warm.has_value, fresh.has_value);
  EXPECT_EQ(warm.max_value, fresh.max_value);      // bitwise
}

TEST_F(CacheTest, PortfolioCachesUnknownResults) {
  PortfolioOptions o = det_options();
  o.det_max_boxes = 1;
  o.det_max_nodes = 1;
  o.use_sat = false;
  VerificationCache cache(dir_);
  const PortfolioResult fresh =
      PortfolioVerifier(o, &cache).prove(craft_net(), craft_property(0.60));
  EXPECT_EQ(fresh.verdict, Verdict::kUnknown);
  const PortfolioResult warm =
      PortfolioVerifier(o, &cache).prove(craft_net(), craft_property(0.60));
  EXPECT_TRUE(warm.from_cache);
  EXPECT_TRUE(warm.timed_out);
  EXPECT_EQ(warm.upper_bound, fresh.upper_bound);
}

TEST_F(CacheTest, RetrainMissesAndReverifies) {
  VerificationCache cache(dir_);
  const SafetyProperty prop = craft_property(0.55);
  PortfolioVerifier verifier(det_options(), &cache);
  EXPECT_FALSE(verifier.prove(craft_net(), prop).from_cache);
  EXPECT_TRUE(verifier.prove(craft_net(), prop).from_cache);

  Network retrained = craft_net();
  retrained.layer(1).weights().at(0, 0) = 0.53125;  // still on the grid
  const PortfolioResult r = verifier.prove(retrained, prop);
  EXPECT_FALSE(r.from_cache);  // retrain invalidated the key
  EXPECT_EQ(cache.stats().stores, 2);
}

}  // namespace
}  // namespace safenn::verify
