#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "common/compress.hpp"
#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"

namespace safenn {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.5, 2.25);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 2.25);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(10);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, NormalScaledMoments) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(12);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto idx = rng.uniform_index(7);
    EXPECT_LT(idx, 7u);
    seen.insert(idx);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(13);
  EXPECT_THROW(rng.uniform_index(0), Error);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(14);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(15);
  Rng child = parent.split();
  // Child stream should not replicate the parent's continuation.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, BernoulliRate) {
  Rng rng(16);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformStaysInRangeAndNonConstant) {
  Rng rng(GetParam());
  double lo = 1.0, hi = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    lo = std::min(lo, u);
    hi = std::max(hi, u);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
  EXPECT_LT(lo, hi);  // stream is not constant
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ull, 1ull, 42ull, 12345ull,
                                           0xFFFFFFFFFFFFFFFFull));

TEST(Stopwatch, MeasuresNonNegativeTime) {
  Stopwatch sw;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  EXPECT_GE(sw.seconds(), 0.0);
  EXPECT_GE(sw.millis(), sw.seconds() * 999.0);
}

TEST(Stopwatch, ResetRestartsClock) {
  Stopwatch sw;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  const double before = sw.seconds();
  sw.reset();
  EXPECT_LE(sw.seconds(), before + 1.0);
}

TEST(Deadline, UnlimitedNeverExpires) {
  Deadline d(0.0);
  EXPECT_TRUE(d.unlimited());
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(std::isinf(d.remaining()));
}

TEST(Deadline, FarFutureNotExpired) {
  Deadline d(3600.0);
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining(), 3500.0);
}

TEST(Deadline, PastDeadlineExpires) {
  Deadline d(1e-9);
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining(), 0.0);
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesHeaderAndRows) {
  CsvWriter w;
  w.set_header({"name", "value"});
  w.add_row({"alpha", "1"});
  w.add_row({"beta", "2"});
  std::ostringstream os;
  w.write(os);
  EXPECT_EQ(os.str(), "name,value\nalpha,1\nbeta,2\n");
  EXPECT_EQ(w.row_count(), 2u);
}

TEST(Csv, RejectsMismatchedRowWidth) {
  CsvWriter w;
  w.set_header({"a", "b"});
  EXPECT_THROW(w.add_row({"only-one"}), Error);
}

TEST(Csv, CellFormatsDoubles) {
  EXPECT_EQ(CsvWriter::cell(1.5), "1.5");
  EXPECT_EQ(CsvWriter::cell(0.125, 3), "0.125");
}

TEST(ErrorHelpers, RequireThrowsWithMessage) {
  EXPECT_NO_THROW(require(true, "ok"));
  try {
    require(false, "broken invariant");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "broken invariant");
  }
}

}  // namespace
}  // namespace safenn

// ---------------------------------------------------------------------------
// Thread-safe logging (appended suite).
// ---------------------------------------------------------------------------
#include <thread>
#include <vector>

#include "common/log.hpp"

namespace safenn {
namespace {

/// Restores level + sink even when an assertion fails mid-test.
struct LogGuard {
  LogGuard(LogLevel level, std::ostream* sink) {
    set_log_level(level);
    set_log_sink(sink);
  }
  ~LogGuard() {
    set_log_sink(nullptr);
    set_log_level(LogLevel::kWarn);
  }
};

TEST(Log, SinkRedirectAndLevelFilter) {
  std::ostringstream sink;
  LogGuard guard(LogLevel::kInfo, &sink);
  log_debug("dropped");
  log_info("kept ", 42);
  log_warn("also kept");
  const std::string text = sink.str();
  EXPECT_EQ(text.find("dropped"), std::string::npos);
  EXPECT_NE(text.find("[safenn INFO] kept 42"), std::string::npos);
  EXPECT_NE(text.find("[safenn WARN] also kept"), std::string::npos);
}

TEST(Log, ConcurrentWritersNeverInterleaveLines) {
  std::ostringstream sink;
  constexpr int kThreads = 8, kPerThread = 250;
  {
    LogGuard guard(LogLevel::kInfo, &sink);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([t] {
        for (int i = 0; i < kPerThread; ++i) {
          log_info("thread=", t, " msg=", i, " payload=xxxxxxxxxxxxxxxx");
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  // Every line must be whole: correct prefix, correct suffix, right count.
  std::istringstream in(sink.str());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    ASSERT_TRUE(line.rfind("[safenn INFO] thread=", 0) == 0) << line;
    ASSERT_NE(line.find(" payload=xxxxxxxxxxxxxxxx"), std::string::npos)
        << line;
  }
  EXPECT_EQ(lines, kThreads * kPerThread);
}

}  // namespace
}  // namespace safenn

// --- TaskPool: the repo-wide deterministic execution substrate. ---

#include <atomic>
#include <functional>
#include <numeric>
#include <stdexcept>

#include "common/task_pool.hpp"

namespace safenn {
namespace {

TEST(TaskPool, RunsEveryTaskExactlyOnce) {
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    TaskPool pool(workers);
    EXPECT_EQ(pool.workers(), workers);
    std::vector<std::atomic<int>> hits(37);
    std::vector<std::function<void()>> tasks;
    for (std::size_t i = 0; i < hits.size(); ++i) {
      tasks.push_back([&hits, i] { hits[i].fetch_add(1); });
    }
    pool.run(tasks);
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(TaskPool, ReusableAcrossBatchesWithBarrierBetween) {
  TaskPool pool(4);
  std::vector<int> values(16, 0);
  std::vector<std::function<void()>> fill, doubler;
  for (std::size_t i = 0; i < values.size(); ++i) {
    fill.push_back([&values, i] { values[i] = static_cast<int>(i); });
    // Reads what the previous batch wrote: correct only because run()
    // is a full barrier.
    doubler.push_back([&values, i] { values[i] *= 2; });
  }
  for (int round = 0; round < 8; ++round) {
    pool.run(fill);
    pool.run(doubler);
    for (std::size_t i = 0; i < values.size(); ++i) {
      ASSERT_EQ(values[i], static_cast<int>(2 * i)) << "round " << round;
    }
  }
}

TEST(TaskPool, ZeroWorkersClampedToOne) {
  TaskPool pool(0);
  EXPECT_EQ(pool.workers(), 1u);
  int ran = 0;
  pool.run({[&] { ++ran; }});
  EXPECT_EQ(ran, 1);
}

TEST(TaskPool, EmptyBatchIsANoOp) {
  TaskPool pool(2);
  pool.run({});  // must not hang waiting for completions
}

TEST(TaskPool, RethrowsLowestIndexedFailure) {
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    TaskPool pool(workers);
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 8; ++i) {
      tasks.push_back([i] {
        if (i == 3 || i == 6) {
          throw std::runtime_error("task " + std::to_string(i));
        }
      });
    }
    try {
      pool.run(tasks);
      FAIL() << "expected a rethrow (workers=" << workers << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "task 3") << "workers=" << workers;
    }
    // The pool must stay usable after a failed batch.
    int ran = 0;
    pool.run({[&] { ++ran; }});
    EXPECT_EQ(ran, 1);
  }
}

// --- Rng stream independence: the parallel generation contract. ---

TEST(Rng, StreamSeedIsPureFunctionOfBaseAndIndex) {
  // Distinct, draw-independent seeds per index; recomputing in any order
  // gives the same values.
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 64; ++i) {
    const std::uint64_t s = Rng::stream_seed(7, i);
    EXPECT_EQ(s, Rng::stream_seed(7, i));
    seen.insert(s);
  }
  EXPECT_EQ(seen.size(), 64u);
  EXPECT_NE(Rng::stream_seed(7, 0), Rng::stream_seed(8, 0));
}

TEST(Rng, DerivedStreamsIndependentOfDrawInterleaving) {
  // Two schedules over the same per-index streams: (a) drain stream 0
  // fully, then stream 1; (b) alternate draws. Every stream must produce
  // the same sequence either way — workers may interleave arbitrarily.
  Rng a0(Rng::stream_seed(42, 0)), a1(Rng::stream_seed(42, 1));
  std::vector<std::uint64_t> seq0, seq1;
  for (int i = 0; i < 100; ++i) seq0.push_back(a0.next_u64());
  for (int i = 0; i < 100; ++i) seq1.push_back(a1.next_u64());

  Rng b0(Rng::stream_seed(42, 0)), b1(Rng::stream_seed(42, 1));
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(b0.next_u64(), seq0[static_cast<std::size_t>(i)]);
    EXPECT_EQ(b1.next_u64(), seq1[static_cast<std::size_t>(i)]);
  }
}

// --- safenn-pack codec: the bitwise round-trip is the whole contract. ---

TEST(Compress, RoundTripsCanonicalNumericText) {
  // The shape registry payloads actually have: setprecision(17) doubles
  // and small ints, whitespace separated, with a few keyword literals.
  std::ostringstream os;
  os.precision(17);
  Rng rng(21);
  os << "layer 0 dense 4 3 relu\n";
  for (int i = 0; i < 200; ++i) {
    os << rng.uniform(-1, 1) << (i % 5 == 4 ? '\n' : ' ');
  }
  os << "\nquantized-weights 128\n";
  for (int i = 0; i < 128; ++i) {
    os << static_cast<int>(rng.next_u64() % 255) - 127 << ' ';
  }
  os << "\nend\n";
  const std::string text = os.str();

  const std::string blob = compress_text(text);
  EXPECT_EQ(decompress_text(blob), text);
  // Doubles dominate; binary packing must at least halve them.
  EXPECT_LT(blob.size(), text.size() / 2) << blob.size() << "/" << text.size();
  // Deterministic: same text, same bytes (content addressing upstream).
  EXPECT_EQ(compress_text(text), blob);
}

TEST(Compress, ArbitraryTextRoundTripsViaLiteralRuns) {
  const std::string cases[] = {
      "",
      "no numbers here at all",
      "almost 1.5e but-not +.e3 nan inf 1e999 007 1.10\n",  // reprint fails
      std::string("\x00\xff\x7f binary\n\n\n", 12),
      "-0 0.5 -1e-300 9223372036854775807 -9223372036854775808",
  };
  for (const std::string& text : cases) {
    EXPECT_EQ(decompress_text(compress_text(text)), text) << text;
  }
}

TEST(Compress, MalformedBlobsThrowInsteadOfYieldingWrongText) {
  const std::string blob = compress_text("0.123456789012345678 42 end\n");
  EXPECT_THROW(decompress_text("not-a-pack-blob"), Error);
  EXPECT_THROW(decompress_text(blob.substr(0, blob.size() - 3)), Error);
  // Declared-size mismatch: graft a wrong varint after the magic.
  std::string resized = blob;
  resized[kPackMagic.size()] ^= 0x01;
  EXPECT_THROW(decompress_text(resized), Error);
}

TEST(Rng, SplitChildrenIndependentOfDrawInterleaving) {
  // split() fixes each child's state at split time: a copy of the child
  // drawn later, interleaved with its sibling, replays the same stream.
  Rng parent(99);
  Rng c0 = parent.split();
  Rng c1 = parent.split();
  Rng c0_copy = c0;
  Rng c1_copy = c1;

  std::vector<std::uint64_t> s0, s1;
  for (int i = 0; i < 50; ++i) s0.push_back(c0.next_u64());
  for (int i = 0; i < 50; ++i) s1.push_back(c1.next_u64());
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(c0_copy.next_u64(), s0[static_cast<std::size_t>(i)]);
    EXPECT_EQ(c1_copy.next_u64(), s1[static_cast<std::size_t>(i)]);
  }
}

}  // namespace
}  // namespace safenn
