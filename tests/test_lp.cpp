#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "lp/problem.hpp"
#include "lp/simplex.hpp"

namespace safenn::lp {
namespace {

Solution solve(const Problem& p) { return SimplexSolver().solve(p); }

TEST(Problem, MergesDuplicateTerms) {
  Problem p;
  const int x = p.add_variable(0, 10);
  p.add_constraint({{x, 1.0}, {x, 2.0}}, Relation::kLe, 6.0);
  EXPECT_EQ(p.constraint(0).terms.size(), 1u);
  EXPECT_DOUBLE_EQ(p.constraint(0).terms[0].second, 3.0);
}

TEST(Problem, ViolationMeasurement) {
  Problem p;
  const int x = p.add_variable(0, 10);
  p.add_constraint({{x, 1.0}}, Relation::kLe, 5.0);
  EXPECT_DOUBLE_EQ(p.max_violation({7.0}), 2.0);
  EXPECT_DOUBLE_EQ(p.max_violation({3.0}), 0.0);
}

TEST(Simplex, TextbookMaximization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0.
  // Optimum: x=2, y=6, obj=36 (classic Dantzig example).
  Problem p;
  p.set_maximize(true);
  const int x = p.add_variable(0, kInfinity, 3.0);
  const int y = p.add_variable(0, kInfinity, 5.0);
  p.add_constraint({{x, 1.0}}, Relation::kLe, 4.0);
  p.add_constraint({{y, 2.0}}, Relation::kLe, 12.0);
  p.add_constraint({{x, 3.0}, {y, 2.0}}, Relation::kLe, 18.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 36.0, 1e-6);
  EXPECT_NEAR(s.values[0], 2.0, 1e-6);
  EXPECT_NEAR(s.values[1], 6.0, 1e-6);
}

TEST(Simplex, SimpleMinimization) {
  // min x + y s.t. x + 2y >= 4, 3x + y >= 6, x,y >= 0.
  // Optimum at intersection: x=1.6, y=1.2, obj=2.8.
  Problem p;
  const int x = p.add_variable(0, kInfinity, 1.0);
  const int y = p.add_variable(0, kInfinity, 1.0);
  p.add_constraint({{x, 1.0}, {y, 2.0}}, Relation::kGe, 4.0);
  p.add_constraint({{x, 3.0}, {y, 1.0}}, Relation::kGe, 6.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.8, 1e-6);
  EXPECT_NEAR(s.values[0], 1.6, 1e-6);
  EXPECT_NEAR(s.values[1], 1.2, 1e-6);
}

TEST(Simplex, EqualityConstraints) {
  // min 2x + 3y s.t. x + y = 10, x - y = 2 -> x=6, y=4, obj=24.
  Problem p;
  const int x = p.add_variable(0, kInfinity, 2.0);
  const int y = p.add_variable(0, kInfinity, 3.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kEq, 10.0);
  p.add_constraint({{x, 1.0}, {y, -1.0}}, Relation::kEq, 2.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[0], 6.0, 1e-6);
  EXPECT_NEAR(s.values[1], 4.0, 1e-6);
  EXPECT_NEAR(s.objective, 24.0, 1e-6);
}

TEST(Simplex, DetectsInfeasibility) {
  Problem p;
  const int x = p.add_variable(0, kInfinity);
  p.add_constraint({{x, 1.0}}, Relation::kLe, 1.0);
  p.add_constraint({{x, 1.0}}, Relation::kGe, 2.0);
  EXPECT_EQ(solve(p).status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsInfeasibleEqualitySystem) {
  Problem p;
  const int x = p.add_variable(0, kInfinity);
  const int y = p.add_variable(0, kInfinity);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kEq, 1.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kEq, 3.0);
  EXPECT_EQ(solve(p).status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  Problem p;
  p.set_maximize(true);
  const int x = p.add_variable(0, kInfinity, 1.0);
  const int y = p.add_variable(0, kInfinity, 0.0);
  p.add_constraint({{x, 1.0}, {y, -1.0}}, Relation::kLe, 1.0);
  EXPECT_EQ(solve(p).status, SolveStatus::kUnbounded);
}

TEST(Simplex, BoundedVariablesOnly) {
  // No rows at all: optimum sits at the bound favored by the objective.
  Problem p;
  p.set_maximize(true);
  p.add_variable(-2.0, 5.0, 3.0);
  p.add_variable(-4.0, 1.0, -2.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[0], 5.0, 1e-9);
  EXPECT_NEAR(s.values[1], -4.0, 1e-9);
  EXPECT_NEAR(s.objective, 23.0, 1e-9);
}

TEST(Simplex, UpperBoundsBind) {
  // max x + y, x <= 3 (bound), y <= 2 (bound), x + y <= 4 (row).
  Problem p;
  p.set_maximize(true);
  const int x = p.add_variable(0, 3, 1.0);
  const int y = p.add_variable(0, 2, 1.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kLe, 4.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 4.0, 1e-7);
}

TEST(Simplex, NegativeLowerBounds) {
  // min x with x in [-5, 5] and x >= -3 as a row: optimum -3.
  Problem p;
  const int x = p.add_variable(-5, 5, 1.0);
  p.add_constraint({{x, 1.0}}, Relation::kGe, -3.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -3.0, 1e-7);
}

TEST(Simplex, FreeVariable) {
  // min x + y with y free, x in [0,inf), x + y = 3, y <= 10 row.
  // y free means optimum drives y to... objective min x+y with x+y=3 is 3
  // everywhere on the line; any feasible point gives 3.
  Problem p;
  const int x = p.add_variable(0, kInfinity, 1.0);
  const int y = p.add_variable(-kInfinity, kInfinity, 1.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kEq, 3.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 3.0, 1e-7);
}

TEST(Simplex, FreeVariableUnbounded) {
  Problem p;
  const int y = p.add_variable(-kInfinity, kInfinity, 1.0);
  p.add_constraint({{y, 1.0}}, Relation::kLe, 5.0);
  EXPECT_EQ(solve(p).status, SolveStatus::kUnbounded);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Multiple constraints intersecting at the optimum (degeneracy).
  Problem p;
  p.set_maximize(true);
  const int x = p.add_variable(0, kInfinity, 1.0);
  const int y = p.add_variable(0, kInfinity, 1.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kLe, 2.0);
  p.add_constraint({{x, 1.0}}, Relation::kLe, 1.0);
  p.add_constraint({{y, 1.0}}, Relation::kLe, 1.0);
  p.add_constraint({{x, 2.0}, {y, 1.0}}, Relation::kLe, 3.0);
  p.add_constraint({{x, 1.0}, {y, 2.0}}, Relation::kLe, 3.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-7);
}

TEST(Simplex, RedundantEqualityRows) {
  // Duplicated equality row must not break Phase 1 cleanup.
  Problem p;
  const int x = p.add_variable(0, kInfinity, 1.0);
  const int y = p.add_variable(0, kInfinity, 2.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kEq, 4.0);
  p.add_constraint({{x, 2.0}, {y, 2.0}}, Relation::kEq, 8.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 4.0, 1e-6);  // all weight on x
  EXPECT_NEAR(s.values[0], 4.0, 1e-6);
}

TEST(Simplex, NegativeRhs) {
  // min -x s.t. -x >= -7 (i.e. x <= 7), x >= 0 -> x = 7.
  Problem p;
  const int x = p.add_variable(0, kInfinity, -1.0);
  p.add_constraint({{x, -1.0}}, Relation::kGe, -7.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[0], 7.0, 1e-7);
}

TEST(Simplex, BigMStyleIndicatorRelaxation) {
  // The LP relaxation pattern produced by the ReLU encoder:
  // y >= z, y >= 0, y <= z + M(1-d), y <= M d with d in [0,1] relaxed.
  Problem p;
  p.set_maximize(true);
  const double big_m = 10.0;
  const int z = p.add_variable(-5, 5, 0.0);
  const int y = p.add_variable(0, big_m, 1.0);
  const int d = p.add_variable(0, 1, 0.0);
  p.add_constraint({{y, 1.0}, {z, -1.0}}, Relation::kGe, 0.0);
  p.add_constraint({{y, 1.0}, {z, -1.0}, {d, big_m}}, Relation::kLe, big_m);
  p.add_constraint({{y, 1.0}, {d, -big_m}}, Relation::kLe, 0.0);
  p.add_constraint({{z, 1.0}}, Relation::kLe, 3.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  // Relaxation optimum: y as large as possible; y <= z + M(1-d), y <= Md.
  // Balance: z=3 -> y <= 3 + 10(1-d), y <= 10d -> d=1: y <= 3... but
  // equality at d where 3+10-10d = 10d -> d=0.65, y=6.5.
  EXPECT_NEAR(s.objective, 6.5, 1e-6);
}

TEST(Simplex, ReportsIterationCount) {
  Problem p;
  p.set_maximize(true);
  const int x = p.add_variable(0, 1, 1.0);
  p.add_constraint({{x, 1.0}}, Relation::kLe, 1.0);
  const Solution s = solve(p);
  EXPECT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_GT(s.iterations, 0);
}

// Property test: random feasible-by-construction LPs. A random point x0 in
// a box is picked, rows are generated to be satisfied by x0, so the LP is
// feasible; the solver must return kOptimal with a feasible point whose
// objective is at least as good as x0's.
class RandomFeasibleLp : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomFeasibleLp, OptimalBeatsWitnessPoint) {
  Rng rng(GetParam());
  const int n = 2 + static_cast<int>(rng.uniform_index(6));
  const int m = 1 + static_cast<int>(rng.uniform_index(8));
  Problem p;
  std::vector<double> witness(static_cast<std::size_t>(n));
  p.set_maximize(true);
  for (int j = 0; j < n; ++j) {
    const double lo = rng.uniform(-5, 0);
    const double hi = rng.uniform(0.5, 5);
    p.add_variable(lo, hi, rng.normal());
    witness[static_cast<std::size_t>(j)] = rng.uniform(lo, hi);
  }
  for (int i = 0; i < m; ++i) {
    LinearTerms terms;
    double lhs = 0.0;
    for (int j = 0; j < n; ++j) {
      const double coef = rng.normal();
      terms.emplace_back(j, coef);
      lhs += coef * witness[static_cast<std::size_t>(j)];
    }
    // Slack it so the witness satisfies the row strictly.
    p.add_constraint(std::move(terms), Relation::kLe,
                     lhs + rng.uniform(0.1, 2.0));
  }
  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal) << "seed " << GetParam();
  EXPECT_LE(p.max_violation(s.values), 1e-6);
  EXPECT_GE(s.objective, p.objective_value(witness) - 1e-6);
  // All variable bounds respected.
  for (int j = 0; j < n; ++j) {
    EXPECT_GE(s.values[static_cast<std::size_t>(j)],
              p.variable(j).lower - 1e-7);
    EXPECT_LE(s.values[static_cast<std::size_t>(j)],
              p.variable(j).upper + 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFeasibleLp,
                         ::testing::Range<std::uint64_t>(0, 40));

// Property test: equality-constrained random LPs built around a witness.
class RandomEqualityLp : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomEqualityLp, FindsFeasiblePoint) {
  Rng rng(GetParam() + 1000);
  const int n = 3 + static_cast<int>(rng.uniform_index(4));
  Problem p;
  std::vector<double> witness(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    p.add_variable(-10, 10, rng.normal());
    witness[static_cast<std::size_t>(j)] = rng.uniform(-3, 3);
  }
  const int m = 1 + static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(n - 1)));
  for (int i = 0; i < m; ++i) {
    LinearTerms terms;
    double lhs = 0.0;
    for (int j = 0; j < n; ++j) {
      const double coef = rng.normal();
      terms.emplace_back(j, coef);
      lhs += coef * witness[static_cast<std::size_t>(j)];
    }
    p.add_constraint(std::move(terms), Relation::kEq, lhs);
  }
  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal) << "seed " << GetParam();
  EXPECT_LE(p.max_violation(s.values), 1e-6);
  EXPECT_LE(s.objective, p.objective_value(witness) + 1e-6);  // minimize
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomEqualityLp,
                         ::testing::Range<std::uint64_t>(0, 25));

}  // namespace
}  // namespace safenn::lp
