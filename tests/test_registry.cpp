#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/hash.hpp"
#include "common/rng.hpp"
#include "highway/safety_rules.hpp"
#include "registry/live_model.hpp"
#include "registry/registry.hpp"

namespace safenn::registry {
namespace {

namespace fs = std::filesystem;
using linalg::Vector;

// -------------------------------------------------------------------------
// Fixtures: hand-crafted predictors (identity layer, no training) over the
// highway scene encoding, so artifacts are cheap yet realistically shaped.
// -------------------------------------------------------------------------

core::TrainedPredictor make_craft_predictor(std::uint64_t seed = 11) {
  core::TrainedPredictor p;
  p.head = nn::MdnHead(1, highway::kActionDims);
  nn::DenseLayer layer(highway::kSceneFeatures, p.head.raw_output_size(),
                       nn::Activation::kIdentity);
  Rng rng(seed);
  const std::size_t lat = p.head.mean_index(0, highway::kActionLateral);
  layer.biases()[lat] = 1.0;
  layer.biases()[p.head.mean_index(0, highway::kActionAccel)] = -0.25;
  for (std::size_t i = 0; i < 16; ++i) {
    layer.weights().at(lat, i) = rng.uniform(-0.6, 0.6);
  }
  nn::Network net;
  net.add_layer(std::move(layer));
  p.network = std::move(net);
  return p;
}

MonitorConfig make_monitor_config(double threshold = 1.0) {
  highway::SceneEncoder encoder;
  MonitorConfig config;
  config.region = highway::make_vehicle_on_left_region(encoder);
  config.lateral_threshold = threshold;
  return config;
}

ModelArtifact make_test_artifact(const std::string& version,
                                 std::uint64_t seed = 11,
                                 double threshold = 1.0) {
  return make_artifact(version, make_craft_predictor(seed),
                       make_monitor_config(threshold));
}

std::vector<Vector> make_probe_scenes(std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vector> scenes;
  scenes.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Vector x(highway::kSceneFeatures);
    for (auto& v : x) v = rng.uniform(-1.0, 1.0);
    scenes.push_back(std::move(x));
  }
  return scenes;
}

std::string artifact_text(const ModelArtifact& artifact) {
  std::ostringstream os;
  save_artifact(os, artifact);
  return os.str();
}

RegistryError::Kind load_kind(const std::string& text) {
  std::istringstream is(text);
  try {
    load_artifact(is);
  } catch (const RegistryError& e) {
    return e.kind();
  }
  ADD_FAILURE() << "expected RegistryError";
  return RegistryError::Kind::kIo;
}

/// Fresh scratch directory per test, removed on teardown.
class RegistryFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (fs::path(::testing::TempDir()) /
            (std::string("safenn_registry_") + info->name()))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

// -------------------------------------------------------------------------
// Artifact round trip and content hashing.
// -------------------------------------------------------------------------

TEST(Artifact, RoundTripPreservesEverything) {
  ModelArtifact original = make_test_artifact("v1", 11, 0.75);
  std::stringstream ss;
  const std::uint64_t hash = save_artifact(ss, original);
  EXPECT_NE(hash, 0u);

  const ModelArtifact loaded = load_artifact(ss);
  EXPECT_EQ(loaded.version, "v1");
  EXPECT_EQ(loaded.content_hash, hash);
  EXPECT_EQ(loaded.head.components(), original.head.components());
  EXPECT_EQ(loaded.head.dims(), original.head.dims());
  EXPECT_DOUBLE_EQ(loaded.monitor.lateral_threshold, 0.75);
  ASSERT_EQ(loaded.monitor.region.box.size(),
            original.monitor.region.box.size());
  for (std::size_t i = 0; i < loaded.monitor.region.box.size(); ++i) {
    EXPECT_EQ(loaded.monitor.region.box[i].lo,
              original.monitor.region.box[i].lo);
    EXPECT_EQ(loaded.monitor.region.box[i].hi,
              original.monitor.region.box[i].hi);
  }
  ASSERT_EQ(loaded.monitor.region.constraints.size(),
            original.monitor.region.constraints.size());
  for (std::size_t i = 0; i < loaded.monitor.region.constraints.size(); ++i) {
    const auto& a = loaded.monitor.region.constraints[i];
    const auto& b = original.monitor.region.constraints[i];
    EXPECT_EQ(a.terms, b.terms);
    EXPECT_EQ(a.relation, b.relation);
    EXPECT_EQ(a.rhs, b.rhs);
  }

  // The materialized predictor is bitwise identical on probes: the
  // setprecision(17) payload round-trips doubles exactly.
  const core::TrainedPredictor p0 = original.predictor();
  const core::TrainedPredictor p1 = loaded.predictor();
  for (const Vector& x : make_probe_scenes(8, 3)) {
    const Vector y0 = p0.network.forward(x);
    const Vector y1 = p1.network.forward(x);
    ASSERT_EQ(y0.size(), y1.size());
    for (std::size_t d = 0; d < y0.size(); ++d) EXPECT_EQ(y0[d], y1[d]);
  }
}

TEST(Artifact, SerializationIsDeterministic) {
  const ModelArtifact artifact = make_test_artifact("v1");
  EXPECT_EQ(artifact_text(artifact), artifact_text(artifact));

  // Any semantic change moves the hash.
  ModelArtifact other = make_test_artifact("v1", 12);
  std::stringstream a, b;
  EXPECT_NE(save_artifact(a, artifact), save_artifact(b, other));
}

TEST(Artifact, MakeArtifactValidates) {
  const core::TrainedPredictor predictor = make_craft_predictor();
  EXPECT_THROW(make_artifact("", predictor, make_monitor_config()), Error);
  EXPECT_THROW(make_artifact("two words", predictor, make_monitor_config()),
               Error);
  MonitorConfig narrow = make_monitor_config();
  narrow.region.box.pop_back();  // dims mismatch vs network input
  EXPECT_THROW(make_artifact("v1", predictor, narrow), Error);
}

// -------------------------------------------------------------------------
// Rejection paths: corrupt, truncated, tampered, mismatched artifacts are
// refused with typed errors — never partially loaded.
// -------------------------------------------------------------------------

TEST(Artifact, RejectsCorruptTruncatedAndForeignInputs) {
  const std::string text = artifact_text(make_test_artifact("v1"));
  ASSERT_EQ(text.rfind("safenn-artifact v1\n", 0), 0u);

  // Flipping one payload digit breaks the recorded content hash.
  {
    std::string corrupt = text;
    const std::size_t pos = corrupt.find("monitor-threshold ") + 18;
    corrupt[pos] = corrupt[pos] == '2' ? '3' : '2';
    EXPECT_EQ(load_kind(corrupt), RegistryError::Kind::kHashMismatch);
  }

  // Truncation loses the artifact-checksum trailer.
  for (const std::size_t keep :
       {text.find('\n') + 1, text.size() / 3, text.size() / 2}) {
    EXPECT_EQ(load_kind(text.substr(0, keep)),
              RegistryError::Kind::kBadArtifact)
        << "kept " << keep;
  }

  // Not an artifact / unknown format version.
  EXPECT_EQ(load_kind("some random file\n"),
            RegistryError::Kind::kBadArtifact);
  {
    std::string skewed = text;
    skewed.replace(0, skewed.find('\n'), "safenn-artifact v9");
    EXPECT_EQ(load_kind(skewed), RegistryError::Kind::kBadArtifact);
  }
}

TEST(Artifact, RejectsInternallyInconsistentPayloads) {
  // A correctly checksummed artifact whose head layout disagrees with the
  // network must still be refused: the hash gate is necessary, not
  // sufficient.
  ModelArtifact artifact = make_test_artifact("v1");
  artifact.head = nn::MdnHead(2, highway::kActionDims);  // network is K=1
  EXPECT_EQ(load_kind(artifact_text(artifact)),
            RegistryError::Kind::kBadArtifact);

  // Tampering with the embedded network text (which re-checksums cleanly
  // at the artifact level) is caught by the inner network checksum.
  ModelArtifact ok = make_test_artifact("v1");
  std::string payload_tamper = artifact_text(ok);
  // Rebuild: corrupt a network parameter but re-stamp the outer hash so
  // only the inner gate can catch it.
  const std::size_t net_pos = payload_tamper.find("safenn-network v2");
  ASSERT_NE(net_pos, std::string::npos);
  const std::size_t digit =
      payload_tamper.find_first_of("123456789",
                                   payload_tamper.find("layer ", net_pos));
  ASSERT_NE(digit, std::string::npos);
  payload_tamper[digit] = payload_tamper[digit] == '9' ? '8' : '9';
  const std::size_t header_end = payload_tamper.find('\n');
  const std::size_t marker = payload_tamper.rfind("\nartifact-checksum ");
  ASSERT_NE(marker, std::string::npos);
  const std::string payload = payload_tamper.substr(
      header_end + 1, marker - header_end);
  const std::string restamped = "safenn-artifact v1\n" + payload +
                                "artifact-checksum " +
                                hex64(fnv1a64(payload)) + '\n';
  EXPECT_EQ(load_kind(restamped), RegistryError::Kind::kBadArtifact);
}

// -------------------------------------------------------------------------
// Directory registry.
// -------------------------------------------------------------------------

TEST_F(RegistryFixture, PublishListLoadRoundTrip) {
  ModelRegistry registry(dir_);
  EXPECT_TRUE(registry.list().empty());
  EXPECT_FALSE(registry.contains("v1"));

  ModelArtifact v1 = make_test_artifact("v1", 11);
  ModelArtifact v2 = make_test_artifact("v2", 12);
  const std::string path = registry.save(v1);
  registry.save(v2);
  EXPECT_NE(v1.content_hash, 0u);  // save assigns the hash
  EXPECT_TRUE(fs::exists(path));
  EXPECT_EQ(path, registry.path_for("v1"));

  EXPECT_TRUE(registry.contains("v1"));
  EXPECT_TRUE(registry.contains("v2"));
  EXPECT_EQ(registry.list(), (std::vector<std::string>{"v1", "v2"}));

  const ModelArtifact loaded = registry.load("v2");
  EXPECT_EQ(loaded.version, "v2");
  EXPECT_EQ(loaded.content_hash, v2.content_hash);
}

TEST_F(RegistryFixture, VersionsAreImmutableAndMissingIsTyped) {
  ModelRegistry registry(dir_);
  ModelArtifact v1 = make_test_artifact("v1");
  registry.save(v1);

  ModelArtifact again = make_test_artifact("v1", 99);
  try {
    registry.save(again);
    FAIL() << "duplicate version must be refused";
  } catch (const RegistryError& e) {
    EXPECT_EQ(e.kind(), RegistryError::Kind::kDuplicateVersion);
  }

  try {
    registry.load("v404");
    FAIL() << "missing version must be kNotFound";
  } catch (const RegistryError& e) {
    EXPECT_EQ(e.kind(), RegistryError::Kind::kNotFound);
  }
}

TEST_F(RegistryFixture, LoadRejectsRenamedArtifact) {
  // A valid artifact parked under the wrong filename must not load as
  // that version: the declared version is part of the validation.
  ModelRegistry registry(dir_);
  ModelArtifact v1 = make_test_artifact("v1");
  registry.save(v1);
  fs::copy_file(registry.path_for("v1"), registry.path_for("v7"));
  try {
    registry.load("v7");
    FAIL() << "renamed artifact must be refused";
  } catch (const RegistryError& e) {
    EXPECT_EQ(e.kind(), RegistryError::Kind::kBadArtifact);
  }
}

TEST_F(RegistryFixture, LoadAllQuarantinesDamagedFiles) {
  ModelRegistry registry(dir_);
  ModelArtifact v1 = make_test_artifact("v1", 11);
  ModelArtifact v2 = make_test_artifact("v2", 12);
  ModelArtifact v3 = make_test_artifact("v3", 13);
  registry.save(v1);
  registry.save(v2);
  registry.save(v3);

  // Corrupt v2 in place (flip one payload byte) and truncate v3.
  {
    std::ifstream is(registry.path_for("v2"));
    std::ostringstream buffer;
    buffer << is.rdbuf();
    std::string text = buffer.str();
    const std::size_t pos = text.find("monitor-threshold ") + 18;
    text[pos] = text[pos] == '2' ? '3' : '2';
    std::ofstream os(registry.path_for("v2"));
    os << text;
  }
  {
    std::ifstream is(registry.path_for("v3"));
    std::ostringstream buffer;
    buffer << is.rdbuf();
    const std::string text = buffer.str();
    std::ofstream os(registry.path_for("v3"));
    os << text.substr(0, text.size() / 2);
  }

  const ModelRegistry::ScanResult scan = registry.load_all();
  ASSERT_EQ(scan.artifacts.size(), 1u);
  EXPECT_EQ(scan.artifacts[0].version, "v1");
  ASSERT_EQ(scan.rejected.size(), 2u);
  EXPECT_NE(scan.rejected[0].find("hash-mismatch"), std::string::npos)
      << scan.rejected[0];
  EXPECT_NE(scan.rejected[1].find("bad-artifact"), std::string::npos)
      << scan.rejected[1];
}

// -------------------------------------------------------------------------
// Packed (v3) encoding in the directory registry.
// -------------------------------------------------------------------------

TEST_F(RegistryFixture, PackedArtifactRoundTripsBitwise) {
  ModelRegistry registry(dir_);
  ModelArtifact v1 = make_test_artifact("v1");
  const std::string canonical = artifact_text(v1);
  const std::string path = registry.save(v1, ArtifactEncoding::kPacked);
  EXPECT_EQ(path, registry.path_for("v1", ArtifactEncoding::kPacked));
  EXPECT_EQ(registry.path_for("v1"), path);  // resolves to the packed file
  EXPECT_TRUE(registry.contains("v1"));

  // The canonical (uncompressed) serialization and the content hash are
  // encoding-independent: what comes back is bitwise what went in.
  const ModelArtifact loaded = registry.load("v1");
  EXPECT_EQ(artifact_text(loaded), canonical);
  EXPECT_EQ(loaded.content_hash, v1.content_hash);
  EXPECT_NE(loaded.content_hash, 0u);
}

TEST_F(RegistryFixture, SaveRefusesRepublishingUnderOtherEncoding) {
  // Immutability is per VERSION, not per (version, encoding): a packed
  // re-publication of an existing plain version must be refused.
  ModelRegistry registry(dir_);
  ModelArtifact v1 = make_test_artifact("v1");
  registry.save(v1);
  ModelArtifact again = make_test_artifact("v1", 99);
  try {
    registry.save(again, ArtifactEncoding::kPacked);
    FAIL() << "cross-encoding duplicate must be refused";
  } catch (const RegistryError& e) {
    EXPECT_EQ(e.kind(), RegistryError::Kind::kDuplicateVersion);
  }
}

TEST_F(RegistryFixture, LoadAllAcceptsMixedEncodingsAndQuarantinesDamage) {
  // A realistic mixed directory: plain v1 + packed v2 (healthy), packed
  // v3 truncated mid-blob, packed v4 with a forged checksum, and v5
  // present under BOTH encodings. Healthy artifacts load regardless of
  // encoding; each damaged/ambiguous one is quarantined with its typed
  // kind, never silently skipped or half-loaded.
  ModelRegistry registry(dir_);
  ModelArtifact v1 = make_test_artifact("v1", 11);
  ModelArtifact v2 = make_test_artifact("v2", 12);
  ModelArtifact v3 = make_test_artifact("v3", 13);
  ModelArtifact v4 = make_test_artifact("v4", 14);
  ModelArtifact v5 = make_test_artifact("v5", 15);
  registry.save(v1);
  registry.save(v2, ArtifactEncoding::kPacked);
  registry.save(v3, ArtifactEncoding::kPacked);
  registry.save(v4, ArtifactEncoding::kPacked);
  registry.save(v5);
  // Forge the dual-encoding state behind the registry's back (save()
  // itself refuses it — see SaveRefusesRepublishingUnderOtherEncoding).
  save_artifact_file(registry.path_for("v5", ArtifactEncoding::kPacked), v5,
                     ArtifactEncoding::kPacked);

  const auto read_file = [](const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << is.rdbuf();
    return buffer.str();
  };
  const auto write_file = [](const std::string& path,
                             const std::string& bytes) {
    std::ofstream os(path, std::ios::binary);
    os << bytes;
  };
  {  // Truncate v3 mid-blob: malformed pack stream -> kBadArtifact.
    const std::string path = registry.path_for("v3");
    const std::string bytes = read_file(path);
    write_file(path, bytes.substr(0, bytes.size() / 2));
  }
  {  // Flip one digit of v4's checksum: the blob decompresses fine but
     // the declared hash no longer matches -> kHashMismatch.
    const std::string path = registry.path_for("v4");
    std::string bytes = read_file(path);
    const std::size_t pos = bytes.find("artifact-checksum ") + 18;
    bytes[pos] = bytes[pos] == 'a' ? 'b' : 'a';
    write_file(path, bytes);
  }

  EXPECT_EQ(registry.list(),
            (std::vector<std::string>{"v1", "v2", "v3", "v4", "v5"}));
  const ModelRegistry::ScanResult scan = registry.load_all();
  ASSERT_EQ(scan.artifacts.size(), 2u);
  EXPECT_EQ(scan.artifacts[0].version, "v1");
  EXPECT_EQ(scan.artifacts[1].version, "v2");
  EXPECT_EQ(scan.artifacts[1].content_hash, v2.content_hash);
  ASSERT_EQ(scan.rejected.size(), 3u);
  EXPECT_NE(scan.rejected[0].find("bad-artifact"), std::string::npos)
      << scan.rejected[0];
  EXPECT_NE(scan.rejected[1].find("hash-mismatch"), std::string::npos)
      << scan.rejected[1];
  EXPECT_NE(scan.rejected[2].find("duplicate-version"), std::string::npos)
      << scan.rejected[2];
}

// -------------------------------------------------------------------------
// LiveModel: atomic hot-swap slot.
// -------------------------------------------------------------------------

TEST(LiveModel, SnapshotFromArtifactOwnsBitwiseIdenticalModel) {
  const core::TrainedPredictor predictor = make_craft_predictor();
  ModelArtifact artifact =
      make_artifact("v1", predictor, make_monitor_config(0.5));
  {
    std::stringstream ss;
    artifact.content_hash = save_artifact(ss, artifact);
  }
  const ModelSnapshot snapshot(artifact, linalg::KernelBackend::kReference);
  EXPECT_EQ(snapshot.version(), "v1");
  EXPECT_EQ(snapshot.backend(), linalg::KernelBackend::kReference);
  EXPECT_EQ(snapshot.content_hash(), artifact.content_hash);
  EXPECT_NE(snapshot.content_hash(), 0u);
  for (const Vector& x : make_probe_scenes(6, 5)) {
    const Vector y0 = predictor.network.forward(x);
    const Vector y1 = snapshot.predictor().network.forward(x);
    for (std::size_t d = 0; d < y0.size(); ++d) EXPECT_EQ(y0[d], y1[d]);
  }
  EXPECT_EQ(snapshot.monitor().safe_action().size(), highway::kActionDims);
}

TEST(LiveModel, SwapPublishesNextAndReturnsPrevious) {
  const core::TrainedPredictor predictor = make_craft_predictor();
  const MonitorConfig config = make_monitor_config();
  const core::SafetyMonitor monitor(config.region, config.lateral_threshold);

  LiveModel live(std::make_shared<const ModelSnapshot>(
      "v1", predictor, monitor, linalg::KernelBackend::kReference));
  EXPECT_EQ(live.current()->version(), "v1");
  EXPECT_EQ(live.swap_count(), 0u);

  const ModelArtifact v2 = make_test_artifact("v2", 12);
  const std::shared_ptr<const ModelSnapshot> held = live.current();
  const std::shared_ptr<const ModelSnapshot> previous = live.swap(
      std::make_shared<const ModelSnapshot>(
          v2, linalg::KernelBackend::kReference));
  EXPECT_EQ(previous->version(), "v1");
  EXPECT_EQ(live.current()->version(), "v2");
  EXPECT_EQ(live.swap_count(), 1u);
  // A reader that pinned the old snapshot before the swap still holds a
  // fully usable model — RCU semantics.
  EXPECT_EQ(held->version(), "v1");
  EXPECT_EQ(held->predictor().network.input_size(),
            highway::kSceneFeatures);
}

TEST(LiveModel, ConcurrentReadersNeverSeeATornSnapshot) {
  // Writers swap between two artifacts while readers hammer current().
  // Every observed snapshot must be internally consistent: its version
  // must match the content hash and model it carries.
  ModelArtifact a = make_test_artifact("va", 21);
  ModelArtifact b = make_test_artifact("vb", 22);
  {
    std::stringstream sa, sb;
    a.content_hash = save_artifact(sa, a);
    b.content_hash = save_artifact(sb, b);
    ASSERT_NE(a.content_hash, b.content_hash);
  }
  LiveModel live(std::make_shared<const ModelSnapshot>(
      a, linalg::KernelBackend::kReference));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::set<std::string> seen_versions;
  std::mutex seen_mu;
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      Vector probe(highway::kSceneFeatures);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::shared_ptr<const ModelSnapshot> snap = live.current();
        ASSERT_TRUE(snap != nullptr);
        const bool is_a = snap->version() == "va";
        ASSERT_TRUE(is_a || snap->version() == "vb") << snap->version();
        // The snapshot's model must be the one its version promises.
        const Vector y = snap->predictor().network.forward(probe);
        const std::uint64_t expected =
            is_a ? a.content_hash : b.content_hash;
        ASSERT_EQ(snap->content_hash(), expected);
        ASSERT_EQ(y.size(), snap->predictor().head.raw_output_size());
        reads.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(seen_mu);
        seen_versions.insert(snap->version());
      }
    });
  }

  for (int i = 0; i < 50; ++i) {
    const ModelArtifact& next = i % 2 == 0 ? b : a;
    live.swap(std::make_shared<const ModelSnapshot>(
        next, linalg::KernelBackend::kReference));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_EQ(live.swap_count(), 50u);
  EXPECT_GT(reads.load(), 0u);
  // With 50 paced swaps the readers must have observed both versions.
  EXPECT_EQ(seen_versions.size(), 2u);
}

// -------------------------------------------------------------------------
// Quantized payload: one immutable file, both representations.
// -------------------------------------------------------------------------

TEST(Artifact, QuantizedPayloadRoundTripsBitwise) {
  ModelArtifact original = make_test_artifact("vq", 11, 0.75);
  const std::uint64_t qhash = attach_quantized(original, 8, 4.0);
  EXPECT_NE(qhash, 0u);
  ASSERT_TRUE(original.quantized.has_value());
  EXPECT_EQ(original.quantized->content_hash, qhash);

  const std::string text = artifact_text(original);
  // Quantized artifacts use format v2; the quantized section precedes
  // the network and is separately checksummed (content-addressed).
  EXPECT_EQ(text.rfind("safenn-artifact v2\n", 0), 0u);
  EXPECT_NE(text.find("quantized-checksum "), std::string::npos);

  std::istringstream is(text);
  const ModelArtifact loaded = load_artifact(is);
  ASSERT_TRUE(loaded.quantized.has_value());
  EXPECT_EQ(loaded.quantized->content_hash, qhash);
  EXPECT_EQ(loaded.quantized->input_limit, 4.0);
  const nn::QuantizedNetwork& q0 = original.quantized->network;
  const nn::QuantizedNetwork& q1 = loaded.quantized->network;
  ASSERT_EQ(q1.num_layers(), q0.num_layers());
  EXPECT_EQ(q1.frac_bits(), q0.frac_bits());
  for (std::size_t li = 0; li < q0.num_layers(); ++li) {
    EXPECT_EQ(q1.layer(li).weights, q0.layer(li).weights);
    EXPECT_EQ(q1.layer(li).biases, q0.layer(li).biases);
  }
  // The integer semantics survive the round trip bit for bit.
  Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<std::int64_t> in(q0.input_size());
    for (auto& v : in) v = q0.to_fixed(rng.uniform(-4.0, 4.0));
    EXPECT_EQ(q0.forward_fixed(in), q1.forward_fixed(in));
  }
}

TEST(Artifact, QuantizedWeightsAreContentAddressed) {
  // Same float network, same frac_bits -> same quantized hash; any
  // semantic difference moves it.
  ModelArtifact a = make_test_artifact("va", 11);
  ModelArtifact b = make_test_artifact("vb", 11);
  ModelArtifact c = make_test_artifact("vc", 12);
  const std::uint64_t ha = attach_quantized(a, 8, 4.0);
  const std::uint64_t hb = attach_quantized(b, 8, 4.0);
  const std::uint64_t hc = attach_quantized(c, 8, 4.0);
  const std::uint64_t ha6 = [&] {
    ModelArtifact a6 = make_test_artifact("va6", 11);
    return attach_quantized(a6, 6, 4.0);
  }();
  EXPECT_EQ(ha, hb);  // version label is not part of the content address
  EXPECT_NE(ha, hc);
  EXPECT_NE(ha, ha6);
}

TEST(Artifact, CorruptQuantizedSectionIsRejectedAfterRestamp) {
  // Corrupt one quantized weight, then re-stamp the OUTER artifact hash
  // so only the quantized content address can catch the tamper.
  ModelArtifact artifact = make_test_artifact("vq", 11);
  attach_quantized(artifact, 8, 4.0);
  std::string text = artifact_text(artifact);
  const std::size_t qpos = text.find("quantized-input-limit ");
  ASSERT_NE(qpos, std::string::npos);
  const std::size_t digit = text.find_first_of("123456789", qpos + 21);
  ASSERT_NE(digit, std::string::npos);
  text[digit] = text[digit] == '9' ? '8' : '9';
  const std::size_t header_end = text.find('\n');
  const std::size_t marker = text.rfind("\nartifact-checksum ");
  ASSERT_NE(marker, std::string::npos);
  const std::string payload = text.substr(header_end + 1,
                                          marker - header_end);
  const std::string restamped = "safenn-artifact v2\n" + payload +
                                "artifact-checksum " +
                                hex64(fnv1a64(payload)) + '\n';
  EXPECT_EQ(load_kind(restamped), RegistryError::Kind::kHashMismatch);
}

TEST(Artifact, AttachQuantizedRunsAdmissionAnalysis) {
  ModelArtifact artifact = make_test_artifact("vq", 11);
  // An absurd input domain overflows the bound analysis — typed error,
  // no payload attached.
  EXPECT_THROW(attach_quantized(artifact, 24, 1e8), nn::QuantizeError);
  EXPECT_FALSE(artifact.quantized.has_value());
}

TEST(Artifact, PlainArtifactsStillWriteFormatV1) {
  const std::string text = artifact_text(make_test_artifact("v1"));
  EXPECT_EQ(text.rfind("safenn-artifact v1\n", 0), 0u);
  EXPECT_EQ(text.find("quantized"), std::string::npos);
}

TEST(LiveModel, QuantizedSnapshotBuildsPackedEngine) {
  ModelArtifact artifact = make_test_artifact("vq", 11);
  const std::uint64_t qhash = attach_quantized(artifact, 8, 4.0);
  {
    std::stringstream ss;
    artifact.content_hash = save_artifact(ss, artifact);
  }
  const ModelSnapshot snapshot(artifact, linalg::KernelBackend::kQuantized,
                               linalg::KernelBackend::kReference);
  EXPECT_EQ(snapshot.backend(), linalg::KernelBackend::kQuantized);
  EXPECT_EQ(snapshot.quantized_hash(), qhash);
  ASSERT_NE(snapshot.quantized_engine(), nullptr);
  EXPECT_EQ(snapshot.quantized_engine()->kernel_backend(),
            linalg::KernelBackend::kReference);
  EXPECT_EQ(snapshot.quantized_engine()->input_size(),
            highway::kSceneFeatures);

  // Float snapshots carry no engine; requesting kQuantized without a
  // payload is refused.
  const ModelSnapshot plain(artifact, linalg::KernelBackend::kReference);
  EXPECT_EQ(plain.quantized_engine(), nullptr);
  ModelArtifact no_payload = make_test_artifact("vf", 12);
  {
    std::stringstream ss;
    no_payload.content_hash = save_artifact(ss, no_payload);
  }
  EXPECT_THROW(ModelSnapshot(no_payload, linalg::KernelBackend::kQuantized),
               Error);
}

}  // namespace
}  // namespace safenn::registry
