#include <gtest/gtest.h>

#include <cmath>
#include "common/error.hpp"
#include "common/rng.hpp"
#include "coverage/mcdc.hpp"
#include "coverage/neuron_coverage.hpp"

namespace safenn::coverage {
namespace {

using linalg::Vector;
using nn::Activation;
using nn::Network;

Network relu_net(std::uint64_t seed, std::vector<std::size_t> widths) {
  Rng rng(seed);
  return Network::make_mlp(widths, Activation::kRelu, Activation::kIdentity,
                           rng);
}

TEST(ActivationSignature, OneBitPerReluNeuron) {
  Network net = relu_net(1, {3, 5, 4, 2});
  const auto sig = activation_signature(net, Vector{0.1, -0.2, 0.3});
  EXPECT_EQ(sig.size(), 9u);  // 5 + 4 hidden ReLU neurons
}

TEST(ActivationSignature, MatchesPreActivationSigns) {
  Network net = relu_net(2, {2, 4, 1});
  const Vector x{0.5, -0.5};
  const auto sig = activation_signature(net, x);
  const nn::ForwardTrace trace = net.forward_trace(x);
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_EQ(sig[r], trace.pre_activations[0][r] > 0.0);
  }
}

TEST(CoverageTracker, EmptyTrackerFullCoverage) {
  // Network with no ReLU layers: coverage is trivially complete — the
  // paper's "one test case satisfies MC/DC" for smooth activations.
  Rng rng(3);
  Network net = Network::make_mlp({2, 4, 1}, Activation::kAtan,
                                  Activation::kIdentity, rng);
  CoverageTracker tracker(net);
  EXPECT_EQ(tracker.num_relu_neurons(), 0u);
  EXPECT_DOUBLE_EQ(tracker.activation_coverage(), 1.0);
  EXPECT_DOUBLE_EQ(tracker.both_phase_coverage(), 1.0);
}

TEST(CoverageTracker, AccumulatesObservations) {
  Network net = relu_net(4, {2, 6, 1});
  CoverageTracker tracker(net);
  EXPECT_EQ(tracker.tests_recorded(), 0u);
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    tracker.record_input(net, Vector{rng.uniform(-2, 2), rng.uniform(-2, 2)});
  }
  EXPECT_EQ(tracker.tests_recorded(), 50u);
  EXPECT_GT(tracker.activation_coverage(), 0.0);
  EXPECT_GE(tracker.activation_coverage(), tracker.both_phase_coverage() - 1e-12);
  EXPECT_GE(tracker.distinct_patterns(), 1u);
  EXPECT_LE(tracker.distinct_patterns(), 50u);
}

TEST(CoverageTracker, ResetClearsState) {
  Network net = relu_net(6, {2, 4, 1});
  CoverageTracker tracker(net);
  tracker.record_input(net, Vector{1.0, 1.0});
  tracker.reset();
  EXPECT_EQ(tracker.tests_recorded(), 0u);
  EXPECT_EQ(tracker.distinct_patterns(), 0u);
}

TEST(CoverageTracker, SinglePointCannotCoverBothPhases) {
  Network net = relu_net(7, {2, 8, 1});
  CoverageTracker tracker(net);
  tracker.record_input(net, Vector{0.3, 0.4});
  // One test can see each neuron in only one phase.
  EXPECT_EQ(tracker.both_phase_coverage(), 0.0);
}

TEST(Mcdc, AtanNetworkIsTriviallySatisfiable) {
  // Paper Sec. II: "When one uses tan-1 ... one only needs one test case
  // to satisfy MC/DC as there is no if-then-else branch in every neuron."
  Rng rng(8);
  Network net = Network::make_mlp({84, 60, 60, 60, 60, 15},
                                  Activation::kAtan, Activation::kIdentity,
                                  rng);
  const McdcAnalysis a = analyze_mcdc(net);
  EXPECT_EQ(a.decisions, 0u);
  EXPECT_TRUE(a.trivially_satisfiable);
  EXPECT_EQ(a.min_tests_lower_bound, 1u);
}

TEST(Mcdc, ReluNetworkBranchesAreExponential) {
  // "When one uses ReLU ... branching possibilities are exponential to
  // the number of neurons."
  Rng rng(9);
  Network net = Network::make_i4xn(84, 60, 15, Activation::kRelu, rng);
  const McdcAnalysis a = analyze_mcdc(net);
  EXPECT_EQ(a.decisions, 240u);  // 4 layers x 60 neurons
  EXPECT_DOUBLE_EQ(a.log2_branch_combinations, 240.0);
  EXPECT_FALSE(a.trivially_satisfiable);
  EXPECT_EQ(a.min_tests_lower_bound, 241u);
}

TEST(Mcdc, DecisionCountScalesWithWidth) {
  for (std::size_t width : {10u, 20u, 40u}) {
    Rng rng(10);
    Network net = Network::make_i4xn(84, width, 15, Activation::kRelu, rng);
    EXPECT_EQ(analyze_mcdc(net).decisions, 4 * width);
  }
}

TEST(CoverageCampaign, TerminatesAndReportsHonestNumbers) {
  Network net = relu_net(11, {4, 10, 10, 2});
  verify::Box box(4, verify::Interval{-1.5, 1.5});
  Rng rng(12);
  const CoverageCampaignResult r = run_coverage_campaign(net, box, 2000, rng);
  EXPECT_GT(r.tests_generated, 0u);
  EXPECT_LE(r.tests_generated, 2000u);
  EXPECT_GE(r.both_phase_coverage, 0.0);
  EXPECT_LE(r.both_phase_coverage, 1.0);
  EXPECT_DOUBLE_EQ(r.log2_total_patterns, 20.0);
  // Observed patterns cannot exceed the number of tests.
  EXPECT_LE(r.distinct_patterns, r.tests_generated);
}

TEST(CoverageCampaign, DistinctPatternsGrowWithWidthWhileCoverageSaturates) {
  // The intractability story: pattern space explodes exponentially, so
  // observed patterns become a vanishing fraction, even as per-neuron
  // coverage looks healthy.
  Rng rng(13);
  verify::Box box(4, verify::Interval{-2.0, 2.0});
  Network small = relu_net(14, {4, 6, 2});
  Network large = relu_net(15, {4, 24, 24, 2});
  Rng rng_a(16), rng_b(16);
  const auto rs = run_coverage_campaign(small, box, 1500, rng_a);
  const auto rl = run_coverage_campaign(large, box, 1500, rng_b);
  // Fraction of the pattern space seen is exponentially smaller for the
  // larger network.
  const double small_log_fraction =
      std::log2(static_cast<double>(rs.distinct_patterns)) -
      rs.log2_total_patterns;
  const double large_log_fraction =
      std::log2(static_cast<double>(rl.distinct_patterns)) -
      rl.log2_total_patterns;
  EXPECT_LT(large_log_fraction, small_log_fraction);
}

TEST(CoverageCampaign, RejectsWrongBox) {
  Network net = relu_net(17, {3, 4, 1});
  verify::Box box(2, verify::Interval{0.0, 1.0});
  Rng rng(18);
  EXPECT_THROW(run_coverage_campaign(net, box, 10, rng), safenn::Error);
}

}  // namespace
}  // namespace safenn::coverage
