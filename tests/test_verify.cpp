#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "verify/interval.hpp"
#include "verify/milp_encoder.hpp"
#include "verify/verifier.hpp"

namespace safenn::verify {
namespace {

using linalg::Vector;
using nn::Activation;
using nn::Network;

Network tiny_relu_net(Rng& rng, std::vector<std::size_t> widths) {
  return Network::make_mlp(widths, Activation::kRelu, Activation::kIdentity,
                           rng);
}

Box unit_box(std::size_t dims, double lo = -1.0, double hi = 1.0) {
  return Box(dims, Interval{lo, hi});
}

TEST(Interval, ClassifyStability) {
  EXPECT_EQ(classify(Interval{0.5, 2.0}), NeuronStability::kStableActive);
  EXPECT_EQ(classify(Interval{-3.0, -0.1}), NeuronStability::kStableInactive);
  EXPECT_EQ(classify(Interval{-1.0, 1.0}), NeuronStability::kUnstable);
  EXPECT_EQ(classify(Interval{0.0, 1.0}), NeuronStability::kStableActive);
}

TEST(Interval, HandComputedPropagation) {
  // Single neuron: z = 2a - b + 1 over a,b in [0,1]: z in [0, 3].
  Network net;
  nn::DenseLayer l(2, 1, Activation::kRelu);
  l.weights() = linalg::Matrix{{2.0, -1.0}};
  l.biases() = Vector{1.0};
  net.add_layer(std::move(l));
  const auto bounds = propagate_bounds(net, unit_box(2, 0.0, 1.0));
  ASSERT_EQ(bounds.size(), 1u);
  EXPECT_DOUBLE_EQ(bounds[0].pre[0].lo, 0.0);
  EXPECT_DOUBLE_EQ(bounds[0].pre[0].hi, 3.0);
  EXPECT_DOUBLE_EQ(bounds[0].post[0].lo, 0.0);
  EXPECT_DOUBLE_EQ(bounds[0].post[0].hi, 3.0);
}

TEST(Interval, RejectsDimensionMismatch) {
  Rng rng(1);
  Network net = tiny_relu_net(rng, {3, 4, 2});
  EXPECT_THROW(propagate_bounds(net, unit_box(2)), Error);
}

TEST(Interval, RejectsEmptyInterval) {
  Rng rng(2);
  Network net = tiny_relu_net(rng, {2, 3, 1});
  Box box = unit_box(2);
  box[0] = Interval{1.0, -1.0};
  EXPECT_THROW(propagate_bounds(net, box), Error);
}

// Soundness: network outputs at sampled points stay inside the bounds.
class IntervalSoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntervalSoundness, SampledOutputsInsideBounds) {
  Rng rng(GetParam());
  Network net = tiny_relu_net(rng, {3, 8, 6, 2});
  const Box box = unit_box(3, -2.0, 1.5);
  const auto out = output_bounds(net, box);
  for (int trial = 0; trial < 300; ++trial) {
    Vector x(3);
    for (std::size_t i = 0; i < 3; ++i)
      x[i] = rng.uniform(box[i].lo, box[i].hi);
    const Vector y = net.forward(x);
    for (std::size_t i = 0; i < y.size(); ++i) {
      EXPECT_GE(y[i], out[i].lo - 1e-9);
      EXPECT_LE(y[i], out[i].hi + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSoundness,
                         ::testing::Range<std::uint64_t>(0, 10));

TEST(Interval, SmoothActivationsSupported) {
  Rng rng(3);
  Network net = Network::make_mlp({2, 6, 1}, Activation::kAtan,
                                  Activation::kIdentity, rng);
  const Box box = unit_box(2);
  const auto out = output_bounds(net, box);
  for (int trial = 0; trial < 100; ++trial) {
    Vector x{rng.uniform(-1, 1), rng.uniform(-1, 1)};
    const double y = net.forward(x)[0];
    EXPECT_GE(y, out[0].lo - 1e-9);
    EXPECT_LE(y, out[0].hi + 1e-9);
  }
}

TEST(Interval, StabilityStatsCountAllReluNeurons) {
  Rng rng(4);
  Network net = tiny_relu_net(rng, {3, 10, 10, 2});
  const StabilityStats stats = stability_stats(net, unit_box(3));
  EXPECT_EQ(stats.total(), 20u);  // output layer is identity, not counted
}

TEST(Interval, TinyBoxMakesNeuronsStable) {
  Rng rng(5);
  Network net = tiny_relu_net(rng, {3, 12, 12, 2});
  const StabilityStats wide = stability_stats(net, unit_box(3, -5, 5));
  const StabilityStats narrow =
      stability_stats(net, unit_box(3, 0.4999, 0.5001));
  EXPECT_LE(narrow.unstable, wide.unstable);
  EXPECT_GT(narrow.stable_active + narrow.stable_inactive, 0u);
}

TEST(Property, RegionMembership) {
  InputRegion region;
  region.box = unit_box(2, 0.0, 1.0);
  region.constraints.push_back(
      InputConstraint{{{0, 1.0}, {1, 1.0}}, lp::Relation::kLe, 1.0});
  EXPECT_TRUE(region.contains(Vector{0.2, 0.3}));
  EXPECT_FALSE(region.contains(Vector{0.8, 0.9}));   // violates sum <= 1
  EXPECT_FALSE(region.contains(Vector{-0.1, 0.0}));  // outside box
}

TEST(Property, OutputExprEvaluation) {
  OutputExpr e{{{0, 2.0}, {2, -1.0}}};
  EXPECT_DOUBLE_EQ(e.evaluate(Vector{1.0, 99.0, 3.0}), -1.0);
}

TEST(Property, HoldsAtIsVacuousOutsideRegion) {
  Rng rng(6);
  Network net = tiny_relu_net(rng, {2, 4, 1});
  SafetyProperty prop;
  prop.region.box = unit_box(2, 0.0, 0.5);
  prop.expr.terms = {{0, 1.0}};
  prop.threshold = -1e9;  // impossible bound
  EXPECT_TRUE(prop.holds_at(net, Vector{0.9, 0.9}));  // outside region
}

TEST(Encoder, RejectsSmoothNetworks) {
  Rng rng(7);
  Network net = Network::make_mlp({2, 3, 1}, Activation::kTanh,
                                  Activation::kIdentity, rng);
  InputRegion region;
  region.box = unit_box(2);
  EXPECT_THROW(encode_network(net, region), Error);
}

TEST(Encoder, VariableMapsShapedLikeNetwork) {
  Rng rng(8);
  Network net = tiny_relu_net(rng, {3, 5, 4, 2});
  InputRegion region;
  region.box = unit_box(3);
  const EncodedNetwork enc = encode_network(net, region);
  EXPECT_EQ(enc.input_vars.size(), 3u);
  EXPECT_EQ(enc.output_vars.size(), 2u);
  EXPECT_EQ(enc.post_vars.size(), 3u);
  EXPECT_EQ(enc.post_vars[0].size(), 5u);
  EXPECT_EQ(enc.post_vars[1].size(), 4u);
  EXPECT_EQ(enc.num_binaries + enc.num_stable_active +
                enc.num_stable_inactive,
            9u);  // all hidden ReLU neurons accounted for
}

TEST(Encoder, LooseBigMUsesBinaryPerNeuron) {
  Rng rng(9);
  Network net = tiny_relu_net(rng, {3, 6, 6, 1});
  InputRegion region;
  region.box = unit_box(3);
  EncoderOptions loose;
  loose.tightening = BoundTightening::kLooseBigM;
  const EncodedNetwork tight = encode_network(net, region);
  const EncodedNetwork baseline = encode_network(net, region, loose);
  EXPECT_EQ(baseline.num_binaries, 12u);
  EXPECT_LE(tight.num_binaries, baseline.num_binaries);
}

// The central correctness property: the MILP maximum equals the true
// network maximum. Verified against dense sampling (lower bound) and the
// network-evaluated witness (achievability).
class MilpExactness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MilpExactness, MaximumMatchesSampledMaximum) {
  Rng rng(GetParam() + 100);
  Network net = tiny_relu_net(rng, {2, 5, 4, 1});
  InputRegion region;
  region.box = unit_box(2, -1.5, 1.5);
  OutputExpr expr{{{0, 1.0}}};

  MilpVerifier verifier;
  const MaximizeResult res = verifier.maximize(net, region, expr);
  ASSERT_EQ(res.status, milp::MilpStatus::kOptimal) << "seed " << GetParam();
  ASSERT_TRUE(res.has_value);

  // Dense grid sampling can only find values <= the true maximum.
  double sampled_max = -1e100;
  const int grid = 60;
  for (int i = 0; i <= grid; ++i) {
    for (int j = 0; j <= grid; ++j) {
      Vector x{-1.5 + 3.0 * i / grid, -1.5 + 3.0 * j / grid};
      sampled_max = std::max(sampled_max, net.forward(x)[0]);
    }
  }
  EXPECT_GE(res.max_value, sampled_max - 1e-5) << "seed " << GetParam();
  // Witness must live in the region and achieve the reported value.
  EXPECT_TRUE(region.contains(res.witness));
  EXPECT_NEAR(net.forward(res.witness)[0], res.max_value, 1e-9);
  // MILP bound must certify the value.
  EXPECT_GE(res.upper_bound, res.max_value - 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MilpExactness,
                         ::testing::Range<std::uint64_t>(0, 12));

TEST(MilpVerifier, LooseAndTightBigMAgreeOnMaximum) {
  Rng rng(200);
  Network net = tiny_relu_net(rng, {2, 6, 1});
  InputRegion region;
  region.box = unit_box(2);
  OutputExpr expr{{{0, 1.0}}};

  VerifierOptions tight_opt;
  VerifierOptions loose_opt;
  loose_opt.encoder.tightening = BoundTightening::kLooseBigM;
  loose_opt.encoder.loose_big_m = 50.0;
  const MaximizeResult tight = MilpVerifier(tight_opt).maximize(net, region, expr);
  const MaximizeResult loose = MilpVerifier(loose_opt).maximize(net, region, expr);
  ASSERT_EQ(tight.status, milp::MilpStatus::kOptimal);
  ASSERT_EQ(loose.status, milp::MilpStatus::kOptimal);
  EXPECT_NEAR(tight.max_value, loose.max_value, 1e-5);
  EXPECT_GE(loose.binaries, tight.binaries);
}

TEST(MilpVerifier, RespectsInputSideConstraints) {
  // Identity network: output = x0 + x1 (via weights). Region: box [0,1]^2
  // plus x0 + x1 <= 0.7. Max of output = 0.7, not 2.0.
  Network net;
  nn::DenseLayer l(2, 1, Activation::kIdentity);
  l.weights() = linalg::Matrix{{1.0, 1.0}};
  l.biases() = Vector{0.0};
  net.add_layer(std::move(l));
  InputRegion region;
  region.box = unit_box(2, 0.0, 1.0);
  region.constraints.push_back(
      InputConstraint{{{0, 1.0}, {1, 1.0}}, lp::Relation::kLe, 0.7});
  const MaximizeResult res =
      MilpVerifier().maximize(net, region, OutputExpr{{{0, 1.0}}});
  ASSERT_EQ(res.status, milp::MilpStatus::kOptimal);
  EXPECT_NEAR(res.max_value, 0.7, 1e-6);
}

TEST(MilpVerifier, ProvesTrueProperty) {
  Rng rng(11);
  Network net = tiny_relu_net(rng, {2, 6, 1});
  SafetyProperty prop;
  prop.name = "output below interval bound";
  prop.region.box = unit_box(2);
  prop.expr.terms = {{0, 1.0}};
  // Interval bound is sound, so threshold above it must be provable.
  prop.threshold =
      IntervalVerifier().upper_bound(net, prop.region, prop.expr) + 1.0;
  const ProveResult res = MilpVerifier().prove(net, prop);
  EXPECT_EQ(res.verdict, Verdict::kProved);
  EXPECT_FALSE(res.counterexample.has_value());
}

TEST(MilpVerifier, RefutesFalsePropertyWithWitness) {
  Rng rng(12);
  Network net = tiny_relu_net(rng, {2, 6, 1});
  SafetyProperty prop;
  prop.region.box = unit_box(2);
  prop.expr.terms = {{0, 1.0}};
  // Threshold below the value at the box centre: must be violated.
  prop.threshold = net.forward(Vector{0.0, 0.0})[0] - 0.5;
  const ProveResult res = MilpVerifier().prove(net, prop);
  ASSERT_EQ(res.verdict, Verdict::kViolated);
  ASSERT_TRUE(res.counterexample.has_value());
  EXPECT_TRUE(prop.region.contains(*res.counterexample));
  EXPECT_GT(prop.expr.evaluate(net.forward(*res.counterexample)),
            prop.threshold);
  EXPECT_FALSE(prop.holds_at(net, *res.counterexample));
}

TEST(MilpVerifier, EmptyRegionIsVacuouslySafe) {
  Rng rng(13);
  Network net = tiny_relu_net(rng, {2, 4, 1});
  SafetyProperty prop;
  prop.region.box = unit_box(2, 0.0, 1.0);
  // Contradictory side constraints: x0 >= 2 inside box [0,1].
  prop.region.constraints.push_back(
      InputConstraint{{{0, 1.0}}, lp::Relation::kGe, 2.0});
  prop.expr.terms = {{0, 1.0}};
  prop.threshold = -1e9;
  const ProveResult res = MilpVerifier().prove(net, prop);
  EXPECT_EQ(res.verdict, Verdict::kProved);
}

TEST(MilpVerifier, TimeLimitYieldsUnknownOrAnswer) {
  Rng rng(14);
  Network net = tiny_relu_net(rng, {6, 24, 24, 24, 1});
  SafetyProperty prop;
  prop.region.box = unit_box(6, -3.0, 3.0);
  prop.expr.terms = {{0, 1.0}};
  prop.threshold = 0.0;
  VerifierOptions opt;
  opt.time_limit_seconds = 0.2;
  const ProveResult res = MilpVerifier(opt).prove(net, prop);
  // Any verdict is acceptable; what matters is an honest, prompt return.
  EXPECT_LT(res.seconds, 30.0);
  if (res.verdict == Verdict::kViolated) {
    ASSERT_TRUE(res.counterexample.has_value());
    EXPECT_GT(prop.expr.evaluate(net.forward(*res.counterexample)),
              prop.threshold);
  }
}

TEST(IntervalVerifier, BoundDominatesMilpMaximum) {
  Rng rng(15);
  for (int trial = 0; trial < 5; ++trial) {
    Network net = tiny_relu_net(rng, {2, 5, 1});
    InputRegion region;
    region.box = unit_box(2);
    OutputExpr expr{{{0, 1.0}}};
    const double ub = IntervalVerifier().upper_bound(net, region, expr);
    const MaximizeResult exact = MilpVerifier().maximize(net, region, expr);
    ASSERT_EQ(exact.status, milp::MilpStatus::kOptimal);
    EXPECT_GE(ub, exact.max_value - 1e-7);
  }
}

TEST(IntervalVerifier, NeverClaimsViolation) {
  Rng rng(16);
  Network net = tiny_relu_net(rng, {2, 4, 1});
  SafetyProperty prop;
  prop.region.box = unit_box(2);
  prop.expr.terms = {{0, 1.0}};
  prop.threshold = -1e9;
  EXPECT_EQ(IntervalVerifier().prove(net, prop), Verdict::kUnknown);
  prop.threshold = 1e9;
  EXPECT_EQ(IntervalVerifier().prove(net, prop), Verdict::kProved);
}

TEST(Verdict, ToString) {
  EXPECT_EQ(to_string(Verdict::kProved), "proved");
  EXPECT_EQ(to_string(Verdict::kViolated), "violated");
  EXPECT_EQ(to_string(Verdict::kUnknown), "unknown");
}

}  // namespace
}  // namespace safenn::verify

// ---------------------------------------------------------------------------
// Input-splitting verifier (appended suite).
// ---------------------------------------------------------------------------
#include "verify/input_split.hpp"

namespace safenn::verify {
namespace {

class InputSplitExactness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InputSplitExactness, AgreesWithMilpOnTinyNets) {
  Rng rng(GetParam() + 300);
  Network net = Network::make_mlp({2, 5, 4, 1}, Activation::kRelu,
                                  Activation::kIdentity, rng);
  InputRegion region;
  region.box = Box(2, Interval{-1.5, 1.5});
  OutputExpr expr{{{0, 1.0}}};

  const MaximizeResult milp = MilpVerifier().maximize(net, region, expr);
  ASSERT_EQ(milp.status, milp::MilpStatus::kOptimal);

  InputSplitOptions opts;
  opts.gap_tol = 1e-5;
  opts.time_limit_seconds = 60.0;
  const InputSplitResult split =
      InputSplitVerifier(opts).maximize(net, region, expr);
  ASSERT_TRUE(split.exact) << "seed " << GetParam();
  EXPECT_NEAR(split.max_value, milp.max_value, 1e-4) << "seed " << GetParam();
  EXPECT_TRUE(region.contains(split.witness));
  EXPECT_NEAR(net.forward(split.witness)[0], split.max_value, 1e-9);
  EXPECT_GE(split.upper_bound, split.max_value - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InputSplitExactness,
                         ::testing::Range<std::uint64_t>(0, 8));

TEST(InputSplit, ProveVerdicts) {
  Rng rng(41);
  Network net = Network::make_mlp({2, 6, 1}, Activation::kRelu,
                                  Activation::kIdentity, rng);
  SafetyProperty prop;
  prop.region.box = Box(2, Interval{-1.0, 1.0});
  prop.expr.terms = {{0, 1.0}};

  InputSplitOptions opts;
  opts.time_limit_seconds = 30.0;
  InputSplitVerifier v(opts);
  InputSplitResult detail;
  // Find the true max first.
  const InputSplitResult max_result =
      v.maximize(net, prop.region, prop.expr);
  ASSERT_TRUE(max_result.exact);

  prop.threshold = max_result.max_value + 0.1;
  EXPECT_EQ(v.prove(net, prop, &detail), Verdict::kProved);
  prop.threshold = max_result.max_value - 0.1;
  EXPECT_EQ(v.prove(net, prop, &detail), Verdict::kViolated);
}

TEST(InputSplit, RespectsSideConstraints) {
  Network net;
  nn::DenseLayer l(2, 1, Activation::kIdentity);
  l.weights() = linalg::Matrix{{1.0, 1.0}};
  net.add_layer(std::move(l));
  InputRegion region;
  region.box = Box(2, Interval{0.0, 1.0});
  region.constraints.push_back(
      InputConstraint{{{0, 1.0}, {1, 1.0}}, lp::Relation::kLe, 0.6});
  const InputSplitResult r =
      InputSplitVerifier().maximize(net, region, OutputExpr{{{0, 1.0}}});
  ASSERT_TRUE(r.exact);
  EXPECT_NEAR(r.max_value, 0.6, 1e-3);
}

TEST(InputSplit, TimeLimitHonest) {
  Rng rng(42);
  Network net = Network::make_mlp({8, 30, 30, 1}, Activation::kRelu,
                                  Activation::kIdentity, rng);
  InputRegion region;
  region.box = Box(8, Interval{-2.0, 2.0});
  InputSplitOptions opts;
  opts.time_limit_seconds = 0.3;
  const InputSplitResult r =
      InputSplitVerifier(opts).maximize(net, region, OutputExpr{{{0, 1.0}}});
  EXPECT_LT(r.seconds, 10.0);
  if (!r.exact) {
    EXPECT_GE(r.upper_bound, r.max_value - 1e-9);
  }
}

TEST(InputSplit, RejectsSmoothNetworks) {
  Rng rng(43);
  Network net = Network::make_mlp({2, 3, 1}, Activation::kTanh,
                                  Activation::kIdentity, rng);
  InputRegion region;
  region.box = Box(2, Interval{-1.0, 1.0});
  EXPECT_THROW(
      InputSplitVerifier().maximize(net, region, OutputExpr{{{0, 1.0}}}),
      Error);
}

}  // namespace
}  // namespace safenn::verify

// ---------------------------------------------------------------------------
// LP-based bound tightening (appended suite).
// ---------------------------------------------------------------------------
namespace safenn::verify {
namespace {

class LpTighteningProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LpTighteningProperty, SoundAndNoLooserThanIntervals) {
  Rng rng(GetParam() + 500);
  Network net = Network::make_mlp({3, 7, 6, 2}, Activation::kRelu,
                                  Activation::kIdentity, rng);
  InputRegion region;
  region.box = Box(3, Interval{-1.2, 1.2});
  const auto interval_bounds = propagate_bounds(net, region.box);
  const auto lp_bounds = lp_tightened_bounds(net, region);
  ASSERT_EQ(lp_bounds.size(), interval_bounds.size());

  // (a) Never looser than interval bounds.
  for (std::size_t li = 0; li < lp_bounds.size(); ++li) {
    for (std::size_t r = 0; r < lp_bounds[li].pre.size(); ++r) {
      EXPECT_GE(lp_bounds[li].pre[r].lo, interval_bounds[li].pre[r].lo - 1e-7);
      EXPECT_LE(lp_bounds[li].pre[r].hi, interval_bounds[li].pre[r].hi + 1e-7);
    }
  }
  // (b) Sound: sampled pre-activations stay inside the LP bounds.
  for (int trial = 0; trial < 200; ++trial) {
    Vector x(3);
    for (std::size_t i = 0; i < 3; ++i)
      x[i] = rng.uniform(region.box[i].lo, region.box[i].hi);
    const nn::ForwardTrace trace = net.forward_trace(x);
    for (std::size_t li = 0; li < lp_bounds.size(); ++li) {
      for (std::size_t r = 0; r < lp_bounds[li].pre.size(); ++r) {
        EXPECT_GE(trace.pre_activations[li][r],
                  lp_bounds[li].pre[r].lo - 1e-6);
        EXPECT_LE(trace.pre_activations[li][r],
                  lp_bounds[li].pre[r].hi + 1e-6);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpTighteningProperty,
                         ::testing::Range<std::uint64_t>(0, 8));

TEST(LpTightening, AllModesAgreeOnExactMaximum) {
  Rng rng(501);
  Network net = Network::make_mlp({2, 6, 5, 1}, Activation::kRelu,
                                  Activation::kIdentity, rng);
  InputRegion region;
  region.box = Box(2, Interval{-1.0, 1.0});
  OutputExpr expr{{{0, 1.0}}};
  double reference = 0.0;
  bool first = true;
  for (BoundTightening mode :
       {BoundTightening::kLooseBigM, BoundTightening::kInterval,
        BoundTightening::kSymbolic, BoundTightening::kLpTighten}) {
    VerifierOptions opts;
    opts.encoder.tightening = mode;
    opts.encoder.loose_big_m = 100.0;
    const MaximizeResult r = MilpVerifier(opts).maximize(net, region, expr);
    ASSERT_EQ(r.status, milp::MilpStatus::kOptimal);
    if (first) {
      reference = r.max_value;
      first = false;
    } else {
      EXPECT_NEAR(r.max_value, reference, 1e-5);
    }
  }
}

TEST(LpTightening, FewerOrEqualBinariesThanInterval) {
  Rng rng(502);
  Network net = Network::make_mlp({3, 10, 10, 1}, Activation::kRelu,
                                  Activation::kIdentity, rng);
  InputRegion region;
  region.box = Box(3, Interval{-0.8, 0.8});
  EncoderOptions interval_opts;
  interval_opts.tightening = BoundTightening::kInterval;
  EncoderOptions lp_opts;
  lp_opts.tightening = BoundTightening::kLpTighten;
  const EncodedNetwork e_int = encode_network(net, region, interval_opts);
  const EncodedNetwork e_lp = encode_network(net, region, lp_opts);
  EXPECT_LE(e_lp.num_binaries, e_int.num_binaries);
}

TEST(WarmStart, AssignmentFromInputIsFeasible) {
  Rng rng(503);
  Network net = Network::make_mlp({3, 6, 4, 2}, Activation::kRelu,
                                  Activation::kIdentity, rng);
  InputRegion region;
  region.box = Box(3, Interval{-1.0, 1.0});
  const EncodedNetwork enc = encode_network(net, region);
  for (int trial = 0; trial < 20; ++trial) {
    Vector x(3);
    for (auto& v : x) v = rng.uniform(-1, 1);
    const std::vector<double> assignment = enc.assignment_from_input(net, x);
    EXPECT_LE(enc.model.problem().max_violation(assignment), 1e-7)
        << "trial " << trial;
    EXPECT_TRUE(enc.model.is_integral(assignment, 1e-9));
  }
}

TEST(WarmStart, HybridSplitWarmStartStillExact) {
  Rng rng(504);
  Network net = Network::make_mlp({2, 6, 1}, Activation::kRelu,
                                  Activation::kIdentity, rng);
  InputRegion region;
  region.box = Box(2, Interval{-1.0, 1.0});
  OutputExpr expr{{{0, 1.0}}};
  VerifierOptions plain;
  plain.warm_start_samples = 0;
  VerifierOptions hybrid;
  hybrid.warm_start_split_seconds = 0.5;
  const MaximizeResult a = MilpVerifier(plain).maximize(net, region, expr);
  const MaximizeResult b = MilpVerifier(hybrid).maximize(net, region, expr);
  ASSERT_EQ(a.status, milp::MilpStatus::kOptimal);
  ASSERT_EQ(b.status, milp::MilpStatus::kOptimal);
  EXPECT_NEAR(a.max_value, b.max_value, 1e-6);
}

}  // namespace
}  // namespace safenn::verify

// ---------------------------------------------------------------------------
// Maximum resilience (appended suite).
// ---------------------------------------------------------------------------
#include "verify/resilience.hpp"

namespace safenn::verify {
namespace {

TEST(Resilience, HandCraftedLinearNetwork) {
  // f(x) = x0: property f <= 0.5. Around center x0 = 0, the exact
  // resilience radius is 0.5.
  Network net;
  nn::DenseLayer l(2, 1, Activation::kIdentity);
  l.weights() = linalg::Matrix{{1.0, 0.0}};
  net.add_layer(std::move(l));
  SafetyProperty prop;
  prop.region.box = Box(2, Interval{-10, 10});  // ignored by the search
  prop.expr.terms = {{0, 1.0}};
  prop.threshold = 0.5;
  ResilienceOptions opts;
  opts.radius_hi = 2.0;
  opts.radius_tol = 1e-4;
  const ResilienceResult r =
      maximum_resilience(net, prop, Vector{0.0, 0.0}, opts);
  EXPECT_TRUE(r.proved_any);
  EXPECT_NEAR(r.safe_radius, 0.5, 2e-3);
  // A violation just above the safe radius must have been witnessed.
  ASSERT_TRUE(r.counterexample.has_value());
  EXPECT_GT((*r.counterexample)[0], 0.5 - 1e-6);
}

TEST(Resilience, FullRadiusSafeWhenThresholdHuge) {
  Rng rng(601);
  Network net = Network::make_mlp({2, 5, 1}, Activation::kRelu,
                                  Activation::kIdentity, rng);
  SafetyProperty prop;
  prop.region.box = Box(2, Interval{-1, 1});
  prop.expr.terms = {{0, 1.0}};
  prop.threshold = 1e6;
  ResilienceOptions opts;
  opts.radius_hi = 1.0;
  const ResilienceResult r =
      maximum_resilience(net, prop, Vector{0.0, 0.0}, opts);
  EXPECT_TRUE(r.proved_any);
  EXPECT_DOUBLE_EQ(r.safe_radius, 1.0);
  EXPECT_FALSE(r.counterexample.has_value());
}

TEST(Resilience, UnprovableCenterReportsHonestly) {
  // Property already violated at the center.
  Network net;
  nn::DenseLayer l(1, 1, Activation::kIdentity);
  l.weights() = linalg::Matrix{{1.0}};
  net.add_layer(std::move(l));
  SafetyProperty prop;
  prop.expr.terms = {{0, 1.0}};
  prop.threshold = -1.0;
  prop.region.box = Box(1, Interval{-5, 5});
  const ResilienceResult r =
      maximum_resilience(net, prop, Vector{0.0}, {});
  EXPECT_FALSE(r.proved_any);
  EXPECT_DOUBLE_EQ(r.safe_radius, 0.0);
}

TEST(Resilience, ClipBoxRestrictsPerturbations) {
  // f(x) = x0 with domain clipped to x0 <= 0.3: even a huge radius is
  // safe for threshold 0.4 because the clip box caps the reachable input.
  Network net;
  nn::DenseLayer l(1, 1, Activation::kIdentity);
  l.weights() = linalg::Matrix{{1.0}};
  net.add_layer(std::move(l));
  SafetyProperty prop;
  prop.expr.terms = {{0, 1.0}};
  prop.threshold = 0.4;
  prop.region.box = Box(1, Interval{-1, 1});
  ResilienceOptions opts;
  opts.radius_hi = 10.0;
  opts.clip_box = Box(1, Interval{-0.3, 0.3});
  const ResilienceResult r = maximum_resilience(net, prop, Vector{0.0}, opts);
  EXPECT_TRUE(r.proved_any);
  EXPECT_DOUBLE_EQ(r.safe_radius, 10.0);
}

// Property: the safe radius is monotone in the threshold.
class ResilienceMonotone : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ResilienceMonotone, LargerThresholdNeverShrinksRadius) {
  Rng rng(GetParam() + 700);
  Network net = Network::make_mlp({2, 6, 1}, Activation::kRelu,
                                  Activation::kIdentity, rng);
  const Vector center{0.0, 0.0};
  const double f0 = net.forward(center)[0];
  SafetyProperty prop;
  prop.region.box = Box(2, Interval{-2, 2});
  prop.expr.terms = {{0, 1.0}};
  ResilienceOptions opts;
  opts.radius_hi = 2.0;
  opts.radius_tol = 1e-3;
  prop.threshold = f0 + 0.2;
  const double r_small =
      maximum_resilience(net, prop, center, opts).safe_radius;
  prop.threshold = f0 + 0.8;
  const double r_large =
      maximum_resilience(net, prop, center, opts).safe_radius;
  EXPECT_GE(r_large, r_small - 2e-3) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResilienceMonotone,
                         ::testing::Range<std::uint64_t>(0, 6));

}  // namespace
}  // namespace safenn::verify

// ---------------------------------------------------------------------------
// Symbolic bound propagation + parallel input splitting (appended suite).
// ---------------------------------------------------------------------------
#include "verify/symbolic.hpp"

namespace safenn::verify {
namespace {

using linalg::Vector;
using nn::Activation;
using nn::Network;

Network mixed_stack_net(Rng& rng) {
  // ReLU -> tanh -> identity-hidden -> ReLU -> identity output: every
  // activation family the propagators support, in one stack.
  Network net;
  const Activation acts[] = {Activation::kRelu, Activation::kTanh,
                             Activation::kIdentity, Activation::kRelu,
                             Activation::kIdentity};
  const std::size_t widths[] = {3, 6, 5, 5, 4, 2};
  for (std::size_t i = 0; i < 5; ++i) {
    nn::DenseLayer l(widths[i], widths[i + 1], acts[i]);
    l.init_weights(rng);
    net.add_layer(std::move(l));
  }
  return net;
}

// The tentpole property: symbolic bounds are sound (dense sampling never
// escapes them) and provably no looser than interval propagation.
class SymbolicProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SymbolicProperty, SoundAndNeverLooserThanIntervals) {
  Rng rng(GetParam() + 700);
  Network net = Network::make_mlp({3, 7, 6, 2}, Activation::kRelu,
                                  Activation::kIdentity, rng);
  Box box(3);
  for (std::size_t i = 0; i < 3; ++i) {
    const double lo = rng.uniform(-1.5, 0.5);
    box[i] = Interval{lo, lo + rng.uniform(0.05, 2.0)};
  }
  const auto interval_b = propagate_bounds(net, box);
  const auto symbolic_b = symbolic_bounds(net, box);
  ASSERT_EQ(symbolic_b.size(), interval_b.size());

  // (a) Never looser (pre and post, every neuron, every layer).
  for (std::size_t li = 0; li < symbolic_b.size(); ++li) {
    for (std::size_t r = 0; r < symbolic_b[li].pre.size(); ++r) {
      EXPECT_GE(symbolic_b[li].pre[r].lo, interval_b[li].pre[r].lo - 1e-9);
      EXPECT_LE(symbolic_b[li].pre[r].hi, interval_b[li].pre[r].hi + 1e-9);
      EXPECT_GE(symbolic_b[li].post[r].lo, interval_b[li].post[r].lo - 1e-9);
      EXPECT_LE(symbolic_b[li].post[r].hi, interval_b[li].post[r].hi + 1e-9);
    }
  }
  // (b) Sound: densely sampled true activations stay inside.
  for (int trial = 0; trial < 300; ++trial) {
    Vector x(3);
    for (std::size_t i = 0; i < 3; ++i)
      x[i] = rng.uniform(box[i].lo, box[i].hi);
    const nn::ForwardTrace trace = net.forward_trace(x);
    for (std::size_t li = 0; li < symbolic_b.size(); ++li) {
      for (std::size_t r = 0; r < symbolic_b[li].pre.size(); ++r) {
        EXPECT_GE(trace.pre_activations[li][r],
                  symbolic_b[li].pre[r].lo - 1e-7);
        EXPECT_LE(trace.pre_activations[li][r],
                  symbolic_b[li].pre[r].hi + 1e-7);
        EXPECT_GE(trace.post_activations[li][r],
                  symbolic_b[li].post[r].lo - 1e-7);
        EXPECT_LE(trace.post_activations[li][r],
                  symbolic_b[li].post[r].hi + 1e-7);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SymbolicProperty,
                         ::testing::Range<std::uint64_t>(0, 10));

TEST(Symbolic, MixedStackSoundAndNoLooser) {
  Rng rng(710);
  Network net = mixed_stack_net(rng);
  const Box box(3, Interval{-0.9, 1.1});
  const auto interval_b = propagate_bounds(net, box);
  const auto symbolic_b = symbolic_bounds(net, box);
  for (std::size_t li = 0; li < symbolic_b.size(); ++li) {
    for (std::size_t r = 0; r < symbolic_b[li].post.size(); ++r) {
      EXPECT_GE(symbolic_b[li].post[r].lo, interval_b[li].post[r].lo - 1e-9);
      EXPECT_LE(symbolic_b[li].post[r].hi, interval_b[li].post[r].hi + 1e-9);
    }
  }
  for (int trial = 0; trial < 200; ++trial) {
    Vector x(3);
    for (std::size_t i = 0; i < 3; ++i)
      x[i] = rng.uniform(box[i].lo, box[i].hi);
    const Vector y = net.forward(x);
    const auto& out = symbolic_b.back().post;
    for (std::size_t i = 0; i < y.size(); ++i) {
      EXPECT_GE(y[i], out[i].lo - 1e-7);
      EXPECT_LE(y[i], out[i].hi + 1e-7);
    }
  }
}

TEST(Symbolic, ObjectiveIntervalBoundsTrueMaximum) {
  Rng rng(711);
  Network net = Network::make_mlp({2, 6, 2}, Activation::kRelu,
                                  Activation::kIdentity, rng);
  const Box box(2, Interval{-1.0, 1.0});
  SymbolicPropagator prop(net);
  const SymbolicBounds sb = prop.propagate(box);
  const lp::LinearTerms terms{{0, 1.0}, {1, -0.5}};
  const Interval obj = SymbolicPropagator::objective_interval(sb, box, terms);
  for (int trial = 0; trial < 500; ++trial) {
    Vector x{rng.uniform(-1, 1), rng.uniform(-1, 1)};
    const Vector y = net.forward(x);
    const double v = y[0] - 0.5 * y[1];
    EXPECT_GE(v, obj.lo - 1e-7);
    EXPECT_LE(v, obj.hi + 1e-7);
  }
}

// ISSUE edge cases: pre-activation intervals touching zero exactly.
TEST(Symbolic, EdgeCaseBoundsTouchingZero) {
  // z = x over x in [0, 1]: lo == 0, boundary-stable-active.
  Network active;
  {
    nn::DenseLayer l(1, 1, Activation::kRelu);
    l.weights() = linalg::Matrix{{1.0}};
    active.add_layer(std::move(l));
  }
  {
    const auto b = symbolic_bounds(active, Box(1, Interval{0.0, 1.0}));
    EXPECT_EQ(classify(b[0].pre[0]), NeuronStability::kStableActive);
    EXPECT_DOUBLE_EQ(b[0].post[0].lo, 0.0);
    EXPECT_DOUBLE_EQ(b[0].post[0].hi, 1.0);
  }
  // z = x over x in [-1, 0]: hi == 0, stable inactive; output pinned.
  {
    const auto b = symbolic_bounds(active, Box(1, Interval{-1.0, 0.0}));
    EXPECT_EQ(classify(b[0].pre[0]), NeuronStability::kStableInactive);
    EXPECT_DOUBLE_EQ(b[0].post[0].lo, 0.0);
    EXPECT_DOUBLE_EQ(b[0].post[0].hi, 0.0);
  }
  // Degenerate point box at the kink: both bounds zero.
  {
    const auto b = symbolic_bounds(active, Box(1, Interval{0.0, 0.0}));
    EXPECT_DOUBLE_EQ(b[0].pre[0].lo, 0.0);
    EXPECT_DOUBLE_EQ(b[0].pre[0].hi, 0.0);
    EXPECT_EQ(classify(b[0].pre[0]), NeuronStability::kStableActive);
  }
  // propagate_bounds agrees on the same edge cases.
  const auto ib = propagate_bounds(active, Box(1, Interval{-1.0, 0.0}));
  EXPECT_DOUBLE_EQ(ib[0].post[0].hi, 0.0);
}

TEST(Symbolic, FewerOrEqualBinariesThanInterval) {
  Rng rng(712);
  Network net = Network::make_mlp({3, 10, 10, 1}, Activation::kRelu,
                                  Activation::kIdentity, rng);
  InputRegion region;
  region.box = Box(3, Interval{-0.8, 0.8});
  EncoderOptions interval_opts;
  interval_opts.tightening = BoundTightening::kInterval;
  EncoderOptions sym_opts;
  sym_opts.tightening = BoundTightening::kSymbolic;
  const EncodedNetwork e_int = encode_network(net, region, interval_opts);
  const EncodedNetwork e_sym = encode_network(net, region, sym_opts);
  EXPECT_LE(e_sym.num_binaries, e_int.num_binaries);
}

// Parallel engine: identical trajectory for any worker count. This is
// the determinism contract from InputSplitOptions::num_workers — not
// just "same verdict", but bit-for-bit equal values and counters.
class InputSplitParallel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InputSplitParallel, WorkerCountDoesNotChangeResults) {
  Rng rng(GetParam() + 720);
  Network net = Network::make_mlp({3, 8, 6, 1}, Activation::kRelu,
                                  Activation::kIdentity, rng);
  InputRegion region;
  region.box = Box(3, Interval{-1.2, 1.2});
  OutputExpr expr{{{0, 1.0}}};

  InputSplitResult ref;
  bool first = true;
  for (int workers : {1, 2, 4}) {
    InputSplitOptions opts;
    opts.gap_tol = 1e-5;
    opts.time_limit_seconds = 60.0;
    opts.num_workers = workers;
    const InputSplitResult r =
        InputSplitVerifier(opts).maximize(net, region, expr);
    ASSERT_TRUE(r.exact) << "seed " << GetParam() << " workers " << workers;
    if (first) {
      ref = r;
      first = false;
      continue;
    }
    EXPECT_EQ(r.max_value, ref.max_value) << "workers " << workers;
    EXPECT_EQ(r.upper_bound, ref.upper_bound) << "workers " << workers;
    EXPECT_EQ(r.boxes_explored, ref.boxes_explored) << "workers " << workers;
    EXPECT_EQ(r.boxes_pruned_symbolic, ref.boxes_pruned_symbolic)
        << "workers " << workers;
    EXPECT_EQ(r.lp_iterations, ref.lp_iterations) << "workers " << workers;
    ASSERT_EQ(r.witness.size(), ref.witness.size());
    for (std::size_t i = 0; i < r.witness.size(); ++i) {
      EXPECT_EQ(r.witness[i], ref.witness[i]) << "workers " << workers;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InputSplitParallel,
                         ::testing::Range<std::uint64_t>(0, 6));

TEST(InputSplitParallel, SymbolicOnOffAgreeOnMaximum) {
  Rng rng(730);
  Network net = Network::make_mlp({2, 7, 5, 1}, Activation::kRelu,
                                  Activation::kIdentity, rng);
  InputRegion region;
  region.box = Box(2, Interval{-1.4, 1.4});
  OutputExpr expr{{{0, 1.0}}};
  InputSplitOptions with_sym;
  with_sym.gap_tol = 1e-6;
  with_sym.time_limit_seconds = 60.0;
  InputSplitOptions without_sym = with_sym;
  without_sym.use_symbolic = false;
  const InputSplitResult a =
      InputSplitVerifier(with_sym).maximize(net, region, expr);
  const InputSplitResult b =
      InputSplitVerifier(without_sym).maximize(net, region, expr);
  ASSERT_TRUE(a.exact);
  ASSERT_TRUE(b.exact);
  EXPECT_NEAR(a.max_value, b.max_value, 1e-5);
  EXPECT_GE(a.upper_bound, a.max_value - 1e-9);
  EXPECT_GE(b.upper_bound, b.max_value - 1e-9);
  EXPECT_EQ(b.boxes_pruned_symbolic, 0);
}

TEST(InputSplitParallel, ParallelProveVerdictsMatchSequential) {
  Rng rng(731);
  Network net = Network::make_mlp({2, 6, 1}, Activation::kRelu,
                                  Activation::kIdentity, rng);
  SafetyProperty prop;
  prop.region.box = Box(2, Interval{-1.0, 1.0});
  prop.expr.terms = {{0, 1.0}};
  InputSplitOptions seq;
  seq.time_limit_seconds = 30.0;
  const InputSplitResult m =
      InputSplitVerifier(seq).maximize(net, prop.region, prop.expr);
  ASSERT_TRUE(m.exact);
  for (double offset : {0.1, -0.1}) {
    prop.threshold = m.max_value + offset;
    InputSplitOptions par = seq;
    par.num_workers = 4;
    EXPECT_EQ(InputSplitVerifier(seq).prove(net, prop),
              InputSplitVerifier(par).prove(net, prop))
        << "offset " << offset;
  }
}

}  // namespace
}  // namespace safenn::verify
