#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/certification.hpp"
#include "core/hints.hpp"
#include "core/report.hpp"

namespace safenn::core {
namespace {

using linalg::Vector;

/// Shared small dataset + predictor so the expensive training runs once.
class PipelineFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    encoder_ = new highway::SceneEncoder();
    highway::DatasetBuildConfig dcfg;
    dcfg.sample_steps = 120;
    dcfg.warmup_steps = 30;
    dcfg.seed = 21;
    built_ = new highway::BuiltDataset(
        highway::build_highway_dataset(*encoder_, dcfg));

    PredictorConfig pcfg;
    pcfg.hidden_width = 8;
    pcfg.train.epochs = 12;
    predictor_ = new TrainedPredictor(
        train_motion_predictor(built_->data, pcfg));
  }
  static void TearDownTestSuite() {
    delete predictor_;
    delete built_;
    delete encoder_;
    predictor_ = nullptr;
    built_ = nullptr;
    encoder_ = nullptr;
  }

  static highway::SceneEncoder* encoder_;
  static highway::BuiltDataset* built_;
  static TrainedPredictor* predictor_;
};

highway::SceneEncoder* PipelineFixture::encoder_ = nullptr;
highway::BuiltDataset* PipelineFixture::built_ = nullptr;
TrainedPredictor* PipelineFixture::predictor_ = nullptr;

TEST_F(PipelineFixture, TrainingProducesI4xNTopology) {
  EXPECT_EQ(predictor_->network.num_layers(), 5u);
  EXPECT_EQ(predictor_->network.input_size(), 84u);
  EXPECT_EQ(predictor_->network.output_size(),
            predictor_->head.raw_output_size());
  EXPECT_TRUE(std::isfinite(predictor_->final_loss));
}

TEST_F(PipelineFixture, PredictReturnsNormalizedMixture) {
  const nn::GaussianMixture gm = predictor_->predict(built_->data.input(0));
  EXPECT_EQ(gm.dims(), highway::kActionDims);
  double sum = 0.0;
  for (double w : gm.weights) sum += w;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  for (const auto& s : gm.sigmas) {
    for (std::size_t d = 0; d < s.size(); ++d) EXPECT_GT(s[d], 0.0);
  }
}

TEST_F(PipelineFixture, VerificationProducesCertifiedMaximum) {
  verify::VerifierOptions opts;
  opts.time_limit_seconds = 60.0;
  const PredictorVerification v =
      verify_max_lateral_velocity(*predictor_, *encoder_, opts);
  ASSERT_EQ(v.per_component.size(), predictor_->head.components());
  EXPECT_GT(v.seconds, 0.0);
  if (v.exact) {
    // Witness value must be reproducible through plain inference, and the
    // verified max must dominate sampled probes from the region.
    const verify::InputRegion region =
        highway::make_vehicle_on_left_region(*encoder_);
    Rng rng(31);
    double sampled = -1e9;
    for (int trial = 0; trial < 200; ++trial) {
      Vector x(highway::kSceneFeatures);
      for (std::size_t i = 0; i < x.size(); ++i) {
        x[i] = rng.uniform(region.box[i].lo, region.box[i].hi);
      }
      const linalg::Vector raw = predictor_->network.forward(x);
      for (std::size_t k = 0; k < predictor_->head.components(); ++k) {
        sampled = std::max(
            sampled,
            raw[predictor_->head.mean_index(k, highway::kActionLateral)]);
      }
    }
    EXPECT_GE(v.max_lateral_velocity, sampled - 1e-5);
  }
}

TEST_F(PipelineFixture, ProveAgreesWithMaximization) {
  verify::VerifierOptions opts;
  opts.time_limit_seconds = 60.0;
  const PredictorVerification v =
      verify_max_lateral_velocity(*predictor_, *encoder_, opts);
  if (!v.exact) GTEST_SKIP() << "verification timed out on this machine";
  // Threshold above the exact max: must be proved.
  const PredictorProof proved = prove_lateral_velocity_bound(
      *predictor_, *encoder_, v.max_lateral_velocity + 0.1, opts);
  EXPECT_EQ(proved.verdict, verify::Verdict::kProved);
  // Threshold below the exact max: must be violated.
  const PredictorProof violated = prove_lateral_velocity_bound(
      *predictor_, *encoder_, v.max_lateral_velocity - 0.1, opts);
  EXPECT_EQ(violated.verdict, verify::Verdict::kViolated);
}

TEST(Hints, PropertyHintPenalizesViolationsOnly) {
  verify::SafetyProperty prop;
  prop.region.box = verify::Box(2, verify::Interval{0.0, 1.0});
  prop.expr.terms = {{0, 1.0}};
  prop.threshold = 1.0;
  const nn::OutputRegularizer hint = make_property_hint(prop);

  Vector grad(2);
  // Input outside region: no penalty.
  EXPECT_DOUBLE_EQ(hint(Vector{2.0, 0.0}, Vector{5.0, 0.0}, grad), 0.0);
  // In region, output below threshold: no penalty.
  EXPECT_DOUBLE_EQ(hint(Vector{0.5, 0.5}, Vector{0.5, 0.0}, grad), 0.0);
  EXPECT_DOUBLE_EQ(grad[0], 0.0);
  // In region, above threshold: quadratic penalty with gradient.
  const double pen = hint(Vector{0.5, 0.5}, Vector{3.0, 0.0}, grad);
  EXPECT_NEAR(pen, 4.0, 1e-12);  // (3-1)^2
  EXPECT_NEAR(grad[0], 4.0, 1e-12);  // 2*(3-1)*1
}

TEST(Hints, HintTrainingLowersVerifiedMaximum) {
  // Train twin predictors on the same data, one with the safety hint; the
  // hinted one must show a lower verified max lateral velocity.
  highway::SceneEncoder encoder;
  highway::DatasetBuildConfig dcfg;
  dcfg.sample_steps = 80;
  dcfg.warmup_steps = 20;
  dcfg.seed = 77;
  const highway::BuiltDataset built =
      highway::build_highway_dataset(encoder, dcfg);

  PredictorConfig base;
  base.hidden_width = 6;
  base.train.epochs = 10;
  base.weight_seed = 5;
  const TrainedPredictor plain = train_motion_predictor(built.data, base);

  PredictorConfig hinted_cfg = base;
  const nn::MdnHead head(hinted_cfg.mixture_components, highway::kActionDims);
  hinted_cfg.train.regularizer =
      make_lateral_velocity_hint(encoder, head, 0.0);
  hinted_cfg.train.regularizer_weight = 50.0;
  const TrainedPredictor hinted =
      train_motion_predictor(built.data, hinted_cfg);

  verify::VerifierOptions opts;
  opts.time_limit_seconds = 45.0;
  const PredictorVerification v_plain =
      verify_max_lateral_velocity(plain, encoder, opts);
  const PredictorVerification v_hint =
      verify_max_lateral_velocity(hinted, encoder, opts);
  if (v_plain.exact && v_hint.exact) {
    EXPECT_LE(v_hint.max_lateral_velocity,
              v_plain.max_lateral_velocity + 1e-6);
  }
}

TEST(Certification, EndToEndArtifactsAreCoherent) {
  CertificationConfig cfg;
  cfg.predictor.hidden_width = 6;
  cfg.predictor.train.epochs = 8;
  cfg.dataset.sample_steps = 80;
  cfg.dataset.warmup_steps = 20;
  cfg.dataset.risky_probability = 0.01;  // contaminated raw data
  cfg.verification_time_limit = 45.0;
  cfg.probe_count = 150;

  const CertificationArtifacts a = run_certification(cfg);

  // Pillar 1: contamination must be detected and removed.
  EXPECT_GT(a.validation.total_violations(), 0u);
  EXPECT_LT(a.samples_after_sanitize, a.samples_before_sanitize);

  // Pillar 2: traceability analyzed every hidden neuron.
  EXPECT_EQ(a.traceability.neurons.size(), 4u * 6u);

  // Pillar 3: MC/DC accounting and verification ran.
  EXPECT_EQ(a.mcdc.decisions, 24u);
  EXPECT_GT(a.coverage.tests_generated, 0u);
  EXPECT_GE(a.verification.seconds, 0.0);
  EXPECT_NE(a.verdict, verify::Verdict::kViolated);  // clean data + small net
  EXPECT_GT(a.total_seconds, 0.0);
}

TEST(Report, CertificationReportMentionsAllPillars) {
  CertificationConfig cfg;
  cfg.predictor.hidden_width = 4;
  cfg.predictor.train.epochs = 3;
  cfg.dataset.sample_steps = 40;
  cfg.dataset.warmup_steps = 10;
  cfg.verification_time_limit = 30.0;
  cfg.probe_count = 60;
  const CertificationArtifacts a = run_certification(cfg);
  const std::string text = render_certification_report(a, cfg);
  EXPECT_NE(text.find("specification validity"), std::string::npos);
  EXPECT_NE(text.find("understandability"), std::string::npos);
  EXPECT_NE(text.find("correctness"), std::string::npos);
  EXPECT_NE(text.find("MC/DC"), std::string::npos);
}

TEST(Report, TableTwoRendering) {
  PredictorVerification v;
  v.exact = true;
  v.max_lateral_velocity = 0.688497;
  v.seconds = 5.4;
  verify::MaximizeResult r;
  r.has_value = true;
  v.per_component.push_back(r);
  const TableTwoRow row = make_table_two_row("I4x10", v);
  EXPECT_EQ(row.ann_name, "I4x10");
  EXPECT_TRUE(row.has_value);
  EXPECT_FALSE(row.timed_out);

  PredictorVerification timeout;
  timeout.exact = false;
  timeout.seconds = 90.0;
  const TableTwoRow row2 = make_table_two_row("I4x60", timeout);
  EXPECT_TRUE(row2.timed_out);
  EXPECT_FALSE(row2.has_value);

  const std::string table = render_table_two({row, row2});
  EXPECT_NE(table.find("I4x10"), std::string::npos);
  EXPECT_NE(table.find("0.688497"), std::string::npos);
  EXPECT_NE(table.find("time-out"), std::string::npos);
  EXPECT_NE(table.find("n.a."), std::string::npos);

  CsvWriter csv;
  table_two_csv({row, row2}, csv);
  EXPECT_EQ(csv.row_count(), 2u);
}

}  // namespace
}  // namespace safenn::core

// ---------------------------------------------------------------------------
// Counterexample-guided repair (appended suite).
// ---------------------------------------------------------------------------
#include "core/repair.hpp"
#include "highway/dataset_builder.hpp"

namespace safenn::core {
namespace {

TEST(Repair, DrivesVerifiedMaximumDown) {
  highway::SceneEncoder encoder;
  highway::DatasetBuildConfig dcfg;
  dcfg.sample_steps = 60;
  dcfg.warmup_steps = 20;
  dcfg.seed = 99;
  const highway::BuiltDataset built =
      highway::build_highway_dataset(encoder, dcfg);
  const verify::InputRegion region = highway::make_vehicle_on_left_region(
      encoder, highway::data_domain_box(built.data, encoder));

  PredictorConfig pcfg;
  pcfg.hidden_width = 4;
  pcfg.train.epochs = 6;
  pcfg.weight_seed = 3;
  const TrainedPredictor initial =
      train_motion_predictor(built.data, pcfg);

  RepairOptions ropts;
  ropts.max_iterations = 2;
  ropts.property_threshold = 1.0;
  ropts.verifier.time_limit_seconds = 20.0;
  const RepairResult result = counterexample_guided_repair(
      initial, built.data, encoder, region, pcfg, ropts);

  ASSERT_GE(result.rounds.size(), 1u);
  // Rounds are recorded with meaningful verdicts.
  for (const RepairRound& r : result.rounds) {
    EXPECT_TRUE(r.verdict == verify::Verdict::kProved ||
                r.verdict == verify::Verdict::kViolated ||
                r.verdict == verify::Verdict::kUnknown);
  }
  // When the first round was an exact violation and repair iterated, the
  // final verified maximum must not be worse than the first.
  if (result.rounds.size() >= 2 && result.rounds.front().exact &&
      result.rounds.back().exact &&
      result.rounds.front().verdict == verify::Verdict::kViolated) {
    EXPECT_LE(result.rounds.back().max_lateral_velocity,
              result.rounds.front().max_lateral_velocity + 0.2);
  }
  // If the property was proved, the flag must say so.
  if (result.rounds.back().verdict == verify::Verdict::kProved) {
    EXPECT_TRUE(result.repaired);
  }
}

TEST(Repair, AlreadySafeModelReturnsImmediately) {
  highway::SceneEncoder encoder;
  highway::DatasetBuildConfig dcfg;
  dcfg.sample_steps = 40;
  dcfg.warmup_steps = 10;
  const highway::BuiltDataset built =
      highway::build_highway_dataset(encoder, dcfg);
  const verify::InputRegion region = highway::make_vehicle_on_left_region(
      encoder, highway::data_domain_box(built.data, encoder));
  PredictorConfig pcfg;
  pcfg.hidden_width = 4;
  pcfg.train.epochs = 5;
  const TrainedPredictor initial =
      train_motion_predictor(built.data, pcfg);
  RepairOptions ropts;
  ropts.max_iterations = 3;
  ropts.property_threshold = 1e6;  // trivially satisfied
  ropts.verifier.time_limit_seconds = 20.0;
  const RepairResult result = counterexample_guided_repair(
      initial, built.data, encoder, region, pcfg, ropts);
  EXPECT_EQ(result.rounds.size(), 1u);
  EXPECT_TRUE(result.repaired);
  EXPECT_EQ(result.rounds[0].verdict, verify::Verdict::kProved);
}

}  // namespace
}  // namespace safenn::core

// ---------------------------------------------------------------------------
// Runtime safety monitor (appended suite).
// ---------------------------------------------------------------------------
#include "core/monitor.hpp"

namespace safenn::core {
namespace {

TEST(Monitor, ClampsOnlyInsideRegionAboveThreshold) {
  highway::SceneEncoder encoder;
  const verify::InputRegion region =
      highway::make_vehicle_on_left_region(encoder);

  // Predictor stub: identity-free construction is heavy, so use a tiny
  // trained-free predictor whose head we drive by hand via a crafted
  // network: single identity layer mapping zeros to fixed raw outputs.
  TrainedPredictor p;
  p.head = nn::MdnHead(1, highway::kActionDims);
  nn::Network net;
  nn::DenseLayer layer(highway::kSceneFeatures, p.head.raw_output_size(),
                       nn::Activation::kIdentity);
  // All weights zero: raw output = biases. One component, weight 1.
  layer.biases()[p.head.mean_index(0, highway::kActionLateral)] = 2.5;
  layer.biases()[p.head.mean_index(0, highway::kActionAccel)] = -0.5;
  net.add_layer(std::move(layer));
  p.network = std::move(net);

  SafetyMonitor monitor(region, 1.0);

  // Scene inside the region: lateral 2.5 must be clamped to 1.0.
  linalg::Vector in_region(highway::kSceneFeatures);
  for (std::size_t i = 0; i < in_region.size(); ++i) {
    in_region[i] = region.box[i].lo;
  }
  in_region[encoder.presence_index(highway::NeighborSlot::kLeftFront)] = 1.0;
  in_region[encoder.gap_index(highway::NeighborSlot::kLeftFront)] = 0.1;
  const linalg::Vector guarded = monitor.guarded_action(p, in_region);
  EXPECT_NEAR(guarded[highway::kActionLateral], 1.0, 1e-9);
  EXPECT_NEAR(guarded[highway::kActionAccel], -0.5, 1e-9);

  // Scene outside the region: untouched even though lateral > threshold.
  linalg::Vector outside = in_region;
  outside[encoder.presence_index(highway::NeighborSlot::kLeftFront)] = 0.0;
  const linalg::Vector free_action = monitor.guarded_action(p, outside);
  EXPECT_NEAR(free_action[highway::kActionLateral], 2.5, 1e-9);

  EXPECT_EQ(monitor.stats().queries, 2u);
  EXPECT_EQ(monitor.stats().assumption_hits, 1u);
  EXPECT_EQ(monitor.stats().interventions, 1u);
  EXPECT_NEAR(monitor.stats().intervention_rate(), 0.5, 1e-12);
  monitor.reset_stats();
  EXPECT_EQ(monitor.stats().queries, 0u);
}

TEST(Monitor, SafePredictorNeedsNoInterventions) {
  highway::SceneEncoder encoder;
  const verify::InputRegion region =
      highway::make_vehicle_on_left_region(encoder);
  TrainedPredictor p;
  p.head = nn::MdnHead(1, highway::kActionDims);
  nn::Network net;
  nn::DenseLayer layer(highway::kSceneFeatures, p.head.raw_output_size(),
                       nn::Activation::kIdentity);
  layer.biases()[p.head.mean_index(0, highway::kActionLateral)] = 0.2;
  net.add_layer(std::move(layer));
  p.network = std::move(net);

  SafetyMonitor monitor(region, 1.0);
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    linalg::Vector scene(highway::kSceneFeatures);
    for (std::size_t j = 0; j < scene.size(); ++j) {
      scene[j] = rng.uniform(region.box[j].lo, region.box[j].hi);
    }
    monitor.guarded_action(p, scene);
  }
  EXPECT_EQ(monitor.stats().queries, 50u);
  EXPECT_EQ(monitor.stats().interventions, 0u);
}

}  // namespace
}  // namespace safenn::core

// ---------------------------------------------------------------------------
// Monitor thread-safety + MonitorStats edge cases (appended suite).
// ---------------------------------------------------------------------------
#include <thread>

namespace safenn::core {
namespace {

TEST(MonitorStats, InterventionRateEdgeCases) {
  MonitorStats s;
  EXPECT_DOUBLE_EQ(s.intervention_rate(), 0.0);  // no queries: no div-by-0
  s.queries = 8;
  EXPECT_DOUBLE_EQ(s.intervention_rate(), 0.0);  // queries, no clamps
  s.interventions = 2;
  EXPECT_DOUBLE_EQ(s.intervention_rate(), 0.25);
  s.interventions = s.queries;
  EXPECT_DOUBLE_EQ(s.intervention_rate(), 1.0);  // every query clamped
}

TEST(MonitorStats, ResetClearsEveryCounter) {
  highway::SceneEncoder encoder;
  const verify::InputRegion region =
      highway::make_vehicle_on_left_region(encoder);
  TrainedPredictor p;
  p.head = nn::MdnHead(1, highway::kActionDims);
  nn::Network net;
  nn::DenseLayer layer(highway::kSceneFeatures, p.head.raw_output_size(),
                       nn::Activation::kIdentity);
  layer.biases()[p.head.mean_index(0, highway::kActionLateral)] = 9.0;
  net.add_layer(std::move(layer));
  p.network = std::move(net);

  SafetyMonitor monitor(region, 1.0);
  linalg::Vector in_region(highway::kSceneFeatures);
  for (std::size_t i = 0; i < in_region.size(); ++i) {
    in_region[i] = region.box[i].lo;
  }
  in_region[encoder.presence_index(highway::NeighborSlot::kLeftFront)] = 1.0;
  in_region[encoder.gap_index(highway::NeighborSlot::kLeftFront)] = 0.1;
  monitor.guarded_action(p, in_region);
  ASSERT_EQ(monitor.stats().queries, 1u);
  ASSERT_EQ(monitor.stats().interventions, 1u);
  monitor.reset_stats();
  EXPECT_EQ(monitor.stats().queries, 0u);
  EXPECT_EQ(monitor.stats().assumption_hits, 0u);
  EXPECT_EQ(monitor.stats().interventions, 0u);
  EXPECT_DOUBLE_EQ(monitor.stats().intervention_rate(), 0.0);
}

TEST(Monitor, SafeActionRespectsThresholdSign) {
  highway::SceneEncoder encoder;
  const verify::InputRegion region =
      highway::make_vehicle_on_left_region(encoder);
  SafetyMonitor lenient(region, 1.5);
  EXPECT_DOUBLE_EQ(lenient.safe_action()[highway::kActionLateral], 0.0);
  SafetyMonitor strict(region, -0.5);  // threshold forces a right drift
  EXPECT_DOUBLE_EQ(strict.safe_action()[highway::kActionLateral], -0.5);
  EXPECT_DOUBLE_EQ(strict.safe_action()[highway::kActionAccel], 0.0);
}

TEST(Monitor, ConcurrentGuardingCountsExactly) {
  highway::SceneEncoder encoder;
  const verify::InputRegion region =
      highway::make_vehicle_on_left_region(encoder);
  TrainedPredictor p;
  p.head = nn::MdnHead(1, highway::kActionDims);
  nn::Network net;
  nn::DenseLayer layer(highway::kSceneFeatures, p.head.raw_output_size(),
                       nn::Activation::kIdentity);
  layer.biases()[p.head.mean_index(0, highway::kActionLateral)] = 2.0;
  net.add_layer(std::move(layer));
  p.network = std::move(net);
  const SafetyMonitor monitor(region, 1.0);  // const: guard is const now

  // Half the scenes hit the assumption (and clamp, lateral 2.0 > 1.0).
  linalg::Vector inside(highway::kSceneFeatures);
  for (std::size_t i = 0; i < inside.size(); ++i) {
    inside[i] = region.box[i].lo;
  }
  inside[encoder.presence_index(highway::NeighborSlot::kLeftFront)] = 1.0;
  inside[encoder.gap_index(highway::NeighborSlot::kLeftFront)] = 0.1;
  linalg::Vector outside = inside;
  outside[encoder.presence_index(highway::NeighborSlot::kLeftFront)] = 0.0;

  constexpr std::size_t kThreads = 4, kPerThread = 250;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        monitor.guarded_action(p, i % 2 == 0 ? inside : outside);
      }
    });
  }
  for (auto& th : threads) th.join();
  const MonitorStats s = monitor.stats();
  EXPECT_EQ(s.queries, kThreads * kPerThread);
  EXPECT_EQ(s.assumption_hits, kThreads * kPerThread / 2);
  EXPECT_EQ(s.interventions, kThreads * kPerThread / 2);
}

TEST_F(PipelineFixture, PredictIsThreadSafeOnSharedConstNetwork) {
  // Same trained network, concurrent readers: results must be bitwise
  // identical to a sequential evaluation (forward() is pure/const).
  const std::size_t n = std::min<std::size_t>(built_->data.size(), 64);
  std::vector<linalg::Vector> sequential;
  sequential.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    sequential.push_back(predictor_->predict(built_->data.input(i)).mean());
  }

  constexpr std::size_t kThreads = 4;
  std::vector<std::vector<linalg::Vector>> per_thread(kThreads);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      per_thread[t].reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        per_thread[t].push_back(
            predictor_->predict(built_->data.input(i)).mean());
      }
    });
  }
  for (auto& th : threads) th.join();
  for (std::size_t t = 0; t < kThreads; ++t) {
    ASSERT_EQ(per_thread[t].size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t d = 0; d < highway::kActionDims; ++d) {
        EXPECT_EQ(per_thread[t][i][d], sequential[i][d]);
      }
    }
  }
}

}  // namespace
}  // namespace safenn::core

// ---------------------------------------------------------------------------
// Batched prediction & guarding: the batched path must be
// decision-for-decision identical to the per-sample one (appended suite).
// ---------------------------------------------------------------------------
#include "common/error.hpp"

namespace safenn::core {
namespace {

TEST_F(PipelineFixture, PredictBatchBitwiseMatchesPredict) {
  const std::size_t n = std::min<std::size_t>(built_->data.size(), 48);
  std::vector<linalg::Vector> scenes;
  scenes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) scenes.push_back(built_->data.input(i));

  const std::vector<nn::GaussianMixture> batched =
      predictor_->predict_batch(scenes);
  ASSERT_EQ(batched.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    const nn::GaussianMixture ref = predictor_->predict(scenes[i]);
    ASSERT_EQ(batched[i].components(), ref.components());
    for (std::size_t k = 0; k < ref.components(); ++k) {
      EXPECT_EQ(batched[i].weights[k], ref.weights[k]);
      for (std::size_t d = 0; d < ref.dims(); ++d) {
        EXPECT_EQ(batched[i].means[k][d], ref.means[k][d]);
        EXPECT_EQ(batched[i].sigmas[k][d], ref.sigmas[k][d]);
      }
    }
  }
}

TEST(Pipeline, PackScenesLayoutAndValidation) {
  std::vector<linalg::Vector> scenes{{1.0, 2.0}, {3.0, 4.0}};
  const linalg::Matrix packed = pack_scenes(scenes);
  ASSERT_EQ(packed.rows(), 2u);
  ASSERT_EQ(packed.cols(), 2u);
  EXPECT_DOUBLE_EQ(packed(1, 0), 3.0);
  EXPECT_THROW(pack_scenes({}), Error);
  EXPECT_THROW(pack_scenes({linalg::Vector{1.0}, linalg::Vector{1.0, 2.0}}),
               Error);
}

TEST_F(PipelineFixture, GuardBatchMatchesSequentialGuardExactly) {
  highway::SceneEncoder encoder;
  const verify::InputRegion region = highway::make_vehicle_on_left_region(
      encoder, highway::data_domain_box(built_->data, encoder));
  // Threshold low enough that some replayed scenes actually clamp.
  const double threshold = -0.05;

  const std::size_t n = std::min<std::size_t>(built_->data.size(), 64);
  std::vector<linalg::Vector> scenes;
  scenes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) scenes.push_back(built_->data.input(i));

  SafetyMonitor sequential(region, threshold);
  std::vector<GuardDecision> expected;
  expected.reserve(n);
  for (const linalg::Vector& scene : scenes) {
    expected.push_back(sequential.guard(*predictor_, scene));
  }

  SafetyMonitor batched_monitor(region, threshold);
  const std::vector<GuardDecision> batched =
      batched_monitor.guard_batch(*predictor_, scenes);

  ASSERT_EQ(batched.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(batched[i].assumption_hit, expected[i].assumption_hit) << i;
    EXPECT_EQ(batched[i].intervened, expected[i].intervened) << i;
    ASSERT_EQ(batched[i].action.size(), expected[i].action.size());
    for (std::size_t d = 0; d < expected[i].action.size(); ++d) {
      EXPECT_EQ(batched[i].action[d], expected[i].action[d]) << i;
    }
  }
  EXPECT_EQ(batched_monitor.stats().queries, sequential.stats().queries);
  EXPECT_EQ(batched_monitor.stats().assumption_hits,
            sequential.stats().assumption_hits);
  EXPECT_EQ(batched_monitor.stats().interventions,
            sequential.stats().interventions);
  // The replay must actually exercise the clamp for the check to mean
  // anything.
  EXPECT_GT(sequential.stats().interventions, 0u);
}

TEST(Monitor, GuardBatchOnEmptyBatchIsANoOp) {
  highway::SceneEncoder encoder;
  const verify::InputRegion region =
      highway::make_vehicle_on_left_region(encoder);
  TrainedPredictor p;
  p.head = nn::MdnHead(1, highway::kActionDims);
  nn::Network net;
  nn::DenseLayer layer(highway::kSceneFeatures, p.head.raw_output_size(),
                       nn::Activation::kIdentity);
  net.add_layer(std::move(layer));
  p.network = std::move(net);
  SafetyMonitor monitor(region, 1.0);
  EXPECT_TRUE(monitor.guard_batch(p, {}).empty());
  EXPECT_EQ(monitor.stats().queries, 0u);
}

}  // namespace
}  // namespace safenn::core
