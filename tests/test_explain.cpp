#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "explain/saliency.hpp"
#include "explain/traceability.hpp"

namespace safenn::explain {
namespace {

using linalg::Matrix;
using linalg::Vector;
using nn::Activation;
using nn::Network;

TEST(Pearson, PerfectAndInverseCorrelation) {
  std::vector<double> a{1, 2, 3, 4, 5};
  std::vector<double> b{2, 4, 6, 8, 10};
  std::vector<double> c{5, 4, 3, 2, 1};
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
  EXPECT_NEAR(pearson(a, c), -1.0, 1e-12);
}

TEST(Pearson, NoVarianceGivesZero) {
  std::vector<double> a{1, 1, 1};
  std::vector<double> b{1, 2, 3};
  EXPECT_DOUBLE_EQ(pearson(a, b), 0.0);
}

TEST(Pearson, RejectsBadInput) {
  std::vector<double> a{1.0};
  std::vector<double> b{1.0, 2.0};
  EXPECT_THROW(pearson(a, b), Error);
}

TEST(Traceability, HandCraftedNeuronTracesToItsFeature) {
  // Hidden neuron 0 = relu(x0), neuron 1 = relu(-x1): correlations must
  // single out the right features with the right signs.
  Network net;
  nn::DenseLayer hidden(2, 2, Activation::kRelu);
  hidden.weights() = Matrix{{1.0, 0.0}, {0.0, -1.0}};
  hidden.biases() = Vector{0.0, 0.0};
  net.add_layer(std::move(hidden));
  nn::DenseLayer out(2, 1, Activation::kIdentity);
  out.weights() = Matrix{{1.0, 1.0}};
  out.biases() = Vector{0.0};
  net.add_layer(std::move(out));

  Rng rng(1);
  std::vector<Vector> probes;
  for (int i = 0; i < 300; ++i) {
    probes.push_back(Vector{rng.uniform(-1, 1), rng.uniform(-1, 1)});
  }
  const TraceabilityReport report = analyze_traceability(net, probes);
  ASSERT_EQ(report.neurons.size(), 2u);
  ASSERT_FALSE(report.neurons[0].top_features.empty());
  EXPECT_EQ(report.neurons[0].top_features[0].first, 0u);
  EXPECT_GT(report.neurons[0].top_features[0].second, 0.5);
  ASSERT_FALSE(report.neurons[1].top_features.empty());
  EXPECT_EQ(report.neurons[1].top_features[0].first, 1u);
  EXPECT_LT(report.neurons[1].top_features[0].second, -0.5);
  EXPECT_DOUBLE_EQ(report.traceable_fraction, 1.0);
}

TEST(Traceability, DeadNeuronReported) {
  // A neuron with a hugely negative bias never activates.
  Network net;
  nn::DenseLayer hidden(1, 1, Activation::kRelu);
  hidden.weights() = Matrix{{1.0}};
  hidden.biases() = Vector{-100.0};
  net.add_layer(std::move(hidden));
  nn::DenseLayer out(1, 1, Activation::kIdentity);
  out.weights() = Matrix{{1.0}};
  net.add_layer(std::move(out));
  Rng rng(2);
  std::vector<Vector> probes;
  for (int i = 0; i < 50; ++i) probes.push_back(Vector{rng.uniform(-1, 1)});
  const TraceabilityReport report = analyze_traceability(net, probes);
  ASSERT_EQ(report.neurons.size(), 1u);
  EXPECT_DOUBLE_EQ(report.neurons[0].activation_rate, 0.0);
  EXPECT_TRUE(report.neurons[0].top_features.empty());
  EXPECT_DOUBLE_EQ(report.traceable_fraction, 0.0);
}

TEST(Traceability, TopKLimitsFeatures) {
  Rng rng(3);
  Network net = Network::make_mlp({10, 6, 1}, Activation::kRelu,
                                  Activation::kIdentity, rng);
  std::vector<Vector> probes;
  for (int i = 0; i < 100; ++i) {
    Vector x(10);
    for (auto& v : x) v = rng.uniform(-1, 1);
    probes.push_back(std::move(x));
  }
  TraceabilityOptions opts;
  opts.top_k = 2;
  const TraceabilityReport report = analyze_traceability(net, probes, opts);
  for (const auto& n : report.neurons) {
    EXPECT_LE(n.top_features.size(), 2u);
  }
}

TEST(Traceability, RenderNamesFeatures) {
  Rng rng(4);
  Network net = Network::make_mlp({2, 2, 1}, Activation::kRelu,
                                  Activation::kIdentity, rng);
  std::vector<Vector> probes;
  for (int i = 0; i < 60; ++i) {
    probes.push_back(Vector{rng.uniform(-1, 1), rng.uniform(-1, 1)});
  }
  const TraceabilityReport report = analyze_traceability(net, probes);
  const std::string text =
      render_traceability(report, {"speed", "gap"});
  EXPECT_NE(text.find("traceability"), std::string::npos);
  // At least one named feature should appear.
  EXPECT_TRUE(text.find("speed") != std::string::npos ||
              text.find("gap") != std::string::npos ||
              text.find("dead") != std::string::npos);
}

TEST(Saliency, LinearNetworkGradientTimesInput) {
  // f(x) = 3 x0 - 2 x1 (identity activation): saliency = (3 x0, -2 x1).
  Network net;
  nn::DenseLayer out(2, 1, Activation::kIdentity);
  out.weights() = Matrix{{3.0, -2.0}};
  net.add_layer(std::move(out));
  const Vector s = saliency(net, Vector{2.0, 5.0}, 0);
  EXPECT_NEAR(s[0], 6.0, 1e-12);
  EXPECT_NEAR(s[1], -10.0, 1e-12);
}

TEST(Saliency, MeanAbsRanksRelevantFeatureFirst) {
  // Network output depends strongly on x0, weakly on x1.
  Network net;
  nn::DenseLayer out(2, 1, Activation::kIdentity);
  out.weights() = Matrix{{5.0, 0.1}};
  net.add_layer(std::move(out));
  Rng rng(5);
  std::vector<Vector> probes;
  for (int i = 0; i < 40; ++i) {
    probes.push_back(Vector{rng.uniform(-1, 1), rng.uniform(-1, 1)});
  }
  const Vector importance = mean_abs_saliency(net, probes, 0);
  EXPECT_GT(importance[0], importance[1]);
  const auto top = top_k_features(importance, 1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0], 0u);
}

TEST(Saliency, ConcentrationBounds) {
  Vector attribution{10.0, 0.1, 0.1, 0.1};
  const double c1 = attribution_concentration(attribution, 1);
  EXPECT_GT(c1, 0.9);
  EXPECT_LE(c1, 1.0);
  const double c4 = attribution_concentration(attribution, 4);
  EXPECT_NEAR(c4, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(attribution_concentration(Vector{0.0, 0.0}, 1), 0.0);
}

TEST(Saliency, TopKHandlesShortVectors) {
  Vector v{1.0, 2.0};
  EXPECT_EQ(top_k_features(v, 10).size(), 2u);
  EXPECT_EQ(top_k_features(v, 10)[0], 1u);
}

}  // namespace
}  // namespace safenn::explain
