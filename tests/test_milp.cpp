#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "milp/branch_and_bound.hpp"

namespace safenn::milp {
namespace {

MilpResult solve(const Model& m, BnbOptions opt = {}) {
  return BranchAndBound(opt).solve(m);
}

TEST(Model, BinaryBoundsClamped) {
  Model m;
  const int b = m.add_variable(-5, 5, VarType::kBinary);
  EXPECT_DOUBLE_EQ(m.problem().variable(b).lower, 0.0);
  EXPECT_DOUBLE_EQ(m.problem().variable(b).upper, 1.0);
  EXPECT_EQ(m.var_type(b), VarType::kBinary);
  EXPECT_EQ(m.integral_variables().size(), 1u);
}

TEST(Model, IntegralityCheck) {
  Model m;
  m.add_variable(0, 10, VarType::kInteger);
  m.add_variable(0, 10, VarType::kContinuous);
  EXPECT_TRUE(m.is_integral({3.0, 2.5}, 1e-6));
  EXPECT_FALSE(m.is_integral({3.4, 2.0}, 1e-6));
}

TEST(BranchAndBound, PureLpPassesThrough) {
  Model m;
  m.set_maximize(true);
  const int x = m.add_variable(0, 4, VarType::kContinuous, 1.0);
  m.add_constraint({{x, 2.0}}, lp::Relation::kLe, 5.0);
  const MilpResult r = solve(m);
  ASSERT_EQ(r.status, MilpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 2.5, 1e-6);
}

TEST(BranchAndBound, SmallKnapsack) {
  // max 10a + 13b + 7c with 3a + 4b + 2c <= 6, binary.
  // Best: a + c (w=5, v=17)? options: b+c (w=6, v=20) <- optimum.
  Model m;
  m.set_maximize(true);
  const int a = m.add_variable(0, 1, VarType::kBinary, 10.0);
  const int b = m.add_variable(0, 1, VarType::kBinary, 13.0);
  const int c = m.add_variable(0, 1, VarType::kBinary, 7.0);
  m.add_constraint({{a, 3.0}, {b, 4.0}, {c, 2.0}}, lp::Relation::kLe, 6.0);
  const MilpResult r = solve(m);
  ASSERT_EQ(r.status, MilpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 20.0, 1e-6);
  EXPECT_NEAR(r.values[static_cast<std::size_t>(a)], 0.0, 1e-6);
  EXPECT_NEAR(r.values[static_cast<std::size_t>(b)], 1.0, 1e-6);
  EXPECT_NEAR(r.values[static_cast<std::size_t>(c)], 1.0, 1e-6);
}

TEST(BranchAndBound, IntegerRounding) {
  // max x s.t. 2x <= 7, x integer -> x = 3 (LP gives 3.5).
  Model m;
  m.set_maximize(true);
  const int x = m.add_variable(0, 100, VarType::kInteger, 1.0);
  m.add_constraint({{x, 2.0}}, lp::Relation::kLe, 7.0);
  const MilpResult r = solve(m);
  ASSERT_EQ(r.status, MilpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 3.0, 1e-6);
}

TEST(BranchAndBound, MinimizationSense) {
  // min 3x + 2y s.t. x + y >= 3.5, x,y integer >= 0 -> x=0..? cheapest
  // integral combos: (0,4)=8, (1,3)=9, (2,2)=10, (3,1)=11 -> 8.
  Model m;
  const int x = m.add_variable(0, 10, VarType::kInteger, 3.0);
  const int y = m.add_variable(0, 10, VarType::kInteger, 2.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, lp::Relation::kGe, 3.5);
  const MilpResult r = solve(m);
  ASSERT_EQ(r.status, MilpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 8.0, 1e-6);
}

TEST(BranchAndBound, InfeasibleIntegerProblem) {
  // 0.4 <= x <= 0.6, x binary: no integral point.
  Model m;
  const int x = m.add_variable(0, 1, VarType::kBinary, 1.0);
  m.add_constraint({{x, 1.0}}, lp::Relation::kGe, 0.4);
  m.add_constraint({{x, 1.0}}, lp::Relation::kLe, 0.6);
  EXPECT_EQ(solve(m).status, MilpStatus::kInfeasible);
}

TEST(BranchAndBound, InfeasibleLpRelaxation) {
  Model m;
  const int x = m.add_variable(0, 1, VarType::kBinary, 1.0);
  m.add_constraint({{x, 1.0}}, lp::Relation::kGe, 2.0);
  EXPECT_EQ(solve(m).status, MilpStatus::kInfeasible);
}

TEST(BranchAndBound, UnboundedRelaxation) {
  Model m;
  m.set_maximize(true);
  m.add_variable(0, lp::kInfinity, VarType::kContinuous, 1.0);
  const MilpResult r = solve(m);
  EXPECT_EQ(r.status, MilpStatus::kUnbounded);
}

TEST(BranchAndBound, EqualityWithBinaries) {
  // a + b + c = 2 (binary), max 5a + 4b + 3c -> a=b=1: 9.
  Model m;
  m.set_maximize(true);
  const int a = m.add_variable(0, 1, VarType::kBinary, 5.0);
  const int b = m.add_variable(0, 1, VarType::kBinary, 4.0);
  const int c = m.add_variable(0, 1, VarType::kBinary, 3.0);
  m.add_constraint({{a, 1.0}, {b, 1.0}, {c, 1.0}}, lp::Relation::kEq, 2.0);
  const MilpResult r = solve(m);
  ASSERT_EQ(r.status, MilpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 9.0, 1e-6);
}

TEST(BranchAndBound, BigMDisjunction) {
  // Either x <= 1 or x >= 4 (binary d selects); max x, x <= 6.
  Model m;
  m.set_maximize(true);
  const double big_m = 100.0;
  const int x = m.add_variable(0, 6, VarType::kContinuous, 1.0);
  const int d = m.add_variable(0, 1, VarType::kBinary, 0.0);
  // d=0 -> x <= 1; d=1 -> x >= 4.
  m.add_constraint({{x, 1.0}, {d, -big_m}}, lp::Relation::kLe, 1.0);
  m.add_constraint({{x, -1.0}, {d, -big_m}}, lp::Relation::kLe, -4.0 + big_m);
  const MilpResult r = solve(m);
  ASSERT_EQ(r.status, MilpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 6.0, 1e-6);
  EXPECT_NEAR(r.values[static_cast<std::size_t>(d)], 1.0, 1e-6);
}

TEST(BranchAndBound, NodeLimitReturnsHonestStatus) {
  // A knapsack big enough to need several nodes, capped at 1 node.
  Rng rng(3);
  Model m;
  m.set_maximize(true);
  lp::LinearTerms weight_terms;
  for (int i = 0; i < 12; ++i) {
    const int v = m.add_variable(0, 1, VarType::kBinary, rng.uniform(1, 10));
    weight_terms.emplace_back(v, rng.uniform(1, 5));
  }
  m.add_constraint(std::move(weight_terms), lp::Relation::kLe, 10.0);
  BnbOptions opt;
  opt.max_nodes = 1;
  opt.heuristic_interval = 0;  // no primal heuristic either
  const MilpResult r = solve(m, opt);
  EXPECT_TRUE(r.status == MilpStatus::kNodeLimit ||
              r.status == MilpStatus::kTimeLimitNoSolution ||
              r.status == MilpStatus::kOptimal);
  EXPECT_LE(r.nodes_explored, 2);
}

TEST(BranchAndBound, TimeLimitRespected) {
  // Adversarial equality knapsack; with a tiny deadline the solver must
  // return promptly with an honest status.
  Rng rng(5);
  Model m;
  m.set_maximize(true);
  lp::LinearTerms terms;
  for (int i = 0; i < 30; ++i) {
    const int v = m.add_variable(0, 1, VarType::kBinary, rng.uniform(1, 2));
    terms.emplace_back(v, std::round(rng.uniform(10, 30)));
  }
  m.add_constraint(std::move(terms), lp::Relation::kEq, 317.0);
  BnbOptions opt;
  opt.time_limit_seconds = 0.05;
  Stopwatch sw;
  const MilpResult r = solve(m, opt);
  EXPECT_LT(sw.seconds(), 5.0);
  // Status must be a time-limit status or a genuine answer.
  EXPECT_TRUE(r.status == MilpStatus::kTimeLimitFeasible ||
              r.status == MilpStatus::kTimeLimitNoSolution ||
              r.status == MilpStatus::kOptimal ||
              r.status == MilpStatus::kInfeasible);
}

TEST(BranchAndBound, IncumbentCallbackStreams) {
  Model m;
  m.set_maximize(true);
  Rng rng(6);
  lp::LinearTerms terms;
  for (int i = 0; i < 10; ++i) {
    const int v = m.add_variable(0, 1, VarType::kBinary, rng.uniform(1, 10));
    terms.emplace_back(v, rng.uniform(1, 6));
  }
  m.add_constraint(std::move(terms), lp::Relation::kLe, 12.0);
  BnbOptions opt;
  int calls = 0;
  double last = -1e100;
  opt.on_incumbent = [&](const MilpResult& r) {
    ++calls;
    EXPECT_GT(r.objective, last);  // strictly improving stream
    last = r.objective;
  };
  const MilpResult r = solve(m, opt);
  ASSERT_EQ(r.status, MilpStatus::kOptimal);
  EXPECT_GE(calls, 1);
  EXPECT_NEAR(last, r.objective, 1e-9);
}

TEST(BranchAndBound, GapIsZeroAtOptimality) {
  Model m;
  m.set_maximize(true);
  const int x = m.add_variable(0, 1, VarType::kBinary, 2.0);
  m.add_constraint({{x, 1.0}}, lp::Relation::kLe, 1.0);
  const MilpResult r = solve(m);
  ASSERT_EQ(r.status, MilpStatus::kOptimal);
  EXPECT_NEAR(r.gap(), 0.0, 1e-9);
}

// Property: random knapsacks, MILP answer must match exhaustive search.
class KnapsackExhaustive : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KnapsackExhaustive, MatchesBruteForce) {
  Rng rng(GetParam() + 77);
  const int n = 8 + static_cast<int>(rng.uniform_index(5));  // <= 12 items
  std::vector<double> value(static_cast<std::size_t>(n)),
      weight(static_cast<std::size_t>(n));
  double capacity = 0.0;
  for (int i = 0; i < n; ++i) {
    value[static_cast<std::size_t>(i)] = rng.uniform(1, 20);
    weight[static_cast<std::size_t>(i)] = rng.uniform(1, 10);
    capacity += weight[static_cast<std::size_t>(i)];
  }
  capacity *= 0.4;

  Model m;
  m.set_maximize(true);
  lp::LinearTerms terms;
  for (int i = 0; i < n; ++i) {
    const int v = m.add_variable(0, 1, VarType::kBinary,
                                 value[static_cast<std::size_t>(i)]);
    terms.emplace_back(v, weight[static_cast<std::size_t>(i)]);
  }
  m.add_constraint(std::move(terms), lp::Relation::kLe, capacity);
  const MilpResult r = solve(m);
  ASSERT_EQ(r.status, MilpStatus::kOptimal) << "seed " << GetParam();

  double brute = 0.0;
  for (unsigned mask = 0; mask < (1u << n); ++mask) {
    double v = 0.0, w = 0.0;
    for (int i = 0; i < n; ++i) {
      if (mask & (1u << i)) {
        v += value[static_cast<std::size_t>(i)];
        w += weight[static_cast<std::size_t>(i)];
      }
    }
    if (w <= capacity + 1e-9) brute = std::max(brute, v);
  }
  EXPECT_NEAR(r.objective, brute, 1e-6) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, KnapsackExhaustive,
                         ::testing::Range<std::uint64_t>(0, 20));

}  // namespace
}  // namespace safenn::milp

// ---------------------------------------------------------------------------
// Warm starts and branch priorities (appended suite).
// ---------------------------------------------------------------------------
namespace safenn::milp {
namespace {

TEST(BranchAndBound, InitialSolutionBecomesIncumbent) {
  // Knapsack where the provided initial solution is feasible; even with a
  // node limit of 0 exploration the incumbent must be at least as good.
  Model m;
  m.set_maximize(true);
  const int a = m.add_variable(0, 1, VarType::kBinary, 5.0);
  const int b = m.add_variable(0, 1, VarType::kBinary, 4.0);
  m.add_constraint({{a, 1.0}, {b, 1.0}}, lp::Relation::kLe, 1.0);
  BnbOptions opt;
  opt.initial_solution = {0.0, 1.0};  // value 4
  opt.max_nodes = 1;
  opt.heuristic_interval = 0;
  const MilpResult r = BranchAndBound(opt).solve(m);
  EXPECT_TRUE(r.has_solution());
  EXPECT_GE(r.objective, 4.0 - 1e-9);
}

TEST(BranchAndBound, InfeasibleInitialSolutionIgnored) {
  Model m;
  m.set_maximize(true);
  const int a = m.add_variable(0, 1, VarType::kBinary, 5.0);
  m.add_constraint({{a, 1.0}}, lp::Relation::kLe, 0.0);  // a forced to 0
  BnbOptions opt;
  opt.initial_solution = {1.0};  // violates the row
  const MilpResult r = BranchAndBound(opt).solve(m);
  ASSERT_EQ(r.status, MilpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 0.0, 1e-9);
}

TEST(BranchAndBound, FractionalInitialSolutionIgnored) {
  Model m;
  m.set_maximize(true);
  const int a = m.add_variable(0, 1, VarType::kBinary, 1.0);
  m.add_constraint({{a, 1.0}}, lp::Relation::kLe, 1.0);
  BnbOptions opt;
  opt.initial_solution = {0.5};  // not integral: must be rejected
  const MilpResult r = BranchAndBound(opt).solve(m);
  ASSERT_EQ(r.status, MilpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 1.0, 1e-9);
}

TEST(BranchAndBound, BranchPrioritySameAnswer) {
  // Priorities change the search order, never the optimum.
  Rng rng(91);
  Model m;
  m.set_maximize(true);
  lp::LinearTerms terms;
  std::vector<double> prio;
  for (int i = 0; i < 14; ++i) {
    const int v = m.add_variable(0, 1, VarType::kBinary, rng.uniform(1, 9));
    terms.emplace_back(v, rng.uniform(1, 5));
    prio.push_back(rng.uniform(0, 10));
  }
  m.add_constraint(std::move(terms), lp::Relation::kLe, 14.0);
  const MilpResult plain = BranchAndBound().solve(m);
  BnbOptions opt;
  opt.branch_priority = prio;
  const MilpResult prioritized = BranchAndBound(opt).solve(m);
  ASSERT_EQ(plain.status, MilpStatus::kOptimal);
  ASSERT_EQ(prioritized.status, MilpStatus::kOptimal);
  EXPECT_NEAR(plain.objective, prioritized.objective, 1e-6);
}

}  // namespace
}  // namespace safenn::milp
