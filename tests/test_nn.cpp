#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/rng.hpp"
#include "linalg/verify_kernels.hpp"
#include "nn/loss.hpp"
#include "nn/mdn.hpp"
#include "nn/network.hpp"
#include "nn/qengine.hpp"
#include "nn/quantize.hpp"
#include "nn/serialize.hpp"
#include "nn/trainer.hpp"

namespace safenn::nn {
namespace {

using linalg::Matrix;
using linalg::Vector;

TEST(Activation, ValuesMatchDefinitions) {
  EXPECT_DOUBLE_EQ(activate(Activation::kRelu, -2.0), 0.0);
  EXPECT_DOUBLE_EQ(activate(Activation::kRelu, 3.0), 3.0);
  EXPECT_DOUBLE_EQ(activate(Activation::kIdentity, -1.5), -1.5);
  EXPECT_NEAR(activate(Activation::kTanh, 1.0), std::tanh(1.0), 1e-15);
  EXPECT_NEAR(activate(Activation::kAtan, 1.0), std::atan(1.0), 1e-15);
  EXPECT_NEAR(activate(Activation::kSigmoid, 0.0), 0.5, 1e-15);
}

TEST(Activation, DerivativesMatchFiniteDifferences) {
  const double h = 1e-6;
  for (Activation a : {Activation::kIdentity, Activation::kTanh,
                       Activation::kAtan, Activation::kSigmoid}) {
    for (double x : {-2.0, -0.3, 0.1, 1.7}) {
      const double fd = (activate(a, x + h) - activate(a, x - h)) / (2 * h);
      EXPECT_NEAR(activate_derivative(a, x), fd, 1e-6)
          << to_string(a) << " at " << x;
    }
  }
  EXPECT_DOUBLE_EQ(activate_derivative(Activation::kRelu, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(activate_derivative(Activation::kRelu, 1.0), 1.0);
}

TEST(Activation, BranchMetadataMatchesPaperArgument) {
  // Paper Sec. II: atan has no if-then-else branch; ReLU has one per neuron.
  EXPECT_EQ(branch_count(Activation::kAtan), 0);
  EXPECT_EQ(branch_count(Activation::kTanh), 0);
  EXPECT_EQ(branch_count(Activation::kRelu), 1);
  EXPECT_TRUE(is_piecewise_linear(Activation::kRelu));
  EXPECT_FALSE(is_piecewise_linear(Activation::kAtan));
}

TEST(Activation, StringRoundTrip) {
  for (Activation a : {Activation::kIdentity, Activation::kRelu,
                       Activation::kTanh, Activation::kAtan,
                       Activation::kSigmoid}) {
    EXPECT_EQ(activation_from_string(to_string(a)), a);
  }
  EXPECT_THROW(activation_from_string("swish"), Error);
}

TEST(DenseLayer, ForwardMatchesManualComputation) {
  DenseLayer l(2, 2, Activation::kRelu);
  l.weights() = Matrix{{1.0, -1.0}, {2.0, 0.5}};
  l.biases() = Vector{0.5, -3.0};
  const Vector y = l.forward(Vector{1.0, 2.0});
  // z = [1-2+0.5, 2+1-3] = [-0.5, 0] -> relu -> [0, 0]
  EXPECT_TRUE(approx_equal(y, Vector{0.0, 0.0}));
  const Vector z = l.pre_activation(Vector{1.0, 2.0});
  EXPECT_TRUE(approx_equal(z, Vector{-0.5, 0.0}));
}

TEST(Network, LayerWidthMismatchThrows) {
  Network net;
  net.add_layer(DenseLayer(3, 4, Activation::kRelu));
  EXPECT_THROW(net.add_layer(DenseLayer(5, 2, Activation::kIdentity)), Error);
}

TEST(Network, TopologyQueries) {
  Rng rng(1);
  Network net = Network::make_i4xn(84, 10, 15, Activation::kRelu, rng);
  EXPECT_EQ(net.num_layers(), 5u);
  EXPECT_EQ(net.input_size(), 84u);
  EXPECT_EQ(net.output_size(), 15u);
  EXPECT_EQ(net.num_neurons(), 4u * 10u + 15u);
  EXPECT_EQ(net.describe(), "84-10-10-10-10-15 (relu)");
}

TEST(Network, ForwardTraceConsistentWithForward) {
  Rng rng(2);
  Network net = Network::make_mlp({3, 5, 4, 2}, Activation::kRelu,
                                  Activation::kIdentity, rng);
  const Vector x{0.3, -0.7, 1.2};
  const ForwardTrace trace = net.forward_trace(x);
  EXPECT_TRUE(approx_equal(trace.post_activations.back(), net.forward(x)));
  EXPECT_EQ(trace.pre_activations.size(), 3u);
  // Post-activations must equal activation applied to pre-activations.
  for (std::size_t li = 0; li < 3; ++li) {
    EXPECT_TRUE(approx_equal(
        trace.post_activations[li],
        activate(net.layer(li).activation(), trace.pre_activations[li])));
  }
}

// Gradient check: backprop vs. central finite differences.
class BackpropGradCheck : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BackpropGradCheck, MatchesFiniteDifferences) {
  Rng rng(GetParam());
  Network net = Network::make_mlp({4, 6, 5, 3}, Activation::kTanh,
                                  Activation::kIdentity, rng);
  Vector x(4), target(3);
  for (auto& v : x) v = rng.normal();
  for (auto& v : target) v = rng.normal();
  MseLoss loss;

  const ForwardTrace trace = net.forward_trace(x);
  Vector out_grad;
  loss.value_and_grad(trace.post_activations.back(), target, out_grad);
  const Gradients analytic = net.backward(trace, out_grad);

  const double h = 1e-6;
  for (std::size_t li = 0; li < net.num_layers(); ++li) {
    // Spot-check a handful of weights per layer.
    for (int probe = 0; probe < 4; ++probe) {
      const std::size_t r = rng.uniform_index(net.layer(li).out_size());
      const std::size_t c = rng.uniform_index(net.layer(li).in_size());
      const double saved = net.layer(li).weights()(r, c);
      net.layer(li).weights()(r, c) = saved + h;
      const double lp = loss.value(net.forward(x), target);
      net.layer(li).weights()(r, c) = saved - h;
      const double lm = loss.value(net.forward(x), target);
      net.layer(li).weights()(r, c) = saved;
      const double fd = (lp - lm) / (2 * h);
      EXPECT_NEAR(analytic.weight_grads[li](r, c), fd, 1e-4)
          << "layer " << li << " weight (" << r << "," << c << ")";
    }
    const std::size_t bi = rng.uniform_index(net.layer(li).out_size());
    const double saved = net.layer(li).biases()[bi];
    net.layer(li).biases()[bi] = saved + h;
    const double lp = loss.value(net.forward(x), target);
    net.layer(li).biases()[bi] = saved - h;
    const double lm = loss.value(net.forward(x), target);
    net.layer(li).biases()[bi] = saved;
    EXPECT_NEAR(analytic.bias_grads[li][bi], (lp - lm) / (2 * h), 1e-4);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BackpropGradCheck,
                         ::testing::Range<std::uint64_t>(0, 8));

TEST(Network, InputGradientMatchesFiniteDifferences) {
  Rng rng(5);
  Network net = Network::make_mlp({3, 8, 2}, Activation::kTanh,
                                  Activation::kIdentity, rng);
  const Vector x{0.2, -0.4, 0.9};
  const Vector g = net.input_gradient(x, 1);
  const double h = 1e-6;
  for (std::size_t i = 0; i < 3; ++i) {
    Vector xp = x, xm = x;
    xp[i] += h;
    xm[i] -= h;
    const double fd = (net.forward(xp)[1] - net.forward(xm)[1]) / (2 * h);
    EXPECT_NEAR(g[i], fd, 1e-6);
  }
}

TEST(Trainer, LearnsLinearMap) {
  Rng rng(7);
  Network net = Network::make_mlp({2, 8, 1}, Activation::kTanh,
                                  Activation::kIdentity, rng);
  std::vector<Vector> xs, ys;
  for (int i = 0; i < 256; ++i) {
    Vector x{rng.uniform(-1, 1), rng.uniform(-1, 1)};
    ys.push_back(Vector{0.5 * x[0] - 0.25 * x[1]});
    xs.push_back(std::move(x));
  }
  MseLoss loss;
  TrainConfig cfg;
  cfg.epochs = 200;
  cfg.batch_size = 32;
  cfg.learning_rate = 5e-3;
  Trainer trainer(cfg);
  const double initial = Trainer::evaluate(net, loss, xs, ys);
  const double final_loss = trainer.train(net, loss, xs, ys);
  EXPECT_LT(final_loss, initial * 0.1);
  EXPECT_LT(final_loss, 1e-3);
}

TEST(Trainer, SgdAndMomentumAlsoDescend) {
  for (Optimizer opt : {Optimizer::kSgd, Optimizer::kMomentum}) {
    Rng rng(8);
    Network net = Network::make_mlp({1, 6, 1}, Activation::kTanh,
                                    Activation::kIdentity, rng);
    std::vector<Vector> xs, ys;
    for (int i = 0; i < 128; ++i) {
      Vector x{rng.uniform(-1, 1)};
      ys.push_back(Vector{x[0] * x[0]});
      xs.push_back(std::move(x));
    }
    MseLoss loss;
    TrainConfig cfg;
    cfg.optimizer = opt;
    cfg.epochs = 150;
    cfg.learning_rate = opt == Optimizer::kSgd ? 0.05 : 0.02;
    Trainer trainer(cfg);
    const double initial = Trainer::evaluate(net, loss, xs, ys);
    const double final_loss = trainer.train(net, loss, xs, ys);
    EXPECT_LT(final_loss, initial) << "optimizer " << static_cast<int>(opt);
  }
}

TEST(Trainer, EpochCallbackFires) {
  Rng rng(9);
  Network net = Network::make_mlp({1, 3, 1}, Activation::kTanh,
                                  Activation::kIdentity, rng);
  std::vector<Vector> xs{Vector{0.5}}, ys{Vector{1.0}};
  MseLoss loss;
  TrainConfig cfg;
  cfg.epochs = 5;
  int calls = 0;
  cfg.on_epoch = [&](const EpochStats& s) {
    EXPECT_EQ(s.epoch, static_cast<std::size_t>(calls));
    ++calls;
  };
  Trainer(cfg).train(net, loss, xs, ys);
  EXPECT_EQ(calls, 5);
}

TEST(Trainer, RegularizerShapesSolution) {
  // Regularizer that pushes the single output toward <= 0 wins over data
  // pulling it to +1.
  Rng rng(10);
  Network net = Network::make_mlp({1, 4, 1}, Activation::kTanh,
                                  Activation::kIdentity, rng);
  std::vector<Vector> xs, ys;
  for (int i = 0; i < 64; ++i) {
    xs.push_back(Vector{rng.uniform(-1, 1)});
    ys.push_back(Vector{1.0});
  }
  MseLoss loss;
  TrainConfig cfg;
  cfg.epochs = 200;
  cfg.regularizer_weight = 50.0;
  cfg.regularizer = [](const Vector&, const Vector& out, Vector& grad) {
    const double excess = out[0];  // penalize positive outputs
    if (excess <= 0.0) return 0.0;
    grad[0] += 2.0 * excess;
    return excess * excess;
  };
  Trainer(cfg).train(net, loss, xs, ys);
  // With a 50x penalty the mean output must sit well below the +1 target.
  double mean = 0.0;
  for (const auto& x : xs) mean += net.forward(x)[0];
  mean /= static_cast<double>(xs.size());
  EXPECT_LT(mean, 0.5);
}

TEST(Mdn, HeadLayoutIndices) {
  MdnHead head(3, 2);
  EXPECT_EQ(head.raw_output_size(), 3u + 2u * 3u * 2u);
  EXPECT_EQ(head.logit_index(0), 0u);
  EXPECT_EQ(head.logit_index(2), 2u);
  EXPECT_EQ(head.mean_index(0, 0), 3u);
  EXPECT_EQ(head.mean_index(2, 1), 3u + 5u);
  EXPECT_EQ(head.log_sigma_index(0, 0), 9u);
  EXPECT_THROW(head.mean_index(3, 0), Error);
}

TEST(Mdn, ParseProducesNormalizedMixture) {
  MdnHead head(2, 2);
  Vector raw(head.raw_output_size());
  raw[head.logit_index(0)] = 1.0;
  raw[head.logit_index(1)] = -1.0;
  raw[head.mean_index(0, 0)] = 3.0;
  raw[head.log_sigma_index(1, 1)] = 0.5;
  const GaussianMixture gm = head.parse(raw);
  EXPECT_EQ(gm.components(), 2u);
  EXPECT_EQ(gm.dims(), 2u);
  EXPECT_NEAR(gm.weights[0] + gm.weights[1], 1.0, 1e-12);
  EXPECT_GT(gm.weights[0], gm.weights[1]);
  EXPECT_DOUBLE_EQ(gm.means[0][0], 3.0);
  EXPECT_NEAR(gm.sigmas[1][1], std::exp(0.5), 1e-12);
  EXPECT_EQ(gm.dominant_component(), 0u);
}

TEST(Mdn, MixtureMeanIsWeightedAverage) {
  GaussianMixture gm;
  gm.weights = {0.25, 0.75};
  gm.means = {Vector{4.0, 0.0}, Vector{0.0, 4.0}};
  gm.sigmas = {Vector{1.0, 1.0}, Vector{1.0, 1.0}};
  EXPECT_TRUE(approx_equal(gm.mean(), Vector{1.0, 3.0}));
}

TEST(Mdn, DensityIntegratesToRoughlyOne) {
  // Monte-Carlo check on a 1-component, 1-D mixture.
  GaussianMixture gm;
  gm.weights = {1.0};
  gm.means = {Vector{0.5}};
  gm.sigmas = {Vector{0.8}};
  double integral = 0.0;
  const int steps = 4000;
  const double lo = -6.0, hi = 7.0, dx = (hi - lo) / steps;
  for (int i = 0; i < steps; ++i) {
    integral += gm.density(Vector{lo + (i + 0.5) * dx}) * dx;
  }
  EXPECT_NEAR(integral, 1.0, 1e-3);
}

TEST(Mdn, NllGradientMatchesFiniteDifferences) {
  MdnHead head(2, 2);
  Rng rng(11);
  Vector raw(head.raw_output_size());
  for (auto& v : raw) v = rng.normal() * 0.5;
  const Vector target{0.3, -0.6};
  Vector grad;
  head.nll(raw, target, &grad);
  const double h = 1e-6;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    Vector rp = raw, rm = raw;
    rp[i] += h;
    rm[i] -= h;
    const double fd = (head.nll(rp, target) - head.nll(rm, target)) / (2 * h);
    EXPECT_NEAR(grad[i], fd, 1e-5) << "raw index " << i;
  }
}

TEST(Mdn, TrainerFitsBimodalTarget) {
  // Data: y = +0.8 or -0.8 at random; a 2-component MDN should place one
  // component near each mode, while an MSE fit would collapse to ~0.
  Rng rng(12);
  MdnHead head(2, 1);
  Network net = Network::make_mlp({1, 8, head.raw_output_size()},
                                  Activation::kTanh, Activation::kIdentity,
                                  rng);
  std::vector<Vector> xs, ys;
  for (int i = 0; i < 400; ++i) {
    xs.push_back(Vector{rng.uniform(-1, 1)});
    ys.push_back(Vector{rng.bernoulli(0.5) ? 0.8 : -0.8});
  }
  MdnLoss loss{head};
  TrainConfig cfg;
  cfg.epochs = 120;
  cfg.learning_rate = 5e-3;
  Trainer(cfg).train(net, loss, xs, ys);
  const GaussianMixture gm = head.parse(net.forward(Vector{0.0}));
  const double m0 = gm.means[0][0], m1 = gm.means[1][0];
  EXPECT_GT(std::max(m0, m1), 0.4);
  EXPECT_LT(std::min(m0, m1), -0.4);
}

TEST(Serialize, RoundTripPreservesOutputs) {
  Rng rng(13);
  Network net = Network::make_mlp({4, 7, 3}, Activation::kRelu,
                                  Activation::kIdentity, rng);
  std::stringstream ss;
  save_network(ss, net);
  Network loaded = load_network(ss);
  EXPECT_EQ(loaded.describe(), net.describe());
  for (int probe = 0; probe < 10; ++probe) {
    Vector x(4);
    for (auto& v : x) v = rng.normal();
    EXPECT_TRUE(approx_equal(loaded.forward(x), net.forward(x), 1e-12));
  }
}

TEST(Serialize, RejectsGarbage) {
  std::stringstream ss("not-a-network at all");
  EXPECT_THROW(load_network(ss), Error);
}

TEST(Serialize, RejectsTruncatedFile) {
  Rng rng(14);
  Network net = Network::make_mlp({2, 3, 1}, Activation::kRelu,
                                  Activation::kIdentity, rng);
  std::stringstream ss;
  save_network(ss, net);
  std::string text = ss.str();
  std::stringstream truncated(text.substr(0, text.size() / 2));
  EXPECT_THROW(load_network(truncated), Error);
}

// Every rejection path carries a typed kind so callers (registry, ops
// tooling) can distinguish corruption from version skew from bad input.
SerializeError::Kind load_kind(const std::string& text) {
  try {
    network_from_string(text);
  } catch (const SerializeError& e) {
    return e.kind();
  }
  ADD_FAILURE() << "expected SerializeError for:\n" << text;
  return SerializeError::Kind::kIo;
}

TEST(Serialize, TypedErrorKindsCoverEveryRejection) {
  Rng rng(14);
  Network net = Network::make_mlp({2, 3, 1}, Activation::kRelu,
                                  Activation::kIdentity, rng);
  const std::string text = network_to_string(net);
  ASSERT_EQ(text.rfind("safenn-network v2\n", 0), 0u);

  // Not a network file at all.
  EXPECT_EQ(load_kind("not-a-network at all\n"),
            SerializeError::Kind::kBadMagic);
  EXPECT_EQ(load_kind(""), SerializeError::Kind::kBadMagic);

  // Recognized magic, unknown format version (both older and newer).
  for (const char* version : {"v1", "v99"}) {
    std::string skewed = text;
    skewed.replace(0, skewed.find('\n'),
                   std::string("safenn-network ") + version);
    EXPECT_EQ(load_kind(skewed), SerializeError::Kind::kUnsupportedVersion)
        << version;
  }

  // Truncation anywhere before the trailer loses the checksum line
  // (the trailer is "checksum <16-hex>\n" = 26 bytes).
  for (const std::size_t keep :
       {text.find('\n') + 1, text.size() / 2, text.size() - 27}) {
    EXPECT_EQ(load_kind(text.substr(0, keep)),
              SerializeError::Kind::kTruncated)
        << "kept " << keep << " of " << text.size();
  }

  // Truncation inside the trailer leaves a short, unparseable hex field.
  EXPECT_EQ(load_kind(text.substr(0, text.size() - 4)),
            SerializeError::Kind::kMalformed);

  // A single flipped payload digit no longer hashes to the recorded sum.
  {
    std::string corrupt = text;
    const std::size_t pos = corrupt.find("layers ") + 7;
    corrupt[pos] = corrupt[pos] == '7' ? '8' : '7';
    EXPECT_EQ(load_kind(corrupt), SerializeError::Kind::kChecksumMismatch);
  }

  // Unparseable checksum hex.
  {
    std::string bad = text;
    const std::size_t pos = bad.rfind("checksum ");
    bad.replace(pos, bad.size() - pos, "checksum not-hex\n");
    EXPECT_EQ(load_kind(bad), SerializeError::Kind::kMalformed);
  }

  // Checksum verifies but the payload itself is nonsense: the hash gate
  // is necessary, not sufficient — parsing still validates structure.
  {
    const std::string payload = "layers 1\nlayer bogus shape here\n";
    const std::string forged = "safenn-network v2\n" + payload +
                               "checksum " + hex64(fnv1a64(payload)) + '\n';
    EXPECT_EQ(load_kind(forged), SerializeError::Kind::kMalformed);
  }

  // The kind names are stable (they appear in registry reject reports).
  EXPECT_STREQ(to_string(SerializeError::Kind::kChecksumMismatch),
               "checksum-mismatch");
  EXPECT_STREQ(to_string(SerializeError::Kind::kUnsupportedVersion),
               "unsupported-version");
}

TEST(Serialize, NoPartialNetworkOnFailure) {
  // A corrupted stream must throw without yielding any network object —
  // exercised via the file round trip (load path used by the registry).
  Rng rng(15);
  Network net = Network::make_mlp({3, 4, 2}, Activation::kTanh,
                                  Activation::kIdentity, rng);
  const std::string path =
      ::testing::TempDir() + "/safenn_serialize_partial.net";
  save_network_file(path, net);
  Network reloaded = load_network_file(path);
  EXPECT_EQ(reloaded.describe(), net.describe());

  // Corrupt one parameter byte on disk; the loader must reject it whole.
  std::string text;
  {
    std::ifstream is(path);
    std::ostringstream buffer;
    buffer << is.rdbuf();
    text = buffer.str();
  }
  const std::size_t digit = text.find_first_of("0123456789", text.find("layer "));
  ASSERT_NE(digit, std::string::npos);
  text[digit] = text[digit] == '9' ? '8' : '9';
  {
    std::ofstream os(path);
    os << text;
  }
  EXPECT_THROW(load_network_file(path), SerializeError);
  EXPECT_THROW(load_network_file(path + ".does-not-exist"), SerializeError);
}

TEST(Quantize, FixedPointConversionsRoundTrip) {
  Rng rng(15);
  Network net = Network::make_mlp({2, 3, 1}, Activation::kRelu,
                                  Activation::kIdentity, rng);
  QuantizedNetwork q = QuantizedNetwork::quantize(net, 8);
  EXPECT_EQ(q.frac_bits(), 8);
  EXPECT_EQ(q.to_fixed(1.0), 256);
  EXPECT_DOUBLE_EQ(q.from_fixed(256), 1.0);
  EXPECT_EQ(q.to_fixed(-0.5), -128);
}

TEST(Quantize, ApproximatesRealNetwork) {
  Rng rng(16);
  Network net = Network::make_mlp({4, 10, 10, 2}, Activation::kRelu,
                                  Activation::kIdentity, rng);
  QuantizedNetwork q = QuantizedNetwork::quantize(net, 12);
  std::vector<Vector> samples;
  for (int i = 0; i < 50; ++i) {
    Vector x(4);
    for (auto& v : x) v = rng.uniform(-1, 1);
    samples.push_back(std::move(x));
  }
  EXPECT_LT(q.quantization_error(net, samples), 0.05);
}

TEST(Quantize, MoreBitsMeansLessError) {
  Rng rng(17);
  Network net = Network::make_mlp({3, 12, 2}, Activation::kRelu,
                                  Activation::kIdentity, rng);
  std::vector<Vector> samples;
  for (int i = 0; i < 40; ++i) {
    Vector x(3);
    for (auto& v : x) v = rng.uniform(-1, 1);
    samples.push_back(std::move(x));
  }
  const double err4 = QuantizedNetwork::quantize(net, 4).quantization_error(net, samples);
  const double err12 = QuantizedNetwork::quantize(net, 12).quantization_error(net, samples);
  EXPECT_LT(err12, err4);
}

TEST(Quantize, RejectsSmoothActivations) {
  Rng rng(18);
  Network net = Network::make_mlp({2, 3, 1}, Activation::kTanh,
                                  Activation::kIdentity, rng);
  EXPECT_THROW(QuantizedNetwork::quantize(net, 8), Error);
}

TEST(Quantize, AccumulatorBoundsAreSound) {
  Rng rng(19);
  Network net = Network::make_mlp({3, 6, 4, 2}, Activation::kRelu,
                                  Activation::kIdentity, rng);
  QuantizedNetwork q = QuantizedNetwork::quantize(net, 8);
  const std::int64_t input_bound = q.to_fixed(1.0);
  const auto bounds = q.accumulator_bounds(input_bound);
  ASSERT_EQ(bounds.size(), 3u);
  // Empirically no accumulator magnitude may exceed the bound.
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::int64_t> in(3);
    for (auto& v : in)
      v = q.to_fixed(rng.uniform(-1, 1));
    // Replay layer 0 accumulators by hand.
    const QuantizedLayer& l0 = q.layer(0);
    for (std::size_t r = 0; r < l0.out_size(); ++r) {
      std::int64_t acc = l0.biases[r];
      for (std::size_t c = 0; c < l0.in_size(); ++c)
        acc += l0.weights[r][c] * in[c];
      EXPECT_LE(std::llabs(acc), bounds[0]);
    }
  }
}

TEST(Quantize, FixedForwardMatchesRealForwardClosely) {
  Rng rng(20);
  Network net = Network::make_mlp({2, 6, 1}, Activation::kRelu,
                                  Activation::kIdentity, rng);
  QuantizedNetwork q = QuantizedNetwork::quantize(net, 16);
  for (int trial = 0; trial < 50; ++trial) {
    Vector x{rng.uniform(-1, 1), rng.uniform(-1, 1)};
    const double exact = net.forward(x)[0];
    const double quant = q.forward_real(x)[0];
    EXPECT_NEAR(exact, quant, 0.01);
  }
}

// --- Batched kernels: equivalence with the per-sample path. ---

Matrix pack_rows(const std::vector<Vector>& xs) {
  Matrix m(xs.size(), xs.front().size());
  for (std::size_t r = 0; r < xs.size(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) m(r, c) = xs[r][c];
  }
  return m;
}

std::vector<Vector> random_inputs(Rng& rng, std::size_t count,
                                  std::size_t dim) {
  std::vector<Vector> xs(count, Vector(dim));
  for (auto& x : xs) {
    for (auto& v : x) v = rng.normal();
  }
  return xs;
}

TEST(Activation, BatchedOverloadMatchesScalar) {
  Rng rng(41);
  Matrix z(5, 7), out, dout;
  for (std::size_t i = 0; i < z.size(); ++i) z.data()[i] = rng.normal();
  for (Activation a : {Activation::kIdentity, Activation::kRelu,
                       Activation::kTanh, Activation::kAtan,
                       Activation::kSigmoid}) {
    activate(a, z, out);
    activate_derivative(a, z, dout);
    ASSERT_EQ(out.rows(), 5u);
    ASSERT_EQ(dout.cols(), 7u);
    for (std::size_t r = 0; r < z.rows(); ++r) {
      for (std::size_t c = 0; c < z.cols(); ++c) {
        EXPECT_EQ(out(r, c), activate(a, z(r, c))) << to_string(a);
        EXPECT_EQ(dout(r, c), activate_derivative(a, z(r, c)))
            << to_string(a);
      }
    }
  }
}

class BatchedEquivalence
    : public ::testing::TestWithParam<std::tuple<std::size_t, Activation>> {};

TEST_P(BatchedEquivalence, ForwardBatchBitwiseMatchesPerSample) {
  const auto [batch, hidden_act] = GetParam();
  Rng rng(50 + batch);
  Network net = Network::make_mlp({9, 13, 8, 4}, hidden_act,
                                  Activation::kIdentity, rng);
  const std::vector<Vector> xs = random_inputs(rng, batch, 9);
  const Matrix out = net.forward_batch(pack_rows(xs));
  ASSERT_EQ(out.rows(), batch);
  for (std::size_t r = 0; r < batch; ++r) {
    const Vector ref = net.forward(xs[r]);
    for (std::size_t c = 0; c < out.cols(); ++c) {
      ASSERT_EQ(out(r, c), ref[c]) << "row " << r << " col " << c;
    }
  }
}

TEST_P(BatchedEquivalence, TraceBatchBitwiseMatchesPerSampleTrace) {
  const auto [batch, hidden_act] = GetParam();
  Rng rng(70 + batch);
  Network net = Network::make_mlp({6, 11, 9, 3}, hidden_act,
                                  Activation::kIdentity, rng);
  const std::vector<Vector> xs = random_inputs(rng, batch, 6);
  BatchTrace trace;
  net.forward_trace_batch(pack_rows(xs), trace);
  ASSERT_EQ(trace.pre_activations.size(), net.num_layers());
  ASSERT_EQ(trace.post_activations.size(), net.num_layers());
  for (std::size_t r = 0; r < batch; ++r) {
    const ForwardTrace ref = net.forward_trace(xs[r]);
    for (std::size_t li = 0; li < net.num_layers(); ++li) {
      for (std::size_t c = 0; c < trace.pre_activations[li].cols(); ++c) {
        ASSERT_EQ(trace.pre_activations[li](r, c),
                  ref.pre_activations[li][c]);
        ASSERT_EQ(trace.post_activations[li](r, c),
                  ref.post_activations[li][c]);
      }
    }
  }
}

TEST_P(BatchedEquivalence, BackwardBatchMatchesSummedPerSample) {
  const auto [batch, hidden_act] = GetParam();
  Rng rng(90 + batch);
  Network net = Network::make_mlp({7, 10, 12, 5}, hidden_act,
                                  Activation::kIdentity, rng);
  const std::vector<Vector> xs = random_inputs(rng, batch, 7);
  const std::vector<Vector> out_grads_v = random_inputs(rng, batch, 5);

  // Per-sample reference: backward_into accumulates sample by sample in
  // row order.
  Gradients expected = net.zero_gradients();
  for (std::size_t b = 0; b < batch; ++b) {
    net.backward_into(net.forward_trace(xs[b]), out_grads_v[b], expected);
  }

  BatchTrace trace;
  net.forward_trace_batch(pack_rows(xs), trace);
  Gradients got = net.zero_gradients();
  net.backward_batch(trace, pack_rows(out_grads_v), got);

  for (std::size_t li = 0; li < net.num_layers(); ++li) {
    const Matrix& we = expected.weight_grads[li];
    const Matrix& wg = got.weight_grads[li];
    for (std::size_t i = 0; i < we.size(); ++i) {
      ASSERT_EQ(wg.data()[i], we.data()[i]) << "layer " << li;
    }
    for (std::size_t i = 0; i < expected.bias_grads[li].size(); ++i) {
      ASSERT_EQ(got.bias_grads[li][i], expected.bias_grads[li][i])
          << "layer " << li << " bias " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    BatchSizesAndActivations, BatchedEquivalence,
    ::testing::Combine(::testing::Values<std::size_t>(1, 7, 32),
                       ::testing::Values(Activation::kRelu,
                                         Activation::kTanh)));

TEST(Network, BackwardIntoAccumulatesAcrossCalls) {
  Rng rng(111);
  Network net = Network::make_mlp({4, 6, 3}, Activation::kRelu,
                                  Activation::kIdentity, rng);
  Vector x(4), out_grad(3);
  for (auto& v : x) v = rng.normal();
  for (auto& v : out_grad) v = rng.normal();
  const ForwardTrace trace = net.forward_trace(x);

  const Gradients once = net.backward(trace, out_grad);
  Gradients twice = net.zero_gradients();
  net.backward_into(trace, out_grad, twice);
  net.backward_into(trace, out_grad, twice);
  for (std::size_t li = 0; li < net.num_layers(); ++li) {
    for (std::size_t i = 0; i < twice.weight_grads[li].size(); ++i) {
      EXPECT_DOUBLE_EQ(twice.weight_grads[li].data()[i],
                       2.0 * once.weight_grads[li].data()[i]);
    }
    for (std::size_t i = 0; i < twice.bias_grads[li].size(); ++i) {
      EXPECT_DOUBLE_EQ(twice.bias_grads[li][i],
                       2.0 * once.bias_grads[li][i]);
    }
  }
}

// --- Data-parallel training: bitwise determinism across worker counts. ---

TEST(Network, ShardChainedAccumulationBitwiseMatchesFullBatch) {
  // The reduction-order lemma the parallel trainer stands on: chaining
  // accumulate_layer_gradients over contiguous row shards in ascending
  // shard order must equal one full-batch backward_batch bit for bit,
  // for any shard structure (here deliberately uneven: 5 + 1 + 7).
  Rng rng(120);
  Network net = Network::make_mlp({6, 9, 8, 4}, Activation::kRelu,
                                  Activation::kIdentity, rng);
  const std::size_t batch = 13;
  const std::vector<Vector> xs = random_inputs(rng, batch, 6);
  const std::vector<Vector> gs = random_inputs(rng, batch, 4);

  BatchTrace full_trace;
  net.forward_trace_batch(pack_rows(xs), full_trace);
  Gradients expected = net.zero_gradients();
  net.backward_batch(full_trace, pack_rows(gs), expected);

  const std::size_t bounds[] = {0, 5, 6, 13};
  std::vector<BatchTrace> traces(3);
  std::vector<std::vector<Matrix>> deltas(3);
  for (std::size_t s = 0; s < 3; ++s) {
    const std::vector<Vector> sx(xs.begin() + bounds[s],
                                 xs.begin() + bounds[s + 1]);
    const std::vector<Vector> sg(gs.begin() + bounds[s],
                                 gs.begin() + bounds[s + 1]);
    net.forward_trace_batch(pack_rows(sx), traces[s]);
    net.backward_deltas_batch(traces[s], pack_rows(sg), deltas[s]);
  }
  Gradients got = net.zero_gradients();
  for (std::size_t li = 0; li < net.num_layers(); ++li) {
    for (std::size_t s = 0; s < 3; ++s) {
      net.accumulate_layer_gradients(traces[s], deltas[s][li], li, got);
    }
  }

  for (std::size_t li = 0; li < net.num_layers(); ++li) {
    for (std::size_t i = 0; i < expected.weight_grads[li].size(); ++i) {
      ASSERT_EQ(got.weight_grads[li].data()[i],
                expected.weight_grads[li].data()[i])
          << "layer " << li;
    }
    for (std::size_t i = 0; i < expected.bias_grads[li].size(); ++i) {
      ASSERT_EQ(got.bias_grads[li][i], expected.bias_grads[li][i])
          << "layer " << li;
    }
  }
}

TEST(TrainerEvaluate, BatchedBitwiseMatchesPerSample) {
  // 300 samples crosses the 256-row chunk boundary inside evaluate().
  Rng rng(130);
  Network net = Network::make_mlp({4, 10, 7, 2}, Activation::kRelu,
                                  Activation::kIdentity, rng);
  const std::vector<Vector> xs = random_inputs(rng, 300, 4);
  const std::vector<Vector> ys = random_inputs(rng, 300, 2);
  MseLoss loss;
  double expected = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    expected += loss.value(net.forward(xs[i]), ys[i]);
  }
  expected /= static_cast<double>(xs.size());
  EXPECT_EQ(Trainer::evaluate(net, loss, xs, ys), expected);
}

/// One full training run at a given worker count; everything seeded, so
/// any two runs start from identical nets and data.
struct TrainRun {
  Network net;
  std::vector<double> epoch_losses;
  double final_loss = 0.0;
};

TrainRun run_parallel_training(std::size_t workers, bool force_parallel,
                               Optimizer opt, bool with_regularizer,
                               std::size_t samples = 83,
                               std::size_t batch_size = 16) {
  Rng rng(1234);
  TrainRun run;
  run.net = Network::make_mlp({5, 12, 9, 3}, Activation::kRelu,
                              Activation::kIdentity, rng);
  std::vector<Vector> xs = random_inputs(rng, samples, 5);
  std::vector<Vector> ys = random_inputs(rng, samples, 3);

  TrainConfig cfg;
  cfg.epochs = 4;
  cfg.batch_size = batch_size;
  cfg.learning_rate = 1e-2;
  cfg.optimizer = opt;
  cfg.grad_clip = 0.5;  // tight enough to trigger on some batches
  cfg.num_workers = workers;
  cfg.force_parallel_path = force_parallel;
  if (with_regularizer) {
    cfg.regularizer_weight = 2.0;
    cfg.regularizer = [](const Vector&, const Vector& out, Vector& grad) {
      double p = 0.0;
      for (std::size_t i = 0; i < out.size(); ++i) {
        p += out[i] * out[i];
        grad[i] += 2.0 * out[i];
      }
      return p;
    };
  }
  cfg.on_epoch = [&](const EpochStats& s) {
    run.epoch_losses.push_back(s.mean_loss);
  };
  run.final_loss = Trainer(cfg).train(run.net, MseLoss{}, xs, ys);
  return run;
}

void expect_identical_runs(const TrainRun& a, const TrainRun& b,
                           const std::string& label) {
  ASSERT_EQ(a.epoch_losses.size(), b.epoch_losses.size()) << label;
  for (std::size_t e = 0; e < a.epoch_losses.size(); ++e) {
    EXPECT_EQ(a.epoch_losses[e], b.epoch_losses[e])
        << label << " epoch " << e;
  }
  EXPECT_EQ(a.final_loss, b.final_loss) << label;
  ASSERT_EQ(a.net.num_layers(), b.net.num_layers()) << label;
  for (std::size_t li = 0; li < a.net.num_layers(); ++li) {
    const Matrix& wa = a.net.layer(li).weights();
    const Matrix& wb = b.net.layer(li).weights();
    ASSERT_EQ(wa.size(), wb.size()) << label;
    for (std::size_t i = 0; i < wa.size(); ++i) {
      ASSERT_EQ(wa.data()[i], wb.data()[i])
          << label << " layer " << li << " weight " << i;
    }
    const Vector& ba = a.net.layer(li).biases();
    const Vector& bb = b.net.layer(li).biases();
    for (std::size_t i = 0; i < ba.size(); ++i) {
      ASSERT_EQ(ba[i], bb[i]) << label << " layer " << li << " bias " << i;
    }
  }
}

class TrainerParallel : public ::testing::TestWithParam<Optimizer> {};

TEST_P(TrainerParallel, WeightsAndLossesBitwiseAcrossWorkerCounts) {
  const Optimizer opt = GetParam();
  // Reference: the fused sequential engine. (Matching it after 4 Adam
  // epochs forces the optimizer moments to match bit for bit at every
  // intermediate step too.)
  const TrainRun sequential =
      run_parallel_training(1, false, opt, /*with_regularizer=*/false);
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    const TrainRun parallel = run_parallel_training(
        workers, /*force_parallel=*/true, opt, /*with_regularizer=*/false);
    expect_identical_runs(sequential, parallel,
                          "workers=" + std::to_string(workers));
  }
}

INSTANTIATE_TEST_SUITE_P(Optimizers, TrainerParallel,
                         ::testing::Values(Optimizer::kSgd,
                                           Optimizer::kMomentum,
                                           Optimizer::kAdam));

TEST(TrainerParallel, RegularizedRunIsBitwiseIdenticalAcrossWorkers) {
  const TrainRun sequential =
      run_parallel_training(1, false, Optimizer::kAdam, true);
  for (const std::size_t workers : {std::size_t{2}, std::size_t{4}}) {
    const TrainRun parallel = run_parallel_training(
        workers, true, Optimizer::kAdam, /*with_regularizer=*/true);
    expect_identical_runs(sequential, parallel,
                          "regularized workers=" + std::to_string(workers));
  }
}

TEST(TrainerParallel, MoreWorkersThanBatchRowsHandlesEmptyShards) {
  // batch_size 3 with 4 workers leaves at least one shard empty every
  // batch (and the last batch of 83 % 3 = 2 rows leaves two empty).
  const TrainRun sequential = run_parallel_training(
      1, false, Optimizer::kAdam, false, /*samples=*/83, /*batch_size=*/3);
  const TrainRun parallel = run_parallel_training(
      4, true, Optimizer::kAdam, false, /*samples=*/83, /*batch_size=*/3);
  expect_identical_runs(sequential, parallel, "workers>batch");
}

TEST(SimdForward, BatchWithinToleranceOfReference) {
  // The kSimd backend reassociates the layer contractions, so the batched
  // forward is held to the summed per-layer dot tolerance (1-Lipschitz
  // activations do not amplify it) instead of bitwise equality.
  Rng rng(90);
  Network net = Network::make_mlp({12, 17, 9, 5}, Activation::kRelu,
                                  Activation::kTanh, rng);
  const std::vector<Vector> xs = random_inputs(rng, 33, 12);  // odd batch
  const Matrix x = pack_rows(xs);
  const Matrix ref = net.forward_batch(x);
  const Matrix simd = net.forward_batch(x, linalg::KernelBackend::kSimd);
  ASSERT_EQ(simd.rows(), ref.rows());
  double tolerance = 0.0;
  for (std::size_t li = 0; li < net.num_layers(); ++li) {
    tolerance += linalg::dot_tolerance(net.layer(li).in_size());
  }
  EXPECT_LE(linalg::rms_range(ref.data(), simd.data(), ref.size()),
            tolerance);
}

TEST(SimdForward, ReluBatchActivationIsExact) {
  // ReLU is a max against zero — no rounding, so the SIMD activation must
  // match the scalar one exactly even though the GEMMs only match within
  // tolerance.
  Rng rng(91);
  Matrix z(7, 13);
  for (std::size_t i = 0; i < z.size(); ++i) {
    z.data()[i] = rng.uniform(-1.0, 1.0);
  }
  z.data()[0] = -0.0;
  Matrix ref, simd;
  activate(Activation::kRelu, z, ref);
  activate(Activation::kRelu, z, simd, linalg::KernelBackend::kSimd);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(ref.data()[i], simd.data()[i]) << "index " << i;
  }
}

TEST(Network, GradientsZeroResets) {
  Rng rng(112);
  Network net = Network::make_mlp({3, 4, 2}, Activation::kTanh,
                                  Activation::kIdentity, rng);
  Vector x(3), out_grad(2);
  for (auto& v : x) v = rng.normal();
  for (auto& v : out_grad) v = rng.normal();
  Gradients g = net.zero_gradients();
  net.backward_into(net.forward_trace(x), out_grad, g);
  g.zero();
  for (std::size_t li = 0; li < net.num_layers(); ++li) {
    EXPECT_DOUBLE_EQ(g.weight_grads[li].norm_inf(), 0.0);
    EXPECT_DOUBLE_EQ(g.bias_grads[li].norm_inf(), 0.0);
  }
}

// --- Typed quantization errors + the packed batched engine. ---

TEST(QuantizeError, RejectsSmoothActivationsWithTypedKind) {
  Rng rng(18);
  Network net = Network::make_mlp({2, 3, 1}, Activation::kTanh,
                                  Activation::kIdentity, rng);
  try {
    QuantizedNetwork::quantize(net, 8);
    FAIL() << "expected QuantizeError";
  } catch (const QuantizeError& e) {
    EXPECT_EQ(e.kind(), QuantizeError::Kind::kUnsupportedActivation);
    EXPECT_STREQ(to_string(e.kind()), "unsupported-activation");
  }
}

TEST(QuantizeError, WeightBeyondFixedPointRangeIsTyped) {
  Rng rng(21);
  Network net = Network::make_mlp({1, 1}, Activation::kIdentity,
                                  Activation::kIdentity, rng);
  net.layer(0).weights()(0, 0) = 1e18;  // * 2^24 overflows int64
  try {
    QuantizedNetwork::quantize(net, 24);
    FAIL() << "expected QuantizeError";
  } catch (const QuantizeError& e) {
    EXPECT_EQ(e.kind(), QuantizeError::Kind::kWeightRange);
  }
}

// The rejection boundary: accumulator bound propagation must refuse
// (typed, never wraparound) exactly when the worst case leaves int64.
TEST(QuantizeError, AccumulatorOverflowBoundaryIsTyped) {
  const std::int64_t huge = std::int64_t{1} << 62;
  QuantizedLayer l;
  l.weights = {{huge}};
  l.biases = {0};
  l.activation = Activation::kIdentity;
  QuantizedNetwork qnet(8, {l});
  // Bound 2^62 * 4 overflows; 2^62 * 1 + 0 still fits.
  EXPECT_NO_THROW(qnet.accumulator_bounds(1));
  try {
    qnet.accumulator_bounds(4);
    FAIL() << "expected QuantizeError";
  } catch (const QuantizeError& e) {
    EXPECT_EQ(e.kind(), QuantizeError::Kind::kAccumulatorOverflow);
  }
  // The bias addition is checked too: weight*bound + bias must not wrap.
  QuantizedLayer l2;
  l2.weights = {{huge}};
  l2.biases = {huge};
  QuantizedNetwork qnet2(8, {l2});
  EXPECT_THROW(qnet2.accumulator_bounds(2), QuantizeError);
}

TEST(QuantizeError, QuantizeChecksBoundsOverDeclaredDomain) {
  Rng rng(22);
  Network net = Network::make_mlp({1, 1}, Activation::kIdentity,
                                  Activation::kIdentity, rng);
  net.layer(0).weights()(0, 0) = 1e11;
  // The scaled weight fits fixed point at 12 bits (1e11 * 2^12 ~ 2^48.5)
  // and the accumulator fits for |x| <= 1, but a wide input domain
  // pushes the worst case past int64.
  EXPECT_NO_THROW(QuantizedNetwork::quantize(net, 12, 1.0));
  try {
    QuantizedNetwork::quantize(net, 12, 1e7);
    FAIL() << "expected QuantizeError";
  } catch (const QuantizeError& e) {
    EXPECT_EQ(e.kind(), QuantizeError::Kind::kAccumulatorOverflow);
  }
}

TEST(QuantizedNetwork, ScratchForwardBitwiseEqualsAllocatingForward) {
  Rng rng(23);
  Network net = Network::make_mlp({4, 9, 7, 2}, Activation::kRelu,
                                  Activation::kIdentity, rng);
  QuantizedNetwork q = QuantizedNetwork::quantize(net, 10);
  FixedScratch scratch;
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<std::int64_t> in(4);
    for (auto& v : in) v = q.to_fixed(rng.uniform(-1, 1));
    const std::vector<std::int64_t> alloc = q.forward_fixed(in);
    const std::vector<std::int64_t>& reused = q.forward_fixed(in, scratch);
    ASSERT_EQ(alloc, reused);
  }
}

TEST(QuantizedEngine, PackedForwardBitwiseEqualsScalarReference) {
  Rng rng(24);
  // Odd widths on purpose: remainder lanes in every layer.
  Network net = Network::make_mlp({5, 11, 7, 3}, Activation::kRelu,
                                  Activation::kIdentity, rng);
  QuantizedNetwork q = QuantizedNetwork::quantize(net, 10);
  for (const auto backend : {linalg::KernelBackend::kReference,
                             linalg::KernelBackend::kSimd,
                             linalg::KernelBackend::kQuantized}) {
    const QuantizedEngine engine(q, 2.0, backend);
    for (const std::size_t batch : {std::size_t{1}, std::size_t{7},
                                    std::size_t{32}}) {
      std::vector<std::vector<std::int64_t>> inputs(batch);
      for (auto& row : inputs) {
        row.resize(5);
        for (auto& v : row) v = q.to_fixed(rng.uniform(-2, 2));
      }
      const auto batched = engine.forward_fixed_batch(inputs);
      ASSERT_EQ(batched.size(), batch);
      for (std::size_t i = 0; i < batch; ++i) {
        const std::vector<std::int64_t> scalar = q.forward_fixed(inputs[i]);
        ASSERT_EQ(batched[i], scalar)
            << "backend " << to_string(backend) << " batch " << batch
            << " row " << i;
        ASSERT_EQ(engine.forward_fixed(inputs[i]), scalar);
      }
    }
  }
}

TEST(QuantizedNetwork, ForwardFixedBatchBitwiseAcrossBackends) {
  Rng rng(25);
  Network net = Network::make_mlp({3, 8, 2}, Activation::kRelu,
                                  Activation::kIdentity, rng);
  QuantizedNetwork q = QuantizedNetwork::quantize(net, 8);
  std::vector<std::vector<std::int64_t>> inputs(13);
  for (auto& row : inputs) {
    row.resize(3);
    for (auto& v : row) v = q.to_fixed(rng.uniform(-1.5, 1.5));
  }
  const auto ref = q.forward_fixed_batch(inputs,
                                         linalg::KernelBackend::kReference);
  const auto quant = q.forward_fixed_batch(
      inputs, linalg::KernelBackend::kQuantized);
  EXPECT_EQ(ref, quant);
  EXPECT_TRUE(q.forward_fixed_batch({}).empty());
}

TEST(QuantizedEngine, RejectsWeightsBeyondInt16) {
  QuantizedLayer l;
  l.weights = {{40000}};  // > 32767
  l.biases = {0};
  QuantizedNetwork qnet(8, {l});
  try {
    QuantizedEngine engine(qnet, 1.0);
    FAIL() << "expected QuantizeError";
  } catch (const QuantizeError& e) {
    EXPECT_EQ(e.kind(), QuantizeError::Kind::kWeightRange);
  }
}

TEST(QuantizedEngine, RejectsIntermediateActivationsBeyondInt32) {
  // Layer 0 amplifies by 2^15 twice: the intermediate activation bound
  // blows past int32 while everything still fits int64.
  QuantizedLayer big;
  big.weights = {{std::int64_t{32767}}};
  big.biases = {0};
  big.activation = Activation::kIdentity;
  QuantizedNetwork qnet(8, {big, big});
  try {
    // Layer-0 value bound: 1e6 * 2^8 * 32767 >> 8 ~ 2^44.9 >> int32.
    QuantizedEngine engine(qnet, 1e6);
    FAIL() << "expected QuantizeError";
  } catch (const QuantizeError& e) {
    EXPECT_EQ(e.kind(), QuantizeError::Kind::kActivationRange);
  }
  // The same product on the FINAL layer is fine — outputs stay int64.
  QuantizedNetwork single(8, {big});
  EXPECT_NO_THROW(QuantizedEngine(single, 1e6));
}

TEST(QuantizedEngine, SaturatingConversionClampsToDeclaredDomain) {
  Rng rng(26);
  Network net = Network::make_mlp({2, 3, 1}, Activation::kRelu,
                                  Activation::kIdentity, rng);
  QuantizedNetwork q = QuantizedNetwork::quantize(net, 8);
  const QuantizedEngine engine(q, 1.0);
  EXPECT_EQ(engine.to_fixed(0.5), q.to_fixed(0.5));
  EXPECT_EQ(engine.to_fixed(7.0), engine.input_limit_fixed());
  EXPECT_EQ(engine.to_fixed(-7.0), -engine.input_limit_fixed());
  EXPECT_EQ(engine.to_fixed(std::nan("")), 0);
  // Out-of-domain fixed inputs are refused, not wrapped.
  EXPECT_THROW(engine.forward_fixed({engine.input_limit_fixed() + 1, 0}),
               Error);
}

TEST(QuantizedEngine, UnpackRoundTripsExactly) {
  Rng rng(27);
  Network net = Network::make_mlp({3, 6, 2}, Activation::kRelu,
                                  Activation::kIdentity, rng);
  QuantizedNetwork q = QuantizedNetwork::quantize(net, 9);
  const QuantizedEngine engine(q, 1.5);
  const QuantizedNetwork back = engine.unpack();
  ASSERT_EQ(back.num_layers(), q.num_layers());
  EXPECT_EQ(back.frac_bits(), q.frac_bits());
  for (std::size_t li = 0; li < q.num_layers(); ++li) {
    EXPECT_EQ(back.layer(li).weights, q.layer(li).weights);
    EXPECT_EQ(back.layer(li).biases, q.layer(li).biases);
    EXPECT_EQ(back.layer(li).activation, q.layer(li).activation);
  }
}

TEST(QuantizedEngine, RealBatchMatchesFixedReplay) {
  Rng rng(28);
  Network net = Network::make_mlp({4, 8, 3}, Activation::kRelu,
                                  Activation::kIdentity, rng);
  QuantizedNetwork q = QuantizedNetwork::quantize(net, 10);
  const QuantizedEngine engine(q, 2.0);
  const std::size_t batch = 9;
  Matrix scenes(batch, 4);
  for (std::size_t i = 0; i < scenes.size(); ++i) {
    scenes.data()[i] = rng.uniform(-3.0, 3.0);  // some rows saturate
  }
  QuantizedEngine::Scratch scratch;
  Matrix raw;
  engine.forward_real_batch(scenes, scratch, raw);
  ASSERT_EQ(raw.rows(), batch);
  ASSERT_EQ(raw.cols(), 3u);
  for (std::size_t i = 0; i < batch; ++i) {
    std::vector<std::int64_t> in(4);
    for (std::size_t c = 0; c < 4; ++c) {
      in[c] = engine.to_fixed(scenes(i, c));
    }
    const std::vector<std::int64_t> fixed = q.forward_fixed(in);
    for (std::size_t j = 0; j < 3; ++j) {
      // Exact: raw is from_fixed of the bitwise-checked integer output.
      ASSERT_EQ(raw(i, j), engine.from_fixed(fixed[j])) << i << "," << j;
      ASSERT_EQ(scratch.acc[i * 3 + j], fixed[j]) << i << "," << j;
    }
  }
}

}  // namespace
}  // namespace safenn::nn
