#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "highway/dataset_builder.hpp"
#include "highway/idm.hpp"
#include "highway/lane_change.hpp"
#include "highway/safety_rules.hpp"
#include "highway/scenario.hpp"
#include "highway/scene_encoder.hpp"
#include "highway/simulator.hpp"

namespace safenn::highway {
namespace {

TEST(Idm, FreeRoadAcceleratesTowardDesiredSpeed) {
  IdmParams p;
  EXPECT_GT(idm_free_acceleration(p, p.desired_speed * 0.5), 0.0);
  EXPECT_NEAR(idm_free_acceleration(p, p.desired_speed), 0.0, 1e-9);
  EXPECT_LT(idm_free_acceleration(p, p.desired_speed * 1.2), 0.0);
}

TEST(Idm, BrakesWhenClosingOnLeader) {
  IdmParams p;
  // Tight gap, strong closing speed: must brake hard.
  const double a = idm_acceleration(p, 30.0, 5.0, 10.0);
  EXPECT_LT(a, -2.0);
  // Huge gap, no closing: behaves like free road.
  EXPECT_NEAR(idm_acceleration(p, 20.0, 1e6, 0.0),
              idm_free_acceleration(p, 20.0), 1e-6);
}

TEST(Idm, AccelerationIsClamped) {
  IdmParams p;
  const double a = idm_acceleration(p, 35.0, 0.1, 30.0);
  EXPECT_GE(a, -4.0 * p.comfortable_decel - 1e-9);
}

TEST(LaneChange, SafetyRequiresGaps) {
  LaneChangeParams p;
  TargetLaneGaps gaps;
  EXPECT_FALSE(lane_change_safe(p, gaps));  // lane does not exist
  gaps.lane_exists = true;
  EXPECT_TRUE(lane_change_safe(p, gaps));  // empty lane
  gaps.front.present = true;
  gaps.front.gap = p.min_front_gap - 1.0;
  EXPECT_FALSE(lane_change_safe(p, gaps));
  gaps.front.gap = p.min_front_gap + 1.0;
  gaps.rear.present = true;
  gaps.rear.gap = p.min_rear_gap - 1.0;
  EXPECT_FALSE(lane_change_safe(p, gaps));
  gaps.rear.gap = p.min_rear_gap + 1.0;
  EXPECT_TRUE(lane_change_safe(p, gaps));
}

TEST(LaneChange, IncentiveFavorsFreeLane) {
  IdmParams idm;
  NeighborObservation blocked;
  blocked.present = true;
  blocked.gap = 8.0;
  blocked.rel_speed = -5.0;  // leader slower
  TargetLaneGaps free_lane;
  free_lane.lane_exists = true;
  EXPECT_GT(lane_change_incentive(idm, 30.0, blocked, free_lane), 0.5);
}

TEST(LaneChange, DecisionStaysWhenNoGain) {
  IdmParams idm;
  LaneChangeParams p;
  NeighborObservation open_road;  // not present: free current lane
  TargetLaneGaps left, right;
  left.lane_exists = right.lane_exists = true;
  EXPECT_EQ(decide_lane_change(idm, p, 30.0, open_road, left, right),
            LaneChangeDecision::kStay);
}

TEST(LaneChange, RiskyModeIgnoresSafety) {
  IdmParams idm;
  LaneChangeParams p;
  NeighborObservation blocked;
  blocked.present = true;
  blocked.gap = 6.0;
  blocked.rel_speed = -8.0;
  TargetLaneGaps left;
  left.lane_exists = true;
  left.rear.present = true;
  left.rear.gap = 1.0;  // unsafe rear gap
  TargetLaneGaps right;   // no right lane
  EXPECT_EQ(decide_lane_change(idm, p, 30.0, blocked, left, right),
            LaneChangeDecision::kStay);  // safe mode refuses
  EXPECT_EQ(decide_lane_change(idm, p, 30.0, blocked, left, right,
                               /*ignore_safety=*/true),
            LaneChangeDecision::kLeft);  // risky mode goes
}

SimConfig small_config(std::uint64_t seed = 3) {
  SimConfig cfg;
  cfg.num_vehicles = 12;
  cfg.seed = seed;
  return cfg;
}

TEST(Simulator, DeterministicForSameSeed) {
  HighwaySim a(small_config()), b(small_config());
  a.run(100);
  b.run(100);
  for (std::size_t i = 0; i < a.vehicles().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.vehicles()[i].s, b.vehicles()[i].s);
    EXPECT_DOUBLE_EQ(a.vehicles()[i].v, b.vehicles()[i].v);
    EXPECT_EQ(a.vehicles()[i].lane, b.vehicles()[i].lane);
  }
}

TEST(Simulator, NoCollisionsInNormalTraffic) {
  HighwaySim sim(small_config(7));
  for (int i = 0; i < 600; ++i) {
    sim.step();
    ASSERT_FALSE(sim.any_collision()) << "collision at step " << i;
  }
}

TEST(Simulator, SpeedsStayPhysical) {
  HighwaySim sim(small_config(8));
  sim.run(500);
  for (const auto& v : sim.vehicles()) {
    EXPECT_GE(v.v, 0.0);
    EXPECT_LE(v.v, 45.0);
    EXPECT_GE(v.lane, 0);
    EXPECT_LT(v.lane, sim.config().num_lanes);
  }
}

TEST(Simulator, NeighborsAreNearestPerOrientation) {
  HighwaySim sim(small_config(9));
  sim.run(50);
  const auto obs = sim.neighbors(0);
  ASSERT_EQ(obs.size(), kNumNeighborSlots);
  const VehicleState& ego = sim.vehicle(0);
  // Verify the same-front slot against a direct scan.
  const auto& same_front = obs[static_cast<std::size_t>(NeighborSlot::kSameFront)];
  double best = 1e18;
  bool found = false;
  for (const auto& other : sim.vehicles()) {
    if (other.id == ego.id || other.lane != ego.lane) continue;
    const double d = sim.forward_distance(ego.s, other.s);
    if (d > 0 && d < best) {
      best = d;
      found = true;
    }
  }
  EXPECT_EQ(same_front.present, found);
  if (found && same_front.present) {
    EXPECT_NEAR(same_front.gap,
                best - 0.5 * (ego.length + same_front.length), 1e-9);
  }
}

TEST(Simulator, LaneChangesHappenInDenseTraffic) {
  Scenario sc = make_scenario(TrafficDensity::kDense, 11);
  HighwaySim sim(sc.sim);
  int changes = 0;
  for (int i = 0; i < 800; ++i) {
    sim.step();
    for (const auto& v : sim.vehicles()) {
      if (v.changing_lane && v.lateral_progress <= sim.config().dt /
                                 sim.config().lane_change.duration + 1e-9) {
        ++changes;
      }
    }
  }
  EXPECT_GT(changes, 0);
}

TEST(Simulator, RiskyInjectionProducesRiskyFlags) {
  SimConfig cfg = small_config(12);
  cfg.risky_probability = 0.02;
  HighwaySim sim(cfg);
  int risky = 0;
  for (int i = 0; i < 400; ++i) {
    sim.step();
    for (const auto& v : sim.vehicles()) {
      if (sim.was_risky(v.id)) ++risky;
    }
  }
  EXPECT_GT(risky, 0);
}

TEST(Simulator, HistoryTracksSpeeds) {
  HighwaySim sim(small_config(13));
  sim.run(20);
  const auto& hist = sim.speed_history(0);
  EXPECT_GE(hist.size(), kSpeedHistory);
  EXPECT_DOUBLE_EQ(hist[0], sim.vehicle(0).v);
}

TEST(SceneEncoder, SchemaHas84NamedFeatures) {
  SceneEncoder enc;
  EXPECT_EQ(enc.schema().size(), kSceneFeatures);
  EXPECT_EQ(kSceneFeatures, 84u);  // the paper's input width
  EXPECT_TRUE(enc.schema().contains("ego.speed[t-0]"));
  EXPECT_TRUE(enc.schema().contains("left_front.presence"));
  EXPECT_TRUE(enc.schema().contains("road.friction"));
}

TEST(SceneEncoder, EncodingMatchesSchemaSizeAndDomain) {
  SceneEncoder enc;
  HighwaySim sim(small_config(14));
  sim.run(100);
  const verify::Box box = enc.domain_box();
  for (const auto& v : sim.vehicles()) {
    const linalg::Vector x = enc.encode(sim, v.id);
    ASSERT_EQ(x.size(), kSceneFeatures);
    for (std::size_t i = 0; i < x.size(); ++i) {
      EXPECT_GE(x[i], box[i].lo - 1e-9) << "feature " << i;
      EXPECT_LE(x[i], box[i].hi + 1e-9) << "feature " << i;
    }
  }
}

TEST(SceneEncoder, PresenceIndexConsistentWithSchema) {
  SceneEncoder enc;
  EXPECT_EQ(enc.presence_index(NeighborSlot::kLeftFront),
            enc.schema().index_of("left_front.presence"));
  EXPECT_EQ(enc.gap_index(NeighborSlot::kRightRear),
            enc.schema().index_of("right_rear.gap"));
  EXPECT_EQ(enc.rel_speed_index(NeighborSlot::kSameFront),
            enc.schema().index_of("same_front.rel_speed"));
}

TEST(SceneEncoder, LeftNeighborShowsUpInFeatures) {
  SceneEncoder enc;
  HighwaySim sim(small_config(15));
  sim.run(100);
  // Find an ego with a left-front neighbor via the simulator, check the
  // encoding agrees.
  for (const auto& v : sim.vehicles()) {
    const auto obs = sim.neighbors(v.id);
    const auto& lf = obs[static_cast<std::size_t>(NeighborSlot::kLeftFront)];
    const linalg::Vector x = enc.encode(sim, v.id);
    EXPECT_DOUBLE_EQ(x[enc.presence_index(NeighborSlot::kLeftFront)],
                     lf.present ? 1.0 : 0.0);
    if (lf.present) {
      EXPECT_NEAR(x[enc.gap_index(NeighborSlot::kLeftFront)],
                  std::clamp(lf.gap / kGapScale, 0.0, 1.0), 1e-12);
    }
  }
}

TEST(SafetyRules, VehicleOnLeftPredicateAndRegionAgree) {
  SceneEncoder enc;
  const verify::InputRegion region = make_vehicle_on_left_region(enc);
  // A point inside the region must satisfy the predicate and vice versa.
  linalg::Vector x(kSceneFeatures);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = region.box[i].lo;
  x[enc.presence_index(NeighborSlot::kLeftFront)] = 1.0;
  x[enc.gap_index(NeighborSlot::kLeftFront)] = 0.1;
  EXPECT_TRUE(vehicle_on_left(enc, x));
  EXPECT_TRUE(region.contains(x));
  x[enc.gap_index(NeighborSlot::kLeftFront)] = 0.9;  // far away
  EXPECT_FALSE(vehicle_on_left(enc, x));
  EXPECT_FALSE(region.contains(x));
}

TEST(SafetyRules, RiskyRuleFlagsRiskyLabels) {
  SceneEncoder enc;
  const data::ValidationRule rule = no_risky_left_move_rule(enc, 2.0);
  linalg::Vector x(kSceneFeatures);
  x[enc.presence_index(NeighborSlot::kLeftFront)] = 1.0;
  x[enc.gap_index(NeighborSlot::kLeftFront)] = 0.1;
  linalg::Vector risky_label(kActionDims);
  risky_label[kActionLateral] = 3.5;
  linalg::Vector safe_label(kActionDims);
  safe_label[kActionLateral] = 1.0;
  EXPECT_TRUE(rule.violates(x, risky_label));
  EXPECT_FALSE(rule.violates(x, safe_label));
  // No left vehicle: even a big left label is not *this* violation.
  linalg::Vector empty(kSceneFeatures);
  EXPECT_FALSE(rule.violates(empty, risky_label));
}

TEST(Scenario, BatteryCoversDensitiesAndWetRoads) {
  const auto battery = standard_scenario_battery(1);
  EXPECT_EQ(battery.size(), 6u);
  int wet = 0;
  for (const auto& sc : battery) {
    if (sc.sim.road.friction < 1.0) ++wet;
  }
  EXPECT_EQ(wet, 3);
}

TEST(DatasetBuilder, ProducesConsistentSamples) {
  SceneEncoder enc;
  DatasetBuildConfig cfg;
  cfg.sample_steps = 60;
  cfg.warmup_steps = 20;
  const BuiltDataset built = build_highway_dataset(enc, cfg);
  EXPECT_GT(built.data.size(), 500u);
  EXPECT_EQ(built.data.input_dim(), kSceneFeatures);
  EXPECT_EQ(built.data.target_dim(), kActionDims);
  EXPECT_GT(built.lane_change_samples, 0u);
  EXPECT_EQ(built.risky_samples, 0u);  // risky injection disabled
  // Labels within physical ranges.
  for (std::size_t i = 0; i < built.data.size(); ++i) {
    EXPECT_LE(std::abs(built.data.target(i)[kActionLateral]), 4.0);
    EXPECT_LE(std::abs(built.data.target(i)[kActionAccel]), 10.0);
  }
}

TEST(DatasetBuilder, RiskyInjectionContaminatesData) {
  SceneEncoder enc;
  DatasetBuildConfig cfg;
  cfg.sample_steps = 80;
  cfg.warmup_steps = 20;
  cfg.risky_probability = 0.01;
  const BuiltDataset built = build_highway_dataset(enc, cfg);
  EXPECT_GT(built.risky_samples, 0u);
  // The injected maneuvers must actually show up as large-left labels.
  std::size_t big_left = 0;
  for (std::size_t i = 0; i < built.data.size(); ++i) {
    if (built.data.target(i)[kActionLateral] > 2.0) ++big_left;
  }
  EXPECT_GT(big_left, 0u);
}

TEST(DatasetBuilder, Deterministic) {
  SceneEncoder enc;
  DatasetBuildConfig cfg;
  cfg.sample_steps = 40;
  const BuiltDataset a = build_highway_dataset(enc, cfg);
  const BuiltDataset b = build_highway_dataset(enc, cfg);
  ASSERT_EQ(a.data.size(), b.data.size());
  for (std::size_t i = 0; i < a.data.size(); i += 97) {
    EXPECT_TRUE(linalg::approx_equal(a.data.input(i), b.data.input(i)));
    EXPECT_TRUE(linalg::approx_equal(a.data.target(i), b.data.target(i)));
  }
}

// --- Parallel dataset generation: byte-identical at any worker count. ---

DatasetBuildConfig small_build_config(int num_workers) {
  DatasetBuildConfig cfg;
  cfg.warmup_steps = 10;
  cfg.sample_steps = 24;
  cfg.sample_every = 2;
  cfg.risky_probability = 0.3;  // exercise the risky counters too
  cfg.seed = 11;
  cfg.num_workers = num_workers;
  return cfg;
}

class DatasetParallel : public ::testing::TestWithParam<int> {};

TEST_P(DatasetParallel, DatasetBitwiseIdenticalToSequential) {
  const int workers = GetParam();
  SceneEncoder encoder;
  const BuiltDataset sequential =
      build_highway_dataset(encoder, small_build_config(1));
  const BuiltDataset parallel =
      build_highway_dataset(encoder, small_build_config(workers));

  EXPECT_EQ(parallel.risky_samples, sequential.risky_samples);
  EXPECT_EQ(parallel.lane_change_samples, sequential.lane_change_samples);
  ASSERT_EQ(parallel.data.size(), sequential.data.size());
  ASSERT_GT(sequential.data.size(), 0u);
  for (std::size_t i = 0; i < sequential.data.size(); ++i) {
    const linalg::Vector& xs = sequential.data.input(i);
    const linalg::Vector& xp = parallel.data.input(i);
    ASSERT_EQ(xp.size(), xs.size());
    for (std::size_t d = 0; d < xs.size(); ++d) {
      ASSERT_EQ(xp[d], xs[d]) << "sample " << i << " feature " << d;
    }
    const linalg::Vector& ts = sequential.data.target(i);
    const linalg::Vector& tp = parallel.data.target(i);
    for (std::size_t d = 0; d < ts.size(); ++d) {
      ASSERT_EQ(tp[d], ts[d]) << "sample " << i << " target " << d;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Workers, DatasetParallel, ::testing::Values(2, 4));

TEST(DatasetParallel, MoreWorkersThanScenariosIsFine) {
  // The battery has 6 scenarios; 16 workers leaves most idle.
  SceneEncoder encoder;
  const BuiltDataset a = build_highway_dataset(encoder, small_build_config(1));
  const BuiltDataset b =
      build_highway_dataset(encoder, small_build_config(16));
  ASSERT_EQ(a.data.size(), b.data.size());
  for (std::size_t i = 0; i < a.data.size(); ++i) {
    for (std::size_t d = 0; d < a.data.input(i).size(); ++d) {
      ASSERT_EQ(a.data.input(i)[d], b.data.input(i)[d]);
    }
  }
}

}  // namespace
}  // namespace safenn::highway
