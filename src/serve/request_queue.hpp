// Bounded MPMC request queue for the serving runtime.
//
// Producers (client threads) push encoded scenes; consumer workers drain
// the queue in micro-batches. The queue is the serving runtime's
// load-shedding point: `try_push` fails fast when the queue is full so
// the caller can reject with bounded latency instead of queueing
// unboundedly (the paper's certification argument needs the guard to
// answer within a deadline, not eventually).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <vector>

#include "linalg/kernels.hpp"
#include "linalg/vector.hpp"

namespace safenn::serve {

using Clock = std::chrono::steady_clock;

/// What happened to a request, per the degradation policy:
///   kServed   — predicted, shield checked, no clamp needed
///   kClamped  — predicted, shield intervened (action clamped)
///   kDegraded — deadline passed before inference; safe fallback returned
///   kRejected — queue full or runtime stopped; never entered the engine
enum class ServeOutcome { kServed, kClamped, kDegraded, kRejected };

const char* to_string(ServeOutcome outcome);

struct ServeResponse {
  std::uint64_t id = 0;
  /// Which model the request was routed to (echoed from the request).
  /// Empty on the single-model serving path.
  std::string model_id;
  ServeOutcome outcome = ServeOutcome::kRejected;
  linalg::Vector action;        // empty for kRejected
  bool assumption_hit = false;  // scene inside the monitored region
  bool intervened = false;      // shield clamped the action
  /// Version label of the model snapshot that produced this response —
  /// the per-response traceability link that survives hot swaps. Empty
  /// only for kRejected (no model was involved).
  std::string model_version;
  /// The arithmetic that produced this response: the serving backend of
  /// the snapshot that answered (kQuantized = exact fixed point, the
  /// semantics the SMT stack verifies). Degraded responses carry the
  /// snapshot's backend too even though the fallback involves no network
  /// arithmetic; kRejected keeps the default (no model was involved).
  linalg::KernelBackend backend = linalg::KernelBackend::kReference;
  double queue_seconds = 0.0;   // enqueue -> dequeue
  double infer_seconds = 0.0;   // engine time (0 for degraded/rejected)
};

struct ServeRequest {
  std::uint64_t id = 0;
  /// Routing key for multi-model serving; empty on the single-model
  /// path. A popped micro-batch is always model-pure: requests with
  /// different ids never share a queue, so they never share a batch.
  std::string model_id;
  linalg::Vector scene;
  Clock::time_point enqueue_time{};
  Clock::time_point deadline = Clock::time_point::max();  // max() = none
  std::promise<ServeResponse> promise;
};

/// Bounded multi-producer multi-consumer FIFO. All operations are
/// thread-safe; `close()` wakes every waiter and lets consumers drain
/// what remains before `pop_batch` starts returning 0.
class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity);

  /// Non-blocking push; false when the queue is full or closed (the
  /// caller owns the request again and should reject it).
  bool try_push(ServeRequest&& request);

  /// Blocking push: waits for space. False only when the queue is (or
  /// becomes) closed.
  bool push(ServeRequest&& request);

  /// Blocks until at least one request is available or the queue is
  /// closed and empty, then moves up to `max_batch` requests into `out`
  /// (appended) without further waiting — opportunistic micro-batching.
  /// Returns the number of requests delivered; 0 means closed-and-empty.
  std::size_t pop_batch(std::vector<ServeRequest>& out,
                        std::size_t max_batch);

  /// Non-blocking pop_batch: drains up to `max_batch` requests under one
  /// lock acquisition and returns immediately — 0 means the queue is
  /// currently empty (closed or not). This is the sharded worker pool's
  /// probe: a worker scans its home queue, then steal candidates, and
  /// only blocks on the shared work signal once every probe comes back
  /// empty.
  std::size_t try_pop_batch(std::vector<ServeRequest>& out,
                            std::size_t max_batch);

  /// Closes the queue: pushes fail from now on, consumers drain the
  /// remainder. Idempotent.
  void close();

  bool closed() const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

 private:
  std::size_t drain_locked(std::vector<ServeRequest>& out,
                           std::size_t max_batch);
  void notify_not_full(std::size_t freed, bool had_waiters);

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<ServeRequest> items_;
  // Waiter counts (guarded by mu_): producers/consumers only touch a
  // condition variable when someone is actually blocked on it, so the
  // uncontended fast path is push/pop under one short lock with zero
  // futex syscalls (BM_RequestQueue in bench_micro.cpp measures this).
  std::size_t waiting_pushers_ = 0;
  std::size_t waiting_poppers_ = 0;
  bool closed_ = false;
};

}  // namespace safenn::serve
