// Shielded inference engine: every prediction flows through the
// SafetyMonitor; deadline overruns degrade to the monitor's safe
// fallback without touching the network.
//
// Degradation policy (documented in DESIGN.md "Serving runtime"):
//   deadline already passed at service time  -> kDegraded (safe_action)
//   shield clamps the predicted action       -> kClamped
//   otherwise                                -> kServed
// Rejection (queue full / runtime stopped) happens upstream at the
// submit path and never reaches the engine.
#pragma once

#include "core/monitor.hpp"
#include "serve/request_queue.hpp"

namespace safenn::serve {

/// Stateless per-call engine over a shared const predictor and a shared
/// thread-safe monitor; safe to use from any number of workers.
class ShieldedEngine {
 public:
  ShieldedEngine(const core::TrainedPredictor& predictor,
                 const core::SafetyMonitor& monitor);

  /// Serves one request at time `now`: deadline check, then guarded
  /// prediction. Fills everything except `queue_seconds` (the caller
  /// knows the dequeue time).
  ServeResponse serve(const ServeRequest& request,
                      Clock::time_point now) const;

  /// Serves a whole popped micro-batch at time `now`. Expired requests
  /// degrade exactly as in serve() and never touch the predictor; the
  /// live scenes run through the network as ONE batched forward, then
  /// the monitor's per-row guard is applied in queue order — responses
  /// (and monitor counters) are decision-for-decision identical to
  /// calling serve() per request. `infer_seconds` of each predicted
  /// response is the batch inference+guard time divided evenly over the
  /// predicted rows.
  std::vector<ServeResponse> serve_batch(
      const std::vector<ServeRequest>& requests, Clock::time_point now) const;

  const core::SafetyMonitor& monitor() const { return monitor_; }
  const core::TrainedPredictor& predictor() const { return predictor_; }

 private:
  const core::TrainedPredictor& predictor_;
  const core::SafetyMonitor& monitor_;
};

}  // namespace safenn::serve
