// Shielded inference engine: every prediction flows through the
// SafetyMonitor; deadline overruns degrade to the monitor's safe
// fallback without touching the network.
//
// Degradation policy (documented in DESIGN.md "Serving runtime"):
//   deadline already passed at service time  -> kDegraded (safe_action)
//   shield clamps the predicted action       -> kClamped
//   otherwise                                -> kServed
// Rejection (queue full / runtime stopped) happens upstream at the
// submit path and never reaches the engine.
//
// The engine is a stateless view over one model snapshot: under hot
// reload, workers construct a fresh engine per popped micro-batch from
// LiveModel::current(), so an in-flight batch finishes on the snapshot
// it started with while the next pop sees the swapped-in model.
#pragma once

#include "core/monitor.hpp"
#include "linalg/kernels.hpp"
#include "registry/live_model.hpp"
#include "serve/request_queue.hpp"

namespace safenn::serve {

/// Resolves the kernel backend a server should actually run: kReference
/// passes through; kSimd is admitted only after the tolerance harness
/// (linalg/verify_kernels.hpp) passes on this host with the network's
/// own layer shapes pinned — on any violation the request degrades to
/// kReference (logged), keeping the deployed artifact traceable to the
/// verified reference kernels. Re-run on every hot reload: admission is
/// per artifact, not per process.
linalg::KernelBackend resolve_serving_backend(
    const nn::Network& network, linalg::KernelBackend requested,
    std::size_t max_batch);
linalg::KernelBackend resolve_serving_backend(
    const core::TrainedPredictor& predictor,
    linalg::KernelBackend requested, std::size_t max_batch);

/// Backend resolution for a registry artifact, including the quantized
/// engine. `backend` is what the snapshot serves with; when it is
/// kQuantized, `quantized_kernel` picks the integer kernel inside the
/// packed engine (kQuantized = SIMD dispatch, kReference = scalar).
struct ResolvedBackend {
  linalg::KernelBackend backend;
  linalg::KernelBackend quantized_kernel = linalg::KernelBackend::kQuantized;
};

/// Admission for kQuantized, per artifact (re-run on every hot reload):
/// the artifact must carry a quantized payload, the payload must pass
/// the packing admission analysis (int16 weights / int32 activations /
/// int64 accumulator bounds over the declared input domain), and the
/// integer SIMD kernels must be BITWISE equal to the scalar reference on
/// this host with the engine's own (batch, in, out) GEMM shapes pinned —
/// integer kernels carry no tolerance, unlike the float kSimd gate. A
/// failed bitwise check demotes only the inner kernel to scalar (exact
/// semantics preserved); a missing or unpackable payload falls back to
/// float kReference with a warning. Other requested backends defer to
/// the float overloads above.
ResolvedBackend resolve_serving_backend(
    const registry::ModelArtifact& artifact, linalg::KernelBackend requested,
    std::size_t max_batch);

/// Stateless per-call engine over a shared const predictor and a shared
/// thread-safe monitor; safe to use from any number of workers. Cheap to
/// construct (three references + a version label) — the worker pool
/// builds one per micro-batch from the live snapshot.
class ShieldedEngine {
 public:
  /// `backend` selects the kernels for batched forward passes; single-
  /// request serve() always runs the per-sample reference path. Callers
  /// wanting the gate should pass resolve_serving_backend(...) here (the
  /// InferenceServer facade does). `version` tags every response this
  /// engine produces.
  ShieldedEngine(const core::TrainedPredictor& predictor,
                 const core::SafetyMonitor& monitor,
                 linalg::KernelBackend backend =
                     linalg::KernelBackend::kReference,
                 std::string version = {});

  /// Engine over a model snapshot (predictor, monitor, backend, version
  /// all from the snapshot). The snapshot must outlive the engine — the
  /// worker holds its shared_ptr for the batch's duration.
  explicit ShieldedEngine(const registry::ModelSnapshot& snapshot);

  /// Serves one request at time `now`: deadline check, then guarded
  /// prediction. Fills everything except `queue_seconds` (the caller
  /// knows the dequeue time).
  ServeResponse serve(const ServeRequest& request,
                      Clock::time_point now) const;

  /// Serves a whole popped micro-batch at time `now`. Expired requests
  /// degrade exactly as in serve() and never touch the predictor; the
  /// live scenes run through the network as ONE batched forward, then
  /// the monitor's per-row guard is applied in queue order — responses
  /// (and monitor counters) are decision-for-decision identical to
  /// calling serve() per request. `infer_seconds` of each predicted
  /// response is the batch inference+guard time divided evenly over the
  /// predicted rows.
  std::vector<ServeResponse> serve_batch(
      const std::vector<ServeRequest>& requests, Clock::time_point now) const;

  const core::SafetyMonitor& monitor() const { return monitor_; }
  const core::TrainedPredictor& predictor() const { return predictor_; }
  linalg::KernelBackend backend() const { return backend_; }
  const std::string& version() const { return version_; }
  /// The packed integer engine serving this snapshot; non-null iff
  /// backend() == kQuantized.
  const nn::QuantizedEngine* quantized_engine() const { return qengine_; }

 private:
  /// Mixture means for the packed scene rows, through whichever
  /// arithmetic this engine serves (float predict_batch or the exact
  /// integer engine); fills `means` with one action mean per row.
  void predict_means(const linalg::Matrix& scenes,
                     std::vector<linalg::Vector>& means) const;

  const core::TrainedPredictor& predictor_;
  const core::SafetyMonitor& monitor_;
  linalg::KernelBackend backend_;
  std::string version_;
  const nn::QuantizedEngine* qengine_ = nullptr;
};

}  // namespace safenn::serve
