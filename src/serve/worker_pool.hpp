// Worker pool + serving facade.
//
// WorkerPool: N threads drain the RequestQueue in micro-batches through
// the ShieldedEngine, fulfil each request's promise, and account every
// outcome in the MetricsRegistry. stop() closes the queue, lets workers
// drain what is already enqueued (no request is ever dropped with a
// broken promise), then joins.
//
// InferenceServer: owns queue + engine + pool + metrics and exposes the
// client API — submit() load-sheds when the queue is full (kRejected,
// resolved immediately); submit_blocking() waits for space (replay /
// benchmark producers).
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "serve/engine.hpp"
#include "serve/metrics.hpp"
#include "serve/request_queue.hpp"

namespace safenn::serve {

struct WorkerPoolConfig {
  std::size_t workers = 4;
  std::size_t max_batch = 16;
};

class WorkerPool {
 public:
  WorkerPool(RequestQueue& queue, const ShieldedEngine& engine,
             MetricsRegistry& metrics, WorkerPoolConfig config);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  void start();
  /// Closes the queue, drains the backlog, joins all workers. Idempotent.
  void stop();
  bool running() const { return !threads_.empty(); }
  std::size_t workers() const { return config_.workers; }

 private:
  void worker_loop();

  RequestQueue& queue_;
  const ShieldedEngine& engine_;
  MetricsRegistry& metrics_;
  WorkerPoolConfig config_;
  std::vector<std::thread> threads_;
};

class InferenceServer {
 public:
  struct Config {
    std::size_t queue_capacity = 1024;
    WorkerPoolConfig pool;
    /// Per-request service deadline from submit time; <= 0 means none.
    double deadline_seconds = 0.0;
    /// Kernel backend for the batched forward hot path. kSimd is opt-in
    /// and gated: the constructor runs the tolerance harness over the
    /// predictor's layer shapes and falls back to kReference (with a
    /// warning) if any kernel exceeds its derived tolerance on this
    /// host. Trainer/verifier paths are unaffected — they always run
    /// the reference kernels.
    linalg::KernelBackend backend = linalg::KernelBackend::kReference;
  };

  /// Starts the workers immediately. `predictor` and `monitor` must
  /// outlive the server; the monitor is shared so its intervention stats
  /// stay comparable with offline replays.
  InferenceServer(const core::TrainedPredictor& predictor,
                  const core::SafetyMonitor& monitor, Config config);
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Load-shedding submit: when the queue is full (or the server is
  /// stopped) the returned future resolves immediately with kRejected.
  std::future<ServeResponse> submit(linalg::Vector scene);

  /// Blocking submit: waits for queue space; rejects only once stopped.
  std::future<ServeResponse> submit_blocking(linalg::Vector scene);

  /// Stops accepting work, drains the backlog, joins workers. Idempotent.
  void stop();

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  const RequestQueue& queue() const { return queue_; }
  /// Backend actually serving (post tolerance-harness gate).
  linalg::KernelBackend backend() const { return engine_.backend(); }

 private:
  ServeRequest make_request(linalg::Vector&& scene);
  void fulfil_rejected(ServeRequest& request);

  Config config_;
  MetricsRegistry metrics_;
  RequestQueue queue_;
  ShieldedEngine engine_;
  WorkerPool pool_;
  std::atomic<std::uint64_t> next_id_{0};
};

}  // namespace safenn::serve
