// Worker pool + serving facade.
//
// WorkerPool: N threads drain the RequestQueue in micro-batches through
// the ShieldedEngine, fulfil each request's promise, and account every
// outcome in the MetricsRegistry (globally and per model version).
// Workers resolve the live model snapshot once per popped batch: an
// in-flight batch finishes on the snapshot it started with, the next
// pop sees whatever reload() published — the atomic hot-swap path.
// stop() closes the queue, lets workers drain what is already enqueued
// (no request is ever dropped with a broken promise), then joins.
//
// InferenceServer: owns queue + live model + pool + metrics and exposes
// the client API — submit() applies the admission policy (reject when
// full, or shed to the safe action at a queue-depth watermark);
// submit_blocking() waits for space (replay / benchmark producers);
// reload() atomically swaps in a new model artifact under live traffic,
// re-running the kernel-backend admission gate for the new artifact.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "registry/live_model.hpp"
#include "serve/engine.hpp"
#include "serve/metrics.hpp"
#include "serve/request_queue.hpp"

namespace safenn::serve {

struct WorkerPoolConfig {
  std::size_t workers = 4;
  std::size_t max_batch = 16;
};

/// Per-response metrics accounting shared by the single-model WorkerPool
/// and the model-sharded pool (serve/multi_model.hpp): fills
/// `response.queue_seconds`, bumps the global outcome/shield counters,
/// the per-version and per-backend slices, the per-model slice when
/// `model` is non-null, and the latency histograms. The caller resolves
/// the slices once per micro-batch (slice lookup takes a mutex) and
/// still owns fulfilling the request's promise afterwards.
void account_response(MetricsRegistry& metrics, VersionCounters& version,
                      VersionCounters& arith, ModelMetrics* model,
                      const ServeRequest& request, ServeResponse& response,
                      Clock::time_point dequeue_time);

class WorkerPool {
 public:
  WorkerPool(RequestQueue& queue, const registry::LiveModel& live,
             MetricsRegistry& metrics, WorkerPoolConfig config);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  void start();
  /// Closes the queue, drains the backlog, joins all workers. Idempotent.
  void stop();
  bool running() const { return !threads_.empty(); }
  std::size_t workers() const { return config_.workers; }

 private:
  void worker_loop();

  RequestQueue& queue_;
  const registry::LiveModel& live_;
  MetricsRegistry& metrics_;
  WorkerPoolConfig config_;
  std::vector<std::thread> threads_;
};

/// What submit() does when the queue backs up. Either way latency stays
/// bounded — the policies differ in what the client gets back.
enum class AdmissionPolicy {
  /// Status quo: accept until the queue is full, then kRejected (the
  /// caller gets no action and must handle the refusal).
  kRejectWhenFull,
  /// Shed load with a safe default: at the queue-depth watermark the
  /// request is answered immediately with the live model's
  /// SafetyMonitor::safe_action() as kDegraded — the client always
  /// receives an actionable (and provably safe) answer, overload never
  /// builds unbounded latency, and the shield guarantee is preserved
  /// because the fallback is the same one deadline overruns use.
  kDegradeAtWatermark,
};

const char* to_string(AdmissionPolicy policy);

class InferenceServer {
 public:
  struct Config {
    std::size_t queue_capacity = 1024;
    WorkerPoolConfig pool;
    /// Per-request service deadline from submit time; <= 0 means none.
    double deadline_seconds = 0.0;
    /// Requested kernel backend for the batched forward hot path. kSimd
    /// is opt-in and gated: construction AND every reload() run the
    /// tolerance harness over the (new) model's layer shapes and fall
    /// back to kReference (with a warning) if any kernel exceeds its
    /// derived tolerance on this host. Trainer/verifier paths are
    /// unaffected — they always run the reference kernels.
    linalg::KernelBackend backend = linalg::KernelBackend::kReference;
    /// Overload behavior of submit(); see AdmissionPolicy.
    AdmissionPolicy admission = AdmissionPolicy::kRejectWhenFull;
    /// Queue-depth fraction (of queue_capacity, clamped to (0, 1]) at
    /// which kDegradeAtWatermark starts shedding.
    double queue_watermark = 0.75;
    /// Version label for the reference-constructor path (the artifact
    /// constructor and reload() take the version from the artifact).
    std::string model_version = "unversioned";
  };

  /// Starts the workers immediately. `predictor` and `monitor` must
  /// outlive the server (and any snapshot still in flight after a later
  /// reload); the monitor is shared so its intervention stats stay
  /// comparable with offline replays.
  InferenceServer(const core::TrainedPredictor& predictor,
                  const core::SafetyMonitor& monitor, Config config);

  /// Serves a registry artifact: the server owns the materialized
  /// predictor + monitor via the live snapshot. The backend admission
  /// gate runs against the artifact's own layer shapes.
  InferenceServer(const registry::ModelArtifact& artifact, Config config);

  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Admission-controlled submit: applies Config::admission when the
  /// queue backs up (immediate kRejected, or immediate safe-action
  /// kDegraded at the watermark). Never blocks.
  std::future<ServeResponse> submit(linalg::Vector scene);

  /// Blocking submit: waits for queue space; rejects only once stopped.
  /// Bypasses the watermark (replay producers want everything served).
  std::future<ServeResponse> submit_blocking(linalg::Vector scene);

  /// Atomically hot-swaps the serving model under live traffic:
  /// re-resolves the kernel backend for the new artifact (kSimd
  /// admission is per artifact), publishes the new snapshot for
  /// subsequent micro-batches, and lets in-flight batches finish on the
  /// old model. Returns the backend the new model actually serves with.
  /// Thread-safe; concurrent reloads serialize.
  linalg::KernelBackend reload(const registry::ModelArtifact& artifact);

  /// Stops accepting work, drains the backlog, joins workers. Idempotent.
  void stop();

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  const RequestQueue& queue() const { return queue_; }
  /// Backend actually serving (post tolerance-harness gate, live model).
  linalg::KernelBackend backend() const { return live_.current()->backend(); }
  /// Version label of the live model.
  std::string model_version() const { return live_.current()->version(); }
  const registry::LiveModel& live_model() const { return live_; }

 private:
  ServeRequest make_request(linalg::Vector&& scene);
  void fulfil_rejected(ServeRequest& request);
  void fulfil_shed(ServeRequest& request);

  Config config_;
  MetricsRegistry metrics_;
  RequestQueue queue_;
  registry::LiveModel live_;
  WorkerPool pool_;
  std::mutex reload_mu_;
  std::size_t watermark_depth_ = 0;
  std::atomic<std::uint64_t> next_id_{0};
};

}  // namespace safenn::serve
