#include "serve/multi_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/log.hpp"

namespace safenn::serve {
namespace {

constexpr auto kRelaxed = std::memory_order_relaxed;

std::size_t watermark_depth(std::size_t budget, double fraction) {
  const double f = std::clamp(fraction, 0.0, 1.0);
  const auto depth =
      static_cast<std::size_t>(std::floor(f * static_cast<double>(budget)));
  return std::max<std::size_t>(1, depth);
}

std::shared_ptr<const registry::ModelSnapshot> make_snapshot(
    const registry::ModelArtifact& artifact, linalg::KernelBackend requested,
    std::size_t max_batch) {
  const ResolvedBackend resolved =
      resolve_serving_backend(artifact, requested, max_batch);
  return std::make_shared<const registry::ModelSnapshot>(
      artifact, resolved.backend, resolved.quantized_kernel);
}

}  // namespace

// ---------------------------------------------------------------- signal

void WorkSignal::wake_one() {
  // Producer side of the Dekker pairing: the caller already published
  // its work (depth fetch_add, seq_cst) BEFORE this waiters read. If a
  // worker decided to park, its waiters increment (under mu_, seq_cst)
  // either precedes this read — we see it and notify — or follows it,
  // in which case the worker's predicate check (also under mu_) is
  // ordered after our depth increment and sees the work. Either way no
  // wakeup is lost, and under load (no parked workers) producers never
  // touch the mutex or condvar.
  if (waiters_.load(std::memory_order_seq_cst) == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  cv_.notify_one();
}

void WorkSignal::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_.store(true, std::memory_order_release);
  }
  cv_.notify_all();
}

// ----------------------------------------------------------------- table

ModelTable::ModelTable(std::size_t admission_budget)
    : budget_(std::max<std::size_t>(1, admission_budget)) {}

void ModelTable::add_slot(
    std::string model_id,
    std::shared_ptr<const registry::ModelSnapshot> snapshot,
    std::size_t queue_capacity) {
  require(!model_id.empty(), "ModelTable: empty model id");
  require(index_.find(model_id) == index_.end(),
          "ModelTable: duplicate model id '" + model_id + "'");
  index_[model_id] = slots_.size();
  slots_.push_back(std::make_unique<Slot>(std::move(model_id),
                                          std::move(snapshot),
                                          queue_capacity));
}

ModelTable::Slot* ModelTable::find(const std::string& model_id) {
  const auto it = index_.find(model_id);
  return it == index_.end() ? nullptr : slots_[it->second].get();
}

const ModelTable::Slot* ModelTable::find(const std::string& model_id) const {
  const auto it = index_.find(model_id);
  return it == index_.end() ? nullptr : slots_[it->second].get();
}

std::vector<std::string> ModelTable::model_ids() const {
  std::vector<std::string> ids;
  ids.reserve(slots_.size());
  for (const auto& slot : slots_) ids.push_back(slot->model_id);
  return ids;
}

bool ModelTable::reserve() {
  // seq_cst: the increment must be globally ordered before the
  // producer's waiter-count read in WorkSignal::wake_one().
  const std::uint64_t before = depth_.fetch_add(1, std::memory_order_seq_cst);
  if (before >= budget_) {
    depth_.fetch_sub(1, std::memory_order_seq_cst);
    return false;
  }
  return true;
}

void ModelTable::reserve_unchecked() {
  depth_.fetch_add(1, std::memory_order_seq_cst);
}

void ModelTable::release(std::size_t n) {
  depth_.fetch_sub(n, std::memory_order_seq_cst);
}

void ModelTable::close_all() {
  for (auto& slot : slots_) slot->queue.close();
  signal_.close();
}

bool ModelTable::drained() const {
  if (!signal_.closed()) return false;
  for (const auto& slot : slots_) {
    if (slot->queue.size() > 0) return false;
  }
  return true;
}

// ------------------------------------------------------------------ pool

ShardedWorkerPool::ShardedWorkerPool(ModelTable& table,
                                     MetricsRegistry& metrics,
                                     WorkerPoolConfig config)
    : table_(table), metrics_(metrics), config_(config) {
  require(table_.size() > 0, "ShardedWorkerPool: empty model table");
  if (config_.workers == 0) config_.workers = 1;
  if (config_.max_batch == 0) config_.max_batch = 1;
}

ShardedWorkerPool::~ShardedWorkerPool() { stop(); }

void ShardedWorkerPool::start() {
  if (running()) return;
  threads_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
  log_debug("serve: started ", config_.workers, " sharded workers over ",
            table_.size(), " models (max batch ", config_.max_batch, ")");
}

void ShardedWorkerPool::stop() {
  if (!running()) return;
  table_.close_all();
  for (std::thread& t : threads_) t.join();
  threads_.clear();
  log_debug("serve: sharded pool stopped after ", metrics_.completed(),
            " completed requests");
}

void ShardedWorkerPool::process_batch(std::size_t slot_index,
                                      std::vector<ServeRequest>& batch) {
  ModelTable::Slot& slot = table_.slot(slot_index);
  metrics_.batches.fetch_add(1, kRelaxed);
  metrics_.batch_items.fetch_add(batch.size(), kRelaxed);
  const Clock::time_point dequeue_time = Clock::now();
  // Pin this slot's snapshot for the whole batch — a concurrent
  // reload(model_id) affects the slot's NEXT pop, never this batch.
  const std::shared_ptr<const registry::ModelSnapshot> snapshot =
      slot.live.current();
  const ShieldedEngine engine(*snapshot);
  VersionCounters& version = metrics_.version_counters(snapshot->version());
  VersionCounters& arith =
      metrics_.backend_counters(linalg::to_string(snapshot->backend()));
  ModelMetrics& model = metrics_.model_metrics(slot.model_id);
  model.batches.fetch_add(1, kRelaxed);
  // Batch-purity invariant: every request in a popped micro-batch was
  // routed to this slot. A violation would silently break per-model
  // replay, so it is counted (and asserted 0 by bench_multimodel_serve)
  // rather than assumed.
  for (const ServeRequest& request : batch) {
    if (request.model_id != slot.model_id) {
      metrics_.mixed_batches.fetch_add(1, kRelaxed);
      log_warn("serve: MIXED micro-batch — request for model '",
                request.model_id, "' popped from queue of '", slot.model_id,
                "'");
      break;
    }
  }
  std::vector<ServeResponse> responses =
      engine.serve_batch(batch, dequeue_time);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    account_response(metrics_, version, arith, &model, batch[i],
                     responses[i], dequeue_time);
    batch[i].promise.set_value(std::move(responses[i]));
  }
}

void ShardedWorkerPool::worker_loop(std::size_t worker_index) {
  const std::size_t num_slots = table_.size();
  const std::size_t home = worker_index % num_slots;
  std::vector<ServeRequest> batch;
  batch.reserve(config_.max_batch);
  for (;;) {
    batch.clear();
    // Home shard first: under balanced load each worker drains its own
    // model's queue and batches stay warm per model.
    std::size_t slot_index = home;
    std::size_t n =
        table_.slot(home).queue.try_pop_batch(batch, config_.max_batch);
    if (n == 0 && num_slots > 1) {
      // Idle: steal from the longest non-empty queue (ties -> lowest
      // index). Stealing moves the whole micro-batch from ONE queue, so
      // batch purity survives work stealing.
      std::size_t best = num_slots;
      std::size_t best_depth = 0;
      for (std::size_t i = 0; i < num_slots; ++i) {
        if (i == home) continue;
        const std::size_t d = table_.slot(i).queue.size();
        if (d > best_depth) {
          best = i;
          best_depth = d;
        }
      }
      if (best < num_slots) {
        n = table_.slot(best).queue.try_pop_batch(batch, config_.max_batch);
        slot_index = best;
      }
    }
    if (n == 0) {
      if (table_.drained()) return;
      table_.signal().wait([this] {
        return table_.signal().closed() || table_.depth() > 0;
      });
      continue;
    }
    // The budget units free as soon as the batch leaves its queue: the
    // budget bounds the fleet BACKLOG, in-flight work is bounded by the
    // worker count.
    table_.release(n);
    process_batch(slot_index, batch);
  }
}

// ---------------------------------------------------------------- server

ModelTable& MultiModelServer::init_table(
    const std::vector<ModelEntry>& models) {
  require(!models.empty(), "MultiModelServer: at least one model required");
  for (const ModelEntry& entry : models) {
    table_.add_slot(entry.model_id,
                    make_snapshot(entry.artifact, config_.backend,
                                  config_.pool.max_batch),
                    config_.queue_capacity);
  }
  return table_;
}

MultiModelServer::MultiModelServer(const std::vector<ModelEntry>& models,
                                   MultiModelConfig config)
    : config_(config),
      table_(config.admission_budget),
      pool_(init_table(models), metrics_, config.pool),
      watermark_depth_(
          watermark_depth(table_.budget(), config.queue_watermark)) {
  pool_.start();
}

MultiModelServer::~MultiModelServer() { stop(); }

ServeRequest MultiModelServer::make_request(const std::string& model_id,
                                            linalg::Vector&& scene) {
  ServeRequest request;
  request.id = next_id_.fetch_add(1, kRelaxed);
  request.model_id = model_id;
  request.scene = std::move(scene);
  request.enqueue_time = Clock::now();
  if (config_.deadline_seconds > 0.0) {
    request.deadline =
        request.enqueue_time +
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(config_.deadline_seconds));
  }
  return request;
}

std::future<ServeResponse> MultiModelServer::submit(
    const std::string& model_id, linalg::Vector scene) {
  metrics_.submitted.fetch_add(1, kRelaxed);
  ServeRequest request = make_request(model_id, std::move(scene));
  std::future<ServeResponse> future = request.promise.get_future();
  ModelTable::Slot* slot = table_.find(model_id);
  if (slot == nullptr) {
    fulfil_rejected(request);
    return future;
  }
  if (config_.admission == AdmissionPolicy::kDegradeAtWatermark &&
      !slot->queue.closed() && table_.depth() >= watermark_depth_) {
    // Fleet-level shed: the trigger is the TOTAL backlog across all
    // models, the answer is the routed model's own safe action.
    fulfil_shed(*slot, request);
    return future;
  }
  if (!table_.reserve()) {
    fulfil_rejected(request);
    return future;
  }
  if (!slot->queue.try_push(std::move(request))) {
    table_.release(1);
    fulfil_rejected(request);
    return future;
  }
  table_.signal().wake_one();
  metrics_.note_queue_depth(table_.depth());
  metrics_.model_metrics(model_id).note_queue_depth(slot->queue.size());
  return future;
}

std::future<ServeResponse> MultiModelServer::submit_blocking(
    const std::string& model_id, linalg::Vector scene) {
  metrics_.submitted.fetch_add(1, kRelaxed);
  ServeRequest request = make_request(model_id, std::move(scene));
  std::future<ServeResponse> future = request.promise.get_future();
  ModelTable::Slot* slot = table_.find(model_id);
  if (slot == nullptr) {
    fulfil_rejected(request);
    return future;
  }
  table_.reserve_unchecked();
  if (!slot->queue.push(std::move(request))) {
    table_.release(1);
    fulfil_rejected(request);
    return future;
  }
  table_.signal().wake_one();
  metrics_.note_queue_depth(table_.depth());
  metrics_.model_metrics(model_id).note_queue_depth(slot->queue.size());
  return future;
}

linalg::KernelBackend MultiModelServer::reload(
    const std::string& model_id, const registry::ModelArtifact& artifact) {
  std::lock_guard<std::mutex> lock(reload_mu_);
  ModelTable::Slot* slot = table_.find(model_id);
  if (slot == nullptr) {
    throw Error("MultiModelServer::reload: unknown model id '" + model_id +
                "'");
  }
  // Per-artifact re-gating, exactly as the single-model reload: kSimd's
  // tolerance gate / kQuantized's bitwise gate never survive a swap.
  std::shared_ptr<const registry::ModelSnapshot> next =
      make_snapshot(artifact, config_.backend, config_.pool.max_batch);
  const linalg::KernelBackend backend = next->backend();
  std::shared_ptr<const registry::ModelSnapshot> previous =
      slot->live.swap(std::move(next));
  metrics_.reloads.fetch_add(1, kRelaxed);
  log_info("serve: hot-swapped model '", model_id, "' ",
           previous->version(), " -> ", artifact.version, " (backend ",
           linalg::to_string(backend), ", hash ", artifact.content_hash,
           "); other slots untouched");
  return backend;
}

void MultiModelServer::fulfil_rejected(ServeRequest& request) {
  metrics_.rejected.fetch_add(1, kRelaxed);
  ServeResponse response;
  response.id = request.id;
  response.model_id = request.model_id;
  response.outcome = ServeOutcome::kRejected;
  request.promise.set_value(std::move(response));
}

void MultiModelServer::fulfil_shed(ModelTable::Slot& slot,
                                   ServeRequest& request) {
  const std::shared_ptr<const registry::ModelSnapshot> snapshot =
      slot.live.current();
  ModelMetrics& model = metrics_.model_metrics(slot.model_id);
  metrics_.degraded.fetch_add(1, kRelaxed);
  metrics_.shed.fetch_add(1, kRelaxed);
  model.counters.degraded.fetch_add(1, kRelaxed);
  model.shed.fetch_add(1, kRelaxed);
  metrics_.version_counters(snapshot->version())
      .degraded.fetch_add(1, kRelaxed);
  metrics_.backend_counters(linalg::to_string(snapshot->backend()))
      .degraded.fetch_add(1, kRelaxed);
  metrics_.note_queue_depth(table_.depth());
  ServeResponse response;
  response.id = request.id;
  response.model_id = request.model_id;
  response.outcome = ServeOutcome::kDegraded;
  response.action = snapshot->monitor().safe_action();
  response.model_version = snapshot->version();
  response.backend = snapshot->backend();
  request.promise.set_value(std::move(response));
}

std::string MultiModelServer::version(const std::string& model_id) const {
  const ModelTable::Slot* slot = table_.find(model_id);
  if (slot == nullptr) {
    throw Error("MultiModelServer::version: unknown model id '" + model_id +
                "'");
  }
  return slot->live.current()->version();
}

linalg::KernelBackend MultiModelServer::backend(
    const std::string& model_id) const {
  const ModelTable::Slot* slot = table_.find(model_id);
  if (slot == nullptr) {
    throw Error("MultiModelServer::backend: unknown model id '" + model_id +
                "'");
  }
  return slot->live.current()->backend();
}

void MultiModelServer::stop() { pool_.stop(); }

}  // namespace safenn::serve
