// Serving metrics: lock-free latency histograms, outcome counters,
// shield-intervention accounting, queue-depth high-water mark — dumpable
// as JSON.
//
// The intervention counters here are certification evidence (Sec. II(B)):
// the registry's totals must match a sequential replay of the same scene
// set exactly, which is what tests/test_serve.cpp asserts.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace safenn::serve {

/// Lock-free power-of-two-bucketed histogram over nanosecond latencies.
/// Bucket i counts samples in (2^(i-1), 2^i] ns; percentiles are reported
/// as the upper bound of the covering bucket (a sound over-approximation,
/// ~2x resolution — adequate for p50/p95/p99 tail reporting).
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 42;  // up to ~73 minutes

  void record(std::uint64_t ns);

  std::uint64_t count() const;
  double mean_ns() const;
  /// Upper bound of the bucket containing the p-quantile (p in [0,1]);
  /// 0 when empty.
  double percentile_ns(double p) const;

  void reset();

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_ns_{0};
};

/// Per-model-version outcome slice: under hot reload the global counters
/// keep running across swaps (shield continuity), while each version's
/// own slice stays separately auditable — a sequential replay of the
/// scenes a version served must reproduce its counters exactly.
struct VersionCounters {
  std::atomic<std::uint64_t> served{0};
  std::atomic<std::uint64_t> clamped{0};
  std::atomic<std::uint64_t> degraded{0};
  std::atomic<std::uint64_t> assumption_hits{0};
  std::atomic<std::uint64_t> interventions{0};

  std::uint64_t completed() const;
};

/// Per-model metric slice for multi-model serving: the same outcome /
/// shield counters as a version slice, plus what routing adds — sheds
/// charged to requests routed at this model, micro-batches formed from
/// its queue, its queue-depth high-water mark, and its own end-to-end
/// latency histogram (p50/p95/p99 per model id in the JSON dump). Same
/// contracts as VersionCounters: stable addresses for the registry's
/// lifetime, zeroed in place by reset().
struct ModelMetrics {
  VersionCounters counters;
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> batches{0};
  std::atomic<std::uint64_t> queue_depth_peak{0};
  LatencyHistogram total_latency;

  /// Monotone max update of this model's queue-depth high-water mark.
  void note_queue_depth(std::size_t depth);
};

/// All counters a serving run exposes. Every member is individually
/// thread-safe; the registry is shared by reference between the worker
/// pool, the submit path, and the reporter.
class MetricsRegistry {
 public:
  // Per-stage latencies.
  LatencyHistogram queue_latency;  // enqueue -> dequeue
  LatencyHistogram infer_latency;  // engine time per request
  LatencyHistogram total_latency;  // enqueue -> response

  // Outcome counters (submitted = sum of the four outcomes once drained).
  std::atomic<std::uint64_t> submitted{0};
  std::atomic<std::uint64_t> served{0};
  std::atomic<std::uint64_t> clamped{0};
  std::atomic<std::uint64_t> degraded{0};
  std::atomic<std::uint64_t> rejected{0};

  // Shield accounting (mirrors core::MonitorStats over the served flow).
  std::atomic<std::uint64_t> assumption_hits{0};
  std::atomic<std::uint64_t> interventions{0};

  // Micro-batch formation. `mixed_batches` counts popped micro-batches
  // containing requests for more than one model id — the multi-model
  // purity invariant; it must stay 0 (bench_multimodel_serve exits
  // nonzero otherwise, because a mixed batch would break per-model
  // bitwise replay).
  std::atomic<std::uint64_t> batches{0};
  std::atomic<std::uint64_t> batch_items{0};
  std::atomic<std::uint64_t> mixed_batches{0};

  std::atomic<std::uint64_t> queue_depth_peak{0};

  // Admission control + model lifecycle observability: `shed` counts
  // requests answered with the safe default at the queue-depth watermark
  // (a subset of `degraded`); `reloads` counts hot swaps.
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> reloads{0};

  /// Monotone max update of the queue-depth high-water mark.
  void note_queue_depth(std::size_t depth);

  /// The per-version counter slice for `version`, created on first use.
  /// The returned reference stays valid for the registry's lifetime
  /// (reset() clears counts but keeps the slices); lookup takes a mutex,
  /// so callers on the hot path should resolve once per batch.
  VersionCounters& version_counters(const std::string& version);

  /// The per-backend counter slice (keyed by linalg::to_string of the
  /// serving backend — "reference", "simd", "quantized"), same lifetime
  /// and locking contract as version_counters(). Under a float->quantized
  /// hot swap the per-backend slices say exactly how many decisions each
  /// arithmetic produced.
  VersionCounters& backend_counters(const std::string& backend);

  /// The per-model metric slice (keyed by routing model id), created on
  /// first use — same lifetime and locking contract as
  /// version_counters(). On the single-model path no slice is ever
  /// created and the JSON "models" section stays empty.
  ModelMetrics& model_metrics(const std::string& model_id);

  /// Requests that received a response through the engine path.
  std::uint64_t completed() const;

  double mean_batch_size() const;

  /// JSON object with all counters and p50/p95/p99 per stage (in
  /// milliseconds). When `elapsed_seconds` > 0, includes throughput.
  std::string to_json(double elapsed_seconds = 0.0) const;

  void reset();

 private:
  // unique_ptr values keep counter addresses stable across map growth.
  mutable std::mutex versions_mu_;
  std::map<std::string, std::unique_ptr<VersionCounters>> versions_;
  mutable std::mutex backends_mu_;
  std::map<std::string, std::unique_ptr<VersionCounters>> backends_;
  mutable std::mutex models_mu_;
  std::map<std::string, std::unique_ptr<ModelMetrics>> models_;
};

}  // namespace safenn::serve
