#include "serve/request_queue.hpp"

namespace safenn::serve {

const char* to_string(ServeOutcome outcome) {
  switch (outcome) {
    case ServeOutcome::kServed: return "served";
    case ServeOutcome::kClamped: return "clamped";
    case ServeOutcome::kDegraded: return "degraded";
    case ServeOutcome::kRejected: return "rejected";
  }
  return "?";
}

RequestQueue::RequestQueue(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

bool RequestQueue::try_push(ServeRequest&& request) {
  bool wake_popper = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(request));
    wake_popper = waiting_poppers_ > 0;
  }
  // One item became available: one notify_one, and only when a consumer
  // is actually parked (the waiter count is read under mu_, so a
  // consumer that decided to wait is guaranteed visible here).
  if (wake_popper) not_empty_.notify_one();
  return true;
}

bool RequestQueue::push(ServeRequest&& request) {
  bool wake_popper = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!closed_ && items_.size() >= capacity_) {
      ++waiting_pushers_;
      not_full_.wait(lock,
                     [this] { return closed_ || items_.size() < capacity_; });
      --waiting_pushers_;
    }
    if (closed_) return false;
    items_.push_back(std::move(request));
    wake_popper = waiting_poppers_ > 0;
  }
  if (wake_popper) not_empty_.notify_one();
  return true;
}

std::size_t RequestQueue::drain_locked(std::vector<ServeRequest>& out,
                                       std::size_t max_batch) {
  std::size_t taken = 0;
  while (taken < max_batch && !items_.empty()) {
    out.push_back(std::move(items_.front()));
    items_.pop_front();
    ++taken;
  }
  return taken;
}

void RequestQueue::notify_not_full(std::size_t freed, bool had_waiters) {
  if (freed == 0 || !had_waiters) return;
  // One freed slot admits one blocked producer; a multi-slot drain wakes
  // them all (each rechecks capacity under the lock).
  if (freed == 1) {
    not_full_.notify_one();
  } else {
    not_full_.notify_all();
  }
}

std::size_t RequestQueue::pop_batch(std::vector<ServeRequest>& out,
                                    std::size_t max_batch) {
  if (max_batch == 0) max_batch = 1;
  std::size_t taken = 0;
  bool had_waiters = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty() && !closed_) {
      ++waiting_poppers_;
      not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
      --waiting_poppers_;
    }
    taken = drain_locked(out, max_batch);
    had_waiters = waiting_pushers_ > 0;
  }
  notify_not_full(taken, had_waiters);
  return taken;
}

std::size_t RequestQueue::try_pop_batch(std::vector<ServeRequest>& out,
                                        std::size_t max_batch) {
  if (max_batch == 0) max_batch = 1;
  std::size_t taken = 0;
  bool had_waiters = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    taken = drain_locked(out, max_batch);
    had_waiters = waiting_pushers_ > 0;
  }
  notify_not_full(taken, had_waiters);
  return taken;
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

}  // namespace safenn::serve
