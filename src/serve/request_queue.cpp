#include "serve/request_queue.hpp"

namespace safenn::serve {

const char* to_string(ServeOutcome outcome) {
  switch (outcome) {
    case ServeOutcome::kServed: return "served";
    case ServeOutcome::kClamped: return "clamped";
    case ServeOutcome::kDegraded: return "degraded";
    case ServeOutcome::kRejected: return "rejected";
  }
  return "?";
}

RequestQueue::RequestQueue(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

bool RequestQueue::try_push(ServeRequest&& request) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(request));
  }
  not_empty_.notify_one();
  return true;
}

bool RequestQueue::push(ServeRequest&& request) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(request));
  }
  not_empty_.notify_one();
  return true;
}

std::size_t RequestQueue::pop_batch(std::vector<ServeRequest>& out,
                                    std::size_t max_batch) {
  if (max_batch == 0) max_batch = 1;
  std::size_t taken = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    while (taken < max_batch && !items_.empty()) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
      ++taken;
    }
  }
  if (taken > 0) not_full_.notify_all();
  return taken;
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

}  // namespace safenn::serve
