#include "serve/worker_pool.hpp"

#include <chrono>

#include "common/log.hpp"

namespace safenn::serve {
namespace {

constexpr auto kRelaxed = std::memory_order_relaxed;

std::uint64_t to_ns(double seconds) {
  return seconds <= 0.0 ? 0
                        : static_cast<std::uint64_t>(seconds * 1e9);
}

std::uint64_t ns_between(Clock::time_point start, Clock::time_point end) {
  if (end <= start) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
          .count());
}

}  // namespace

WorkerPool::WorkerPool(RequestQueue& queue, const ShieldedEngine& engine,
                       MetricsRegistry& metrics, WorkerPoolConfig config)
    : queue_(queue), engine_(engine), metrics_(metrics), config_(config) {
  if (config_.workers == 0) config_.workers = 1;
  if (config_.max_batch == 0) config_.max_batch = 1;
}

WorkerPool::~WorkerPool() { stop(); }

void WorkerPool::start() {
  if (running()) return;
  threads_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
  log_debug("serve: started ", config_.workers, " workers (max batch ",
            config_.max_batch, ")");
}

void WorkerPool::stop() {
  if (!running()) return;
  queue_.close();
  for (std::thread& t : threads_) t.join();
  threads_.clear();
  log_debug("serve: worker pool stopped after ", metrics_.completed(),
            " completed requests");
}

void WorkerPool::worker_loop() {
  std::vector<ServeRequest> batch;
  batch.reserve(config_.max_batch);
  for (;;) {
    batch.clear();
    const std::size_t n = queue_.pop_batch(batch, config_.max_batch);
    if (n == 0) return;  // closed and drained
    metrics_.batches.fetch_add(1, kRelaxed);
    metrics_.batch_items.fetch_add(n, kRelaxed);
    const Clock::time_point dequeue_time = Clock::now();
    // One batched forward for the whole micro-batch; the engine applies
    // the monitor's guard per row, so decisions match per-request serve().
    std::vector<ServeResponse> responses =
        engine_.serve_batch(batch, dequeue_time);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      ServeRequest& request = batch[i];
      ServeResponse& response = responses[i];
      response.queue_seconds = static_cast<double>(ns_between(
                                   request.enqueue_time, dequeue_time)) /
                               1e9;
      switch (response.outcome) {
        case ServeOutcome::kServed:
          metrics_.served.fetch_add(1, kRelaxed);
          break;
        case ServeOutcome::kClamped:
          metrics_.clamped.fetch_add(1, kRelaxed);
          break;
        case ServeOutcome::kDegraded:
          metrics_.degraded.fetch_add(1, kRelaxed);
          break;
        case ServeOutcome::kRejected:
          metrics_.rejected.fetch_add(1, kRelaxed);
          break;
      }
      if (response.assumption_hit)
        metrics_.assumption_hits.fetch_add(1, kRelaxed);
      if (response.intervened) metrics_.interventions.fetch_add(1, kRelaxed);
      metrics_.queue_latency.record(
          ns_between(request.enqueue_time, dequeue_time));
      metrics_.infer_latency.record(to_ns(response.infer_seconds));
      metrics_.total_latency.record(
          ns_between(request.enqueue_time, Clock::now()));
      request.promise.set_value(std::move(response));
    }
  }
}

InferenceServer::InferenceServer(const core::TrainedPredictor& predictor,
                                 const core::SafetyMonitor& monitor,
                                 Config config)
    : config_(config),
      queue_(config.queue_capacity),
      engine_(predictor, monitor,
              resolve_serving_backend(predictor, config.backend,
                                      config.pool.max_batch)),
      pool_(queue_, engine_, metrics_, config.pool) {
  pool_.start();
}

InferenceServer::~InferenceServer() { stop(); }

ServeRequest InferenceServer::make_request(linalg::Vector&& scene) {
  ServeRequest request;
  request.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  request.scene = std::move(scene);
  request.enqueue_time = Clock::now();
  if (config_.deadline_seconds > 0.0) {
    request.deadline =
        request.enqueue_time +
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(config_.deadline_seconds));
  }
  return request;
}

std::future<ServeResponse> InferenceServer::submit(linalg::Vector scene) {
  metrics_.submitted.fetch_add(1, std::memory_order_relaxed);
  ServeRequest request = make_request(std::move(scene));
  std::future<ServeResponse> future = request.promise.get_future();
  // A failed push leaves `request` (and its promise) with us.
  if (!queue_.try_push(std::move(request))) {
    fulfil_rejected(request);
    return future;
  }
  metrics_.note_queue_depth(queue_.size());
  return future;
}

std::future<ServeResponse> InferenceServer::submit_blocking(
    linalg::Vector scene) {
  metrics_.submitted.fetch_add(1, std::memory_order_relaxed);
  ServeRequest request = make_request(std::move(scene));
  std::future<ServeResponse> future = request.promise.get_future();
  if (!queue_.push(std::move(request))) {
    fulfil_rejected(request);
    return future;
  }
  metrics_.note_queue_depth(queue_.size());
  return future;
}

void InferenceServer::fulfil_rejected(ServeRequest& request) {
  metrics_.rejected.fetch_add(1, std::memory_order_relaxed);
  ServeResponse response;
  response.id = request.id;
  response.outcome = ServeOutcome::kRejected;
  request.promise.set_value(std::move(response));
}

void InferenceServer::stop() { pool_.stop(); }

}  // namespace safenn::serve
