#include "serve/worker_pool.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/log.hpp"

namespace safenn::serve {
namespace {

constexpr auto kRelaxed = std::memory_order_relaxed;

std::uint64_t to_ns(double seconds) {
  return seconds <= 0.0 ? 0
                        : static_cast<std::uint64_t>(seconds * 1e9);
}

std::uint64_t ns_between(Clock::time_point start, Clock::time_point end) {
  if (end <= start) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
          .count());
}

std::size_t watermark_depth(std::size_t capacity, double fraction) {
  const double f = std::clamp(fraction, 0.0, 1.0);
  const auto depth =
      static_cast<std::size_t>(std::floor(f * static_cast<double>(capacity)));
  return std::max<std::size_t>(1, depth);
}

/// Snapshot construction for the artifact paths: the full admission
/// resolution (float tolerance gate, or the quantized payload + bitwise
/// kernel gate) picks both the serving backend and the inner integer
/// kernel.
std::shared_ptr<const registry::ModelSnapshot> make_snapshot(
    const registry::ModelArtifact& artifact, linalg::KernelBackend requested,
    std::size_t max_batch) {
  const ResolvedBackend resolved =
      resolve_serving_backend(artifact, requested, max_batch);
  return std::make_shared<const registry::ModelSnapshot>(
      artifact, resolved.backend, resolved.quantized_kernel);
}

}  // namespace

void account_response(MetricsRegistry& metrics, VersionCounters& version,
                      VersionCounters& arith, ModelMetrics* model,
                      const ServeRequest& request, ServeResponse& response,
                      Clock::time_point dequeue_time) {
  response.queue_seconds =
      static_cast<double>(ns_between(request.enqueue_time, dequeue_time)) /
      1e9;
  switch (response.outcome) {
    case ServeOutcome::kServed:
      metrics.served.fetch_add(1, kRelaxed);
      version.served.fetch_add(1, kRelaxed);
      arith.served.fetch_add(1, kRelaxed);
      if (model != nullptr) model->counters.served.fetch_add(1, kRelaxed);
      break;
    case ServeOutcome::kClamped:
      metrics.clamped.fetch_add(1, kRelaxed);
      version.clamped.fetch_add(1, kRelaxed);
      arith.clamped.fetch_add(1, kRelaxed);
      if (model != nullptr) model->counters.clamped.fetch_add(1, kRelaxed);
      break;
    case ServeOutcome::kDegraded:
      metrics.degraded.fetch_add(1, kRelaxed);
      version.degraded.fetch_add(1, kRelaxed);
      arith.degraded.fetch_add(1, kRelaxed);
      if (model != nullptr) model->counters.degraded.fetch_add(1, kRelaxed);
      break;
    case ServeOutcome::kRejected:
      metrics.rejected.fetch_add(1, kRelaxed);
      break;
  }
  if (response.assumption_hit) {
    metrics.assumption_hits.fetch_add(1, kRelaxed);
    version.assumption_hits.fetch_add(1, kRelaxed);
    arith.assumption_hits.fetch_add(1, kRelaxed);
    if (model != nullptr) {
      model->counters.assumption_hits.fetch_add(1, kRelaxed);
    }
  }
  if (response.intervened) {
    metrics.interventions.fetch_add(1, kRelaxed);
    version.interventions.fetch_add(1, kRelaxed);
    arith.interventions.fetch_add(1, kRelaxed);
    if (model != nullptr) {
      model->counters.interventions.fetch_add(1, kRelaxed);
    }
  }
  metrics.queue_latency.record(ns_between(request.enqueue_time, dequeue_time));
  metrics.infer_latency.record(to_ns(response.infer_seconds));
  const std::uint64_t total_ns =
      ns_between(request.enqueue_time, Clock::now());
  metrics.total_latency.record(total_ns);
  if (model != nullptr) model->total_latency.record(total_ns);
}

const char* to_string(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kRejectWhenFull: return "reject-when-full";
    case AdmissionPolicy::kDegradeAtWatermark: return "degrade-at-watermark";
  }
  return "?";
}

WorkerPool::WorkerPool(RequestQueue& queue, const registry::LiveModel& live,
                       MetricsRegistry& metrics, WorkerPoolConfig config)
    : queue_(queue), live_(live), metrics_(metrics), config_(config) {
  if (config_.workers == 0) config_.workers = 1;
  if (config_.max_batch == 0) config_.max_batch = 1;
}

WorkerPool::~WorkerPool() { stop(); }

void WorkerPool::start() {
  if (running()) return;
  threads_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
  log_debug("serve: started ", config_.workers, " workers (max batch ",
            config_.max_batch, ")");
}

void WorkerPool::stop() {
  if (!running()) return;
  queue_.close();
  for (std::thread& t : threads_) t.join();
  threads_.clear();
  log_debug("serve: worker pool stopped after ", metrics_.completed(),
            " completed requests");
}

void WorkerPool::worker_loop() {
  std::vector<ServeRequest> batch;
  batch.reserve(config_.max_batch);
  for (;;) {
    batch.clear();
    const std::size_t n = queue_.pop_batch(batch, config_.max_batch);
    if (n == 0) return;  // closed and drained
    metrics_.batches.fetch_add(1, kRelaxed);
    metrics_.batch_items.fetch_add(n, kRelaxed);
    const Clock::time_point dequeue_time = Clock::now();
    // Pin the live snapshot for this whole batch: a concurrent reload()
    // affects the NEXT pop, never a batch already in flight.
    const std::shared_ptr<const registry::ModelSnapshot> snapshot =
        live_.current();
    const ShieldedEngine engine(*snapshot);
    VersionCounters& version = metrics_.version_counters(snapshot->version());
    VersionCounters& arith =
        metrics_.backend_counters(linalg::to_string(snapshot->backend()));
    // One batched forward for the whole micro-batch; the engine applies
    // the monitor's guard per row, so decisions match per-request serve().
    std::vector<ServeResponse> responses =
        engine.serve_batch(batch, dequeue_time);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      ServeRequest& request = batch[i];
      ServeResponse& response = responses[i];
      account_response(metrics_, version, arith, /*model=*/nullptr, request,
                       response, dequeue_time);
      request.promise.set_value(std::move(response));
    }
  }
}

InferenceServer::InferenceServer(const core::TrainedPredictor& predictor,
                                 const core::SafetyMonitor& monitor,
                                 Config config)
    : config_(config),
      queue_(config.queue_capacity),
      live_(std::make_shared<const registry::ModelSnapshot>(
          config.model_version, predictor, monitor,
          resolve_serving_backend(predictor, config.backend,
                                  config.pool.max_batch))),
      pool_(queue_, live_, metrics_, config.pool),
      watermark_depth_(
          watermark_depth(queue_.capacity(), config.queue_watermark)) {
  pool_.start();
}

InferenceServer::InferenceServer(const registry::ModelArtifact& artifact,
                                 Config config)
    : config_(config),
      queue_(config.queue_capacity),
      live_(make_snapshot(artifact, config.backend, config.pool.max_batch)),
      pool_(queue_, live_, metrics_, config.pool),
      watermark_depth_(
          watermark_depth(queue_.capacity(), config.queue_watermark)) {
  pool_.start();
}

InferenceServer::~InferenceServer() { stop(); }

linalg::KernelBackend InferenceServer::reload(
    const registry::ModelArtifact& artifact) {
  std::lock_guard<std::mutex> lock(reload_mu_);
  // Re-run the admission gate for the NEW artifact: kSimd's tolerance
  // gate and kQuantized's payload + bitwise-kernel gate are per
  // artifact, never inherited across a swap.
  std::shared_ptr<const registry::ModelSnapshot> next =
      make_snapshot(artifact, config_.backend, config_.pool.max_batch);
  const linalg::KernelBackend backend = next->backend();
  std::shared_ptr<const registry::ModelSnapshot> previous =
      live_.swap(std::move(next));
  metrics_.reloads.fetch_add(1, kRelaxed);
  log_info("serve: hot-swapped model ", previous->version(), " -> ",
           artifact.version, " (backend ", linalg::to_string(backend),
           ", hash ", artifact.content_hash,
           "); in-flight batches finish on ", previous->version());
  return backend;
}

ServeRequest InferenceServer::make_request(linalg::Vector&& scene) {
  ServeRequest request;
  request.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  request.scene = std::move(scene);
  request.enqueue_time = Clock::now();
  if (config_.deadline_seconds > 0.0) {
    request.deadline =
        request.enqueue_time +
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(config_.deadline_seconds));
  }
  return request;
}

std::future<ServeResponse> InferenceServer::submit(linalg::Vector scene) {
  metrics_.submitted.fetch_add(1, std::memory_order_relaxed);
  ServeRequest request = make_request(std::move(scene));
  std::future<ServeResponse> future = request.promise.get_future();
  if (config_.admission == AdmissionPolicy::kDegradeAtWatermark &&
      !queue_.closed() && queue_.size() >= watermark_depth_) {
    // Shed with the safe default: bounded latency AND a safe answer.
    fulfil_shed(request);
    return future;
  }
  // A failed push leaves `request` (and its promise) with us.
  if (!queue_.try_push(std::move(request))) {
    fulfil_rejected(request);
    return future;
  }
  metrics_.note_queue_depth(queue_.size());
  return future;
}

std::future<ServeResponse> InferenceServer::submit_blocking(
    linalg::Vector scene) {
  metrics_.submitted.fetch_add(1, std::memory_order_relaxed);
  ServeRequest request = make_request(std::move(scene));
  std::future<ServeResponse> future = request.promise.get_future();
  if (!queue_.push(std::move(request))) {
    fulfil_rejected(request);
    return future;
  }
  metrics_.note_queue_depth(queue_.size());
  return future;
}

void InferenceServer::fulfil_rejected(ServeRequest& request) {
  metrics_.rejected.fetch_add(1, std::memory_order_relaxed);
  ServeResponse response;
  response.id = request.id;
  response.outcome = ServeOutcome::kRejected;
  request.promise.set_value(std::move(response));
}

void InferenceServer::fulfil_shed(ServeRequest& request) {
  const std::shared_ptr<const registry::ModelSnapshot> snapshot =
      live_.current();
  metrics_.degraded.fetch_add(1, std::memory_order_relaxed);
  metrics_.shed.fetch_add(1, std::memory_order_relaxed);
  metrics_.version_counters(snapshot->version())
      .degraded.fetch_add(1, std::memory_order_relaxed);
  metrics_.backend_counters(linalg::to_string(snapshot->backend()))
      .degraded.fetch_add(1, std::memory_order_relaxed);
  metrics_.note_queue_depth(queue_.size());
  ServeResponse response;
  response.id = request.id;
  response.outcome = ServeOutcome::kDegraded;
  response.action = snapshot->monitor().safe_action();
  response.model_version = snapshot->version();
  response.backend = snapshot->backend();
  request.promise.set_value(std::move(response));
}

void InferenceServer::stop() { pool_.stop(); }

}  // namespace safenn::serve
