#include "serve/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

namespace safenn::serve {
namespace {

constexpr auto kRelaxed = std::memory_order_relaxed;

std::size_t bucket_index(std::uint64_t ns) {
  // bit_width(ns) = position of highest set bit + 1; bucket 0 holds ns<=1.
  const std::size_t idx = ns <= 1 ? 0 : std::bit_width(ns - 1);
  return std::min(idx, LatencyHistogram::kBuckets - 1);
}

double bucket_upper_ns(std::size_t idx) {
  return std::ldexp(1.0, static_cast<int>(idx));  // 2^idx
}

void json_histogram(std::ostringstream& os, const char* name,
                    const LatencyHistogram& h) {
  os << "    \"" << name << "\": {"
     << "\"count\": " << h.count()
     << ", \"mean_ms\": " << h.mean_ns() / 1e6
     << ", \"p50_ms\": " << h.percentile_ns(0.50) / 1e6
     << ", \"p95_ms\": " << h.percentile_ns(0.95) / 1e6
     << ", \"p99_ms\": " << h.percentile_ns(0.99) / 1e6 << "}";
}

}  // namespace

void LatencyHistogram::record(std::uint64_t ns) {
  buckets_[bucket_index(ns)].fetch_add(1, kRelaxed);
  count_.fetch_add(1, kRelaxed);
  sum_ns_.fetch_add(ns, kRelaxed);
}

std::uint64_t LatencyHistogram::count() const { return count_.load(kRelaxed); }

double LatencyHistogram::mean_ns() const {
  const std::uint64_t n = count_.load(kRelaxed);
  return n == 0 ? 0.0
               : static_cast<double>(sum_ns_.load(kRelaxed)) /
                     static_cast<double>(n);
}

double LatencyHistogram::percentile_ns(double p) const {
  const std::uint64_t n = count_.load(kRelaxed);
  if (n == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(p * static_cast<double>(n)));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cumulative += buckets_[i].load(kRelaxed);
    if (cumulative >= target && cumulative > 0) return bucket_upper_ns(i);
  }
  return bucket_upper_ns(kBuckets - 1);
}

void LatencyHistogram::reset() {
  for (auto& b : buckets_) b.store(0, kRelaxed);
  count_.store(0, kRelaxed);
  sum_ns_.store(0, kRelaxed);
}

std::uint64_t VersionCounters::completed() const {
  return served.load(kRelaxed) + clamped.load(kRelaxed) +
         degraded.load(kRelaxed);
}

void ModelMetrics::note_queue_depth(std::size_t depth) {
  std::uint64_t seen = queue_depth_peak.load(kRelaxed);
  while (depth > seen &&
         !queue_depth_peak.compare_exchange_weak(seen, depth, kRelaxed)) {
  }
}

VersionCounters& MetricsRegistry::version_counters(
    const std::string& version) {
  std::lock_guard<std::mutex> lock(versions_mu_);
  std::unique_ptr<VersionCounters>& slot = versions_[version];
  if (!slot) slot = std::make_unique<VersionCounters>();
  return *slot;
}

VersionCounters& MetricsRegistry::backend_counters(
    const std::string& backend) {
  std::lock_guard<std::mutex> lock(backends_mu_);
  std::unique_ptr<VersionCounters>& slot = backends_[backend];
  if (!slot) slot = std::make_unique<VersionCounters>();
  return *slot;
}

ModelMetrics& MetricsRegistry::model_metrics(const std::string& model_id) {
  std::lock_guard<std::mutex> lock(models_mu_);
  std::unique_ptr<ModelMetrics>& slot = models_[model_id];
  if (!slot) slot = std::make_unique<ModelMetrics>();
  return *slot;
}

void MetricsRegistry::note_queue_depth(std::size_t depth) {
  std::uint64_t seen = queue_depth_peak.load(kRelaxed);
  while (depth > seen &&
         !queue_depth_peak.compare_exchange_weak(seen, depth, kRelaxed)) {
  }
}

std::uint64_t MetricsRegistry::completed() const {
  return served.load(kRelaxed) + clamped.load(kRelaxed) +
         degraded.load(kRelaxed);
}

double MetricsRegistry::mean_batch_size() const {
  const std::uint64_t b = batches.load(kRelaxed);
  return b == 0 ? 0.0
               : static_cast<double>(batch_items.load(kRelaxed)) /
                     static_cast<double>(b);
}

std::string MetricsRegistry::to_json(double elapsed_seconds) const {
  std::ostringstream os;
  os << "{\n"
     << "  \"requests\": {"
     << "\"submitted\": " << submitted.load(kRelaxed)
     << ", \"served\": " << served.load(kRelaxed)
     << ", \"clamped\": " << clamped.load(kRelaxed)
     << ", \"degraded\": " << degraded.load(kRelaxed)
     << ", \"rejected\": " << rejected.load(kRelaxed) << "},\n"
     << "  \"shield\": {"
     << "\"assumption_hits\": " << assumption_hits.load(kRelaxed)
     << ", \"interventions\": " << interventions.load(kRelaxed) << "},\n"
     << "  \"batching\": {"
     << "\"batches\": " << batches.load(kRelaxed)
     << ", \"mean_batch_size\": " << mean_batch_size()
     << ", \"mixed_batches\": " << mixed_batches.load(kRelaxed)
     << ", \"queue_depth_peak\": " << queue_depth_peak.load(kRelaxed)
     << "},\n"
     << "  \"lifecycle\": {"
     << "\"shed\": " << shed.load(kRelaxed)
     << ", \"reloads\": " << reloads.load(kRelaxed) << "},\n"
     << "  \"versions\": {";
  {
    std::lock_guard<std::mutex> lock(versions_mu_);
    bool first = true;
    for (const auto& [version, counters] : versions_) {
      os << (first ? "\n" : ",\n") << "    \"" << version << "\": {"
         << "\"served\": " << counters->served.load(kRelaxed)
         << ", \"clamped\": " << counters->clamped.load(kRelaxed)
         << ", \"degraded\": " << counters->degraded.load(kRelaxed)
         << ", \"assumption_hits\": "
         << counters->assumption_hits.load(kRelaxed)
         << ", \"interventions\": " << counters->interventions.load(kRelaxed)
         << "}";
      first = false;
    }
    if (!first) os << "\n  ";
  }
  os << "},\n"
     << "  \"backends\": {";
  {
    std::lock_guard<std::mutex> lock(backends_mu_);
    bool first = true;
    for (const auto& [backend, counters] : backends_) {
      os << (first ? "\n" : ",\n") << "    \"" << backend << "\": {"
         << "\"served\": " << counters->served.load(kRelaxed)
         << ", \"clamped\": " << counters->clamped.load(kRelaxed)
         << ", \"degraded\": " << counters->degraded.load(kRelaxed)
         << ", \"assumption_hits\": "
         << counters->assumption_hits.load(kRelaxed)
         << ", \"interventions\": " << counters->interventions.load(kRelaxed)
         << "}";
      first = false;
    }
    if (!first) os << "\n  ";
  }
  os << "},\n"
     << "  \"models\": {";
  {
    std::lock_guard<std::mutex> lock(models_mu_);
    bool first = true;
    for (const auto& [model_id, m] : models_) {
      os << (first ? "\n" : ",\n") << "    \"" << model_id << "\": {"
         << "\"served\": " << m->counters.served.load(kRelaxed)
         << ", \"clamped\": " << m->counters.clamped.load(kRelaxed)
         << ", \"degraded\": " << m->counters.degraded.load(kRelaxed)
         << ", \"assumption_hits\": "
         << m->counters.assumption_hits.load(kRelaxed)
         << ", \"interventions\": "
         << m->counters.interventions.load(kRelaxed)
         << ", \"shed\": " << m->shed.load(kRelaxed)
         << ", \"batches\": " << m->batches.load(kRelaxed)
         << ", \"queue_depth_peak\": " << m->queue_depth_peak.load(kRelaxed)
         << ", \"p50_ms\": " << m->total_latency.percentile_ns(0.50) / 1e6
         << ", \"p95_ms\": " << m->total_latency.percentile_ns(0.95) / 1e6
         << ", \"p99_ms\": " << m->total_latency.percentile_ns(0.99) / 1e6
         << "}";
      first = false;
    }
    if (!first) os << "\n  ";
  }
  os << "},\n"
     << "  \"latency\": {\n";
  json_histogram(os, "queue", queue_latency);
  os << ",\n";
  json_histogram(os, "infer", infer_latency);
  os << ",\n";
  json_histogram(os, "total", total_latency);
  os << "\n  }";
  if (elapsed_seconds > 0.0) {
    os << ",\n  \"elapsed_seconds\": " << elapsed_seconds
       << ",\n  \"throughput_rps\": "
       << static_cast<double>(completed()) / elapsed_seconds;
  }
  os << "\n}";
  return os.str();
}

void MetricsRegistry::reset() {
  queue_latency.reset();
  infer_latency.reset();
  total_latency.reset();
  for (auto* c : {&submitted, &served, &clamped, &degraded, &rejected,
                  &assumption_hits, &interventions, &batches, &batch_items,
                  &mixed_batches, &queue_depth_peak, &shed, &reloads}) {
    c->store(0, kRelaxed);
  }
  // Zero in place: references handed out by version_counters() /
  // backend_counters() stay valid.
  {
    std::lock_guard<std::mutex> lock(versions_mu_);
    for (auto& [version, counters] : versions_) {
      for (auto* c : {&counters->served, &counters->clamped,
                      &counters->degraded, &counters->assumption_hits,
                      &counters->interventions}) {
        c->store(0, kRelaxed);
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(backends_mu_);
    for (auto& [backend, counters] : backends_) {
      for (auto* c : {&counters->served, &counters->clamped,
                      &counters->degraded, &counters->assumption_hits,
                      &counters->interventions}) {
        c->store(0, kRelaxed);
      }
    }
  }
  std::lock_guard<std::mutex> lock(models_mu_);
  for (auto& [model_id, m] : models_) {
    for (auto* c : {&m->counters.served, &m->counters.clamped,
                    &m->counters.degraded, &m->counters.assumption_hits,
                    &m->counters.interventions, &m->shed, &m->batches,
                    &m->queue_depth_peak}) {
      c->store(0, kRelaxed);
    }
    m->total_latency.reset();
  }
}

}  // namespace safenn::serve
