// Multi-model serving: N live models behind one admission budget.
//
// Topology (tentpole of the multi-model PR):
//
//   submit(model_id, scene)
//        |  route (frozen id -> slot map, no lock)
//        v
//   ModelTable ── Slot[alpha]: LiveModel + bounded RequestQueue
//              ── Slot[beta]:  LiveModel + bounded RequestQueue
//              ── shared: global depth counter + admission budget +
//                         WorkSignal
//        |
//        v
//   ShardedWorkerPool: worker w pins home shard (w % N) and drains it
//   first; when the home queue is empty it steals from the LONGEST
//   non-empty queue (ties -> lowest slot index); when every probe is
//   empty it parks on the shared WorkSignal.
//
// The load-bearing invariants:
//
//  * Micro-batches never mix models. A batch is always popped from ONE
//    slot's queue, so the per-(model, version) bitwise-replay proof of
//    the single-model server carries over unchanged — each model's
//    intervention/assumption counters must equal a sequential replay of
//    exactly the scenes that model served. The pool still counts a
//    `mixed_batches` violation metric (asserted 0 by the bench).
//
//  * One admission budget for the fleet. Queues are per model (a hot
//    model cannot starve a cold model's queue space), but admission —
//    the total number of requests enqueued across all models — is a
//    single global counter with a single watermark: shedding is a
//    statement about the fleet's total backlog, not about one model.
//
//  * Per-model hot swap, per-model backend re-gating. Each slot is its
//    own LiveModel: reload(model_id, artifact) re-runs the kernel
//    admission gate (float tolerance harness / quantized bitwise
//    harness) for the new artifact and swaps only that slot; in-flight
//    batches of every model finish on the snapshot they pinned.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "registry/live_model.hpp"
#include "serve/engine.hpp"
#include "serve/metrics.hpp"
#include "serve/request_queue.hpp"
#include "serve/worker_pool.hpp"

namespace safenn::serve {

/// Wakeup channel shared by every queue in a ModelTable: producers set
/// the global depth, consumers park here when every queue probe comes
/// back empty. Producers skip the condition variable entirely when no
/// worker is parked (the common case under load); the Dekker-style
/// seq_cst ordering between the depth increment and the waiter-count
/// read makes the skip safe — a worker that decided to park after
/// checking the depth is guaranteed visible to the producer.
class WorkSignal {
 public:
  /// Called by producers after publishing work (depth increment first).
  void wake_one();
  /// Marks the signal closed and wakes every parked worker.
  void close();
  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Parks until `pred()` holds. `pred` is evaluated under the signal
  /// mutex; it must be cheap (atomic loads).
  template <typename Pred>
  void wait(Pred pred) {
    std::unique_lock<std::mutex> lock(mu_);
    waiters_.fetch_add(1, std::memory_order_seq_cst);
    cv_.wait(lock, pred);
    waiters_.fetch_sub(1, std::memory_order_seq_cst);
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  // Mutated only under mu_; producers read it lock-free (seq_cst).
  std::atomic<std::uint64_t> waiters_{0};
  std::atomic<bool> closed_{false};
};

/// The table of live models plus the shared admission state. The slot
/// set is frozen at construction — lookups are lock-free — while each
/// slot's model hot-swaps independently through its LiveModel.
class ModelTable {
 public:
  struct Slot {
    Slot(std::string id, std::shared_ptr<const registry::ModelSnapshot> snap,
         std::size_t queue_capacity)
        : model_id(std::move(id)),
          live(std::move(snap)),
          queue(queue_capacity) {}

    const std::string model_id;
    registry::LiveModel live;
    RequestQueue queue;
  };

  /// `admission_budget` is the fleet-wide cap on enqueued requests.
  explicit ModelTable(std::size_t admission_budget);

  /// Adds a slot (construction phase only — before any traffic).
  void add_slot(std::string model_id,
                std::shared_ptr<const registry::ModelSnapshot> snapshot,
                std::size_t queue_capacity);

  Slot* find(const std::string& model_id);
  const Slot* find(const std::string& model_id) const;
  Slot& slot(std::size_t index) { return *slots_[index]; }
  const Slot& slot(std::size_t index) const { return *slots_[index]; }
  std::size_t size() const { return slots_.size(); }
  std::vector<std::string> model_ids() const;

  /// Reserves one unit of the global admission budget; false when the
  /// fleet backlog is at the cap (the caller rejects).
  bool reserve();
  /// Unconditional reservation (blocking producers bypass the cap; their
  /// backpressure is the per-model queue capacity).
  void reserve_unchecked();
  /// Returns `n` units after a pop (or after a failed per-queue push).
  void release(std::size_t n);

  std::size_t depth() const {
    return depth_.load(std::memory_order_seq_cst);
  }
  std::size_t budget() const { return budget_; }
  WorkSignal& signal() { return signal_; }

  /// Closes every queue and the signal (shutdown). Idempotent.
  void close_all();
  /// True once closed and every queue has been drained.
  bool drained() const;

 private:
  const std::size_t budget_;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::map<std::string, std::size_t> index_;  // frozen after construction
  std::atomic<std::uint64_t> depth_{0};
  WorkSignal signal_;
};

/// Work-stealing worker pool over a ModelTable. Identical serving
/// semantics to the single-model WorkerPool — snapshot pinned per popped
/// batch, one batched forward, per-row guard, account_response — plus
/// the per-model metric slice and the batch-purity check.
class ShardedWorkerPool {
 public:
  ShardedWorkerPool(ModelTable& table, MetricsRegistry& metrics,
                    WorkerPoolConfig config);
  ~ShardedWorkerPool();

  ShardedWorkerPool(const ShardedWorkerPool&) = delete;
  ShardedWorkerPool& operator=(const ShardedWorkerPool&) = delete;

  void start();
  /// Closes the table, drains every backlog, joins all workers.
  void stop();
  bool running() const { return !threads_.empty(); }
  std::size_t workers() const { return config_.workers; }

 private:
  void worker_loop(std::size_t worker_index);
  void process_batch(std::size_t slot_index,
                     std::vector<ServeRequest>& batch);

  ModelTable& table_;
  MetricsRegistry& metrics_;
  WorkerPoolConfig config_;
  std::vector<std::thread> threads_;
};

struct MultiModelConfig {
  /// Per-model queue bound (isolation: one model's backlog cannot evict
  /// another model's queue space).
  std::size_t queue_capacity = 256;
  /// Fleet-wide cap on enqueued requests, shared by all models.
  std::size_t admission_budget = 512;
  WorkerPoolConfig pool;
  /// Per-request service deadline from submit time; <= 0 means none.
  double deadline_seconds = 0.0;
  /// Requested kernel backend; gated per artifact exactly as in
  /// InferenceServer::Config (and re-gated on every reload).
  linalg::KernelBackend backend = linalg::KernelBackend::kReference;
  AdmissionPolicy admission = AdmissionPolicy::kRejectWhenFull;
  /// Fraction of `admission_budget` (clamped to (0, 1]) at which
  /// kDegradeAtWatermark sheds — on the FLEET depth, not the model's.
  double queue_watermark = 0.75;
};

/// A model entry the server is constructed from: routing id + the
/// registry artifact it initially serves (hot-swappable per id later).
struct ModelEntry {
  std::string model_id;
  registry::ModelArtifact artifact;
};

/// The multi-model serving facade: owns table + pool + metrics.
class MultiModelServer {
 public:
  /// Gates each artifact's backend and starts the workers immediately.
  /// Model ids must be unique and non-empty.
  MultiModelServer(const std::vector<ModelEntry>& models,
                   MultiModelConfig config);
  ~MultiModelServer();

  MultiModelServer(const MultiModelServer&) = delete;
  MultiModelServer& operator=(const MultiModelServer&) = delete;

  /// Admission-controlled submit. Unknown model id -> immediate
  /// kRejected; fleet depth at the watermark (kDegradeAtWatermark) ->
  /// immediate safe-action kDegraded answered with the ROUTED model's
  /// snapshot (shed counts against the fleet + the model's slice); fleet
  /// budget exhausted or the model's queue full -> kRejected. Never
  /// blocks.
  std::future<ServeResponse> submit(const std::string& model_id,
                                    linalg::Vector scene);

  /// Blocking submit: waits for space in the model's queue, bypassing
  /// watermark and global budget (replay producers want everything
  /// served). Rejects only for unknown ids or once stopped.
  std::future<ServeResponse> submit_blocking(const std::string& model_id,
                                             linalg::Vector scene);

  /// Hot-swaps ONE model under live traffic, re-running the backend
  /// admission gate for the new artifact. Returns the backend the slot
  /// now serves with. Throws safenn::Error on an unknown model id.
  linalg::KernelBackend reload(const std::string& model_id,
                               const registry::ModelArtifact& artifact);

  /// Stops accepting work, drains every backlog, joins. Idempotent.
  void stop();

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  std::size_t num_models() const { return table_.size(); }
  std::vector<std::string> model_ids() const { return table_.model_ids(); }
  /// Current fleet backlog (enqueued across all models).
  std::size_t depth() const { return table_.depth(); }
  /// Live version / backend of one model. Throws on unknown ids.
  std::string version(const std::string& model_id) const;
  linalg::KernelBackend backend(const std::string& model_id) const;

 private:
  /// Populates table_ from the model entries (called from the member
  /// initializer list, before the pool is constructed over the table).
  ModelTable& init_table(const std::vector<ModelEntry>& models);
  ServeRequest make_request(const std::string& model_id,
                            linalg::Vector&& scene);
  void fulfil_rejected(ServeRequest& request);
  void fulfil_shed(ModelTable::Slot& slot, ServeRequest& request);

  MultiModelConfig config_;
  MetricsRegistry metrics_;
  ModelTable table_;
  ShardedWorkerPool pool_;
  std::mutex reload_mu_;
  std::size_t watermark_depth_ = 0;
  std::atomic<std::uint64_t> next_id_{0};
};

}  // namespace safenn::serve
