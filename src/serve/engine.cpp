#include "serve/engine.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/log.hpp"
#include "linalg/qmatrix.hpp"
#include "linalg/verify_kernels.hpp"
#include "nn/qengine.hpp"

namespace safenn::serve {
namespace {

double seconds_since(Clock::time_point start, Clock::time_point end) {
  return std::chrono::duration<double>(end - start).count();
}

}  // namespace

linalg::KernelBackend resolve_serving_backend(
    const core::TrainedPredictor& predictor,
    linalg::KernelBackend requested, std::size_t max_batch) {
  return resolve_serving_backend(predictor.network, requested, max_batch);
}

linalg::KernelBackend resolve_serving_backend(
    const nn::Network& net, linalg::KernelBackend requested,
    std::size_t max_batch) {
  if (requested != linalg::KernelBackend::kSimd) return requested;
  // Pin the exact (batch, in, out) GEMM shapes this network will run,
  // on top of the harness's randomized + awkward shape sweep.
  linalg::KernelVerifyConfig config;
  for (std::size_t li = 0; li < net.num_layers(); ++li) {
    const nn::DenseLayer& layer = net.layer(li);
    config.extra_shapes.push_back(
        {max_batch == 0 ? 1 : max_batch, layer.in_size(), layer.out_size()});
  }
  const linalg::KernelReport report =
      linalg::verify_kernel_backend(requested, config);
  if (report.pass) {
    log_info("serve: simd kernel backend admitted (",
             linalg::to_string(report.isa), ", worst rms ", report.worst_rms,
             " <= tolerance ", report.worst_tolerance, ")");
    return requested;
  }
  log_warn("serve: simd kernel backend REJECTED by tolerance harness (",
           report.summary(), "); falling back to reference kernels");
  return linalg::KernelBackend::kReference;
}

ResolvedBackend resolve_serving_backend(
    const registry::ModelArtifact& artifact, linalg::KernelBackend requested,
    std::size_t max_batch) {
  if (requested != linalg::KernelBackend::kQuantized) {
    return {resolve_serving_backend(artifact.network, requested, max_batch)};
  }
  if (!artifact.quantized.has_value()) {
    log_warn("serve: kQuantized requested but artifact ", artifact.version,
             " carries no quantized payload; serving float reference "
             "kernels");
    return {linalg::KernelBackend::kReference};
  }
  try {
    // Probe-pack the payload: the same admission analysis (int16 weights,
    // int32 activations, int64 accumulator bounds over the declared
    // domain) the snapshot construction will run.
    const nn::QuantizedEngine probe(artifact.quantized->network,
                                    artifact.quantized->input_limit,
                                    linalg::KernelBackend::kReference);
    linalg::QuantKernelVerifyConfig config;
    config.extra_shapes = probe.gemm_shapes(max_batch == 0 ? 1 : max_batch);
    const linalg::QuantKernelReport report =
        linalg::verify_quantized_kernels(config);
    if (report.pass) {
      log_info("serve: quantized engine admitted (",
               linalg::to_string(report.isa),
               " bitwise equal to the scalar integer reference over ",
               report.checks.size(), " shapes)");
      return {linalg::KernelBackend::kQuantized,
              linalg::KernelBackend::kQuantized};
    }
    // Integer kernels carry no tolerance: any bitwise violation demotes
    // the inner kernel to the scalar reference, which IS the verified
    // semantics — the quantized backend itself stays admitted.
    log_warn("serve: quantized SIMD kernels REJECTED by bitwise harness (",
             report.summary(), "); serving the scalar integer kernels");
    return {linalg::KernelBackend::kQuantized,
            linalg::KernelBackend::kReference};
  } catch (const nn::QuantizeError& e) {
    log_warn("serve: quantized payload of artifact ", artifact.version,
             " failed packing admission (", e.what(),
             "); serving float reference kernels");
    return {linalg::KernelBackend::kReference};
  }
}

ShieldedEngine::ShieldedEngine(const core::TrainedPredictor& predictor,
                               const core::SafetyMonitor& monitor,
                               linalg::KernelBackend backend,
                               std::string version)
    : predictor_(predictor),
      monitor_(monitor),
      backend_(backend),
      version_(std::move(version)) {
  require(backend_ != linalg::KernelBackend::kQuantized,
          "ShieldedEngine: kQuantized requires a snapshot carrying a "
          "packed quantized engine");
}

ShieldedEngine::ShieldedEngine(const registry::ModelSnapshot& snapshot)
    : predictor_(snapshot.predictor()),
      monitor_(snapshot.monitor()),
      backend_(snapshot.backend()),
      version_(snapshot.version()),
      qengine_(snapshot.quantized_engine()) {
  require(backend_ != linalg::KernelBackend::kQuantized ||
              qengine_ != nullptr,
          "ShieldedEngine: kQuantized snapshot has no packed engine");
}

void ShieldedEngine::predict_means(const linalg::Matrix& scenes,
                                   std::vector<linalg::Vector>& means) const {
  means.resize(scenes.rows());
  if (qengine_ != nullptr) {
    // Exact integer path: saturating quantize -> packed fixed-point
    // forward (bitwise equal to the scalar QuantizedNetwork reference)
    // -> de-quantize -> the same MDN head parse the float path uses.
    nn::QuantizedEngine::Scratch scratch;
    linalg::Matrix raw;
    qengine_->forward_real_batch(scenes, scratch, raw);
    linalg::Vector row(raw.cols());
    for (std::size_t r = 0; r < scenes.rows(); ++r) {
      std::copy(raw.data() + r * raw.cols(),
                raw.data() + (r + 1) * raw.cols(), row.data());
      means[r] = predictor_.head.parse(row).mean();
    }
    return;
  }
  const std::vector<nn::GaussianMixture> mixtures =
      predictor_.predict_batch(scenes, backend_);
  for (std::size_t r = 0; r < scenes.rows(); ++r) {
    means[r] = mixtures[r].mean();
  }
}

ServeResponse ShieldedEngine::serve(const ServeRequest& request,
                                    Clock::time_point now) const {
  ServeResponse response;
  response.id = request.id;
  response.model_id = request.model_id;
  response.model_version = version_;
  response.backend = backend_;
  if (now > request.deadline) {
    // Bounded-latency fallback: the deadline is already blown, so answer
    // with the provably safe action instead of a late prediction.
    response.outcome = ServeOutcome::kDegraded;
    response.action = monitor_.safe_action();
    return response;
  }
  const Clock::time_point start = Clock::now();
  core::GuardDecision decision;
  if (qengine_ != nullptr) {
    // Single-request quantized serve is the batched path at batch 1 —
    // same arithmetic, same bits, as serve_batch demands.
    linalg::Matrix scene(1, request.scene.size());
    std::copy(request.scene.data(),
              request.scene.data() + request.scene.size(), scene.data());
    std::vector<linalg::Vector> means;
    predict_means(scene, means);
    decision = monitor_.guard_action(request.scene, means.front());
  } else {
    decision = monitor_.guard(predictor_, request.scene);
  }
  response.infer_seconds = seconds_since(start, Clock::now());
  response.outcome =
      decision.intervened ? ServeOutcome::kClamped : ServeOutcome::kServed;
  response.action = std::move(decision.action);
  response.assumption_hit = decision.assumption_hit;
  response.intervened = decision.intervened;
  return response;
}

std::vector<ServeResponse> ShieldedEngine::serve_batch(
    const std::vector<ServeRequest>& requests, Clock::time_point now) const {
  std::vector<ServeResponse> responses(requests.size());
  // Deadline triage first: expired requests get the safe fallback and
  // never touch the predictor (same policy as serve()).
  std::vector<std::size_t> live;
  live.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    responses[i].id = requests[i].id;
    responses[i].model_id = requests[i].model_id;
    responses[i].model_version = version_;
    responses[i].backend = backend_;
    if (now > requests[i].deadline) {
      responses[i].outcome = ServeOutcome::kDegraded;
      responses[i].action = monitor_.safe_action();
    } else {
      live.push_back(i);
    }
  }
  if (live.empty()) return responses;

  const Clock::time_point start = Clock::now();
  linalg::Matrix scenes(live.size(), requests[live.front()].scene.size());
  for (std::size_t r = 0; r < live.size(); ++r) {
    const linalg::Vector& s = requests[live[r]].scene;
    require(s.size() == scenes.cols(), "serve_batch: ragged scene widths");
    std::copy(s.data(), s.data() + s.size(),
              scenes.data() + r * scenes.cols());
  }
  std::vector<linalg::Vector> means;
  predict_means(scenes, means);
  for (std::size_t r = 0; r < live.size(); ++r) {
    const std::size_t i = live[r];
    core::GuardDecision decision =
        monitor_.guard_action(requests[i].scene, means[r]);
    ServeResponse& response = responses[i];
    response.outcome =
        decision.intervened ? ServeOutcome::kClamped : ServeOutcome::kServed;
    response.action = std::move(decision.action);
    response.assumption_hit = decision.assumption_hit;
    response.intervened = decision.intervened;
  }
  const double per_row_seconds = seconds_since(start, Clock::now()) /
                                 static_cast<double>(live.size());
  for (const std::size_t i : live) {
    responses[i].infer_seconds = per_row_seconds;
  }
  return responses;
}

}  // namespace safenn::serve
