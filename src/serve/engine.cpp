#include "serve/engine.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/log.hpp"
#include "linalg/verify_kernels.hpp"

namespace safenn::serve {
namespace {

double seconds_since(Clock::time_point start, Clock::time_point end) {
  return std::chrono::duration<double>(end - start).count();
}

}  // namespace

linalg::KernelBackend resolve_serving_backend(
    const core::TrainedPredictor& predictor,
    linalg::KernelBackend requested, std::size_t max_batch) {
  return resolve_serving_backend(predictor.network, requested, max_batch);
}

linalg::KernelBackend resolve_serving_backend(
    const nn::Network& net, linalg::KernelBackend requested,
    std::size_t max_batch) {
  if (requested != linalg::KernelBackend::kSimd) return requested;
  // Pin the exact (batch, in, out) GEMM shapes this network will run,
  // on top of the harness's randomized + awkward shape sweep.
  linalg::KernelVerifyConfig config;
  for (std::size_t li = 0; li < net.num_layers(); ++li) {
    const nn::DenseLayer& layer = net.layer(li);
    config.extra_shapes.push_back(
        {max_batch == 0 ? 1 : max_batch, layer.in_size(), layer.out_size()});
  }
  const linalg::KernelReport report =
      linalg::verify_kernel_backend(requested, config);
  if (report.pass) {
    log_info("serve: simd kernel backend admitted (",
             linalg::to_string(report.isa), ", worst rms ", report.worst_rms,
             " <= tolerance ", report.worst_tolerance, ")");
    return requested;
  }
  log_warn("serve: simd kernel backend REJECTED by tolerance harness (",
           report.summary(), "); falling back to reference kernels");
  return linalg::KernelBackend::kReference;
}

ShieldedEngine::ShieldedEngine(const core::TrainedPredictor& predictor,
                               const core::SafetyMonitor& monitor,
                               linalg::KernelBackend backend,
                               std::string version)
    : predictor_(predictor),
      monitor_(monitor),
      backend_(backend),
      version_(std::move(version)) {}

ShieldedEngine::ShieldedEngine(const registry::ModelSnapshot& snapshot)
    : ShieldedEngine(snapshot.predictor(), snapshot.monitor(),
                     snapshot.backend(), snapshot.version()) {}

ServeResponse ShieldedEngine::serve(const ServeRequest& request,
                                    Clock::time_point now) const {
  ServeResponse response;
  response.id = request.id;
  response.model_version = version_;
  if (now > request.deadline) {
    // Bounded-latency fallback: the deadline is already blown, so answer
    // with the provably safe action instead of a late prediction.
    response.outcome = ServeOutcome::kDegraded;
    response.action = monitor_.safe_action();
    return response;
  }
  const Clock::time_point start = Clock::now();
  core::GuardDecision decision = monitor_.guard(predictor_, request.scene);
  response.infer_seconds = seconds_since(start, Clock::now());
  response.outcome =
      decision.intervened ? ServeOutcome::kClamped : ServeOutcome::kServed;
  response.action = std::move(decision.action);
  response.assumption_hit = decision.assumption_hit;
  response.intervened = decision.intervened;
  return response;
}

std::vector<ServeResponse> ShieldedEngine::serve_batch(
    const std::vector<ServeRequest>& requests, Clock::time_point now) const {
  std::vector<ServeResponse> responses(requests.size());
  // Deadline triage first: expired requests get the safe fallback and
  // never touch the predictor (same policy as serve()).
  std::vector<std::size_t> live;
  live.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    responses[i].id = requests[i].id;
    responses[i].model_version = version_;
    if (now > requests[i].deadline) {
      responses[i].outcome = ServeOutcome::kDegraded;
      responses[i].action = monitor_.safe_action();
    } else {
      live.push_back(i);
    }
  }
  if (live.empty()) return responses;

  const Clock::time_point start = Clock::now();
  linalg::Matrix scenes(live.size(), requests[live.front()].scene.size());
  for (std::size_t r = 0; r < live.size(); ++r) {
    const linalg::Vector& s = requests[live[r]].scene;
    require(s.size() == scenes.cols(), "serve_batch: ragged scene widths");
    std::copy(s.data(), s.data() + s.size(),
              scenes.data() + r * scenes.cols());
  }
  const std::vector<nn::GaussianMixture> mixtures =
      predictor_.predict_batch(scenes, backend_);
  for (std::size_t r = 0; r < live.size(); ++r) {
    const std::size_t i = live[r];
    core::GuardDecision decision =
        monitor_.guard_action(requests[i].scene, mixtures[r].mean());
    ServeResponse& response = responses[i];
    response.outcome =
        decision.intervened ? ServeOutcome::kClamped : ServeOutcome::kServed;
    response.action = std::move(decision.action);
    response.assumption_hit = decision.assumption_hit;
    response.intervened = decision.intervened;
  }
  const double per_row_seconds = seconds_since(start, Clock::now()) /
                                 static_cast<double>(live.size());
  for (const std::size_t i : live) {
    responses[i].infer_seconds = per_row_seconds;
  }
  return responses;
}

}  // namespace safenn::serve
