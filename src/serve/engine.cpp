#include "serve/engine.hpp"

namespace safenn::serve {
namespace {

double seconds_since(Clock::time_point start, Clock::time_point end) {
  return std::chrono::duration<double>(end - start).count();
}

}  // namespace

ShieldedEngine::ShieldedEngine(const core::TrainedPredictor& predictor,
                               const core::SafetyMonitor& monitor)
    : predictor_(predictor), monitor_(monitor) {}

ServeResponse ShieldedEngine::serve(const ServeRequest& request,
                                    Clock::time_point now) const {
  ServeResponse response;
  response.id = request.id;
  if (now > request.deadline) {
    // Bounded-latency fallback: the deadline is already blown, so answer
    // with the provably safe action instead of a late prediction.
    response.outcome = ServeOutcome::kDegraded;
    response.action = monitor_.safe_action();
    return response;
  }
  const Clock::time_point start = Clock::now();
  core::GuardDecision decision = monitor_.guard(predictor_, request.scene);
  response.infer_seconds = seconds_since(start, Clock::now());
  response.outcome =
      decision.intervened ? ServeOutcome::kClamped : ServeOutcome::kServed;
  response.action = std::move(decision.action);
  response.assumption_hit = decision.assumption_hit;
  response.intervened = decision.intervened;
  return response;
}

}  // namespace safenn::serve
