// Two's-complement bit-vector arithmetic over CNF.
//
// The word-level layer of the Sec. IV(ii) pipeline: quantized-network
// semantics (constant multiply, accumulate, arithmetic shift, ReLU,
// signed compare) compiled to clauses through GateBuilder.
#pragma once

#include <cstdint>
#include <vector>

#include "sat/solver.hpp"
#include "smt/bitblast.hpp"

namespace safenn::smt {

/// A signed (two's complement) bit-vector; bits are CNF literals, LSB
/// first. Width is fixed at construction of each value.
struct BitVec {
  std::vector<sat::Lit> bits;

  std::size_t width() const { return bits.size(); }
  sat::Lit sign() const { return bits.back(); }
};

/// Word-level circuit builder.
class BitVecBuilder {
 public:
  explicit BitVecBuilder(GateBuilder& gates) : g_(gates) {}

  /// Fresh unconstrained input of the given width.
  BitVec input(std::size_t width);

  /// Constant value (must fit in `width` signed bits; checked).
  BitVec constant(std::int64_t value, std::size_t width);

  /// Sign extension to a wider width (no-op when equal).
  BitVec sign_extend(const BitVec& a, std::size_t width) const;

  /// a + b (equal widths; wraps on overflow — size widths to prevent it).
  BitVec add(const BitVec& a, const BitVec& b);

  /// a - b.
  BitVec sub(const BitVec& a, const BitVec& b);

  /// Two's complement negation.
  BitVec negate(const BitVec& a);

  /// a * c for a compile-time constant c (shift-and-add on set bits).
  /// Result has width `out_width`; caller guarantees no overflow.
  BitVec mul_const(const BitVec& a, std::int64_t c, std::size_t out_width);

  /// Arithmetic shift right by `k` (floor division by 2^k), width kept.
  BitVec ashr(const BitVec& a, std::size_t k) const;

  /// max(0, a): zero when the sign bit is set.
  BitVec relu(const BitVec& a);

  /// Signed comparisons.
  sat::Lit less_than(const BitVec& a, const BitVec& b);     // a < b
  sat::Lit less_equal(const BitVec& a, const BitVec& b);    // a <= b
  sat::Lit equal(const BitVec& a, const BitVec& b);

  /// Asserts lo <= a <= hi (signed constants).
  void assert_in_range(const BitVec& a, std::int64_t lo, std::int64_t hi);

  GateBuilder& gates() { return g_; }

  /// Decodes a bit-vector value from a satisfying model.
  std::int64_t decode(const BitVec& a, const sat::Solver& solver) const;

 private:
  GateBuilder& g_;
};

/// Number of signed bits needed to represent every value in [-m, m].
std::size_t bits_for_magnitude(std::int64_t m);

}  // namespace safenn::smt
