#include "smt/bitblast.hpp"

namespace safenn::smt {

using sat::Lit;

GateBuilder::GateBuilder(sat::Cnf& cnf) : cnf_(cnf) {
  true_lit_ = cnf_.new_var();
  cnf_.add_unit(true_lit_);
}

Lit GateBuilder::land(Lit a, Lit b) {
  if (is_const(a)) return const_value(a) ? b : false_lit();
  if (is_const(b)) return const_value(b) ? a : false_lit();
  if (a == b) return a;
  if (a == -b) return false_lit();
  const Lit x = cnf_.new_var();
  cnf_.add_binary(-x, a);
  cnf_.add_binary(-x, b);
  cnf_.add_ternary(-a, -b, x);
  return x;
}

Lit GateBuilder::lor(Lit a, Lit b) { return -land(-a, -b); }

Lit GateBuilder::lxor(Lit a, Lit b) {
  if (is_const(a)) return const_value(a) ? -b : b;
  if (is_const(b)) return const_value(b) ? -a : a;
  if (a == b) return false_lit();
  if (a == -b) return true_lit();
  const Lit x = cnf_.new_var();
  cnf_.add_ternary(-a, -b, -x);
  cnf_.add_ternary(a, b, -x);
  cnf_.add_ternary(a, -b, x);
  cnf_.add_ternary(-a, b, x);
  return x;
}

Lit GateBuilder::majority(Lit a, Lit b, Lit c) {
  // Fold constants: maj(1,b,c) = b|c; maj(0,b,c) = b&c.
  if (is_const(a)) return const_value(a) ? lor(b, c) : land(b, c);
  if (is_const(b)) return const_value(b) ? lor(a, c) : land(a, c);
  if (is_const(c)) return const_value(c) ? lor(a, b) : land(a, b);
  const Lit x = cnf_.new_var();
  cnf_.add_ternary(-a, -b, x);
  cnf_.add_ternary(-a, -c, x);
  cnf_.add_ternary(-b, -c, x);
  cnf_.add_ternary(a, b, -x);
  cnf_.add_ternary(a, c, -x);
  cnf_.add_ternary(b, c, -x);
  return x;
}

Lit GateBuilder::parity(Lit a, Lit b, Lit c) { return lxor(lxor(a, b), c); }

Lit GateBuilder::mux(Lit sel, Lit a, Lit b) {
  if (is_const(sel)) return const_value(sel) ? a : b;
  if (a == b) return a;
  // x = (sel & a) | (!sel & b)
  return lor(land(sel, a), land(-sel, b));
}

void GateBuilder::assert_true(Lit l) {
  if (is_const(l)) {
    if (!const_value(l)) cnf_.add_clause({});  // unsatisfiable
    return;
  }
  cnf_.add_unit(l);
}

}  // namespace safenn::smt
