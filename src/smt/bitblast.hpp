// Gate-level Tseitin encoding primitives.
//
// Every gate allocates (at most) one fresh CNF variable and the defining
// clauses. Constant inputs are folded so that multiplying by constant
// weights — the common case when bit-blasting a quantized network —
// produces compact formulas.
#pragma once

#include "sat/cnf.hpp"

namespace safenn::smt {

/// Wraps a Cnf with a constant-true literal and folding gate constructors.
class GateBuilder {
 public:
  explicit GateBuilder(sat::Cnf& cnf);

  sat::Cnf& cnf() { return cnf_; }

  sat::Lit true_lit() const { return true_lit_; }
  sat::Lit false_lit() const { return -true_lit_; }

  bool is_const(sat::Lit l) const {
    return l == true_lit_ || l == -true_lit_;
  }
  bool const_value(sat::Lit l) const { return l == true_lit_; }

  /// Negation is free.
  static sat::Lit lnot(sat::Lit a) { return -a; }

  sat::Lit land(sat::Lit a, sat::Lit b);
  sat::Lit lor(sat::Lit a, sat::Lit b);
  sat::Lit lxor(sat::Lit a, sat::Lit b);
  /// Three-input majority (the carry function of a full adder).
  sat::Lit majority(sat::Lit a, sat::Lit b, sat::Lit c);
  /// Three-input parity (the sum function of a full adder).
  sat::Lit parity(sat::Lit a, sat::Lit b, sat::Lit c);
  /// sel ? a : b.
  sat::Lit mux(sat::Lit sel, sat::Lit a, sat::Lit b);

  /// Forces `l` true in every model.
  void assert_true(sat::Lit l);

 private:
  sat::Cnf& cnf_;
  sat::Lit true_lit_;
};

}  // namespace safenn::smt
