#include "smt/bitvector.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace safenn::smt {

using sat::Lit;

std::size_t bits_for_magnitude(std::int64_t m) {
  require(m >= 0, "bits_for_magnitude: magnitude must be non-negative");
  std::size_t bits = 1;  // sign bit
  std::uint64_t v = static_cast<std::uint64_t>(m);
  while (v > 0) {
    ++bits;
    v >>= 1;
  }
  return bits;
}

BitVec BitVecBuilder::input(std::size_t width) {
  require(width >= 1, "BitVecBuilder::input: zero width");
  BitVec out;
  out.bits.reserve(width);
  for (std::size_t i = 0; i < width; ++i) out.bits.push_back(g_.cnf().new_var());
  return out;
}

BitVec BitVecBuilder::constant(std::int64_t value, std::size_t width) {
  require(width >= 1 && width <= 63, "BitVecBuilder::constant: bad width");
  // Verify the value fits in `width` signed bits.
  const std::int64_t lo = -(std::int64_t{1} << (width - 1));
  const std::int64_t hi = (std::int64_t{1} << (width - 1)) - 1;
  require(value >= lo && value <= hi,
          "BitVecBuilder::constant: value does not fit in width");
  BitVec out;
  out.bits.reserve(width);
  for (std::size_t i = 0; i < width; ++i) {
    out.bits.push_back(((value >> i) & 1) ? g_.true_lit() : g_.false_lit());
  }
  return out;
}

BitVec BitVecBuilder::sign_extend(const BitVec& a, std::size_t width) const {
  require(width >= a.width(), "BitVecBuilder::sign_extend: narrower target");
  BitVec out = a;
  out.bits.resize(width, a.sign());
  return out;
}

BitVec BitVecBuilder::add(const BitVec& a, const BitVec& b) {
  require(a.width() == b.width(), "BitVecBuilder::add: width mismatch");
  BitVec out;
  out.bits.reserve(a.width());
  Lit carry = g_.false_lit();
  for (std::size_t i = 0; i < a.width(); ++i) {
    out.bits.push_back(g_.parity(a.bits[i], b.bits[i], carry));
    carry = g_.majority(a.bits[i], b.bits[i], carry);
  }
  return out;
}

BitVec BitVecBuilder::sub(const BitVec& a, const BitVec& b) {
  // a - b = a + ~b + 1 via an initial carry of 1.
  require(a.width() == b.width(), "BitVecBuilder::sub: width mismatch");
  BitVec out;
  out.bits.reserve(a.width());
  Lit carry = g_.true_lit();
  for (std::size_t i = 0; i < a.width(); ++i) {
    out.bits.push_back(g_.parity(a.bits[i], -b.bits[i], carry));
    carry = g_.majority(a.bits[i], -b.bits[i], carry);
  }
  return out;
}

BitVec BitVecBuilder::negate(const BitVec& a) {
  return sub(constant(0, a.width()), a);
}

BitVec BitVecBuilder::mul_const(const BitVec& a, std::int64_t c,
                                std::size_t out_width) {
  require(out_width >= a.width(), "BitVecBuilder::mul_const: narrow result");
  if (c == 0) return constant(0, out_width);
  const bool negative = c < 0;
  std::uint64_t mag = negative ? static_cast<std::uint64_t>(-c)
                               : static_cast<std::uint64_t>(c);
  const BitVec wide = sign_extend(a, out_width);
  BitVec acc = constant(0, out_width);
  bool first = true;
  for (std::size_t k = 0; mag != 0; ++k, mag >>= 1) {
    if (!(mag & 1)) continue;
    // wide << k within out_width.
    BitVec shifted;
    shifted.bits.assign(k, g_.false_lit());
    for (std::size_t i = 0; i + k < out_width; ++i) {
      shifted.bits.push_back(wide.bits[i]);
    }
    shifted.bits.resize(out_width, g_.false_lit());
    if (first) {
      acc = shifted;
      first = false;
    } else {
      acc = add(acc, shifted);
    }
  }
  return negative ? negate(acc) : acc;
}

BitVec BitVecBuilder::ashr(const BitVec& a, std::size_t k) const {
  BitVec out;
  out.bits.reserve(a.width());
  for (std::size_t i = 0; i < a.width(); ++i) {
    const std::size_t src = i + k;
    out.bits.push_back(src < a.width() ? a.bits[src] : a.sign());
  }
  return out;
}

BitVec BitVecBuilder::relu(const BitVec& a) {
  const Lit nonneg = -a.sign();
  BitVec out;
  out.bits.reserve(a.width());
  for (std::size_t i = 0; i < a.width(); ++i) {
    out.bits.push_back(g_.land(a.bits[i], nonneg));
  }
  return out;
}

Lit BitVecBuilder::less_than(const BitVec& a, const BitVec& b) {
  // Signed a < b  <=>  sign(a - b) with one extra bit to avoid overflow.
  const std::size_t w = std::max(a.width(), b.width()) + 1;
  const BitVec diff = sub(sign_extend(a, w), sign_extend(b, w));
  return diff.sign();
}

Lit BitVecBuilder::less_equal(const BitVec& a, const BitVec& b) {
  return -less_than(b, a);
}

Lit BitVecBuilder::equal(const BitVec& a, const BitVec& b) {
  require(a.width() == b.width(), "BitVecBuilder::equal: width mismatch");
  Lit acc = g_.true_lit();
  for (std::size_t i = 0; i < a.width(); ++i) {
    acc = g_.land(acc, -g_.lxor(a.bits[i], b.bits[i]));
  }
  return acc;
}

void BitVecBuilder::assert_in_range(const BitVec& a, std::int64_t lo,
                                    std::int64_t hi) {
  require(lo <= hi, "BitVecBuilder::assert_in_range: empty range");
  const std::size_t w = a.width() + 1;
  g_.assert_true(less_equal(constant(lo, w), sign_extend(a, w)));
  g_.assert_true(less_equal(sign_extend(a, w), constant(hi, w)));
}

std::int64_t BitVecBuilder::decode(const BitVec& a,
                                   const sat::Solver& solver) const {
  require(a.width() <= 63, "BitVecBuilder::decode: width too large");
  std::uint64_t raw = 0;
  for (std::size_t i = 0; i < a.width(); ++i) {
    const Lit l = a.bits[i];
    bool bit;
    if (g_.is_const(l)) {
      bit = g_.const_value(l);
    } else {
      const bool var_val = solver.model_value(sat::lit_var(l));
      bit = sat::lit_sign(l) ? !var_val : var_val;
    }
    if (bit) raw |= (std::uint64_t{1} << i);
  }
  // Sign-extend from a.width() bits.
  if (raw & (std::uint64_t{1} << (a.width() - 1))) {
    raw |= ~((std::uint64_t{1} << a.width()) - 1);
  }
  return static_cast<std::int64_t>(raw);
}

}  // namespace safenn::smt
