// Quantized-network verification via bit-blasting (paper Sec. IV(ii)).
//
// The quantized network's exact integer semantics (nn/quantize.hpp) is
// compiled gate-for-gate into CNF: constant-weight multiplies, a
// ripple-carry accumulation tree, arithmetic shift back to the working
// format, and a mux-based ReLU. A safety query "output[o] <= threshold
// for all inputs in the box" becomes one SAT call: assert the negation
// (output > threshold) and ask for a model — UNSAT proves the property,
// a model is a concrete counterexample input.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "nn/quantize.hpp"
#include "sat/solver.hpp"
#include "verify/interval.hpp"

namespace safenn::smt {

struct QnnVerdict {
  sat::SatResult sat = sat::SatResult::kUnknown;
  /// When SAT (property violated): the counterexample input, real units.
  std::optional<linalg::Vector> counterexample;
  /// Output value the quantized network produces at the counterexample.
  double output_value = 0.0;
  int cnf_variables = 0;
  std::size_t cnf_clauses = 0;
  double seconds = 0.0;
  sat::SolverStats solver_stats;
};

struct QnnVerifierOptions {
  sat::SolverOptions solver;
};

/// Verifies "forall x in box: quantized_net(x)[output_index] <= threshold".
/// Returns UNSAT (=> property proved for the quantized network), SAT with
/// counterexample, or Unknown on budget exhaustion.
QnnVerdict prove_quantized_output_bound(
    const nn::QuantizedNetwork& qnet, const verify::Box& input_box,
    std::size_t output_index, double threshold,
    const QnnVerifierOptions& options = {});

/// Exact maximum of the quantized output over the box, found by binary
/// search over thresholds with repeated SAT calls. Intended for small
/// networks (each probe is one SAT solve).
struct QnnMaxResult {
  bool exact = false;         // false when a probe returned Unknown
  double max_value = 0.0;     // highest SAT-witnessed value
  /// Sound upper bound on the quantized maximum: the tightest UNSAT-proved
  /// threshold so far, or the caller's search_hi when no probe proved one.
  /// Valid even when a probe returned Unknown (exact == false), which is
  /// what lets a racing portfolio use an interrupted search's partial
  /// result.
  double upper_bound = 0.0;
  int probes = 0;
  double seconds = 0.0;
};

QnnMaxResult maximize_quantized_output(const nn::QuantizedNetwork& qnet,
                                       const verify::Box& input_box,
                                       std::size_t output_index,
                                       double search_lo, double search_hi,
                                       const QnnVerifierOptions& options = {});

/// Replays one already-quantized input through the CNF circuit: every
/// input bit-vector is pinned to the given fixed-point value (lo == hi),
/// the circuit is solved (trivially satisfiable), and the decoded output
/// words are returned in frac_bits format. This closes the serving loop:
/// a deployed quantized artifact's served outputs can be replayed
/// gate-for-gate through the very circuit the SMT stack verifies —
/// bench_quantized_serve demands bitwise equality with the served bits.
std::vector<std::int64_t> eval_quantized_through_cnf(
    const nn::QuantizedNetwork& qnet,
    const std::vector<std::int64_t>& input_fixed,
    const QnnVerifierOptions& options = {});

}  // namespace safenn::smt
