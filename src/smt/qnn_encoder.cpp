#include "smt/qnn_encoder.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stopwatch.hpp"
#include "smt/bitvector.hpp"

namespace safenn::smt {
namespace {

/// Builds the full network circuit; returns the input and output vectors.
struct Circuit {
  sat::Cnf cnf;
  std::vector<BitVec> inputs;
  std::vector<BitVec> outputs;
  std::size_t word_width = 0;
};

/// Circuit over explicit fixed-point input ranges (in_lo[i] <= x[i] <=
/// in_hi[i], frac_bits format). Equal bounds pin the input exactly —
/// the replay path — without a double round trip.
Circuit build_circuit_fixed(const nn::QuantizedNetwork& qnet,
                            const std::vector<std::int64_t>& in_lo,
                            const std::vector<std::int64_t>& in_hi) {
  require(in_lo.size() == qnet.input_size() &&
              in_hi.size() == qnet.input_size(),
          "build_circuit: input bound dimension mismatch");
  std::int64_t max_in_mag = 1;
  for (std::size_t i = 0; i < in_lo.size(); ++i) {
    require(in_lo[i] <= in_hi[i],
            "build_circuit: box empty after quantization");
    max_in_mag = std::max(
        {max_in_mag, static_cast<std::int64_t>(std::llabs(in_lo[i])),
         static_cast<std::int64_t>(std::llabs(in_hi[i]))});
  }

  // Word width: large enough for the worst accumulator anywhere.
  const auto acc_bounds = qnet.accumulator_bounds(max_in_mag);
  std::int64_t worst = max_in_mag;
  for (std::int64_t b : acc_bounds) worst = std::max(worst, b);
  const std::size_t width = bits_for_magnitude(worst) + 1;
  require(width <= 62, "build_circuit: accumulators exceed 62 bits");

  auto circuit = Circuit{};
  GateBuilder gates(circuit.cnf);
  BitVecBuilder bv(gates);
  circuit.word_width = width;

  circuit.inputs.reserve(qnet.input_size());
  std::vector<BitVec> layer_values;
  for (std::size_t i = 0; i < qnet.input_size(); ++i) {
    // Pinned inputs (lo == hi, the replay path) become constants, so the
    // whole circuit unit-propagates instead of being searched.
    BitVec x = in_lo[i] == in_hi[i] ? bv.constant(in_lo[i], width)
                                    : bv.input(width);
    if (in_lo[i] != in_hi[i]) bv.assert_in_range(x, in_lo[i], in_hi[i]);
    circuit.inputs.push_back(x);
    layer_values.push_back(std::move(x));
  }

  for (std::size_t li = 0; li < qnet.num_layers(); ++li) {
    const nn::QuantizedLayer& layer = qnet.layer(li);
    std::vector<BitVec> next;
    next.reserve(layer.out_size());
    for (std::size_t r = 0; r < layer.out_size(); ++r) {
      BitVec acc = bv.constant(0, width);
      bool first = true;
      for (std::size_t c = 0; c < layer.in_size(); ++c) {
        const std::int64_t w = layer.weights[r][c];
        if (w == 0) continue;
        BitVec term = bv.mul_const(layer_values[c], w, width);
        if (first) {
          acc = std::move(term);
          first = false;
        } else {
          acc = bv.add(acc, term);
        }
      }
      if (layer.biases[r] != 0) {
        acc = bv.add(acc, bv.constant(layer.biases[r], width));
      } else if (first) {
        // all-zero row with zero bias: acc is already the zero constant
      }
      BitVec z = bv.ashr(acc, static_cast<std::size_t>(qnet.frac_bits()));
      next.push_back(layer.activation == nn::Activation::kRelu ? bv.relu(z)
                                                               : z);
    }
    layer_values = std::move(next);
  }
  circuit.outputs = layer_values;
  return circuit;
}

Circuit build_circuit(const nn::QuantizedNetwork& qnet,
                      const verify::Box& input_box) {
  require(input_box.size() == qnet.input_size(),
          "build_circuit: box dimension mismatch");
  // Fixed-point input ranges (round inward so the box is honored).
  std::vector<std::int64_t> in_lo(input_box.size()), in_hi(input_box.size());
  const double scale = std::ldexp(1.0, qnet.frac_bits());
  for (std::size_t i = 0; i < input_box.size(); ++i) {
    in_lo[i] = static_cast<std::int64_t>(std::ceil(input_box[i].lo * scale));
    in_hi[i] = static_cast<std::int64_t>(std::floor(input_box[i].hi * scale));
  }
  return build_circuit_fixed(qnet, in_lo, in_hi);
}

}  // namespace

QnnVerdict prove_quantized_output_bound(const nn::QuantizedNetwork& qnet,
                                        const verify::Box& input_box,
                                        std::size_t output_index,
                                        double threshold,
                                        const QnnVerifierOptions& options) {
  require(output_index < qnet.output_size(),
          "prove_quantized_output_bound: output index out of range");
  Stopwatch clock;
  Circuit circuit = build_circuit(qnet, input_box);

  // Negated property: output > threshold, i.e. output >= floor(t*2^F)+1.
  GateBuilder gates(circuit.cnf);
  BitVecBuilder bv(gates);
  const std::int64_t t_fixed = static_cast<std::int64_t>(
      std::floor(threshold * std::ldexp(1.0, qnet.frac_bits())));
  const BitVec& out = circuit.outputs[output_index];
  // Widen enough for both the output and the threshold constant.
  const std::size_t w = std::max(
      out.width() + 1, bits_for_magnitude(std::llabs(t_fixed)) + 1);
  gates.assert_true(
      bv.less_than(bv.constant(t_fixed, w), bv.sign_extend(out, w)));

  QnnVerdict verdict;
  verdict.cnf_variables = circuit.cnf.num_vars();
  verdict.cnf_clauses = circuit.cnf.num_clauses();

  sat::Solver solver(options.solver);
  verdict.sat = solver.solve(circuit.cnf);
  verdict.solver_stats = solver.stats();
  if (verdict.sat == sat::SatResult::kSat) {
    linalg::Vector x(qnet.input_size());
    for (std::size_t i = 0; i < qnet.input_size(); ++i) {
      x[i] = qnet.from_fixed(bv.decode(circuit.inputs[i], solver));
    }
    verdict.counterexample = x;
    verdict.output_value = qnet.forward_real(x)[output_index];
  }
  verdict.seconds = clock.seconds();
  return verdict;
}

QnnMaxResult maximize_quantized_output(const nn::QuantizedNetwork& qnet,
                                       const verify::Box& input_box,
                                       std::size_t output_index,
                                       double search_lo, double search_hi,
                                       const QnnVerifierOptions& options) {
  require(search_lo <= search_hi,
          "maximize_quantized_output: empty search interval");
  Stopwatch clock;
  QnnMaxResult result;
  result.exact = true;
  const double resolution = std::ldexp(1.0, -qnet.frac_bits());

  double lo = search_lo;  // highest witnessed value (or floor)
  double hi = search_hi;  // above every witnessed value once proven
  bool any_sat = false;
  while (hi - lo > resolution / 2) {
    const double mid = 0.5 * (lo + hi);
    ++result.probes;
    const QnnVerdict v =
        prove_quantized_output_bound(qnet, input_box, output_index, mid,
                                     options);
    if (v.sat == sat::SatResult::kSat) {
      if (!any_sat || v.output_value > result.max_value) {
        result.max_value = v.output_value;
      }
      any_sat = true;
      lo = std::max(v.output_value, mid + resolution / 4);
    } else if (v.sat == sat::SatResult::kUnsat) {
      hi = mid;
    } else {
      result.exact = false;
      break;
    }
  }
  if (!any_sat) {
    // Never witnessed above search_lo; the maximum is at most search_lo.
    result.max_value = search_lo;
  }
  result.upper_bound = hi;
  result.seconds = clock.seconds();
  return result;
}

std::vector<std::int64_t> eval_quantized_through_cnf(
    const nn::QuantizedNetwork& qnet,
    const std::vector<std::int64_t>& input_fixed,
    const QnnVerifierOptions& options) {
  require(input_fixed.size() == qnet.input_size(),
          "eval_quantized_through_cnf: input dimension mismatch");
  Circuit circuit = build_circuit_fixed(qnet, input_fixed, input_fixed);
  sat::Solver solver(options.solver);
  const sat::SatResult res = solver.solve(circuit.cnf);
  // Every input is pinned to a single value, so the circuit has exactly
  // one model; anything but SAT means the encoding itself is broken.
  require(res == sat::SatResult::kSat,
          "eval_quantized_through_cnf: pinned circuit unsatisfiable");
  GateBuilder gates(circuit.cnf);
  BitVecBuilder bv(gates);
  std::vector<std::int64_t> out;
  out.reserve(circuit.outputs.size());
  for (const BitVec& o : circuit.outputs) {
    out.push_back(bv.decode(o, solver));
  }
  return out;
}

}  // namespace safenn::smt
