#include "linalg/vector.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace safenn::linalg {

Vector::Vector(std::size_t n, double fill) : data_(n, fill) {
  debug_assert_aligned(data_.data());
}

Vector::Vector(std::initializer_list<double> values) : data_(values) {
  debug_assert_aligned(data_.data());
}

Vector::Vector(std::vector<double> values)
    : data_(values.begin(), values.end()) {
  // Copies into aligned storage; the plain-allocator overload exists for
  // callers assembling values in a std::vector first.
  debug_assert_aligned(data_.data());
}

double& Vector::operator[](std::size_t i) {
  require(i < data_.size(), "Vector: index out of range");
  return data_[i];
}

double Vector::operator[](std::size_t i) const {
  require(i < data_.size(), "Vector: index out of range");
  return data_[i];
}

Vector& Vector::operator+=(const Vector& rhs) {
  require(size() == rhs.size(), "Vector+=: size mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Vector& Vector::operator-=(const Vector& rhs) {
  require(size() == rhs.size(), "Vector-=: size mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Vector& Vector::operator*=(double s) {
  for (double& x : data_) x *= s;
  return *this;
}

Vector& Vector::add_scaled(double s, const Vector& rhs) {
  require(size() == rhs.size(), "Vector::add_scaled: size mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += s * rhs.data_[i];
  return *this;
}

double Vector::dot(const Vector& rhs) const {
  require(size() == rhs.size(), "Vector::dot: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) acc += data_[i] * rhs.data_[i];
  return acc;
}

double Vector::norm2() const { return std::sqrt(dot(*this)); }

double Vector::norm_inf() const {
  double m = 0.0;
  for (double x : data_) m = std::max(m, std::abs(x));
  return m;
}

double Vector::sum() const {
  double acc = 0.0;
  for (double x : data_) acc += x;
  return acc;
}

double Vector::max() const {
  require(!data_.empty(), "Vector::max: empty vector");
  return *std::max_element(data_.begin(), data_.end());
}

double Vector::min() const {
  require(!data_.empty(), "Vector::min: empty vector");
  return *std::min_element(data_.begin(), data_.end());
}

std::size_t Vector::argmax() const {
  require(!data_.empty(), "Vector::argmax: empty vector");
  return static_cast<std::size_t>(
      std::max_element(data_.begin(), data_.end()) - data_.begin());
}

void Vector::fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

Vector operator+(Vector lhs, const Vector& rhs) { return lhs += rhs; }
Vector operator-(Vector lhs, const Vector& rhs) { return lhs -= rhs; }
Vector operator*(double s, Vector v) { return v *= s; }
Vector operator*(Vector v, double s) { return v *= s; }

Vector hadamard(const Vector& a, const Vector& b) {
  require(a.size() == b.size(), "hadamard: size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
  return out;
}

bool approx_equal(const Vector& a, const Vector& b, double tol) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::abs(a[i] - b[i]) > tol) return false;
  }
  return true;
}

}  // namespace safenn::linalg
