// Kernel equivalence harness: tolerance-checked comparison of a kernel
// backend against the reference scalar kernels.
//
// SIMD vectorization of the NT GEMM reassociates the k-contraction, so
// "equal" can no longer mean bitwise — this harness supplies the
// principled replacement (after MIOpen's test/verify.hpp rms_range):
// a magnitude-normalized RMS of the elementwise differences, compared
// against a tolerance DERIVED from the contraction length and the
// floating-point epsilon instead of a magic constant.
//
// Derivation of dot_tolerance(k): both the ascending-k reference sum and
// a lane-reassociated (optionally FMA-fused) sum of a length-k dot
// product satisfy the standard backward error bound
//     |fl(sum) - sum| <= (k - 1) * eps * sum_i |a_i * b_i|,
// so their difference is at most 2 (k-1) eps sum|a_i b_i|. rms_range
// normalizes differences by the largest output magnitude (floored at 1),
// which absorbs the sum|a_i b_i| factor up to a data-dependent constant
// for the standardized inputs the harness draws. Folding the factor 2
// and that constant into one slack multiplier gives
//     dot_tolerance(k) = kToleranceSlack * max(k, 1) * eps.
// The bound is linear in k and proportional to eps — tightening the
// precision or shortening the contraction tightens the gate, and a
// kernel that drops even one element of a modest dot product fails it
// (see the corruption unit tests).
//
// Every future backend (GPU evaluator, quantized path used as a real
// backend) is expected to be validated through this same harness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "linalg/kernels.hpp"

namespace safenn::linalg {

/// Magnitude-normalized RMS difference between two equal-length ranges:
///   sqrt(mean((a_i - b_i)^2)) / max(max|a_i|, max|b_i|, 1).
/// Returns +infinity when the lengths differ, 0 for two empty ranges.
double rms_range(const double* a, const double* b, std::size_t n);

/// Tolerance on rms_range for outputs contracted over `k` terms (see the
/// derivation above). Monotone in k; dot_tolerance(0) == dot_tolerance(1).
double dot_tolerance(std::size_t k);

/// One compared operation at one shape.
struct KernelCheck {
  std::string op;             // "gemm_nt", "gemm_nn", "gemm_tn", "relu"
  std::size_t m = 0, k = 0, n = 0;
  double rms = 0.0;           // observed rms_range vs reference
  double tolerance = 0.0;     // dot_tolerance of the contraction (0: exact)
  bool pass = false;
};

struct GemmShape {
  std::size_t m = 0, k = 0, n = 0;
};

struct KernelVerifyConfig {
  std::uint64_t seed = 20260808;
  /// Randomized shapes per operation, on top of the fixed awkward set
  /// (remainder lanes, odd k, 1x1, empty).
  std::size_t random_trials = 16;
  std::size_t max_dim = 48;
  /// Extra shapes to pin, e.g. the serving network's (batch, in, out)
  /// per layer so the deployed configuration is exactly what is checked.
  std::vector<GemmShape> extra_shapes;
};

struct KernelReport {
  KernelBackend backend = KernelBackend::kReference;
  SimdIsa isa = SimdIsa::kPortable;
  std::vector<KernelCheck> checks;
  double worst_rms = 0.0;
  double worst_ratio = 0.0;    // max over checks of rms / tolerance
  double worst_tolerance = 0.0;  // tolerance of the worst-ratio check
  bool pass = true;

  std::string summary() const;
};

/// Runs every kernel of the GEMM family plus the batched ReLU under
/// `backend` against the reference kernels over randomized + fixed
/// awkward + configured shapes. All three GEMM ops are held to
/// dot_tolerance(k) — the compiler is free to fuse the scalar kernels'
/// mul+add steps (-ffp-contract), so exact GEMM equality across backends
/// is compiler-dependent; ReLU is held to exact equality (no rounding).
KernelReport verify_kernel_backend(KernelBackend backend,
                                   const KernelVerifyConfig& config = {});

}  // namespace safenn::linalg
