// Dense double-precision vector used throughout nn/verify/highway.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "linalg/aligned.hpp"

namespace safenn::linalg {

/// Dense vector of doubles with checked element access and the handful of
/// BLAS-1 operations the library needs. Value semantics throughout.
class Vector {
 public:
  Vector() = default;
  explicit Vector(std::size_t n, double fill = 0.0);
  Vector(std::initializer_list<double> values);
  explicit Vector(std::vector<double> values);

  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator[](std::size_t i);
  double operator[](std::size_t i) const;

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  const aligned_vector<double>& values() const { return data_; }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

  Vector& operator+=(const Vector& rhs);
  Vector& operator-=(const Vector& rhs);
  Vector& operator*=(double s);

  /// this += s * rhs (axpy).
  Vector& add_scaled(double s, const Vector& rhs);

  double dot(const Vector& rhs) const;
  double norm2() const;       ///< Euclidean norm.
  double norm_inf() const;    ///< Max absolute entry.
  double sum() const;
  double max() const;         ///< Requires non-empty.
  double min() const;         ///< Requires non-empty.
  std::size_t argmax() const; ///< Requires non-empty.

  void fill(double value);

 private:
  aligned_vector<double> data_;  // 64-byte aligned for the SIMD kernels
};

Vector operator+(Vector lhs, const Vector& rhs);
Vector operator-(Vector lhs, const Vector& rhs);
Vector operator*(double s, Vector v);
Vector operator*(Vector v, double s);

/// Element-wise product.
Vector hadamard(const Vector& a, const Vector& b);

/// True when all entries differ by at most `tol`.
bool approx_equal(const Vector& a, const Vector& b, double tol = 1e-9);

}  // namespace safenn::linalg
