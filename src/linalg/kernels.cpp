#include "linalg/kernels.hpp"

#include "common/error.hpp"

// Architecture gates. The AVX2 functions carry a target attribute, so
// they compile in a portable (no -mavx2) build and are only entered
// after the runtime __builtin_cpu_supports check; NEON is baseline on
// AArch64 so a compile-time gate suffices there.
#if defined(SAFENN_ENABLE_SIMD) && (defined(__x86_64__) || defined(__i386__))
#define SAFENN_SIMD_X86 1
#include <immintrin.h>
#endif
#if defined(SAFENN_ENABLE_SIMD) && defined(__ARM_NEON)
#define SAFENN_SIMD_NEON 1
#include <arm_neon.h>
#endif

#if defined(_OPENMP)
#define SAFENN_OMP_SIMD _Pragma("omp simd")
#else
#define SAFENN_OMP_SIMD
#endif

namespace safenn::linalg {

std::string to_string(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kReference: return "reference";
    case KernelBackend::kSimd: return "simd";
    case KernelBackend::kQuantized: return "quantized";
  }
  throw Error("to_string: unknown kernel backend");
}

KernelBackend kernel_backend_from_string(const std::string& name) {
  if (name == "reference") return KernelBackend::kReference;
  if (name == "simd") return KernelBackend::kSimd;
  if (name == "quantized") return KernelBackend::kQuantized;
  throw Error("kernel_backend_from_string: unknown backend '" + name + "'");
}

const char* to_string(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kPortable: return "portable";
    case SimdIsa::kAvx2Fma: return "avx2+fma";
    case SimdIsa::kNeon: return "neon";
  }
  throw Error("to_string: unknown SIMD ISA");
}

bool simd_kernels_compiled() {
#if defined(SAFENN_SIMD_X86) || defined(SAFENN_SIMD_NEON)
  return true;
#else
  return false;
#endif
}

SimdIsa active_simd_isa() {
  static const SimdIsa isa = [] {
#if defined(SAFENN_SIMD_X86)
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
      return SimdIsa::kAvx2Fma;
    }
#elif defined(SAFENN_SIMD_NEON)
    return SimdIsa::kNeon;
#endif
    return SimdIsa::kPortable;
  }();
  return isa;
}

namespace kernels {
namespace {

// ---------------------------------------------------------------------
// Portable fallback: on a host with no usable vector unit there is
// nothing to win by reassociating, so the NT fallback reuses the
// reference register tile verbatim — same loads, same rounding, and by
// construction never slower than the kReference path.
// ---------------------------------------------------------------------

void portable_accumulate_nt(double* c, const double* a, const double* b,
                            double s, std::size_t m, std::size_t k,
                            std::size_t n) {
  const std::size_t n_tile = n - n % kJr;
  for (std::size_t i = 0; i < m; ++i) {
    const double* arow = a + i * k;
    double* crow = c + i * n;
    std::size_t j = 0;
    for (; j < n_tile; j += kJr) {
      nt_dot_tile<kJr>(arow, b + j * k, k, s, crow + j);
    }
    for (; j < n; ++j) {
      nt_dot_tile<1>(arow, b + j * k, k, s, crow + j);
    }
  }
}

// ---------------------------------------------------------------------
// AVX2 + FMA kernels. The NT kernel reassociates the contraction (lane
// partial sums); NN/TN keep the reference ascending-p order over
// independent output elements but fuse each multiply-add. Either way the
// results are only tolerance-close to the compiled reference — GCC/Clang
// contract the scalar kernels' mul+add at their own discretion
// (-ffp-contract), so exact equality of GEMM outputs across backends is
// not a property we can promise portably. ReLU has no rounding and stays
// exact.
// ---------------------------------------------------------------------

#if defined(SAFENN_SIMD_X86)

__attribute__((target("avx2,fma"))) inline double hsum(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d pair = _mm_add_pd(lo, hi);  // {l0+l2, l1+l3}
  return _mm_cvtsd_f64(_mm_add_sd(pair, _mm_unpackhi_pd(pair, pair)));
}

__attribute__((target("avx2,fma"))) void avx2_accumulate_nt(
    double* c, const double* a, const double* b, double s, std::size_t m,
    std::size_t k, std::size_t n) {
  const std::size_t k4 = k - k % 4;
  for (std::size_t i = 0; i < m; ++i) {
    const double* arow = a + i * k;
    double* crow = c + i * n;
    std::size_t j = 0;
    // kJr B rows share each pass over arow, one vector accumulator each.
    for (; j + kJr <= n; j += kJr) {
      const double* b0 = b + j * k;
      const double* b1 = b0 + k;
      const double* b2 = b1 + k;
      const double* b3 = b2 + k;
      __m256d acc0 = _mm256_setzero_pd();
      __m256d acc1 = _mm256_setzero_pd();
      __m256d acc2 = _mm256_setzero_pd();
      __m256d acc3 = _mm256_setzero_pd();
      for (std::size_t p = 0; p < k4; p += 4) {
        const __m256d av = _mm256_loadu_pd(arow + p);
        acc0 = _mm256_fmadd_pd(av, _mm256_loadu_pd(b0 + p), acc0);
        acc1 = _mm256_fmadd_pd(av, _mm256_loadu_pd(b1 + p), acc1);
        acc2 = _mm256_fmadd_pd(av, _mm256_loadu_pd(b2 + p), acc2);
        acc3 = _mm256_fmadd_pd(av, _mm256_loadu_pd(b3 + p), acc3);
      }
      double s0 = hsum(acc0), s1 = hsum(acc1), s2 = hsum(acc2),
             s3 = hsum(acc3);
      for (std::size_t p = k4; p < k; ++p) {
        const double av = arow[p];
        s0 += av * b0[p];
        s1 += av * b1[p];
        s2 += av * b2[p];
        s3 += av * b3[p];
      }
      crow[j] += s * s0;
      crow[j + 1] += s * s1;
      crow[j + 2] += s * s2;
      crow[j + 3] += s * s3;
    }
    for (; j < n; ++j) {
      const double* brow = b + j * k;
      __m256d acc = _mm256_setzero_pd();
      for (std::size_t p = 0; p < k4; p += 4) {
        acc = _mm256_fmadd_pd(_mm256_loadu_pd(arow + p),
                              _mm256_loadu_pd(brow + p), acc);
      }
      double sum = hsum(acc);
      for (std::size_t p = k4; p < k; ++p) sum += arow[p] * brow[p];
      crow[j] += s * sum;
    }
  }
}

__attribute__((target("avx2,fma"))) void avx2_accumulate_nn(
    double* c, const double* a, const double* b, std::size_t m,
    std::size_t k, std::size_t n) {
  // Same ascending-k outer structure as the reference kernel; the inner
  // j update is element-independent and fused (one rounding per step).
  const std::size_t n4 = n - n % 4;
  for (std::size_t i = 0; i < m; ++i) {
    const double* arow = a + i * k;
    double* crow = c + i * n;
    for (std::size_t p = 0; p < k; ++p) {
      const __m256d ap = _mm256_set1_pd(arow[p]);
      const double* brow = b + p * n;
      std::size_t j = 0;
      for (; j < n4; j += 4) {
        const __m256d bv = _mm256_loadu_pd(brow + j);
        _mm256_storeu_pd(
            crow + j,
            _mm256_fmadd_pd(ap, bv, _mm256_loadu_pd(crow + j)));
      }
      const double apv = arow[p];
      for (; j < n; ++j) crow[j] += apv * brow[j];
    }
  }
}

__attribute__((target("avx2,fma"))) void avx2_accumulate_tn(
    double* c, const double* a, const double* b, double s, std::size_t k,
    std::size_t m, std::size_t n) {
  const std::size_t n4 = n - n % 4;
  for (std::size_t p = 0; p < k; ++p) {
    const double* arow = a + p * m;
    const double* brow = b + p * n;
    for (std::size_t i = 0; i < m; ++i) {
      const double sa = s * arow[i];
      const __m256d sav = _mm256_set1_pd(sa);
      double* crow = c + i * n;
      std::size_t j = 0;
      for (; j < n4; j += 4) {
        const __m256d bv = _mm256_loadu_pd(brow + j);
        _mm256_storeu_pd(
            crow + j,
            _mm256_fmadd_pd(sav, bv, _mm256_loadu_pd(crow + j)));
      }
      for (; j < n; ++j) crow[j] += sa * brow[j];
    }
  }
}

__attribute__((target("avx2,fma"))) void avx2_relu(const double* in,
                                                   double* out,
                                                   std::size_t n) {
  const __m256d zero = _mm256_setzero_pd();
  const std::size_t n4 = n - n % 4;
  std::size_t i = 0;
  // maxpd with the zero operand second returns +0.0 for -0.0 and 0.0 for
  // NaN inputs — exactly what `x > 0.0 ? x : 0.0` yields.
  for (; i < n4; i += 4) {
    _mm256_storeu_pd(out + i, _mm256_max_pd(_mm256_loadu_pd(in + i), zero));
  }
  for (; i < n; ++i) out[i] = in[i] > 0.0 ? in[i] : 0.0;
}

#endif  // SAFENN_SIMD_X86

// ---------------------------------------------------------------------
// NEON kernels (AArch64): 2-lane doubles, same shape as the AVX2 path.
// ---------------------------------------------------------------------

#if defined(SAFENN_SIMD_NEON)

void neon_accumulate_nt(double* c, const double* a, const double* b,
                        double s, std::size_t m, std::size_t k,
                        std::size_t n) {
  const std::size_t k2 = k - k % 2;
  for (std::size_t i = 0; i < m; ++i) {
    const double* arow = a + i * k;
    double* crow = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const double* brow = b + j * k;
      float64x2_t acc = vdupq_n_f64(0.0);
      for (std::size_t p = 0; p < k2; p += 2) {
        acc = vfmaq_f64(acc, vld1q_f64(arow + p), vld1q_f64(brow + p));
      }
      double sum = vgetq_lane_f64(acc, 0) + vgetq_lane_f64(acc, 1);
      for (std::size_t p = k2; p < k; ++p) sum += arow[p] * brow[p];
      crow[j] += s * sum;
    }
  }
}

void neon_accumulate_nn(double* c, const double* a, const double* b,
                        std::size_t m, std::size_t k, std::size_t n) {
  const std::size_t n2 = n - n % 2;
  for (std::size_t i = 0; i < m; ++i) {
    const double* arow = a + i * k;
    double* crow = c + i * n;
    for (std::size_t p = 0; p < k; ++p) {
      const double apv = arow[p];
      const float64x2_t ap = vdupq_n_f64(apv);
      const double* brow = b + p * n;
      std::size_t j = 0;
      for (; j < n2; j += 2) {
        vst1q_f64(crow + j, vfmaq_f64(vld1q_f64(crow + j), ap,
                                      vld1q_f64(brow + j)));
      }
      for (; j < n; ++j) crow[j] += apv * brow[j];
    }
  }
}

void neon_accumulate_tn(double* c, const double* a, const double* b,
                        double s, std::size_t k, std::size_t m,
                        std::size_t n) {
  const std::size_t n2 = n - n % 2;
  for (std::size_t p = 0; p < k; ++p) {
    const double* arow = a + p * m;
    const double* brow = b + p * n;
    for (std::size_t i = 0; i < m; ++i) {
      const double sa = s * arow[i];
      const float64x2_t sav = vdupq_n_f64(sa);
      double* crow = c + i * n;
      std::size_t j = 0;
      for (; j < n2; j += 2) {
        vst1q_f64(crow + j, vfmaq_f64(vld1q_f64(crow + j), sav,
                                      vld1q_f64(brow + j)));
      }
      for (; j < n; ++j) crow[j] += sa * brow[j];
    }
  }
}

void neon_relu(const double* in, double* out, std::size_t n) {
  const float64x2_t zero = vdupq_n_f64(0.0);
  const std::size_t n2 = n - n % 2;
  std::size_t i = 0;
  for (; i < n2; i += 2) {
    vst1q_f64(out + i, vmaxq_f64(vld1q_f64(in + i), zero));
  }
  for (; i < n; ++i) out[i] = in[i] > 0.0 ? in[i] : 0.0;
}

#endif  // SAFENN_SIMD_NEON

}  // namespace

void simd_accumulate_nt(double* c, const double* a, const double* b,
                        double s, std::size_t m, std::size_t k,
                        std::size_t n) {
  switch (active_simd_isa()) {
#if defined(SAFENN_SIMD_X86)
    case SimdIsa::kAvx2Fma:
      avx2_accumulate_nt(c, a, b, s, m, k, n);
      return;
#endif
#if defined(SAFENN_SIMD_NEON)
    case SimdIsa::kNeon:
      neon_accumulate_nt(c, a, b, s, m, k, n);
      return;
#endif
    default:
      portable_accumulate_nt(c, a, b, s, m, k, n);
      return;
  }
}

void simd_accumulate_nn(double* c, const double* a, const double* b,
                        std::size_t m, std::size_t k, std::size_t n) {
  switch (active_simd_isa()) {
#if defined(SAFENN_SIMD_X86)
    case SimdIsa::kAvx2Fma:
      avx2_accumulate_nn(c, a, b, m, k, n);
      return;
#endif
#if defined(SAFENN_SIMD_NEON)
    case SimdIsa::kNeon:
      neon_accumulate_nn(c, a, b, m, k, n);
      return;
#endif
    default:
      // Same element-wise loop as the reference NN kernel (modulo its
      // K-panel blocking, which preserves per-element update order).
      for (std::size_t i = 0; i < m; ++i) {
        const double* arow = a + i * k;
        double* crow = c + i * n;
        for (std::size_t p = 0; p < k; ++p) {
          const double ap = arow[p];
          const double* brow = b + p * n;
          SAFENN_OMP_SIMD
          for (std::size_t j = 0; j < n; ++j) crow[j] += ap * brow[j];
        }
      }
      return;
  }
}

void simd_accumulate_tn(double* c, const double* a, const double* b,
                        double s, std::size_t k, std::size_t m,
                        std::size_t n) {
  switch (active_simd_isa()) {
#if defined(SAFENN_SIMD_X86)
    case SimdIsa::kAvx2Fma:
      avx2_accumulate_tn(c, a, b, s, k, m, n);
      return;
#endif
#if defined(SAFENN_SIMD_NEON)
    case SimdIsa::kNeon:
      neon_accumulate_tn(c, a, b, s, k, m, n);
      return;
#endif
    default:
      for (std::size_t p = 0; p < k; ++p) {
        const double* arow = a + p * m;
        const double* brow = b + p * n;
        for (std::size_t i = 0; i < m; ++i) {
          const double sa = s * arow[i];
          double* crow = c + i * n;
          SAFENN_OMP_SIMD
          for (std::size_t j = 0; j < n; ++j) crow[j] += sa * brow[j];
        }
      }
      return;
  }
}

void simd_relu(const double* in, double* out, std::size_t n) {
  switch (active_simd_isa()) {
#if defined(SAFENN_SIMD_X86)
    case SimdIsa::kAvx2Fma:
      avx2_relu(in, out, n);
      return;
#endif
#if defined(SAFENN_SIMD_NEON)
    case SimdIsa::kNeon:
      neon_relu(in, out, n);
      return;
#endif
    default:
      SAFENN_OMP_SIMD
      for (std::size_t i = 0; i < n; ++i) out[i] = in[i] > 0.0 ? in[i] : 0.0;
      return;
  }
}

}  // namespace kernels
}  // namespace safenn::linalg
