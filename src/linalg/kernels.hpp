// Kernel backend selection for the GEMM family and batched activations.
//
// Two backends exist behind every hot kernel:
//
//   kReference — the cache-blocked scalar kernels with ascending-k
//     single-accumulator chains. Their rounding is bit-identical to the
//     per-sample matvec/add_outer path, which is what the batched-vs-
//     per-sample equivalence tests, data-parallel training determinism
//     and the MILP/SMT encodings all rely on. This is the default
//     everywhere.
//
//   kSimd — explicitly vectorized kernels, selected per-host at runtime:
//     AVX2+FMA on x86-64 CPUs that support it, NEON on AArch64, and a
//     portable fallback that reuses the reference tile otherwise. The NT kernel (the
//     batched forward) reassociates the contraction sum across vector
//     lanes, and all three GEMM kernels fuse multiply-adds, so their
//     results are NOT bitwise equal to the compiled reference (whose
//     own contraction behaviour is a compiler choice, -ffp-contract) —
//     callers opt in (serving hot path) and the backend is gated by the
//     tolerance harness in linalg/verify_kernels.hpp. The ReLU kernel
//     (max with zero, no rounding at all) stays exactly equal.
//
// Building with -DSAFENN_ENABLE_SIMD=OFF compiles no intrinsics at all;
// kSimd then always resolves to the portable kernel.
#pragma once

#include <cstddef>
#include <string>

namespace safenn::linalg {

/// Which kernel implementation a GEMM/activation call dispatches to.
enum class KernelBackend {
  kReference,  ///< Scalar ascending-k kernels; bitwise-reproducible.
  kSimd,       ///< Vectorized kernels; NT path is tolerance-checked.
  kQuantized,  ///< Fixed-point integer engine (linalg/qmatrix.hpp); every
               ///< ISA is bitwise equal to the scalar integer reference.
               ///< Not valid for the float GEMM family — those throw.
};

std::string to_string(KernelBackend backend);
KernelBackend kernel_backend_from_string(const std::string& name);

/// Instruction set the kSimd backend resolves to on this host.
enum class SimdIsa {
  kPortable,  ///< Scalar fallback sharing the reference register tile.
  kAvx2Fma,   ///< x86-64 AVX2 + FMA intrinsics.
  kNeon,      ///< AArch64 NEON intrinsics.
};

/// Runtime-detected ISA (cached after the first call). kPortable when the
/// build has SIMD disabled or the CPU lacks the required extensions.
SimdIsa active_simd_isa();
const char* to_string(SimdIsa isa);

/// True when this build compiled the explicit vector kernels
/// (SAFENN_ENABLE_SIMD=ON and a recognised architecture).
bool simd_kernels_compiled();

namespace kernels {

// Register tile width shared by the reference NT kernel's main loop and
// its remainder loop (and mirrored by the SIMD j-tiles).
inline constexpr std::size_t kJr = 4;

/// One j-tile of the NT kernel: W independent ascending-k dot products of
/// `arow` against W consecutive length-k rows of B starting at `brows`,
/// accumulated into crow[0..W) scaled by `s`. Each accumulator is a
/// single ascending-k chain — the rounding contract the reference
/// backend's bitwise guarantees rest on. Used with W = kJr by the main
/// loop and W = 1 by the remainder loop of both the reference kernel and
/// the portable kSimd fallback.
template <std::size_t W>
inline void nt_dot_tile(const double* arow, const double* brows,
                        std::size_t k, double s, double* crow) {
  double sums[W] = {};
  for (std::size_t p = 0; p < k; ++p) {
    const double av = arow[p];
    for (std::size_t w = 0; w < W; ++w) sums[w] += av * brows[w * k + p];
  }
  for (std::size_t w = 0; w < W; ++w) crow[w] += s * sums[w];
}

// Vectorized counterparts of the reference kernels in matrix.cpp, with
// identical raw-pointer contracts. Each dispatches on active_simd_isa().

/// c (m x n) += s * a (m x k) * b^T with b (n x k). Reassociated over k
/// (vector-lane partial sums); tolerance-checked, not bitwise.
void simd_accumulate_nt(double* c, const double* a, const double* b,
                        double s, std::size_t m, std::size_t k,
                        std::size_t n);

/// c (m x n) += a (m x k) * b (k x n). Vectorized over j with fused
/// multiply-adds; tolerance-checked like the NT kernel.
void simd_accumulate_nn(double* c, const double* a, const double* b,
                        std::size_t m, std::size_t k, std::size_t n);

/// c (m x n) += s * a^T * b with a (k x m), b (k x n): rank-1 updates in
/// ascending p order, vectorized over j with fused multiply-adds;
/// tolerance-checked.
void simd_accumulate_tn(double* c, const double* a, const double* b,
                        double s, std::size_t k, std::size_t m,
                        std::size_t n);

/// out[i] = max(in[i], 0). Exactly equal to the scalar ReLU (including
/// -0.0 and NaN handling of maxpd with the zero operand second).
void simd_relu(const double* in, double* out, std::size_t n);

}  // namespace kernels

}  // namespace safenn::linalg
