#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace safenn::linalg {
namespace {

// GEMM micro-kernels. All three accumulate each output entry over the
// contraction index in ascending order — the same order (and therefore
// the same floating-point rounding) as the per-sample matvec/add_outer
// path, which is what lets the batched nn path match per-sample results
// bit for bit.

// K-panel height: a kKc x n panel of B stays cache-resident while a
// block of A rows streams through it.
constexpr std::size_t kKc = 64;
// Register tile width for the NT kernel: kJr rows of B share one pass
// over a row of A, each with its own independent accumulator chain.
// (Defined in kernels.hpp so the SIMD j-tiles mirror it.)
using kernels::kJr;

/// c (m x n) += a (m x k) * b (k x n), row-major raw pointers.
void accumulate_nn(double* c, const double* a, const double* b,
                   std::size_t m, std::size_t k, std::size_t n) {
  for (std::size_t kk = 0; kk < k; kk += kKc) {
    const std::size_t k_end = std::min(k, kk + kKc);
    for (std::size_t i = 0; i < m; ++i) {
      const double* arow = a + i * k;
      double* crow = c + i * n;
      for (std::size_t p = kk; p < k_end; ++p) {
        const double ap = arow[p];
        const double* brow = b + p * n;
        for (std::size_t j = 0; j < n; ++j) crow[j] += ap * brow[j];
      }
    }
  }
}

/// c (m x n) += s * a (m x k) * b^T, where b is (n x k): row-dot-row.
/// Both the kJr-wide main loop and the remainder run the same shared
/// inner kernel (kernels::nt_dot_tile), instantiated at the two widths.
void accumulate_nt(double* c, const double* a, const double* b, double s,
                   std::size_t m, std::size_t k, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* arow = a + i * k;
    double* crow = c + i * n;
    std::size_t j = 0;
    for (; j + kJr <= n; j += kJr) {
      kernels::nt_dot_tile<kJr>(arow, b + j * k, k, s, crow + j);
    }
    for (; j < n; ++j) {
      kernels::nt_dot_tile<1>(arow, b + j * k, k, s, crow + j);
    }
  }
}

/// c (m x n) += s * a^T * b, where a is (k x m) and b is (k x n): a
/// sequence of rank-1 updates in ascending p order.
void accumulate_tn(double* c, const double* a, const double* b, double s,
                   std::size_t k, std::size_t m, std::size_t n) {
  for (std::size_t p = 0; p < k; ++p) {
    const double* arow = a + p * m;
    const double* brow = b + p * n;
    for (std::size_t i = 0; i < m; ++i) {
      const double sa = s * arow[i];
      double* crow = c + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += sa * brow[j];
    }
  }
}

}  // namespace

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
  debug_assert_aligned(data_.data());
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    require(r.size() == cols_, "Matrix: ragged initializer");
    data_.insert(data_.end(), r.begin(), r.end());
  }
  debug_assert_aligned(data_.data());
}

double& Matrix::at(std::size_t r, std::size_t c) {
  require(r < rows_ && c < cols_, "Matrix::at: index out of range");
  return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
  require(r < rows_ && c < cols_, "Matrix::at: index out of range");
  return data_[r * cols_ + c];
}

Vector Matrix::matvec(const Vector& x) const {
  require(x.size() == cols_, "Matrix::matvec: dimension mismatch");
  Vector y(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = &data_[r * cols_];
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

Vector Matrix::matvec_transposed(const Vector& x) const {
  require(x.size() == rows_, "Matrix::matvec_transposed: dimension mismatch");
  Vector y(cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = &data_[r * cols_];
    const double xr = x[r];
    // The zero-skip stays in this kernel alone: x is a backprop delta,
    // which behind a ReLU layer is ~half zeros, and skipping a whole row
    // wins there (BM_MatvecTransposed in bench_micro measures this).
    // Adding 0.0 * row[c] is exact, so skipping never changes the result
    // for finite inputs.
    if (xr == 0.0) continue;
    for (std::size_t c = 0; c < cols_; ++c) y[c] += row[c] * xr;
  }
  return y;
}

void Matrix::resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);
  debug_assert_aligned(data_.data());
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  return gemm(*this, rhs);
}

namespace {

// kQuantized selects the integer engine (linalg/qmatrix.hpp); letting it
// silently run a float kernel would serve arithmetic nobody verified.
void require_float_backend(KernelBackend backend, const char* what) {
  require(backend != KernelBackend::kQuantized,
          std::string(what) + ": kQuantized is not a float GEMM backend");
}

}  // namespace

Matrix Matrix::gemm(const Matrix& a, const Matrix& b, KernelBackend backend) {
  Matrix out;
  gemm_into(a, b, out, backend);
  return out;
}

void Matrix::gemm_into(const Matrix& a, const Matrix& b, Matrix& out,
                       KernelBackend backend) {
  require(a.cols_ == b.rows_, "Matrix::gemm: dimension mismatch");
  require_float_backend(backend, "Matrix::gemm");
  out.resize(a.rows_, b.cols_);
  out.fill(0.0);
  if (backend == KernelBackend::kSimd) {
    kernels::simd_accumulate_nn(out.data(), a.data(), b.data(), a.rows_,
                                a.cols_, b.cols_);
  } else {
    accumulate_nn(out.data(), a.data(), b.data(), a.rows_, a.cols_, b.cols_);
  }
}

void Matrix::gemm_nt_into(const Matrix& a, const Matrix& b, Matrix& out,
                          KernelBackend backend) {
  require(a.cols_ == b.cols_, "Matrix::gemm_nt: dimension mismatch");
  require_float_backend(backend, "Matrix::gemm_nt");
  out.resize(a.rows_, b.rows_);
  out.fill(0.0);
  if (backend == KernelBackend::kSimd) {
    kernels::simd_accumulate_nt(out.data(), a.data(), b.data(), 1.0, a.rows_,
                                a.cols_, b.rows_);
  } else {
    accumulate_nt(out.data(), a.data(), b.data(), 1.0, a.rows_, a.cols_,
                  b.rows_);
  }
}

Matrix& Matrix::add_gemm_nt(double s, const Matrix& a, const Matrix& b,
                            KernelBackend backend) {
  require(a.cols_ == b.cols_, "Matrix::add_gemm_nt: inner dimension mismatch");
  require_float_backend(backend, "Matrix::add_gemm_nt");
  require(rows_ == a.rows_ && cols_ == b.rows_,
          "Matrix::add_gemm_nt: output shape mismatch");
  if (backend == KernelBackend::kSimd) {
    kernels::simd_accumulate_nt(data(), a.data(), b.data(), s, a.rows_,
                                a.cols_, b.rows_);
  } else {
    accumulate_nt(data(), a.data(), b.data(), s, a.rows_, a.cols_, b.rows_);
  }
  return *this;
}

Matrix& Matrix::add_gemm_tn(double s, const Matrix& a, const Matrix& b,
                            KernelBackend backend) {
  require(a.rows_ == b.rows_, "Matrix::add_gemm_tn: inner dimension mismatch");
  require_float_backend(backend, "Matrix::add_gemm_tn");
  require(rows_ == a.cols_ && cols_ == b.cols_,
          "Matrix::add_gemm_tn: output shape mismatch");
  if (backend == KernelBackend::kSimd) {
    kernels::simd_accumulate_tn(data(), a.data(), b.data(), s, a.rows_,
                                a.cols_, b.cols_);
  } else {
    accumulate_tn(data(), a.data(), b.data(), s, a.rows_, a.cols_, b.cols_);
  }
  return *this;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  require(rows_ == rhs.rows_ && cols_ == rhs.cols_, "Matrix+=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& x : data_) x *= s;
  return *this;
}

Matrix& Matrix::add_scaled(double s, const Matrix& rhs) {
  require(rows_ == rhs.rows_ && cols_ == rhs.cols_,
          "Matrix::add_scaled: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += s * rhs.data_[i];
  return *this;
}

Matrix& Matrix::add_outer(double s, const Vector& a, const Vector& b) {
  require(a.size() == rows_ && b.size() == cols_,
          "Matrix::add_outer: shape mismatch");
  // No zero-skip here: the operands are dense in practice and the branch
  // defeats vectorization of the row update.
  for (std::size_t r = 0; r < rows_; ++r) {
    const double sa = s * a[r];
    double* row = &data_[r * cols_];
    for (std::size_t c = 0; c < cols_; ++c) row[c] += sa * b[c];
  }
  return *this;
}

Vector Matrix::row(std::size_t r) const {
  require(r < rows_, "Matrix::row: index out of range");
  Vector v(cols_);
  for (std::size_t c = 0; c < cols_; ++c) v[c] = (*this)(r, c);
  return v;
}

Vector Matrix::col(std::size_t c) const {
  require(c < cols_, "Matrix::col: index out of range");
  Vector v(rows_);
  for (std::size_t r = 0; r < rows_; ++r) v[r] = (*this)(r, c);
  return v;
}

void Matrix::fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double Matrix::norm_inf() const {
  double m = 0.0;
  for (double x : data_) m = std::max(m, std::abs(x));
  return m;
}

bool approx_equal(const Matrix& a, const Matrix& b, double tol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < a.cols(); ++c)
      if (std::abs(a(r, c) - b(r, c)) > tol) return false;
  return true;
}

}  // namespace safenn::linalg
