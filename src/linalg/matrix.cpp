#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace safenn::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    require(r.size() == cols_, "Matrix: ragged initializer");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

double& Matrix::at(std::size_t r, std::size_t c) {
  require(r < rows_ && c < cols_, "Matrix::at: index out of range");
  return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
  require(r < rows_ && c < cols_, "Matrix::at: index out of range");
  return data_[r * cols_ + c];
}

Vector Matrix::matvec(const Vector& x) const {
  require(x.size() == cols_, "Matrix::matvec: dimension mismatch");
  Vector y(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = &data_[r * cols_];
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

Vector Matrix::matvec_transposed(const Vector& x) const {
  require(x.size() == rows_, "Matrix::matvec_transposed: dimension mismatch");
  Vector y(cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = &data_[r * cols_];
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (std::size_t c = 0; c < cols_; ++c) y[c] += row[c] * xr;
  }
  return y;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  require(cols_ == rhs.rows_, "Matrix*: dimension mismatch");
  Matrix out(rows_, rhs.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < rhs.cols_; ++c)
        out(r, c) += a * rhs(k, c);
    }
  }
  return out;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  require(rows_ == rhs.rows_ && cols_ == rhs.cols_, "Matrix+=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& x : data_) x *= s;
  return *this;
}

Matrix& Matrix::add_scaled(double s, const Matrix& rhs) {
  require(rows_ == rhs.rows_ && cols_ == rhs.cols_,
          "Matrix::add_scaled: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += s * rhs.data_[i];
  return *this;
}

Matrix& Matrix::add_outer(double s, const Vector& a, const Vector& b) {
  require(a.size() == rows_ && b.size() == cols_,
          "Matrix::add_outer: shape mismatch");
  for (std::size_t r = 0; r < rows_; ++r) {
    const double sa = s * a[r];
    if (sa == 0.0) continue;
    double* row = &data_[r * cols_];
    for (std::size_t c = 0; c < cols_; ++c) row[c] += sa * b[c];
  }
  return *this;
}

Vector Matrix::row(std::size_t r) const {
  require(r < rows_, "Matrix::row: index out of range");
  Vector v(cols_);
  for (std::size_t c = 0; c < cols_; ++c) v[c] = (*this)(r, c);
  return v;
}

Vector Matrix::col(std::size_t c) const {
  require(c < cols_, "Matrix::col: index out of range");
  Vector v(rows_);
  for (std::size_t r = 0; r < rows_; ++r) v[r] = (*this)(r, c);
  return v;
}

void Matrix::fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double Matrix::norm_inf() const {
  double m = 0.0;
  for (double x : data_) m = std::max(m, std::abs(x));
  return m;
}

bool approx_equal(const Matrix& a, const Matrix& b, double tol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < a.cols(); ++c)
      if (std::abs(a(r, c) - b(r, c)) > tol) return false;
  return true;
}

}  // namespace safenn::linalg
