// Packed fixed-point matrices + the batched integer GEMM family.
//
// The quantized inference engine (nn/qengine.hpp) serves the exact
// integer semantics the SMT stack verifies, so its kernels carry a
// stronger contract than the float GEMM family: integer addition is
// associative, hence every backend — scalar reference, AVX2, NEON,
// portable — produces BITWISE IDENTICAL accumulators. There is no
// tolerance gate here (contrast linalg/verify_kernels.hpp): the
// equivalence harness below asserts max |diff| == 0 and any nonzero
// difference is a kernel bug, never rounding.
//
// Layout: row-major with the row stride padded up to kQuantPad elements
// and the padding ZEROED. Padded zeros multiply to zero and add nothing,
// so SIMD kernels iterate whole padded rows with no remainder loop and
// exactness is preserved by construction.
//
// Number format (matches nn/quantize.hpp): weights are int16 in
// frac_bits format, activations are int32 in frac_bits format, and the
// accumulator C[i][j] = sum_p X[i][p] * W[j][p] is int64 in 2*frac_bits
// format. Overflow is excluded AT PACK TIME (nn/qengine.hpp propagates
// worst-case magnitude bounds and refuses with a typed error), so the
// kernels themselves are branch-free and UB-free on admitted inputs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "linalg/aligned.hpp"
#include "linalg/kernels.hpp"

namespace safenn::linalg {

/// Row stride granularity of the packed integer matrices: 16 elements
/// (32 B of int16, 64 B of int32) — one full AVX-512 lane group of
/// int32, two AVX2 groups. Kernels may read whole groups; the padding
/// is zeroed so the extra lanes contribute nothing.
inline constexpr std::size_t kQuantPad = 16;

inline constexpr std::size_t quant_stride(std::size_t cols) {
  return cols == 0 ? 0 : (cols + kQuantPad - 1) / kQuantPad * kQuantPad;
}

namespace detail {

/// Shared shell of the packed integer matrices: row-major `rows` x
/// `cols` with the stride padded to kQuantPad and the padding zeroed.
template <class T>
class PackedIntMatrix {
 public:
  PackedIntMatrix() = default;
  PackedIntMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), stride_(quant_stride(cols)),
        data_(rows * quant_stride(cols), T{0}) {
    debug_assert_aligned(data_.data());
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  /// Padded row stride in elements (>= cols, multiple of kQuantPad).
  std::size_t stride() const { return stride_; }

  T* row(std::size_t r) { return data_.data() + r * stride_; }
  const T* row(std::size_t r) const { return data_.data() + r * stride_; }

  T& operator()(std::size_t r, std::size_t c) {
    return data_[r * stride_ + c];
  }
  T operator()(std::size_t r, std::size_t c) const {
    return data_[r * stride_ + c];
  }

  /// Reshapes reusing the allocation where possible; every element
  /// (including the padding) is re-zeroed — callers overwrite the
  /// payload and rely on the padding staying zero.
  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    stride_ = quant_stride(cols);
    data_.assign(rows * stride_, T{0});
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t stride_ = 0;
  aligned_vector<T> data_;
};

}  // namespace detail

/// Packed int16 matrix — the quantized weight storage (frac_bits format).
using Int16Matrix = detail::PackedIntMatrix<std::int16_t>;

/// Packed int32 matrix — quantized activations, one sample per row.
using Int32Matrix = detail::PackedIntMatrix<std::int32_t>;

namespace qkernels {

/// c (m x n int64, dense row-major, caller-initialized e.g. with biases)
/// += x (m x k int32 packed) * w^T with w (n x k int16 packed).
/// Every backend is bitwise identical (exact integer arithmetic); the
/// caller guarantees no int64 overflow (pack-time bound analysis).
/// kQuantized requests resolve to the same dispatch as kSimd.
void qgemm_nt(std::int64_t* c, const Int32Matrix& x, const Int16Matrix& w,
              KernelBackend backend);

/// The scalar reference kernel (exposed for the harness and tests).
void qgemm_nt_reference(std::int64_t* c, const Int32Matrix& x,
                        const Int16Matrix& w);

}  // namespace qkernels

// ---------------------------------------------------------------------
// Bitwise kernel-equivalence harness. Unlike the float harness
// (verify_kernels.hpp) this one admits NO tolerance: integer kernels
// must agree to the last bit on every shape, or the backend is broken.
// ---------------------------------------------------------------------

struct QuantShape {
  std::size_t m = 0, k = 0, n = 0;
};

struct QuantKernelCheck {
  std::size_t m = 0, k = 0, n = 0;
  std::uint64_t max_abs_diff = 0;  // must be 0
  bool pass = false;
};

struct QuantKernelVerifyConfig {
  std::uint64_t seed = 20260808;
  std::size_t random_trials = 16;
  std::size_t max_dim = 48;
  /// Extra shapes to pin, e.g. the serving engine's (batch, in, out)
  /// per layer so the deployed configuration is exactly what is checked.
  std::vector<QuantShape> extra_shapes;
};

struct QuantKernelReport {
  SimdIsa isa = SimdIsa::kPortable;
  std::vector<QuantKernelCheck> checks;
  std::uint64_t worst_abs_diff = 0;
  bool pass = true;

  std::string summary() const;
};

/// Sweeps the integer GEMM over fixed awkward shapes (empty, 1x1,
/// remainder lanes, odd k) + randomized + configured shapes with
/// full-range int16 weights and large-magnitude int32 activations, and
/// requires the SIMD dispatch to be BITWISE equal to the scalar
/// reference on every one.
QuantKernelReport verify_quantized_kernels(
    const QuantKernelVerifyConfig& config = {});

}  // namespace safenn::linalg
