#include "linalg/qmatrix.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"

// Same architecture gates as kernels.cpp: AVX2 functions carry a target
// attribute and only run after the __builtin_cpu_supports check; NEON is
// baseline on AArch64.
#if defined(SAFENN_ENABLE_SIMD) && (defined(__x86_64__) || defined(__i386__))
#define SAFENN_QSIMD_X86 1
#include <immintrin.h>
#endif
#if defined(SAFENN_ENABLE_SIMD) && defined(__ARM_NEON)
#define SAFENN_QSIMD_NEON 1
#include <arm_neon.h>
#endif

namespace safenn::linalg {
namespace qkernels {
namespace {

// ---------------------------------------------------------------------
// Scalar reference: one int64 accumulator per output element, ascending
// p. Order is irrelevant for the result (exact integers) but this is
// the semantics every other backend must reproduce bit for bit.
// ---------------------------------------------------------------------

void scalar_qgemm_nt(std::int64_t* c, const Int32Matrix& x,
                     const Int16Matrix& w) {
  const std::size_t m = x.rows(), k = x.cols(), n = w.rows();
  for (std::size_t i = 0; i < m; ++i) {
    const std::int32_t* xrow = x.row(i);
    std::int64_t* crow = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const std::int16_t* wrow = w.row(j);
      std::int64_t acc = 0;
      for (std::size_t p = 0; p < k; ++p) {
        acc += static_cast<std::int64_t>(xrow[p]) *
               static_cast<std::int64_t>(wrow[p]);
      }
      crow[j] += acc;
    }
  }
}

// ---------------------------------------------------------------------
// AVX2 kernel: activations load as 8 x int32, weights sign-extend from
// int16, products widen to int64 via _mm256_mul_epi32 (even lanes +
// odd lanes shuffled even), accumulated in 4 x int64 registers. Four
// weight rows share each pass over the activation row. All arithmetic
// is exact — the only difference from the scalar kernel is summation
// order, which integer addition does not observe.
// ---------------------------------------------------------------------

#if defined(SAFENN_QSIMD_X86)

__attribute__((target("avx2"))) inline std::int64_t hsum_epi64(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  const __m128i pair = _mm_add_epi64(lo, hi);
  return _mm_cvtsi128_si64(pair) +
         _mm_cvtsi128_si64(_mm_unpackhi_epi64(pair, pair));
}

// One weight row's contribution for 8 packed elements: products of the
// even int32 lanes plus products of the odd lanes (shuffled into even
// position; _mm256_mul_epi32 reads the low 32 bits of each 64-bit lane,
// sign-extended).
__attribute__((target("avx2"))) inline __m256i qdot8(__m256i xv, __m256i xodd,
                                                     const std::int16_t* wp,
                                                     __m256i acc) {
  const __m256i wv =
      _mm256_cvtepi16_epi32(_mm_loadu_si128(
          reinterpret_cast<const __m128i*>(wp)));
  const __m256i wodd = _mm256_shuffle_epi32(wv, 0xF5);
  acc = _mm256_add_epi64(acc, _mm256_mul_epi32(xv, wv));
  return _mm256_add_epi64(acc, _mm256_mul_epi32(xodd, wodd));
}

__attribute__((target("avx2"))) void avx2_qgemm_nt(std::int64_t* c,
                                                   const Int32Matrix& x,
                                                   const Int16Matrix& w) {
  const std::size_t m = x.rows(), n = w.rows();
  const std::size_t kp = x.stride();  // padded length; padding is zero
  constexpr std::size_t kTile = 4;    // weight rows per pass over xrow
  const std::size_t n_tile = n - n % kTile;
  for (std::size_t i = 0; i < m; ++i) {
    const std::int32_t* xrow = x.row(i);
    std::int64_t* crow = c + i * n;
    std::size_t j = 0;
    for (; j < n_tile; j += kTile) {
      const std::int16_t* w0 = w.row(j);
      const std::int16_t* w1 = w.row(j + 1);
      const std::int16_t* w2 = w.row(j + 2);
      const std::int16_t* w3 = w.row(j + 3);
      __m256i acc0 = _mm256_setzero_si256();
      __m256i acc1 = _mm256_setzero_si256();
      __m256i acc2 = _mm256_setzero_si256();
      __m256i acc3 = _mm256_setzero_si256();
      for (std::size_t p = 0; p < kp; p += 8) {
        const __m256i xv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(xrow + p));
        const __m256i xodd = _mm256_shuffle_epi32(xv, 0xF5);
        acc0 = qdot8(xv, xodd, w0 + p, acc0);
        acc1 = qdot8(xv, xodd, w1 + p, acc1);
        acc2 = qdot8(xv, xodd, w2 + p, acc2);
        acc3 = qdot8(xv, xodd, w3 + p, acc3);
      }
      crow[j] += hsum_epi64(acc0);
      crow[j + 1] += hsum_epi64(acc1);
      crow[j + 2] += hsum_epi64(acc2);
      crow[j + 3] += hsum_epi64(acc3);
    }
    for (; j < n; ++j) {
      const std::int16_t* wrow = w.row(j);
      __m256i acc = _mm256_setzero_si256();
      for (std::size_t p = 0; p < kp; p += 8) {
        const __m256i xv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(xrow + p));
        acc = qdot8(xv, _mm256_shuffle_epi32(xv, 0xF5), wrow + p, acc);
      }
      crow[j] += hsum_epi64(acc);
    }
  }
}

// ---------------------------------------------------------------------
// AVX-512 kernel: same scheme at twice the width — 16 x int32 per pass,
// two 8-product vpmuldq per weight row, int64 accumulation in zmm.
// Integer kernels are bitwise-gated, so the wider ISA needs no separate
// tolerance story; it dispatches only after a runtime avx512f check.
// ---------------------------------------------------------------------

__attribute__((target("avx512f"))) inline __m512i qdot16(
    __m512i xv, __m512i xodd, const std::int16_t* wp, __m512i acc) {
  const __m512i wv = _mm512_cvtepi16_epi32(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(wp)));
  const __m512i wodd =
      _mm512_shuffle_epi32(wv, static_cast<_MM_PERM_ENUM>(0xF5));
  acc = _mm512_add_epi64(acc, _mm512_mul_epi32(xv, wv));
  return _mm512_add_epi64(acc, _mm512_mul_epi32(xodd, wodd));
}

__attribute__((target("avx512f"))) void avx512_qgemm_nt(std::int64_t* c,
                                                        const Int32Matrix& x,
                                                        const Int16Matrix& w) {
  const std::size_t m = x.rows(), n = w.rows();
  const std::size_t kp = x.stride();  // multiple of 16; padding is zero
  constexpr std::size_t kTile = 4;
  const std::size_t n_tile = n - n % kTile;
  for (std::size_t i = 0; i < m; ++i) {
    const std::int32_t* xrow = x.row(i);
    std::int64_t* crow = c + i * n;
    std::size_t j = 0;
    for (; j < n_tile; j += kTile) {
      const std::int16_t* w0 = w.row(j);
      const std::int16_t* w1 = w.row(j + 1);
      const std::int16_t* w2 = w.row(j + 2);
      const std::int16_t* w3 = w.row(j + 3);
      __m512i acc0 = _mm512_setzero_si512();
      __m512i acc1 = _mm512_setzero_si512();
      __m512i acc2 = _mm512_setzero_si512();
      __m512i acc3 = _mm512_setzero_si512();
      for (std::size_t p = 0; p < kp; p += 16) {
        const __m512i xv = _mm512_loadu_si512(
            reinterpret_cast<const void*>(xrow + p));
        const __m512i xodd =
            _mm512_shuffle_epi32(xv, static_cast<_MM_PERM_ENUM>(0xF5));
        acc0 = qdot16(xv, xodd, w0 + p, acc0);
        acc1 = qdot16(xv, xodd, w1 + p, acc1);
        acc2 = qdot16(xv, xodd, w2 + p, acc2);
        acc3 = qdot16(xv, xodd, w3 + p, acc3);
      }
      crow[j] += _mm512_reduce_add_epi64(acc0);
      crow[j + 1] += _mm512_reduce_add_epi64(acc1);
      crow[j + 2] += _mm512_reduce_add_epi64(acc2);
      crow[j + 3] += _mm512_reduce_add_epi64(acc3);
    }
    for (; j < n; ++j) {
      const std::int16_t* wrow = w.row(j);
      __m512i acc = _mm512_setzero_si512();
      for (std::size_t p = 0; p < kp; p += 16) {
        const __m512i xv = _mm512_loadu_si512(
            reinterpret_cast<const void*>(xrow + p));
        acc = qdot16(xv, _mm512_shuffle_epi32(
                             xv, static_cast<_MM_PERM_ENUM>(0xF5)),
                     wrow + p, acc);
      }
      crow[j] += _mm512_reduce_add_epi64(acc);
    }
  }
}

/// Runtime gate for the 512-bit path (cached). Both packed strides are
/// multiples of kQuantPad = 16 elements, so whole 16-element groups are
/// always in-bounds and the padding lanes are zero.
bool have_avx512() {
  static const bool ok = __builtin_cpu_supports("avx512f");
  return ok;
}

#endif  // SAFENN_QSIMD_X86

// ---------------------------------------------------------------------
// NEON kernel (AArch64): widen int16 weights to int32, multiply into
// int64 pairs with vmull_s32 over low/high halves.
// ---------------------------------------------------------------------

#if defined(SAFENN_QSIMD_NEON)

void neon_qgemm_nt(std::int64_t* c, const Int32Matrix& x,
                   const Int16Matrix& w) {
  const std::size_t m = x.rows(), n = w.rows();
  const std::size_t kp = x.stride();
  for (std::size_t i = 0; i < m; ++i) {
    const std::int32_t* xrow = x.row(i);
    std::int64_t* crow = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const std::int16_t* wrow = w.row(j);
      int64x2_t acc = vdupq_n_s64(0);
      for (std::size_t p = 0; p < kp; p += 4) {
        const int32x4_t xv = vld1q_s32(xrow + p);
        const int32x4_t wv = vmovl_s16(vld1_s16(wrow + p));
        acc = vaddq_s64(acc, vmull_s32(vget_low_s32(xv), vget_low_s32(wv)));
        acc = vaddq_s64(acc,
                        vmull_s32(vget_high_s32(xv), vget_high_s32(wv)));
      }
      crow[j] += vgetq_lane_s64(acc, 0) + vgetq_lane_s64(acc, 1);
    }
  }
}

#endif  // SAFENN_QSIMD_NEON

}  // namespace

void qgemm_nt_reference(std::int64_t* c, const Int32Matrix& x,
                        const Int16Matrix& w) {
  require(x.cols() == w.cols(), "qgemm_nt: contraction width mismatch");
  scalar_qgemm_nt(c, x, w);
}

void qgemm_nt(std::int64_t* c, const Int32Matrix& x, const Int16Matrix& w,
              KernelBackend backend) {
  require(x.cols() == w.cols(), "qgemm_nt: contraction width mismatch");
  if (backend == KernelBackend::kReference) {
    scalar_qgemm_nt(c, x, w);
    return;
  }
  switch (active_simd_isa()) {
#if defined(SAFENN_QSIMD_X86)
    case SimdIsa::kAvx2Fma:
      // Integer results are exact on every lane width, so the wider
      // path needs only the runtime ISA check, not a tolerance story.
      if (have_avx512()) {
        avx512_qgemm_nt(c, x, w);
      } else {
        avx2_qgemm_nt(c, x, w);
      }
      return;
#endif
#if defined(SAFENN_QSIMD_NEON)
    case SimdIsa::kNeon:
      neon_qgemm_nt(c, x, w);
      return;
#endif
    default:
      // Portable fallback: nothing to vectorize, run the reference loop
      // (identical result either way — the contract is bitwise).
      scalar_qgemm_nt(c, x, w);
      return;
  }
}

}  // namespace qkernels

std::string QuantKernelReport::summary() const {
  std::ostringstream os;
  os << "quantized kernels on " << to_string(isa) << ": " << checks.size()
     << " checks, worst |diff| " << worst_abs_diff << " -> "
     << (pass ? "PASS (bitwise)" : "FAIL");
  return os.str();
}

QuantKernelReport verify_quantized_kernels(
    const QuantKernelVerifyConfig& config) {
  QuantKernelReport report;
  report.isa = active_simd_isa();

  std::vector<QuantShape> shapes = {
      {0, 0, 0},  {0, 3, 2},  {1, 1, 1},  {1, 0, 1},  {3, 8, 4},
      {2, 16, 8}, {5, 9, 7},  {4, 13, 5}, {7, 24, 3}, {1, 7, 1},
      {6, 33, 9}, {32, 84, 15},
  };
  Rng rng(config.seed);
  // Inclusive uniform draw in [lo, hi] on top of Rng::uniform_index.
  const auto rand_in = [&rng](std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(rng.uniform_index(
                    static_cast<std::uint64_t>(hi - lo + 1)));
  };
  for (std::size_t t = 0; t < config.random_trials; ++t) {
    shapes.push_back(
        {static_cast<std::size_t>(rng.uniform_index(config.max_dim + 1)),
         static_cast<std::size_t>(rng.uniform_index(config.max_dim + 1)),
         static_cast<std::size_t>(rng.uniform_index(config.max_dim + 1))});
  }
  shapes.insert(shapes.end(), config.extra_shapes.begin(),
                config.extra_shapes.end());

  for (const QuantShape& s : shapes) {
    Int32Matrix x(s.m, s.k);
    Int16Matrix w(s.n, s.k);
    // Full-range weights and large-magnitude activations: |x| up to
    // 2^24 with |w| up to 2^15 over k <= 64ish stays far inside int64
    // while stressing the widening paths.
    for (std::size_t i = 0; i < s.m; ++i) {
      for (std::size_t p = 0; p < s.k; ++p) {
        x(i, p) = static_cast<std::int32_t>(rand_in(-(1 << 24), 1 << 24));
      }
    }
    for (std::size_t j = 0; j < s.n; ++j) {
      for (std::size_t p = 0; p < s.k; ++p) {
        w(j, p) = static_cast<std::int16_t>(rand_in(-32768, 32767));
      }
    }
    std::vector<std::int64_t> c_ref(s.m * s.n, 0);
    std::vector<std::int64_t> c_simd(s.m * s.n, 0);
    // Nonzero initial accumulators exercise the += contract too.
    for (std::size_t e = 0; e < c_ref.size(); ++e) {
      c_ref[e] = c_simd[e] = static_cast<std::int64_t>(e) * 1007 - 42;
    }
    qkernels::qgemm_nt_reference(c_ref.data(), x, w);
    qkernels::qgemm_nt(c_simd.data(), x, w, KernelBackend::kSimd);

    QuantKernelCheck check;
    check.m = s.m;
    check.k = s.k;
    check.n = s.n;
    for (std::size_t e = 0; e < c_ref.size(); ++e) {
      const std::uint64_t diff =
          c_ref[e] >= c_simd[e]
              ? static_cast<std::uint64_t>(c_ref[e] - c_simd[e])
              : static_cast<std::uint64_t>(c_simd[e] - c_ref[e]);
      check.max_abs_diff = std::max(check.max_abs_diff, diff);
    }
    check.pass = check.max_abs_diff == 0;
    report.worst_abs_diff =
        std::max(report.worst_abs_diff, check.max_abs_diff);
    report.pass = report.pass && check.pass;
    report.checks.push_back(check);
  }
  return report;
}

}  // namespace safenn::linalg
