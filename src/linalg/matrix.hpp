// Dense row-major double matrix.
#pragma once

#include <cstddef>
#include <initializer_list>

#include "linalg/aligned.hpp"
#include "linalg/kernels.hpp"
#include "linalg/vector.hpp"

namespace safenn::linalg {

/// Dense row-major matrix with the operations needed by layers (matvec,
/// outer product, transpose-matvec), by the simplex tableau, and by the
/// batched inference/training path (the GEMM family below, with the
/// batch-as-rows convention: one sample per row).
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
  /// Row-by-row construction, e.g. Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  /// Number of stored entries (rows * cols).
  std::size_t size() const { return data_.size(); }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Reshapes to rows x cols reusing the existing allocation where
  /// possible (scratch-buffer reuse on hot paths). Contents are
  /// unspecified after a shape change.
  void resize(std::size_t rows, std::size_t cols);

  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  /// Unchecked access for hot loops.
  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// y = A x.
  Vector matvec(const Vector& x) const;
  /// y = A^T x.
  Vector matvec_transposed(const Vector& x) const;

  Matrix transposed() const;
  Matrix operator*(const Matrix& rhs) const;

  /// C = A B, cache-blocked. With the default kReference backend each
  /// output entry accumulates over k in ascending order and rounds
  /// exactly like the matvec path; kSimd vectorizes over output columns
  /// with fused multiply-adds and is tolerance-checked (see kernels.hpp).
  static Matrix gemm(const Matrix& a, const Matrix& b,
                     KernelBackend backend = KernelBackend::kReference);
  /// out = A B without reallocating when `out` already has the shape.
  static void gemm_into(const Matrix& a, const Matrix& b, Matrix& out,
                        KernelBackend backend = KernelBackend::kReference);
  /// out = A B^T (both operands traversed along contiguous rows; the
  /// batched layer forward, with B = the out x in weight matrix). The
  /// kSimd backend reassociates the k-contraction across vector lanes —
  /// results are tolerance-checked against kReference, not bitwise.
  static void gemm_nt_into(const Matrix& a, const Matrix& b, Matrix& out,
                           KernelBackend backend = KernelBackend::kReference);

  /// this += s * A B^T (kSimd: reassociated, tolerance-checked).
  Matrix& add_gemm_nt(double s, const Matrix& a, const Matrix& b,
                      KernelBackend backend = KernelBackend::kReference);
  /// this += s * A^T B (a (rows-of-A)-long sequence of rank-1 updates in
  /// ascending row order — the batched gradient accumulation, matching
  /// per-sample add_outer order; kSimd fuses and is tolerance-checked).
  Matrix& add_gemm_tn(double s, const Matrix& a, const Matrix& b,
                      KernelBackend backend = KernelBackend::kReference);

  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator*=(double s);
  /// this += s * rhs.
  Matrix& add_scaled(double s, const Matrix& rhs);

  /// this += s * a b^T (rank-1 update used by backprop).
  Matrix& add_outer(double s, const Vector& a, const Vector& b);

  Vector row(std::size_t r) const;
  Vector col(std::size_t c) const;

  void fill(double value);
  static Matrix identity(std::size_t n);

  double norm_inf() const;  ///< Max absolute entry.

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  aligned_vector<double> data_;  // 64-byte aligned for the SIMD kernels
};

bool approx_equal(const Matrix& a, const Matrix& b, double tol = 1e-9);

}  // namespace safenn::linalg
