// Dense row-major double matrix.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "linalg/vector.hpp"

namespace safenn::linalg {

/// Dense row-major matrix with the operations needed by layers (matvec,
/// outer product, transpose-matvec) and by the simplex tableau.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
  /// Row-by-row construction, e.g. Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  /// Unchecked access for hot loops.
  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// y = A x.
  Vector matvec(const Vector& x) const;
  /// y = A^T x.
  Vector matvec_transposed(const Vector& x) const;

  Matrix transposed() const;
  Matrix operator*(const Matrix& rhs) const;

  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator*=(double s);
  /// this += s * rhs.
  Matrix& add_scaled(double s, const Matrix& rhs);

  /// this += s * a b^T (rank-1 update used by backprop).
  Matrix& add_outer(double s, const Vector& a, const Vector& b);

  Vector row(std::size_t r) const;
  Vector col(std::size_t c) const;

  void fill(double value);
  static Matrix identity(std::size_t n);

  double norm_inf() const;  ///< Max absolute entry.

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

bool approx_equal(const Matrix& a, const Matrix& b, double tol = 1e-9);

}  // namespace safenn::linalg
