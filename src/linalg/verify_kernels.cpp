#include "linalg/verify_kernels.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/rng.hpp"
#include "linalg/matrix.hpp"

namespace safenn::linalg {
namespace {

constexpr double kToleranceSlack = 8.0;

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = rng.uniform(-1.0, 1.0);
  }
  return m;
}

/// Compares `backend` against kReference for one op at one shape and
/// appends the check. GEMM ops carry the derived dot tolerance; ReLU
/// carries tolerance 0 (max has no rounding, so it must match exactly).
void record(KernelReport& report, std::string op, std::size_t m,
            std::size_t k, std::size_t n, double rms, double tolerance) {
  KernelCheck check;
  check.op = std::move(op);
  check.m = m;
  check.k = k;
  check.n = n;
  check.rms = rms;
  check.tolerance = tolerance;
  check.pass = rms <= tolerance;
  report.worst_rms = std::max(report.worst_rms, rms);
  const double ratio = tolerance > 0.0
                           ? rms / tolerance
                           : (rms > 0.0
                                  ? std::numeric_limits<double>::infinity()
                                  : 0.0);
  if (ratio >= report.worst_ratio) {
    report.worst_ratio = ratio;
    report.worst_tolerance = tolerance;
  }
  report.pass = report.pass && check.pass;
  report.checks.push_back(std::move(check));
}

void check_shape(KernelReport& report, KernelBackend backend,
                 const GemmShape& shape, Rng& rng) {
  const std::size_t m = shape.m, k = shape.k, n = shape.n;

  // NT: c += s * a b^T — the reassociating kernel, tolerance-gated.
  {
    const Matrix a = random_matrix(m, k, rng);
    const Matrix b = random_matrix(n, k, rng);
    Matrix c_ref = random_matrix(m, n, rng);  // exercise accumulation
    Matrix c_alt = c_ref;
    const double s = 0.75;
    c_ref.add_gemm_nt(s, a, b);
    c_alt.add_gemm_nt(s, a, b, backend);
    record(report, "gemm_nt", m, k, n,
           rms_range(c_ref.data(), c_alt.data(), c_ref.size()),
           dot_tolerance(k));
  }

  // NN: out = a b — same ascending-k update order, but whether each
  // mul+add step is fused differs between the explicit kernels and what
  // the compiler contracts the scalar loop into, so the k-length
  // contraction tolerance applies here too.
  {
    const Matrix a = random_matrix(m, k, rng);
    const Matrix b = random_matrix(k, n, rng);
    Matrix out_ref, out_alt;
    Matrix::gemm_into(a, b, out_ref);
    Matrix::gemm_into(a, b, out_alt, backend);
    record(report, "gemm_nn", m, k, n,
           rms_range(out_ref.data(), out_alt.data(), out_ref.size()),
           dot_tolerance(k));
  }

  // TN: c += s * a^T b — ascending rank-1 updates, contraction length k.
  {
    const Matrix a = random_matrix(k, m, rng);
    const Matrix b = random_matrix(k, n, rng);
    Matrix c_ref = random_matrix(m, n, rng);
    Matrix c_alt = c_ref;
    const double s = -0.5;
    c_ref.add_gemm_tn(s, a, b);
    c_alt.add_gemm_tn(s, a, b, backend);
    record(report, "gemm_tn", m, k, n,
           rms_range(c_ref.data(), c_alt.data(), c_ref.size()),
           dot_tolerance(k));
  }

  // ReLU over m*n elements (signs mixed, zeros included) — exact.
  {
    const std::size_t count = m * n;
    Matrix z = random_matrix(m, n, rng);
    if (count > 0) z.data()[count / 2] = 0.0;
    if (count > 1) z.data()[count / 3] = -0.0;
    Matrix out_ref(m, n), out_alt(m, n);
    for (std::size_t i = 0; i < count; ++i) {
      out_ref.data()[i] = z.data()[i] > 0.0 ? z.data()[i] : 0.0;
    }
    kernels::simd_relu(z.data(), out_alt.data(), count);
    // kReference trivially reuses the scalar loop, so only gate kSimd.
    if (backend == KernelBackend::kReference) out_alt = out_ref;
    record(report, "relu", m, 0, n,
           rms_range(out_ref.data(), out_alt.data(), count), 0.0);
  }
}

}  // namespace

double rms_range(const double* a, const double* b, std::size_t n) {
  if (n == 0) return 0.0;
  double sq_diff = 0.0;
  double mag = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    sq_diff += d * d;
    mag = std::max({mag, std::abs(a[i]), std::abs(b[i])});
  }
  return std::sqrt(sq_diff / static_cast<double>(n)) / mag;
}

double dot_tolerance(std::size_t k) {
  const double eps = std::numeric_limits<double>::epsilon();
  return kToleranceSlack * static_cast<double>(std::max<std::size_t>(k, 1)) *
         eps;
}

std::string KernelReport::summary() const {
  std::ostringstream os;
  os << to_string(backend) << " (" << to_string(isa) << "): "
     << checks.size() << " checks, worst rms " << worst_rms
     << " vs tolerance " << worst_tolerance << " -> "
     << (pass ? "PASS" : "FAIL");
  return os.str();
}

KernelReport verify_kernel_backend(KernelBackend backend,
                                   const KernelVerifyConfig& config) {
  KernelReport report;
  report.backend = backend;
  report.isa = active_simd_isa();
  Rng rng(config.seed);

  // Fixed awkward shapes: empty, 1x1, sub-tile n (< kJr), remainder
  // lanes (n % kJr != 0), odd and sub-vector k.
  std::vector<GemmShape> shapes = {
      {0, 0, 0}, {0, 3, 2},  {1, 1, 1},  {1, 3, 1},  {2, 1, 5},
      {3, 2, 3}, {1, 7, 2},  {5, 5, 5},  {4, 9, 6},  {2, 13, 7},
      {7, 4, 9}, {6, 33, 10}, {3, 84, 15}, {32, 84, 32},
  };
  for (std::size_t t = 0; t < config.random_trials; ++t) {
    GemmShape s;
    s.m = 1 + rng.uniform_index(config.max_dim);
    s.k = 1 + rng.uniform_index(config.max_dim);
    s.n = 1 + rng.uniform_index(config.max_dim);
    shapes.push_back(s);
  }
  shapes.insert(shapes.end(), config.extra_shapes.begin(),
                config.extra_shapes.end());

  for (const GemmShape& shape : shapes) {
    check_shape(report, backend, shape, rng);
  }
  return report;
}

}  // namespace safenn::linalg
