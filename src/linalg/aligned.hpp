// 64-byte aligned storage for linalg containers.
//
// The SIMD kernels (linalg/kernels.hpp) load rows with vector
// instructions; giving every Matrix/Vector buffer cache-line alignment
// keeps those loads from straddling cache lines at the row starts and
// makes the alignment assumption checkable instead of accidental.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace safenn::linalg {

/// Alignment (bytes) of every Matrix/Vector data buffer: one cache line,
/// which also covers the widest vector register in use (AVX-512 = 64 B).
inline constexpr std::size_t kStorageAlignment = 64;

/// Minimal C++17 aligned allocator: std::allocator semantics with
/// `kStorageAlignment`-aligned storage from the aligned operator new.
template <class T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(
        n * sizeof(T), std::align_val_t{kStorageAlignment}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kStorageAlignment});
  }

  template <class U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
  template <class U>
  bool operator!=(const AlignedAllocator<U>&) const noexcept {
    return false;
  }
};

/// Storage type used by Matrix and Vector.
template <class T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

/// Debug-build check that a buffer honours kStorageAlignment (empty
/// buffers may hand out any pointer).
inline void debug_assert_aligned(const void* p) {
  assert(p == nullptr ||
         reinterpret_cast<std::uintptr_t>(p) % kStorageAlignment == 0);
  (void)p;
}

}  // namespace safenn::linalg
