// Two-phase primal simplex for LPs with bounded variables.
//
// Dense tableau implementation sized for the LP relaxations produced by
// the MILP encoding of ReLU networks (hundreds to a few thousand
// columns). Bounded-variable pivoting with bound flips, Dantzig pricing
// with a Bland's-rule anti-cycling fallback, and Phase-1 artificial
// variables for a feasible start.
#pragma once

#include <vector>

#include "lp/problem.hpp"

namespace safenn::lp {

enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
};

struct Solution {
  SolveStatus status = SolveStatus::kIterationLimit;
  /// Objective in the problem's own sense (max problems report the max).
  double objective = 0.0;
  /// Values of the structural variables (empty unless kOptimal).
  std::vector<double> values;
  long iterations = 0;
};

struct SimplexOptions {
  long max_iterations = 200000;
  double feasibility_tol = 1e-7;
  double optimality_tol = 1e-7;
  double pivot_tol = 1e-9;
  /// Switch to Bland's rule after this many consecutive degenerate pivots.
  long degenerate_switch = 200;
  /// Recompute basic values from scratch every N pivots (numerical hygiene).
  long refresh_interval = 128;
};

/// Solves an LP. Stateless; safe to reuse across problems.
class SimplexSolver {
 public:
  explicit SimplexSolver(SimplexOptions options = {});

  Solution solve(const Problem& problem) const;

 private:
  SimplexOptions options_;
};

}  // namespace safenn::lp
