#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace safenn::lp {
namespace {

constexpr double kInf = kInfinity;

/// Dense bounded-variable simplex working state. Column layout:
/// [0, n)           structural variables
/// [n, n+m)         slacks (one per row; fixed to 0 for equalities)
/// [n+m, n+2m)      Phase-1 artificials
struct Tableau {
  int n = 0;       // structural count
  int m = 0;       // row count
  int ncols = 0;   // n + 2m
  std::vector<double> a;     // m x ncols, row-major: B^{-1} A maintained
  std::vector<double> rhs;   // B^{-1} b maintained
  std::vector<double> lo, hi;
  std::vector<double> cost;  // current phase costs
  std::vector<double> val;   // current value per column
  std::vector<int> basis;    // basic column per row
  std::vector<char> in_basis;

  double& at(int r, int c) { return a[static_cast<std::size_t>(r) * ncols + c]; }
  double at(int r, int c) const {
    return a[static_cast<std::size_t>(r) * ncols + c];
  }
};

/// Snaps nonbasic starting value: finite lower bound preferred, then
/// finite upper, else 0 (free variable).
double initial_value(double lo, double hi) {
  if (std::isfinite(lo)) return lo;
  if (std::isfinite(hi)) return hi;
  return 0.0;
}

}  // namespace

SimplexSolver::SimplexSolver(SimplexOptions options) : options_(options) {}

namespace {

/// Recomputes basic variable values from the pivoted rhs and the nonbasic
/// assignment: x_B = (B^{-1}b) - sum_{j nonbasic} (B^{-1}A)_j x_j.
void refresh_basic_values(Tableau& t) {
  std::vector<double> beta = t.rhs;
  for (int j = 0; j < t.ncols; ++j) {
    if (t.in_basis[j] || t.val[j] == 0.0) continue;
    for (int r = 0; r < t.m; ++r) {
      const double coef = t.at(r, j);
      if (coef != 0.0) beta[static_cast<std::size_t>(r)] -= coef * t.val[j];
    }
  }
  for (int r = 0; r < t.m; ++r) t.val[t.basis[r]] = beta[static_cast<std::size_t>(r)];
}

/// Performs the elimination pivot making column `enter` basic in row `r`.
void pivot(Tableau& t, int r, int enter) {
  const double piv = t.at(r, enter);
  const double inv = 1.0 / piv;
  for (int c = 0; c < t.ncols; ++c) t.at(r, c) *= inv;
  t.rhs[static_cast<std::size_t>(r)] *= inv;
  for (int i = 0; i < t.m; ++i) {
    if (i == r) continue;
    const double f = t.at(i, enter);
    if (f == 0.0) continue;
    for (int c = 0; c < t.ncols; ++c) t.at(i, c) -= f * t.at(r, c);
    t.at(i, enter) = 0.0;  // kill residual rounding
    t.rhs[static_cast<std::size_t>(i)] -= f * t.rhs[static_cast<std::size_t>(r)];
  }
  t.in_basis[t.basis[r]] = 0;
  t.in_basis[enter] = 1;
  t.basis[r] = enter;
}

enum class PhaseResult { kOptimal, kUnbounded, kIterationLimit };

/// Runs primal simplex on the current costs until optimality. `allow`
/// filters which columns may enter (used to ban artificials in Phase 2).
PhaseResult run_phase(Tableau& t, const SimplexOptions& opt, long& iters,
                      bool allow_artificial) {
  long degenerate_streak = 0;
  const int enter_limit = allow_artificial ? t.ncols : t.n + t.m;

  while (iters < opt.max_iterations) {
    ++iters;

    // Reduced costs d_j = c_j - c_B^T T_j, via y_r = cost of row r's basic.
    // Only rows whose basic column carries nonzero cost contribute.
    std::vector<std::pair<int, double>> priced_rows;
    priced_rows.reserve(static_cast<std::size_t>(t.m));
    for (int r = 0; r < t.m; ++r) {
      const double cb = t.cost[static_cast<std::size_t>(t.basis[r])];
      if (cb != 0.0) priced_rows.emplace_back(r, cb);
    }

    const bool bland = degenerate_streak >= opt.degenerate_switch;
    int enter = -1;
    int dir = +1;
    double best_score = opt.optimality_tol;
    for (int j = 0; j < enter_limit; ++j) {
      if (t.in_basis[j]) continue;
      if (t.lo[j] == t.hi[j]) continue;  // fixed column can never improve
      double d = t.cost[static_cast<std::size_t>(j)];
      for (const auto& [r, cb] : priced_rows) d -= cb * t.at(r, j);

      const bool at_lower = std::isfinite(t.lo[j]) && t.val[j] <= t.lo[j] + opt.feasibility_tol;
      const bool at_upper = std::isfinite(t.hi[j]) && t.val[j] >= t.hi[j] - opt.feasibility_tol;
      const bool is_free = !at_lower && !at_upper;

      int cand_dir = 0;
      double score = 0.0;
      if ((at_lower || is_free) && d < -opt.optimality_tol) {
        cand_dir = +1;
        score = -d;
      } else if ((at_upper || is_free) && d > opt.optimality_tol) {
        cand_dir = -1;
        score = d;
      }
      if (cand_dir == 0) continue;
      if (bland) {  // first eligible index
        enter = j;
        dir = cand_dir;
        break;
      }
      if (score > best_score) {
        best_score = score;
        enter = j;
        dir = cand_dir;
      }
    }
    if (enter < 0) return PhaseResult::kOptimal;

    // Ratio test: how far can the entering variable move before either it
    // hits its own opposite bound (bound flip) or a basic variable hits
    // one of its bounds (pivot).
    const double flip_limit =
        (std::isfinite(t.lo[enter]) && std::isfinite(t.hi[enter]))
            ? t.hi[enter] - t.lo[enter]
            : kInf;
    double row_limit = kInf;
    int leave_row = -1;
    double leave_pivot = 0.0;
    bool leave_hits_upper = false;
    for (int r = 0; r < t.m; ++r) {
      const double coef = t.at(r, enter);
      if (std::abs(coef) <= opt.pivot_tol) continue;
      const int b = t.basis[r];
      const double rate = -dir * coef;  // d(val_b)/d(theta)
      double limit;
      bool hits_upper;
      if (rate > 0.0) {
        if (!std::isfinite(t.hi[b])) continue;
        limit = (t.hi[b] - t.val[b]) / rate;
        hits_upper = true;
      } else {
        if (!std::isfinite(t.lo[b])) continue;
        limit = (t.val[b] - t.lo[b]) / (-rate);
        hits_upper = false;
      }
      if (limit < 0.0) limit = 0.0;  // shadow of feasibility tolerance
      bool take;
      if (leave_row < 0) {
        take = limit < row_limit;
      } else if (limit < row_limit - 1e-12) {
        take = true;
      } else if (limit < row_limit + 1e-12) {
        // Tie-break: Bland -> smallest basic index; else largest pivot.
        take = bland ? b < t.basis[leave_row]
                     : std::abs(coef) > std::abs(leave_pivot);
      } else {
        take = false;
      }
      if (take) {
        row_limit = std::min(row_limit, limit);
        leave_row = r;
        leave_pivot = coef;
        leave_hits_upper = hits_upper;
      }
    }

    const double theta = std::min(flip_limit, row_limit);
    if (!std::isfinite(theta)) return PhaseResult::kUnbounded;

    degenerate_streak =
        (theta <= opt.feasibility_tol) ? degenerate_streak + 1 : 0;

    // Apply the move to all basic values.
    if (theta != 0.0) {
      for (int r = 0; r < t.m; ++r) {
        const double coef = t.at(r, enter);
        if (coef != 0.0) t.val[t.basis[r]] -= dir * coef * theta;
      }
    }

    if (flip_limit <= row_limit) {
      // Bound flip: the entering variable jumps to its opposite bound and
      // the basis is unchanged.
      t.val[enter] = (dir > 0) ? t.hi[enter] : t.lo[enter];
      continue;
    }

    // Pivot: entering becomes basic, row's old basic leaves at a bound.
    const int leaving = t.basis[leave_row];
    t.val[enter] = t.val[enter] + dir * theta;
    pivot(t, leave_row, enter);
    t.val[leaving] = leave_hits_upper ? t.hi[leaving] : t.lo[leaving];

    if (iters % opt.refresh_interval == 0) refresh_basic_values(t);
  }
  return PhaseResult::kIterationLimit;
}

}  // namespace

Solution SimplexSolver::solve(const Problem& problem) const {
  const int n = problem.num_variables();
  const int m = problem.num_constraints();
  require(n > 0, "SimplexSolver: problem has no variables");

  Tableau t;
  t.n = n;
  t.m = m;
  t.ncols = n + 2 * m;
  t.a.assign(static_cast<std::size_t>(m) * t.ncols, 0.0);
  t.rhs.assign(static_cast<std::size_t>(m), 0.0);
  t.lo.assign(static_cast<std::size_t>(t.ncols), 0.0);
  t.hi.assign(static_cast<std::size_t>(t.ncols), 0.0);
  t.cost.assign(static_cast<std::size_t>(t.ncols), 0.0);
  t.val.assign(static_cast<std::size_t>(t.ncols), 0.0);
  t.basis.assign(static_cast<std::size_t>(m), -1);
  t.in_basis.assign(static_cast<std::size_t>(t.ncols), 0);

  const double obj_sign = problem.maximize() ? -1.0 : 1.0;

  for (int j = 0; j < n; ++j) {
    const Variable& v = problem.variable(j);
    t.lo[j] = v.lower;
    t.hi[j] = v.upper;
    t.val[j] = initial_value(v.lower, v.upper);
  }
  for (int i = 0; i < m; ++i) {
    const Constraint& c = problem.constraint(i);
    for (const auto& [var, coef] : c.terms) t.at(i, var) = coef;
    const int slack = n + i;
    t.at(i, slack) = 1.0;
    switch (c.relation) {
      case Relation::kLe: t.lo[slack] = 0.0; t.hi[slack] = kInf; break;
      case Relation::kGe: t.lo[slack] = -kInf; t.hi[slack] = 0.0; break;
      case Relation::kEq: t.lo[slack] = 0.0; t.hi[slack] = 0.0; break;
    }
    t.val[slack] = 0.0;
  }

  // Residuals with every structural/slack column at its start value give
  // the artificial signs and starting basis.
  for (int i = 0; i < m; ++i) {
    const Constraint& c = problem.constraint(i);
    double lhs = 0.0;
    for (const auto& [var, coef] : c.terms) lhs += coef * t.val[var];
    const double r = c.rhs - lhs;  // slack starts at 0
    const double sign = (r >= 0.0) ? 1.0 : -1.0;
    const int art = n + m + i;
    // Scale the whole row by sign so the artificial column is +1 and the
    // tableau equals B^{-1}A for the artificial basis.
    if (sign < 0.0) {
      for (int ccol = 0; ccol < n + m; ++ccol) t.at(i, ccol) = -t.at(i, ccol);
    }
    t.at(i, art) = 1.0;
    t.lo[art] = 0.0;
    t.hi[art] = kInf;
    t.rhs[static_cast<std::size_t>(i)] = sign * c.rhs;
    t.val[art] = std::abs(r);
    t.basis[static_cast<std::size_t>(i)] = art;
    t.in_basis[static_cast<std::size_t>(art)] = 1;
  }
  // rhs currently holds sign*b; fold in the nonbasic start values.
  refresh_basic_values(t);

  Solution sol;
  long iters = 0;

  // Phase 1: minimize the sum of artificials.
  for (int i = 0; i < m; ++i) t.cost[static_cast<std::size_t>(n + m + i)] = 1.0;
  PhaseResult p1 = run_phase(t, options_, iters, /*allow_artificial=*/true);
  if (p1 == PhaseResult::kIterationLimit) {
    sol.status = SolveStatus::kIterationLimit;
    sol.iterations = iters;
    return sol;
  }
  refresh_basic_values(t);
  double infeas = 0.0;
  for (int i = 0; i < m; ++i) infeas += std::max(0.0, t.val[n + m + i]);
  if (infeas > 1e-6) {
    sol.status = SolveStatus::kInfeasible;
    sol.iterations = iters;
    return sol;
  }

  // Drive any basic artificial (at value ~0) out of the basis when a
  // usable pivot exists; otherwise its row is redundant and the artificial
  // stays pinned at zero.
  for (int r = 0; r < m; ++r) {
    const int b = t.basis[static_cast<std::size_t>(r)];
    if (b < n + m) continue;
    int col = -1;
    for (int j = 0; j < n + m; ++j) {
      if (t.in_basis[static_cast<std::size_t>(j)]) continue;
      if (std::abs(t.at(r, j)) > 1e-7) {
        col = j;
        break;
      }
    }
    if (col >= 0) {
      const double keep = t.val[col];
      pivot(t, r, col);
      t.val[col] = keep;  // degenerate pivot: values unchanged
      t.val[b] = 0.0;
    }
  }
  // Lock artificials at zero for Phase 2.
  for (int i = 0; i < m; ++i) {
    const int art = n + m + i;
    t.lo[static_cast<std::size_t>(art)] = 0.0;
    t.hi[static_cast<std::size_t>(art)] = 0.0;
    if (!t.in_basis[static_cast<std::size_t>(art)]) t.val[static_cast<std::size_t>(art)] = 0.0;
  }
  refresh_basic_values(t);

  // Phase 2: the real objective.
  std::fill(t.cost.begin(), t.cost.end(), 0.0);
  for (int j = 0; j < n; ++j)
    t.cost[static_cast<std::size_t>(j)] = obj_sign * problem.variable(j).objective;

  PhaseResult p2 = run_phase(t, options_, iters, /*allow_artificial=*/false);
  sol.iterations = iters;
  if (p2 == PhaseResult::kIterationLimit) {
    sol.status = SolveStatus::kIterationLimit;
    return sol;
  }
  if (p2 == PhaseResult::kUnbounded) {
    sol.status = SolveStatus::kUnbounded;
    return sol;
  }

  refresh_basic_values(t);
  sol.status = SolveStatus::kOptimal;
  sol.values.resize(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    double v = t.val[static_cast<std::size_t>(j)];
    // Snap tiny bound violations introduced by finite tolerances.
    const Variable& var = problem.variable(j);
    v = std::clamp(v, var.lower, var.upper);
    sol.values[static_cast<std::size_t>(j)] = v;
  }
  sol.objective = problem.objective_value(sol.values);
  return sol;
}

}  // namespace safenn::lp
