// Linear program container.
#pragma once

#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace safenn::lp {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

enum class Relation { kLe, kGe, kEq };

/// A sparse linear expression: sum of (variable index, coefficient).
using LinearTerms = std::vector<std::pair<int, double>>;

struct Constraint {
  LinearTerms terms;
  Relation relation = Relation::kLe;
  double rhs = 0.0;
  std::string name;
};

struct Variable {
  double lower = 0.0;
  double upper = kInfinity;
  double objective = 0.0;
  std::string name;
};

/// An LP: optimize c^T x subject to row relations and variable bounds.
/// Construction-only API; solving lives in SimplexSolver.
class Problem {
 public:
  /// Adds a variable, returns its index.
  int add_variable(double lower, double upper, double objective = 0.0,
                   std::string name = "");

  /// Adds a row; duplicate variable entries in `terms` are summed.
  int add_constraint(LinearTerms terms, Relation relation, double rhs,
                     std::string name = "");

  void set_objective(int var, double coefficient);
  void set_maximize(bool maximize) { maximize_ = maximize; }

  bool maximize() const { return maximize_; }
  int num_variables() const { return static_cast<int>(variables_.size()); }
  int num_constraints() const { return static_cast<int>(constraints_.size()); }

  const Variable& variable(int i) const;
  Variable& variable(int i);
  const Constraint& constraint(int i) const;

  /// Evaluates the objective at a point.
  double objective_value(const std::vector<double>& x) const;

  /// Maximum row violation at a point (0 when feasible w.r.t. rows).
  double max_violation(const std::vector<double>& x) const;

 private:
  std::vector<Variable> variables_;
  std::vector<Constraint> constraints_;
  bool maximize_ = false;
};

}  // namespace safenn::lp
