#include "lp/problem.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/error.hpp"

namespace safenn::lp {

int Problem::add_variable(double lower, double upper, double objective,
                          std::string name) {
  require(lower <= upper, "Problem::add_variable: lower > upper");
  variables_.push_back(Variable{lower, upper, objective, std::move(name)});
  return static_cast<int>(variables_.size()) - 1;
}

int Problem::add_constraint(LinearTerms terms, Relation relation, double rhs,
                            std::string name) {
  // Merge duplicate indices so the solver sees each column once per row.
  std::map<int, double> merged;
  for (const auto& [var, coef] : terms) {
    require(var >= 0 && var < num_variables(),
            "Problem::add_constraint: unknown variable index");
    merged[var] += coef;
  }
  LinearTerms clean;
  clean.reserve(merged.size());
  for (const auto& [var, coef] : merged) {
    if (coef != 0.0) clean.emplace_back(var, coef);
  }
  constraints_.push_back(
      Constraint{std::move(clean), relation, rhs, std::move(name)});
  return static_cast<int>(constraints_.size()) - 1;
}

void Problem::set_objective(int var, double coefficient) {
  require(var >= 0 && var < num_variables(),
          "Problem::set_objective: unknown variable index");
  variables_[static_cast<std::size_t>(var)].objective = coefficient;
}

const Variable& Problem::variable(int i) const {
  require(i >= 0 && i < num_variables(), "Problem::variable: out of range");
  return variables_[static_cast<std::size_t>(i)];
}

Variable& Problem::variable(int i) {
  require(i >= 0 && i < num_variables(), "Problem::variable: out of range");
  return variables_[static_cast<std::size_t>(i)];
}

const Constraint& Problem::constraint(int i) const {
  require(i >= 0 && i < num_constraints(),
          "Problem::constraint: out of range");
  return constraints_[static_cast<std::size_t>(i)];
}

double Problem::objective_value(const std::vector<double>& x) const {
  require(x.size() == variables_.size(),
          "Problem::objective_value: dimension mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < variables_.size(); ++i)
    acc += variables_[i].objective * x[i];
  return acc;
}

double Problem::max_violation(const std::vector<double>& x) const {
  require(x.size() == variables_.size(),
          "Problem::max_violation: dimension mismatch");
  double worst = 0.0;
  for (const Constraint& c : constraints_) {
    double lhs = 0.0;
    for (const auto& [var, coef] : c.terms)
      lhs += coef * x[static_cast<std::size_t>(var)];
    double violation = 0.0;
    switch (c.relation) {
      case Relation::kLe: violation = lhs - c.rhs; break;
      case Relation::kGe: violation = c.rhs - lhs; break;
      case Relation::kEq: violation = std::abs(lhs - c.rhs); break;
    }
    worst = std::max(worst, violation);
  }
  return worst;
}

}  // namespace safenn::lp
