#include "verify/symbolic.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace safenn::verify {
namespace {

using linalg::Matrix;
using linalg::Vector;

/// Minimum of a linear form coef.row(r) . x + cst[r] over the box.
double concretize_lo(const Matrix& coef, const Vector& cst, std::size_t r,
                     const Box& box) {
  double v = cst[r];
  for (std::size_t i = 0; i < box.size(); ++i) {
    const double c = coef(r, i);
    v += c >= 0.0 ? c * box[i].lo : c * box[i].hi;
  }
  return v;
}

/// Maximum of a linear form coef.row(r) . x + cst[r] over the box.
double concretize_hi(const Matrix& coef, const Vector& cst, std::size_t r,
                     const Box& box) {
  double v = cst[r];
  for (std::size_t i = 0; i < box.size(); ++i) {
    const double c = coef(r, i);
    v += c >= 0.0 ? c * box[i].hi : c * box[i].lo;
  }
  return v;
}

}  // namespace

SymbolicPropagator::SymbolicPropagator(const nn::Network& net) : net_(&net) {
  w_pos_.reserve(net.num_layers());
  w_neg_.reserve(net.num_layers());
  for (std::size_t li = 0; li < net.num_layers(); ++li) {
    const Matrix& w = net.layer(li).weights();
    Matrix pos(w.rows(), w.cols());
    Matrix neg(w.rows(), w.cols());
    for (std::size_t r = 0; r < w.rows(); ++r) {
      for (std::size_t c = 0; c < w.cols(); ++c) {
        const double v = w(r, c);
        if (v >= 0.0) {
          pos(r, c) = v;
        } else {
          neg(r, c) = v;
        }
      }
    }
    w_pos_.push_back(std::move(pos));
    w_neg_.push_back(std::move(neg));
  }
}

SymbolicBounds SymbolicPropagator::propagate(const Box& input_box) const {
  const nn::Network& net = *net_;
  const std::size_t n = net.input_size();
  require(input_box.size() == n,
          "SymbolicPropagator: box dimension mismatch");
  for (const Interval& iv : input_box) {
    require(iv.lo <= iv.hi, "SymbolicPropagator: empty interval in box");
  }

  SymbolicBounds out;
  out.layers.reserve(net.num_layers());

  // Rolling state: symbolic forms and concrete intervals of the previous
  // layer's post-activations (the inputs themselves before layer 0).
  SymbolicForms prev;
  std::vector<Interval> prev_post = input_box;

  for (std::size_t li = 0; li < net.num_layers(); ++li) {
    const nn::DenseLayer& layer = net.layer(li);
    const std::size_t width = layer.out_size();
    const Matrix& w = layer.weights();
    const Vector& b = layer.biases();

    // Symbolic pre-activation forms. Layer 0 sees the inputs exactly
    // (z = Wx + b), so both forms are W itself; deeper layers compose
    // through the weight sign-split: a positive weight keeps the bound
    // side, a negative weight swaps it.
    SymbolicForms pre;
    if (li == 0) {
      pre.lo_coef = w;
      pre.hi_coef = w;
      pre.lo_const = b;
      pre.hi_const = b;
    } else {
      pre.lo_coef = Matrix::gemm(w_pos_[li], prev.lo_coef);
      pre.lo_coef.add_scaled(1.0, Matrix::gemm(w_neg_[li], prev.hi_coef));
      pre.hi_coef = Matrix::gemm(w_pos_[li], prev.hi_coef);
      pre.hi_coef.add_scaled(1.0, Matrix::gemm(w_neg_[li], prev.lo_coef));
      pre.lo_const = w_pos_[li].matvec(prev.lo_const);
      pre.lo_const.add_scaled(1.0, w_neg_[li].matvec(prev.hi_const));
      pre.lo_const += b;
      pre.hi_const = w_pos_[li].matvec(prev.hi_const);
      pre.hi_const.add_scaled(1.0, w_neg_[li].matvec(prev.lo_const));
      pre.hi_const += b;
    }

    LayerBounds lb;
    lb.pre.resize(width);
    lb.post.resize(width);
    SymbolicForms post;
    post.lo_coef.resize(width, n);
    post.hi_coef.resize(width, n);
    post.lo_const = Vector(width);
    post.hi_const = Vector(width);
    post.lo_coef.fill(0.0);
    post.hi_coef.fill(0.0);

    for (std::size_t r = 0; r < width; ++r) {
      // Plain interval bound from the previous concrete posts — the
      // intersection below is what makes the result provably no looser
      // than propagate_bounds.
      double ilo = b[r];
      double ihi = ilo;
      for (std::size_t c = 0; c < layer.in_size(); ++c) {
        const double wv = w(r, c);
        if (wv >= 0.0) {
          ilo += wv * prev_post[c].lo;
          ihi += wv * prev_post[c].hi;
        } else {
          ilo += wv * prev_post[c].hi;
          ihi += wv * prev_post[c].lo;
        }
      }
      Interval z;
      z.lo = std::max(ilo, concretize_lo(pre.lo_coef, pre.lo_const, r,
                                         input_box));
      z.hi = std::min(ihi, concretize_hi(pre.hi_coef, pre.hi_const, r,
                                         input_box));
      if (z.lo > z.hi) z.lo = z.hi;  // FP-noise guard (both sides sound)
      lb.pre[r] = z;

      const nn::Activation act = layer.activation();
      if (act == nn::Activation::kIdentity) {
        for (std::size_t i = 0; i < n; ++i) {
          post.lo_coef(r, i) = pre.lo_coef(r, i);
          post.hi_coef(r, i) = pre.hi_coef(r, i);
        }
        post.lo_const[r] = pre.lo_const[r];
        post.hi_const[r] = pre.hi_const[r];
        lb.post[r] = z;
        continue;
      }
      if (act == nn::Activation::kRelu) {
        if (z.hi <= 0.0) {
          // Stable inactive: output pinned to 0 (forms already zeroed).
          lb.post[r] = Interval{0.0, 0.0};
          continue;
        }
        if (z.lo >= 0.0) {
          // Stable active: identity pass-through.
          for (std::size_t i = 0; i < n; ++i) {
            post.lo_coef(r, i) = pre.lo_coef(r, i);
            post.hi_coef(r, i) = pre.hi_coef(r, i);
          }
          post.lo_const[r] = pre.lo_const[r];
          post.hi_const[r] = pre.hi_const[r];
          lb.post[r] = z;
          continue;
        }
        // Unstable: triangle upper chord through (lo, 0) and (hi, hi);
        // lower bound is the DeepPoly choice between y >= 0 and y >= z
        // (keep whichever chord hugs the ReLU tighter on this interval).
        const double slope = z.hi / (z.hi - z.lo);
        for (std::size_t i = 0; i < n; ++i) {
          post.hi_coef(r, i) = slope * pre.hi_coef(r, i);
        }
        post.hi_const[r] = slope * (pre.hi_const[r] - z.lo);
        const double lam = z.hi >= -z.lo ? 1.0 : 0.0;
        if (lam > 0.0) {
          for (std::size_t i = 0; i < n; ++i) {
            post.lo_coef(r, i) = pre.lo_coef(r, i);
          }
          post.lo_const[r] = pre.lo_const[r];
        }
        Interval y{0.0, z.hi};
        y.lo = std::max(y.lo, concretize_lo(post.lo_coef, post.lo_const, r,
                                            input_box));
        y.hi = std::min(y.hi, concretize_hi(post.hi_coef, post.hi_const, r,
                                            input_box));
        if (y.lo > y.hi) y.lo = y.hi;
        lb.post[r] = y;
        continue;
      }
      // Smooth monotone activation: concretize and carry the interval as
      // constant forms (sound; keeps mixed ReLU/tanh/identity stacks
      // supported, exactly matching interval propagation there).
      const Interval y{nn::activate(act, z.lo), nn::activate(act, z.hi)};
      post.lo_const[r] = y.lo;
      post.hi_const[r] = y.hi;
      lb.post[r] = y;
    }

    prev_post = lb.post;
    out.layers.push_back(std::move(lb));
    prev = std::move(post);
  }

  out.output = std::move(prev);
  return out;
}

Interval SymbolicPropagator::objective_interval(const SymbolicBounds& bounds,
                                                const Box& input_box,
                                                const lp::LinearTerms& terms) {
  require(!bounds.layers.empty(), "objective_interval: empty bounds");
  const std::vector<Interval>& outs = bounds.layers.back().post;
  const SymbolicForms& f = bounds.output;
  const std::size_t n = input_box.size();

  // Combined symbolic forms of the objective: a positive coefficient
  // keeps each output's bound side, a negative one swaps it.
  Vector lo_coef(n);
  Vector hi_coef(n);
  double lo_const = 0.0;
  double hi_const = 0.0;
  // Interval combination of the (already symbolic-tightened) concrete
  // output bounds, kept as a second sound estimate to intersect with.
  Interval ival{0.0, 0.0};
  for (const auto& [idx, coef] : terms) {
    require(idx >= 0 && static_cast<std::size_t>(idx) < outs.size(),
            "objective_interval: output index out of range");
    const std::size_t r = static_cast<std::size_t>(idx);
    if (coef >= 0.0) {
      for (std::size_t i = 0; i < n; ++i) {
        lo_coef[i] += coef * f.lo_coef(r, i);
        hi_coef[i] += coef * f.hi_coef(r, i);
      }
      lo_const += coef * f.lo_const[r];
      hi_const += coef * f.hi_const[r];
      ival.lo += coef * outs[r].lo;
      ival.hi += coef * outs[r].hi;
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        lo_coef[i] += coef * f.hi_coef(r, i);
        hi_coef[i] += coef * f.lo_coef(r, i);
      }
      lo_const += coef * f.hi_const[r];
      hi_const += coef * f.lo_const[r];
      ival.lo += coef * outs[r].hi;
      ival.hi += coef * outs[r].lo;
    }
  }

  Interval acc{lo_const, hi_const};
  for (std::size_t i = 0; i < n; ++i) {
    const double cl = lo_coef[i];
    acc.lo += cl >= 0.0 ? cl * input_box[i].lo : cl * input_box[i].hi;
    const double ch = hi_coef[i];
    acc.hi += ch >= 0.0 ? ch * input_box[i].hi : ch * input_box[i].lo;
  }
  acc.lo = std::max(acc.lo, ival.lo);
  acc.hi = std::min(acc.hi, ival.hi);
  if (acc.lo > acc.hi) acc.lo = acc.hi;
  return acc;
}

std::vector<LayerBounds> symbolic_bounds(const nn::Network& net,
                                         const Box& input_box) {
  return SymbolicPropagator(net).propagate(input_box).layers;
}

}  // namespace safenn::verify
