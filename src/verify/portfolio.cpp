#include "verify/portfolio.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <limits>
#include <string>
#include <utility>

#include "common/cancel.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "common/task_pool.hpp"
#include "nn/quantize.hpp"
#include "smt/qnn_encoder.hpp"
#include "verify/symbolic.hpp"

namespace safenn::verify {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

int priority(PortfolioEngine e) { return static_cast<int>(e); }

/// Sound error budget for proving a *float* property through the
/// *quantized* circuit, split into:
///   eps — max |float(x̂) - quantized(x̂)| at the output, over grid inputs
///         x̂ (inputs representable at frac_bits are evaluated by both
///         networks from identical starting values), propagated layer by
///         layer: weight rounding is a half-ulp at frac_bits, the bias a
///         half-ulp at 2*frac_bits, and the accumulator's arithmetic
///         shift floors by at most one ulp; activation magnitudes come
///         from the hoisted root interval bounds. ReLU is 1-Lipschitz, so
///         post-activation error never exceeds pre-activation error.
///   lip — ∞-norm Lipschitz bound of the float network (product of
///         max absolute row sums), covering inputs *between* grid points:
///         every x in the (inward-rounded) box has a grid neighbour
///         within 2^-frac_bits per coordinate.
/// Total margin on the expr value: coef * (eps + lip * 2^-frac_bits).
struct QuantMargin {
  double eps = 0.0;
  double lip = 1.0;
  double total(double coef, int frac_bits) const {
    return coef * (eps + lip * std::ldexp(1.0, -frac_bits));
  }
};

QuantMargin quantization_margin(const nn::Network& net, int frac_bits,
                                const std::vector<LayerBounds>& root_bounds,
                                const Box& box) {
  const double wq = std::ldexp(1.0, -frac_bits - 1);
  const double bq = std::ldexp(1.0, -2 * frac_bits - 1);
  const double sq = std::ldexp(1.0, -frac_bits);
  QuantMargin m;
  for (std::size_t li = 0; li < net.num_layers(); ++li) {
    const nn::DenseLayer& layer = net.layer(li);
    double worst_err = 0.0;
    double worst_row = 0.0;
    for (std::size_t r = 0; r < layer.out_size(); ++r) {
      double rowsum = 0.0;
      double ymag = 0.0;  // sum of |input magnitude bound| + carried eps
      for (std::size_t c = 0; c < layer.in_size(); ++c) {
        rowsum += std::abs(layer.weights()(r, c));
        const Interval in_iv =
            li == 0 ? box[c] : root_bounds[li - 1].post[c];
        ymag += std::max(std::abs(in_iv.lo), std::abs(in_iv.hi)) + m.eps;
      }
      const double err = rowsum * m.eps + wq * ymag + bq + sq;
      worst_err = std::max(worst_err, err);
      worst_row = std::max(worst_row, rowsum);
    }
    m.eps = worst_err;
    m.lip *= worst_row;
  }
  return m;
}

/// Pre-launch applicability analysis for the SAT/quantized engine: the
/// property must be expressible over the fixed-point semantics (box-only
/// region, a single positive-coefficient output term, a network that
/// quantizes exactly) and small enough that bit-blasting is worth trying.
struct SatGate {
  bool ok = false;
  std::string reason;
  std::size_t out_index = 0;
  double coef = 1.0;
  double margin = 0.0;  // expr-units error budget (QuantMargin::total)
  double out_lo = 0.0;  // search window for the quantized output value
  double out_hi = 0.0;
  std::optional<nn::QuantizedNetwork> qnet;
};

SatGate gate_sat_engine(const nn::Network& net, const SafetyProperty& property,
                        const PortfolioOptions& options,
                        const std::vector<LayerBounds>& root_bounds,
                        const Interval& root_iv) {
  SatGate gate;
  if (!property.region.constraints.empty()) {
    gate.reason = "side constraints not expressible over the box encoding";
    return gate;
  }
  if (property.expr.terms.size() != 1 || property.expr.terms[0].second <= 0.0) {
    gate.reason = "expr is not a single positive output term";
    return gate;
  }
  std::size_t weights = 0;
  for (std::size_t li = 0; li < net.num_layers(); ++li) {
    weights += net.layer(li).in_size() * net.layer(li).out_size();
  }
  if (weights > options.sat_max_weights) {
    gate.reason = "circuit too large (" + std::to_string(weights) +
                  " weights > cap " + std::to_string(options.sat_max_weights) +
                  ")";
    return gate;
  }
  double input_bound = 1.0;
  for (const Interval& iv : property.region.box) {
    input_bound =
        std::max({input_bound, std::abs(iv.lo), std::abs(iv.hi)});
  }
  try {
    gate.qnet.emplace(nn::QuantizedNetwork::quantize(
        net, options.sat_frac_bits, input_bound));
  } catch (const nn::QuantizeError& e) {
    gate.reason = e.what();
    return gate;
  }
  gate.out_index = static_cast<std::size_t>(property.expr.terms[0].first);
  gate.coef = property.expr.terms[0].second;
  const QuantMargin m = quantization_margin(net, options.sat_frac_bits,
                                            root_bounds, property.region.box);
  gate.margin = m.total(gate.coef, options.sat_frac_bits);
  if (!std::isfinite(gate.margin)) {
    gate.reason = "quantization margin diverges";
    return gate;
  }
  const double eps_out = gate.margin / gate.coef;
  gate.out_lo = root_iv.lo / gate.coef - eps_out;
  gate.out_hi = root_iv.hi / gate.coef + eps_out;
  gate.ok = true;
  return gate;
}

}  // namespace

const char* to_string(PortfolioEngine engine) {
  switch (engine) {
    case PortfolioEngine::kInputSplit: return "input_split";
    case PortfolioEngine::kMilp: return "milp";
    case PortfolioEngine::kSatQuantized: return "sat_quantized";
    case PortfolioEngine::kRoot: return "root";
  }
  return "?";
}

SharedIncumbent::SharedIncumbent(int num_engines)
    : value_(-kInf), bound_(kInf) {
  flags_.reserve(static_cast<std::size_t>(num_engines));
  for (int i = 0; i < num_engines; ++i) {
    flags_.push_back(std::make_unique<std::atomic<bool>>(false));
  }
}

void SharedIncumbent::publish_value(PortfolioEngine engine, double value,
                                    const linalg::Vector* witness) {
  (void)engine;
  std::lock_guard<std::mutex> lock(mu_);
  if (!has_value_ || value > value_) {
    has_value_ = true;
    value_ = value;
    if (witness) witness_ = *witness;
  }
}

double SharedIncumbent::best_value() const {
  std::lock_guard<std::mutex> lock(mu_);
  return has_value_ ? value_ : -kInf;
}

void SharedIncumbent::publish_bound(PortfolioEngine engine, double bound) {
  (void)engine;
  std::lock_guard<std::mutex> lock(mu_);
  bound_ = std::min(bound_, bound);
}

double SharedIncumbent::best_bound() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bound_;
}

void SharedIncumbent::decide(int priority, bool cancel_all) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    decided_ = true;
  }
  for (std::size_t i = 0; i < flags_.size(); ++i) {
    const int p = static_cast<int>(i);
    const bool hit = cancel_all ? p != priority : p > priority;
    if (hit) flags_[i]->store(true, std::memory_order_release);
  }
}

bool SharedIncumbent::decided() const {
  std::lock_guard<std::mutex> lock(mu_);
  return decided_;
}

PortfolioVerifier::PortfolioVerifier(PortfolioOptions options,
                                     VerificationCache* cache)
    : options_(std::move(options)), cache_(cache) {}

PortfolioResult PortfolioVerifier::prove(const nn::Network& net,
                                         const SafetyProperty& property) const {
  Stopwatch clock;
  const InputRegion& region = property.region;
  const OutputExpr& expr = property.expr;
  const double threshold = property.threshold;
  require(region.dims() == net.input_size(),
          "PortfolioVerifier: region dimension mismatch");
  for (std::size_t li = 0; li < net.num_layers(); ++li) {
    require(nn::is_piecewise_linear(net.layer(li).activation()),
            "PortfolioVerifier: only ReLU/identity networks supported");
  }
  for (const auto& [idx, coef] : expr.terms) {
    (void)coef;
    require(idx >= 0 && static_cast<std::size_t>(idx) < net.output_size(),
            "PortfolioVerifier: output index out of range");
  }

  PortfolioResult result;

  // Cache consultation: content-addressed, so a hit IS the earlier fresh
  // run (bitwise, via the hexfloat round-trip) for this exact artifact.
  CacheKey key;
  if (cache_) {
    key = make_cache_key(net, property);
    if (std::optional<CachedVerdict> hit = cache_->lookup(key)) {
      result.verdict = hit->verdict;
      result.engine_name = hit->engine;
      result.upper_bound = hit->upper_bound;
      result.has_value = hit->has_value;
      result.max_value = hit->max_value;
      result.from_cache = true;
      result.timed_out = hit->verdict == Verdict::kUnknown;
      result.seconds = clock.seconds();
      return result;
    }
  }

  // ---- Hoisted per-query work (computed once, handed to every engine).
  SymbolicPropagator propagator(net);
  const SymbolicBounds root_sb = propagator.propagate(region.box);
  const Interval root_iv =
      SymbolicPropagator::objective_interval(root_sb, region.box, expr.terms);

  // Warm-start sample sweep: best concrete execution over the region.
  bool sample_has = false;
  double sample_best = -kInf;
  linalg::Vector sample_x;
  if (options_.warm_start_samples > 0) {
    Rng rng(options_.warm_start_seed);
    for (long t = 0; t < options_.warm_start_samples; ++t) {
      linalg::Vector x(net.input_size());
      for (std::size_t i = 0; i < x.size(); ++i) {
        x[i] = rng.uniform(region.box[i].lo, region.box[i].hi);
      }
      if (!region.contains(x)) continue;
      const double val = expr.evaluate(net.forward(x));
      if (!sample_has || val > sample_best) {
        sample_has = true;
        sample_best = val;
        sample_x = std::move(x);
      }
    }
  }

  EngineOutcome root_o;
  root_o.engine = PortfolioEngine::kRoot;
  root_o.ran = true;
  root_o.upper_bound = root_iv.hi;
  root_o.has_value = sample_has;
  root_o.max_value = sample_has ? sample_best : 0.0;
  if (sample_has) root_o.witness = sample_x;
  root_o.detail = "root symbolic bound + warm-start sweep";
  if (sample_has && sample_best > threshold) {
    root_o.decided = true;
    root_o.verdict = Verdict::kViolated;
  } else if (root_iv.hi <= threshold) {
    root_o.decided = true;
    root_o.verdict = Verdict::kProved;
  }
  root_o.seconds = clock.seconds();

  // Root fast path: the hoisted work alone decided — no race needed.
  if (root_o.decided) {
    result.verdict = root_o.verdict;
    result.winner = PortfolioEngine::kRoot;
    result.engine_name = to_string(result.winner);
    result.upper_bound = root_iv.hi;
    result.has_value = sample_has;
    result.max_value = root_o.max_value;
    result.witness = root_o.witness;
    result.seconds = clock.seconds();
    result.engines.push_back(std::move(root_o));
    if (cache_) {
      cache_->store(key, CachedVerdict{result.verdict, result.upper_bound,
                                       result.has_value, result.max_value,
                                       result.engine_name, result.seconds});
    }
    return result;
  }

  // ---- The race.
  const bool det = options_.deterministic;
  const double T = det ? 0.0 : options_.time_limit_seconds;
  SharedIncumbent shared(3);
  if (sample_has) {
    shared.publish_value(PortfolioEngine::kRoot, sample_best, &sample_x);
  }
  shared.publish_bound(PortfolioEngine::kRoot, root_iv.hi);

  std::vector<EngineOutcome> outs(3);
  outs[0].engine = PortfolioEngine::kInputSplit;
  outs[1].engine = PortfolioEngine::kMilp;
  outs[2].engine = PortfolioEngine::kSatQuantized;

  // Remaining wall-clock budget, computed when an engine actually starts
  // so a sequential schedule still respects the shared deadline. Returns
  // <= 0 when the budget is exhausted, 0 meaning "unlimited" only when no
  // deadline was set at all.
  auto remaining = [&]() -> double {
    if (T <= 0.0) return 0.0;
    return T - clock.seconds();
  };
  auto exhausted = [&](double rem) { return T > 0.0 && rem <= 1e-3; };

  // Sequential schedule (racing, one worker): each engine gets an equal
  // share of the remaining budget — remaining/(engines not yet started)
  // — so a stubborn engine at the front of the schedule cannot starve
  // the ones behind it; whatever it leaves unused flows to them. A true
  // race (workers > 1) keeps the full remaining budget per engine: the
  // OS interleaves them and the first decision cancels the rest.
  const bool slice = !det && options_.num_workers <= 1 && T > 0.0;
  int engines_left = 0;  // assigned once the task list is known
  auto engine_budget = [&]() -> double {
    const double rem = remaining();
    if (!slice) return rem;
    return rem / std::max(1, engines_left);
  };

  // Entry protocol shared by all engines: bail out before any expensive
  // setup when a peer already decided or the budget is gone.
  auto skip_at_entry = [&](EngineOutcome& o) {
    if (shared.cancel_flag(priority(o.engine))
            ->load(std::memory_order_acquire)) {
      o.cancelled = true;
      o.detail = "cancelled before start";
      return true;
    }
    const double rem = remaining();
    if (exhausted(rem)) {
      o.detail = "deadline exhausted before start";
      return true;
    }
    return false;
  };

  auto run_input_split = [&](EngineOutcome& o) {
    const double my_budget = engine_budget();
    if (slice) --engines_left;
    if (skip_at_entry(o)) return;
    Stopwatch engine_clock;
    InputSplitOptions so = options_.split;
    so.time_limit_seconds = det ? 0.0 : my_budget;
    if (det) so.max_boxes = options_.det_max_boxes;
    so.use_symbolic = true;
    so.propagator = &propagator;
    so.cancel = shared.cancel_flag(priority(o.engine));
    so.stop_when_above = threshold;
    so.on_incumbent = [&](double v, const linalg::Vector& w) {
      shared.publish_value(PortfolioEngine::kInputSplit, v, &w);
    };
    if (!det) {
      so.external_incumbent = [&] { return shared.best_value(); };
    }
    const InputSplitResult r =
        InputSplitVerifier(so).maximize(net, region, expr);
    o.ran = true;
    o.cancelled = r.cancelled;
    o.upper_bound = r.upper_bound;
    o.has_value = r.has_value;
    if (r.has_value) {
      o.max_value = r.max_value;
      o.witness = r.witness;
    }
    if (r.has_value && r.max_value > threshold) {
      o.decided = true;
      o.verdict = Verdict::kViolated;
    } else if (r.upper_bound <= threshold + options_.prove_tol) {
      o.decided = true;
      o.verdict = Verdict::kProved;
    }
    o.detail = "boxes=" + std::to_string(r.boxes_explored) +
               " pruned_symbolic=" + std::to_string(r.boxes_pruned_symbolic);
    o.seconds = engine_clock.seconds();
    shared.publish_bound(o.engine, o.upper_bound);
    if (o.decided) shared.decide(priority(o.engine), /*cancel_all=*/!det);
  };

  auto run_milp = [&](EngineOutcome& o) {
    const double my_budget = engine_budget();
    if (slice) --engines_left;
    if (skip_at_entry(o)) return;
    Stopwatch engine_clock;
    EncoderOptions eo = options_.encoder;
    eo.precomputed_symbolic = &root_sb.layers;
    EncodedNetwork enc = encode_network(net, region, eo);
    for (const auto& [idx, coef] : expr.terms) {
      enc.model.set_objective(enc.output_vars[static_cast<std::size_t>(idx)],
                              coef);
    }
    enc.model.set_maximize(true);

    milp::BnbOptions bo = options_.bnb;
    bo.time_limit_seconds = det ? 0.0 : my_budget;
    if (det) bo.max_nodes = options_.det_max_nodes;
    bo.branch_priority = enc.branch_priority;
    bo.cancel = shared.cancel_flag(priority(o.engine));
    bo.on_incumbent = [&](const milp::MilpResult& mr) {
      linalg::Vector x = enc.extract_input(mr.values);
      if (!region.contains(x)) return;
      const double v = expr.evaluate(net.forward(x));
      shared.publish_value(PortfolioEngine::kMilp, v, &x);
    };
    if (!det) {
      bo.external_cutoff = [&] { return shared.best_value(); };
    }
    if (sample_has) {
      bo.initial_solution = enc.assignment_from_input(net, sample_x);
    }

    const milp::MilpResult r = milp::BranchAndBound(bo).solve(enc.model);
    o.ran = true;
    o.cancelled = r.cancelled;
    if (r.status == milp::MilpStatus::kInfeasible) {
      // Empty assumption region: vacuously true, max over nothing.
      o.upper_bound = -kInf;
      o.decided = true;
      o.verdict = Verdict::kProved;
    } else {
      o.upper_bound = r.best_bound;
      if (r.has_solution()) {
        linalg::Vector x = enc.extract_input(r.values);
        o.max_value = expr.evaluate(net.forward(x));
        o.witness = std::move(x);
        o.has_value = true;
      }
      if (o.has_value && o.max_value > threshold) {
        o.decided = true;
        o.verdict = Verdict::kViolated;
      } else if (o.upper_bound <= threshold + options_.prove_tol ||
                 (r.status == milp::MilpStatus::kOptimal &&
                  o.upper_bound <= threshold + 1e-6)) {
        o.decided = true;
        o.verdict = Verdict::kProved;
      }
    }
    o.detail = "nodes=" + std::to_string(r.nodes_explored) +
               " binaries=" + std::to_string(enc.num_binaries);
    o.seconds = engine_clock.seconds();
    shared.publish_bound(o.engine, o.upper_bound);
    if (o.decided) shared.decide(priority(o.engine), /*cancel_all=*/!det);
  };

  SatGate gate;
  if (options_.use_sat) {
    gate = gate_sat_engine(net, property, options_, root_sb.layers, root_iv);
  }

  auto run_sat = [&](EngineOutcome& o) {
    const double my_budget = engine_budget();
    const double slice_end = clock.seconds() + my_budget;
    if (slice) --engines_left;
    if (skip_at_entry(o)) return;
    Stopwatch engine_clock;
    const double c = gate.coef;
    const double eps_out = gate.margin / c;  // error budget, output units
    const double resolution = std::ldexp(1.0, -options_.sat_frac_bits);
    CancelToken tok(0.0, shared.cancel_flag(priority(o.engine)));

    double lo = gate.out_lo;
    double hi = gate.out_hi;
    int probes = 0;
    bool budget_out = false;
    auto probe = [&](double t) {
      smt::QnnVerifierOptions qo;
      qo.solver.cancel = shared.cancel_flag(priority(o.engine));
      if (det) {
        qo.solver.max_conflicts = options_.det_max_conflicts;
      } else if (T > 0.0) {
        const double rem = slice_end - clock.seconds();
        if (rem <= 1e-3) {
          budget_out = true;
          return smt::QnnVerdict{};  // sat == kUnknown
        }
        qo.solver.time_limit_seconds = rem;
      }
      ++probes;
      return smt::prove_quantized_output_bound(*gate.qnet, region.box,
                                               gate.out_index, t, qo);
    };
    auto witness_value = [&](const smt::QnnVerdict& v) {
      // Grid counterexamples are sound float witnesses: re-evaluate
      // through the FLOAT network so no quantization error can inflate
      // the reported value. The decoded input lies on the inward-rounded
      // grid, hence inside the (box-only) region.
      const double vf = expr.evaluate(net.forward(*v.counterexample));
      if (!o.has_value || vf > o.max_value) {
        o.has_value = true;
        o.max_value = vf;
        o.witness = *v.counterexample;
      }
      shared.publish_value(o.engine, vf, &*v.counterexample);
      return vf;
    };

    // Decision probe first: UNSAT at this quantized threshold proves the
    // float property outright (quantized max <= thr_q implies float max
    // <= thr_q + eps_out <= threshold).
    const double thr_q = threshold / c - eps_out;
    const smt::QnnVerdict first = probe(thr_q);
    if (first.sat == sat::SatResult::kUnsat) {
      o.decided = true;
      o.verdict = Verdict::kProved;
      hi = thr_q;
    } else if (first.sat == sat::SatResult::kSat) {
      lo = std::max(lo, std::max(first.output_value, thr_q));
      if (witness_value(first) > threshold) {
        o.decided = true;
        o.verdict = Verdict::kViolated;
      }
    } else {
      budget_out = true;
    }

    // Tightening search (binary over quantized thresholds): narrows the
    // exported bound for the merge even when the probe above already
    // failed to decide.
    while (!o.decided && !budget_out && hi - lo > resolution / 2) {
      if (tok.stop_now()) break;
      if (!det) {
        // A peer's achieved value v floors the useful search window:
        // quantized values below v/c - eps_out cannot raise the float
        // maximum beyond what is already known.
        lo = std::max(lo, shared.best_value() / c - eps_out);
        if (hi - lo <= resolution / 2) break;
      }
      const double mid = 0.5 * (lo + hi);
      const smt::QnnVerdict v = probe(mid);
      if (v.sat == sat::SatResult::kSat) {
        lo = std::max(v.output_value, mid + resolution / 4);
        if (witness_value(v) > threshold) {
          o.decided = true;
          o.verdict = Verdict::kViolated;
        }
      } else if (v.sat == sat::SatResult::kUnsat) {
        hi = mid;
        shared.publish_bound(o.engine, c * (hi + eps_out));
      } else {
        budget_out = true;
      }
    }

    o.ran = true;
    o.cancelled = tok.cause() == StopCause::kCancelled ||
                  shared.cancel_flag(priority(o.engine))
                      ->load(std::memory_order_acquire);
    o.upper_bound = o.verdict == Verdict::kProved
                        ? threshold
                        : std::min(root_iv.hi, c * (hi + eps_out));
    o.detail = "probes=" + std::to_string(probes) +
               " margin=" + std::to_string(gate.margin);
    o.seconds = engine_clock.seconds();
    shared.publish_bound(o.engine, o.upper_bound);
    if (o.decided) shared.decide(priority(o.engine), /*cancel_all=*/!det);
  };

  std::vector<std::function<void()>> tasks;
  auto guard = [](EngineOutcome& o, auto body) {
    return [&o, body] {
      try {
        body(o);
      } catch (const Error& e) {
        // An engine that cannot run (e.g. a CNF word width past 62 bits)
        // steps aside with its typed reason; the race continues.
        o.ran = false;
        o.decided = false;
        o.detail = std::string("skipped: ") + e.what();
      }
    };
  };
  // Launch order (performance only — merge priorities and tie-breaks are
  // untouched, so the deterministic contract is unaffected): input
  // splitting excels when the box leaves most ReLUs stable (narrow
  // envelope queries close fast against the symbolic bound), while the
  // MILP's LP-tightened root handles wide boxes with many unstable
  // neurons better. Estimate the regime from the hoisted root bounds and
  // front-load the likely winner in a sequential schedule.
  std::size_t relu_total = 0;
  std::size_t relu_unstable = 0;
  for (std::size_t li = 0; li < net.num_layers(); ++li) {
    if (net.layer(li).activation() != nn::Activation::kRelu) continue;
    for (const Interval& pre : root_sb.layers[li].pre) {
      ++relu_total;
      if (pre.lo < 0.0 && pre.hi > 0.0) ++relu_unstable;
    }
  }
  const bool milp_first =
      !det && relu_total > 0 && 2 * relu_unstable >= relu_total;

  auto push_split = [&] {
    if (options_.use_input_split) {
      tasks.push_back(guard(outs[0], run_input_split));
    } else {
      outs[0].detail = "disabled";
    }
  };
  auto push_milp = [&] {
    if (options_.use_milp) {
      tasks.push_back(guard(outs[1], run_milp));
    } else {
      outs[1].detail = "disabled";
    }
  };
  if (milp_first) {
    push_milp();
    push_split();
  } else {
    push_split();
    push_milp();
  }
  if (options_.use_sat && gate.ok) {
    tasks.push_back(guard(outs[2], run_sat));
  } else {
    outs[2].detail = options_.use_sat ? "skipped: " + gate.reason : "disabled";
  }
  engines_left = static_cast<int>(tasks.size());

  TaskPool pool(static_cast<std::size_t>(std::max(1, options_.num_workers)));
  pool.run(tasks);

  // ---- Deterministic merge.
  // Lowest decider priority; engines above it may have been cancelled at
  // a schedule-dependent point, so (in deterministic mode) only engines
  // at or below it — all of which ran to their deterministic termination
  // — contribute to the merged bound/value. Racing mode applies the same
  // rule for the winner; its bounds are sound either way.
  int p_min = -1;
  for (const EngineOutcome& o : outs) {
    if (o.decided && (p_min < 0 || priority(o.engine) < p_min)) {
      p_min = priority(o.engine);
    }
  }
  const int include_up_to = p_min < 0 ? 2 : p_min;

  result.upper_bound = root_iv.hi;
  result.winner = PortfolioEngine::kRoot;
  result.has_value = sample_has;
  result.max_value = root_o.max_value;
  result.witness = root_o.witness;
  for (const EngineOutcome& o : outs) {
    if (!o.ran || priority(o.engine) > include_up_to) continue;
    if (o.upper_bound < result.upper_bound) {
      result.upper_bound = o.upper_bound;
      result.winner = o.engine;
    }
    if (o.has_value && (!result.has_value || o.max_value > result.max_value)) {
      result.has_value = true;
      result.max_value = o.max_value;
      result.witness = o.witness;
    }
  }

  if (p_min >= 0) {
    const EngineOutcome& winner = outs[static_cast<std::size_t>(p_min)];
    result.verdict = winner.verdict;
    result.winner = winner.engine;
    // Soundness assertion: sound engines can never disagree on a decided
    // query. A failure here is a portfolio bug, not an input problem —
    // the message carries every engine's full state for the post-mortem.
    for (const EngineOutcome& o : outs) {
      if (!o.decided || o.verdict == result.verdict) continue;
      auto fmt = [](double v) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        return std::string(buf);
      };
      std::string msg = "PortfolioVerifier: engines disagree on the verdict"
                        " (threshold=" + fmt(threshold) + "):";
      for (const EngineOutcome& e : outs) {
        msg += std::string(" [") + to_string(e.engine) +
               (e.decided ? " decided=" + to_string(e.verdict)
                          : std::string(" undecided")) +
               " bound=" + fmt(e.upper_bound) +
               (e.has_value ? " value=" + fmt(e.max_value) : std::string()) +
               " " + e.detail + "]";
      }
      require(false, msg);
    }
  } else {
    // No decider: the merged evidence may still close the query (e.g.
    // one engine's bound plus another's witness).
    if (result.has_value && result.max_value > threshold) {
      result.verdict = Verdict::kViolated;
    } else if (result.upper_bound <= threshold + options_.prove_tol) {
      result.verdict = Verdict::kProved;
    } else {
      result.verdict = Verdict::kUnknown;
      result.timed_out = true;
    }
  }
  result.engine_name = to_string(result.winner);
  result.seconds = clock.seconds();
  result.engines.push_back(std::move(root_o));
  for (EngineOutcome& o : outs) result.engines.push_back(std::move(o));

  if (cache_) {
    cache_->store(key, CachedVerdict{result.verdict, result.upper_bound,
                                     result.has_value, result.max_value,
                                     result.engine_name, result.seconds});
  }
  return result;
}

}  // namespace safenn::verify
