// Maximum resilience queries (Cheng, Nührenberg, Ruess — ATVA 2017).
//
// The paper's verification methodology cites "Maximum resilience of
// artificial neural networks" as its engine [3]; the headline query of
// that work is implemented here: the largest L-infinity perturbation
// radius around a nominal input within which a safety property provably
// holds. Computed by bisection over the radius, each probe being one
// complete prove() call on the boxed region.
#pragma once

#include "verify/verifier.hpp"

namespace safenn::verify {

struct ResilienceOptions {
  double radius_lo = 0.0;     // known-safe radius to start from
  double radius_hi = 1.0;     // upper limit of the search
  double radius_tol = 1e-3;   // bisection resolution
  VerifierOptions verifier;   // per-probe verification budget
  /// Clip each probe box to this outer region when provided (e.g. the
  /// encoder's domain box), so perturbations stay physically meaningful.
  std::optional<Box> clip_box;
};

struct ResilienceResult {
  /// Largest radius proved safe (>= radius_lo when even that failed
  /// to prove, see `proved_any`).
  double safe_radius = 0.0;
  bool proved_any = false;
  /// Smallest radius at which a concrete violation was found (infinity
  /// when none was found up to radius_hi).
  double violation_radius = 0.0;
  std::optional<linalg::Vector> counterexample;
  int probes = 0;
  double seconds = 0.0;
};

/// Computes the maximum L-inf resilience of `property` around `center`.
/// `property.region`'s box is ignored; its side constraints are kept.
/// The property must hold at `center` itself for the search to begin.
ResilienceResult maximum_resilience(const nn::Network& net,
                                    const SafetyProperty& property,
                                    const linalg::Vector& center,
                                    const ResilienceOptions& options = {});

}  // namespace safenn::verify
