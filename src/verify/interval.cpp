#include "verify/interval.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace safenn::verify {
namespace {

/// Image of [lo, hi] under a monotone non-decreasing activation.
Interval activate_interval(nn::Activation a, const Interval& z) {
  return Interval{nn::activate(a, z.lo), nn::activate(a, z.hi)};
}

}  // namespace

std::vector<LayerBounds> propagate_bounds(const nn::Network& net,
                                          const Box& input_box) {
  require(input_box.size() == net.input_size(),
          "propagate_bounds: box dimension mismatch");
  for (const Interval& iv : input_box) {
    require(iv.lo <= iv.hi, "propagate_bounds: empty interval in box");
  }

  std::vector<LayerBounds> all;
  all.reserve(net.num_layers());
  std::vector<Interval> prev = input_box;
  for (std::size_t li = 0; li < net.num_layers(); ++li) {
    const nn::DenseLayer& layer = net.layer(li);
    LayerBounds lb;
    lb.pre.resize(layer.out_size());
    lb.post.resize(layer.out_size());
    for (std::size_t r = 0; r < layer.out_size(); ++r) {
      double lo = layer.biases()[r];
      double hi = lo;
      for (std::size_t c = 0; c < layer.in_size(); ++c) {
        const double w = layer.weights()(r, c);
        if (w >= 0.0) {
          lo += w * prev[c].lo;
          hi += w * prev[c].hi;
        } else {
          lo += w * prev[c].hi;
          hi += w * prev[c].lo;
        }
      }
      lb.pre[r] = Interval{lo, hi};
      lb.post[r] = activate_interval(layer.activation(), lb.pre[r]);
    }
    prev = lb.post;
    all.push_back(std::move(lb));
  }
  return all;
}

std::vector<Interval> output_bounds(const nn::Network& net,
                                    const Box& input_box) {
  return propagate_bounds(net, input_box).back().post;
}

Interval linear_output_bounds(
    const nn::Network& net, const Box& input_box,
    const std::vector<std::pair<int, double>>& terms) {
  const std::vector<Interval> out = output_bounds(net, input_box);
  Interval acc{0.0, 0.0};
  for (const auto& [idx, coef] : terms) {
    require(idx >= 0 && static_cast<std::size_t>(idx) < out.size(),
            "linear_output_bounds: output index out of range");
    const Interval& o = out[static_cast<std::size_t>(idx)];
    if (coef >= 0.0) {
      acc.lo += coef * o.lo;
      acc.hi += coef * o.hi;
    } else {
      acc.lo += coef * o.hi;
      acc.hi += coef * o.lo;
    }
  }
  return acc;
}

NeuronStability classify(const Interval& pre) {
  if (pre.lo >= 0.0) return NeuronStability::kStableActive;
  if (pre.hi <= 0.0) return NeuronStability::kStableInactive;
  return NeuronStability::kUnstable;
}

StabilityStats stability_stats(const nn::Network& net, const Box& input_box) {
  const auto bounds = propagate_bounds(net, input_box);
  StabilityStats stats;
  for (std::size_t li = 0; li < net.num_layers(); ++li) {
    if (net.layer(li).activation() != nn::Activation::kRelu) continue;
    for (const Interval& pre : bounds[li].pre) {
      switch (classify(pre)) {
        case NeuronStability::kStableActive: ++stats.stable_active; break;
        case NeuronStability::kStableInactive: ++stats.stable_inactive; break;
        case NeuronStability::kUnstable: ++stats.unstable; break;
      }
    }
  }
  return stats;
}

}  // namespace safenn::verify
