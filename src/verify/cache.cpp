#include "verify/cache.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "nn/serialize.hpp"

namespace safenn::verify {
namespace {

namespace fs = std::filesystem;

constexpr const char* kMagic = "safenn-vcache";
constexpr const char* kVersion = "v1";

[[noreturn]] void fail(CacheError::Kind kind, const std::string& what) {
  throw CacheError(kind, "VerificationCache: " + what);
}

/// Bitwise-exact double rendering ("%a" hexfloat). Round-trips through
/// parse_double for every finite value and for +/-inf, which is what
/// makes "cached verdict bitwise-equal to a fresh run" a testable claim.
std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

double parse_double(const std::string& s, bool* ok) {
  const char* begin = s.c_str();
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  *ok = end != begin && *end == '\0' && !s.empty();
  return v;
}

const char* relation_text(lp::Relation r) {
  switch (r) {
    case lp::Relation::kLe: return "le";
    case lp::Relation::kGe: return "ge";
    case lp::Relation::kEq: return "eq";
  }
  return "?";
}

}  // namespace

std::string canonical_property_text(const SafetyProperty& property) {
  std::ostringstream os;
  os << "box " << property.region.box.size() << '\n';
  for (const Interval& iv : property.region.box) {
    os << format_double(iv.lo) << ' ' << format_double(iv.hi) << '\n';
  }
  os << "constraints " << property.region.constraints.size() << '\n';
  for (const InputConstraint& c : property.region.constraints) {
    os << relation_text(c.relation) << ' ' << format_double(c.rhs) << ' '
       << c.terms.size();
    for (const auto& [idx, coef] : c.terms) {
      os << ' ' << idx << ' ' << format_double(coef);
    }
    os << '\n';
  }
  os << "expr " << property.expr.terms.size() << '\n';
  for (const auto& [idx, coef] : property.expr.terms) {
    os << idx << ' ' << format_double(coef) << '\n';
  }
  os << "threshold " << format_double(property.threshold) << '\n';
  return os.str();
}

CacheKey make_cache_key(const nn::Network& net,
                        const SafetyProperty& property) {
  CacheKey key;
  key.network = nn::network_checksum(net);
  key.property = fnv1a64(canonical_property_text(property));
  // Combine via the hex renderings (not raw bytes) so the combined key is
  // endianness-independent — the same (network, property) pair maps to
  // the same filename on any host, across process restarts.
  key.combined = fnv1a64(hex64(key.network) + ":" + hex64(key.property));
  return key;
}

VerificationCache::VerificationCache(std::string directory)
    : dir_(std::move(directory)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) fail(CacheError::Kind::kIo, "cannot create '" + dir_ + "'");
}

std::string VerificationCache::entry_path(const CacheKey& key) const {
  return (fs::path(dir_) / (key.hex() + ".vc")).string();
}

CachedVerdict VerificationCache::load(const CacheKey& key) const {
  const std::string path = entry_path(key);
  std::ifstream is(path);
  if (!is.is_open()) {
    fail(CacheError::Kind::kNotFound, "no entry '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << is.rdbuf();
  if (is.bad()) fail(CacheError::Kind::kIo, "read failure on '" + path + "'");
  const std::string text = buffer.str();

  // Header line.
  const std::string header = std::string(kMagic) + " " + kVersion + "\n";
  if (text.compare(0, header.size(), header) != 0) {
    fail(CacheError::Kind::kBadEntry, "bad header in '" + path + "'");
  }
  // Trailing "checksum <16 hex>\n" — validate the payload bytes *before*
  // parsing any field, so truncation and corruption are caught typed.
  const std::string marker = "checksum ";
  const std::size_t pos = text.rfind("\n" + marker);
  if (pos == std::string::npos) {
    fail(CacheError::Kind::kBadEntry,
         "missing checksum trailer in '" + path + "' (truncated file?)");
  }
  const std::size_t payload_begin = header.size();
  const std::size_t payload_end = pos + 1;  // keep the final payload '\n'
  std::string recorded_hex = text.substr(payload_end + marker.size());
  while (!recorded_hex.empty() &&
         (recorded_hex.back() == '\n' || recorded_hex.back() == '\r')) {
    recorded_hex.pop_back();
  }
  std::uint64_t recorded = 0;
  try {
    recorded = parse_hex64(recorded_hex);
  } catch (const Error&) {
    fail(CacheError::Kind::kBadEntry,
         "unparseable checksum value in '" + path + "'");
  }
  const std::string payload =
      text.substr(payload_begin, payload_end - payload_begin);
  const std::uint64_t actual = fnv1a64(payload);
  if (actual != recorded) {
    fail(CacheError::Kind::kChecksumMismatch,
         "payload checksum " + hex64(actual) + " != recorded " +
             recorded_hex + " in '" + path + "'");
  }

  // Fields, one "key value" line each, in fixed order.
  std::istringstream ps(payload);
  auto field = [&](const char* name) {
    std::string k, v;
    if (!(ps >> k >> v) || k != name) {
      fail(CacheError::Kind::kBadEntry,
           std::string("expected field '") + name + "' in '" + path + "'");
    }
    return v;
  };
  auto double_field = [&](const char* name) {
    bool ok = false;
    const double v = parse_double(field(name), &ok);
    if (!ok) {
      fail(CacheError::Kind::kBadEntry,
           std::string("unparseable double field '") + name + "' in '" +
               path + "'");
    }
    return v;
  };

  CachedVerdict out;
  std::uint64_t net_sum = 0, prop_sum = 0;
  try {
    net_sum = parse_hex64(field("network"));
    prop_sum = parse_hex64(field("property"));
  } catch (const Error&) {
    fail(CacheError::Kind::kBadEntry, "unparseable key hash in '" + path + "'");
  }
  // The filename already encodes the combined hash, but recording both
  // halves makes a hash collision between distinct pairs detectable.
  if (net_sum != key.network || prop_sum != key.property) {
    fail(CacheError::Kind::kBadEntry,
         "entry '" + path + "' records a different (network, property) pair");
  }
  const std::string verdict = field("verdict");
  if (verdict == "proved") {
    out.verdict = Verdict::kProved;
  } else if (verdict == "violated") {
    out.verdict = Verdict::kViolated;
  } else if (verdict == "unknown") {
    out.verdict = Verdict::kUnknown;
  } else {
    fail(CacheError::Kind::kBadEntry,
         "unknown verdict '" + verdict + "' in '" + path + "'");
  }
  out.upper_bound = double_field("upper_bound");
  const std::string has_value = field("has_value");
  if (has_value != "0" && has_value != "1") {
    fail(CacheError::Kind::kBadEntry, "bad has_value in '" + path + "'");
  }
  out.has_value = has_value == "1";
  out.max_value = double_field("max_value");
  out.engine = field("engine");
  if (out.engine == "-") out.engine.clear();
  out.seconds = double_field("seconds");
  return out;
}

std::optional<CachedVerdict> VerificationCache::lookup(const CacheKey& key) {
  try {
    CachedVerdict v = load(key);
    ++stats_.hits;
    return v;
  } catch (const CacheError& e) {
    if (e.kind() == CacheError::Kind::kNotFound) {
      ++stats_.misses;
      return std::nullopt;
    }
    // Corrupt / unreadable: quarantine in place (never delete — the bytes
    // are evidence) and treat as a miss so the query is re-verified.
    ++stats_.rejected;
    ++stats_.misses;
    std::error_code ec;
    const std::string path = entry_path(key);
    fs::rename(path, path + ".quarantined", ec);
    return std::nullopt;
  }
}

void VerificationCache::store(const CacheKey& key, const CachedVerdict& value) {
  std::ostringstream payload;
  payload << "network " << hex64(key.network) << '\n'
          << "property " << hex64(key.property) << '\n'
          << "verdict " << to_string(value.verdict) << '\n'
          << "upper_bound " << format_double(value.upper_bound) << '\n'
          << "has_value " << (value.has_value ? 1 : 0) << '\n'
          << "max_value " << format_double(value.max_value) << '\n'
          << "engine " << (value.engine.empty() ? "-" : value.engine) << '\n'
          << "seconds " << format_double(value.seconds) << '\n';
  const std::string body = payload.str();

  const std::string path = entry_path(key);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp);
    if (!os.is_open()) {
      fail(CacheError::Kind::kIo, "cannot open '" + tmp + "'");
    }
    os << kMagic << ' ' << kVersion << '\n'
       << body << "checksum " << hex64(fnv1a64(body)) << '\n';
    if (!os.good()) fail(CacheError::Kind::kIo, "write failure on '" + tmp + "'");
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) fail(CacheError::Kind::kIo, "cannot rename '" + tmp + "'");
  ++stats_.stores;
}

}  // namespace safenn::verify
