#include "verify/resilience.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "common/stopwatch.hpp"

namespace safenn::verify {
namespace {

/// Box of radius r around the center, clipped to the outer region.
Box radius_box(const linalg::Vector& center, double r,
               const std::optional<Box>& clip) {
  Box box(center.size());
  for (std::size_t i = 0; i < center.size(); ++i) {
    box[i] = Interval{center[i] - r, center[i] + r};
    if (clip) {
      box[i].lo = std::max(box[i].lo, (*clip)[i].lo);
      box[i].hi = std::min(box[i].hi, (*clip)[i].hi);
      if (box[i].lo > box[i].hi) box[i].lo = box[i].hi;
    }
  }
  return box;
}

}  // namespace

ResilienceResult maximum_resilience(const nn::Network& net,
                                    const SafetyProperty& property,
                                    const linalg::Vector& center,
                                    const ResilienceOptions& options) {
  require(center.size() == net.input_size(),
          "maximum_resilience: center dimension mismatch");
  require(options.radius_lo >= 0.0 &&
              options.radius_lo <= options.radius_hi,
          "maximum_resilience: bad radius interval");
  Stopwatch clock;
  ResilienceResult result;
  result.violation_radius = std::numeric_limits<double>::infinity();

  MilpVerifier verifier(options.verifier);
  auto probe = [&](double r) -> Verdict {
    SafetyProperty boxed = property;
    boxed.region.box = radius_box(center, r, options.clip_box);
    ++result.probes;
    const ProveResult pr = verifier.prove(net, boxed);
    if (pr.verdict == Verdict::kViolated && pr.counterexample &&
        r < result.violation_radius) {
      result.violation_radius = r;
      result.counterexample = pr.counterexample;
    }
    return pr.verdict;
  };

  // The property must hold at (or immediately around) the center.
  double lo = options.radius_lo;
  double hi = options.radius_hi;
  if (probe(lo) != Verdict::kProved) {
    result.seconds = clock.seconds();
    return result;  // not even the starting radius is provable
  }
  result.proved_any = true;
  result.safe_radius = lo;

  // If the full radius is safe we are done.
  if (probe(hi) == Verdict::kProved) {
    result.safe_radius = hi;
    result.seconds = clock.seconds();
    return result;
  }

  // Bisection: lo provably safe, hi not proved.
  while (hi - lo > options.radius_tol) {
    const double mid = 0.5 * (lo + hi);
    if (probe(mid) == Verdict::kProved) {
      lo = mid;
      result.safe_radius = mid;
    } else {
      hi = mid;
    }
  }
  result.seconds = clock.seconds();
  return result;
}

}  // namespace safenn::verify
