#include "verify/property.hpp"

#include "common/error.hpp"

namespace safenn::verify {

bool InputRegion::contains(const linalg::Vector& x, double tol) const {
  require(x.size() == box.size(), "InputRegion::contains: dim mismatch");
  for (std::size_t i = 0; i < box.size(); ++i) {
    if (x[i] < box[i].lo - tol || x[i] > box[i].hi + tol) return false;
  }
  for (const InputConstraint& c : constraints) {
    double lhs = 0.0;
    for (const auto& [idx, coef] : c.terms) {
      require(idx >= 0 && static_cast<std::size_t>(idx) < x.size(),
              "InputRegion::contains: constraint index out of range");
      lhs += coef * x[static_cast<std::size_t>(idx)];
    }
    switch (c.relation) {
      case lp::Relation::kLe:
        if (lhs > c.rhs + tol) return false;
        break;
      case lp::Relation::kGe:
        if (lhs < c.rhs - tol) return false;
        break;
      case lp::Relation::kEq:
        if (lhs < c.rhs - tol || lhs > c.rhs + tol) return false;
        break;
    }
  }
  return true;
}

double OutputExpr::evaluate(const linalg::Vector& output) const {
  double acc = 0.0;
  for (const auto& [idx, coef] : terms) {
    require(idx >= 0 && static_cast<std::size_t>(idx) < output.size(),
            "OutputExpr::evaluate: index out of range");
    acc += coef * output[static_cast<std::size_t>(idx)];
  }
  return acc;
}

bool SafetyProperty::holds_at(const nn::Network& net, const linalg::Vector& x,
                              double tol) const {
  if (!region.contains(x)) return true;  // assumption not met: vacuous
  return expr.evaluate(net.forward(x)) <= threshold + tol;
}

}  // namespace safenn::verify
