// Complete verification by recursive input-domain splitting.
//
// A second, complementary engine to the MILP branch-and-bound: instead of
// branching on ReLU phase binaries with fixed big-M constants, it
// branches on *input dimensions*. Each sub-box gets fresh interval bounds
// (so neurons stabilize as boxes shrink) and a triangle-relaxation LP
// upper bound; the LP's input point, evaluated through the real network,
// supplies incumbents. Sound and complete for piecewise-linear networks:
// boxes are only discarded when their LP bound cannot beat the incumbent,
// and refinement makes bounds exact in the limit.
//
// This mirrors the refinement strategy of ReluVal/Neurify and is the
// engine behind the Table II rows at larger widths, where the one-shot
// MILP's relaxation is too loose (the "scalability of automated
// verification requires improvement" of paper Sec. IV(ii)).
#pragma once

#include "nn/network.hpp"
#include "verify/property.hpp"
#include "verify/verifier.hpp"

namespace safenn::verify {

struct InputSplitOptions {
  double time_limit_seconds = 0.0;  // <= 0: unlimited
  /// Terminate when (global upper bound - incumbent) <= gap_tol.
  double gap_tol = 1e-4;
  long max_boxes = 0;  // <= 0: unlimited
};

struct InputSplitResult {
  bool exact = false;         // gap closed within gap_tol
  bool has_value = false;
  double max_value = 0.0;     // best network-evaluated value found
  double upper_bound = 0.0;   // proven bound on the true maximum
  linalg::Vector witness;     // input achieving max_value
  double seconds = 0.0;
  long boxes_explored = 0;
  long lp_iterations = 0;
};

class InputSplitVerifier {
 public:
  explicit InputSplitVerifier(InputSplitOptions options = {});

  /// Maximum of expr(N(x)) over the region (ReLU/identity networks).
  InputSplitResult maximize(const nn::Network& net, const InputRegion& region,
                            const OutputExpr& expr) const;

  /// Decides expr <= threshold on the region via maximize with early
  /// termination semantics inherited from the gap tolerance.
  Verdict prove(const nn::Network& net, const SafetyProperty& property,
                InputSplitResult* detail = nullptr) const;

 private:
  InputSplitOptions options_;
};

}  // namespace safenn::verify
