// Complete verification by recursive input-domain splitting.
//
// A second, complementary engine to the MILP branch-and-bound: instead of
// branching on ReLU phase binaries with fixed big-M constants, it
// branches on *input dimensions*. Each sub-box gets fresh symbolic
// (Neurify/DeepPoly-style) bounds — so neurons stabilize as boxes shrink
// and many boxes are discarded without solving an LP at all — and a
// triangle-relaxation LP upper bound; the LP's input point, evaluated
// through the real network, supplies incumbents. Sound and complete for
// piecewise-linear networks: boxes are only discarded when their bound
// cannot beat the incumbent, and refinement makes bounds exact in the
// limit.
//
// The search runs in synchronous rounds: each round pops a fixed-size
// chunk of boxes from the best-first queue, evaluates them concurrently
// on `num_workers` threads, and merges the outcomes in pop order. All
// pruning decisions depend only on round-boundary state, so the explored
// tree — and with it the verdict, the proven upper bound, the incumbent
// max_value, and even boxes_explored — is bit-for-bit identical for any
// worker count (determinism is a hard requirement here; see DESIGN.md
// "Parallel verification & symbolic bounds"). Only chunk_size changes the
// trajectory, by making the engine evaluate boxes speculatively that a
// strictly one-at-a-time search might have pruned.
//
// This mirrors the refinement strategy of ReluVal/Neurify and is the
// engine behind the Table II rows at larger widths, where the one-shot
// MILP's relaxation is too loose (the "scalability of automated
// verification requires improvement" of paper Sec. IV(ii)).
#pragma once

#include <atomic>
#include <functional>
#include <limits>

#include "nn/network.hpp"
#include "verify/property.hpp"
#include "verify/symbolic.hpp"
#include "verify/verifier.hpp"

namespace safenn::verify {

struct InputSplitOptions {
  double time_limit_seconds = 0.0;  // <= 0: unlimited
  /// Terminate when (global upper bound - incumbent) <= gap_tol.
  double gap_tol = 1e-4;
  long max_boxes = 0;  // <= 0: unlimited
  /// Worker threads evaluating the boxes of one round concurrently.
  /// Does NOT affect results: verdict, max_value, upper_bound and
  /// boxes_explored are identical for any value (see header comment).
  int num_workers = 1;
  /// Boxes evaluated per synchronous round. Larger chunks expose more
  /// parallelism but speculate further ahead of the incumbent; results
  /// stay sound and exact for any value, but the explored tree (and so
  /// boxes_explored) depends on it. Keep fixed for reproducibility.
  int chunk_size = 8;
  /// Symbolic bound tightening: tighter triangle LPs plus LP-free
  /// discarding of boxes whose symbolic objective bound cannot beat the
  /// incumbent. Off = plain interval bounds (the ablation baseline
  /// measured by bench_table2_verification --smoke).
  bool use_symbolic = true;
  /// Cooperative cancellation (portfolio): latched once per synchronous
  /// round via CancelToken::stop_now(); workers additionally poll
  /// check_now() before starting a box. A cancelled run exits through
  /// the timeout path, so max_value/upper_bound stay sound snapshots.
  const std::atomic<bool>* cancel = nullptr;
  /// External incumbent (portfolio racing): the best concrete value a
  /// peer engine has proven achievable inside the region. Refreshed once
  /// per round and merged into the pruning reference only — it never
  /// becomes max_value or the witness (there is no input for it here).
  /// Pruning against it is sound because the value is achievable, so any
  /// discarded box is dominated by a real point. Return -inf when none.
  /// Leave unset for bit-reproducible trajectories.
  std::function<double()> external_incumbent;
  /// Early value-exit: stop (through the timeout path, keeping sound
  /// bounds) as soon as an in-region evaluation exceeds this value. The
  /// portfolio sets it to the property threshold — a violation witness
  /// needs no tighter maximum. +inf disables.
  double stop_when_above = std::numeric_limits<double>::infinity();
  /// Optional shared symbolic propagator for `net` (the portfolio hoists
  /// one per query instead of every engine re-deriving it). Must outlive
  /// the call; ignored when use_symbolic is false. Null: built locally.
  const SymbolicPropagator* propagator = nullptr;
  /// Called (from the sequential merge, never concurrently) whenever the
  /// incumbent improves: a portfolio publishes it so peers prune sooner.
  std::function<void(double value, const linalg::Vector& witness)>
      on_incumbent;
};

struct InputSplitResult {
  bool exact = false;         // gap closed within gap_tol
  bool has_value = false;
  double max_value = 0.0;     // best network-evaluated value found
  double upper_bound = 0.0;   // proven bound on the true maximum
  linalg::Vector witness;     // input achieving max_value
  double seconds = 0.0;
  long boxes_explored = 0;
  /// Boxes discarded by the symbolic objective bound alone — each one is
  /// a triangle LP that never had to be built or solved.
  long boxes_pruned_symbolic = 0;
  long lp_iterations = 0;
  /// True when the run stopped because InputSplitOptions::cancel fired
  /// (exact is then false; bounds are sound snapshots).
  bool cancelled = false;
};

class InputSplitVerifier {
 public:
  explicit InputSplitVerifier(InputSplitOptions options = {});

  /// Maximum of expr(N(x)) over the region (ReLU/identity networks).
  InputSplitResult maximize(const nn::Network& net, const InputRegion& region,
                            const OutputExpr& expr) const;

  /// Decides expr <= threshold on the region via maximize with early
  /// termination semantics inherited from the gap tolerance.
  Verdict prove(const nn::Network& net, const SafetyProperty& property,
                InputSplitResult* detail = nullptr) const;

 private:
  InputSplitOptions options_;
};

}  // namespace safenn::verify
