// Portfolio verification: race every engine, share what each learns.
//
// The Table II regime (wider layers, harder properties, per-query
// time-outs) is exactly where a single strategy stalls: MILP
// branch-and-bound, input-splitting with symbolic pruning, and the
// SAT/quantized CNF path each dominate on different queries, and picking
// one up front means paying the worst case on the others. PortfolioVerifier
// runs all applicable engines on one query over the shared TaskPool with a
// lock-protected SharedIncumbent between them: any engine's concrete
// incumbent immediately tightens the others' pruning tests (an externally
// achieved value prunes exactly like a native incumbent, because it is
// achievable), any engine's proven bound is merged, and the first engine
// to decide cancels the rest through the typed CancelToken flags.
//
// Two modes, one merge rule:
//
//  - racing (default): wall-clock deadline, full incumbent sharing, the
//    first decider cancels everyone. The verdict is sound and, because
//    every engine is sound, independent of which engine got there first —
//    but reported bounds reflect whatever each engine had when cancelled,
//    so they are not bitwise-reproducible across runs.
//  - deterministic: engines run on deterministic budgets (node/box/
//    conflict caps, no wall clock), external values are not injected, and
//    a decider at priority p cancels only engines at priority > p. The
//    merge then consumes only engines at priority <= min decider priority
//    — every one of which ran to its deterministic termination — which
//    makes verdict, bound, AND winning engine bit-identical for any
//    worker count or scheduling (the property test_portfolio asserts).
//
// Merge rule (both modes): first-to-prove wins, lowest priority breaking
// ties; with no decider, report the tightest merged bound and which
// engine produced it. Engine priority order is kInputSplit < kMilp <
// kSatQuantized — cheapest-to-cancel last, the engine that usually wins
// the wide-layer queries first.
//
// The hoisted work every engine used to re-derive is computed once per
// query: one SymbolicPropagator, one root symbolic propagation (feeding
// the MILP big-M seed, the split verifier, the SAT word-width/margin
// analysis, and an instant root-level proof when the box already closes),
// and one warm-start sample sweep whose best value seeds all engines.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "milp/branch_and_bound.hpp"
#include "nn/network.hpp"
#include "verify/cache.hpp"
#include "verify/input_split.hpp"
#include "verify/milp_encoder.hpp"
#include "verify/property.hpp"
#include "verify/verifier.hpp"

namespace safenn::verify {

/// The racing engines, in priority order (= launch order, = merge
/// tie-break order). kRoot is the pseudo-engine for per-query hoisted
/// work: the root symbolic bound and the warm-start sample sweep.
enum class PortfolioEngine {
  kInputSplit = 0,
  kMilp = 1,
  kSatQuantized = 2,
  kRoot = 3,
};

const char* to_string(PortfolioEngine engine);

/// Cross-engine blackboard. Value side: best concrete expr value proven
/// achievable in-region (network-evaluated — LP/SAT tolerances cannot
/// inflate it) plus its witness. Bound side: tightest proven upper bound
/// on the true maximum. Cancellation side: one flag per engine, plus the
/// decided latch. All value/bound state sits behind one mutex; the cancel
/// flags are atomics so engines poll them lock-free from CancelToken
/// (release on set, acquire on load — the flag is a pure signal, the
/// values engines act on always travel through the mutex).
class SharedIncumbent {
 public:
  explicit SharedIncumbent(int num_engines);

  /// Max-merge a concrete in-region value (witness optional).
  void publish_value(PortfolioEngine engine, double value,
                     const linalg::Vector* witness);
  /// Best published value, -inf when none. Safe to call from any engine's
  /// pruning hot loop (one mutex acquisition).
  double best_value() const;

  /// Min-merge a proven upper bound on the true maximum.
  void publish_bound(PortfolioEngine engine, double bound);
  double best_bound() const;  // +inf when none

  /// Record a decision at `priority`. cancel_all (racing mode) raises
  /// every other engine's flag; otherwise (deterministic mode) only
  /// engines at strictly higher priority are cancelled, so everything at
  /// or below the winning priority still terminates deterministically.
  void decide(int priority, bool cancel_all);
  bool decided() const;

  const std::atomic<bool>* cancel_flag(int engine) const {
    return flags_[static_cast<std::size_t>(engine)].get();
  }

 private:
  mutable std::mutex mu_;
  bool has_value_ = false;
  double value_;
  linalg::Vector witness_;
  double bound_;
  bool decided_ = false;
  std::vector<std::unique_ptr<std::atomic<bool>>> flags_;
};

struct PortfolioOptions {
  /// Racing-mode shared wall-clock deadline per query (<= 0: unlimited).
  /// Each engine computes its remaining budget when it actually starts,
  /// so a sequential schedule (1 worker) still respects the total.
  double time_limit_seconds = 0.0;
  /// Deterministic mode: budgets instead of the wall clock, no external
  /// value injection, priority-scoped cancellation (header comment).
  bool deterministic = false;
  /// Workers racing the engines. Never affects the verdict; in
  /// deterministic mode it affects nothing at all (the test suite runs
  /// 1/2/4 and asserts bit-equality).
  int num_workers = 3;
  bool use_input_split = true;
  bool use_milp = true;
  bool use_sat = true;
  /// Deterministic-mode budgets (ignored in racing mode, where the nested
  /// option structs' own caps apply).
  long det_max_boxes = 4000;
  long det_max_nodes = 4000;
  std::int64_t det_max_conflicts = 200000;
  /// Warm-start sample sweep, hoisted to the portfolio: the best concrete
  /// execution seeds the MILP incumbent and the shared value (0 disables).
  long warm_start_samples = 200;
  std::uint64_t warm_start_seed = 12345;
  /// SAT engine gate: quantization precision and the circuit-size cap
  /// (total weight count) above which the CNF path is not attempted.
  int sat_frac_bits = 4;
  std::size_t sat_max_weights = 4000;
  /// Verdict tolerances, matching the single-engine verifiers.
  double prove_tol = 1e-9;
  /// Nested per-engine options. time limit / cancel / propagator /
  /// branch priority / warm start fields are overwritten per query.
  InputSplitOptions split;
  EncoderOptions encoder;
  milp::BnbOptions bnb;
};

/// What one engine contributed to one query.
struct EngineOutcome {
  PortfolioEngine engine = PortfolioEngine::kRoot;
  bool ran = false;        // applicable and actually executed
  bool decided = false;    // produced kProved/kViolated on its own
  Verdict verdict = Verdict::kUnknown;
  double upper_bound = 0.0;  // sound bound on max expr (when ran)
  bool has_value = false;
  double max_value = 0.0;  // network-evaluated, in-region (when has_value)
  linalg::Vector witness;
  bool cancelled = false;  // stopped by a peer's decision
  double seconds = 0.0;
  std::string detail;      // nodes/boxes/probes or the typed skip reason
};

struct PortfolioResult {
  Verdict verdict = Verdict::kUnknown;
  /// Deterministic merge: lowest-priority decider, else the engine that
  /// produced the tightest merged bound.
  PortfolioEngine winner = PortfolioEngine::kRoot;
  std::string engine_name;   // to_string(winner), or the cached engine
  double upper_bound = 0.0;  // tightest merged sound bound
  bool has_value = false;
  double max_value = 0.0;
  linalg::Vector witness;
  bool from_cache = false;
  bool timed_out = false;  // no engine decided
  double seconds = 0.0;
  std::vector<EngineOutcome> engines;  // per-engine evidence (fresh runs)
};

/// Races the engines on one query; consults/feeds `cache` when given
/// (not owned, may be null; access is serialized by the caller).
class PortfolioVerifier {
 public:
  explicit PortfolioVerifier(PortfolioOptions options = {},
                             VerificationCache* cache = nullptr);

  /// Decides "forall x in region: expr(N(x)) <= threshold" for
  /// piecewise-linear networks.
  PortfolioResult prove(const nn::Network& net,
                        const SafetyProperty& property) const;

 private:
  PortfolioOptions options_;
  VerificationCache* cache_;
};

}  // namespace safenn::verify
