#include "verify/verifier.hpp"

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "verify/input_split.hpp"

namespace safenn::verify {

std::string to_string(Verdict v) {
  switch (v) {
    case Verdict::kProved: return "proved";
    case Verdict::kViolated: return "violated";
    case Verdict::kUnknown: return "unknown";
  }
  return "?";
}

MilpVerifier::MilpVerifier(VerifierOptions options)
    : options_(std::move(options)) {}

MaximizeResult MilpVerifier::maximize(const nn::Network& net,
                                      const InputRegion& region,
                                      const OutputExpr& expr) const {
  Stopwatch clock;
  EncodedNetwork enc = encode_network(net, region, options_.encoder);
  for (const auto& [idx, coef] : expr.terms) {
    require(idx >= 0 &&
                static_cast<std::size_t>(idx) < enc.output_vars.size(),
            "MilpVerifier::maximize: output index out of range");
    enc.model.set_objective(enc.output_vars[static_cast<std::size_t>(idx)],
                            coef);
  }
  enc.model.set_maximize(true);

  milp::BnbOptions bnb = options_.bnb;
  bnb.time_limit_seconds = options_.time_limit_seconds;
  bnb.branch_priority = enc.branch_priority;

  // Warm start: the best of N concrete executions is a feasible incumbent.
  if (options_.warm_start_samples > 0) {
    Rng rng(options_.warm_start_seed);
    linalg::Vector best_x;
    double best_val = 0.0;
    bool have = false;
    for (long t = 0; t < options_.warm_start_samples; ++t) {
      linalg::Vector x(net.input_size());
      for (std::size_t i = 0; i < x.size(); ++i) {
        x[i] = rng.uniform(region.box[i].lo, region.box[i].hi);
      }
      if (!region.contains(x)) continue;  // side constraints may reject
      const double val = expr.evaluate(net.forward(x));
      if (!have || val > best_val) {
        have = true;
        best_val = val;
        best_x = std::move(x);
      }
    }
    if (options_.warm_start_split_seconds > 0.0) {
      InputSplitOptions split_opts;
      split_opts.time_limit_seconds = options_.warm_start_split_seconds;
      split_opts.gap_tol = 1e-3;
      split_opts.num_workers = options_.num_workers;
      const InputSplitResult sr =
          InputSplitVerifier(split_opts).maximize(net, region, expr);
      if (sr.has_value && (!have || sr.max_value > best_val)) {
        have = true;
        best_val = sr.max_value;
        best_x = sr.witness;
      }
    }
    if (have) {
      bnb.initial_solution = enc.assignment_from_input(net, best_x);
    }
  }

  const milp::MilpResult r = milp::BranchAndBound(bnb).solve(enc.model);

  MaximizeResult out;
  out.status = r.status;
  out.seconds = clock.seconds();
  out.nodes = r.nodes_explored;
  out.lp_iterations = r.lp_iterations;
  out.binaries = enc.num_binaries;
  out.upper_bound = r.best_bound;
  if (r.has_solution()) {
    out.has_value = true;
    // Report the value the *network* actually produces at the witness, so
    // LP tolerances cannot inflate the answer.
    out.witness = enc.extract_input(r.values);
    out.max_value = expr.evaluate(net.forward(out.witness));
  }
  return out;
}

ProveResult MilpVerifier::prove(const nn::Network& net,
                                const SafetyProperty& property) const {
  Stopwatch clock;
  const MaximizeResult m = maximize(net, property.region, property.expr);
  ProveResult out;
  out.seconds = clock.seconds();
  out.nodes = m.nodes;

  if (m.status == milp::MilpStatus::kInfeasible) {
    // Empty assumption region: vacuously true.
    out.verdict = Verdict::kProved;
    return out;
  }
  if (m.has_value && m.max_value > property.threshold) {
    out.verdict = Verdict::kViolated;
    out.counterexample = m.witness;
    out.violation_value = m.max_value;
    return out;
  }
  if (m.status == milp::MilpStatus::kOptimal) {
    // Exact maximum <= threshold (network-evaluated at the argmax and
    // certified by the MILP bound).
    out.verdict = (m.upper_bound <= property.threshold + 1e-6)
                      ? Verdict::kProved
                      : Verdict::kUnknown;
    return out;
  }
  // Time/node limit: the dual bound may still prove the property.
  if (m.upper_bound <= property.threshold) {
    out.verdict = Verdict::kProved;
    return out;
  }
  out.verdict = Verdict::kUnknown;
  return out;
}

double IntervalVerifier::upper_bound(const nn::Network& net,
                                     const InputRegion& region,
                                     const OutputExpr& expr) const {
  return linear_output_bounds(net, region.box, expr.terms).hi;
}

Verdict IntervalVerifier::prove(const nn::Network& net,
                                const SafetyProperty& property) const {
  const double ub = upper_bound(net, property.region, property.expr);
  return ub <= property.threshold ? Verdict::kProved : Verdict::kUnknown;
}

}  // namespace safenn::verify
