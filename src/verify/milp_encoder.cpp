#include "verify/milp_encoder.hpp"

#include <algorithm>
#include <string>

#include "common/error.hpp"
#include "lp/simplex.hpp"
#include "verify/interval.hpp"
#include "verify/symbolic.hpp"

namespace safenn::verify {

std::vector<LayerBounds> lp_tightened_bounds(
    const nn::Network& net, const InputRegion& region,
    const std::vector<LayerBounds>* symbolic_seed) {
  require(region.dims() == net.input_size(),
          "lp_tightened_bounds: region dimension mismatch");
  // Symbolic bounds seed the relaxation and cap the LP answers (the LP
  // can only tighten, never loosen, a sound bound). The tighter seed
  // also lets stable neurons skip their min/max LP pair below.
  const std::vector<LayerBounds> seed =
      symbolic_seed ? *symbolic_seed : symbolic_bounds(net, region.box);

  lp::Problem relaxation;
  std::vector<int> prev_vars;
  prev_vars.reserve(net.input_size());
  for (std::size_t i = 0; i < net.input_size(); ++i) {
    prev_vars.push_back(
        relaxation.add_variable(region.box[i].lo, region.box[i].hi));
  }
  for (const InputConstraint& c : region.constraints) {
    lp::LinearTerms terms;
    for (const auto& [idx, coef] : c.terms) {
      terms.emplace_back(prev_vars[static_cast<std::size_t>(idx)], coef);
    }
    relaxation.add_constraint(std::move(terms), c.relation, c.rhs);
  }

  lp::SimplexSolver solver;
  std::vector<LayerBounds> out;
  out.reserve(net.num_layers());

  for (std::size_t li = 0; li < net.num_layers(); ++li) {
    const nn::DenseLayer& layer = net.layer(li);
    LayerBounds lb;
    lb.pre.resize(layer.out_size());
    lb.post.resize(layer.out_size());
    std::vector<int> layer_vars(layer.out_size(), -1);

    for (std::size_t r = 0; r < layer.out_size(); ++r) {
      // Tighten pre-activation bounds by LP, seeded by the interval.
      Interval pre = seed[li].pre[r];
      lp::LinearTerms z_terms;
      for (std::size_t c = 0; c < layer.in_size(); ++c) {
        const double w = layer.weights()(r, c);
        if (w != 0.0) z_terms.emplace_back(prev_vars[c], w);
      }
      const double b = layer.biases()[r];
      // A ReLU neuron the symbolic seed already proves stable encodes
      // without a binary no matter how much tighter the LP bound gets —
      // skip both LPs (the big win of the symbolic seed: on typical
      // boxes most neurons are stable).
      const bool skip_lps = layer.activation() == nn::Activation::kRelu &&
                            classify(pre) != NeuronStability::kUnstable;
      for (int sense = 0; !skip_lps && sense < 2; ++sense) {
        lp::Problem p = relaxation;
        for (const auto& [var, coef] : z_terms) p.set_objective(var, coef);
        p.set_maximize(sense == 1);
        const lp::Solution s = solver.solve(p);
        if (s.status != lp::SolveStatus::kOptimal) continue;
        if (sense == 1) {
          pre.hi = std::min(pre.hi, s.objective + b + 1e-9);
        } else {
          pre.lo = std::max(pre.lo, s.objective + b - 1e-9);
        }
      }
      if (pre.lo > pre.hi) pre.lo = pre.hi;  // numerical guard
      lb.pre[r] = pre;

      // Extend the relaxation with this neuron for subsequent layers.
      if (layer.activation() == nn::Activation::kIdentity) {
        lb.post[r] = pre;
        const int y = relaxation.add_variable(pre.lo, pre.hi);
        lp::LinearTerms eq{{y, 1.0}};
        for (const auto& [var, coef] : z_terms) eq.emplace_back(var, -coef);
        relaxation.add_constraint(std::move(eq), lp::Relation::kEq, b);
        layer_vars[r] = y;
        continue;
      }
      // ReLU neuron.
      if (pre.hi <= 0.0) {  // stable inactive
        lb.post[r] = Interval{0.0, 0.0};
        layer_vars[r] = relaxation.add_variable(0.0, 0.0);
        continue;
      }
      if (pre.lo >= 0.0) {  // stable active: y = z
        lb.post[r] = pre;
        const int y = relaxation.add_variable(pre.lo, pre.hi);
        lp::LinearTerms eq{{y, 1.0}};
        for (const auto& [var, coef] : z_terms) eq.emplace_back(var, -coef);
        relaxation.add_constraint(std::move(eq), lp::Relation::kEq, b);
        layer_vars[r] = y;
        continue;
      }
      // Unstable: triangle relaxation y >= z, y >= 0, y <= hi(z-lo)/(hi-lo).
      lb.post[r] = Interval{0.0, pre.hi};
      const int y = relaxation.add_variable(0.0, pre.hi);
      lp::LinearTerms ge{{y, 1.0}};
      for (const auto& [var, coef] : z_terms) ge.emplace_back(var, -coef);
      relaxation.add_constraint(std::move(ge), lp::Relation::kGe, b);
      const double slope = pre.hi / (pre.hi - pre.lo);
      lp::LinearTerms le{{y, 1.0}};
      for (const auto& [var, coef] : z_terms) {
        le.emplace_back(var, -slope * coef);
      }
      relaxation.add_constraint(std::move(le), lp::Relation::kLe,
                                slope * (b - pre.lo));
      layer_vars[r] = y;
    }
    prev_vars = layer_vars;
    out.push_back(std::move(lb));
  }
  return out;
}

linalg::Vector EncodedNetwork::extract_input(
    const std::vector<double>& values) const {
  linalg::Vector x(input_vars.size());
  for (std::size_t i = 0; i < input_vars.size(); ++i) {
    x[i] = values[static_cast<std::size_t>(input_vars[i])];
  }
  return x;
}

std::vector<double> EncodedNetwork::assignment_from_input(
    const nn::Network& net, const linalg::Vector& x) const {
  require(x.size() == input_vars.size(),
          "assignment_from_input: input width mismatch");
  std::vector<double> values(
      static_cast<std::size_t>(model.num_variables()), 0.0);
  for (std::size_t i = 0; i < input_vars.size(); ++i) {
    values[static_cast<std::size_t>(input_vars[i])] = x[i];
  }
  const nn::ForwardTrace trace = net.forward_trace(x);
  for (std::size_t li = 0; li < post_vars.size(); ++li) {
    for (std::size_t r = 0; r < post_vars[li].size(); ++r) {
      values[static_cast<std::size_t>(post_vars[li][r])] =
          trace.post_activations[li][r];
      const int d = phase_binaries[li][r];
      if (d >= 0) {
        values[static_cast<std::size_t>(d)] =
            trace.pre_activations[li][r] > 0.0 ? 1.0 : 0.0;
      }
    }
  }
  return values;
}

EncodedNetwork encode_network(const nn::Network& net,
                              const InputRegion& region,
                              const EncoderOptions& options) {
  require(region.dims() == net.input_size(),
          "encode_network: region dimension mismatch");
  for (std::size_t li = 0; li < net.num_layers(); ++li) {
    require(nn::is_piecewise_linear(net.layer(li).activation()),
            "encode_network: only ReLU/identity layers admit MILP "
            "encodings; use the interval verifier for smooth activations");
  }

  // Neuron bounds (big-M constants) per the configured tightening method.
  std::vector<LayerBounds> bounds;
  switch (options.tightening) {
    case BoundTightening::kInterval:
      bounds = propagate_bounds(net, region.box);
      break;
    case BoundTightening::kSymbolic:
      bounds = options.precomputed_symbolic
                   ? *options.precomputed_symbolic
                   : symbolic_bounds(net, region.box);
      break;
    case BoundTightening::kLpTighten:
      bounds = lp_tightened_bounds(net, region, options.precomputed_symbolic);
      break;
    case BoundTightening::kLooseBigM: {
      const double m = options.loose_big_m;
      bounds.reserve(net.num_layers());
      for (std::size_t li = 0; li < net.num_layers(); ++li) {
        LayerBounds lb;
        const std::size_t width = net.layer(li).out_size();
        lb.pre.assign(width, Interval{-m, m});
        for (std::size_t r = 0; r < width; ++r) {
          lb.post.push_back(
              net.layer(li).activation() == nn::Activation::kRelu
                  ? Interval{0.0, m}
                  : Interval{-m, m});
        }
        bounds.push_back(std::move(lb));
      }
      break;
    }
  }

  EncodedNetwork enc;
  milp::Model& model = enc.model;

  // Input variables constrained to the region.
  enc.input_vars.reserve(net.input_size());
  for (std::size_t i = 0; i < net.input_size(); ++i) {
    enc.input_vars.push_back(
        model.add_variable(region.box[i].lo, region.box[i].hi,
                           milp::VarType::kContinuous, 0.0,
                           "x" + std::to_string(i)));
  }
  for (const InputConstraint& c : region.constraints) {
    lp::LinearTerms terms;
    terms.reserve(c.terms.size());
    for (const auto& [idx, coef] : c.terms) {
      require(idx >= 0 && static_cast<std::size_t>(idx) < net.input_size(),
              "encode_network: input constraint index out of range");
      terms.emplace_back(enc.input_vars[static_cast<std::size_t>(idx)], coef);
    }
    model.add_constraint(std::move(terms), c.relation, c.rhs);
  }

  std::vector<int> prev_vars = enc.input_vars;
  enc.post_vars.resize(net.num_layers());
  enc.phase_binaries.resize(net.num_layers());

  for (std::size_t li = 0; li < net.num_layers(); ++li) {
    const nn::DenseLayer& layer = net.layer(li);
    const LayerBounds& lb = bounds[li];
    auto& layer_post = enc.post_vars[li];
    auto& layer_bin = enc.phase_binaries[li];
    layer_post.assign(layer.out_size(), -1);
    layer_bin.assign(layer.out_size(), -1);

    for (std::size_t r = 0; r < layer.out_size(); ++r) {
      const Interval pre = lb.pre[r];
      const std::string tag =
          "l" + std::to_string(li) + "n" + std::to_string(r);

      // Pre-activation as linear terms over the previous layer.
      auto pre_terms = [&](double y_coef, int y_var,
                           double d_coef = 0.0, int d_var = -1) {
        lp::LinearTerms terms;
        terms.reserve(layer.in_size() + 2);
        terms.emplace_back(y_var, y_coef);
        for (std::size_t c = 0; c < layer.in_size(); ++c) {
          const double w = layer.weights()(r, c);
          if (w != 0.0) terms.emplace_back(prev_vars[c], -w);
        }
        if (d_var >= 0) terms.emplace_back(d_var, d_coef);
        return terms;
      };

      if (layer.activation() == nn::Activation::kIdentity) {
        const int y = model.add_variable(pre.lo, pre.hi,
                                         milp::VarType::kContinuous, 0.0,
                                         "y_" + tag);
        // y - w.y_prev = b
        model.add_constraint(pre_terms(1.0, y), lp::Relation::kEq,
                             layer.biases()[r]);
        layer_post[r] = y;
        continue;
      }

      // ReLU neuron.
      const NeuronStability stability = classify(pre);
      if (stability == NeuronStability::kStableInactive) {
        // Output pinned to zero; no rows needed.
        layer_post[r] = model.add_variable(0.0, 0.0,
                                           milp::VarType::kContinuous, 0.0,
                                           "y_" + tag);
        ++enc.num_stable_inactive;
        continue;
      }
      if (stability == NeuronStability::kStableActive) {
        const int y = model.add_variable(std::max(0.0, pre.lo), pre.hi,
                                         milp::VarType::kContinuous, 0.0,
                                         "y_" + tag);
        model.add_constraint(pre_terms(1.0, y), lp::Relation::kEq,
                             layer.biases()[r]);
        layer_post[r] = y;
        ++enc.num_stable_active;
        continue;
      }

      // Unstable: big-M disjunction with per-neuron constants.
      const double lo = pre.lo;
      const double hi = pre.hi;
      const int y = model.add_variable(0.0, std::max(0.0, hi),
                                       milp::VarType::kContinuous, 0.0,
                                       "y_" + tag);
      const int d = model.add_variable(0.0, 1.0, milp::VarType::kBinary, 0.0,
                                       "d_" + tag);
      const double b = layer.biases()[r];
      // y - w.y_prev >= b              (y >= z)
      model.add_constraint(pre_terms(1.0, y), lp::Relation::kGe, b);
      // y - w.y_prev - lo*d <= b - lo  (y <= z - lo(1-d))
      model.add_constraint(pre_terms(1.0, y, -lo, d), lp::Relation::kLe,
                           b - lo);
      // y - hi*d <= 0                  (y <= hi*d)
      model.add_constraint({{y, 1.0}, {d, -hi}}, lp::Relation::kLe, 0.0);
      layer_post[r] = y;
      layer_bin[r] = d;
      ++enc.num_binaries;
    }
    prev_vars = layer_post;
  }

  // Early-layer binaries get the highest branching priority: fixing them
  // stabilizes every downstream neuron.
  enc.branch_priority.assign(
      static_cast<std::size_t>(enc.model.num_variables()), 0.0);
  for (std::size_t li = 0; li < enc.phase_binaries.size(); ++li) {
    for (int d : enc.phase_binaries[li]) {
      if (d >= 0) {
        enc.branch_priority[static_cast<std::size_t>(d)] =
            static_cast<double>(net.num_layers() - li);
      }
    }
  }

  enc.output_vars = enc.post_vars.back();
  return enc;
}

}  // namespace safenn::verify
