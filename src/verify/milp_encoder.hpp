// MILP encoding of ReLU networks.
//
// Implements the method of Cheng, Nührenberg, Ruess, "Maximum resilience
// of artificial neural networks" (ATVA 2017), which the paper applies in
// its case study: "encodes the structure of a neural network into a set
// of mixed integer linear constraints".
//
// Per unstable ReLU neuron (interval pre-activation bounds lo < 0 < hi)
// with pre-activation z = w.y_prev + b, post-activation variable y and
// phase binary d:
//     y >= z                     (y - w.y_prev        >= b)
//     y <= z - lo*(1 - d)        (y - w.y_prev - lo*d <= b - lo)
//     y <= hi*d
//     y in [0, max(0, hi)], d in {0, 1}
// Stable-active neurons collapse to the equality y = z; stable-inactive
// neurons are pinned to y = 0 and need no row at all. The identity output
// layer contributes one equality per output.
#pragma once

#include <vector>

#include "milp/model.hpp"
#include "nn/network.hpp"
#include "verify/property.hpp"

namespace safenn::verify {

/// How per-neuron pre-activation bounds (the big-M constants) are
/// obtained. Tighter bounds mean fewer binaries and a tighter relaxation;
/// bench_bigm_ablation measures the effect.
enum class BoundTightening {
  /// Every ReLU neuron gets the loose symmetric bound
  /// [-loose_big_m, +loose_big_m] and a binary (ablation baseline).
  kLooseBigM,
  /// Interval arithmetic through the layers (cheap, layer-wise sound).
  kInterval,
  /// Symbolic (Neurify/DeepPoly-style) linear bounds in the input
  /// variables, concretized per neuron. Never looser than kInterval,
  /// still LP-free.
  kSymbolic,
  /// Per-neuron min/max LPs over the triangle relaxation of all earlier
  /// layers (slower to build, much tighter; the default). Seeded by
  /// kSymbolic bounds: neurons the seed already proves stable skip their
  /// LP pair entirely.
  kLpTighten,
};

struct EncoderOptions {
  BoundTightening tightening = BoundTightening::kLpTighten;
  double loose_big_m = 1000.0;
  /// Optional pre-computed symbolic bounds for exactly (net, region.box),
  /// e.g. hoisted once per query by the portfolio. Used as the kSymbolic
  /// result and as the kLpTighten seed instead of re-deriving them. Must
  /// outlive the encode_network call; null re-derives locally.
  const std::vector<LayerBounds>* precomputed_symbolic = nullptr;
};

/// Per-neuron bounds via layer-by-layer LP tightening: each neuron's
/// pre-activation is minimized/maximized over an LP containing the input
/// region and the triangle relaxation of all previously-bounded layers.
/// Always at least as tight as propagate_bounds. `symbolic_seed`, when
/// non-null, must be symbolic_bounds(net, region.box) (the caller hoisted
/// it); null derives the seed here.
std::vector<LayerBounds> lp_tightened_bounds(
    const nn::Network& net, const InputRegion& region,
    const std::vector<LayerBounds>* symbolic_seed = nullptr);

/// The encoded model plus the variable maps needed to read answers back.
struct EncodedNetwork {
  milp::Model model;
  std::vector<int> input_vars;                 // one per input dim
  std::vector<int> output_vars;                // one per output dim
  std::vector<std::vector<int>> post_vars;     // per layer, per neuron
  std::vector<std::vector<int>> phase_binaries;  // -1 where no binary
  /// Branch priorities for BnbOptions (early layers first).
  std::vector<double> branch_priority;
  std::size_t num_binaries = 0;
  std::size_t num_stable_active = 0;
  std::size_t num_stable_inactive = 0;

  /// Input assignment extracted from a MILP solution vector.
  linalg::Vector extract_input(const std::vector<double>& values) const;

  /// Full MILP variable assignment corresponding to a concrete network
  /// execution at input `x` — always feasible for the encoding, so it
  /// seeds branch-and-bound with an incumbent (warm start).
  std::vector<double> assignment_from_input(const nn::Network& net,
                                            const linalg::Vector& x) const;
};

/// Builds the MILP for `net` constrained to `region`. Only piecewise-
/// linear activations (ReLU hidden, identity output) are supported;
/// throws safenn::Error otherwise. No objective is set — callers add one.
EncodedNetwork encode_network(const nn::Network& net,
                              const InputRegion& region,
                              const EncoderOptions& options = {});

}  // namespace safenn::verify
