// Interval bound propagation (static analysis of networks).
//
// Two roles, both from the paper:
//  1. It is the "static analysis" instance of Sec. II(B)'s formal methods:
//     a sound but incomplete verifier that works for any monotone
//     activation (including atan/tanh where MILP does not apply).
//  2. It computes per-neuron pre-activation bounds that become the
//     big-M constants of the MILP encoding; neurons whose interval does
//     not straddle zero are *stable* and need no binary variable
//     (the ATVA'17 bound-tightening trick; bench_bigm_ablation measures
//     how much this matters).
#pragma once

#include <vector>

#include "nn/network.hpp"

namespace safenn::verify {

/// A closed interval [lo, hi].
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  double width() const { return hi - lo; }
  bool contains(double x) const { return x >= lo && x <= hi; }
};

/// An axis-aligned input box, one interval per input dimension.
using Box = std::vector<Interval>;

/// ReLU phase classification under an input region.
enum class NeuronStability {
  kStableActive,    // pre-activation always >= 0: ReLU is identity
  kStableInactive,  // pre-activation always <= 0: output pinned to 0
  kUnstable,        // straddles 0: needs a branch decision
};

/// Bounds for one layer of a propagated network.
struct LayerBounds {
  std::vector<Interval> pre;   // pre-activation (z) bounds
  std::vector<Interval> post;  // post-activation (y) bounds
};

/// Sound per-layer bounds for all neurons given the input box. Works for
/// every supported activation (all are monotone non-decreasing).
std::vector<LayerBounds> propagate_bounds(const nn::Network& net,
                                          const Box& input_box);

/// Bounds on the network outputs over the box.
std::vector<Interval> output_bounds(const nn::Network& net,
                                    const Box& input_box);

/// Bounds on a linear functional sum_i terms[i].second * out[terms[i].first]
/// over the box (computed from output bounds; sound, not tight).
Interval linear_output_bounds(const nn::Network& net, const Box& input_box,
                              const std::vector<std::pair<int, double>>& terms);

/// Classifies one neuron's ReLU phase from its pre-activation interval.
NeuronStability classify(const Interval& pre);

/// Counts of stable/unstable neurons across all ReLU layers.
struct StabilityStats {
  std::size_t stable_active = 0;
  std::size_t stable_inactive = 0;
  std::size_t unstable = 0;

  std::size_t total() const {
    return stable_active + stable_inactive + unstable;
  }
};

StabilityStats stability_stats(const nn::Network& net, const Box& input_box);

}  // namespace safenn::verify
