// Safety property language.
//
// The paper's case-study property: "if there is a vehicle in the left of
// the ego vehicle, the predictor never suggests a large left velocity";
// formally, over an input region describing 'vehicle on the left', the
// mean lateral-velocity output stays below a threshold. A SafetyProperty
// is exactly that shape: an input region (assumption) plus a linear bound
// on the outputs (guarantee).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "lp/problem.hpp"
#include "verify/interval.hpp"

namespace safenn::verify {

/// A linear constraint over the *input* variables of a network, used to
/// carve non-box assumptions (e.g. "left-gap distance <= 10m AND
/// relative speed >= 0").
struct InputConstraint {
  lp::LinearTerms terms;  // indices are input dimensions
  lp::Relation relation = lp::Relation::kLe;
  double rhs = 0.0;
};

/// Assumption region: a bounding box plus optional linear side constraints.
struct InputRegion {
  Box box;
  std::vector<InputConstraint> constraints;

  std::size_t dims() const { return box.size(); }

  /// True when `x` lies in the box and satisfies all side constraints
  /// up to `tol`.
  bool contains(const linalg::Vector& x, double tol = 1e-7) const;
};

/// A linear functional over the network's raw outputs.
struct OutputExpr {
  lp::LinearTerms terms;  // indices are output dimensions

  double evaluate(const linalg::Vector& output) const;
};

/// "For all inputs in `region`: expr(N(x)) <= threshold."
struct SafetyProperty {
  std::string name;
  InputRegion region;
  OutputExpr expr;
  double threshold = 0.0;

  /// True when the property holds at the single point `x`.
  bool holds_at(const nn::Network& net, const linalg::Vector& x,
                double tol = 1e-9) const;
};

}  // namespace safenn::verify
