// Symbolic linear bound propagation (Neurify/DeepPoly-style).
//
// Where interval propagation forgets every cross-neuron correlation at
// each layer, symbolic propagation carries, for every neuron, a *linear*
// lower and upper bounding function of the network inputs:
//
//     lo_coef.row(r) . x + lo_const[r]  <=  y_r  <=  hi_coef.row(r) . x + hi_const[r]
//
// valid for all x in the input box. Unstable ReLUs are relaxed with the
// triangle bounds (upper: slope*(z - lo); lower: z or 0, whichever chord
// loses less area — the DeepPoly rule), stable ReLUs and identity layers
// pass the forms through exactly, and smooth monotone activations fall
// back to their concrete interval (forms degrade to constants, staying
// sound for mixed ReLU/tanh/identity stacks).
//
// Concretizing the forms against the box and intersecting with plain
// interval propagation yields `LayerBounds` that are *provably never
// looser* than `propagate_bounds` — the drop-in tightening used by the
// MILP big-M constants, the LP-OBBT seed, and the input-splitting
// verifier's LP-free box pruning (paper Sec. IV(ii): "scalability of
// automated verification requires improvement").
#pragma once

#include <vector>

#include "linalg/matrix.hpp"
#include "lp/problem.hpp"
#include "nn/network.hpp"
#include "verify/interval.hpp"

namespace safenn::verify {

/// Linear lower/upper bounding functions of the network *inputs* for one
/// layer's post-activations (one row per neuron, one column per input).
struct SymbolicForms {
  linalg::Matrix lo_coef;   // out x in
  linalg::Vector lo_const;  // out
  linalg::Matrix hi_coef;   // out x in
  linalg::Vector hi_const;  // out
};

/// Result of one symbolic propagation over a box.
struct SymbolicBounds {
  /// Concretized per-layer bounds, element-wise at least as tight as
  /// propagate_bounds on the same box (intersected by construction).
  std::vector<LayerBounds> layers;
  /// Symbolic forms of the output layer's post-activations; these admit
  /// objective-level bounds over sub-boxes without solving an LP.
  SymbolicForms output;
};

/// Reusable propagation engine: the per-layer weight sign-splits W+ / W-
/// are computed once at construction, so the per-box cost in a
/// branch-and-bound hot loop is pure GEMM work. Thread-safe for
/// concurrent propagate() calls (all state is immutable after build).
class SymbolicPropagator {
 public:
  explicit SymbolicPropagator(const nn::Network& net);

  SymbolicBounds propagate(const Box& input_box) const;

  /// Sound bounds on sum_i terms[i].second * out[terms[i].first] over the
  /// box, from the output symbolic forms intersected with the concrete
  /// output intervals. Never looser than linear_output_bounds.
  static Interval objective_interval(const SymbolicBounds& bounds,
                                     const Box& input_box,
                                     const lp::LinearTerms& terms);

 private:
  const nn::Network* net_;
  std::vector<linalg::Matrix> w_pos_;  // max(W, 0) per layer
  std::vector<linalg::Matrix> w_neg_;  // min(W, 0) per layer
};

/// One-shot convenience: symbolic-tightened LayerBounds for the box.
std::vector<LayerBounds> symbolic_bounds(const nn::Network& net,
                                         const Box& input_box);

}  // namespace safenn::verify
