// Verification front-end: the Sec. II(B) "formal analysis" step.
//
// Two engines:
//  - MilpVerifier: sound and complete for ReLU networks (ATVA'17 MILP
//    encoding + branch-and-bound). Computes exact output maxima (Table II
//    column "maximum lateral velocity") and proves/refutes output bounds
//    (Table II's final "prove <= 3 m/s" row), subject to a time limit
//    (the paper's 4x60 instance timed out, too).
//  - IntervalVerifier: sound, incomplete, near-instant static analysis;
//    works for smooth activations as well.
#pragma once

#include <optional>
#include <string>

#include "milp/branch_and_bound.hpp"
#include "nn/network.hpp"
#include "verify/milp_encoder.hpp"
#include "verify/property.hpp"

namespace safenn::verify {

enum class Verdict {
  kProved,     // property holds on the whole region
  kViolated,   // concrete counterexample found
  kUnknown,    // time-out or incompleteness
};

std::string to_string(Verdict v);

struct VerifierOptions {
  double time_limit_seconds = 0.0;  // <= 0: unlimited
  EncoderOptions encoder;
  milp::BnbOptions bnb;  // time limit field is overwritten from above
  /// Warm start: sample this many region points, seed branch-and-bound
  /// with the best concrete network execution (0 disables).
  long warm_start_samples = 200;
  std::uint64_t warm_start_seed = 12345;
  /// Hybrid warm start: additionally run the input-splitting engine for
  /// this many seconds and take its witness when better (0 disables).
  /// Input splitting excels at finding strong incumbents; the MILP then
  /// only has to close the dual bound.
  double warm_start_split_seconds = 0.0;
  /// Worker threads for the input-splitting warm start. Does not affect
  /// results (see InputSplitOptions::num_workers).
  int num_workers = 1;
};

/// Result of maximizing a linear output functional over an input region.
struct MaximizeResult {
  milp::MilpStatus status = milp::MilpStatus::kTimeLimitNoSolution;
  /// Best value found (valid when has_value).
  double max_value = 0.0;
  /// Proven upper bound on the true maximum.
  double upper_bound = 0.0;
  bool has_value = false;
  /// Input witness achieving max_value (when has_value).
  linalg::Vector witness;
  double seconds = 0.0;
  long nodes = 0;
  long lp_iterations = 0;
  std::size_t binaries = 0;
};

/// Result of a prove/refute query for expr <= threshold.
struct ProveResult {
  Verdict verdict = Verdict::kUnknown;
  /// Counterexample input (when kViolated).
  std::optional<linalg::Vector> counterexample;
  /// expr value at the counterexample, network-evaluated.
  double violation_value = 0.0;
  double seconds = 0.0;
  long nodes = 0;
};

/// Complete MILP-based verifier for piecewise-linear networks.
class MilpVerifier {
 public:
  explicit MilpVerifier(VerifierOptions options = {});

  /// Exact maximum of expr(N(x)) over x in region (Table II query).
  MaximizeResult maximize(const nn::Network& net, const InputRegion& region,
                          const OutputExpr& expr) const;

  /// Decides "forall x in region: expr(N(x)) <= threshold".
  ProveResult prove(const nn::Network& net, const SafetyProperty& property) const;

 private:
  VerifierOptions options_;
};

/// Incomplete static-analysis verifier via interval propagation.
class IntervalVerifier {
 public:
  /// Sound overestimate of the maximum of expr over the region's box
  /// (side constraints are ignored — still sound).
  double upper_bound(const nn::Network& net, const InputRegion& region,
                     const OutputExpr& expr) const;

  /// kProved when the interval bound already clears the threshold,
  /// else kUnknown (never kViolated: the analysis cannot witness).
  Verdict prove(const nn::Network& net, const SafetyProperty& property) const;
};

}  // namespace safenn::verify
