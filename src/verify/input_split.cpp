#include "verify/input_split.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <optional>
#include <queue>
#include <utility>
#include <vector>

#include "common/cancel.hpp"
#include "common/error.hpp"
#include "common/stopwatch.hpp"
#include "common/task_pool.hpp"
#include "lp/simplex.hpp"
#include "verify/interval.hpp"
#include "verify/symbolic.hpp"

namespace safenn::verify {
namespace {

/// Base LP shared by every box of one maximize() call: the input
/// variables (bounds overwritten per box) plus the region's side
/// constraints. The rows and the objective structure are identical for
/// every box, so they are built exactly once per call instead of per box.
lp::Problem build_base_lp(const nn::Network& net, const InputRegion& region) {
  lp::Problem p;
  p.set_maximize(true);
  for (std::size_t i = 0; i < net.input_size(); ++i) {
    p.add_variable(region.box[i].lo, region.box[i].hi);
  }
  for (const InputConstraint& c : region.constraints) {
    lp::LinearTerms terms;
    terms.reserve(c.terms.size());
    for (const auto& [idx, coef] : c.terms) {
      require(idx >= 0 && static_cast<std::size_t>(idx) < net.input_size(),
              "InputSplitVerifier: side-constraint index out of range");
      terms.emplace_back(idx, coef);  // input variables are 0..n-1
    }
    p.add_constraint(std::move(terms), c.relation, c.rhs);
  }
  return p;
}

/// Triangle-relaxation LP over one box: copies the base LP, narrows the
/// input-variable bounds to the box and appends the per-layer relaxation
/// rows plus the expr objective.
lp::Problem build_triangle_lp(const nn::Network& net, const Box& box,
                              const lp::Problem& base,
                              const std::vector<LayerBounds>& bounds,
                              const OutputExpr& expr) {
  lp::Problem p = base;
  std::vector<int> prev;
  prev.reserve(net.input_size());
  for (std::size_t i = 0; i < net.input_size(); ++i) {
    const int v = static_cast<int>(i);
    p.variable(v).lower = box[i].lo;
    p.variable(v).upper = box[i].hi;
    prev.push_back(v);
  }

  for (std::size_t li = 0; li < net.num_layers(); ++li) {
    const nn::DenseLayer& layer = net.layer(li);
    std::vector<int> cur(layer.out_size(), -1);
    for (std::size_t r = 0; r < layer.out_size(); ++r) {
      const Interval pre = bounds[li].pre[r];
      lp::LinearTerms z_terms;
      for (std::size_t c = 0; c < layer.in_size(); ++c) {
        const double w = layer.weights()(r, c);
        if (w != 0.0) z_terms.emplace_back(prev[c], w);
      }
      const double b = layer.biases()[r];
      if (layer.activation() == nn::Activation::kIdentity) {
        const int y = p.add_variable(pre.lo, pre.hi);
        lp::LinearTerms eq{{y, 1.0}};
        for (const auto& [var, coef] : z_terms) eq.emplace_back(var, -coef);
        p.add_constraint(std::move(eq), lp::Relation::kEq, b);
        cur[r] = y;
        continue;
      }
      if (pre.hi <= 0.0) {
        cur[r] = p.add_variable(0.0, 0.0);
        continue;
      }
      if (pre.lo >= 0.0) {
        const int y = p.add_variable(pre.lo, pre.hi);
        lp::LinearTerms eq{{y, 1.0}};
        for (const auto& [var, coef] : z_terms) eq.emplace_back(var, -coef);
        p.add_constraint(std::move(eq), lp::Relation::kEq, b);
        cur[r] = y;
        continue;
      }
      // Unstable: y >= z, y >= 0 (bound), y <= hi (z - lo) / (hi - lo).
      const int y = p.add_variable(0.0, pre.hi);
      lp::LinearTerms ge{{y, 1.0}};
      for (const auto& [var, coef] : z_terms) ge.emplace_back(var, -coef);
      p.add_constraint(std::move(ge), lp::Relation::kGe, b);
      const double slope = pre.hi / (pre.hi - pre.lo);
      lp::LinearTerms le{{y, 1.0}};
      for (const auto& [var, coef] : z_terms) {
        le.emplace_back(var, -slope * coef);
      }
      p.add_constraint(std::move(le), lp::Relation::kLe,
                       slope * (b - pre.lo));
      cur[r] = y;
    }
    prev = cur;
  }
  // Objective over the output-layer variables (they are the last widths).
  for (const auto& [idx, coef] : expr.terms) {
    p.set_objective(prev[static_cast<std::size_t>(idx)], coef);
  }
  return p;
}

struct BoxNode {
  Box box;
  double bound;  // parent/own bound (upper)
  long id;
};

/// Everything one worker computes about one box. Pure function of the
/// box and the round-start incumbent — no shared state is touched until
/// the sequential merge, which is what makes the trajectory independent
/// of the worker count.
struct BoxOutcome {
  bool deadline_hit = false;
  bool pruned_no_lp = false;  // symbolic bound alone discarded the box
  bool infeasible = false;
  long lp_iterations = 0;
  double box_bound = 0.0;
  bool has_xhat = false;
  bool xhat_in_region = false;
  linalg::Vector xhat;
  double xhat_val = 0.0;
  bool has_probe = false;
  bool probe_in_region = false;
  linalg::Vector probe;
  double probe_val = 0.0;
  bool split = false;
  std::size_t split_dim = 0;
  double split_mid = 0.0;
};

}  // namespace

InputSplitVerifier::InputSplitVerifier(InputSplitOptions options)
    : options_(options) {}

InputSplitResult InputSplitVerifier::maximize(const nn::Network& net,
                                              const InputRegion& region,
                                              const OutputExpr& expr) const {
  require(region.dims() == net.input_size(),
          "InputSplitVerifier: region dimension mismatch");
  for (std::size_t li = 0; li < net.num_layers(); ++li) {
    require(nn::is_piecewise_linear(net.layer(li).activation()),
            "InputSplitVerifier: only ReLU/identity networks supported");
  }
  for (const auto& [idx, coef] : expr.terms) {
    (void)coef;
    require(idx >= 0 && static_cast<std::size_t>(idx) < net.output_size(),
            "InputSplitVerifier: output index out of range");
  }

  Stopwatch clock;
  // Deadline + portfolio-cancel, latched once per round (stop_now) on the
  // merge thread; workers use the thread-safe check_now() before a box.
  CancelToken stop(options_.time_limit_seconds, options_.cancel);
  lp::SimplexSolver solver;
  const double gap_tol = options_.gap_tol;
  const int chunk = std::max(1, options_.chunk_size);
  TaskPool pool(static_cast<std::size_t>(std::max(1, options_.num_workers)));
  std::optional<SymbolicPropagator> local_symbolic;
  const SymbolicPropagator* symbolic =
      options_.use_symbolic ? options_.propagator : nullptr;
  if (options_.use_symbolic && symbolic == nullptr) {
    local_symbolic.emplace(net);
    symbolic = &*local_symbolic;
  }
  const lp::Problem base_lp = build_base_lp(net, region);

  InputSplitResult result;
  // Best peer-achieved value (racing portfolio); refreshed once per round
  // so every pruning decision inside a round sees the same reference.
  double external = -std::numeric_limits<double>::infinity();
  auto refresh_external = [&] {
    if (!options_.external_incumbent) return;
    const double v = options_.external_incumbent();
    if (std::isfinite(v) && v > external) external = v;
  };
  // Pruning reference: the best value proven achievable in-region, here
  // or by a peer. Discarding a box whose bound cannot beat it keeps the
  // final upper bound sound because the reference itself is achievable.
  auto prune_has = [&] { return result.has_value || std::isfinite(external); };
  auto prune_best = [&] {
    return result.has_value ? std::max(result.max_value, external) : external;
  };
  auto cmp = [](const BoxNode& a, const BoxNode& b) {
    if (a.bound != b.bound) return a.bound < b.bound;
    return a.id < b.id;
  };
  std::priority_queue<BoxNode, std::vector<BoxNode>, decltype(cmp)> open(cmp);
  long next_id = 0;
  open.push(BoxNode{region.box, std::numeric_limits<double>::infinity(),
                    next_id++});

  auto consider = [&](linalg::Vector& x, double val) {
    if (!result.has_value || val > result.max_value) {
      result.has_value = true;
      result.max_value = val;
      result.witness = x;
      if (options_.on_incumbent) options_.on_incumbent(val, result.witness);
    }
  };

  /// Pure per-box evaluation; reads only round-start state.
  auto evaluate_box = [&](const BoxNode& node, BoxOutcome& o, bool round_has,
                          double round_best) {
    if (stop.check_now()) {
      o.deadline_hit = true;
      return;
    }
    // Bounds for this box. Symbolic tightening yields (a) fewer unstable
    // neurons, so smaller and tighter triangle LPs, and (b) an
    // objective-level upper bound that can discard the box before any LP
    // exists at all.
    std::vector<LayerBounds> bounds;
    o.box_bound = node.bound;
    if (symbolic) {
      SymbolicBounds sb = symbolic->propagate(node.box);
      o.box_bound = std::min(
          o.box_bound,
          SymbolicPropagator::objective_interval(sb, node.box, expr.terms).hi);
      bounds = std::move(sb.layers);
      if (round_has && o.box_bound <= round_best + gap_tol) {
        o.pruned_no_lp = true;
        return;
      }
    } else {
      bounds = propagate_bounds(net, node.box);
    }

    const lp::Problem relax =
        build_triangle_lp(net, node.box, base_lp, bounds, expr);
    const lp::Solution s = solver.solve(relax);
    o.lp_iterations = s.iterations;
    if (s.status == lp::SolveStatus::kInfeasible) {
      o.infeasible = true;
      return;
    }
    // Non-optimal, non-infeasible = numerical trouble: keep the tightest
    // bound known so far and split anyway.
    if (s.status == lp::SolveStatus::kOptimal) {
      o.box_bound = std::min(o.box_bound, s.objective);
      linalg::Vector x_hat(net.input_size());
      for (std::size_t d = 0; d < x_hat.size(); ++d) {
        x_hat[d] = std::clamp(s.values[d], node.box[d].lo, node.box[d].hi);
      }
      o.xhat_val = expr.evaluate(net.forward(x_hat));
      o.xhat_in_region = region.contains(x_hat);
      o.xhat = std::move(x_hat);
      o.has_xhat = true;
    }
    // Prune against the round-start incumbent improved by this box's own
    // candidate (both are task-local, so this stays deterministic).
    double best = round_has ? round_best
                            : -std::numeric_limits<double>::infinity();
    if (o.xhat_in_region) best = std::max(best, o.xhat_val);
    if (std::isfinite(best) && o.box_bound <= best + gap_tol) return;

    // Split on the input dimension with the largest smear
    // (width x |d expr / d x_i| at the box midpoint).
    linalg::Vector probe(net.input_size());
    for (std::size_t i = 0; i < probe.size(); ++i) {
      probe[i] = 0.5 * (node.box[i].lo + node.box[i].hi);
    }
    o.probe_val = expr.evaluate(net.forward(probe));
    o.probe_in_region = region.contains(probe);
    linalg::Vector grad(net.input_size());
    for (const auto& [idx, coef] : expr.terms) {
      grad.add_scaled(coef,
                      net.input_gradient(probe, static_cast<std::size_t>(idx)));
    }
    o.probe = std::move(probe);
    o.has_probe = true;
    double best_smear = -1.0;
    for (std::size_t i = 0; i < node.box.size(); ++i) {
      const double width = node.box[i].width();
      if (width <= 1e-9) continue;
      const double smear = width * (std::abs(grad[i]) + 1e-6);
      if (smear > best_smear) {
        best_smear = smear;
        o.split_dim = i;
      }
    }
    if (best_smear < 0.0) return;  // point box: value already considered
    o.split = true;
    o.split_mid =
        0.5 * (node.box[o.split_dim].lo + node.box[o.split_dim].hi);
  };

  bool timed_out = false;
  double global_bound = std::numeric_limits<double>::infinity();
  std::vector<BoxNode> batch;
  std::vector<BoxOutcome> outcomes;
  std::vector<std::function<void()>> tasks;

  while (!open.empty()) {
    refresh_external();
    global_bound = open.top().bound;
    if (prune_has() && global_bound <= prune_best() + gap_tol) {
      global_bound = prune_best();
      break;  // nothing left can improve beyond the tolerance
    }
    // Deadline/budget/cancel checks once per round (= up to chunk
    // boxes), not per box; workers re-check before starting expensive
    // work when a limit is actually set.
    if (stop.stop_now() ||
        (options_.max_boxes > 0 &&
         result.boxes_explored >= options_.max_boxes)) {
      timed_out = true;
      break;
    }

    // Pop this round's chunk. Everything below the first prunable node
    // is prunable too (best-first order), so stop there.
    batch.clear();
    while (!open.empty() && static_cast<int>(batch.size()) < chunk) {
      if (prune_has() && open.top().bound <= prune_best() + gap_tol) {
        break;
      }
      batch.push_back(open.top());
      open.pop();
    }

    const bool round_has = prune_has();
    const double round_best = prune_best();
    outcomes.assign(batch.size(), BoxOutcome{});
    tasks.clear();
    tasks.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      tasks.push_back([&, i] {
        evaluate_box(batch[i], outcomes[i], round_has, round_best);
      });
    }
    pool.run(tasks);

    // Merge in pop order — the only place shared state is touched, so
    // the trajectory is identical for any worker count.
    for (std::size_t i = 0; i < batch.size(); ++i) {
      BoxNode& node = batch[i];
      BoxOutcome& o = outcomes[i];
      if (o.deadline_hit) {
        // Unprocessed: return the box so the remaining queue still
        // covers the whole unresolved region (keeps upper_bound sound).
        timed_out = true;
        open.push(std::move(node));
        continue;
      }
      ++result.boxes_explored;
      if (o.pruned_no_lp) {
        ++result.boxes_pruned_symbolic;
        continue;
      }
      result.lp_iterations += o.lp_iterations;
      if (o.infeasible) continue;
      if (o.has_xhat && o.xhat_in_region) consider(o.xhat, o.xhat_val);
      if (prune_has() && o.box_bound <= prune_best() + gap_tol) {
        continue;  // pruned against the live (deterministic) incumbent
      }
      if (o.has_probe && o.probe_in_region) consider(o.probe, o.probe_val);
      if (!o.split) continue;  // point box
      BoxNode left{node.box, o.box_bound, next_id++};
      left.box[o.split_dim].hi = o.split_mid;
      BoxNode right{std::move(node.box), o.box_bound, next_id++};
      right.box[o.split_dim].lo = o.split_mid;
      open.push(std::move(left));
      open.push(std::move(right));
    }
    if (timed_out) break;
    // Early value-exit, checked only at the round boundary so the whole
    // batch is merged first and the remaining queue still covers every
    // unresolved box (which is what keeps upper_bound sound below).
    if (result.has_value && result.max_value > options_.stop_when_above) {
      timed_out = true;
      break;
    }
  }

  result.seconds = clock.seconds();
  if (timed_out) {
    // Latch the cause if a worker saw the flag before the round check.
    stop.stop_now();
    result.cancelled = stop.cause() == StopCause::kCancelled;
    result.exact = false;
    result.upper_bound = open.empty() ? global_bound : open.top().bound;
    if (!std::isfinite(result.upper_bound)) {
      result.upper_bound = global_bound;
    }
    return result;
  }
  if (!prune_has()) {
    // Queue exhausted with every box infeasible: the region is empty.
    result.exact = true;
    result.upper_bound = -std::numeric_limits<double>::infinity();
    return result;
  }
  result.exact = true;
  // prune_best() (not max_value) so a run closed against a peer's
  // external incumbent still reports a bound above every achievable
  // value, including the peer's.
  result.upper_bound = std::min(global_bound, prune_best() + gap_tol);
  return result;
}

Verdict InputSplitVerifier::prove(const nn::Network& net,
                                  const SafetyProperty& property,
                                  InputSplitResult* detail) const {
  const InputSplitResult r =
      maximize(net, property.region, property.expr);
  if (detail) *detail = r;
  if (r.has_value && r.max_value > property.threshold) {
    return Verdict::kViolated;
  }
  if (r.exact || r.upper_bound <= property.threshold) {
    return r.upper_bound <= property.threshold + 1e-9 ? Verdict::kProved
                                                      : Verdict::kUnknown;
  }
  return Verdict::kUnknown;
}

}  // namespace safenn::verify
