#include "verify/input_split.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "common/error.hpp"
#include "common/stopwatch.hpp"
#include "lp/simplex.hpp"
#include "verify/interval.hpp"
#include "verify/verifier.hpp"

namespace safenn::verify {
namespace {

/// Triangle-relaxation LP over one box: returns the LP, with the expr
/// objective already installed (maximize) and the input variables first.
lp::Problem build_triangle_lp(const nn::Network& net, const Box& box,
                              const std::vector<InputConstraint>& side,
                              const std::vector<LayerBounds>& bounds,
                              const OutputExpr& expr) {
  lp::Problem p;
  p.set_maximize(true);
  std::vector<int> prev;
  prev.reserve(net.input_size());
  for (std::size_t i = 0; i < net.input_size(); ++i) {
    prev.push_back(p.add_variable(box[i].lo, box[i].hi));
  }
  for (const InputConstraint& c : side) {
    lp::LinearTerms terms;
    for (const auto& [idx, coef] : c.terms) {
      terms.emplace_back(prev[static_cast<std::size_t>(idx)], coef);
    }
    p.add_constraint(std::move(terms), c.relation, c.rhs);
  }

  for (std::size_t li = 0; li < net.num_layers(); ++li) {
    const nn::DenseLayer& layer = net.layer(li);
    std::vector<int> cur(layer.out_size(), -1);
    for (std::size_t r = 0; r < layer.out_size(); ++r) {
      const Interval pre = bounds[li].pre[r];
      lp::LinearTerms z_terms;
      for (std::size_t c = 0; c < layer.in_size(); ++c) {
        const double w = layer.weights()(r, c);
        if (w != 0.0) z_terms.emplace_back(prev[c], w);
      }
      const double b = layer.biases()[r];
      if (layer.activation() == nn::Activation::kIdentity) {
        const int y = p.add_variable(pre.lo, pre.hi);
        lp::LinearTerms eq{{y, 1.0}};
        for (const auto& [var, coef] : z_terms) eq.emplace_back(var, -coef);
        p.add_constraint(std::move(eq), lp::Relation::kEq, b);
        cur[r] = y;
        continue;
      }
      if (pre.hi <= 0.0) {
        cur[r] = p.add_variable(0.0, 0.0);
        continue;
      }
      if (pre.lo >= 0.0) {
        const int y = p.add_variable(pre.lo, pre.hi);
        lp::LinearTerms eq{{y, 1.0}};
        for (const auto& [var, coef] : z_terms) eq.emplace_back(var, -coef);
        p.add_constraint(std::move(eq), lp::Relation::kEq, b);
        cur[r] = y;
        continue;
      }
      // Unstable: y >= z, y >= 0 (bound), y <= hi (z - lo) / (hi - lo).
      const int y = p.add_variable(0.0, pre.hi);
      lp::LinearTerms ge{{y, 1.0}};
      for (const auto& [var, coef] : z_terms) ge.emplace_back(var, -coef);
      p.add_constraint(std::move(ge), lp::Relation::kGe, b);
      const double slope = pre.hi / (pre.hi - pre.lo);
      lp::LinearTerms le{{y, 1.0}};
      for (const auto& [var, coef] : z_terms) {
        le.emplace_back(var, -slope * coef);
      }
      p.add_constraint(std::move(le), lp::Relation::kLe,
                       slope * (b - pre.lo));
      cur[r] = y;
    }
    prev = cur;
  }
  // Objective over the output-layer variables (they are the last widths).
  for (const auto& [idx, coef] : expr.terms) {
    require(idx >= 0 && static_cast<std::size_t>(idx) < prev.size(),
            "build_triangle_lp: output index out of range");
    p.set_objective(prev[static_cast<std::size_t>(idx)], coef);
  }
  return p;
}

struct BoxNode {
  Box box;
  double bound;  // parent/own LP bound (upper)
  long id;
};

}  // namespace

InputSplitVerifier::InputSplitVerifier(InputSplitOptions options)
    : options_(options) {}

InputSplitResult InputSplitVerifier::maximize(const nn::Network& net,
                                              const InputRegion& region,
                                              const OutputExpr& expr) const {
  require(region.dims() == net.input_size(),
          "InputSplitVerifier: region dimension mismatch");
  for (std::size_t li = 0; li < net.num_layers(); ++li) {
    require(nn::is_piecewise_linear(net.layer(li).activation()),
            "InputSplitVerifier: only ReLU/identity networks supported");
  }

  Stopwatch clock;
  Deadline deadline(options_.time_limit_seconds);
  lp::SimplexSolver solver;

  InputSplitResult result;
  auto cmp = [](const BoxNode& a, const BoxNode& b) {
    if (a.bound != b.bound) return a.bound < b.bound;
    return a.id < b.id;
  };
  std::priority_queue<BoxNode, std::vector<BoxNode>, decltype(cmp)> open(cmp);
  long next_id = 0;
  open.push(BoxNode{region.box, std::numeric_limits<double>::infinity(),
                    next_id++});

  auto consider_point = [&](const linalg::Vector& x) {
    if (!region.contains(x)) return;
    const double val = expr.evaluate(net.forward(x));
    if (!result.has_value || val > result.max_value) {
      result.has_value = true;
      result.max_value = val;
      result.witness = x;
    }
  };

  bool timed_out = false;
  double global_bound = std::numeric_limits<double>::infinity();
  while (!open.empty()) {
    if (deadline.expired() ||
        (options_.max_boxes > 0 && result.boxes_explored >= options_.max_boxes)) {
      timed_out = true;
      break;
    }
    BoxNode node = open.top();
    open.pop();
    global_bound = node.bound;
    if (result.has_value &&
        node.bound <= result.max_value + options_.gap_tol) {
      global_bound = result.max_value;
      break;  // nothing left can improve beyond the tolerance
    }
    ++result.boxes_explored;

    // Fresh bounds for this box; the LP bound prunes, its argmax seeds
    // the incumbent.
    const std::vector<LayerBounds> bounds = propagate_bounds(net, node.box);
    const lp::Problem relax = build_triangle_lp(
        net, node.box, region.constraints, bounds, expr);
    const lp::Solution s = solver.solve(relax);
    result.lp_iterations += s.iterations;
    if (s.status == lp::SolveStatus::kInfeasible) continue;
    if (s.status != lp::SolveStatus::kOptimal) {
      // Numerical trouble: keep the parent's bound, split anyway.
    }
    const double box_bound =
        s.status == lp::SolveStatus::kOptimal
            ? std::min(node.bound, s.objective)
            : node.bound;
    // Incumbents: LP's input point and box midpoint.
    if (s.status == lp::SolveStatus::kOptimal) {
      linalg::Vector x_hat(net.input_size());
      for (std::size_t i = 0; i < x_hat.size(); ++i) {
        x_hat[i] = std::clamp(s.values[i], node.box[i].lo, node.box[i].hi);
      }
      consider_point(x_hat);
    }
    if (result.has_value &&
        box_bound <= result.max_value + options_.gap_tol) {
      continue;  // pruned
    }

    // Split on the input dimension with the largest smear
    // (width x |d expr / d x_i| at the incumbent-ish point).
    linalg::Vector probe(net.input_size());
    for (std::size_t i = 0; i < probe.size(); ++i) {
      probe[i] = 0.5 * (node.box[i].lo + node.box[i].hi);
    }
    consider_point(probe);
    linalg::Vector grad(net.input_size());
    {
      // Gradient of expr at probe: sum coef * d out_idx / d x.
      for (const auto& [idx, coef] : expr.terms) {
        grad.add_scaled(coef, net.input_gradient(
                                  probe, static_cast<std::size_t>(idx)));
      }
    }
    std::size_t split_dim = 0;
    double best_smear = -1.0;
    for (std::size_t i = 0; i < node.box.size(); ++i) {
      const double width = node.box[i].width();
      if (width <= 1e-9) continue;
      const double smear = width * (std::abs(grad[i]) + 1e-6);
      if (smear > best_smear) {
        best_smear = smear;
        split_dim = i;
      }
    }
    if (best_smear < 0.0) {
      // Box is a point: its value is already considered; bound is exact.
      continue;
    }
    const double mid =
        0.5 * (node.box[split_dim].lo + node.box[split_dim].hi);
    BoxNode left{node.box, box_bound, next_id++};
    left.box[split_dim].hi = mid;
    BoxNode right{node.box, box_bound, next_id++};
    right.box[split_dim].lo = mid;
    open.push(std::move(left));
    open.push(std::move(right));
  }

  result.seconds = clock.seconds();
  if (timed_out) {
    result.exact = false;
    result.upper_bound = open.empty() ? global_bound : open.top().bound;
    if (!std::isfinite(result.upper_bound)) {
      result.upper_bound = global_bound;
    }
    return result;
  }
  if (!result.has_value) {
    // Queue exhausted with every box infeasible: the region is empty.
    result.exact = true;
    result.upper_bound = -std::numeric_limits<double>::infinity();
    return result;
  }
  result.exact = true;
  result.upper_bound =
      std::min(global_bound, result.max_value + options_.gap_tol);
  return result;
}

Verdict InputSplitVerifier::prove(const nn::Network& net,
                                  const SafetyProperty& property,
                                  InputSplitResult* detail) const {
  const InputSplitResult r =
      maximize(net, property.region, property.expr);
  if (detail) *detail = r;
  if (r.has_value && r.max_value > property.threshold) {
    return Verdict::kViolated;
  }
  if (r.exact || r.upper_bound <= property.threshold) {
    return r.upper_bound <= property.threshold + 1e-9 ? Verdict::kProved
                                                      : Verdict::kUnknown;
  }
  return Verdict::kUnknown;
}

}  // namespace safenn::verify
