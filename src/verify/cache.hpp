// Content-addressed verification cache.
//
// Certification is a continuous process (Kwiatkowska & Zhang's survey,
// PAPERS.md): networks are retrained and every retrain re-raises the
// question "is the deployed artifact still the verified one?". The cache
// makes re-verification incremental: a completed (network, property)
// query is stored under a key derived from the *content* of both sides —
// the serialized-network checksum from nn/serialize v2 and a canonical
// rendering of the property — so an unchanged pair is answered from disk
// bit-for-bit, while any retrain (different payload => different
// checksum) or property edit misses and re-pays only for what changed.
//
// Storage discipline mirrors the model registry: one plain-text file per
// entry, payload pinned by a trailing FNV-1a64 checksum that is validated
// *before* a single field is parsed, typed CacheError on every rejection
// reason, and quarantine (rename, never delete) for corrupt files so a
// damaged entry can neither be served nor silently re-poisoned.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "nn/network.hpp"
#include "verify/property.hpp"
#include "verify/verifier.hpp"

namespace safenn::verify {

/// Typed cache failure, following the registry error pattern: the reason
/// an entry was refused is audit evidence, not just a boolean miss.
class CacheError : public Error {
 public:
  enum class Kind {
    kNotFound,          // no entry file for that key
    kBadEntry,          // file exists but is not a valid cache entry
    kChecksumMismatch,  // payload bytes do not hash to the recorded sum
    kIo,                // filesystem failure (open/create/rename)
  };

  CacheError(Kind kind, const std::string& what) : Error(what), kind_(kind) {}

  Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

inline const char* to_string(CacheError::Kind kind) {
  switch (kind) {
    case CacheError::Kind::kNotFound: return "not-found";
    case CacheError::Kind::kBadEntry: return "bad-entry";
    case CacheError::Kind::kChecksumMismatch: return "checksum-mismatch";
    case CacheError::Kind::kIo: return "io";
  }
  return "?";
}

/// Canonical text of a property: box intervals, side constraints, expr
/// terms, and the threshold, every double rendered as a hexfloat so the
/// text is an exact (bitwise) function of the semantics. The property
/// *name* is deliberately excluded — renaming a property does not change
/// what was proved, so it must not invalidate the cache.
std::string canonical_property_text(const SafetyProperty& property);

/// Cache key: both content hashes plus their combination (the filename).
struct CacheKey {
  std::uint64_t network = 0;   // nn::network_checksum(net)
  std::uint64_t property = 0;  // fnv1a64(canonical_property_text)
  std::uint64_t combined = 0;  // fnv1a64 over both hex renderings

  std::string hex() const { return hex64(combined); }
};

CacheKey make_cache_key(const nn::Network& net,
                        const SafetyProperty& property);

/// One cached query result. Doubles round-trip bitwise (hexfloat), so a
/// cache hit is indistinguishable from the fresh run that produced it.
/// The witness input is not stored: a kViolated entry records that a
/// witness exists (has_value) and its value, and a caller needing the
/// concrete input re-runs the query.
struct CachedVerdict {
  Verdict verdict = Verdict::kUnknown;
  double upper_bound = 0.0;  // tightest proven bound on max expr
  bool has_value = false;    // a concrete in-region value was achieved
  double max_value = 0.0;    // that value (valid when has_value)
  std::string engine;        // producing engine (portfolio winner)
  double seconds = 0.0;      // wall-clock of the original fresh run
};

struct CacheStats {
  long hits = 0;
  long misses = 0;
  long stores = 0;
  long rejected = 0;  // corrupt entries quarantined by lookup()
};

/// Directory-backed cache: one `<hex16>.vc` file per key. Constructing
/// creates the directory. Not internally synchronized — callers serialize
/// access (the portfolio consults it once per query, outside the race).
class VerificationCache {
 public:
  explicit VerificationCache(std::string directory);

  const std::string& directory() const { return dir_; }
  std::string entry_path(const CacheKey& key) const;

  /// Soft read: nullopt on miss. A corrupt or truncated entry is
  /// quarantined (renamed `<name>.quarantined`, preserving the evidence),
  /// counted in stats().rejected, and reported as a miss — a damaged
  /// entry must never decide a verification query.
  std::optional<CachedVerdict> lookup(const CacheKey& key);

  /// Strict read: throws typed CacheError (kNotFound / kBadEntry /
  /// kChecksumMismatch / kIo) instead of quarantining.
  CachedVerdict load(const CacheKey& key) const;

  /// Atomic write (tmp + rename): a crash mid-store can leave a stray
  /// tmp file but never a torn entry.
  void store(const CacheKey& key, const CachedVerdict& value);

  const CacheStats& stats() const { return stats_; }

 private:
  std::string dir_;
  CacheStats stats_;
};

}  // namespace safenn::verify
