#include "coverage/mcdc.hpp"

#include "common/error.hpp"

namespace safenn::coverage {

McdcAnalysis analyze_mcdc(const nn::Network& net) {
  McdcAnalysis a;
  for (std::size_t li = 0; li < net.num_layers(); ++li) {
    a.decisions += static_cast<std::size_t>(
                       nn::branch_count(net.layer(li).activation())) *
                   net.layer(li).out_size();
  }
  a.log2_branch_combinations = static_cast<double>(a.decisions);
  a.trivially_satisfiable = (a.decisions == 0);
  // For n independent single-condition decisions, MC/DC needs each
  // condition observed in both phases; n+1 tests is the classical lower
  // bound shape, and 1 suffices when there are no decisions at all.
  a.min_tests_lower_bound = a.trivially_satisfiable ? 1 : a.decisions + 1;
  return a;
}

CoverageCampaignResult run_coverage_campaign(const nn::Network& net,
                                             const verify::Box& box,
                                             std::size_t max_tests,
                                             Rng& rng) {
  require(box.size() == net.input_size(),
          "run_coverage_campaign: box dimension mismatch");
  CoverageTracker tracker(net);
  const McdcAnalysis mcdc = analyze_mcdc(net);

  CoverageCampaignResult result;
  result.log2_total_patterns = mcdc.log2_branch_combinations;

  double last_coverage = -1.0;
  std::size_t stall = 0;
  for (std::size_t t = 0; t < max_tests; ++t) {
    linalg::Vector x(net.input_size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] = rng.uniform(box[i].lo, box[i].hi);
    }
    tracker.record_input(net, x);
    ++result.tests_generated;

    if (t % 64 == 63) {
      const double cov = tracker.both_phase_coverage();
      if (cov >= 1.0) break;
      if (cov <= last_coverage) {
        if (++stall >= 8) break;  // coverage has plateaued
      } else {
        stall = 0;
      }
      last_coverage = cov;
    }
  }

  result.both_phase_coverage = tracker.both_phase_coverage();
  result.distinct_patterns = tracker.distinct_patterns();
  for (const auto& o : tracker.observations()) {
    if (!o.both_phases()) ++result.uncovered_neurons;
  }
  return result;
}

}  // namespace safenn::coverage
