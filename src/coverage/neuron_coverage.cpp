#include "coverage/neuron_coverage.hpp"

#include "common/error.hpp"

namespace safenn::coverage {

std::vector<bool> activation_signature(const nn::Network& net,
                                       const linalg::Vector& x) {
  const nn::ForwardTrace trace = net.forward_trace(x);
  std::vector<bool> signature;
  for (std::size_t li = 0; li < net.num_layers(); ++li) {
    if (net.layer(li).activation() != nn::Activation::kRelu) continue;
    for (std::size_t r = 0; r < net.layer(li).out_size(); ++r) {
      signature.push_back(trace.pre_activations[li][r] > 0.0);
    }
  }
  return signature;
}

CoverageTracker::CoverageTracker(const nn::Network& net) {
  for (std::size_t li = 0; li < net.num_layers(); ++li) {
    if (net.layer(li).activation() != nn::Activation::kRelu) continue;
    for (std::size_t r = 0; r < net.layer(li).out_size(); ++r) {
      relu_index_.emplace_back(li, r);
    }
  }
  observations_.assign(relu_index_.size(), NeuronObservation{});
}

void CoverageTracker::record(const nn::ForwardTrace& trace) {
  require(!relu_index_.empty() || observations_.empty(),
          "CoverageTracker::record: tracker not initialized");
  std::vector<bool> signature;
  signature.reserve(relu_index_.size());
  for (std::size_t k = 0; k < relu_index_.size(); ++k) {
    const auto [li, r] = relu_index_[k];
    require(li < trace.pre_activations.size() &&
                r < trace.pre_activations[li].size(),
            "CoverageTracker::record: trace does not match network");
    const bool active = trace.pre_activations[li][r] > 0.0;
    signature.push_back(active);
    if (active) {
      observations_[k].seen_active = true;
    } else {
      observations_[k].seen_inactive = true;
    }
  }
  patterns_.insert(std::move(signature));
  ++tests_;
}

void CoverageTracker::record_input(const nn::Network& net,
                                   const linalg::Vector& x) {
  record(net.forward_trace(x));
}

double CoverageTracker::activation_coverage() const {
  if (observations_.empty()) return 1.0;
  std::size_t hit = 0;
  for (const auto& o : observations_) {
    if (o.seen_active) ++hit;
  }
  return static_cast<double>(hit) / static_cast<double>(observations_.size());
}

double CoverageTracker::both_phase_coverage() const {
  if (observations_.empty()) return 1.0;
  std::size_t hit = 0;
  for (const auto& o : observations_) {
    if (o.both_phases()) ++hit;
  }
  return static_cast<double>(hit) / static_cast<double>(observations_.size());
}

void CoverageTracker::reset() {
  observations_.assign(relu_index_.size(), NeuronObservation{});
  patterns_.clear();
  tests_ = 0;
}

}  // namespace safenn::coverage
