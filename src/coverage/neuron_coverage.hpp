// Neuron-level structural coverage of a test suite.
//
// Supports the paper's Sec. II argument that classical coverage-based
// testing transfers poorly to ANNs: for ReLU networks each neuron is an
// if-then-else, so we can measure which neurons a test suite has driven
// into each phase — and observe how the number of distinct activation
// patterns explodes while per-neuron coverage saturates.
#pragma once

#include <cstddef>
#include <set>
#include <vector>

#include "nn/network.hpp"

namespace safenn::coverage {

/// Phase observations for one ReLU neuron across a test suite.
struct NeuronObservation {
  bool seen_active = false;    // pre-activation > 0 observed
  bool seen_inactive = false;  // pre-activation <= 0 observed

  bool both_phases() const { return seen_active && seen_inactive; }
};

/// The ReLU activation pattern of one input: one bit per ReLU neuron.
std::vector<bool> activation_signature(const nn::Network& net,
                                       const linalg::Vector& x);

/// Accumulates coverage over recorded executions.
class CoverageTracker {
 public:
  explicit CoverageTracker(const nn::Network& net);

  /// Records one execution.
  void record(const nn::ForwardTrace& trace);
  void record_input(const nn::Network& net, const linalg::Vector& x);

  std::size_t num_relu_neurons() const { return observations_.size(); }
  std::size_t tests_recorded() const { return tests_; }

  /// Fraction of ReLU neurons observed active at least once.
  double activation_coverage() const;

  /// Fraction of ReLU neurons observed in BOTH phases — the MC/DC
  /// satisfaction criterion for single-condition decisions.
  double both_phase_coverage() const;

  /// Number of distinct whole-network activation patterns observed.
  std::size_t distinct_patterns() const { return patterns_.size(); }

  const std::vector<NeuronObservation>& observations() const {
    return observations_;
  }

  void reset();

 private:
  std::vector<std::pair<std::size_t, std::size_t>> relu_index_;  // layer,row
  std::vector<NeuronObservation> observations_;
  std::set<std::vector<bool>> patterns_;
  std::size_t tests_ = 0;
};

}  // namespace safenn::coverage
