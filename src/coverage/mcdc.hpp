// MC/DC accounting for neural networks (paper Table I / Sec. II).
//
// The paper's observation, made computable:
//  (i)  With smooth activations (atan) a neuron has no if-then-else, so
//       MC/DC over the implementation is satisfied by a single test case.
//  (ii) With ReLU every neuron is a decision; the number of structural
//       branch combinations is 2^(#neurons), and achieving MC/DC on all
//       of them is intractable.
#pragma once

#include <cstddef>

#include "common/rng.hpp"
#include "coverage/neuron_coverage.hpp"
#include "nn/network.hpp"
#include "verify/interval.hpp"

namespace safenn::coverage {

/// Static MC/DC obligations of a network's implementation.
struct McdcAnalysis {
  std::size_t decisions = 0;           // ReLU neurons (1 condition each)
  double log2_branch_combinations = 0; // log2(2^decisions) = decisions
  /// Minimum number of tests when there are no decisions (the paper's
  /// "one test case satisfies MC/DC" for atan networks), else a lower
  /// bound of 2 tests per decision pair handled jointly (n+1 typical).
  std::size_t min_tests_lower_bound = 1;
  bool trivially_satisfiable = false;  // no decisions at all
};

McdcAnalysis analyze_mcdc(const nn::Network& net);

/// Result of attempting MC/DC-style coverage with random test generation.
struct CoverageCampaignResult {
  std::size_t tests_generated = 0;
  double both_phase_coverage = 0.0;   // MC/DC proxy achieved
  std::size_t distinct_patterns = 0;  // observed branch combinations
  double log2_total_patterns = 0.0;   // 2^decisions to compare against
  /// Neurons that no random test could drive into both phases.
  std::size_t uncovered_neurons = 0;
};

/// Samples inputs uniformly from `box` until both-phase coverage stops
/// improving (or `max_tests` is hit), measuring how far random testing
/// gets against the exponential pattern space.
CoverageCampaignResult run_coverage_campaign(const nn::Network& net,
                                             const verify::Box& box,
                                             std::size_t max_tests,
                                             Rng& rng);

}  // namespace safenn::coverage
