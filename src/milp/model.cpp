#include "milp/model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace safenn::milp {

int Model::add_variable(double lower, double upper, VarType type,
                        double objective, std::string name) {
  if (type == VarType::kBinary) {
    lower = std::max(lower, 0.0);
    upper = std::min(upper, 1.0);
  }
  const int idx =
      problem_.add_variable(lower, upper, objective, std::move(name));
  types_.push_back(type);
  if (type != VarType::kContinuous) integral_.push_back(idx);
  return idx;
}

int Model::add_constraint(lp::LinearTerms terms, lp::Relation relation,
                          double rhs, std::string name) {
  return problem_.add_constraint(std::move(terms), relation, rhs,
                                 std::move(name));
}

void Model::set_objective(int var, double coefficient) {
  problem_.set_objective(var, coefficient);
}

void Model::set_maximize(bool maximize) { problem_.set_maximize(maximize); }

VarType Model::var_type(int i) const {
  require(i >= 0 && static_cast<std::size_t>(i) < types_.size(),
          "Model::var_type: out of range");
  return types_[static_cast<std::size_t>(i)];
}

bool Model::is_integral(const std::vector<double>& x, double tol) const {
  for (int idx : integral_) {
    const double v = x[static_cast<std::size_t>(idx)];
    if (std::abs(v - std::round(v)) > tol) return false;
  }
  return true;
}

}  // namespace safenn::milp
