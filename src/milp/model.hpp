// Mixed-integer linear model: an lp::Problem plus integrality marks.
#pragma once

#include <string>
#include <vector>

#include "lp/problem.hpp"

namespace safenn::milp {

enum class VarType { kContinuous, kBinary, kInteger };

/// MILP container. The ReLU encoder (verify/milp_encoder.hpp) builds one
/// of these: continuous neuron variables plus one binary per unstable
/// ReLU phase decision.
class Model {
 public:
  /// Adds a variable; binaries are clamped into [0, 1].
  int add_variable(double lower, double upper, VarType type,
                   double objective = 0.0, std::string name = "");

  int add_constraint(lp::LinearTerms terms, lp::Relation relation, double rhs,
                     std::string name = "");

  void set_objective(int var, double coefficient);
  void set_maximize(bool maximize);

  bool maximize() const { return problem_.maximize(); }
  int num_variables() const { return problem_.num_variables(); }
  int num_constraints() const { return problem_.num_constraints(); }
  VarType var_type(int i) const;

  /// Indices of all binary/integer variables.
  const std::vector<int>& integral_variables() const { return integral_; }

  const lp::Problem& problem() const { return problem_; }
  lp::Problem& problem() { return problem_; }

  /// True when `x` satisfies integrality within `tol` on all marked vars.
  bool is_integral(const std::vector<double>& x, double tol) const;

 private:
  lp::Problem problem_;
  std::vector<VarType> types_;
  std::vector<int> integral_;
};

}  // namespace safenn::milp
