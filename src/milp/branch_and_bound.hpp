// Branch-and-bound MILP solver.
//
// Best-bound node selection with depth tie-breaking, most-fractional
// branching, a fix-and-round primal heuristic, and wall-clock time limits
// (Table II's 4x60 row times out in the paper too — time-limit handling
// is part of the reproduced behaviour, not an afterthought).
#pragma once

#include <atomic>
#include <functional>
#include <vector>

#include "lp/simplex.hpp"
#include "milp/model.hpp"

namespace safenn::milp {

enum class MilpStatus {
  kOptimal,            // incumbent proven optimal within gap_tol
  kInfeasible,         // no integral solution exists
  kUnbounded,          // LP relaxation unbounded
  kTimeLimitFeasible,  // deadline hit; best incumbent returned
  kTimeLimitNoSolution,// deadline hit before any incumbent was found
  kNodeLimit,
};

struct MilpResult {
  MilpStatus status = MilpStatus::kTimeLimitNoSolution;
  double objective = 0.0;   // incumbent objective (problem sense)
  double best_bound = 0.0;  // proven dual bound (problem sense)
  std::vector<double> values;
  long nodes_explored = 0;
  long lp_iterations = 0;
  double seconds = 0.0;
  /// True when the solve stopped because BnbOptions::cancel was set (the
  /// status is then one of the time-limit statuses). objective and
  /// best_bound remain sound snapshots of the interrupted search.
  bool cancelled = false;

  bool has_solution() const {
    return status == MilpStatus::kOptimal ||
           status == MilpStatus::kTimeLimitFeasible ||
           status == MilpStatus::kNodeLimit;
  }

  /// Relative optimality gap |objective - best_bound| / max(1, |objective|).
  double gap() const;
};

struct BnbOptions {
  double time_limit_seconds = 0.0;  // <= 0: unlimited
  long max_nodes = 0;               // <= 0: unlimited
  double integrality_tol = 1e-6;
  double relative_gap_tol = 1e-9;
  /// Run the fix-and-round primal heuristic every N nodes (0 disables).
  long heuristic_interval = 50;
  lp::SimplexOptions lp_options;
  /// Called whenever a better incumbent is found.
  std::function<void(const MilpResult&)> on_incumbent;
  /// Optional known-feasible full assignment used as the starting
  /// incumbent (e.g. a concrete network execution for ReLU encodings).
  /// Checked for row feasibility and integrality before use.
  std::vector<double> initial_solution;
  /// Optional per-variable branching priority (higher = branch earlier
  /// among fractional candidates; fractionality breaks ties). For ReLU
  /// encodings, early-layer phase binaries get high priority because
  /// fixing them stabilizes everything downstream.
  std::vector<double> branch_priority;
  /// Cooperative cancellation: polled (with the deadline) once per node
  /// at CancelToken's documented stride. When it fires, the solve
  /// returns a time-limit status with MilpResult::cancelled set.
  const std::atomic<bool>* cancel = nullptr;
  /// External objective cutoff (problem sense): a value proven feasible
  /// *outside* this solve — e.g. a concrete network execution found by a
  /// racing portfolio peer. Polled at the same stride as the deadline;
  /// nodes whose relaxation cannot beat it are pruned, exactly like an
  /// incumbent, but it never becomes `objective` (there is no assignment
  /// for it here). The reported best_bound is clamped so it stays a
  /// sound bound on the true optimum: a pruned subtree is dominated by
  /// the cutoff value, which is itself achievable. Return -inf (maximize)
  /// / +inf (minimize) when no external value is known.
  std::function<double()> external_cutoff;
};

class BranchAndBound {
 public:
  explicit BranchAndBound(BnbOptions options = {});

  MilpResult solve(const Model& model) const;

 private:
  BnbOptions options_;
};

}  // namespace safenn::milp
