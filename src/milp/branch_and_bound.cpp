#include "milp/branch_and_bound.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/cancel.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "common/stopwatch.hpp"
#include "lp/simplex.hpp"

namespace safenn::milp {
namespace {

/// A search node: bound overrides accumulated along its branch path plus
/// the parent's LP bound (an optimistic estimate until its own LP runs).
struct Node {
  std::vector<std::pair<int, double>> lower_overrides;
  std::vector<std::pair<int, double>> upper_overrides;
  double estimate = 0.0;  // parent LP objective (problem sense)
  int depth = 0;
  long id = 0;
};

/// Applies node bound overrides to a copy of the base problem.
lp::Problem build_node_problem(const lp::Problem& base, const Node& node) {
  lp::Problem p = base;
  for (const auto& [var, lo] : node.lower_overrides) {
    p.variable(var).lower = std::max(p.variable(var).lower, lo);
  }
  for (const auto& [var, hi] : node.upper_overrides) {
    p.variable(var).upper = std::min(p.variable(var).upper, hi);
  }
  return p;
}

}  // namespace

double MilpResult::gap() const {
  const double denom = std::max(1.0, std::abs(objective));
  return std::abs(objective - best_bound) / denom;
}

BranchAndBound::BranchAndBound(BnbOptions options)
    : options_(std::move(options)) {}

MilpResult BranchAndBound::solve(const Model& model) const {
  const lp::Problem& base = model.problem();
  const bool maximize = model.maximize();
  const double sign = maximize ? 1.0 : -1.0;
  // better(a, b): a is a strictly better objective than b in problem sense.
  auto better = [sign](double a, double b) { return sign * (a - b) > 0.0; };

  lp::SimplexSolver lp_solver(options_.lp_options);
  Stopwatch clock;
  // Deadline + portfolio-cancel poll, amortized at the documented
  // default stride (one clock read per 16 nodes — the historical rate).
  CancelToken stop(options_.time_limit_seconds, options_.cancel);

  MilpResult result;
  bool have_incumbent = false;
  // Best external cutoff seen so far (problem sense); -sign*inf = none.
  // Refreshed at the same stride as the deadline so a peer's incumbent
  // tightens pruning within at most 16 nodes of being published.
  double external = -sign * lp::kInfinity;
  bool external_used = false;  // an external value ever pruned a node
  auto refresh_external = [&] {
    if (!options_.external_cutoff) return;
    const double v = options_.external_cutoff();
    if (std::isfinite(v) && better(v, external)) external = v;
  };

  // Best-first: larger sign*estimate first; ties broken by depth (deeper
  // first, diving toward incumbents), then LIFO on id for determinism.
  auto node_order = [sign](const Node& a, const Node& b) {
    const double ka = sign * a.estimate, kb = sign * b.estimate;
    if (ka != kb) return ka < kb;  // priority_queue: "less" => lower priority
    if (a.depth != b.depth) return a.depth < b.depth;
    return a.id < b.id;
  };
  std::priority_queue<Node, std::vector<Node>, decltype(node_order)> open(
      node_order);

  long next_id = 0;
  const double root_estimate =
      maximize ? lp::kInfinity : -lp::kInfinity;
  open.push(Node{{}, {}, root_estimate, 0, next_id++});

  // Fix-and-round primal heuristic: fix every integral variable to the
  // rounded LP value and re-solve the continuous rest.
  auto try_heuristic = [&](const std::vector<double>& relaxation) {
    lp::Problem fixed = base;
    for (int idx : model.integral_variables()) {
      const double v =
          std::round(relaxation[static_cast<std::size_t>(idx)]);
      const double lo = fixed.variable(idx).lower;
      const double hi = fixed.variable(idx).upper;
      const double clamped = std::clamp(v, lo, hi);
      fixed.variable(idx).lower = clamped;
      fixed.variable(idx).upper = clamped;
    }
    const lp::Solution s = lp_solver.solve(fixed);
    result.lp_iterations += s.iterations;
    if (s.status != lp::SolveStatus::kOptimal) return;
    if (base.max_violation(s.values) > 1e-6) return;
    if (!have_incumbent || better(s.objective, result.objective)) {
      have_incumbent = true;
      result.objective = s.objective;
      result.values = s.values;
      if (options_.on_incumbent) {
        result.seconds = clock.seconds();
        options_.on_incumbent(result);
      }
    }
  };

  // Seed the incumbent from a caller-provided feasible assignment.
  if (options_.initial_solution.size() ==
      static_cast<std::size_t>(base.num_variables())) {
    const std::vector<double>& x0 = options_.initial_solution;
    if (base.max_violation(x0) <= 1e-6 &&
        model.is_integral(x0, options_.integrality_tol)) {
      bool in_bounds = true;
      for (int j = 0; j < base.num_variables(); ++j) {
        const lp::Variable& v = base.variable(j);
        if (x0[static_cast<std::size_t>(j)] < v.lower - 1e-7 ||
            x0[static_cast<std::size_t>(j)] > v.upper + 1e-7) {
          in_bounds = false;
          break;
        }
      }
      if (in_bounds) {
        have_incumbent = true;
        result.objective = base.objective_value(x0);
        result.values = x0;
      }
    }
  }

  double global_bound = root_estimate;
  bool aborted_time = false;
  bool aborted_nodes = false;
  bool lp_trouble = false;

  while (!open.empty()) {
    // One should_stop() per node: the external flag every node, the
    // clock every 16th (CancelToken's stride) — the clock read is
    // measurable against the per-node LP cost.
    if (result.nodes_explored % 16 == 0) refresh_external();
    if (stop.should_stop()) {
      aborted_time = true;
      break;
    }
    if (options_.max_nodes > 0 && result.nodes_explored >= options_.max_nodes) {
      aborted_nodes = true;
      break;
    }

    Node node = open.top();
    open.pop();
    // The best remaining estimate bounds everything still open; combined
    // with the incumbent this is the proven global bound.
    global_bound = node.estimate;
    if (have_incumbent) {
      // `node.estimate` is the best bound over everything still open
      // (best-first order), so this is the true global optimality gap.
      const double denom = std::max(1.0, std::abs(result.objective));
      const double improvement = sign * (node.estimate - result.objective);
      if (improvement <= options_.relative_gap_tol * denom) {
        global_bound = result.objective;
        break;
      }
    }
    if (std::isfinite(external) && !better(node.estimate, external)) {
      // The externally-achieved value dominates this whole subtree (its
      // values are <= the estimate), so it can be dropped without an LP
      // solve. best_bound is clamped with `external` on exit, which keeps
      // the reported bound sound.
      external_used = true;
      continue;
    }

    ++result.nodes_explored;
    const lp::Problem node_problem = build_node_problem(base, node);
    const lp::Solution relax = lp_solver.solve(node_problem);
    result.lp_iterations += relax.iterations;
    if (log_level() <= LogLevel::kDebug) {
      std::string fixes;
      for (const auto& [v, lo] : node.lower_overrides)
        fixes += " v" + std::to_string(v) + ">=" + std::to_string(lo);
      for (const auto& [v, hi] : node.upper_overrides)
        fixes += " v" + std::to_string(v) + "<=" + std::to_string(hi);
      log_debug("node ", node.id, " depth=", node.depth,
                " est=", node.estimate, " lp_status=", static_cast<int>(relax.status),
                " obj=", relax.objective, fixes);
    }

    if (relax.status == lp::SolveStatus::kInfeasible) continue;
    if (relax.status == lp::SolveStatus::kUnbounded) {
      if (node.depth == 0) {
        result.status = MilpStatus::kUnbounded;
        result.seconds = clock.seconds();
        return result;
      }
      // A bounded-root child cannot be unbounded; treat as numerical
      // trouble and skip conservatively.
      lp_trouble = true;
      continue;
    }
    if (relax.status == lp::SolveStatus::kIterationLimit) {
      log_warn("BranchAndBound: node LP hit iteration limit; aborting");
      lp_trouble = true;
      break;
    }

    // Prune by bound.
    if (have_incumbent && !better(relax.objective, result.objective)) {
      continue;
    }
    if (std::isfinite(external) && !better(relax.objective, external)) {
      external_used = true;
      continue;
    }

    // Integral solution: new incumbent.
    if (model.is_integral(relax.values, options_.integrality_tol)) {
      if (!have_incumbent || better(relax.objective, result.objective)) {
        have_incumbent = true;
        result.objective = relax.objective;
        result.values = relax.values;
        if (options_.on_incumbent) {
          result.seconds = clock.seconds();
          options_.on_incumbent(result);
        }
      }
      continue;
    }

    if (options_.heuristic_interval > 0 &&
        (result.nodes_explored == 1 ||
         result.nodes_explored % options_.heuristic_interval == 0)) {
      try_heuristic(relax.values);
    }

    // Branch on the highest-priority fractional variable (fractionality
    // itself acts as the priority when none is provided, and as the
    // tie-break otherwise).
    const bool has_priority =
        options_.branch_priority.size() ==
        static_cast<std::size_t>(base.num_variables());
    int branch_var = -1;
    double best_prio = 0.0;
    double best_frac_score = -1.0;
    for (int idx : model.integral_variables()) {
      const double v = relax.values[static_cast<std::size_t>(idx)];
      const double frac = v - std::floor(v);
      const double dist = std::min(frac, 1.0 - frac);
      if (dist <= options_.integrality_tol) continue;
      const double prio =
          has_priority ? options_.branch_priority[static_cast<std::size_t>(idx)]
                       : 0.0;
      if (branch_var < 0 || prio > best_prio ||
          (prio == best_prio && dist > best_frac_score)) {
        best_prio = prio;
        best_frac_score = dist;
        branch_var = idx;
      }
    }
    require(branch_var >= 0,
            "BranchAndBound: non-integral solution with no fractional "
            "variable (tolerance mismatch)");

    const double v = relax.values[static_cast<std::size_t>(branch_var)];
    Node down = node;
    down.upper_overrides.emplace_back(branch_var, std::floor(v));
    down.estimate = relax.objective;
    down.depth = node.depth + 1;
    down.id = next_id++;
    Node up = node;
    up.lower_overrides.emplace_back(branch_var, std::ceil(v));
    up.estimate = relax.objective;
    up.depth = node.depth + 1;
    up.id = next_id++;
    open.push(std::move(down));
    open.push(std::move(up));
  }

  result.seconds = clock.seconds();
  // Subtrees pruned against the external cutoff are dominated by it, so
  // the sound dual bound is the sign-wise max of the tree bound and the
  // cutoff value (which is itself achievable, just not by this search).
  auto clamp_external = [&] {
    if (external_used && better(external, result.best_bound)) {
      result.best_bound = external;
    }
  };
  if (aborted_time || lp_trouble) {
    result.status = have_incumbent ? MilpStatus::kTimeLimitFeasible
                                   : MilpStatus::kTimeLimitNoSolution;
    result.cancelled = stop.cause() == StopCause::kCancelled;
    // A timeout before the root node is processed leaves no dual bound at
    // all; report +/-inf honestly. Substituting the incumbent objective
    // here would pass a primal (lower) bound off as a dual bound and let
    // a caller "prove" thresholds the search never examined.
    result.best_bound = open.empty() ? global_bound : open.top().estimate;
    clamp_external();
    return result;
  }
  if (aborted_nodes) {
    result.status = have_incumbent ? MilpStatus::kNodeLimit
                                   : MilpStatus::kTimeLimitNoSolution;
    result.best_bound = open.empty() ? global_bound : open.top().estimate;
    clamp_external();
    return result;
  }
  if (!have_incumbent) {
    if (external_used) {
      // Every branch was dominated by the external cutoff: the search
      // proved optimum <= external without ever holding an assignment.
      result.status = MilpStatus::kTimeLimitNoSolution;
      result.best_bound = external;
      return result;
    }
    result.status = MilpStatus::kInfeasible;
    result.best_bound = result.objective;
    return result;
  }
  // With an external cutoff the incumbent is only proven optimal among
  // assignments beating the cutoff; best_bound still brackets the true
  // optimum after the clamp.
  result.status = MilpStatus::kOptimal;
  result.best_bound = result.objective;
  clamp_external();
  return result;
}

}  // namespace safenn::milp
