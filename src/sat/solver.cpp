#include "sat/solver.hpp"

#include <algorithm>
#include <cmath>

#include "common/cancel.hpp"
#include "common/error.hpp"
#include "common/stopwatch.hpp"

namespace safenn::sat {
namespace {

// Internal literal encoding: variable v (0-based) -> 2v (positive),
// 2v+1 (negative).
using ILit = int;

inline ILit make_ilit(int var0, bool negated) {
  return 2 * var0 + (negated ? 1 : 0);
}
inline ILit neg(ILit l) { return l ^ 1; }
inline int ivar(ILit l) { return l >> 1; }
inline bool isign(ILit l) { return l & 1; }

constexpr int kUndef = -1;

/// Luby restart sequence value for index i (1-based): 1,1,2,1,1,2,4,...
/// luby(i) = 2^(k-1) when i = 2^k - 1, else luby(i - 2^(k-1) + 1) for the
/// largest k with 2^k - 1 < i; iterative form below.
std::int64_t luby(std::int64_t i) {
  std::int64_t x = i;
  while (true) {
    std::int64_t p = 1;
    while (p - 1 < x) p <<= 1;
    if (p - 1 == x) return p >> 1;
    x -= (p >> 1) - 1;
  }
}

struct Engine {
  // Problem.
  int nvars = 0;
  std::vector<std::vector<ILit>> clauses;      // problem + learned
  std::vector<std::vector<int>> watches;       // per ilit: clause indices
  // Assignment.
  std::vector<signed char> value;  // per var: -1 unassigned, 0 false, 1 true
  std::vector<int> reason;         // per var: clause index or kUndef
  std::vector<int> level;          // per var
  std::vector<ILit> trail;
  std::vector<int> trail_lim;
  std::size_t qhead = 0;
  // Heuristics.
  std::vector<double> activity;
  std::vector<signed char> saved_phase;
  double var_inc = 1.0;
  double var_decay = 0.95;
  // Conflict analysis scratch.
  std::vector<char> seen;

  SolverStats* stats = nullptr;

  int decision_level() const { return static_cast<int>(trail_lim.size()); }

  bool lit_true(ILit l) const {
    const signed char v = value[static_cast<std::size_t>(ivar(l))];
    return v != -1 && (v == 1) != isign(l);
  }
  bool lit_false(ILit l) const {
    const signed char v = value[static_cast<std::size_t>(ivar(l))];
    return v != -1 && (v == 1) == isign(l);
  }
  bool lit_unassigned(ILit l) const {
    return value[static_cast<std::size_t>(ivar(l))] == -1;
  }

  void enqueue(ILit l, int why) {
    const int v = ivar(l);
    value[static_cast<std::size_t>(v)] = isign(l) ? 0 : 1;
    reason[static_cast<std::size_t>(v)] = why;
    level[static_cast<std::size_t>(v)] = decision_level();
    trail.push_back(l);
  }

  void bump(int v) {
    activity[static_cast<std::size_t>(v)] += var_inc;
    if (activity[static_cast<std::size_t>(v)] > 1e100) {
      for (double& a : activity) a *= 1e-100;
      var_inc *= 1e-100;
    }
  }

  void decay() { var_inc /= var_decay; }

  /// Attaches clause `ci` to the watch lists of its first two literals.
  void attach(int ci) {
    const auto& c = clauses[static_cast<std::size_t>(ci)];
    watches[static_cast<std::size_t>(neg(c[0]))].push_back(ci);
    watches[static_cast<std::size_t>(neg(c[1]))].push_back(ci);
  }

  /// Unit propagation; returns conflicting clause index or kUndef.
  int propagate() {
    while (qhead < trail.size()) {
      const ILit p = trail[qhead++];
      ++stats->propagations;
      auto& wl = watches[static_cast<std::size_t>(p)];
      std::size_t keep = 0;
      for (std::size_t wi = 0; wi < wl.size(); ++wi) {
        const int ci = wl[wi];
        auto& c = clauses[static_cast<std::size_t>(ci)];
        // Normalize: watched literal being falsified is c[1].
        if (c[0] == neg(p)) std::swap(c[0], c[1]);
        if (lit_true(c[0])) {
          wl[keep++] = ci;  // clause already satisfied
          continue;
        }
        // Look for a replacement watch.
        bool moved = false;
        for (std::size_t k = 2; k < c.size(); ++k) {
          if (!lit_false(c[k])) {
            std::swap(c[1], c[k]);
            watches[static_cast<std::size_t>(neg(c[1]))].push_back(ci);
            moved = true;
            break;
          }
        }
        if (moved) continue;
        // No replacement: clause is unit or conflicting.
        wl[keep++] = ci;
        if (lit_false(c[0])) {
          // Conflict: restore remaining watches and report.
          for (std::size_t rest = wi + 1; rest < wl.size(); ++rest) {
            wl[keep++] = wl[rest];
          }
          wl.resize(keep);
          qhead = trail.size();
          return ci;
        }
        enqueue(c[0], ci);
      }
      wl.resize(keep);
    }
    return kUndef;
  }

  /// First-UIP conflict analysis. Returns (learned clause, backjump level).
  std::pair<std::vector<ILit>, int> analyze(int confl) {
    std::vector<ILit> learned;
    learned.push_back(0);  // slot for the asserting literal
    int counter = 0;
    ILit p = kUndef;
    std::size_t index = trail.size();

    int ci = confl;
    while (true) {
      const auto& c = clauses[static_cast<std::size_t>(ci)];
      // Skip c[0] when it is the literal we are resolving on.
      for (std::size_t k = (p == kUndef ? 0 : 1); k < c.size(); ++k) {
        const ILit q = c[k];
        const int v = ivar(q);
        if (seen[static_cast<std::size_t>(v)] ||
            level[static_cast<std::size_t>(v)] == 0) {
          continue;
        }
        seen[static_cast<std::size_t>(v)] = 1;
        bump(v);
        if (level[static_cast<std::size_t>(v)] == decision_level()) {
          ++counter;
        } else {
          learned.push_back(q);
        }
      }
      // Pick the next trail literal at the current level to resolve on.
      while (!seen[static_cast<std::size_t>(ivar(trail[index - 1]))]) {
        --index;
      }
      --index;
      p = trail[index];
      seen[static_cast<std::size_t>(ivar(p))] = 0;
      --counter;
      if (counter == 0) break;
      ci = reason[static_cast<std::size_t>(ivar(p))];
    }
    learned[0] = neg(p);

    // Backjump level: highest level among the other literals.
    int back = 0;
    std::size_t back_idx = 1;
    for (std::size_t k = 1; k < learned.size(); ++k) {
      const int lv = level[static_cast<std::size_t>(ivar(learned[k]))];
      if (lv > back) {
        back = lv;
        back_idx = k;
      }
    }
    if (learned.size() > 1) std::swap(learned[1], learned[back_idx]);
    for (ILit l : learned) seen[static_cast<std::size_t>(ivar(l))] = 0;
    return {std::move(learned), back};
  }

  void backjump(int target_level) {
    while (decision_level() > target_level) {
      const std::size_t lim =
          static_cast<std::size_t>(trail_lim.back());
      for (std::size_t i = trail.size(); i-- > lim;) {
        const int v = ivar(trail[i]);
        saved_phase[static_cast<std::size_t>(v)] =
            value[static_cast<std::size_t>(v)];
        value[static_cast<std::size_t>(v)] = -1;
        reason[static_cast<std::size_t>(v)] = kUndef;
      }
      trail.resize(lim);
      trail_lim.pop_back();
    }
    qhead = trail.size();
  }

  /// Picks the unassigned variable with maximal activity (simple scan
  /// with a rotating hint; adequate for our instance sizes).
  int pick_branch_var() {
    int best = kUndef;
    double best_act = -1.0;
    for (int v = 0; v < nvars; ++v) {
      if (value[static_cast<std::size_t>(v)] != -1) continue;
      if (activity[static_cast<std::size_t>(v)] > best_act) {
        best_act = activity[static_cast<std::size_t>(v)];
        best = v;
      }
    }
    return best;
  }
};

}  // namespace

Solver::Solver(SolverOptions options) : options_(options) {}

SatResult Solver::solve(const Cnf& cnf, const std::vector<Lit>& assumptions) {
  stats_ = SolverStats{};
  Engine e;
  e.stats = &stats_;
  e.nvars = cnf.num_vars();
  e.var_decay = options_.var_decay;
  e.value.assign(static_cast<std::size_t>(e.nvars), -1);
  e.reason.assign(static_cast<std::size_t>(e.nvars), kUndef);
  e.level.assign(static_cast<std::size_t>(e.nvars), 0);
  e.activity.assign(static_cast<std::size_t>(e.nvars), 0.0);
  e.saved_phase.assign(static_cast<std::size_t>(e.nvars), 0);
  e.seen.assign(static_cast<std::size_t>(e.nvars), 0);
  e.watches.assign(static_cast<std::size_t>(2 * e.nvars), {});

  // Load clauses: dedupe literals, drop tautologies, split units.
  std::vector<ILit> units;
  for (const auto& clause : cnf.clauses()) {
    std::vector<ILit> c;
    c.reserve(clause.size());
    for (Lit l : clause) {
      c.push_back(make_ilit(lit_var(l) - 1, lit_sign(l)));
    }
    std::sort(c.begin(), c.end());
    c.erase(std::unique(c.begin(), c.end()), c.end());
    bool tautology = false;
    for (std::size_t k = 0; k + 1 < c.size(); ++k) {
      if (c[k + 1] == neg(c[k]) && ivar(c[k]) == ivar(c[k + 1])) {
        tautology = true;
        break;
      }
    }
    if (tautology) continue;
    if (c.empty()) return SatResult::kUnsat;
    if (c.size() == 1) {
      units.push_back(c[0]);
      continue;
    }
    e.clauses.push_back(std::move(c));
    e.attach(static_cast<int>(e.clauses.size()) - 1);
    // Seed activity toward variables that appear often.
    for (ILit l : e.clauses.back()) e.bump(ivar(l));
  }
  for (Lit l : assumptions) {
    require(l != 0 && lit_var(l) <= e.nvars,
            "Solver::solve: assumption references unknown variable");
    units.push_back(make_ilit(lit_var(l) - 1, lit_sign(l)));
  }

  // Level-0 units.
  for (ILit u : units) {
    if (e.lit_false(u)) return SatResult::kUnsat;
    if (e.lit_unassigned(u)) e.enqueue(u, kUndef);
  }
  if (e.propagate() != kUndef) return SatResult::kUnsat;

  // Deadline + portfolio-cancel: the flag every conflict, the clock every
  // 256th (the documented SAT stride — conflicts are much cheaper than
  // BnB nodes).
  CancelToken stop(options_.time_limit_seconds, options_.cancel, 256);
  std::int64_t restart_idx = 1;
  std::int64_t conflicts_until_restart = 100 * luby(restart_idx);

  while (true) {
    const int confl = e.propagate();
    if (confl != kUndef) {
      ++stats_.conflicts;
      if (e.decision_level() == 0) return SatResult::kUnsat;
      auto [learned, back] = e.analyze(confl);
      e.backjump(back);
      if (learned.size() == 1) {
        e.enqueue(learned[0], kUndef);
      } else {
        e.clauses.push_back(learned);
        const int ci = static_cast<int>(e.clauses.size()) - 1;
        e.attach(ci);
        ++stats_.learned_clauses;
        e.enqueue(learned[0], ci);
      }
      e.decay();

      if (options_.max_conflicts > 0 &&
          stats_.conflicts >= options_.max_conflicts) {
        return SatResult::kUnknown;
      }
      if (stop.should_stop()) {
        return SatResult::kUnknown;
      }
      if (--conflicts_until_restart <= 0) {
        ++stats_.restarts;
        ++restart_idx;
        conflicts_until_restart = 100 * luby(restart_idx);
        e.backjump(0);
      }
      continue;
    }

    // No conflict: decide.
    const int v = e.pick_branch_var();
    if (v == kUndef) {
      // Full assignment: SAT. Extract the model.
      model_.assign(static_cast<std::size_t>(e.nvars) + 1, 0);
      for (int var = 0; var < e.nvars; ++var) {
        model_[static_cast<std::size_t>(var) + 1] =
            e.value[static_cast<std::size_t>(var)] == 1 ? 1 : 0;
      }
      return SatResult::kSat;
    }
    ++stats_.decisions;
    e.trail_lim.push_back(static_cast<int>(e.trail.size()));
    const bool phase = e.saved_phase[static_cast<std::size_t>(v)] == 1;
    e.enqueue(make_ilit(v, !phase), kUndef);
  }
}

bool Solver::model_value(Var v) const {
  require(v >= 1 && static_cast<std::size_t>(v) < model_.size(),
          "Solver::model_value: no model or variable out of range");
  return model_[static_cast<std::size_t>(v)] != 0;
}

}  // namespace safenn::sat
