#include "sat/cnf.hpp"

#include "common/error.hpp"

namespace safenn::sat {

Var Cnf::new_var() { return ++num_vars_; }

Var Cnf::new_vars(int n) {
  require(n > 0, "Cnf::new_vars: n must be positive");
  const Var first = num_vars_ + 1;
  num_vars_ += n;
  return first;
}

void Cnf::add_clause(std::vector<Lit> lits) {
  for (Lit l : lits) {
    require(l != 0 && lit_var(l) <= num_vars_,
            "Cnf::add_clause: literal references unknown variable");
  }
  clauses_.push_back(std::move(lits));
}

void Cnf::add_unit(Lit a) { add_clause({a}); }
void Cnf::add_binary(Lit a, Lit b) { add_clause({a, b}); }
void Cnf::add_ternary(Lit a, Lit b, Lit c) { add_clause({a, b, c}); }

}  // namespace safenn::sat
