// CNF formula container (DIMACS-style signed-integer literals).
#pragma once

#include <cstddef>
#include <vector>

namespace safenn::sat {

/// Boolean variable, 1-based (DIMACS convention).
using Var = int;
/// Literal: +v for the variable, -v for its negation.
using Lit = int;

inline Var lit_var(Lit l) { return l > 0 ? l : -l; }
inline bool lit_sign(Lit l) { return l < 0; }  // true = negated

/// Clause database under construction. Clauses are disjunctions of
/// literals; the formula is their conjunction.
class Cnf {
 public:
  /// Allocates a fresh variable and returns it.
  Var new_var();

  /// Allocates `n` fresh variables, returning the first.
  Var new_vars(int n);

  /// Adds a clause. Empty clauses are allowed (formula trivially UNSAT).
  void add_clause(std::vector<Lit> lits);

  /// Convenience for short clauses.
  void add_unit(Lit a);
  void add_binary(Lit a, Lit b);
  void add_ternary(Lit a, Lit b, Lit c);

  int num_vars() const { return num_vars_; }
  std::size_t num_clauses() const { return clauses_.size(); }
  const std::vector<std::vector<Lit>>& clauses() const { return clauses_; }

 private:
  int num_vars_ = 0;
  std::vector<std::vector<Lit>> clauses_;
};

}  // namespace safenn::sat
