// CDCL SAT solver.
//
// Standard architecture: two-watched-literal propagation, first-UIP
// conflict analysis with non-chronological backjumping, VSIDS-style
// activity decision heuristic, phase saving, and Luby restarts. Sized for
// the CNFs produced by bit-blasting quantized networks (Sec. IV(ii)).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "sat/cnf.hpp"

namespace safenn::sat {

enum class SatResult { kSat, kUnsat, kUnknown };

struct SolverOptions {
  /// Abort with kUnknown after this many conflicts (0: unlimited).
  std::int64_t max_conflicts = 0;
  /// Wall-clock limit in seconds (0: unlimited).
  double time_limit_seconds = 0.0;
  double var_decay = 0.95;
  /// Cooperative cancellation (portfolio): polled with the deadline once
  /// per conflict at CancelToken stride 256; a fired flag returns
  /// kUnknown exactly like a timeout.
  const std::atomic<bool>* cancel = nullptr;
};

struct SolverStats {
  std::int64_t decisions = 0;
  std::int64_t conflicts = 0;
  std::int64_t propagations = 0;
  std::int64_t restarts = 0;
  std::int64_t learned_clauses = 0;
};

class Solver {
 public:
  explicit Solver(SolverOptions options = {});

  /// Solves the formula; `assumptions` are literals forced true for this
  /// call only (solver is single-shot: build a new Solver per query).
  SatResult solve(const Cnf& cnf, const std::vector<Lit>& assumptions = {});

  /// Value of `v` in the satisfying assignment (valid after kSat).
  bool model_value(Var v) const;

  /// Full model as a vector indexed by variable (index 0 unused).
  const std::vector<char>& model() const { return model_; }

  const SolverStats& stats() const { return stats_; }

 private:
  SolverOptions options_;
  SolverStats stats_;
  std::vector<char> model_;
};

}  // namespace safenn::sat
