// Atomic hot-swap slot for the model serving under live traffic.
//
// RCU-style publication: readers (serving workers) grab a shared_ptr to
// an immutable ModelSnapshot once per popped micro-batch and serve the
// whole batch against it; a swap atomically publishes a new snapshot for
// subsequent pops while in-flight batches finish on the snapshot they
// hold. Readers touch the slot only between batches (never mid-batch),
// no batch ever observes a half-swapped model, and the old model is
// destroyed exactly when its last in-flight batch releases it.
//
// Shield continuity across swaps lives one level up: the serving
// MetricsRegistry's outcome/intervention counters are global and
// monotone across any number of swaps (plus per-version, so each model's
// slice is separately auditable) — bench_model_reload asserts the totals
// against a sequential per-version replay.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "linalg/kernels.hpp"
#include "nn/qengine.hpp"
#include "registry/artifact.hpp"

namespace safenn::registry {

/// An immutable (predictor, monitor, kernel backend) triple under a
/// version label — everything a worker needs to serve one micro-batch.
/// Snapshots either own their model (built from an artifact at reload)
/// or wrap externally owned objects (the legacy construction path where
/// the caller shares its monitor for offline-comparable stats).
class ModelSnapshot {
 public:
  /// Wraps externally owned predictor/monitor (both must outlive the
  /// snapshot — the InferenceServer reference constructor path).
  ModelSnapshot(std::string version,
                const core::TrainedPredictor& predictor,
                const core::SafetyMonitor& monitor,
                linalg::KernelBackend backend);

  /// Materializes and owns the artifact's predictor and monitor. The
  /// caller chooses the backend (serve runs its admission gate per
  /// artifact before constructing the snapshot). With backend ==
  /// kQuantized, the artifact must carry a quantized payload; the packed
  /// engine is built once here and shared (it is immutable) by every
  /// batch served against this snapshot. `quantized_kernel` then picks
  /// the integer kernel inside the engine — kReference for the scalar
  /// reference, anything else for the SIMD dispatch; all bitwise equal.
  ModelSnapshot(const ModelArtifact& artifact, linalg::KernelBackend backend,
                linalg::KernelBackend quantized_kernel =
                    linalg::KernelBackend::kQuantized);

  ModelSnapshot(const ModelSnapshot&) = delete;
  ModelSnapshot& operator=(const ModelSnapshot&) = delete;

  const std::string& version() const { return version_; }
  const core::TrainedPredictor& predictor() const { return *predictor_; }
  const core::SafetyMonitor& monitor() const { return *monitor_; }
  linalg::KernelBackend backend() const { return backend_; }
  /// Artifact content hash; 0 for wrapped (unregistered) models.
  std::uint64_t content_hash() const { return content_hash_; }
  /// Content address of the quantized weights; 0 when not quantized.
  std::uint64_t quantized_hash() const { return quantized_hash_; }
  /// The packed integer engine; non-null iff backend() == kQuantized.
  const nn::QuantizedEngine* quantized_engine() const {
    return quantized_engine_.get();
  }

 private:
  std::string version_;
  linalg::KernelBackend backend_;
  std::uint64_t content_hash_ = 0;
  std::uint64_t quantized_hash_ = 0;
  std::unique_ptr<core::TrainedPredictor> owned_predictor_;
  std::unique_ptr<core::SafetyMonitor> owned_monitor_;
  std::unique_ptr<const nn::QuantizedEngine> quantized_engine_;
  const core::TrainedPredictor* predictor_;
  const core::SafetyMonitor* monitor_;
};

/// The swap slot itself. `current()` copies the published shared_ptr
/// under a mutex held only for the refcount bump (readers pin once per
/// micro-batch, so the lock is off the per-request path); `swap()`
/// publishes a new snapshot and returns the previous one so the caller
/// can inspect what was retired.
///
/// Not std::atomic<std::shared_ptr>: libstdc++ 12's _Sp_atomic::load
/// drops its spinlock with a relaxed fetch_sub, so a subsequent locked
/// swap has no release edge ordering it after the reader's pointer
/// read — a real (if practically benign) memory-model race that TSan
/// reports. A plain mutex gives the same publication semantics and is
/// sanitizer-clean.
class LiveModel {
 public:
  explicit LiveModel(std::shared_ptr<const ModelSnapshot> initial);

  /// The snapshot new work should serve against.
  std::shared_ptr<const ModelSnapshot> current() const;

  /// Atomically publishes `next` and returns the retired snapshot.
  /// In-flight readers keep their shared_ptr; the retired model dies
  /// with its last reference.
  std::shared_ptr<const ModelSnapshot> swap(
      std::shared_ptr<const ModelSnapshot> next);

  /// Number of swap() calls since construction.
  std::uint64_t swap_count() const {
    return swaps_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const ModelSnapshot> slot_;
  std::atomic<std::uint64_t> swaps_{0};
};

}  // namespace safenn::registry
