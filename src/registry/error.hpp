// Typed errors for the model registry.
//
// The registry is the gate between stored bytes and served models: every
// rejection reason is typed so operators (and tests) can distinguish "the
// file is corrupt" from "that version does not exist" from "the directory
// is unreadable" — a corrupt artifact must never be served, and the
// reason it was refused is itself audit evidence.
#pragma once

#include <string>

#include "common/error.hpp"

namespace safenn::registry {

class RegistryError : public Error {
 public:
  enum class Kind {
    kNotFound,          // no artifact with that version in the directory
    kBadArtifact,       // file exists but is not a valid artifact
    kHashMismatch,      // artifact bytes do not match the recorded hash
    kDuplicateVersion,  // saving a version that already exists
    kIo,                // filesystem failure (open/create/iterate)
  };

  RegistryError(Kind kind, const std::string& what)
      : Error(what), kind_(kind) {}

  Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

inline const char* to_string(RegistryError::Kind kind) {
  switch (kind) {
    case RegistryError::Kind::kNotFound: return "not-found";
    case RegistryError::Kind::kBadArtifact: return "bad-artifact";
    case RegistryError::Kind::kHashMismatch: return "hash-mismatch";
    case RegistryError::Kind::kDuplicateVersion: return "duplicate-version";
    case RegistryError::Kind::kIo: return "io";
  }
  return "?";
}

}  // namespace safenn::registry
