// Versioned model artifacts.
//
// The paper's certification argument is about the *deployed artifact*:
// the network that serves traffic must be the one that was trained,
// verified, and shielded — and that link must survive redeployment. A
// ModelArtifact bundles everything the serving runtime needs to stand up
// a shielded model — the serialized network (nn/serialize v2, itself
// checksummed), the MDN head layout, and the safety-monitor
// configuration (assumption region + lateral threshold) — under a
// version label and an artifact-level content hash over the byte stream.
// Loading re-hashes and refuses anything that does not match bit for
// bit: a corrupt, truncated, or tampered artifact is rejected with a
// typed error, never partially loaded, never served.
// An artifact may additionally carry a quantized payload: the exact
// fixed-point form of the same network (frac_bits, integer weights,
// declared input domain), content-addressed by its own checksum inside
// the artifact-level hash. One immutable file then holds both
// representations — the float network the trainer produced and the
// integer network the SMT stack verifies and the quantized engine
// serves — so "the verified model is the served model" is a statement
// about bytes, not about a conversion step at deploy time. Artifacts
// with a quantized payload use format version v2; plain artifacts keep
// writing v1 and the loader accepts both.
// Format v3 wraps the same canonical payload in the safenn-pack codec
// (common/compress): the file carries the artifact checksum in clear
// text followed by a length-framed binary blob, and the checksum is
// still computed over the *uncompressed* canonical payload — so the
// content address of an artifact is identical across encodings and the
// quantized inner hash is untouched. The loader accepts all three.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

#include "core/monitor.hpp"
#include "core/pipeline.hpp"
#include "nn/quantize.hpp"
#include "registry/error.hpp"

namespace safenn::registry {

/// The SafetyMonitor configuration an artifact deploys with: the shield
/// is part of the model, not of the server — swapping models swaps the
/// monitored region and threshold with them.
struct MonitorConfig {
  verify::InputRegion region;
  double lateral_threshold = 0.0;

  /// Builds the runtime monitor this configuration describes.
  core::SafetyMonitor make_monitor() const {
    return core::SafetyMonitor(region, lateral_threshold);
  }
};

/// The optional exact fixed-point form of an artifact's network. The
/// declared input domain (|x| <= input_limit, real units) is part of
/// the payload: it is what the overflow admission analysis covered, and
/// serving saturates inputs to it.
struct QuantizedPayload {
  QuantizedPayload(double input_limit, nn::QuantizedNetwork network)
      : input_limit(input_limit), network(std::move(network)) {}

  double input_limit;
  nn::QuantizedNetwork network;
  /// FNV-1a 64 over the quantized section's canonical text — the
  /// content address of the integer weights, pinned inside (and
  /// independently of) the artifact-level hash.
  std::uint64_t content_hash = 0;
};

/// A versioned, hash-pinned (network + MDN head + monitor config) bundle.
struct ModelArtifact {
  std::string version;     // single token, e.g. "v1" or "mdn-2026-08-08"
  nn::MdnHead head{1, 1};  // raw-output layout of the MDN
  nn::Network network;
  MonitorConfig monitor;
  /// Exact integer twin of `network`, present when the artifact was
  /// quantized before registration.
  std::optional<QuantizedPayload> quantized;
  /// FNV-1a 64 over the serialized payload; filled by save/load.
  std::uint64_t content_hash = 0;

  /// Materializes the predictor this artifact describes (copies the
  /// network; reload-path cost, not hot-path cost).
  core::TrainedPredictor predictor() const;
};

/// Bundles a trained predictor + monitor config under a version label.
/// `version` must be a single non-empty token (no whitespace).
ModelArtifact make_artifact(std::string version,
                            const core::TrainedPredictor& predictor,
                            MonitorConfig monitor);

/// Quantizes the artifact's float network at `frac_bits` over the domain
/// |x| <= input_limit, runs the packed engine's admission analysis
/// (int16 weights, int32 activations, int64 accumulators — typed
/// QuantizeError if any fails), and attaches the result as the
/// artifact's quantized payload. Returns the payload's content hash.
std::uint64_t attach_quantized(ModelArtifact& artifact, int frac_bits,
                               double input_limit);

/// On-disk encoding of an artifact. The canonical payload — and hence
/// the content hash — is the same either way; only the container
/// differs.
enum class ArtifactEncoding {
  kPlain,   // v1/v2: canonical text, checksum trailer
  kPacked,  // v3: safenn-pack blob, checksum (of the plain payload) up
            // front
};

/// Writes `artifact` in the "safenn-artifact v1" text format (v2 when a
/// quantized payload is attached, v3 when kPacked is requested) and
/// returns the content hash it recorded (also assigned to
/// artifact.content_hash by the non-const overloads below). The hash is
/// always over the uncompressed canonical payload.
std::uint64_t save_artifact(std::ostream& os, const ModelArtifact& artifact,
                            ArtifactEncoding encoding = ArtifactEncoding::kPlain);
ModelArtifact load_artifact(std::istream& is);

void save_artifact_file(const std::string& path, ModelArtifact& artifact,
                        ArtifactEncoding encoding = ArtifactEncoding::kPlain);
ModelArtifact load_artifact_file(const std::string& path);

}  // namespace safenn::registry
