// Versioned model artifacts.
//
// The paper's certification argument is about the *deployed artifact*:
// the network that serves traffic must be the one that was trained,
// verified, and shielded — and that link must survive redeployment. A
// ModelArtifact bundles everything the serving runtime needs to stand up
// a shielded model — the serialized network (nn/serialize v2, itself
// checksummed), the MDN head layout, and the safety-monitor
// configuration (assumption region + lateral threshold) — under a
// version label and an artifact-level content hash over the byte stream.
// Loading re-hashes and refuses anything that does not match bit for
// bit: a corrupt, truncated, or tampered artifact is rejected with a
// typed error, never partially loaded, never served.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "core/monitor.hpp"
#include "core/pipeline.hpp"
#include "registry/error.hpp"

namespace safenn::registry {

/// The SafetyMonitor configuration an artifact deploys with: the shield
/// is part of the model, not of the server — swapping models swaps the
/// monitored region and threshold with them.
struct MonitorConfig {
  verify::InputRegion region;
  double lateral_threshold = 0.0;

  /// Builds the runtime monitor this configuration describes.
  core::SafetyMonitor make_monitor() const {
    return core::SafetyMonitor(region, lateral_threshold);
  }
};

/// A versioned, hash-pinned (network + MDN head + monitor config) bundle.
struct ModelArtifact {
  std::string version;     // single token, e.g. "v1" or "mdn-2026-08-08"
  nn::MdnHead head{1, 1};  // raw-output layout of the MDN
  nn::Network network;
  MonitorConfig monitor;
  /// FNV-1a 64 over the serialized payload; filled by save/load.
  std::uint64_t content_hash = 0;

  /// Materializes the predictor this artifact describes (copies the
  /// network; reload-path cost, not hot-path cost).
  core::TrainedPredictor predictor() const;
};

/// Bundles a trained predictor + monitor config under a version label.
/// `version` must be a single non-empty token (no whitespace).
ModelArtifact make_artifact(std::string version,
                            const core::TrainedPredictor& predictor,
                            MonitorConfig monitor);

/// Writes `artifact` in the "safenn-artifact v1" text format and returns
/// the content hash it recorded (also assigned to artifact.content_hash
/// by the non-const overloads below).
std::uint64_t save_artifact(std::ostream& os, const ModelArtifact& artifact);
ModelArtifact load_artifact(std::istream& is);

void save_artifact_file(const std::string& path, ModelArtifact& artifact);
ModelArtifact load_artifact_file(const std::string& path);

}  // namespace safenn::registry
