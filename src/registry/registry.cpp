#include "registry/registry.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "common/log.hpp"

namespace safenn::registry {

namespace fs = std::filesystem;

ModelRegistry::ModelRegistry(std::string directory)
    : directory_(std::move(directory)) {
  std::error_code ec;
  fs::create_directories(directory_, ec);
  if (ec) {
    throw RegistryError(RegistryError::Kind::kIo,
                        "ModelRegistry: cannot create directory '" +
                            directory_ + "': " + ec.message());
  }
}

std::string ModelRegistry::path_for(const std::string& version) const {
  return (fs::path(directory_) / (version + kExtension)).string();
}

bool ModelRegistry::contains(const std::string& version) const {
  std::error_code ec;
  return fs::exists(path_for(version), ec) && !ec;
}

std::string ModelRegistry::save(ModelArtifact& artifact) {
  require(!artifact.version.empty(),
          "ModelRegistry::save: artifact has no version");
  const std::string path = path_for(artifact.version);
  if (contains(artifact.version)) {
    throw RegistryError(
        RegistryError::Kind::kDuplicateVersion,
        "ModelRegistry::save: version '" + artifact.version +
            "' already published (artifacts are immutable; bump the "
            "version)");
  }
  save_artifact_file(path, artifact);
  log_info("registry: published ", artifact.version, " (hash ",
           artifact.content_hash, ") at ", path);
  return path;
}

ModelArtifact ModelRegistry::load(const std::string& version) const {
  if (!contains(version)) {
    throw RegistryError(RegistryError::Kind::kNotFound,
                        "ModelRegistry::load: no artifact for version '" +
                            version + "' in " + directory_);
  }
  ModelArtifact artifact = load_artifact_file(path_for(version));
  if (artifact.version != version) {
    throw RegistryError(
        RegistryError::Kind::kBadArtifact,
        "ModelRegistry::load: file " + path_for(version) +
            " declares version '" + artifact.version + "'");
  }
  return artifact;
}

std::vector<std::string> ModelRegistry::list() const {
  std::vector<std::string> versions;
  std::error_code ec;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(directory_, ec)) {
    if (!entry.is_regular_file()) continue;
    const fs::path& p = entry.path();
    if (p.extension() != kExtension) continue;
    versions.push_back(p.stem().string());
  }
  if (ec) {
    throw RegistryError(RegistryError::Kind::kIo,
                        "ModelRegistry::list: cannot iterate '" + directory_ +
                            "': " + ec.message());
  }
  std::sort(versions.begin(), versions.end());
  return versions;
}

ModelRegistry::ScanResult ModelRegistry::load_all() const {
  ScanResult result;
  for (const std::string& version : list()) {
    try {
      result.artifacts.push_back(load(version));
    } catch (const RegistryError& e) {
      result.rejected.push_back(path_for(version) + ": [" +
                                to_string(e.kind()) + "] " + e.what());
      log_warn("registry: rejected ", path_for(version), " (",
               to_string(e.kind()), ")");
    }
  }
  return result;
}

}  // namespace safenn::registry
