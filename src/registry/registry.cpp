#include "registry/registry.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "common/log.hpp"

namespace safenn::registry {

namespace fs = std::filesystem;

namespace {

bool file_exists(const std::string& path) {
  std::error_code ec;
  return fs::exists(path, ec) && !ec;
}

}  // namespace

ModelRegistry::ModelRegistry(std::string directory)
    : directory_(std::move(directory)) {
  std::error_code ec;
  fs::create_directories(directory_, ec);
  if (ec) {
    throw RegistryError(RegistryError::Kind::kIo,
                        "ModelRegistry: cannot create directory '" +
                            directory_ + "': " + ec.message());
  }
}

std::string ModelRegistry::path_for(const std::string& version,
                                    ArtifactEncoding encoding) const {
  const char* ext =
      encoding == ArtifactEncoding::kPacked ? kPackedExtension : kExtension;
  return (fs::path(directory_) / (version + ext)).string();
}

std::string ModelRegistry::path_for(const std::string& version) const {
  const std::string plain = path_for(version, ArtifactEncoding::kPlain);
  if (file_exists(plain)) return plain;
  const std::string packed = path_for(version, ArtifactEncoding::kPacked);
  if (file_exists(packed)) return packed;
  return plain;
}

bool ModelRegistry::contains(const std::string& version) const {
  return file_exists(path_for(version, ArtifactEncoding::kPlain)) ||
         file_exists(path_for(version, ArtifactEncoding::kPacked));
}

std::string ModelRegistry::save(ModelArtifact& artifact,
                                ArtifactEncoding encoding) {
  require(!artifact.version.empty(),
          "ModelRegistry::save: artifact has no version");
  if (contains(artifact.version)) {
    throw RegistryError(
        RegistryError::Kind::kDuplicateVersion,
        "ModelRegistry::save: version '" + artifact.version +
            "' already published (artifacts are immutable; bump the "
            "version)");
  }
  const std::string path = path_for(artifact.version, encoding);
  save_artifact_file(path, artifact, encoding);
  log_info("registry: published ", artifact.version, " (hash ",
           artifact.content_hash, ") at ", path);
  return path;
}

ModelArtifact ModelRegistry::load(const std::string& version) const {
  const bool plain = file_exists(path_for(version, ArtifactEncoding::kPlain));
  const bool packed =
      file_exists(path_for(version, ArtifactEncoding::kPacked));
  if (!plain && !packed) {
    throw RegistryError(RegistryError::Kind::kNotFound,
                        "ModelRegistry::load: no artifact for version '" +
                            version + "' in " + directory_);
  }
  if (plain && packed) {
    throw RegistryError(
        RegistryError::Kind::kDuplicateVersion,
        "ModelRegistry::load: version '" + version +
            "' published under both encodings (" + kExtension + " and " +
            kPackedExtension + ") — cannot tell which bytes are canonical");
  }
  const std::string path = path_for(
      version, plain ? ArtifactEncoding::kPlain : ArtifactEncoding::kPacked);
  ModelArtifact artifact = load_artifact_file(path);
  if (artifact.version != version) {
    throw RegistryError(RegistryError::Kind::kBadArtifact,
                        "ModelRegistry::load: file " + path +
                            " declares version '" + artifact.version + "'");
  }
  return artifact;
}

std::vector<std::string> ModelRegistry::list() const {
  std::vector<std::string> versions;
  std::error_code ec;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(directory_, ec)) {
    if (!entry.is_regular_file()) continue;
    const fs::path& p = entry.path();
    if (p.extension() != kExtension && p.extension() != kPackedExtension) {
      continue;
    }
    versions.push_back(p.stem().string());
  }
  if (ec) {
    throw RegistryError(RegistryError::Kind::kIo,
                        "ModelRegistry::list: cannot iterate '" + directory_ +
                            "': " + ec.message());
  }
  std::sort(versions.begin(), versions.end());
  versions.erase(std::unique(versions.begin(), versions.end()),
                 versions.end());
  return versions;
}

ModelRegistry::ScanResult ModelRegistry::load_all() const {
  ScanResult result;
  for (const std::string& version : list()) {
    try {
      result.artifacts.push_back(load(version));
    } catch (const RegistryError& e) {
      result.rejected.push_back(path_for(version) + ": [" +
                                to_string(e.kind()) + "] " + e.what());
      log_warn("registry: rejected ", path_for(version), " (",
               to_string(e.kind()), ")");
    }
  }
  return result;
}

}  // namespace safenn::registry
