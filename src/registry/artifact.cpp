#include "registry/artifact.hpp"

#include <cctype>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/hash.hpp"
#include "nn/serialize.hpp"

namespace safenn::registry {
namespace {

constexpr const char* kMagic = "safenn-artifact";
constexpr const char* kVersion = "v1";
constexpr const char* kChecksumMarker = "artifact-checksum ";

[[noreturn]] void fail(RegistryError::Kind kind, const std::string& what) {
  throw RegistryError(kind, "load_artifact: " + what);
}

void check(bool cond, const std::string& what) {
  if (!cond) fail(RegistryError::Kind::kBadArtifact, what);
}

const char* relation_name(lp::Relation r) {
  switch (r) {
    case lp::Relation::kLe: return "le";
    case lp::Relation::kGe: return "ge";
    case lp::Relation::kEq: return "eq";
  }
  return "?";
}

lp::Relation relation_from_name(const std::string& name) {
  if (name == "le") return lp::Relation::kLe;
  if (name == "ge") return lp::Relation::kGe;
  if (name == "eq") return lp::Relation::kEq;
  fail(RegistryError::Kind::kBadArtifact,
       "unknown constraint relation '" + name + "'");
}

bool is_single_token(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

/// Everything between the header line and the checksum trailer — the
/// byte range the content hash covers.
std::string payload_text(const ModelArtifact& artifact) {
  std::ostringstream os;
  os << std::setprecision(17);
  os << "version " << artifact.version << '\n';
  os << "mdn " << artifact.head.components() << ' ' << artifact.head.dims()
     << '\n';
  os << "monitor-threshold " << artifact.monitor.lateral_threshold << '\n';
  const verify::InputRegion& region = artifact.monitor.region;
  os << "region-box " << region.box.size() << '\n';
  for (const verify::Interval& iv : region.box) {
    os << iv.lo << ' ' << iv.hi << '\n';
  }
  os << "region-constraints " << region.constraints.size() << '\n';
  for (const verify::InputConstraint& c : region.constraints) {
    os << c.terms.size();
    for (const auto& [idx, coeff] : c.terms) os << ' ' << idx << ' ' << coeff;
    os << ' ' << relation_name(c.relation) << ' ' << c.rhs << '\n';
  }
  // The embedded network text is the v2 serialized form verbatim — it
  // carries its own checksum, so the network is double-pinned.
  os << "network\n" << nn::network_to_string(artifact.network);
  return os.str();
}

ModelArtifact parse_payload(const std::string& payload) {
  std::istringstream is(payload);
  std::string token;
  ModelArtifact artifact;

  is >> token;
  check(token == "version", "expected 'version'");
  is >> artifact.version;
  check(is.good() && is_single_token(artifact.version), "bad version token");

  is >> token;
  check(token == "mdn", "expected 'mdn'");
  std::size_t components = 0, dims = 0;
  is >> components >> dims;
  check(is.good() && components > 0 && dims > 0, "bad mdn head shape");
  artifact.head = nn::MdnHead(components, dims);

  is >> token;
  check(token == "monitor-threshold", "expected 'monitor-threshold'");
  is >> artifact.monitor.lateral_threshold;
  check(!is.fail(), "bad monitor threshold");

  is >> token;
  check(token == "region-box", "expected 'region-box'");
  std::size_t box_dims = 0;
  is >> box_dims;
  check(is.good() && box_dims > 0, "bad region box size");
  artifact.monitor.region.box.resize(box_dims);
  for (verify::Interval& iv : artifact.monitor.region.box) {
    is >> iv.lo >> iv.hi;
    check(!is.fail() && iv.lo <= iv.hi, "bad region interval");
  }

  is >> token;
  check(token == "region-constraints", "expected 'region-constraints'");
  std::size_t num_constraints = 0;
  is >> num_constraints;
  check(!is.fail(), "bad constraint count");
  artifact.monitor.region.constraints.resize(num_constraints);
  for (verify::InputConstraint& c : artifact.monitor.region.constraints) {
    std::size_t terms = 0;
    is >> terms;
    check(is.good() && terms > 0, "bad constraint term count");
    c.terms.resize(terms);
    for (auto& [idx, coeff] : c.terms) {
      is >> idx >> coeff;
      check(!is.fail() && idx >= 0, "bad constraint term");
    }
    std::string relation;
    is >> relation >> c.rhs;
    check(!is.fail(), "bad constraint relation/rhs");
    c.relation = relation_from_name(relation);
  }

  is >> token;
  check(token == "network", "expected 'network'");
  // Rest of the payload (after the marker's newline) is network v2 text.
  is.get();  // consume '\n'
  std::ostringstream rest;
  rest << is.rdbuf();
  try {
    artifact.network = nn::network_from_string(rest.str());
  } catch (const nn::SerializeError& e) {
    fail(RegistryError::Kind::kBadArtifact,
         std::string("embedded network rejected: ") + e.what());
  }
  check(artifact.network.output_size() == artifact.head.raw_output_size(),
        "network output width does not match mdn head layout");
  check(artifact.network.input_size() == artifact.monitor.region.dims(),
        "network input width does not match monitor region");
  return artifact;
}

}  // namespace

core::TrainedPredictor ModelArtifact::predictor() const {
  core::TrainedPredictor p;
  p.network = network;
  p.head = head;
  return p;
}

ModelArtifact make_artifact(std::string version,
                            const core::TrainedPredictor& predictor,
                            MonitorConfig monitor) {
  require(is_single_token(version),
          "make_artifact: version must be a non-empty whitespace-free token");
  require(predictor.network.input_size() == monitor.region.dims(),
          "make_artifact: monitor region dims != network input width");
  ModelArtifact artifact;
  artifact.version = std::move(version);
  artifact.head = predictor.head;
  artifact.network = predictor.network;
  artifact.monitor = std::move(monitor);
  return artifact;
}

std::uint64_t save_artifact(std::ostream& os, const ModelArtifact& artifact) {
  const std::string payload = payload_text(artifact);
  const std::uint64_t hash = fnv1a64(payload);
  os << kMagic << ' ' << kVersion << '\n'
     << payload << kChecksumMarker << hex64(hash) << '\n';
  return hash;
}

ModelArtifact load_artifact(std::istream& is) {
  std::ostringstream buffer;
  buffer << is.rdbuf();
  const std::string text = buffer.str();

  const std::size_t header_end = text.find('\n');
  check(header_end != std::string::npos, "missing header line");
  {
    std::istringstream header(text.substr(0, header_end));
    std::string magic, version;
    header >> magic >> version;
    check(magic == kMagic, "not a safenn-artifact file");
    check(version == kVersion,
          "unsupported artifact format version '" + version + "'");
  }

  const std::size_t marker_pos =
      text.rfind(std::string("\n") + kChecksumMarker);
  check(marker_pos != std::string::npos && marker_pos > header_end,
        "missing artifact-checksum trailer (truncated file?)");
  std::string recorded_hex = text.substr(
      marker_pos + 1 + std::string(kChecksumMarker).size());
  while (!recorded_hex.empty() &&
         (recorded_hex.back() == '\n' || recorded_hex.back() == '\r')) {
    recorded_hex.pop_back();
  }
  std::uint64_t recorded = 0;
  try {
    recorded = parse_hex64(recorded_hex);
  } catch (const Error&) {
    fail(RegistryError::Kind::kBadArtifact, "unparseable checksum value");
  }

  const std::string payload =
      text.substr(header_end + 1, marker_pos - header_end);
  const std::uint64_t actual = fnv1a64(payload);
  if (actual != recorded) {
    fail(RegistryError::Kind::kHashMismatch,
         "content hash " + hex64(actual) + " != recorded " + recorded_hex);
  }

  ModelArtifact artifact = parse_payload(payload);
  artifact.content_hash = actual;
  return artifact;
}

void save_artifact_file(const std::string& path, ModelArtifact& artifact) {
  std::ofstream os(path);
  if (!os.is_open()) {
    throw RegistryError(RegistryError::Kind::kIo,
                        "save_artifact_file: cannot open '" + path + "'");
  }
  artifact.content_hash = save_artifact(os, artifact);
  if (!os.good()) {
    throw RegistryError(RegistryError::Kind::kIo,
                        "save_artifact_file: write failure on '" + path + "'");
  }
}

ModelArtifact load_artifact_file(const std::string& path) {
  std::ifstream is(path);
  if (!is.is_open()) {
    throw RegistryError(RegistryError::Kind::kIo,
                        "load_artifact_file: cannot open '" + path + "'");
  }
  return load_artifact(is);
}

}  // namespace safenn::registry
