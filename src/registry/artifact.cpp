#include "registry/artifact.hpp"

#include <cctype>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/compress.hpp"
#include "common/hash.hpp"
#include "nn/qengine.hpp"
#include "nn/serialize.hpp"

namespace safenn::registry {
namespace {

constexpr const char* kMagic = "safenn-artifact";
constexpr const char* kVersionPlain = "v1";
constexpr const char* kVersionQuantized = "v2";
constexpr const char* kVersionPacked = "v3";
constexpr const char* kChecksumMarker = "artifact-checksum ";
constexpr const char* kPayloadBytesMarker = "payload-bytes ";
constexpr const char* kQuantChecksumToken = "quantized-checksum";

[[noreturn]] void fail(RegistryError::Kind kind, const std::string& what) {
  throw RegistryError(kind, "load_artifact: " + what);
}

void check(bool cond, const std::string& what) {
  if (!cond) fail(RegistryError::Kind::kBadArtifact, what);
}

const char* relation_name(lp::Relation r) {
  switch (r) {
    case lp::Relation::kLe: return "le";
    case lp::Relation::kGe: return "ge";
    case lp::Relation::kEq: return "eq";
  }
  return "?";
}

lp::Relation relation_from_name(const std::string& name) {
  if (name == "le") return lp::Relation::kLe;
  if (name == "ge") return lp::Relation::kGe;
  if (name == "eq") return lp::Relation::kEq;
  fail(RegistryError::Kind::kBadArtifact,
       "unknown constraint relation '" + name + "'");
}

bool is_single_token(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

/// Canonical text of a quantized payload — the byte range its content
/// address covers. Integer weights/biases serialize exactly; the input
/// limit round-trips at 17 significant digits, so re-serializing a
/// parsed payload reproduces these bytes and the hash can be verified
/// structurally on load.
std::string quantized_section_text(const QuantizedPayload& payload) {
  std::ostringstream os;
  os << std::setprecision(17);
  const nn::QuantizedNetwork& qnet = payload.network;
  os << "quantized-frac-bits " << qnet.frac_bits() << '\n';
  os << "quantized-input-limit " << payload.input_limit << '\n';
  os << "quantized-layers " << qnet.num_layers() << '\n';
  for (std::size_t li = 0; li < qnet.num_layers(); ++li) {
    const nn::QuantizedLayer& l = qnet.layer(li);
    os << "qlayer " << l.out_size() << ' ' << l.in_size() << ' '
       << nn::to_string(l.activation) << '\n';
    for (std::size_t r = 0; r < l.out_size(); ++r) {
      for (std::size_t c = 0; c < l.in_size(); ++c) {
        os << l.weights[r][c] << (c + 1 == l.in_size() ? "" : " ");
      }
      os << '\n';
    }
    for (std::size_t r = 0; r < l.out_size(); ++r) {
      os << l.biases[r] << (r + 1 == l.out_size() ? "" : " ");
    }
    os << '\n';
  }
  return os.str();
}

std::optional<QuantizedPayload> parse_quantized_section(std::istream& is) {
  int frac_bits = 0;
  is >> frac_bits;
  check(!is.fail() && frac_bits > 0, "bad quantized frac_bits");

  std::string token;
  is >> token;
  check(token == "quantized-input-limit", "expected 'quantized-input-limit'");
  double input_limit = 0.0;
  is >> input_limit;
  check(!is.fail() && input_limit > 0.0, "bad quantized input limit");

  is >> token;
  check(token == "quantized-layers", "expected 'quantized-layers'");
  std::size_t num_layers = 0;
  is >> num_layers;
  check(is.good() && num_layers > 0, "bad quantized layer count");

  std::vector<nn::QuantizedLayer> layers(num_layers);
  for (nn::QuantizedLayer& l : layers) {
    is >> token;
    check(token == "qlayer", "expected 'qlayer'");
    std::size_t out = 0, in = 0;
    std::string activation;
    is >> out >> in >> activation;
    check(is.good() && out > 0 && in > 0, "bad qlayer shape");
    try {
      l.activation = nn::activation_from_string(activation);
    } catch (const Error&) {
      fail(RegistryError::Kind::kBadArtifact,
           "unknown qlayer activation '" + activation + "'");
    }
    l.weights.assign(out, std::vector<std::int64_t>(in, 0));
    l.biases.assign(out, 0);
    for (auto& row : l.weights) {
      for (auto& w : row) {
        is >> w;
        check(!is.fail(), "bad quantized weight");
      }
    }
    for (auto& b : l.biases) {
      is >> b;
      check(!is.fail(), "bad quantized bias");
    }
  }

  is >> token;
  check(token == kQuantChecksumToken, "expected 'quantized-checksum'");
  std::string recorded_hex;
  is >> recorded_hex;
  check(!is.fail(), "missing quantized checksum value");
  std::uint64_t recorded = 0;
  try {
    recorded = parse_hex64(recorded_hex);
  } catch (const Error&) {
    fail(RegistryError::Kind::kBadArtifact,
         "unparseable quantized checksum value");
  }

  std::optional<QuantizedPayload> payload;
  try {
    payload.emplace(input_limit,
                    nn::QuantizedNetwork(frac_bits, std::move(layers)));
  } catch (const Error& e) {
    fail(RegistryError::Kind::kBadArtifact,
         std::string("quantized payload rejected: ") + e.what());
  }
  // Content-address verification: the canonical re-serialization of what
  // we just parsed must hash to the recorded value bit for bit.
  const std::uint64_t actual = fnv1a64(quantized_section_text(*payload));
  if (actual != recorded) {
    fail(RegistryError::Kind::kHashMismatch,
         "quantized content hash " + hex64(actual) + " != recorded " +
             recorded_hex);
  }
  payload->content_hash = actual;
  return payload;
}

/// Everything between the header line and the checksum trailer — the
/// byte range the content hash covers.
std::string payload_text(const ModelArtifact& artifact) {
  std::ostringstream os;
  os << std::setprecision(17);
  os << "version " << artifact.version << '\n';
  os << "mdn " << artifact.head.components() << ' ' << artifact.head.dims()
     << '\n';
  os << "monitor-threshold " << artifact.monitor.lateral_threshold << '\n';
  const verify::InputRegion& region = artifact.monitor.region;
  os << "region-box " << region.box.size() << '\n';
  for (const verify::Interval& iv : region.box) {
    os << iv.lo << ' ' << iv.hi << '\n';
  }
  os << "region-constraints " << region.constraints.size() << '\n';
  for (const verify::InputConstraint& c : region.constraints) {
    os << c.terms.size();
    for (const auto& [idx, coeff] : c.terms) os << ' ' << idx << ' ' << coeff;
    os << ' ' << relation_name(c.relation) << ' ' << c.rhs << '\n';
  }
  if (artifact.quantized) {
    const std::string qtext = quantized_section_text(*artifact.quantized);
    os << qtext << kQuantChecksumToken << ' ' << hex64(fnv1a64(qtext))
       << '\n';
  }
  // The embedded network text is the v2 serialized form verbatim — it
  // carries its own checksum, so the network is double-pinned.
  os << "network\n" << nn::network_to_string(artifact.network);
  return os.str();
}

ModelArtifact parse_payload(const std::string& payload) {
  std::istringstream is(payload);
  std::string token;
  ModelArtifact artifact;

  is >> token;
  check(token == "version", "expected 'version'");
  is >> artifact.version;
  check(is.good() && is_single_token(artifact.version), "bad version token");

  is >> token;
  check(token == "mdn", "expected 'mdn'");
  std::size_t components = 0, dims = 0;
  is >> components >> dims;
  check(is.good() && components > 0 && dims > 0, "bad mdn head shape");
  artifact.head = nn::MdnHead(components, dims);

  is >> token;
  check(token == "monitor-threshold", "expected 'monitor-threshold'");
  is >> artifact.monitor.lateral_threshold;
  check(!is.fail(), "bad monitor threshold");

  is >> token;
  check(token == "region-box", "expected 'region-box'");
  std::size_t box_dims = 0;
  is >> box_dims;
  check(is.good() && box_dims > 0, "bad region box size");
  artifact.monitor.region.box.resize(box_dims);
  for (verify::Interval& iv : artifact.monitor.region.box) {
    is >> iv.lo >> iv.hi;
    check(!is.fail() && iv.lo <= iv.hi, "bad region interval");
  }

  is >> token;
  check(token == "region-constraints", "expected 'region-constraints'");
  std::size_t num_constraints = 0;
  is >> num_constraints;
  check(!is.fail(), "bad constraint count");
  artifact.monitor.region.constraints.resize(num_constraints);
  for (verify::InputConstraint& c : artifact.monitor.region.constraints) {
    std::size_t terms = 0;
    is >> terms;
    check(is.good() && terms > 0, "bad constraint term count");
    c.terms.resize(terms);
    for (auto& [idx, coeff] : c.terms) {
      is >> idx >> coeff;
      check(!is.fail() && idx >= 0, "bad constraint term");
    }
    std::string relation;
    is >> relation >> c.rhs;
    check(!is.fail(), "bad constraint relation/rhs");
    c.relation = relation_from_name(relation);
  }

  is >> token;
  if (token == "quantized-frac-bits") {
    artifact.quantized = parse_quantized_section(is);
    is >> token;
  }
  check(token == "network", "expected 'network'");
  // Rest of the payload (after the marker's newline) is network v2 text.
  is.get();  // consume '\n'
  std::ostringstream rest;
  rest << is.rdbuf();
  try {
    artifact.network = nn::network_from_string(rest.str());
  } catch (const nn::SerializeError& e) {
    fail(RegistryError::Kind::kBadArtifact,
         std::string("embedded network rejected: ") + e.what());
  }
  check(artifact.network.output_size() == artifact.head.raw_output_size(),
        "network output width does not match mdn head layout");
  check(artifact.network.input_size() == artifact.monitor.region.dims(),
        "network input width does not match monitor region");
  if (artifact.quantized) {
    const nn::QuantizedNetwork& qnet = artifact.quantized->network;
    check(qnet.input_size() == artifact.network.input_size() &&
              qnet.output_size() == artifact.network.output_size(),
          "quantized payload shape does not match the float network");
  }
  return artifact;
}

}  // namespace

core::TrainedPredictor ModelArtifact::predictor() const {
  core::TrainedPredictor p;
  p.network = network;
  p.head = head;
  return p;
}

ModelArtifact make_artifact(std::string version,
                            const core::TrainedPredictor& predictor,
                            MonitorConfig monitor) {
  require(is_single_token(version),
          "make_artifact: version must be a non-empty whitespace-free token");
  require(predictor.network.input_size() == monitor.region.dims(),
          "make_artifact: monitor region dims != network input width");
  ModelArtifact artifact;
  artifact.version = std::move(version);
  artifact.head = predictor.head;
  artifact.network = predictor.network;
  artifact.monitor = std::move(monitor);
  return artifact;
}

std::uint64_t attach_quantized(ModelArtifact& artifact, int frac_bits,
                               double input_limit) {
  nn::QuantizedNetwork qnet =
      nn::QuantizedNetwork::quantize(artifact.network, frac_bits, input_limit);
  // Run the packed engine's full admission analysis now: an artifact
  // that registers with a quantized payload is servable by construction.
  (void)nn::QuantizedEngine(qnet, input_limit,
                            linalg::KernelBackend::kReference);
  artifact.quantized.emplace(input_limit, std::move(qnet));
  artifact.quantized->content_hash =
      fnv1a64(quantized_section_text(*artifact.quantized));
  return artifact.quantized->content_hash;
}

std::uint64_t save_artifact(std::ostream& os, const ModelArtifact& artifact,
                            ArtifactEncoding encoding) {
  const std::string payload = payload_text(artifact);
  const std::uint64_t hash = fnv1a64(payload);
  if (encoding == ArtifactEncoding::kPacked) {
    // v3: checksum (over the UNCOMPRESSED payload) and blob length come
    // before the blob, so the loader never searches binary data for a
    // trailer and truncation is detected by the declared length.
    const std::string blob = compress_text(payload);
    os << kMagic << ' ' << kVersionPacked << '\n'
       << kChecksumMarker << hex64(hash) << '\n'
       << kPayloadBytesMarker << blob.size() << '\n';
    os.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    os << '\n';
    return hash;
  }
  os << kMagic << ' '
     << (artifact.quantized ? kVersionQuantized : kVersionPlain) << '\n'
     << payload << kChecksumMarker << hex64(hash) << '\n';
  return hash;
}

namespace {

/// v3 container: `artifact-checksum` + `payload-bytes` lines, then the
/// length-framed safenn-pack blob holding the canonical payload.
ModelArtifact load_packed(const std::string& text, std::size_t header_end) {
  std::size_t pos = header_end + 1;

  const std::size_t checksum_end = text.find('\n', pos);
  check(checksum_end != std::string::npos, "missing checksum line");
  const std::string checksum_line = text.substr(pos, checksum_end - pos);
  const std::size_t marker_len = std::string(kChecksumMarker).size();
  check(checksum_line.compare(0, marker_len, kChecksumMarker) == 0,
        "expected 'artifact-checksum' line");
  std::uint64_t recorded = 0;
  try {
    recorded = parse_hex64(checksum_line.substr(marker_len));
  } catch (const Error&) {
    fail(RegistryError::Kind::kBadArtifact, "unparseable checksum value");
  }
  pos = checksum_end + 1;

  const std::size_t bytes_end = text.find('\n', pos);
  check(bytes_end != std::string::npos, "missing payload-bytes line");
  const std::string bytes_line = text.substr(pos, bytes_end - pos);
  const std::size_t bytes_marker_len = std::string(kPayloadBytesMarker).size();
  check(bytes_line.compare(0, bytes_marker_len, kPayloadBytesMarker) == 0,
        "expected 'payload-bytes' line");
  std::size_t blob_size = 0;
  try {
    blob_size = std::stoull(bytes_line.substr(bytes_marker_len));
  } catch (const std::exception&) {
    fail(RegistryError::Kind::kBadArtifact, "unparseable payload-bytes value");
  }
  pos = bytes_end + 1;

  check(text.size() - pos >= blob_size,
        "truncated packed payload (declared " + std::to_string(blob_size) +
            " bytes)");
  std::string payload;
  try {
    payload = decompress_text(
        std::string_view(text).substr(pos, blob_size));
  } catch (const Error& e) {
    fail(RegistryError::Kind::kBadArtifact,
         std::string("packed payload rejected: ") + e.what());
  }

  const std::uint64_t actual = fnv1a64(payload);
  if (actual != recorded) {
    fail(RegistryError::Kind::kHashMismatch,
         "content hash " + hex64(actual) + " != recorded " + hex64(recorded));
  }

  ModelArtifact artifact = parse_payload(payload);
  artifact.content_hash = actual;
  return artifact;
}

}  // namespace

ModelArtifact load_artifact(std::istream& is) {
  std::ostringstream buffer;
  buffer << is.rdbuf();
  const std::string text = buffer.str();

  const std::size_t header_end = text.find('\n');
  check(header_end != std::string::npos, "missing header line");
  {
    std::istringstream header(text.substr(0, header_end));
    std::string magic, version;
    header >> magic >> version;
    check(magic == kMagic, "not a safenn-artifact file");
    check(version == kVersionPlain || version == kVersionQuantized ||
              version == kVersionPacked,
          "unsupported artifact format version '" + version + "'");
    if (version == kVersionPacked) return load_packed(text, header_end);
  }

  const std::size_t marker_pos =
      text.rfind(std::string("\n") + kChecksumMarker);
  check(marker_pos != std::string::npos && marker_pos > header_end,
        "missing artifact-checksum trailer (truncated file?)");
  std::string recorded_hex = text.substr(
      marker_pos + 1 + std::string(kChecksumMarker).size());
  while (!recorded_hex.empty() &&
         (recorded_hex.back() == '\n' || recorded_hex.back() == '\r')) {
    recorded_hex.pop_back();
  }
  std::uint64_t recorded = 0;
  try {
    recorded = parse_hex64(recorded_hex);
  } catch (const Error&) {
    fail(RegistryError::Kind::kBadArtifact, "unparseable checksum value");
  }

  const std::string payload =
      text.substr(header_end + 1, marker_pos - header_end);
  const std::uint64_t actual = fnv1a64(payload);
  if (actual != recorded) {
    fail(RegistryError::Kind::kHashMismatch,
         "content hash " + hex64(actual) + " != recorded " + recorded_hex);
  }

  ModelArtifact artifact = parse_payload(payload);
  artifact.content_hash = actual;
  return artifact;
}

void save_artifact_file(const std::string& path, ModelArtifact& artifact,
                        ArtifactEncoding encoding) {
  std::ofstream os(path, std::ios::binary);
  if (!os.is_open()) {
    throw RegistryError(RegistryError::Kind::kIo,
                        "save_artifact_file: cannot open '" + path + "'");
  }
  artifact.content_hash = save_artifact(os, artifact, encoding);
  if (!os.good()) {
    throw RegistryError(RegistryError::Kind::kIo,
                        "save_artifact_file: write failure on '" + path + "'");
  }
}

ModelArtifact load_artifact_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.is_open()) {
    throw RegistryError(RegistryError::Kind::kIo,
                        "load_artifact_file: cannot open '" + path + "'");
  }
  return load_artifact(is);
}

}  // namespace safenn::registry
