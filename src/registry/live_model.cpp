#include "registry/live_model.hpp"

#include "common/error.hpp"

namespace safenn::registry {

ModelSnapshot::ModelSnapshot(std::string version,
                             const core::TrainedPredictor& predictor,
                             const core::SafetyMonitor& monitor,
                             linalg::KernelBackend backend)
    : version_(std::move(version)),
      backend_(backend),
      predictor_(&predictor),
      monitor_(&monitor) {
  require(!version_.empty(), "ModelSnapshot: empty version label");
}

ModelSnapshot::ModelSnapshot(const ModelArtifact& artifact,
                             linalg::KernelBackend backend,
                             linalg::KernelBackend quantized_kernel)
    : version_(artifact.version),
      backend_(backend),
      content_hash_(artifact.content_hash),
      owned_predictor_(std::make_unique<core::TrainedPredictor>(
          artifact.predictor())),
      // In-place construction: SafetyMonitor's atomic counters make it
      // immovable.
      owned_monitor_(std::make_unique<core::SafetyMonitor>(
          artifact.monitor.region, artifact.monitor.lateral_threshold)),
      predictor_(owned_predictor_.get()),
      monitor_(owned_monitor_.get()) {
  require(!version_.empty(), "ModelSnapshot: artifact has no version");
  if (backend_ == linalg::KernelBackend::kQuantized) {
    require(artifact.quantized.has_value(),
            "ModelSnapshot: kQuantized backend requires an artifact with a "
            "quantized payload");
    quantized_hash_ = artifact.quantized->content_hash;
    quantized_engine_ = std::make_unique<const nn::QuantizedEngine>(
        artifact.quantized->network, artifact.quantized->input_limit,
        quantized_kernel);
  }
}

LiveModel::LiveModel(std::shared_ptr<const ModelSnapshot> initial)
    : slot_(std::move(initial)) {
  require(slot_ != nullptr, "LiveModel: null initial snapshot");
}

std::shared_ptr<const ModelSnapshot> LiveModel::current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slot_;
}

std::shared_ptr<const ModelSnapshot> LiveModel::swap(
    std::shared_ptr<const ModelSnapshot> next) {
  require(next != nullptr, "LiveModel::swap: null snapshot");
  std::shared_ptr<const ModelSnapshot> previous;
  {
    std::lock_guard<std::mutex> lock(mu_);
    previous = std::move(slot_);
    slot_ = std::move(next);
  }
  swaps_.fetch_add(1, std::memory_order_relaxed);
  return previous;
}

}  // namespace safenn::registry
