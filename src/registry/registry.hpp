// Directory-backed model registry.
//
// One artifact per file (`<version>.safenn` plain, `<version>.safennz`
// packed) in a flat directory. The registry is the only supported path
// from disk bytes to a servable model: every load re-hashes the payload
// and anything corrupt, truncated, or version-mismatched is rejected
// with a typed RegistryError — `load_all` reports rejects instead of
// returning them, so a sweep over a directory with damaged files yields
// exactly the artifacts that are safe to serve. A version is immutable
// across encodings: publishing it under both extensions is a conflict
// (which bytes are canonical?), so `load`/`load_all` reject
// dual-encoded versions as kDuplicateVersion instead of picking one.
#pragma once

#include <string>
#include <vector>

#include "registry/artifact.hpp"

namespace safenn::registry {

class ModelRegistry {
 public:
  /// Opens (creating if needed) the registry directory.
  explicit ModelRegistry(std::string directory);

  /// Saves the artifact as `<version>.safenn` (or `.safennz` when packed),
  /// assigns its content hash, and returns the file path. Refuses to
  /// overwrite an existing version under *either* encoding
  /// (kDuplicateVersion): artifacts are immutable once published — a new
  /// model is a new version.
  std::string save(ModelArtifact& artifact,
                   ArtifactEncoding encoding = ArtifactEncoding::kPlain);

  /// Loads and validates one version, whichever encoding it was
  /// published under. kNotFound when absent; kDuplicateVersion when the
  /// version exists under both encodings; corrupt or tampered files
  /// raise kHashMismatch/kBadArtifact and are never partially returned.
  ModelArtifact load(const std::string& version) const;

  bool contains(const std::string& version) const;

  /// Sorted, deduplicated list of the versions present under either
  /// encoding (by filename; validity is only established by
  /// load/load_all).
  std::vector<std::string> list() const;

  /// Result of a full-directory sweep: validated artifacts (sorted by
  /// version) plus a `path: reason` line per rejected file.
  struct ScanResult {
    std::vector<ModelArtifact> artifacts;
    std::vector<std::string> rejected;
  };

  /// Loads every artifact file, validating each; damaged files (and
  /// versions published under both encodings) land in `rejected` with
  /// their typed reason and are never returned as artifacts.
  ScanResult load_all() const;

  const std::string& directory() const { return directory_; }

  /// The on-disk path a version resolves to: the file that exists, or
  /// the plain path when the version is absent (publish target).
  std::string path_for(const std::string& version) const;

  /// The on-disk path a version maps to under a specific encoding.
  std::string path_for(const std::string& version,
                       ArtifactEncoding encoding) const;

  static constexpr const char* kExtension = ".safenn";
  static constexpr const char* kPackedExtension = ".safennz";

 private:
  std::string directory_;
};

}  // namespace safenn::registry
