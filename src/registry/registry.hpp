// Directory-backed model registry.
//
// One artifact per file (`<version>.safenn`) in a flat directory. The
// registry is the only supported path from disk bytes to a servable
// model: every load re-hashes the payload and anything corrupt,
// truncated, or version-mismatched is rejected with a typed
// RegistryError — `load_all` reports rejects instead of returning them,
// so a sweep over a directory with damaged files yields exactly the
// artifacts that are safe to serve.
#pragma once

#include <string>
#include <vector>

#include "registry/artifact.hpp"

namespace safenn::registry {

class ModelRegistry {
 public:
  /// Opens (creating if needed) the registry directory.
  explicit ModelRegistry(std::string directory);

  /// Saves the artifact as `<version>.safenn`, assigns its content hash,
  /// and returns the file path. Refuses to overwrite an existing version
  /// (kDuplicateVersion): artifacts are immutable once published — a new
  /// model is a new version.
  std::string save(ModelArtifact& artifact);

  /// Loads and validates one version. kNotFound when absent; corrupt or
  /// tampered files raise kHashMismatch/kBadArtifact and are never
  /// partially returned.
  ModelArtifact load(const std::string& version) const;

  bool contains(const std::string& version) const;

  /// Sorted list of the versions present (by filename; validity is only
  /// established by load/load_all).
  std::vector<std::string> list() const;

  /// Result of a full-directory sweep: validated artifacts (sorted by
  /// version) plus a `path: reason` line per rejected file.
  struct ScanResult {
    std::vector<ModelArtifact> artifacts;
    std::vector<std::string> rejected;
  };

  /// Loads every `.safenn` file, validating each; damaged files land in
  /// `rejected` with their typed reason and are never returned as
  /// artifacts.
  ScanResult load_all() const;

  const std::string& directory() const { return directory_; }

  /// The on-disk path a version maps to.
  std::string path_for(const std::string& version) const;

  static constexpr const char* kExtension = ".safenn";

 private:
  std::string directory_;
};

}  // namespace safenn::registry
