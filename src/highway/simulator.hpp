// Multi-lane ring-road highway simulator.
//
// Deterministic (seeded) traffic: IDM longitudinal dynamics per vehicle,
// rule-based lane changes executed over a finite duration, neighbor
// queries per orientation (the paper predictor's "parameters of its
// nearest surrounding vehicles for each orientation"), and optional
// risky-maneuver injection for the data-validation experiments.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "highway/idm.hpp"
#include "highway/lane_change.hpp"
#include "highway/vehicle.hpp"

namespace safenn::highway {

struct RoadCondition {
  double friction = 1.0;      // 0..1 (1 = dry)
  double curvature = 0.0;     // -1..1 (signed, normalized)
  double speed_limit = 33.0;  // m/s
};

struct SimConfig {
  int num_lanes = 3;
  double road_length = 1000.0;  // m (ring)
  int num_vehicles = 24;
  double dt = 0.1;  // s
  double min_speed = 22.0, max_speed = 36.0;  // initial speeds
  IdmParams idm;
  LaneChangeParams lane_change;
  RoadCondition road;
  /// Per-step probability that a vehicle attempts an unsafe ("risky")
  /// lane change, ignoring the safety gaps. 0 disables.
  double risky_probability = 0.0;
  /// Lateral speed multiplier for risky maneuvers (they are abrupt).
  double risky_lateral_factor = 2.0;
  std::uint64_t seed = 1;
};

class HighwaySim {
 public:
  explicit HighwaySim(SimConfig config);

  /// Advances the world by one dt.
  void step();

  /// Advances by n steps.
  void run(int n);

  const SimConfig& config() const { return config_; }
  const std::vector<VehicleState>& vehicles() const { return vehicles_; }
  const VehicleState& vehicle(int id) const;
  std::size_t step_count() const { return steps_; }

  /// Nearest neighbors of `ego_id` in all six orientations.
  std::vector<NeighborObservation> neighbors(int ego_id) const;

  /// Gap situation in the lane `ego.lane + direction` (+1 = left).
  TargetLaneGaps target_lane_gaps(int ego_id, int direction) const;

  /// Signed ring distance from a to b going forward (0 <= d < length).
  double forward_distance(double from_s, double to_s) const;

  /// True when any two vehicles in the same lane overlap longitudinally
  /// (collision) — simulation health check used by tests.
  bool any_collision() const;

  /// Recent speed/accel history of a vehicle (most recent first). Sized
  /// by the encoder's history lengths; zero-padded early in the run.
  const std::vector<double>& speed_history(int id) const;
  const std::vector<double>& accel_history(int id) const;

  /// True when the vehicle executed a risky maneuver on the latest step.
  bool was_risky(int id) const;

 private:
  static constexpr std::size_t kHistoryLength = 16;

  SimConfig config_;
  Rng rng_;
  std::vector<VehicleState> vehicles_;
  std::vector<std::vector<double>> speed_hist_;
  std::vector<std::vector<double>> accel_hist_;
  std::vector<char> risky_flag_;
  std::size_t steps_ = 0;

  const VehicleState* front_vehicle(const VehicleState& ego, int lane,
                                    double* gap_out) const;
  const VehicleState* rear_vehicle(const VehicleState& ego, int lane,
                                   double* gap_out) const;
  NeighborObservation observe(const VehicleState& ego,
                              const VehicleState* other, double gap) const;
};

}  // namespace safenn::highway
