// Safety rules connecting the highway domain to verification and data
// validation.
//
// The case-study property (paper Sec. III): "if there is a vehicle in the
// left of the ego vehicle, the predictor never suggests a large left
// velocity". Here that sentence is turned into (a) an InputRegion for the
// MILP/interval verifiers, (b) a SamplePredicate for the data validator,
// and (c) a ready-made SafetyProperty against an MDN predictor's
// component-mean outputs.
#pragma once

#include "data/validation.hpp"
#include "highway/scene_encoder.hpp"
#include "nn/mdn.hpp"
#include "verify/property.hpp"

namespace safenn::highway {

/// Gap (normalized) below which a left-lane vehicle counts as "in the
/// left of the ego vehicle".
constexpr double kLeftOccupiedMaxGap = 0.25;  // 25 m at kGapScale=100

/// Input region: a vehicle present in the left-front slot within the
/// occupied gap, everything else free over the encoder's domain.
verify::InputRegion make_vehicle_on_left_region(const SceneEncoder& encoder);

/// Same condition over a caller-provided base box (e.g. the observed data
/// domain) instead of the full encoder domain. The left-front presence
/// and gap dimensions are pinned regardless of the base box.
verify::InputRegion make_vehicle_on_left_region(const SceneEncoder& encoder,
                                                verify::Box base_box);

/// Feature-wise [min, max] of a dataset's inputs, padded by `padding` and
/// intersected with the encoder domain. Verifying over the observed data
/// domain (rather than every encodable vector) is the standard input-
/// region choice in NN verification and keeps the MILP tractable.
verify::Box data_domain_box(const data::Dataset& data,
                            const SceneEncoder& encoder,
                            double padding = 0.02);

/// Point predicate version of the same condition (for data validation
/// and runtime monitoring).
bool vehicle_on_left(const SceneEncoder& encoder, const linalg::Vector& x);

/// Validation rule: when a vehicle is on the left, the labelled lateral
/// velocity must not exceed `max_left_velocity` (m/s, + = left). This is
/// the paper's "no risky driving in the training data" rule.
data::ValidationRule no_risky_left_move_rule(const SceneEncoder& encoder,
                                             double max_left_velocity);

/// Safety property for one mixture component k of an MDN predictor:
/// mean lateral velocity of component k stays <= threshold over the
/// vehicle-on-left region.
verify::SafetyProperty component_lateral_velocity_property(
    const SceneEncoder& encoder, const nn::MdnHead& head, std::size_t k,
    double threshold);

}  // namespace safenn::highway
