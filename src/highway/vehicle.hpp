// Vehicle state for the highway simulation.
#pragma once

#include <cstddef>

namespace safenn::highway {

/// Physical/layout constants shared across the simulator and encoder.
constexpr double kLaneWidth = 3.5;          // m
constexpr double kDefaultVehicleLength = 4.5;  // m

/// One vehicle on the ring road. Longitudinal position `s` wraps at the
/// road length; `lane` is integral with a continuous `lateral` offset
/// during lane changes.
struct VehicleState {
  int id = -1;
  int lane = 0;              // current lane index (0 = rightmost)
  double s = 0.0;            // longitudinal position [m]
  double v = 0.0;            // speed [m/s]
  double a = 0.0;            // longitudinal acceleration [m/s^2]
  double length = kDefaultVehicleLength;

  // Lane-change execution state.
  bool changing_lane = false;
  int target_lane = 0;
  double lateral_progress = 0.0;  // 0..1 within the maneuver
  double lateral_velocity = 0.0;  // m/s, positive = toward higher lane (left)
};

/// Neighbor slots around an ego vehicle, paper Fig. 1 style: the nearest
/// vehicle for each orientation.
enum class NeighborSlot : std::size_t {
  kLeftFront = 0,
  kLeftRear = 1,
  kSameFront = 2,
  kSameRear = 3,
  kRightFront = 4,
  kRightRear = 5,
};

constexpr std::size_t kNumNeighborSlots = 6;

const char* neighbor_slot_name(NeighborSlot slot);

/// Relative observation of one neighbor (absent when `present` is false).
struct NeighborObservation {
  bool present = false;
  double gap = 0.0;        // bumper-to-bumper longitudinal gap [m]
  double rel_speed = 0.0;  // v_other - v_ego [m/s]
  double abs_speed = 0.0;  // [m/s]
  double accel = 0.0;      // [m/s^2]
  double length = 0.0;     // [m]
};

}  // namespace safenn::highway
