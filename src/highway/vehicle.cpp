#include "highway/vehicle.hpp"

namespace safenn::highway {

const char* neighbor_slot_name(NeighborSlot slot) {
  switch (slot) {
    case NeighborSlot::kLeftFront: return "left_front";
    case NeighborSlot::kLeftRear: return "left_rear";
    case NeighborSlot::kSameFront: return "same_front";
    case NeighborSlot::kSameRear: return "same_rear";
    case NeighborSlot::kRightFront: return "right_front";
    case NeighborSlot::kRightRear: return "right_rear";
  }
  return "?";
}

}  // namespace safenn::highway
