// Intelligent Driver Model (IDM) longitudinal dynamics.
//
// Standard car-following model (Treiber et al.) used as the surrounding-
// traffic substrate; the paper's predictor was trained on real highway
// scenes, which we replace with IDM traffic per DESIGN.md.
#pragma once

namespace safenn::highway {

struct IdmParams {
  double desired_speed = 30.0;      // v0 [m/s]
  double time_headway = 1.5;        // T [s]
  double max_accel = 1.5;           // a [m/s^2]
  double comfortable_decel = 2.0;   // b [m/s^2]
  double min_gap = 2.0;             // s0 [m]
  double accel_exponent = 4.0;      // delta
};

/// IDM acceleration for a vehicle at speed `v` with bumper gap `gap` to
/// its leader and closing speed `closing` (= v - v_leader). Pass a huge
/// gap when no leader exists.
double idm_acceleration(const IdmParams& p, double v, double gap,
                        double closing);

/// Free-road acceleration (no leader).
double idm_free_acceleration(const IdmParams& p, double v);

}  // namespace safenn::highway
