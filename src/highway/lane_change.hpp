// Rule-based lane-change decisions (MOBIL-flavoured).
//
// A change is considered when the incentive (IDM acceleration gain in the
// target lane) exceeds a threshold, and executed only when the target-
// lane gaps are safe. The *risky* variant skips the safety check — it
// generates the contaminated training episodes that the Sec. II(C) data
// validation must catch.
#pragma once

#include "highway/idm.hpp"
#include "highway/vehicle.hpp"

namespace safenn::highway {

struct LaneChangeParams {
  double min_front_gap = 8.0;        // m, required ahead in target lane
  double min_rear_gap = 6.0;         // m, required behind in target lane
  double incentive_threshold = 0.3;  // m/s^2 gain required
  double duration = 2.0;             // s to cross one lane
};

/// Lateral speed while executing a normal lane change.
double lane_change_lateral_speed(const LaneChangeParams& p);

enum class LaneChangeDecision { kStay, kLeft, kRight };

/// Gap situation in a candidate target lane.
struct TargetLaneGaps {
  bool lane_exists = false;
  NeighborObservation front;
  NeighborObservation rear;
};

/// Safety check for moving into the given lane.
bool lane_change_safe(const LaneChangeParams& p, const TargetLaneGaps& gaps);

/// Incentive: IDM acceleration the vehicle would enjoy behind the target
/// lane's front vehicle, minus its current acceleration.
double lane_change_incentive(const IdmParams& idm, double v,
                             const NeighborObservation& current_front,
                             const TargetLaneGaps& target);

/// Full decision given both side options; prefers the larger incentive.
LaneChangeDecision decide_lane_change(const IdmParams& idm,
                                      const LaneChangeParams& p, double v,
                                      const NeighborObservation& current_front,
                                      const TargetLaneGaps& left,
                                      const TargetLaneGaps& right,
                                      bool ignore_safety = false);

}  // namespace safenn::highway
