// Scenario presets for simulation and data generation.
#pragma once

#include <string>
#include <vector>

#include "highway/simulator.hpp"

namespace safenn::highway {

enum class TrafficDensity { kLight, kMedium, kDense };

/// Named scenario: a SimConfig plus metadata for reports.
struct Scenario {
  std::string name;
  SimConfig sim;
};

/// Standard scenario matching the case study: 3-lane highway.
Scenario make_scenario(TrafficDensity density, std::uint64_t seed,
                       double risky_probability = 0.0);

/// A battery of scenarios spanning densities and road conditions, used by
/// the dataset builder to diversify training data.
std::vector<Scenario> standard_scenario_battery(std::uint64_t seed,
                                                double risky_probability = 0.0);

}  // namespace safenn::highway
