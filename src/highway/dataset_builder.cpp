#include "highway/dataset_builder.hpp"

#include <algorithm>
#include <functional>
#include <utility>
#include <vector>

#include "common/task_pool.hpp"

namespace safenn::highway {
namespace {

/// Everything one scenario contributes, produced independently of every
/// other scenario: HighwaySim owns its own Rng seeded from the battery
/// (scenario seeds are fixed before any worker starts), so a scenario's
/// samples are a pure function of its Scenario record.
struct ScenarioSlot {
  std::vector<std::pair<linalg::Vector, linalg::Vector>> samples;
  std::vector<int> repeats;  // oversampling factor per sample
  std::size_t lane_change_samples = 0;
  std::size_t risky_samples = 0;
};

void simulate_scenario(const Scenario& scenario, const SceneEncoder& encoder,
                       const DatasetBuildConfig& config, ScenarioSlot& slot) {
  HighwaySim sim(scenario.sim);
  sim.run(config.warmup_steps);
  for (int step = 0; step < config.sample_steps; ++step) {
    sim.step();
    if (step % config.sample_every != 0) continue;
    for (const VehicleState& ego : sim.vehicles()) {
      linalg::Vector x = encoder.encode(sim, ego.id);
      linalg::Vector action(kActionDims);
      action[kActionLateral] = ego.lateral_velocity;
      action[kActionAccel] = ego.a;

      const bool lane_change_now =
          ego.changing_lane && ego.lateral_progress <= 0.11;
      const bool risky = sim.was_risky(ego.id);
      if (risky) ++slot.risky_samples;
      if (lane_change_now) ++slot.lane_change_samples;

      slot.repeats.push_back(lane_change_now ? config.lane_change_repeat : 1);
      slot.samples.emplace_back(std::move(x), std::move(action));
    }
  }
}

}  // namespace

BuiltDataset build_highway_dataset(const SceneEncoder& encoder,
                                   const DatasetBuildConfig& config) {
  BuiltDataset out;
  out.data = data::Dataset(kSceneFeatures, kActionDims);

  const auto scenarios =
      standard_scenario_battery(config.seed, config.risky_probability);

  // Simulate scenarios concurrently into pre-sized slots...
  std::vector<ScenarioSlot> slots(scenarios.size());
  TaskPool pool(static_cast<std::size_t>(std::max(1, config.num_workers)));
  std::vector<std::function<void()>> tasks;
  tasks.reserve(scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    tasks.push_back([&, i] {
      simulate_scenario(scenarios[i], encoder, config, slots[i]);
    });
  }
  pool.run(tasks);

  // ...then merge in ascending scenario index, preserving each slot's
  // sample order: the concatenation is exactly the sequential loop's
  // emission order, so the dataset bytes never depend on worker count.
  for (ScenarioSlot& slot : slots) {
    out.risky_samples += slot.risky_samples;
    out.lane_change_samples += slot.lane_change_samples;
    for (std::size_t s = 0; s < slot.samples.size(); ++s) {
      for (int rep = 0; rep < slot.repeats[s]; ++rep) {
        out.data.add(slot.samples[s].first, slot.samples[s].second);
      }
    }
  }
  return out;
}

}  // namespace safenn::highway
