#include "highway/dataset_builder.hpp"

namespace safenn::highway {

BuiltDataset build_highway_dataset(const SceneEncoder& encoder,
                                   const DatasetBuildConfig& config) {
  BuiltDataset out;
  out.data = data::Dataset(kSceneFeatures, kActionDims);

  const auto scenarios =
      standard_scenario_battery(config.seed, config.risky_probability);
  for (const Scenario& scenario : scenarios) {
    HighwaySim sim(scenario.sim);
    sim.run(config.warmup_steps);
    for (int step = 0; step < config.sample_steps; ++step) {
      sim.step();
      if (step % config.sample_every != 0) continue;
      for (const VehicleState& ego : sim.vehicles()) {
        const linalg::Vector x = encoder.encode(sim, ego.id);
        linalg::Vector action(kActionDims);
        action[kActionLateral] = ego.lateral_velocity;
        action[kActionAccel] = ego.a;

        const bool lane_change_now =
            ego.changing_lane && ego.lateral_progress <= 0.11;
        const bool risky = sim.was_risky(ego.id);
        if (risky) ++out.risky_samples;
        if (lane_change_now) ++out.lane_change_samples;

        const int repeats = lane_change_now ? config.lane_change_repeat : 1;
        for (int rep = 0; rep < repeats; ++rep) {
          out.data.add(x, action);
        }
      }
    }
  }
  return out;
}

}  // namespace safenn::highway
