#include "highway/scene_encoder.hpp"

#include <algorithm>
#include <string>

#include "common/error.hpp"

namespace safenn::highway {
namespace {

double clamp01(double x) { return std::clamp(x, 0.0, 1.0); }
double clamp_sym(double x) { return std::clamp(x, -1.0, 1.0); }

}  // namespace

SceneEncoder::SceneEncoder() {
  // Ego block.
  for (std::size_t k = 0; k < kSpeedHistory; ++k) {
    schema_.add("ego.speed[t-" + std::to_string(k) + "]", "ego");
  }
  for (std::size_t k = 0; k < kAccelHistory; ++k) {
    schema_.add("ego.accel[t-" + std::to_string(k) + "]", "ego");
  }
  for (std::size_t k = 0; k < kMaxLanesEncoded; ++k) {
    schema_.add("ego.lane" + std::to_string(k), "ego");
  }
  // Neighbor blocks.
  for (std::size_t s = 0; s < kNumNeighborSlots; ++s) {
    const std::string slot =
        neighbor_slot_name(static_cast<NeighborSlot>(s));
    const std::string group = "neighbor." + slot;
    neighbor_base_[s] = schema_.size();
    schema_.add(slot + ".presence", group);
    schema_.add(slot + ".gap", group);
    schema_.add(slot + ".rel_speed", group);
    schema_.add(slot + ".abs_speed", group);
    schema_.add(slot + ".accel", group);
    schema_.add(slot + ".inv_ttc", group);
    schema_.add(slot + ".lateral_offset", group);
    schema_.add(slot + ".length", group);
    schema_.add(slot + ".closing", group);
    schema_.add(slot + ".gap_ratio", group);
  }
  // Road block.
  schema_.add("road.friction", "road");
  schema_.add("road.curvature", "road");
  schema_.add("road.speed_limit", "road");
  for (std::size_t k = 0; k < kMaxLanesEncoded; ++k) {
    schema_.add("road.lanes" + std::to_string(k + 1), "road");
  }
  require(schema_.size() == kSceneFeatures,
          "SceneEncoder: schema does not total 84 features");
}

std::size_t SceneEncoder::presence_index(NeighborSlot slot) const {
  return neighbor_base_[static_cast<std::size_t>(slot)] + 0;
}
std::size_t SceneEncoder::gap_index(NeighborSlot slot) const {
  return neighbor_base_[static_cast<std::size_t>(slot)] + 1;
}
std::size_t SceneEncoder::rel_speed_index(NeighborSlot slot) const {
  return neighbor_base_[static_cast<std::size_t>(slot)] + 2;
}

linalg::Vector SceneEncoder::encode(const HighwaySim& sim, int ego_id) const {
  const VehicleState& ego = sim.vehicle(ego_id);
  linalg::Vector x(kSceneFeatures);
  std::size_t i = 0;

  const auto& speeds = sim.speed_history(ego_id);
  for (std::size_t k = 0; k < kSpeedHistory; ++k) {
    x[i++] = clamp01(speeds[k] / kSpeedScale);
  }
  const auto& accels = sim.accel_history(ego_id);
  for (std::size_t k = 0; k < kAccelHistory; ++k) {
    x[i++] = clamp_sym(accels[k] / kAccelScale);
  }
  for (std::size_t k = 0; k < kMaxLanesEncoded; ++k) {
    x[i++] = (static_cast<std::size_t>(std::max(0, ego.lane)) == k) ? 1.0 : 0.0;
  }

  const auto obs = sim.neighbors(ego_id);
  for (std::size_t s = 0; s < kNumNeighborSlots; ++s) {
    const NeighborObservation& o = obs[s];
    const double lateral_offset =
        (s <= 1) ? 1.0 : (s >= 4 ? -1.0 : 0.0);  // left/same/right
    if (!o.present) {
      x[i++] = 0.0;          // presence
      x[i++] = 1.0;          // gap: "far away"
      x[i++] = 0.0;          // rel speed
      x[i++] = 0.0;          // abs speed
      x[i++] = 0.0;          // accel
      x[i++] = 0.0;          // inv ttc
      x[i++] = lateral_offset;
      x[i++] = 0.0;          // length
      x[i++] = 0.0;          // closing
      x[i++] = 1.0;          // gap ratio
      continue;
    }
    const double gap_n = clamp01(o.gap / kGapScale);
    // Time-to-collision: ego closing on a front vehicle (or rear vehicle
    // closing on ego); use |closing speed| / gap, clamped.
    const double closing_speed = -o.rel_speed;  // >0 when gap shrinks (front)
    const double inv_ttc =
        clamp01(std::max(0.0, closing_speed) / std::max(o.gap, 1.0) * 10.0);
    x[i++] = 1.0;
    x[i++] = gap_n;
    x[i++] = clamp_sym(o.rel_speed / kSpeedScale);
    x[i++] = clamp01(o.abs_speed / kSpeedScale);
    x[i++] = clamp_sym(o.accel / kAccelScale);
    x[i++] = inv_ttc;
    x[i++] = lateral_offset;
    x[i++] = clamp01(o.length / kLengthScale);
    x[i++] = closing_speed > 0.0 ? 1.0 : 0.0;
    x[i++] = gap_n;  // gap ratio mirrors gap for present vehicles
  }

  const RoadCondition& road = sim.config().road;
  x[i++] = clamp01(road.friction);
  x[i++] = clamp_sym(road.curvature);
  x[i++] = clamp01(road.speed_limit / kSpeedScale);
  const std::size_t lanes = static_cast<std::size_t>(
      std::clamp(sim.config().num_lanes, 1, static_cast<int>(kMaxLanesEncoded)));
  for (std::size_t k = 0; k < kMaxLanesEncoded; ++k) {
    x[i++] = (lanes == k + 1) ? 1.0 : 0.0;
  }
  require(i == kSceneFeatures, "SceneEncoder::encode: layout drift");
  return x;
}

verify::Box SceneEncoder::domain_box() const {
  verify::Box box(kSceneFeatures, verify::Interval{0.0, 1.0});
  // Signed features get symmetric ranges.
  for (std::size_t k = 0; k < kAccelHistory; ++k) {
    box[kSpeedHistory + k] = verify::Interval{-1.0, 1.0};
  }
  for (std::size_t s = 0; s < kNumNeighborSlots; ++s) {
    const std::size_t base = neighbor_base_[s];
    box[base + 2] = verify::Interval{-1.0, 1.0};  // rel_speed
    box[base + 4] = verify::Interval{-1.0, 1.0};  // accel
    box[base + 6] = verify::Interval{-1.0, 1.0};  // lateral_offset
  }
  const std::size_t road_base = kSceneFeatures - 6;
  box[road_base + 1] = verify::Interval{-1.0, 1.0};  // curvature
  return box;
}

}  // namespace safenn::highway
