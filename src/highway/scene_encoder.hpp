// Scene encoding: simulator state -> the predictor's 84-dim input vector.
//
// Mirrors the paper's three input categories: "(i) its own speed profile,
// (ii) parameters of its nearest surrounding vehicles for each
// orientation, and (iii) the road condition. The total number of input
// variables to the network is 84."
//
// Layout (84 = 18 + 60 + 6):
//   ego (18):       speed history x10, accel history x5, lane one-hot x3
//   neighbors (60): 6 slots x 10 features
//                   (presence, gap, rel_speed, abs_speed, accel,
//                    inv_ttc, lateral_offset, length, closing, gap_ratio)
//   road (6):       friction, curvature, speed_limit, lane-count one-hot x3
//
// All features are normalized to roughly [-1, 1] / [0, 1]; the constants
// are part of the public contract because verification regions and data
// validation rules are written against them.
#pragma once

#include "data/schema.hpp"
#include "highway/simulator.hpp"
#include "linalg/vector.hpp"
#include "verify/interval.hpp"

namespace safenn::highway {

/// Normalization constants (public: regions/rules depend on them).
constexpr double kSpeedScale = 40.0;   // m/s
constexpr double kAccelScale = 4.0;    // m/s^2
constexpr double kGapScale = 100.0;    // m
constexpr double kLengthScale = 20.0;  // m
constexpr std::size_t kSpeedHistory = 10;
constexpr std::size_t kAccelHistory = 5;
constexpr std::size_t kMaxLanesEncoded = 3;
constexpr std::size_t kNeighborFeatures = 10;
constexpr std::size_t kSceneFeatures = 84;

class SceneEncoder {
 public:
  SceneEncoder();

  /// Column names/groups for all 84 features.
  const data::FeatureSchema& schema() const { return schema_; }

  /// Encodes the scene around `ego_id`.
  linalg::Vector encode(const HighwaySim& sim, int ego_id) const;

  /// Feature indices needed by safety rules and verification regions.
  std::size_t presence_index(NeighborSlot slot) const;
  std::size_t gap_index(NeighborSlot slot) const;
  std::size_t rel_speed_index(NeighborSlot slot) const;

  /// The natural domain box of the encoding (sound feature-wise ranges);
  /// verification regions start from this and pin/narrow dimensions.
  verify::Box domain_box() const;

 private:
  data::FeatureSchema schema_;
  std::size_t neighbor_base_[kNumNeighborSlots] = {};
};

/// The action/label vector is 2-D: [lateral velocity (m/s, + = left),
/// longitudinal acceleration (m/s^2)]. Indices for readability.
constexpr std::size_t kActionLateral = 0;
constexpr std::size_t kActionAccel = 1;
constexpr std::size_t kActionDims = 2;

}  // namespace safenn::highway
