#include "highway/lane_change.hpp"

#include <algorithm>

namespace safenn::highway {

double lane_change_lateral_speed(const LaneChangeParams& p) {
  return kLaneWidth / p.duration;
}

bool lane_change_safe(const LaneChangeParams& p, const TargetLaneGaps& gaps) {
  if (!gaps.lane_exists) return false;
  if (gaps.front.present && gaps.front.gap < p.min_front_gap) return false;
  if (gaps.rear.present && gaps.rear.gap < p.min_rear_gap) return false;
  return true;
}

double lane_change_incentive(const IdmParams& idm, double v,
                             const NeighborObservation& current_front,
                             const TargetLaneGaps& target) {
  const double huge_gap = 1e4;
  const double current_accel = idm_acceleration(
      idm, v, current_front.present ? current_front.gap : huge_gap,
      current_front.present ? -current_front.rel_speed : 0.0);
  const double target_accel = idm_acceleration(
      idm, v, target.front.present ? target.front.gap : huge_gap,
      target.front.present ? -target.front.rel_speed : 0.0);
  return target_accel - current_accel;
}

LaneChangeDecision decide_lane_change(const IdmParams& idm,
                                      const LaneChangeParams& p, double v,
                                      const NeighborObservation& current_front,
                                      const TargetLaneGaps& left,
                                      const TargetLaneGaps& right,
                                      bool ignore_safety) {
  double left_gain = -1e9, right_gain = -1e9;
  const bool left_ok =
      left.lane_exists && (ignore_safety || lane_change_safe(p, left));
  const bool right_ok =
      right.lane_exists && (ignore_safety || lane_change_safe(p, right));
  if (left_ok) left_gain = lane_change_incentive(idm, v, current_front, left);
  if (right_ok)
    right_gain = lane_change_incentive(idm, v, current_front, right);

  const double best = std::max(left_gain, right_gain);
  if (best < p.incentive_threshold) return LaneChangeDecision::kStay;
  return left_gain >= right_gain ? LaneChangeDecision::kLeft
                                 : LaneChangeDecision::kRight;
}

}  // namespace safenn::highway
