#include "highway/scenario.hpp"

namespace safenn::highway {

Scenario make_scenario(TrafficDensity density, std::uint64_t seed,
                       double risky_probability) {
  Scenario sc;
  sc.sim.num_lanes = 3;
  sc.sim.road_length = 1000.0;
  sc.sim.seed = seed;
  sc.sim.risky_probability = risky_probability;
  switch (density) {
    case TrafficDensity::kLight:
      sc.name = "light";
      sc.sim.num_vehicles = 12;
      sc.sim.min_speed = 26.0;
      sc.sim.max_speed = 36.0;
      break;
    case TrafficDensity::kMedium:
      sc.name = "medium";
      sc.sim.num_vehicles = 24;
      sc.sim.min_speed = 24.0;
      sc.sim.max_speed = 34.0;
      break;
    case TrafficDensity::kDense:
      sc.name = "dense";
      sc.sim.num_vehicles = 42;
      sc.sim.min_speed = 20.0;
      sc.sim.max_speed = 30.0;
      break;
  }
  return sc;
}

std::vector<Scenario> standard_scenario_battery(std::uint64_t seed,
                                                double risky_probability) {
  std::vector<Scenario> out;
  int k = 0;
  for (TrafficDensity d : {TrafficDensity::kLight, TrafficDensity::kMedium,
                           TrafficDensity::kDense}) {
    Scenario sc = make_scenario(d, seed + static_cast<std::uint64_t>(k),
                                risky_probability);
    out.push_back(sc);
    // A wet-road variant of each density.
    Scenario wet = sc;
    wet.name += "-wet";
    wet.sim.seed = seed + static_cast<std::uint64_t>(k) + 100;
    wet.sim.road.friction = 0.6;
    wet.sim.road.speed_limit = 27.0;
    out.push_back(std::move(wet));
    ++k;
  }
  return out;
}

}  // namespace safenn::highway
