// Training data generation for the motion predictor.
//
// Rolls the simulator forward and, at sampled instants, records
// (encoded scene, executed action) pairs — the action is the lateral
// velocity and longitudinal acceleration the simulated driver actually
// took. With risky_probability > 0 the raw data contains the unsafe
// left-moves that Sec. II(C) data validation must detect and remove.
#pragma once

#include <cstdint>

#include "data/dataset.hpp"
#include "highway/scenario.hpp"
#include "highway/scene_encoder.hpp"

namespace safenn::highway {

struct DatasetBuildConfig {
  int warmup_steps = 50;      // let traffic settle before sampling
  int sample_steps = 400;     // steps sampled per scenario
  int sample_every = 2;       // record every n-th step
  double risky_probability = 0.0;
  std::uint64_t seed = 7;
  /// Over-sample lane-change instants by this factor (they are rare but
  /// are exactly what the predictor must learn).
  int lane_change_repeat = 5;
  /// Workers simulating scenarios concurrently. Every scenario's RNG
  /// stream is fixed up front by its battery seed (a pure function of
  /// the base seed and the scenario index, independent of worker
  /// interleaving) and its samples land in a pre-sized per-scenario
  /// slot merged in ascending scenario order — the emitted dataset is
  /// byte-identical at any worker count.
  int num_workers = 1;
};

struct BuiltDataset {
  data::Dataset data;
  std::size_t lane_change_samples = 0;
  std::size_t risky_samples = 0;  // ground-truth count of injected risk
};

/// Builds a dataset over the standard scenario battery.
BuiltDataset build_highway_dataset(const SceneEncoder& encoder,
                                   const DatasetBuildConfig& config);

}  // namespace safenn::highway
