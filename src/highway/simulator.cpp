#include "highway/simulator.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace safenn::highway {

HighwaySim::HighwaySim(SimConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  require(config_.num_lanes >= 1, "HighwaySim: need at least one lane");
  require(config_.num_vehicles >= 1, "HighwaySim: need at least one vehicle");
  require(config_.road_length >
              config_.num_vehicles * 2.0 * kDefaultVehicleLength /
                  config_.num_lanes,
          "HighwaySim: road too short for the requested traffic");

  // Place vehicles round-robin across lanes with jittered spacing.
  const int per_lane =
      (config_.num_vehicles + config_.num_lanes - 1) / config_.num_lanes;
  int id = 0;
  for (int lane = 0; lane < config_.num_lanes && id < config_.num_vehicles;
       ++lane) {
    const double spacing = config_.road_length / per_lane;
    for (int k = 0; k < per_lane && id < config_.num_vehicles; ++k) {
      VehicleState v;
      v.id = id;
      v.lane = lane;
      v.target_lane = lane;
      v.s = std::fmod(k * spacing + rng_.uniform(0.0, spacing * 0.3),
                      config_.road_length);
      v.v = rng_.uniform(config_.min_speed, config_.max_speed);
      v.length = kDefaultVehicleLength + rng_.uniform(-0.5, 1.5);
      vehicles_.push_back(v);
      ++id;
    }
  }
  speed_hist_.assign(vehicles_.size(),
                     std::vector<double>(kHistoryLength, 0.0));
  accel_hist_.assign(vehicles_.size(),
                     std::vector<double>(kHistoryLength, 0.0));
  risky_flag_.assign(vehicles_.size(), 0);
  for (std::size_t i = 0; i < vehicles_.size(); ++i) {
    std::fill(speed_hist_[i].begin(), speed_hist_[i].end(), vehicles_[i].v);
  }
}

double HighwaySim::forward_distance(double from_s, double to_s) const {
  double d = to_s - from_s;
  while (d < 0.0) d += config_.road_length;
  while (d >= config_.road_length) d -= config_.road_length;
  return d;
}

const VehicleState* HighwaySim::front_vehicle(const VehicleState& ego,
                                              int lane,
                                              double* gap_out) const {
  const VehicleState* best = nullptr;
  double best_d = 1e18;
  for (const VehicleState& other : vehicles_) {
    if (other.id == ego.id || other.lane != lane) continue;
    const double d = forward_distance(ego.s, other.s);
    if (d > 0.0 && d < best_d) {
      best_d = d;
      best = &other;
    }
  }
  if (best && gap_out) {
    *gap_out = best_d - 0.5 * (ego.length + best->length);
  }
  return best;
}

const VehicleState* HighwaySim::rear_vehicle(const VehicleState& ego,
                                             int lane,
                                             double* gap_out) const {
  const VehicleState* best = nullptr;
  double best_d = 1e18;
  for (const VehicleState& other : vehicles_) {
    if (other.id == ego.id || other.lane != lane) continue;
    const double d = forward_distance(other.s, ego.s);
    if (d > 0.0 && d < best_d) {
      best_d = d;
      best = &other;
    }
  }
  if (best && gap_out) {
    *gap_out = best_d - 0.5 * (ego.length + best->length);
  }
  return best;
}

NeighborObservation HighwaySim::observe(const VehicleState& ego,
                                        const VehicleState* other,
                                        double gap) const {
  NeighborObservation obs;
  if (!other) return obs;
  obs.present = true;
  obs.gap = std::max(0.0, gap);
  obs.rel_speed = other->v - ego.v;
  obs.abs_speed = other->v;
  obs.accel = other->a;
  obs.length = other->length;
  return obs;
}

std::vector<NeighborObservation> HighwaySim::neighbors(int ego_id) const {
  const VehicleState& ego = vehicle(ego_id);
  std::vector<NeighborObservation> out(kNumNeighborSlots);
  const int lanes[3] = {ego.lane + 1, ego.lane, ego.lane - 1};
  const NeighborSlot front_slots[3] = {NeighborSlot::kLeftFront,
                                       NeighborSlot::kSameFront,
                                       NeighborSlot::kRightFront};
  const NeighborSlot rear_slots[3] = {NeighborSlot::kLeftRear,
                                      NeighborSlot::kSameRear,
                                      NeighborSlot::kRightRear};
  for (int k = 0; k < 3; ++k) {
    if (lanes[k] < 0 || lanes[k] >= config_.num_lanes) continue;
    double gap = 0.0;
    const VehicleState* f = front_vehicle(ego, lanes[k], &gap);
    out[static_cast<std::size_t>(front_slots[k])] = observe(ego, f, gap);
    const VehicleState* r = rear_vehicle(ego, lanes[k], &gap);
    out[static_cast<std::size_t>(rear_slots[k])] = observe(ego, r, gap);
  }
  return out;
}

TargetLaneGaps HighwaySim::target_lane_gaps(int ego_id, int direction) const {
  const VehicleState& ego = vehicle(ego_id);
  TargetLaneGaps gaps;
  const int lane = ego.lane + direction;
  if (lane < 0 || lane >= config_.num_lanes) return gaps;
  gaps.lane_exists = true;
  double gap = 0.0;
  const VehicleState* f = front_vehicle(ego, lane, &gap);
  gaps.front = observe(ego, f, gap);
  const VehicleState* r = rear_vehicle(ego, lane, &gap);
  gaps.rear = observe(ego, r, gap);
  return gaps;
}

const VehicleState& HighwaySim::vehicle(int id) const {
  require(id >= 0 && static_cast<std::size_t>(id) < vehicles_.size(),
          "HighwaySim::vehicle: unknown id");
  return vehicles_[static_cast<std::size_t>(id)];
}

void HighwaySim::step() {
  const double dt = config_.dt;
  std::vector<VehicleState> next = vehicles_;

  for (std::size_t i = 0; i < vehicles_.size(); ++i) {
    const VehicleState& ego = vehicles_[i];
    VehicleState& upd = next[i];
    risky_flag_[i] = 0;

    // Longitudinal: IDM against the same-lane leader, scaled by friction.
    double gap = 0.0;
    const VehicleState* leader = front_vehicle(ego, ego.lane, &gap);
    double accel =
        leader
            ? idm_acceleration(config_.idm, ego.v, gap, ego.v - leader->v)
            : idm_free_acceleration(config_.idm, ego.v);
    accel *= config_.road.friction;
    // Respect the speed limit.
    if (ego.v > config_.road.speed_limit) {
      accel = std::min(accel, -0.5);
    }
    upd.a = accel;
    upd.v = std::max(0.0, ego.v + accel * dt);
    upd.s = std::fmod(ego.s + upd.v * dt, config_.road_length);

    // Lateral: continue an ongoing change or consider starting one.
    if (ego.changing_lane) {
      const double rate = dt / config_.lane_change.duration;
      upd.lateral_progress = ego.lateral_progress + rate;
      if (upd.lateral_progress >= 1.0) {
        upd.changing_lane = false;
        upd.lateral_progress = 0.0;
        upd.lane = ego.target_lane;
        upd.lateral_velocity = 0.0;
      }
      continue;
    }

    const NeighborObservation current_front = observe(ego, leader, gap);
    const TargetLaneGaps left = target_lane_gaps(ego.id, +1);
    const TargetLaneGaps right = target_lane_gaps(ego.id, -1);

    const bool risky = config_.risky_probability > 0.0 &&
                       rng_.bernoulli(config_.risky_probability);
    LaneChangeDecision decision;
    if (risky) {
      // Force a left change into possibly occupied space when possible.
      decision = left.lane_exists ? LaneChangeDecision::kLeft
                                  : LaneChangeDecision::kStay;
    } else {
      decision = decide_lane_change(config_.idm, config_.lane_change, ego.v,
                                    current_front, left, right);
    }
    if (decision == LaneChangeDecision::kStay) {
      upd.lateral_velocity = 0.0;
      continue;
    }
    const int dir = decision == LaneChangeDecision::kLeft ? +1 : -1;
    upd.changing_lane = true;
    upd.target_lane = ego.lane + dir;
    upd.lateral_progress = 0.0;
    const double base = lane_change_lateral_speed(config_.lane_change);
    upd.lateral_velocity =
        dir * base * (risky ? config_.risky_lateral_factor : 1.0);
    if (risky) risky_flag_[i] = 1;
  }

  vehicles_ = std::move(next);
  for (std::size_t i = 0; i < vehicles_.size(); ++i) {
    auto& sh = speed_hist_[i];
    sh.insert(sh.begin(), vehicles_[i].v);
    sh.resize(kHistoryLength);
    auto& ah = accel_hist_[i];
    ah.insert(ah.begin(), vehicles_[i].a);
    ah.resize(kHistoryLength);
  }
  ++steps_;
}

void HighwaySim::run(int n) {
  for (int i = 0; i < n; ++i) step();
}

bool HighwaySim::any_collision() const {
  for (std::size_t i = 0; i < vehicles_.size(); ++i) {
    for (std::size_t j = i + 1; j < vehicles_.size(); ++j) {
      const VehicleState& a = vehicles_[i];
      const VehicleState& b = vehicles_[j];
      if (a.lane != b.lane) continue;
      const double d = std::min(forward_distance(a.s, b.s),
                                forward_distance(b.s, a.s));
      if (d < 0.5 * (a.length + b.length)) return true;
    }
  }
  return false;
}

const std::vector<double>& HighwaySim::speed_history(int id) const {
  require(id >= 0 && static_cast<std::size_t>(id) < speed_hist_.size(),
          "HighwaySim::speed_history: unknown id");
  return speed_hist_[static_cast<std::size_t>(id)];
}

const std::vector<double>& HighwaySim::accel_history(int id) const {
  require(id >= 0 && static_cast<std::size_t>(id) < accel_hist_.size(),
          "HighwaySim::accel_history: unknown id");
  return accel_hist_[static_cast<std::size_t>(id)];
}

bool HighwaySim::was_risky(int id) const {
  require(id >= 0 && static_cast<std::size_t>(id) < risky_flag_.size(),
          "HighwaySim::was_risky: unknown id");
  return risky_flag_[static_cast<std::size_t>(id)] != 0;
}

}  // namespace safenn::highway
