#include "highway/safety_rules.hpp"

#include <algorithm>
#include <string>

namespace safenn::highway {

verify::InputRegion make_vehicle_on_left_region(const SceneEncoder& encoder) {
  return make_vehicle_on_left_region(encoder, encoder.domain_box());
}

verify::InputRegion make_vehicle_on_left_region(const SceneEncoder& encoder,
                                                verify::Box base_box) {
  verify::InputRegion region;
  region.box = std::move(base_box);
  // Pin: vehicle present in the left-front slot, close.
  const std::size_t presence =
      encoder.presence_index(NeighborSlot::kLeftFront);
  const std::size_t gap = encoder.gap_index(NeighborSlot::kLeftFront);
  region.box[presence] = verify::Interval{1.0, 1.0};
  region.box[gap] = verify::Interval{
      0.0, std::min(kLeftOccupiedMaxGap, region.box[gap].hi)};
  return region;
}

verify::Box data_domain_box(const data::Dataset& data,
                            const SceneEncoder& encoder, double padding) {
  const auto [lo, hi] = data.input_range();
  verify::Box box = encoder.domain_box();
  for (std::size_t i = 0; i < box.size(); ++i) {
    box[i].lo = std::max(box[i].lo, lo[i] - padding);
    box[i].hi = std::min(box[i].hi, hi[i] + padding);
    if (box[i].lo > box[i].hi) box[i].lo = box[i].hi;
  }
  return box;
}

bool vehicle_on_left(const SceneEncoder& encoder, const linalg::Vector& x) {
  const std::size_t presence =
      encoder.presence_index(NeighborSlot::kLeftFront);
  const std::size_t gap = encoder.gap_index(NeighborSlot::kLeftFront);
  return x[presence] >= 0.5 && x[gap] <= kLeftOccupiedMaxGap;
}

data::ValidationRule no_risky_left_move_rule(const SceneEncoder& encoder,
                                             double max_left_velocity) {
  // Capture indices by value so the rule outlives the encoder.
  const std::size_t presence =
      encoder.presence_index(NeighborSlot::kLeftFront);
  const std::size_t gap = encoder.gap_index(NeighborSlot::kLeftFront);
  return data::Validator::conditional_target_max(
      "no-risky-left-move",
      [presence, gap](const linalg::Vector& x) {
        return x[presence] >= 0.5 && x[gap] <= kLeftOccupiedMaxGap;
      },
      kActionLateral, max_left_velocity);
}

verify::SafetyProperty component_lateral_velocity_property(
    const SceneEncoder& encoder, const nn::MdnHead& head, std::size_t k,
    double threshold) {
  verify::SafetyProperty prop;
  prop.name = "lateral-velocity-mean[k=" + std::to_string(k) +
              "]<=" + std::to_string(threshold);
  prop.region = make_vehicle_on_left_region(encoder);
  prop.expr.terms = {
      {static_cast<int>(head.mean_index(k, kActionLateral)), 1.0}};
  prop.threshold = threshold;
  return prop;
}

}  // namespace safenn::highway
