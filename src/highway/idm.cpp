#include "highway/idm.hpp"

#include <algorithm>
#include <cmath>

namespace safenn::highway {

double idm_free_acceleration(const IdmParams& p, double v) {
  const double ratio = std::max(0.0, v) / p.desired_speed;
  return p.max_accel * (1.0 - std::pow(ratio, p.accel_exponent));
}

double idm_acceleration(const IdmParams& p, double v, double gap,
                        double closing) {
  const double safe_gap = std::max(gap, 0.1);
  const double s_star =
      p.min_gap + std::max(0.0, v * p.time_headway +
                                    v * closing /
                                        (2.0 * std::sqrt(p.max_accel *
                                                         p.comfortable_decel)));
  const double interaction = s_star / safe_gap;
  const double accel =
      idm_free_acceleration(p, v) - p.max_accel * interaction * interaction;
  // Physical clamp: no stronger than emergency braking, no reversing push.
  return std::clamp(accel, -4.0 * p.comfortable_decel, p.max_accel);
}

}  // namespace safenn::highway
