// Supervised dataset container.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "linalg/vector.hpp"

namespace safenn::data {

/// Paired (input, target) samples with uniform dimensions.
class Dataset {
 public:
  Dataset() = default;
  Dataset(std::size_t input_dim, std::size_t target_dim);

  void add(linalg::Vector input, linalg::Vector target);

  std::size_t size() const { return inputs_.size(); }
  bool empty() const { return inputs_.empty(); }
  std::size_t input_dim() const { return input_dim_; }
  std::size_t target_dim() const { return target_dim_; }

  const linalg::Vector& input(std::size_t i) const;
  const linalg::Vector& target(std::size_t i) const;
  const std::vector<linalg::Vector>& inputs() const { return inputs_; }
  const std::vector<linalg::Vector>& targets() const { return targets_; }

  /// Splits off the last `fraction` of samples as a held-out set.
  std::pair<Dataset, Dataset> split(double train_fraction) const;

  /// Deterministic in-place shuffle (inputs and targets stay paired).
  void shuffle(Rng& rng);

  /// Keeps only samples at the given indices (sorted, unique).
  Dataset subset(const std::vector<std::size_t>& indices) const;

  /// Per-input-dimension observed [min, max]; requires non-empty.
  std::pair<linalg::Vector, linalg::Vector> input_range() const;

 private:
  std::size_t input_dim_ = 0;
  std::size_t target_dim_ = 0;
  std::vector<linalg::Vector> inputs_;
  std::vector<linalg::Vector> targets_;
};

}  // namespace safenn::data
