#include "data/validation.hpp"

#include <sstream>

#include "common/error.hpp"

namespace safenn::data {

std::size_t ValidationReport::total_violations() const {
  std::size_t n = 0;
  for (const auto& r : rules) n += r.violations;
  return n;
}

std::string ValidationReport::render() const {
  std::ostringstream os;
  os << "data validation: " << samples_clean << '/' << samples_checked
     << " samples clean\n";
  for (const auto& r : rules) {
    os << "  [" << (r.violations == 0 ? "PASS" : "FAIL") << "] "
       << r.rule_name << ": " << r.violations << " violation(s)\n";
  }
  return os.str();
}

Validator::Validator(std::size_t max_recorded_indices)
    : max_recorded_(max_recorded_indices) {}

void Validator::add_rule(ValidationRule rule) {
  require(!rule.name.empty(), "Validator::add_rule: rule needs a name");
  require(static_cast<bool>(rule.violates),
          "Validator::add_rule: rule needs a predicate");
  rules_.push_back(std::move(rule));
}

ValidationRule Validator::target_bound(std::string name, std::size_t dim,
                                       double lo, double hi) {
  return ValidationRule{
      std::move(name),
      "target[" + std::to_string(dim) + "] must be within bounds",
      [dim, lo, hi](const linalg::Vector&, const linalg::Vector& target) {
        return target[dim] < lo || target[dim] > hi;
      }};
}

ValidationRule Validator::input_bound(std::string name, std::size_t dim,
                                      double lo, double hi) {
  return ValidationRule{
      std::move(name),
      "input[" + std::to_string(dim) + "] must be within bounds",
      [dim, lo, hi](const linalg::Vector& input, const linalg::Vector&) {
        return input[dim] < lo || input[dim] > hi;
      }};
}

ValidationRule Validator::conditional_target_max(
    std::string name, std::function<bool(const linalg::Vector&)> condition,
    std::size_t target_dim, double max_value) {
  return ValidationRule{
      std::move(name),
      "conditional bound on target[" + std::to_string(target_dim) + "]",
      [condition = std::move(condition), target_dim, max_value](
          const linalg::Vector& input, const linalg::Vector& target) {
        return condition(input) && target[target_dim] > max_value;
      }};
}

ValidationReport Validator::validate(const Dataset& data) const {
  ValidationReport report;
  report.samples_checked = data.size();
  report.rules.reserve(rules_.size());
  for (const auto& rule : rules_) {
    report.rules.push_back(RuleReport{rule.name, 0, {}});
  }
  for (std::size_t i = 0; i < data.size(); ++i) {
    bool clean = true;
    for (std::size_t ri = 0; ri < rules_.size(); ++ri) {
      if (rules_[ri].violates(data.input(i), data.target(i))) {
        clean = false;
        ++report.rules[ri].violations;
        if (report.rules[ri].violating_indices.size() < max_recorded_) {
          report.rules[ri].violating_indices.push_back(i);
        }
      }
    }
    if (clean) ++report.samples_clean;
  }
  return report;
}

std::pair<Dataset, ValidationReport> Validator::sanitize(
    const Dataset& data) const {
  const ValidationReport report = validate(data);
  std::vector<std::size_t> keep;
  keep.reserve(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    bool clean = true;
    for (const auto& rule : rules_) {
      if (rule.violates(data.input(i), data.target(i))) {
        clean = false;
        break;
      }
    }
    if (clean) keep.push_back(i);
  }
  return {data.subset(keep), report};
}

}  // namespace safenn::data
