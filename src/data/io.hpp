// Dataset (de)serialization as CSV — the auditable artifact format for
// certification: the exact sanitized dataset a verified network was
// trained on can be pinned, diffed and reviewed.
#pragma once

#include <iosfwd>
#include <string>

#include "data/dataset.hpp"
#include "data/schema.hpp"

namespace safenn::data {

/// Writes the dataset as CSV: input columns (named from `schema` when it
/// matches, else x0..xN) then target columns y0..yM.
void save_dataset_csv(std::ostream& os, const Dataset& data,
                      const FeatureSchema* schema = nullptr);

/// Parses a dataset written by save_dataset_csv. `target_dim` tells the
/// loader how many trailing columns are targets. Throws safenn::Error on
/// malformed content.
Dataset load_dataset_csv(std::istream& is, std::size_t target_dim);

void save_dataset_csv_file(const std::string& path, const Dataset& data,
                           const FeatureSchema* schema = nullptr);
Dataset load_dataset_csv_file(const std::string& path,
                              std::size_t target_dim);

}  // namespace safenn::data
