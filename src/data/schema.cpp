#include "data/schema.hpp"

#include "common/error.hpp"

namespace safenn::data {

std::size_t FeatureSchema::add(std::string name, std::string group) {
  require(!name.empty(), "FeatureSchema::add: empty name");
  require(!contains(name), "FeatureSchema::add: duplicate name '" + name + "'");
  features_.push_back(FeatureInfo{std::move(name), std::move(group)});
  return features_.size() - 1;
}

const FeatureInfo& FeatureSchema::at(std::size_t i) const {
  require(i < features_.size(), "FeatureSchema::at: index out of range");
  return features_[i];
}

std::size_t FeatureSchema::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < features_.size(); ++i) {
    if (features_[i].name == name) return i;
  }
  throw Error("FeatureSchema::index_of: unknown feature '" + name + "'");
}

bool FeatureSchema::contains(const std::string& name) const {
  for (const auto& f : features_) {
    if (f.name == name) return true;
  }
  return false;
}

std::vector<std::string> FeatureSchema::names() const {
  std::vector<std::string> out;
  out.reserve(features_.size());
  for (const auto& f : features_) out.push_back(f.name);
  return out;
}

std::vector<std::size_t> FeatureSchema::group_indices(
    const std::string& group) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < features_.size(); ++i) {
    if (features_[i].group == group) out.push_back(i);
  }
  return out;
}

}  // namespace safenn::data
