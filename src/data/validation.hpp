// Data validation: "validating data as a new type of specification"
// (paper Sec. II(C), Table I row 3).
//
// Training data implicitly specifies behaviour; certification therefore
// requires evidence that only sanitized data was used — e.g. "no data
// containing risky driving has been introduced for training the maneuver
// of vehicles". A Validator holds named rules (predicates over samples),
// produces an auditable report, and can emit the sanitized dataset.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "data/dataset.hpp"

namespace safenn::data {

/// Returns true when the sample VIOLATES the rule.
using SamplePredicate = std::function<bool(const linalg::Vector& input,
                                           const linalg::Vector& target)>;

struct ValidationRule {
  std::string name;
  std::string description;
  SamplePredicate violates;
};

/// Per-rule outcome of a validation pass.
struct RuleReport {
  std::string rule_name;
  std::size_t violations = 0;
  std::vector<std::size_t> violating_indices;  // capped (see Validator)
};

struct ValidationReport {
  std::size_t samples_checked = 0;
  std::size_t samples_clean = 0;
  std::vector<RuleReport> rules;

  bool all_clean() const { return samples_clean == samples_checked; }
  std::size_t total_violations() const;

  /// Human-readable summary (one line per rule).
  std::string render() const;
};

class Validator {
 public:
  /// Caps how many violating indices each rule records (report size).
  explicit Validator(std::size_t max_recorded_indices = 32);

  void add_rule(ValidationRule rule);

  /// Declarative helpers -------------------------------------------------

  /// Target component `dim` must stay within [lo, hi].
  static ValidationRule target_bound(std::string name, std::size_t dim,
                                     double lo, double hi);

  /// Input feature `dim` must stay within [lo, hi].
  static ValidationRule input_bound(std::string name, std::size_t dim,
                                    double lo, double hi);

  /// Conditional rule: when `condition(input)` holds, target `dim` must be
  /// <= `max_value`. This is the paper's rule shape: "when a vehicle is on
  /// the left, the labelled lateral velocity must not be a large left
  /// move".
  static ValidationRule conditional_target_max(
      std::string name, std::function<bool(const linalg::Vector&)> condition,
      std::size_t target_dim, double max_value);

  /// Runs all rules over the dataset.
  ValidationReport validate(const Dataset& data) const;

  /// Removes every sample violating any rule; the report documents what
  /// was removed (the audit trail certification requires).
  std::pair<Dataset, ValidationReport> sanitize(const Dataset& data) const;

  std::size_t num_rules() const { return rules_.size(); }

 private:
  std::vector<ValidationRule> rules_;
  std::size_t max_recorded_;
};

}  // namespace safenn::data
