// Feature schema: names and groups for dataset columns.
//
// Certification evidence must reference features by meaning ("left-front
// gap"), not by column index; the schema is the bridge between encoded
// vectors and the reviewable reports (traceability, validation).
#pragma once

#include <string>
#include <vector>

namespace safenn::data {

struct FeatureInfo {
  std::string name;
  std::string group;  // e.g. "ego", "neighbor.left_front", "road"
};

class FeatureSchema {
 public:
  FeatureSchema() = default;

  /// Appends a feature; returns its column index.
  std::size_t add(std::string name, std::string group);

  std::size_t size() const { return features_.size(); }
  const FeatureInfo& at(std::size_t i) const;

  /// Index of a feature by exact name; throws when absent.
  std::size_t index_of(const std::string& name) const;
  bool contains(const std::string& name) const;

  /// All feature names, in column order.
  std::vector<std::string> names() const;

  /// Indices whose group matches exactly.
  std::vector<std::size_t> group_indices(const std::string& group) const;

 private:
  std::vector<FeatureInfo> features_;
};

}  // namespace safenn::data
