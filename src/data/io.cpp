#include "data/io.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <vector>

#include "common/error.hpp"

namespace safenn::data {
namespace {

std::vector<std::string> split_csv_line(const std::string& line) {
  // The writer emits plain numeric cells (no quoting needed).
  std::vector<std::string> cells;
  std::stringstream ss(line);
  std::string cell;
  while (std::getline(ss, cell, ',')) cells.push_back(cell);
  return cells;
}

}  // namespace

void save_dataset_csv(std::ostream& os, const Dataset& data,
                      const FeatureSchema* schema) {
  // Header.
  for (std::size_t i = 0; i < data.input_dim(); ++i) {
    if (i) os << ',';
    if (schema && schema->size() == data.input_dim()) {
      os << schema->at(i).name;
    } else {
      os << 'x' << i;
    }
  }
  for (std::size_t j = 0; j < data.target_dim(); ++j) {
    os << ",y" << j;
  }
  os << '\n';
  os << std::setprecision(17);
  for (std::size_t s = 0; s < data.size(); ++s) {
    const linalg::Vector& x = data.input(s);
    const linalg::Vector& y = data.target(s);
    for (std::size_t i = 0; i < x.size(); ++i) {
      if (i) os << ',';
      os << x[i];
    }
    for (std::size_t j = 0; j < y.size(); ++j) os << ',' << y[j];
    os << '\n';
  }
}

Dataset load_dataset_csv(std::istream& is, std::size_t target_dim) {
  std::string line;
  require(static_cast<bool>(std::getline(is, line)),
          "load_dataset_csv: empty stream");
  const std::size_t total_cols = split_csv_line(line).size();
  require(total_cols > target_dim,
          "load_dataset_csv: fewer columns than targets");
  const std::size_t input_dim = total_cols - target_dim;

  Dataset data(input_dim, target_dim);
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    const std::vector<std::string> cells = split_csv_line(line);
    require(cells.size() == total_cols,
            "load_dataset_csv: ragged row at line " +
                std::to_string(line_no));
    linalg::Vector x(input_dim), y(target_dim);
    for (std::size_t i = 0; i < total_cols; ++i) {
      char* end = nullptr;
      const double v = std::strtod(cells[i].c_str(), &end);
      require(end != cells[i].c_str(),
              "load_dataset_csv: non-numeric cell at line " +
                  std::to_string(line_no));
      if (i < input_dim) {
        x[i] = v;
      } else {
        y[i - input_dim] = v;
      }
    }
    data.add(std::move(x), std::move(y));
  }
  return data;
}

void save_dataset_csv_file(const std::string& path, const Dataset& data,
                           const FeatureSchema* schema) {
  std::ofstream os(path);
  require(os.is_open(), "save_dataset_csv_file: cannot open '" + path + "'");
  save_dataset_csv(os, data, schema);
  require(os.good(), "save_dataset_csv_file: write failure");
}

Dataset load_dataset_csv_file(const std::string& path,
                              std::size_t target_dim) {
  std::ifstream is(path);
  require(is.is_open(), "load_dataset_csv_file: cannot open '" + path + "'");
  return load_dataset_csv(is, target_dim);
}

}  // namespace safenn::data
