#include "data/dataset.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace safenn::data {

Dataset::Dataset(std::size_t input_dim, std::size_t target_dim)
    : input_dim_(input_dim), target_dim_(target_dim) {
  require(input_dim > 0 && target_dim > 0, "Dataset: zero dimensions");
}

void Dataset::add(linalg::Vector input, linalg::Vector target) {
  require(input_dim_ > 0, "Dataset::add: dataset not dimensioned");
  require(input.size() == input_dim_, "Dataset::add: input dim mismatch");
  require(target.size() == target_dim_, "Dataset::add: target dim mismatch");
  inputs_.push_back(std::move(input));
  targets_.push_back(std::move(target));
}

const linalg::Vector& Dataset::input(std::size_t i) const {
  require(i < inputs_.size(), "Dataset::input: index out of range");
  return inputs_[i];
}

const linalg::Vector& Dataset::target(std::size_t i) const {
  require(i < targets_.size(), "Dataset::target: index out of range");
  return targets_[i];
}

std::pair<Dataset, Dataset> Dataset::split(double train_fraction) const {
  require(train_fraction > 0.0 && train_fraction <= 1.0,
          "Dataset::split: fraction must be in (0, 1]");
  const std::size_t cut = static_cast<std::size_t>(
      static_cast<double>(size()) * train_fraction);
  Dataset train(input_dim_, target_dim_), test(input_dim_, target_dim_);
  for (std::size_t i = 0; i < size(); ++i) {
    (i < cut ? train : test).add(inputs_[i], targets_[i]);
  }
  return {std::move(train), std::move(test)};
}

void Dataset::shuffle(Rng& rng) {
  std::vector<std::size_t> order(size());
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  std::vector<linalg::Vector> in2, tg2;
  in2.reserve(size());
  tg2.reserve(size());
  for (std::size_t idx : order) {
    in2.push_back(std::move(inputs_[idx]));
    tg2.push_back(std::move(targets_[idx]));
  }
  inputs_ = std::move(in2);
  targets_ = std::move(tg2);
}

Dataset Dataset::subset(const std::vector<std::size_t>& indices) const {
  Dataset out(input_dim_, target_dim_);
  for (std::size_t idx : indices) {
    require(idx < size(), "Dataset::subset: index out of range");
    out.add(inputs_[idx], targets_[idx]);
  }
  return out;
}

std::pair<linalg::Vector, linalg::Vector> Dataset::input_range() const {
  require(!empty(), "Dataset::input_range: empty dataset");
  linalg::Vector lo = inputs_.front(), hi = inputs_.front();
  for (const auto& x : inputs_) {
    for (std::size_t i = 0; i < input_dim_; ++i) {
      lo[i] = std::min(lo[i], x[i]);
      hi[i] = std::max(hi[i], x[i]);
    }
  }
  return {std::move(lo), std::move(hi)};
}

}  // namespace safenn::data
