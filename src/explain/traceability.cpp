#include "explain/traceability.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace safenn::explain {

double pearson(const std::vector<double>& a, const std::vector<double>& b) {
  require(a.size() == b.size() && !a.empty(), "pearson: bad sample sizes");
  const double n = static_cast<double>(a.size());
  double ma = 0.0, mb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= n;
  mb /= n;
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma, db = b[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va <= 0.0 || vb <= 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

TraceabilityReport analyze_traceability(const nn::Network& net,
                                        const std::vector<linalg::Vector>& probes,
                                        const TraceabilityOptions& options) {
  require(!probes.empty(), "analyze_traceability: no probe inputs");
  const std::size_t in_dim = net.input_size();
  for (const auto& p : probes) {
    require(p.size() == in_dim, "analyze_traceability: probe dim mismatch");
  }

  // Gather activations: per hidden layer, per neuron, per probe.
  std::vector<nn::ForwardTrace> traces;
  traces.reserve(probes.size());
  for (const auto& p : probes) traces.push_back(net.forward_trace(p));

  // Feature columns.
  std::vector<std::vector<double>> feature_cols(
      in_dim, std::vector<double>(probes.size()));
  for (std::size_t s = 0; s < probes.size(); ++s) {
    for (std::size_t f = 0; f < in_dim; ++f) feature_cols[f][s] = probes[s][f];
  }

  TraceabilityReport report;
  std::size_t traceable = 0;
  std::size_t total = 0;
  // Hidden layers only (the output layer traces to the spec directly).
  for (std::size_t li = 0; li + 1 < net.num_layers(); ++li) {
    const std::size_t width = net.layer(li).out_size();
    for (std::size_t r = 0; r < width; ++r) {
      NeuronTrace trace;
      trace.layer = li;
      trace.neuron = r;
      std::vector<double> acts(probes.size());
      std::size_t active = 0;
      for (std::size_t s = 0; s < probes.size(); ++s) {
        acts[s] = traces[s].post_activations[li][r];
        if (acts[s] > 0.0) ++active;
      }
      trace.activation_rate =
          static_cast<double>(active) / static_cast<double>(probes.size());

      std::vector<std::pair<std::size_t, double>> corrs;
      corrs.reserve(in_dim);
      for (std::size_t f = 0; f < in_dim; ++f) {
        const double c = pearson(acts, feature_cols[f]);
        if (c != 0.0) corrs.emplace_back(f, c);
      }
      std::sort(corrs.begin(), corrs.end(), [](const auto& x, const auto& y) {
        return std::abs(x.second) > std::abs(y.second);
      });
      if (corrs.size() > options.top_k) corrs.resize(options.top_k);
      trace.top_features = std::move(corrs);

      ++total;
      if (!trace.top_features.empty() &&
          std::abs(trace.top_features.front().second) >=
              options.traceable_min_corr) {
        ++traceable;
      }
      report.neurons.push_back(std::move(trace));
    }
  }
  report.traceable_fraction =
      total == 0 ? 1.0
                 : static_cast<double>(traceable) / static_cast<double>(total);
  return report;
}

std::string render_traceability(const TraceabilityReport& report,
                                const std::vector<std::string>& feature_names) {
  std::ostringstream os;
  os << "neuron-to-feature traceability ("
     << report.neurons.size() << " neurons, "
     << static_cast<int>(report.traceable_fraction * 100.0)
     << "% traceable)\n";
  for (const NeuronTrace& t : report.neurons) {
    os << "  L" << t.layer << "/n" << t.neuron << " (active "
       << static_cast<int>(t.activation_rate * 100.0) << "%):";
    if (t.top_features.empty()) {
      os << " <dead or constant>";
    }
    for (const auto& [f, c] : t.top_features) {
      os << ' ';
      if (f < feature_names.size()) {
        os << feature_names[f];
      } else {
        os << 'x' << f;
      }
      os << '(' << (c >= 0 ? '+' : '-') << static_cast<int>(std::abs(c) * 100)
         << "%)";
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace safenn::explain
