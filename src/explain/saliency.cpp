#include "explain/saliency.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace safenn::explain {

linalg::Vector saliency(const nn::Network& net, const linalg::Vector& x,
                        std::size_t out_index) {
  const linalg::Vector grad = net.input_gradient(x, out_index);
  return linalg::hadamard(grad, x);
}

linalg::Vector mean_abs_saliency(const nn::Network& net,
                                 const std::vector<linalg::Vector>& probes,
                                 std::size_t out_index) {
  require(!probes.empty(), "mean_abs_saliency: no probes");
  linalg::Vector acc(net.input_size());
  for (const auto& p : probes) {
    const linalg::Vector s = saliency(net, p, out_index);
    for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += std::abs(s[i]);
  }
  acc *= 1.0 / static_cast<double>(probes.size());
  return acc;
}

std::vector<std::size_t> top_k_features(const linalg::Vector& attribution,
                                        std::size_t k) {
  std::vector<std::size_t> idx(attribution.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return std::abs(attribution[a]) > std::abs(attribution[b]);
  });
  if (idx.size() > k) idx.resize(k);
  return idx;
}

double attribution_concentration(const linalg::Vector& attribution,
                                 std::size_t k) {
  double total = 0.0;
  for (std::size_t i = 0; i < attribution.size(); ++i) {
    total += std::abs(attribution[i]);
  }
  if (total == 0.0) return 0.0;
  double top = 0.0;
  for (std::size_t i : top_k_features(attribution, k)) {
    top += std::abs(attribution[i]);
  }
  return top / total;
}

}  // namespace safenn::explain
