// Gradient-based feature attribution.
//
// Complements correlation traceability with a local explanation: which
// input features drive a particular output at a particular scene. The
// paper notes (Sec. IV(i)) that understandability "can only be partially
// achieved" by such techniques — the traceable_fraction and attribution
// concentration metrics below quantify that partiality.
#pragma once

#include <vector>

#include "nn/network.hpp"

namespace safenn::explain {

/// gradient x input attribution of output `out_index` at `x`.
linalg::Vector saliency(const nn::Network& net, const linalg::Vector& x,
                        std::size_t out_index);

/// Mean |gradient x input| over a probe set: a global importance ranking.
linalg::Vector mean_abs_saliency(const nn::Network& net,
                                 const std::vector<linalg::Vector>& probes,
                                 std::size_t out_index);

/// Indices of the k largest-magnitude entries of an attribution vector.
std::vector<std::size_t> top_k_features(const linalg::Vector& attribution,
                                        std::size_t k);

/// Fraction of total |attribution| mass carried by the top-k features —
/// near 1.0 means the output is explainable by few features.
double attribution_concentration(const linalg::Vector& attribution,
                                 std::size_t k);

}  // namespace safenn::explain
