// Neuron-to-feature traceability (paper Sec. II(A), Table I row 1).
//
// Classical certification demands fine-grained specification-to-code
// traceability; the paper's adaptation demands *neuron-to-feature*
// traceability: evidence associating individual neurons with the input
// conditions (features) under which they activate. For the case-study
// MLP we compute, over a probe dataset, the correlation between each
// input feature and each neuron's activation, and report the strongest
// associations per neuron.
#pragma once

#include <string>
#include <vector>

#include "nn/network.hpp"

namespace safenn::explain {

/// One neuron's strongest feature associations.
struct NeuronTrace {
  std::size_t layer = 0;
  std::size_t neuron = 0;
  /// (feature index, Pearson correlation), strongest first.
  std::vector<std::pair<std::size_t, double>> top_features;
  /// Fraction of probe inputs on which the neuron was active.
  double activation_rate = 0.0;
};

struct TraceabilityReport {
  std::vector<NeuronTrace> neurons;
  /// Fraction of neurons whose best |correlation| >= `traceable_min_corr`
  /// — the report's headline "how understandable is this network" number.
  double traceable_fraction = 0.0;
};

struct TraceabilityOptions {
  std::size_t top_k = 3;
  double traceable_min_corr = 0.5;
  /// Dead or constant neurons (zero activation variance) are reported
  /// with empty top_features.
};

/// Correlates every hidden neuron's post-activation with every input
/// feature over the probe set.
TraceabilityReport analyze_traceability(
    const nn::Network& net, const std::vector<linalg::Vector>& probes,
    const TraceabilityOptions& options = {});

/// Pearson correlation of two equal-length samples; 0 when either side
/// has no variance.
double pearson(const std::vector<double>& a, const std::vector<double>& b);

/// Renders a human-readable traceability table (one line per neuron),
/// resolving feature indices through `feature_names` when provided.
std::string render_traceability(const TraceabilityReport& report,
                                const std::vector<std::string>& feature_names = {});

}  // namespace safenn::explain
