// Numeric-token packing codec for canonical artifact text ("safenn-pack").
//
// The registry's wire format is deliberately text — canonical,
// deterministic, content-addressed by an FNV-1a hash over the exact
// bytes. Compression must therefore round-trip BITWISE: the decompressed
// text is re-hashed against the recorded checksum, so a codec that
// "mostly" reproduces the text is useless. General LZ windows do poorly
// here anyway — the payload is dominated by doubles printed at 17
// significant digits, whose digit streams are close to incompressible
// by backreference.
//
// This codec exploits what the text actually is instead: a stream of
// whitespace-separated numeric tokens. Each token that (a) parses as an
// int64 or double and (b) REPRINTS byte-identically under the canonical
// formatter (the same `setprecision(17)` rendering every safenn
// serializer uses) is replaced by its binary form — zigzag varint for
// integers (quantized payload weights), 8-byte IEEE bits for doubles
// (float weights: ~20 text bytes -> 9) — with the following separator
// folded into the opcode. Anything that fails the reprint check is
// carried as a literal run, so arbitrary text (including binary
// garbage) round-trips exactly. Decompression verifies the declared
// original size and throws safenn::Error on any malformed stream.
#pragma once

#include <string>
#include <string_view>

namespace safenn {

/// Magic prefix of every packed blob ("safenn-pack v1").
inline constexpr std::string_view kPackMagic = "SNPK1";

/// Packs `text` into the binary safenn-pack format. Always succeeds;
/// worst case (no packable tokens) the blob is the text plus a few
/// bytes of framing.
std::string compress_text(std::string_view text);

/// Exact inverse of compress_text. Throws safenn::Error on a blob that
/// is not well-formed safenn-pack (bad magic, truncated op, size
/// mismatch) — corruption never yields silently different text.
std::string decompress_text(std::string_view blob);

}  // namespace safenn
