#include "common/task_pool.hpp"

#include <algorithm>

namespace safenn {

TaskPool::TaskPool(std::size_t workers)
    : workers_(std::max<std::size_t>(1, workers)) {
  threads_.reserve(workers_ - 1);
  for (std::size_t i = 0; i + 1 < workers_; ++i) {
    threads_.emplace_back(&TaskPool::worker_loop, this);
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void TaskPool::run(const std::vector<std::function<void()>>& tasks) {
  if (tasks.empty()) return;
  if (threads_.empty()) {
    // Sequential fast path: no locks, exceptions propagate directly (the
    // first failing task, which is also the lowest-indexed one).
    for (const auto& task : tasks) task();
    return;
  }
  std::uint64_t gen;
  {
    std::lock_guard<std::mutex> lk(mu_);
    tasks_ = &tasks;
    next_ = 0;
    in_flight_ = 0;
    errors_.assign(tasks.size(), nullptr);
    gen = ++generation_;
  }
  cv_start_.notify_all();
  drain(gen);
  std::exception_ptr first_error;
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [&] { return next_ >= tasks.size() && in_flight_ == 0; });
    tasks_ = nullptr;
    for (std::exception_ptr& e : errors_) {
      if (e) {
        first_error = e;
        break;
      }
    }
    errors_.clear();
  }
  if (first_error) std::rethrow_exception(first_error);
}

void TaskPool::drain(std::uint64_t gen) {
  for (;;) {
    const std::function<void()>* task = nullptr;
    std::size_t idx = 0;
    {
      std::lock_guard<std::mutex> lk(mu_);
      // A straggler from a previous batch must not claim work from the
      // next one: the generation check pins this loop to its batch.
      if (stop_ || generation_ != gen || tasks_ == nullptr ||
          next_ >= tasks_->size()) {
        return;
      }
      idx = next_++;
      ++in_flight_;
      task = &(*tasks_)[idx];
    }
    try {
      (*task)();
    } catch (...) {
      std::lock_guard<std::mutex> lk(mu_);
      errors_[idx] = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      --in_flight_;
      if (tasks_ != nullptr && next_ >= tasks_->size() && in_flight_ == 0) {
        cv_done_.notify_all();
      }
    }
  }
}

void TaskPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    std::uint64_t gen;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_start_.wait(lk, [&] {
        return stop_ || (generation_ != seen && tasks_ != nullptr);
      });
      if (stop_) return;
      gen = seen = generation_;
    }
    drain(gen);
  }
}

}  // namespace safenn
