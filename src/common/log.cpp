#include "common/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace safenn {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

// Guards both the sink pointer and writes through it, so a message is
// always emitted as one uninterrupted line even under concurrency.
std::mutex g_sink_mu;
std::ostream* g_sink = nullptr;  // nullptr = std::cerr

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void set_log_sink(std::ostream* sink) {
  std::lock_guard<std::mutex> lock(g_sink_mu);
  g_sink = sink;
}

void log_message(LogLevel level, const std::string& msg) {
  if (level < g_level.load()) return;
  // Format outside the lock; write the finished line inside it.
  std::string line;
  line.reserve(msg.size() + 16);
  line += "[safenn ";
  line += level_name(level);
  line += "] ";
  line += msg;
  line += '\n';
  std::lock_guard<std::mutex> lock(g_sink_mu);
  (g_sink ? *g_sink : std::cerr) << line;
}

}  // namespace safenn
