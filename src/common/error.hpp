// Error handling primitives shared by every safenn module.
#pragma once

#include <stdexcept>
#include <string>

namespace safenn {

/// Base exception for all library errors. Thrown on contract violations
/// at API boundaries (bad dimensions, unknown names, malformed files).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Throws safenn::Error with `msg` when `cond` is false. Used for
/// precondition checks that must stay active in release builds.
inline void require(bool cond, const std::string& msg) {
  if (!cond) throw Error(msg);
}

}  // namespace safenn
