#include "common/stopwatch.hpp"

#include <limits>

namespace safenn {

Stopwatch::Stopwatch() : start_(std::chrono::steady_clock::now()) {}

void Stopwatch::reset() { start_ = std::chrono::steady_clock::now(); }

double Stopwatch::seconds() const {
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now - start_).count();
}

double Stopwatch::millis() const { return seconds() * 1000.0; }

Deadline::Deadline(double seconds) : unlimited_(seconds <= 0.0) {
  if (!unlimited_) {
    end_ = std::chrono::steady_clock::now() +
           std::chrono::duration_cast<std::chrono::steady_clock::duration>(
               std::chrono::duration<double>(seconds));
  }
}

bool Deadline::expired() const {
  return !unlimited_ && std::chrono::steady_clock::now() >= end_;
}

double Deadline::remaining() const {
  if (unlimited_) return std::numeric_limits<double>::infinity();
  const double r =
      std::chrono::duration<double>(end_ - std::chrono::steady_clock::now())
          .count();
  return r > 0.0 ? r : 0.0;
}

}  // namespace safenn
