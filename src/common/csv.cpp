#include "common/csv.hpp"

#include <sstream>

#include "common/error.hpp"

namespace safenn {

std::string csv_escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::set_header(std::vector<std::string> header) {
  require(rows_.empty(), "CsvWriter: header must be set before rows");
  header_ = std::move(header);
}

void CsvWriter::add_row(std::vector<std::string> row) {
  require(header_.empty() || row.size() == header_.size(),
          "CsvWriter: row width does not match header");
  rows_.push_back(std::move(row));
}

std::string CsvWriter::cell(double value, int precision) {
  std::ostringstream os;
  os.precision(precision);
  os << value;
  return os.str();
}

void CsvWriter::write(std::ostream& os) const {
  auto emit = [&os](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << csv_escape(row[i]);
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace safenn
