// Content hashing for artifact integrity (FNV-1a, 64-bit).
//
// The serialized-network format and the model registry both pin their
// payloads with a content hash: a deployed artifact must be byte-for-byte
// the one that was saved, or loading fails with a typed error. FNV-1a is
// not cryptographic — it detects corruption and truncation, which is the
// integrity property certification traceability needs here; swapping in a
// stronger hash later only changes this header.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/error.hpp"

namespace safenn {

/// Streaming FNV-1a 64-bit hasher.
class Fnv1a64 {
 public:
  static constexpr std::uint64_t kOffsetBasis = 14695981039346656037ull;
  static constexpr std::uint64_t kPrime = 1099511628211ull;

  void update(const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    std::uint64_t h = state_;
    for (std::size_t i = 0; i < size; ++i) {
      h ^= static_cast<std::uint64_t>(bytes[i]);
      h *= kPrime;
    }
    state_ = h;
  }

  void update(std::string_view s) { update(s.data(), s.size()); }

  std::uint64_t digest() const { return state_; }

 private:
  std::uint64_t state_ = kOffsetBasis;
};

/// One-shot hash of a byte string.
inline std::uint64_t fnv1a64(std::string_view s) {
  Fnv1a64 h;
  h.update(s);
  return h.digest();
}

/// Fixed-width (16 char) lowercase hex rendering of a 64-bit digest.
inline std::string hex64(std::uint64_t value) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[value & 0xf];
    value >>= 4;
  }
  return out;
}

/// Parses a hex64() string back to its value; throws safenn::Error on
/// anything that is not exactly 16 hex digits.
inline std::uint64_t parse_hex64(std::string_view s) {
  require(s.size() == 16, "parse_hex64: expected 16 hex digits");
  std::uint64_t value = 0;
  for (char c : s) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      throw Error("parse_hex64: invalid hex digit");
    }
  }
  return value;
}

}  // namespace safenn
