// Minimal CSV emission for benchmark/report artifacts.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace safenn {

/// Accumulates rows and streams them as RFC-4180-ish CSV. Cells containing
/// commas, quotes, or newlines are quoted and inner quotes doubled.
class CsvWriter {
 public:
  /// Sets the header row. Must be called before any add_row().
  void set_header(std::vector<std::string> header);

  /// Appends a data row; its width must match the header when one is set.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with `precision` significant digits.
  static std::string cell(double value, int precision = 9);

  /// Writes header + rows to `os`.
  void write(std::ostream& os) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Escapes one CSV cell (quoting when needed).
std::string csv_escape(const std::string& cell);

}  // namespace safenn
