// Cooperative cancellation for long-running solvers.
//
// Every search engine in the repo (MILP branch-and-bound, input-splitting
// verification, CDCL SAT) runs an unbounded loop whose only exits used to
// be a wall-clock deadline and engine-specific budgets, each polled with
// its own ad-hoc amortization. CancelToken unifies those exits behind one
// helper so a portfolio race can additionally stop an engine the moment a
// peer has already decided the query:
//
//   - an optional external flag (one relaxed atomic load per call —
//     cheap enough to poll unamortized), and
//   - an optional wall-clock Deadline, whose steady_clock read *is*
//     measurable against a node/conflict, so it is only consulted every
//     `stride` calls.
//
// Stride convention (documented here so every engine agrees): the clock
// is read on call 1 and then every stride-th call. Engines keep their
// historical polling rates — branch-and-bound calls should_stop() once
// per node with the default stride 16 (the pre-existing "every 16 nodes"
// amortization), the SAT solver once per conflict with stride 256, and
// the input-splitting verifier calls check_now() once per synchronous
// round (a round already amortizes over up to chunk_size boxes).
//
// The cause of the stop is sticky and typed: once should_stop() has
// returned true, cause() reports whether the deadline or the external
// flag fired, and the token keeps returning true.
#pragma once

#include <atomic>

#include "common/stopwatch.hpp"

namespace safenn {

/// Why a CancelToken told its engine to stop.
enum class StopCause {
  kNone,       // still running
  kDeadline,   // wall-clock limit hit
  kCancelled,  // external flag set (e.g. a portfolio peer decided)
};

inline const char* to_string(StopCause cause) {
  switch (cause) {
    case StopCause::kNone: return "none";
    case StopCause::kDeadline: return "deadline";
    case StopCause::kCancelled: return "cancelled";
  }
  return "?";
}

/// Amortized deadline + external-flag poll. One token per solve call (it
/// carries a mutable call counter); the external flag itself may be
/// shared by any number of tokens and writer threads.
class CancelToken {
 public:
  static constexpr long kDefaultStride = 16;

  /// Never stops: no deadline, no flag.
  CancelToken() : deadline_(0.0) {}

  /// `time_limit_seconds` <= 0 means no deadline; `cancel` may be null.
  explicit CancelToken(double time_limit_seconds,
                       const std::atomic<bool>* cancel = nullptr,
                       long stride = kDefaultStride)
      : deadline_(time_limit_seconds),
        cancel_(cancel),
        stride_(stride > 0 ? stride : 1) {}

  /// Amortized poll: checks the external flag on every call and the
  /// wall clock on call 1, stride+1, 2*stride+1, ... Returns true once
  /// either fires, and keeps returning true afterwards.
  bool should_stop() {
    if (cause_ != StopCause::kNone) return true;
    if (cancel_ && cancel_->load(std::memory_order_acquire)) {
      cause_ = StopCause::kCancelled;
      return true;
    }
    if (calls_++ % stride_ == 0 && !deadline_.unlimited() &&
        deadline_.expired()) {
      cause_ = StopCause::kDeadline;
      return true;
    }
    return false;
  }

  /// Unamortized poll for natural synchronization points (round
  /// boundaries), safe to call concurrently from reader threads. Does
  /// not latch the sticky cause — callers needing the cause recorded
  /// use should_stop() on the owning thread.
  bool check_now() const {
    if (cause_ != StopCause::kNone) return true;
    if (cancel_ && cancel_->load(std::memory_order_acquire)) return true;
    return !deadline_.unlimited() && deadline_.expired();
  }

  /// Latch the sticky cause from an unamortized check (owning thread).
  bool stop_now() {
    if (cause_ != StopCause::kNone) return true;
    if (cancel_ && cancel_->load(std::memory_order_acquire)) {
      cause_ = StopCause::kCancelled;
      return true;
    }
    if (!deadline_.unlimited() && deadline_.expired()) {
      cause_ = StopCause::kDeadline;
      return true;
    }
    return false;
  }

  StopCause cause() const { return cause_; }
  const Deadline& deadline() const { return deadline_; }

 private:
  Deadline deadline_;
  const std::atomic<bool>* cancel_ = nullptr;
  long stride_ = kDefaultStride;
  long calls_ = 0;
  StopCause cause_ = StopCause::kNone;
};

}  // namespace safenn
