// Tiny leveled logger. Solvers use it for optional search tracing; the
// serving runtime's worker pool logs from many threads concurrently, so
// sink writes are serialized (one mutex-guarded write per message —
// lines never interleave).
#pragma once

#include <ostream>
#include <sstream>
#include <string>

namespace safenn {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are dropped. Default kWarn so
/// tests and benches stay quiet unless explicitly enabled.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Redirects log output (nullptr restores the default, stderr). The sink
/// must outlive all logging; writes to it are mutex-serialized.
void set_log_sink(std::ostream* sink);

/// Emits `msg` to the sink when `level` >= the global level. Thread-safe:
/// each message is written whole under a lock.
void log_message(LogLevel level, const std::string& msg);

namespace detail {
template <typename... Args>
std::string concat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(const Args&... args) {
  if (log_level() <= LogLevel::kDebug)
    log_message(LogLevel::kDebug, detail::concat(args...));
}

template <typename... Args>
void log_info(const Args&... args) {
  if (log_level() <= LogLevel::kInfo)
    log_message(LogLevel::kInfo, detail::concat(args...));
}

template <typename... Args>
void log_warn(const Args&... args) {
  if (log_level() <= LogLevel::kWarn)
    log_message(LogLevel::kWarn, detail::concat(args...));
}

}  // namespace safenn
