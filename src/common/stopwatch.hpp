// Wall-clock timing used by verification benches (Table II reports
// per-instance verification time).
#pragma once

#include <chrono>

namespace safenn {

/// Monotonic wall-clock stopwatch. Started on construction.
class Stopwatch {
 public:
  Stopwatch();

  /// Restart the clock.
  void reset();

  /// Seconds elapsed since construction or last reset().
  double seconds() const;

  /// Milliseconds elapsed.
  double millis() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Deadline helper for solver time limits.
class Deadline {
 public:
  /// A deadline `seconds` from now; non-positive means "no limit".
  explicit Deadline(double seconds);

  /// True when the wall clock has passed the deadline.
  bool expired() const;

  /// Seconds remaining (clamped at 0); +inf when unlimited.
  double remaining() const;

  /// True when this deadline never expires.
  bool unlimited() const { return unlimited_; }

 private:
  bool unlimited_;
  std::chrono::steady_clock::time_point end_;
};

}  // namespace safenn
