#include "common/rng.hpp"

#include <cmath>

#include "common/error.hpp"

namespace safenn {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 top bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  require(n > 0, "Rng::uniform_index: n must be positive");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ull - (~0ull % n);
  std::uint64_t draw = next_u64();
  while (draw >= limit) draw = next_u64();
  return draw % n;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] to keep log() finite.
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

Rng Rng::split() { return Rng(next_u64()); }

std::uint64_t Rng::stream_seed(std::uint64_t base, std::uint64_t index) {
  // One golden-ratio stride per index, then the same SplitMix64 mix the
  // constructor uses: a pure function of (base, index), so every stream
  // is fixed before any worker starts drawing.
  std::uint64_t x = base + 0x9E3779B97F4A7C15ull * index;
  return splitmix64(x);
}

}  // namespace safenn
