#include "common/compress.hpp"

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/error.hpp"

namespace safenn {
namespace {

// Op stream (after magic + varint original size). Numeric ops fold the
// token's following separator into the opcode so the common "value then
// one space or newline" shape costs zero extra bytes.
enum Op : unsigned char {
  kOpLiteral = 0,        // varint length + raw bytes
  kOpIntSpace = 1,       // zigzag varint, then ' '
  kOpIntNewline = 2,     // zigzag varint, then '\n'
  kOpIntEnd = 3,         // zigzag varint, no separator (end of text)
  kOpDoubleSpace = 4,    // 8 IEEE-754 bytes (LE), then ' '
  kOpDoubleNewline = 5,  // 8 IEEE-754 bytes (LE), then '\n'
  kOpDoubleEnd = 6,      // 8 IEEE-754 bytes (LE), no separator
};

void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

std::size_t varint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

void put_double(std::string& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((bits >> (8 * i)) & 0xff));
  }
}

bool is_token_char(char c) {
  return (c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
         c == 'e' || c == 'E';
}

/// The canonical double rendering every safenn serializer emits
/// (`os << std::setprecision(17) << v` with default float formatting);
/// a token is only packed when it reprints to these exact bytes.
int format_double17(char* buf, std::size_t size, double v) {
  return std::snprintf(buf, size, "%.17g", v);
}

bool parse_int64(const char* begin, const char* end, std::int64_t& out) {
  errno = 0;
  char* stop = nullptr;
  const long long v = std::strtoll(begin, &stop, 10);
  if (errno != 0 || stop != end) return false;
  out = static_cast<std::int64_t>(v);
  return true;
}

bool parse_double(const char* begin, const char* end, double& out) {
  errno = 0;
  char* stop = nullptr;
  const double v = std::strtod(begin, &stop);
  if (errno != 0 || stop != end) return false;
  out = v;
  return true;
}

void flush_literal(std::string& out, std::string& lit) {
  if (lit.empty()) return;
  out.push_back(static_cast<char>(kOpLiteral));
  put_varint(out, lit.size());
  out.append(lit);
  lit.clear();
}

[[noreturn]] void corrupt(const char* what) {
  throw Error(std::string("decompress_text: ") + what);
}

}  // namespace

std::string compress_text(std::string_view text) {
  std::string out;
  out.reserve(text.size() / 2 + 16);
  out.append(kPackMagic);
  put_varint(out, text.size());

  std::string lit;
  // strtoll/strtod need a terminated buffer; tokens are short, so copy.
  char token_buf[64];
  char reprint[64];
  std::size_t i = 0;
  const std::size_t n = text.size();
  while (i < n) {
    std::size_t j = i;
    while (j < n && is_token_char(text[j])) ++j;
    const std::size_t tok_len = j - i;
    if (tok_len == 0) {
      lit.push_back(text[i]);
      ++i;
      continue;
    }
    const char sep = j < n ? text[j] : '\0';
    const bool at_end = j == n;
    const std::size_t sep_cost = at_end ? 0 : 1;
    if ((sep == ' ' || sep == '\n' || at_end) &&
        tok_len < sizeof(token_buf)) {
      std::memcpy(token_buf, text.data() + i, tok_len);
      token_buf[tok_len] = '\0';
      const char* tb_end = token_buf + tok_len;
      std::int64_t iv = 0;
      double dv = 0.0;
      if (parse_int64(token_buf, tb_end, iv)) {
        const int len = std::snprintf(reprint, sizeof(reprint), "%lld",
                                      static_cast<long long>(iv));
        if (len > 0 && static_cast<std::size_t>(len) == tok_len &&
            std::memcmp(reprint, token_buf, tok_len) == 0 &&
            1 + varint_size(zigzag(iv)) < tok_len + sep_cost) {
          flush_literal(out, lit);
          out.push_back(static_cast<char>(at_end       ? kOpIntEnd
                                          : sep == ' ' ? kOpIntSpace
                                                       : kOpIntNewline));
          put_varint(out, zigzag(iv));
          i = j + sep_cost;
          continue;
        }
      }
      if (parse_double(token_buf, tb_end, dv)) {
        const int len = format_double17(reprint, sizeof(reprint), dv);
        if (len > 0 && static_cast<std::size_t>(len) == tok_len &&
            std::memcmp(reprint, token_buf, tok_len) == 0 &&
            9 < tok_len + sep_cost) {
          flush_literal(out, lit);
          out.push_back(static_cast<char>(at_end       ? kOpDoubleEnd
                                          : sep == ' ' ? kOpDoubleSpace
                                                       : kOpDoubleNewline));
          put_double(out, dv);
          i = j + sep_cost;
          continue;
        }
      }
    }
    // Not packable: carry the token (separator follows as its own
    // literal char on the next iteration).
    lit.append(text.data() + i, tok_len);
    i = j;
  }
  flush_literal(out, lit);
  return out;
}

std::string decompress_text(std::string_view blob) {
  if (blob.size() < kPackMagic.size() ||
      blob.substr(0, kPackMagic.size()) != kPackMagic) {
    corrupt("bad magic (not a safenn-pack blob)");
  }
  std::size_t pos = kPackMagic.size();
  const auto read_varint = [&]() -> std::uint64_t {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      if (pos >= blob.size()) corrupt("truncated varint");
      const auto byte = static_cast<unsigned char>(blob[pos++]);
      if (shift >= 64) corrupt("oversized varint");
      v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return v;
      shift += 7;
    }
  };

  const std::uint64_t declared = read_varint();
  std::string out;
  out.reserve(declared);
  char reprint[64];
  while (pos < blob.size()) {
    const auto op = static_cast<unsigned char>(blob[pos++]);
    switch (op) {
      case kOpLiteral: {
        const std::uint64_t len = read_varint();
        if (len > blob.size() - pos) corrupt("truncated literal");
        out.append(blob.data() + pos, len);
        pos += len;
        break;
      }
      case kOpIntSpace:
      case kOpIntNewline:
      case kOpIntEnd: {
        const std::int64_t v = unzigzag(read_varint());
        const int len = std::snprintf(reprint, sizeof(reprint), "%lld",
                                      static_cast<long long>(v));
        if (len <= 0) corrupt("unprintable integer");
        out.append(reprint, static_cast<std::size_t>(len));
        if (op == kOpIntSpace) out.push_back(' ');
        if (op == kOpIntNewline) out.push_back('\n');
        break;
      }
      case kOpDoubleSpace:
      case kOpDoubleNewline:
      case kOpDoubleEnd: {
        if (blob.size() - pos < 8) corrupt("truncated double");
        std::uint64_t bits = 0;
        for (int i = 0; i < 8; ++i) {
          bits |= static_cast<std::uint64_t>(
                      static_cast<unsigned char>(blob[pos + i]))
                  << (8 * i);
        }
        pos += 8;
        double v = 0.0;
        std::memcpy(&v, &bits, sizeof(v));
        const int len = format_double17(reprint, sizeof(reprint), v);
        if (len <= 0) corrupt("unprintable double");
        out.append(reprint, static_cast<std::size_t>(len));
        if (op == kOpDoubleSpace) out.push_back(' ');
        if (op == kOpDoubleNewline) out.push_back('\n');
        break;
      }
      default:
        corrupt("unknown opcode");
    }
  }
  if (out.size() != declared) corrupt("size mismatch after decode");
  return out;
}

}  // namespace safenn
