// Deterministic random number generation.
//
// Every stochastic component in safenn (weight init, scenario sampling,
// data shuffling) draws from an explicitly seeded Rng so that tests and
// benchmarks are reproducible bit-for-bit across runs and platforms.
#pragma once

#include <cstdint>
#include <vector>

namespace safenn {

/// xoshiro256** PRNG seeded via SplitMix64. Not cryptographic; chosen for
/// speed, quality, and a tiny, dependency-free implementation.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit draw.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal draw (Box-Muller, cached second value).
  double normal();

  /// Normal draw with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli draw with probability `p` of true.
  bool bernoulli(double p);

  /// In-place Fisher-Yates shuffle of an index-addressable container.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_index(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child generator (for parallel components that
  /// must not share a stream).
  Rng split();

  /// Seed for the `index`-th parallel stream of a component seeded with
  /// `base`: one SplitMix64 mix over a golden-ratio stride, so
  /// consecutive indices give decorrelated seeds that depend only on
  /// (base, index) — never on which worker draws first or how draws
  /// interleave. This is the designated derivation for fixed-up-front
  /// per-task streams (e.g. one stream per scenario in the parallel
  /// dataset builder).
  static std::uint64_t stream_seed(std::uint64_t base, std::uint64_t index);

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace safenn
