// Deterministic worker pool — the repo-wide parallel execution substrate.
//
// Deliberately synchronous: run() executes a fixed batch of independent
// tasks and blocks until every one has returned. Every parallel consumer
// in the library (input-splitting verification, data-parallel training,
// scenario generation) relies on this barrier for determinism — work is
// evaluated concurrently as pure functions of pre-assigned slots, then
// merged in a fixed order, so results do not depend on how many workers
// executed the batch or how the OS scheduled them.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace safenn {

/// Persistent pool of `workers - 1` threads (the caller participates as
/// the last worker). With one worker no threads are spawned and run()
/// executes inline — the sequential path stays allocation- and
/// synchronization-free.
class TaskPool {
 public:
  explicit TaskPool(std::size_t workers);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  std::size_t workers() const { return workers_; }

  /// Runs every task in `tasks` exactly once, blocking until all have
  /// finished. Tasks must be independent (no ordering guarantees). If
  /// any task throws, the exception of the lowest-indexed failing task
  /// is rethrown after the batch completes (deterministic choice).
  void run(const std::vector<std::function<void()>>& tasks);

 private:
  void worker_loop();
  /// Claims and executes tasks of the generation-`gen` batch until none
  /// remain (or the batch changed underneath a straggler).
  void drain(std::uint64_t gen);

  const std::size_t workers_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::vector<std::function<void()>>* tasks_ = nullptr;  // guarded by mu_
  std::size_t next_ = 0;            // next unclaimed task index
  std::size_t in_flight_ = 0;       // claimed but unfinished tasks
  std::uint64_t generation_ = 0;    // bumped per run() batch
  bool stop_ = false;
  std::vector<std::exception_ptr> errors_;
};

}  // namespace safenn
