// Mixture density network (MDN) head.
//
// The case-study predictor (Lenz et al., IV'17) outputs "the probability
// distribution over all possible actions ... characterized as a Gaussian
// mixture model". We reproduce this with a standard MDN head: the network
// emits raw values that are interpreted as K mixture logits, K*D component
// means, and K*D log standard deviations for a D-dimensional action space
// (D = 2: lateral velocity, longitudinal acceleration).
//
// Verification surface: the component means are affine functions of the
// last hidden layer, so safety bounds on the *predicted lateral velocity*
// are linear objectives over the raw output neurons (see
// verify/milp_encoder.hpp).
#pragma once

#include <vector>

#include "linalg/vector.hpp"
#include "nn/network.hpp"

namespace safenn::nn {

/// A diagonal-covariance Gaussian mixture over a D-dimensional space.
struct GaussianMixture {
  std::vector<double> weights;               // K, sums to 1
  std::vector<linalg::Vector> means;         // K vectors of size D
  std::vector<linalg::Vector> sigmas;        // K vectors of size D (>0)

  std::size_t components() const { return weights.size(); }
  std::size_t dims() const { return means.empty() ? 0 : means[0].size(); }

  /// Probability density at `x`.
  double density(const linalg::Vector& x) const;

  /// Mixture mean: sum_k w_k mu_k.
  linalg::Vector mean() const;

  /// Index of the highest-weight component.
  std::size_t dominant_component() const;
};

/// Layout of the raw network output implementing an MDN head.
class MdnHead {
 public:
  MdnHead(std::size_t components, std::size_t dims);

  std::size_t components() const { return components_; }
  std::size_t dims() const { return dims_; }

  /// Required width of the network's raw output: K + 2*K*D.
  std::size_t raw_output_size() const;

  /// Raw output index of the mixture logit for component k.
  std::size_t logit_index(std::size_t k) const;
  /// Raw output index of mean dimension d of component k.
  std::size_t mean_index(std::size_t k, std::size_t d) const;
  /// Raw output index of log-sigma dimension d of component k.
  std::size_t log_sigma_index(std::size_t k, std::size_t d) const;

  /// Interprets a raw output vector as a mixture (softmax over logits,
  /// exp over log-sigmas, sigmas clamped to [min_sigma, +inf)).
  GaussianMixture parse(const linalg::Vector& raw) const;

  /// Negative log-likelihood of `target` under the mixture encoded by
  /// `raw`, and (optionally) its gradient w.r.t. `raw`.
  double nll(const linalg::Vector& raw, const linalg::Vector& target,
             linalg::Vector* grad_out = nullptr) const;

 private:
  std::size_t components_;
  std::size_t dims_;
  static constexpr double kMinSigma = 1e-3;
  static constexpr double kMaxAbsLogSigma = 7.0;
};

}  // namespace safenn::nn
