#include "nn/loss.hpp"

#include "common/error.hpp"

namespace safenn::nn {

double Loss::value(const linalg::Vector& output,
                   const linalg::Vector& target) const {
  linalg::Vector scratch;
  return value_and_grad(output, target, scratch);
}

double MseLoss::value_and_grad(const linalg::Vector& output,
                               const linalg::Vector& target,
                               linalg::Vector& grad_out) const {
  require(output.size() == target.size(), "MseLoss: size mismatch");
  const double n = static_cast<double>(output.size());
  grad_out = linalg::Vector(output.size());
  double loss = 0.0;
  for (std::size_t i = 0; i < output.size(); ++i) {
    const double d = output[i] - target[i];
    loss += d * d;
    grad_out[i] = 2.0 * d / n;
  }
  return loss / n;
}

double MdnLoss::value_and_grad(const linalg::Vector& output,
                               const linalg::Vector& target,
                               linalg::Vector& grad_out) const {
  return head_.nll(output, target, &grad_out);
}

}  // namespace safenn::nn
