// Feed-forward network: the unit of training, verification, coverage
// analysis and traceability throughout the library.
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "nn/layer.hpp"

namespace safenn::nn {

/// Per-layer record of one forward pass; consumed by backprop, coverage
/// instrumentation (sign of pre-activations = ReLU branch decisions) and
/// neuron-to-feature traceability.
struct ForwardTrace {
  linalg::Vector input;
  std::vector<linalg::Vector> pre_activations;   // one per layer
  std::vector<linalg::Vector> post_activations;  // one per layer
};

/// Batched counterpart of ForwardTrace: one sample per row of every
/// matrix. The matrices are reused across calls when the trace object is
/// kept alive (no per-batch allocation once warm).
struct BatchTrace {
  linalg::Matrix input;                          // B x in
  std::vector<linalg::Matrix> pre_activations;   // B x out, one per layer
  std::vector<linalg::Matrix> post_activations;  // B x out, one per layer
};

/// Per-layer parameter gradients produced by backprop.
struct Gradients {
  std::vector<linalg::Matrix> weight_grads;
  std::vector<linalg::Vector> bias_grads;

  void add_scaled(double s, const Gradients& rhs);
  void scale(double s);
  void zero();
};

/// Sequential fully-connected network.
class Network {
 public:
  Network() = default;

  /// Appends a layer; its input width must match the current output width.
  void add_layer(DenseLayer layer);

  /// Builds the paper's I4xN topology: `inputs` -> 4 hidden ReLU layers of
  /// width `hidden` -> `outputs` linear. ("I4x60" = inputs, 4 layers of 60.)
  static Network make_i4xn(std::size_t inputs, std::size_t hidden,
                           std::size_t outputs, Activation hidden_act,
                           Rng& rng);

  /// Fully-general MLP builder: widths = {in, h1, ..., out}.
  static Network make_mlp(const std::vector<std::size_t>& widths,
                          Activation hidden_act, Activation output_act,
                          Rng& rng);

  std::size_t num_layers() const { return layers_.size(); }
  const DenseLayer& layer(std::size_t i) const;
  DenseLayer& layer(std::size_t i);

  std::size_t input_size() const;
  std::size_t output_size() const;

  /// Total number of hidden+output neurons (rows across all layers).
  std::size_t num_neurons() const;

  /// Plain inference.
  linalg::Vector forward(const linalg::Vector& x) const;

  /// Batched inference: one sample per row; returns B x output_size().
  /// Each layer is one GEMM instead of B matvecs. With the default
  /// kReference backend every output row is bitwise identical to
  /// forward() on the corresponding input row; the opt-in kSimd backend
  /// (serving hot path) is tolerance-checked against kReference by the
  /// harness in linalg/verify_kernels.hpp instead. Training and
  /// verification call sites always use kReference — their determinism
  /// and encoding-faithfulness guarantees depend on its rounding.
  linalg::Matrix forward_batch(const linalg::Matrix& x,
                               linalg::KernelBackend backend =
                                   linalg::KernelBackend::kReference) const;

  /// Inference that records all intermediate values.
  ForwardTrace forward_trace(const linalg::Vector& x) const;

  /// Batched trace, reusing `trace`'s storage across calls.
  void forward_trace_batch(const linalg::Matrix& x, BatchTrace& trace) const;
  BatchTrace forward_trace_batch(const linalg::Matrix& x) const;

  /// Backpropagates dL/d(output) through the recorded trace and returns
  /// parameter gradients.
  Gradients backward(const ForwardTrace& trace,
                     const linalg::Vector& output_grad) const;

  /// Same, but accumulates into pre-shaped `grads` (zero_gradients()
  /// shape) without allocating a Gradients per sample.
  void backward_into(const ForwardTrace& trace,
                     const linalg::Vector& output_grad,
                     Gradients& grads) const;

  /// Batched backprop: row b of `out_grads` is dL/d(output) of sample b.
  /// Accumulates the batch-summed parameter gradients into pre-shaped
  /// `grads`; weight gradients are one delta^T * input GEMM per layer.
  /// The accumulated sums match per-sample backward() summed in row
  /// order bit for bit. Implemented as backward_deltas_batch followed by
  /// accumulate_layer_gradients over every layer.
  void backward_batch(const BatchTrace& trace,
                      const linalg::Matrix& out_grads,
                      Gradients& grads) const;

  /// Delta half of batched backprop: fills `deltas[li]` with dL/dZ of
  /// layer li (one sample per row) for every layer, touching no
  /// parameter gradients. Row b of every delta matrix depends only on
  /// row b of `out_grads` and row b of the trace, so a row-shard of the
  /// batch produces rows bitwise identical to the full batch — the
  /// data-parallel trainer runs this per shard concurrently. `deltas`
  /// is resized to num_layers() and its storage reused across calls.
  void backward_deltas_batch(const BatchTrace& trace,
                             const linalg::Matrix& out_grads,
                             std::vector<linalg::Matrix>& deltas) const;

  /// Gradient half of batched backprop for one layer: accumulates
  /// weight_grads[li] += delta^T * layer_input (rank-1 updates in
  /// ascending row order, via add_gemm_tn) and bias_grads[li] += column
  /// sums of delta in ascending row order. Because the accumulation
  /// order is ascending rows with no blocking over the batch dimension,
  /// chaining this call over consecutive row shards in ascending shard
  /// order is bitwise identical to one call on the full batch — the
  /// reduction-order determinism the parallel trainer relies on.
  void accumulate_layer_gradients(const BatchTrace& trace,
                                  const linalg::Matrix& delta, std::size_t li,
                                  Gradients& grads) const;

  /// Gradient of output component `out_index` w.r.t. the input vector
  /// (used by saliency-based traceability).
  linalg::Vector input_gradient(const linalg::Vector& x,
                                std::size_t out_index) const;

  /// Zero-shaped gradients matching this topology.
  Gradients zero_gradients() const;

  /// Applies `grads` scaled by `-step` to the parameters.
  void apply_gradients(const Gradients& grads, double step);

  /// Human-readable topology, e.g. "84-60-60-60-60-15 (relu)".
  std::string describe() const;

 private:
  std::vector<DenseLayer> layers_;
};

}  // namespace safenn::nn
