#include "nn/mdn.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace safenn::nn {
namespace {

constexpr double kLog2Pi = 1.8378770664093453;  // log(2*pi)

}  // namespace

double GaussianMixture::density(const linalg::Vector& x) const {
  require(x.size() == dims(), "GaussianMixture::density: dimension mismatch");
  double total = 0.0;
  for (std::size_t k = 0; k < components(); ++k) {
    double log_pdf = 0.0;
    for (std::size_t d = 0; d < dims(); ++d) {
      const double z = (x[d] - means[k][d]) / sigmas[k][d];
      log_pdf += -0.5 * (z * z + kLog2Pi) - std::log(sigmas[k][d]);
    }
    total += weights[k] * std::exp(log_pdf);
  }
  return total;
}

linalg::Vector GaussianMixture::mean() const {
  linalg::Vector m(dims());
  for (std::size_t k = 0; k < components(); ++k)
    m.add_scaled(weights[k], means[k]);
  return m;
}

std::size_t GaussianMixture::dominant_component() const {
  require(!weights.empty(), "GaussianMixture: empty mixture");
  return static_cast<std::size_t>(
      std::max_element(weights.begin(), weights.end()) - weights.begin());
}

MdnHead::MdnHead(std::size_t components, std::size_t dims)
    : components_(components), dims_(dims) {
  require(components > 0 && dims > 0, "MdnHead: need >=1 component and dim");
}

std::size_t MdnHead::raw_output_size() const {
  return components_ + 2 * components_ * dims_;
}

std::size_t MdnHead::logit_index(std::size_t k) const {
  require(k < components_, "MdnHead::logit_index: out of range");
  return k;
}

std::size_t MdnHead::mean_index(std::size_t k, std::size_t d) const {
  require(k < components_ && d < dims_, "MdnHead::mean_index: out of range");
  return components_ + k * dims_ + d;
}

std::size_t MdnHead::log_sigma_index(std::size_t k, std::size_t d) const {
  require(k < components_ && d < dims_,
          "MdnHead::log_sigma_index: out of range");
  return components_ + components_ * dims_ + k * dims_ + d;
}

GaussianMixture MdnHead::parse(const linalg::Vector& raw) const {
  require(raw.size() == raw_output_size(),
          "MdnHead::parse: raw output width mismatch");
  GaussianMixture gm;
  gm.weights.resize(components_);
  gm.means.assign(components_, linalg::Vector(dims_));
  gm.sigmas.assign(components_, linalg::Vector(dims_));

  // Stable softmax over logits.
  double max_logit = -std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < components_; ++k)
    max_logit = std::max(max_logit, raw[logit_index(k)]);
  double z = 0.0;
  for (std::size_t k = 0; k < components_; ++k) {
    gm.weights[k] = std::exp(raw[logit_index(k)] - max_logit);
    z += gm.weights[k];
  }
  for (double& w : gm.weights) w /= z;

  for (std::size_t k = 0; k < components_; ++k) {
    for (std::size_t d = 0; d < dims_; ++d) {
      gm.means[k][d] = raw[mean_index(k, d)];
      const double s = std::clamp(raw[log_sigma_index(k, d)],
                                  -kMaxAbsLogSigma, kMaxAbsLogSigma);
      gm.sigmas[k][d] = std::max(std::exp(s), kMinSigma);
    }
  }
  return gm;
}

double MdnHead::nll(const linalg::Vector& raw, const linalg::Vector& target,
                    linalg::Vector* grad_out) const {
  require(target.size() == dims_, "MdnHead::nll: target dimension mismatch");
  const GaussianMixture gm = parse(raw);

  // log N_k(target) per component, combined by log-sum-exp.
  std::vector<double> log_comp(components_);
  for (std::size_t k = 0; k < components_; ++k) {
    double lp = std::log(gm.weights[k]);
    for (std::size_t d = 0; d < dims_; ++d) {
      const double z = (target[d] - gm.means[k][d]) / gm.sigmas[k][d];
      lp += -0.5 * (z * z + kLog2Pi) - std::log(gm.sigmas[k][d]);
    }
    log_comp[k] = lp;
  }
  const double m = *std::max_element(log_comp.begin(), log_comp.end());
  double sum = 0.0;
  for (double lc : log_comp) sum += std::exp(lc - m);
  const double log_likelihood = m + std::log(sum);
  const double loss = -log_likelihood;

  if (grad_out) {
    linalg::Vector grad(raw_output_size());
    // Posterior responsibilities.
    std::vector<double> resp(components_);
    for (std::size_t k = 0; k < components_; ++k)
      resp[k] = std::exp(log_comp[k] - log_likelihood);
    for (std::size_t k = 0; k < components_; ++k) {
      grad[logit_index(k)] = gm.weights[k] - resp[k];
      for (std::size_t d = 0; d < dims_; ++d) {
        const double sigma = gm.sigmas[k][d];
        const double diff = gm.means[k][d] - target[d];
        grad[mean_index(k, d)] = resp[k] * diff / (sigma * sigma);
        grad[log_sigma_index(k, d)] =
            resp[k] * (1.0 - (diff * diff) / (sigma * sigma));
      }
    }
    *grad_out = std::move(grad);
  }
  return loss;
}

}  // namespace safenn::nn
