// Loss functions for training.
#pragma once

#include <memory>

#include "linalg/vector.hpp"
#include "nn/mdn.hpp"

namespace safenn::nn {

/// Differentiable loss over (network raw output, target).
class Loss {
 public:
  virtual ~Loss() = default;

  /// Returns the loss value and writes dL/d(output) into `grad_out`.
  virtual double value_and_grad(const linalg::Vector& output,
                                const linalg::Vector& target,
                                linalg::Vector& grad_out) const = 0;

  /// Loss value only.
  double value(const linalg::Vector& output,
               const linalg::Vector& target) const;
};

/// Mean squared error: (1/n) * sum (o_i - t_i)^2.
class MseLoss final : public Loss {
 public:
  double value_and_grad(const linalg::Vector& output,
                        const linalg::Vector& target,
                        linalg::Vector& grad_out) const override;
};

/// Negative log-likelihood of the target action under the MDN head's
/// Gaussian mixture (the case-study predictor's training loss).
class MdnLoss final : public Loss {
 public:
  explicit MdnLoss(MdnHead head) : head_(std::move(head)) {}

  double value_and_grad(const linalg::Vector& output,
                        const linalg::Vector& target,
                        linalg::Vector& grad_out) const override;

  const MdnHead& head() const { return head_; }

 private:
  MdnHead head_;
};

}  // namespace safenn::nn
