#include "nn/serialize.hpp"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/hash.hpp"

namespace safenn::nn {
namespace {

constexpr const char* kMagic = "safenn-network";
constexpr const char* kVersion = "v2";

[[noreturn]] void fail(SerializeError::Kind kind, const std::string& what) {
  throw SerializeError(kind, "load_network: " + what);
}

void check(bool cond, SerializeError::Kind kind, const std::string& what) {
  if (!cond) fail(kind, what);
}

/// Serializes the layer payload (everything between the header line and
/// the checksum line) — the byte range the checksum covers.
std::string payload_text(const Network& net) {
  std::ostringstream os;
  os << "layers " << net.num_layers() << '\n';
  os << std::setprecision(17);
  for (std::size_t li = 0; li < net.num_layers(); ++li) {
    const DenseLayer& l = net.layer(li);
    os << "layer " << l.in_size() << ' ' << l.out_size() << ' '
       << to_string(l.activation()) << '\n';
    for (std::size_t i = 0; i < l.out_size(); ++i) {
      os << l.biases()[i];
      os << (i + 1 == l.out_size() ? '\n' : ' ');
    }
    for (std::size_t r = 0; r < l.out_size(); ++r) {
      for (std::size_t c = 0; c < l.in_size(); ++c) {
        os << l.weights()(r, c);
        os << (c + 1 == l.in_size() ? '\n' : ' ');
      }
    }
  }
  return os.str();
}

Network parse_payload(const std::string& payload) {
  std::istringstream is(payload);
  std::string token;
  is >> token;
  check(token == "layers", SerializeError::Kind::kMalformed,
        "expected 'layers'");
  std::size_t num_layers = 0;
  is >> num_layers;
  check(is.good() && num_layers > 0, SerializeError::Kind::kMalformed,
        "bad layer count");

  Network net;
  for (std::size_t li = 0; li < num_layers; ++li) {
    is >> token;
    check(token == "layer", SerializeError::Kind::kMalformed,
          "expected 'layer'");
    std::size_t in = 0, out = 0;
    std::string act_name;
    is >> in >> out >> act_name;
    check(is.good() && in > 0 && out > 0, SerializeError::Kind::kMalformed,
          "bad layer shape");
    DenseLayer layer(in, out, activation_from_string(act_name));
    for (std::size_t i = 0; i < out; ++i) {
      is >> layer.biases()[i];
    }
    for (std::size_t r = 0; r < out; ++r) {
      for (std::size_t c = 0; c < in; ++c) {
        is >> layer.weights()(r, c);
      }
    }
    check(!is.fail(), SerializeError::Kind::kMalformed,
          "malformed parameter value");
    net.add_layer(std::move(layer));
  }
  return net;
}

}  // namespace

const char* to_string(SerializeError::Kind kind) {
  switch (kind) {
    case SerializeError::Kind::kBadMagic: return "bad-magic";
    case SerializeError::Kind::kUnsupportedVersion:
      return "unsupported-version";
    case SerializeError::Kind::kTruncated: return "truncated";
    case SerializeError::Kind::kChecksumMismatch: return "checksum-mismatch";
    case SerializeError::Kind::kMalformed: return "malformed";
    case SerializeError::Kind::kIo: return "io";
  }
  return "?";
}

void save_network(std::ostream& os, const Network& net) {
  const std::string payload = payload_text(net);
  os << kMagic << ' ' << kVersion << '\n'
     << payload << "checksum " << hex64(fnv1a64(payload)) << '\n';
}

Network load_network(std::istream& is) {
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return network_from_string(buffer.str());
}

std::uint64_t network_checksum(const Network& net) {
  return fnv1a64(payload_text(net));
}

std::string network_to_string(const Network& net) {
  std::ostringstream os;
  save_network(os, net);
  return os.str();
}

Network network_from_string(const std::string& text) {
  // Header line: "safenn-network v2\n".
  const std::size_t header_end = text.find('\n');
  check(header_end != std::string::npos, SerializeError::Kind::kBadMagic,
        "missing header line");
  {
    std::istringstream header(text.substr(0, header_end));
    std::string magic, version;
    header >> magic >> version;
    check(magic == kMagic, SerializeError::Kind::kBadMagic,
          "not a safenn-network file");
    check(version == kVersion, SerializeError::Kind::kUnsupportedVersion,
          "unsupported format version '" + version + "' (want " + kVersion +
              ")");
  }

  // Trailing line: "checksum <16-hex>\n" — its absence means the file was
  // cut short; nothing is parsed until the payload hashes correctly.
  const std::string marker = "checksum ";
  const std::size_t marker_pos = text.rfind("\n" + marker);
  check(marker_pos != std::string::npos && marker_pos > header_end,
        SerializeError::Kind::kTruncated,
        "missing checksum trailer (truncated file?)");
  std::string recorded_hex =
      text.substr(marker_pos + 1 + marker.size());
  while (!recorded_hex.empty() &&
         (recorded_hex.back() == '\n' || recorded_hex.back() == '\r')) {
    recorded_hex.pop_back();
  }
  std::uint64_t recorded = 0;
  try {
    recorded = parse_hex64(recorded_hex);
  } catch (const Error&) {
    fail(SerializeError::Kind::kMalformed, "unparseable checksum value");
  }

  const std::string payload =
      text.substr(header_end + 1, marker_pos - header_end);
  const std::uint64_t actual = fnv1a64(payload);
  check(actual == recorded, SerializeError::Kind::kChecksumMismatch,
        "payload checksum " + hex64(actual) + " != recorded " + recorded_hex);

  return parse_payload(payload);
}

void save_network_file(const std::string& path, const Network& net) {
  std::ofstream os(path);
  if (!os.is_open()) {
    throw SerializeError(SerializeError::Kind::kIo,
                         "save_network_file: cannot open '" + path + "'");
  }
  save_network(os, net);
  if (!os.good()) {
    throw SerializeError(SerializeError::Kind::kIo,
                         "save_network_file: write failure on '" + path + "'");
  }
}

Network load_network_file(const std::string& path) {
  std::ifstream is(path);
  if (!is.is_open()) {
    throw SerializeError(SerializeError::Kind::kIo,
                         "load_network_file: cannot open '" + path + "'");
  }
  return load_network(is);
}

}  // namespace safenn::nn
