#include "nn/serialize.hpp"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace safenn::nn {

void save_network(std::ostream& os, const Network& net) {
  os << "safenn-network v1\n";
  os << "layers " << net.num_layers() << '\n';
  os << std::setprecision(17);
  for (std::size_t li = 0; li < net.num_layers(); ++li) {
    const DenseLayer& l = net.layer(li);
    os << "layer " << l.in_size() << ' ' << l.out_size() << ' '
       << to_string(l.activation()) << '\n';
    for (std::size_t i = 0; i < l.out_size(); ++i) {
      os << l.biases()[i];
      os << (i + 1 == l.out_size() ? '\n' : ' ');
    }
    for (std::size_t r = 0; r < l.out_size(); ++r) {
      for (std::size_t c = 0; c < l.in_size(); ++c) {
        os << l.weights()(r, c);
        os << (c + 1 == l.in_size() ? '\n' : ' ');
      }
    }
  }
}

Network load_network(std::istream& is) {
  std::string magic, version;
  is >> magic >> version;
  require(is.good() && magic == "safenn-network" && version == "v1",
          "load_network: bad header");

  std::string token;
  is >> token;
  require(token == "layers", "load_network: expected 'layers'");
  std::size_t num_layers = 0;
  is >> num_layers;
  require(is.good() && num_layers > 0, "load_network: bad layer count");

  Network net;
  for (std::size_t li = 0; li < num_layers; ++li) {
    is >> token;
    require(token == "layer", "load_network: expected 'layer'");
    std::size_t in = 0, out = 0;
    std::string act_name;
    is >> in >> out >> act_name;
    require(is.good() && in > 0 && out > 0, "load_network: bad layer shape");
    DenseLayer layer(in, out, activation_from_string(act_name));
    for (std::size_t i = 0; i < out; ++i) {
      is >> layer.biases()[i];
    }
    for (std::size_t r = 0; r < out; ++r) {
      for (std::size_t c = 0; c < in; ++c) {
        is >> layer.weights()(r, c);
      }
    }
    require(is.good() || is.eof(), "load_network: truncated parameters");
    require(!is.fail(), "load_network: malformed parameter value");
    net.add_layer(std::move(layer));
  }
  return net;
}

void save_network_file(const std::string& path, const Network& net) {
  std::ofstream os(path);
  require(os.is_open(), "save_network_file: cannot open '" + path + "'");
  save_network(os, net);
  require(os.good(), "save_network_file: write failure on '" + path + "'");
}

Network load_network_file(const std::string& path) {
  std::ifstream is(path);
  require(is.is_open(), "load_network_file: cannot open '" + path + "'");
  return load_network(is);
}

}  // namespace safenn::nn
