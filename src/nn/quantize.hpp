// Fixed-point quantization of networks (paper Sec. IV(ii)).
//
// The paper suggests that quantized networks [Hubara et al.] could make
// verification more scalable "via an encoding to bitvector theories in
// SMT". We implement that pipeline: a network is quantized to two's
// complement fixed point, inference is exact integer arithmetic, and
// smt/qnn_encoder.hpp compiles the very same semantics to a CNF formula.
//
// Number format: signed fixed point with `frac_bits` fractional bits,
// value = q * 2^-frac_bits. A layer computes
//   acc_i = sum_j W_ij * x_j + B_i        (accumulator: 2*frac_bits)
//   z_i   = acc_i >> frac_bits            (arithmetic shift, floor)
//   y_i   = relu(z_i) or z_i
// which is what the bit-vector circuit reproduces gate-for-gate.
//
// Overflow is a verification concern, not a runtime one: quantize() and
// accumulator_bounds() propagate worst-case magnitudes with checked
// arithmetic and throw a typed QuantizeError the moment a requested
// (network, frac_bits) pair could overflow int64 — inference over an
// admitted network is UB-free by construction. The packed batched
// engine (nn/qengine.hpp) applies the same discipline against its
// narrower int16/int32 storage.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "linalg/kernels.hpp"
#include "linalg/vector.hpp"
#include "nn/network.hpp"

namespace safenn::nn {

/// Typed rejection from the quantization/packing pipeline. Thrown (never
/// UB) when a network cannot be represented exactly at the requested
/// precision; callers switch on kind() to distinguish "pick fewer
/// frac_bits" from "this architecture is out of the exact fragment".
class QuantizeError : public Error {
 public:
  enum class Kind {
    kUnsupportedActivation,  ///< Not ReLU/identity (no exact encoding).
    kWeightRange,            ///< A scaled weight exceeds its storage type.
    kActivationRange,        ///< An intermediate activation bound exceeds
                             ///< the packed engine's int32 storage.
    kAccumulatorOverflow,    ///< Worst-case accumulator exceeds int64.
  };

  QuantizeError(Kind kind, const std::string& message)
      : Error(message), kind_(kind) {}

  Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

const char* to_string(QuantizeError::Kind kind);

/// One quantized dense layer. Biases are pre-scaled to the accumulator's
/// 2*frac_bits format so they add directly into the product sum.
struct QuantizedLayer {
  std::vector<std::vector<std::int64_t>> weights;  // out x in, frac_bits
  std::vector<std::int64_t> biases;                // 2*frac_bits
  Activation activation = Activation::kIdentity;   // kRelu or kIdentity

  std::size_t in_size() const { return weights.empty() ? 0 : weights[0].size(); }
  std::size_t out_size() const { return weights.size(); }
};

/// Reusable per-layer buffers for the scalar fixed-point forward. One
/// scratch per thread/stream; forward_fixed grows it on first use and
/// every later call is allocation-free.
struct FixedScratch {
  std::vector<std::int64_t> a;
  std::vector<std::int64_t> b;
};

/// A fixed-point network with exact, replayable integer semantics.
class QuantizedNetwork {
 public:
  QuantizedNetwork(int frac_bits, std::vector<QuantizedLayer> layers);

  /// Quantizes a trained real-valued network (round-to-nearest). Only
  /// ReLU/identity activations are supported — the piecewise-linear
  /// fragment that admits exact bit-vector encodings. Throws a typed
  /// QuantizeError when a scaled weight/bias cannot be represented or
  /// when the worst-case accumulator over inputs bounded by
  /// |x| <= input_bound_real would overflow int64 at this frac_bits.
  static QuantizedNetwork quantize(const Network& net, int frac_bits,
                                   double input_bound_real = 1.0);

  int frac_bits() const { return frac_bits_; }
  std::size_t num_layers() const { return layers_.size(); }
  const QuantizedLayer& layer(std::size_t i) const;
  std::size_t input_size() const;
  std::size_t output_size() const;

  /// Exact fixed-point inference (inputs and outputs in frac_bits format).
  std::vector<std::int64_t> forward_fixed(
      const std::vector<std::int64_t>& input) const;

  /// Allocation-free variant: returns a reference into `scratch`, valid
  /// until the next call with the same scratch. Bitwise identical to the
  /// allocating overload.
  const std::vector<std::int64_t>& forward_fixed(
      const std::vector<std::int64_t>& input, FixedScratch& scratch) const;

  /// Batched exact inference: one row per sample. Packs the network into
  /// the int16/int32 engine (nn/qengine.hpp) and runs the batched integer
  /// GEMM under `backend` when the weights admit it; falls back to the
  /// scalar path otherwise. Either way the result is BITWISE identical to
  /// per-sample forward_fixed — integer kernels carry no tolerance.
  std::vector<std::vector<std::int64_t>> forward_fixed_batch(
      const std::vector<std::vector<std::int64_t>>& inputs,
      linalg::KernelBackend backend =
          linalg::KernelBackend::kQuantized) const;

  /// Convenience: quantize a real input, run fixed-point inference, and
  /// de-quantize the result.
  linalg::Vector forward_real(const linalg::Vector& x) const;

  std::int64_t to_fixed(double x) const;
  double from_fixed(std::int64_t q) const;

  /// Worst-case absolute accumulator value per layer given inputs bounded
  /// by |x| <= input_bound (fixed-point units); used to size bit-vector
  /// word widths so the CNF encoding cannot overflow. Bound propagation
  /// itself is overflow-checked: throws QuantizeError
  /// (kAccumulatorOverflow) if any worst case exceeds int64 — the typed
  /// signal that this (network, frac_bits, domain) is not servable.
  std::vector<std::int64_t> accumulator_bounds(
      std::int64_t input_bound) const;

  /// Mean absolute output error vs. the real network over given samples.
  double quantization_error(const Network& reference,
                            const std::vector<linalg::Vector>& samples) const;

 private:
  int frac_bits_;
  std::vector<QuantizedLayer> layers_;
};

}  // namespace safenn::nn
