// Fixed-point quantization of networks (paper Sec. IV(ii)).
//
// The paper suggests that quantized networks [Hubara et al.] could make
// verification more scalable "via an encoding to bitvector theories in
// SMT". We implement that pipeline: a network is quantized to two's
// complement fixed point, inference is exact integer arithmetic, and
// smt/qnn_encoder.hpp compiles the very same semantics to a CNF formula.
//
// Number format: signed fixed point with `frac_bits` fractional bits,
// value = q * 2^-frac_bits. A layer computes
//   acc_i = sum_j W_ij * x_j + B_i        (accumulator: 2*frac_bits)
//   z_i   = acc_i >> frac_bits            (arithmetic shift, floor)
//   y_i   = relu(z_i) or z_i
// which is what the bit-vector circuit reproduces gate-for-gate.
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/vector.hpp"
#include "nn/network.hpp"

namespace safenn::nn {

/// One quantized dense layer. Biases are pre-scaled to the accumulator's
/// 2*frac_bits format so they add directly into the product sum.
struct QuantizedLayer {
  std::vector<std::vector<std::int64_t>> weights;  // out x in, frac_bits
  std::vector<std::int64_t> biases;                // 2*frac_bits
  Activation activation = Activation::kIdentity;   // kRelu or kIdentity

  std::size_t in_size() const { return weights.empty() ? 0 : weights[0].size(); }
  std::size_t out_size() const { return weights.size(); }
};

/// A fixed-point network with exact, replayable integer semantics.
class QuantizedNetwork {
 public:
  QuantizedNetwork(int frac_bits, std::vector<QuantizedLayer> layers);

  /// Quantizes a trained real-valued network (round-to-nearest). Only
  /// ReLU/identity activations are supported — the piecewise-linear
  /// fragment that admits exact bit-vector encodings.
  static QuantizedNetwork quantize(const Network& net, int frac_bits);

  int frac_bits() const { return frac_bits_; }
  std::size_t num_layers() const { return layers_.size(); }
  const QuantizedLayer& layer(std::size_t i) const;
  std::size_t input_size() const;
  std::size_t output_size() const;

  /// Exact fixed-point inference (inputs and outputs in frac_bits format).
  std::vector<std::int64_t> forward_fixed(
      const std::vector<std::int64_t>& input) const;

  /// Convenience: quantize a real input, run fixed-point inference, and
  /// de-quantize the result.
  linalg::Vector forward_real(const linalg::Vector& x) const;

  std::int64_t to_fixed(double x) const;
  double from_fixed(std::int64_t q) const;

  /// Worst-case absolute accumulator value per layer given inputs bounded
  /// by |x| <= input_bound (fixed-point units); used to size bit-vector
  /// word widths so the CNF encoding cannot overflow.
  std::vector<std::int64_t> accumulator_bounds(
      std::int64_t input_bound) const;

  /// Mean absolute output error vs. the real network over given samples.
  double quantization_error(const Network& reference,
                            const std::vector<linalg::Vector>& samples) const;

 private:
  int frac_bits_;
  std::vector<QuantizedLayer> layers_;
};

}  // namespace safenn::nn
