#include "nn/activation.hpp"

#include <cmath>

#include "common/error.hpp"

namespace safenn::nn {

double activate(Activation a, double x) {
  switch (a) {
    case Activation::kIdentity: return x;
    case Activation::kRelu: return x > 0.0 ? x : 0.0;
    case Activation::kTanh: return std::tanh(x);
    case Activation::kAtan: return std::atan(x);
    case Activation::kSigmoid: return 1.0 / (1.0 + std::exp(-x));
  }
  throw Error("activate: unknown activation");
}

linalg::Vector activate(Activation a, const linalg::Vector& x) {
  linalg::Vector out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = activate(a, x[i]);
  return out;
}

void activate(Activation a, const linalg::Matrix& z, linalg::Matrix& out,
              linalg::KernelBackend backend) {
  out.resize(z.rows(), z.cols());
  const double* in = z.data();
  double* o = out.data();
  const std::size_t n = z.size();
  switch (a) {
    case Activation::kIdentity:
      for (std::size_t i = 0; i < n; ++i) o[i] = in[i];
      return;
    case Activation::kRelu:
      if (backend == linalg::KernelBackend::kSimd) {
        linalg::kernels::simd_relu(in, o, n);
        return;
      }
      for (std::size_t i = 0; i < n; ++i) o[i] = in[i] > 0.0 ? in[i] : 0.0;
      return;
    case Activation::kTanh:
      for (std::size_t i = 0; i < n; ++i) o[i] = std::tanh(in[i]);
      return;
    case Activation::kAtan:
      for (std::size_t i = 0; i < n; ++i) o[i] = std::atan(in[i]);
      return;
    case Activation::kSigmoid:
      for (std::size_t i = 0; i < n; ++i) o[i] = 1.0 / (1.0 + std::exp(-in[i]));
      return;
  }
  throw Error("activate: unknown activation");
}

double activate_derivative(Activation a, double x) {
  switch (a) {
    case Activation::kIdentity: return 1.0;
    case Activation::kRelu: return x > 0.0 ? 1.0 : 0.0;
    case Activation::kTanh: {
      const double t = std::tanh(x);
      return 1.0 - t * t;
    }
    case Activation::kAtan: return 1.0 / (1.0 + x * x);
    case Activation::kSigmoid: {
      const double s = 1.0 / (1.0 + std::exp(-x));
      return s * (1.0 - s);
    }
  }
  throw Error("activate_derivative: unknown activation");
}

linalg::Vector activate_derivative(Activation a, const linalg::Vector& x) {
  linalg::Vector out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    out[i] = activate_derivative(a, x[i]);
  return out;
}

void activate_derivative(Activation a, const linalg::Matrix& z,
                         linalg::Matrix& out) {
  out.resize(z.rows(), z.cols());
  const double* in = z.data();
  double* o = out.data();
  const std::size_t n = z.size();
  switch (a) {
    case Activation::kIdentity:
      for (std::size_t i = 0; i < n; ++i) o[i] = 1.0;
      return;
    case Activation::kRelu:
      for (std::size_t i = 0; i < n; ++i) o[i] = in[i] > 0.0 ? 1.0 : 0.0;
      return;
    case Activation::kTanh:
      for (std::size_t i = 0; i < n; ++i) {
        const double t = std::tanh(in[i]);
        o[i] = 1.0 - t * t;
      }
      return;
    case Activation::kAtan:
      for (std::size_t i = 0; i < n; ++i) o[i] = 1.0 / (1.0 + in[i] * in[i]);
      return;
    case Activation::kSigmoid:
      for (std::size_t i = 0; i < n; ++i) {
        const double s = 1.0 / (1.0 + std::exp(-in[i]));
        o[i] = s * (1.0 - s);
      }
      return;
  }
  throw Error("activate_derivative: unknown activation");
}

bool is_piecewise_linear(Activation a) {
  return a == Activation::kIdentity || a == Activation::kRelu;
}

int branch_count(Activation a) {
  return a == Activation::kRelu ? 1 : 0;
}

std::string to_string(Activation a) {
  switch (a) {
    case Activation::kIdentity: return "identity";
    case Activation::kRelu: return "relu";
    case Activation::kTanh: return "tanh";
    case Activation::kAtan: return "atan";
    case Activation::kSigmoid: return "sigmoid";
  }
  throw Error("to_string: unknown activation");
}

Activation activation_from_string(const std::string& name) {
  if (name == "identity") return Activation::kIdentity;
  if (name == "relu") return Activation::kRelu;
  if (name == "tanh") return Activation::kTanh;
  if (name == "atan") return Activation::kAtan;
  if (name == "sigmoid") return Activation::kSigmoid;
  throw Error("activation_from_string: unknown activation '" + name + "'");
}

}  // namespace safenn::nn
