// Fully-connected layer.
#pragma once

#include "common/rng.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "nn/activation.hpp"

namespace safenn::nn {

/// y = act(W x + b). Weights are (out x in), row r holding neuron r's
/// incoming weights — the layout the MILP encoder reads directly.
class DenseLayer {
 public:
  DenseLayer() = default;
  DenseLayer(std::size_t in, std::size_t out, Activation act);

  std::size_t in_size() const { return weights_.cols(); }
  std::size_t out_size() const { return weights_.rows(); }
  Activation activation() const { return activation_; }

  const linalg::Matrix& weights() const { return weights_; }
  const linalg::Vector& biases() const { return biases_; }
  linalg::Matrix& weights() { return weights_; }
  linalg::Vector& biases() { return biases_; }

  /// Pre-activation z = W x + b.
  linalg::Vector pre_activation(const linalg::Vector& x) const;

  /// Batched pre-activation: Z = X W^T + 1 b^T, one sample per row of
  /// `x`. `z` is resized, reusing its storage across calls. With the
  /// default kReference backend each row is bitwise identical to
  /// pre_activation() on that row; kSimd reassociates the contraction
  /// and is tolerance-checked instead (linalg/verify_kernels.hpp).
  void pre_activation_batch(const linalg::Matrix& x, linalg::Matrix& z,
                            linalg::KernelBackend backend =
                                linalg::KernelBackend::kReference) const;

  /// Post-activation act(W x + b).
  linalg::Vector forward(const linalg::Vector& x) const;

  /// He/Xavier initialization matched to the activation (He for ReLU,
  /// Xavier otherwise).
  void init_weights(Rng& rng);

 private:
  linalg::Matrix weights_;
  linalg::Vector biases_;
  Activation activation_ = Activation::kIdentity;
};

}  // namespace safenn::nn
