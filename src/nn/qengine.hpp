// Packed batched fixed-point inference engine.
//
// QuantizedNetwork (nn/quantize.hpp) is the semantic reference: exact
// integer arithmetic over vector<vector<int64>>, one sample at a time —
// what the CNF encoder compiles and the SMT stack verifies. This engine
// is the SERVING form of the same function: weights packed to
// contiguous int16 rows, activations to int32 rows (linalg/qmatrix.hpp),
// batches pushed through the integer GEMM with SIMD dispatch. The
// contract is BITWISE equality with QuantizedNetwork::forward_fixed for
// every admitted input — integer addition is associative, so packing
// and vectorization change only the summation order, never the bits.
//
// Admission happens at construction: the engine propagates worst-case
// magnitude bounds over the declared input domain |x| <= input_limit
// and throws a typed QuantizeError if any weight misses int16, any
// intermediate activation bound misses int32, or any accumulator bound
// misses int64. An engine that constructs cannot overflow at runtime.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "linalg/kernels.hpp"
#include "linalg/matrix.hpp"
#include "linalg/qmatrix.hpp"
#include "nn/quantize.hpp"

namespace safenn::nn {

class QuantizedEngine {
 public:
  /// Packs `qnet` for inputs bounded by |x| <= input_limit (real units;
  /// inputs are saturated to the limit on conversion, so the bound is
  /// enforced, not assumed). `kernel_backend` picks the integer kernel:
  /// kReference forces the scalar reference, anything else resolves
  /// through the SIMD dispatch — all bitwise identical.
  QuantizedEngine(const QuantizedNetwork& qnet, double input_limit,
                  linalg::KernelBackend kernel_backend =
                      linalg::KernelBackend::kQuantized);

  int frac_bits() const { return frac_bits_; }
  double input_limit() const { return input_limit_; }
  std::int64_t input_limit_fixed() const { return input_limit_fixed_; }
  linalg::KernelBackend kernel_backend() const { return kernel_backend_; }
  std::size_t num_layers() const { return layers_.size(); }
  std::size_t input_size() const { return layers_.front().weights.cols(); }
  std::size_t output_size() const { return layers_.back().weights.rows(); }
  /// Worst-case |accumulator| per layer over the admitted input domain.
  const std::vector<std::int64_t>& accumulator_bounds() const {
    return acc_bounds_;
  }

  /// Layer shapes as GEMM (m, k, n) triples for batch size m — handed to
  /// the bitwise kernel harness so the deployed shapes are exactly what
  /// gets checked at admission time.
  std::vector<linalg::QuantShape> gemm_shapes(std::size_t batch) const;

  /// Reusable buffers: ping-pong activation matrices + the accumulator
  /// plane. One scratch per worker; allocation-free after warm-up.
  struct Scratch {
    linalg::Int32Matrix act_a;
    linalg::Int32Matrix act_b;
    std::vector<std::int64_t> acc;
  };

  /// Saturating round-to-nearest conversion into frac_bits fixed point:
  /// clamps to +/-input_limit first, so any real input maps into the
  /// domain the overflow analysis covered. NaN maps to 0 (then the
  /// shield judges the output like any other).
  std::int64_t to_fixed(double x) const;
  double from_fixed(std::int64_t q) const;

  /// Batched exact forward: inputs as packed int32 rows (already in
  /// fixed point, |x| <= input_limit_fixed), outputs row-major
  /// batch x output_size in frac_bits format.
  void forward_fixed_batch(const linalg::Int32Matrix& inputs,
                           Scratch& scratch,
                           std::vector<std::int64_t>& out) const;

  /// Convenience wrapper over int64 samples (each must already lie in
  /// the admitted domain).
  std::vector<std::vector<std::int64_t>> forward_fixed_batch(
      const std::vector<std::vector<std::int64_t>>& inputs) const;

  /// Scalar forward over the packed storage; bitwise identical to both
  /// the batched path and QuantizedNetwork::forward_fixed.
  std::vector<std::int64_t> forward_fixed(
      const std::vector<std::int64_t>& input) const;

  /// Serving entry: real-valued scenes (one per row) are saturating-
  /// quantized, pushed through the batched integer forward, and the raw
  /// outputs de-quantized into `raw` (batch x output_size). The fixed
  /// outputs land in scratch.acc (row-major) for bitwise replay checks.
  void forward_real_batch(const linalg::Matrix& scenes, Scratch& scratch,
                          linalg::Matrix& raw) const;

  /// Reconstructs the vector-of-vectors form (exact round trip).
  QuantizedNetwork unpack() const;

 private:
  struct PackedLayer {
    linalg::Int16Matrix weights;       // out x in, frac_bits format
    std::vector<std::int64_t> biases;  // 2*frac_bits format
    Activation activation = Activation::kIdentity;
  };

  int frac_bits_;
  double input_limit_;
  std::int64_t input_limit_fixed_;
  linalg::KernelBackend kernel_backend_;
  std::vector<PackedLayer> layers_;
  std::vector<std::int64_t> acc_bounds_;
};

}  // namespace safenn::nn
