// Activation functions.
//
// The paper's MC/DC argument (Table I / Sec. II) contrasts smooth
// activations (atan: no branches, MC/DC trivially satisfiable with one
// test) against ReLU (one if-then-else per neuron, exponentially many
// branch combinations). We therefore carry per-activation metadata:
// whether the function is piecewise-linear and how many branches a
// neuron contributes.
#pragma once

#include <string>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace safenn::nn {

enum class Activation {
  kIdentity,
  kRelu,
  kTanh,
  kAtan,     // tan^-1, the smooth activation named in the paper
  kSigmoid,
};

/// Applies the activation element-wise.
double activate(Activation a, double x);
linalg::Vector activate(Activation a, const linalg::Vector& x);
/// Batched variant (one sample per row); `out` is resized and its storage
/// reused across calls. The activation dispatch is hoisted out of the
/// element loop. The kSimd backend vectorizes ReLU explicitly (bitwise
/// equal to the scalar loop — max with zero does not reassociate);
/// smooth activations run the same scalar libm loops on both backends.
void activate(Activation a, const linalg::Matrix& z, linalg::Matrix& out,
              linalg::KernelBackend backend =
                  linalg::KernelBackend::kReference);

/// Derivative with respect to the pre-activation value.
double activate_derivative(Activation a, double x);
linalg::Vector activate_derivative(Activation a, const linalg::Vector& x);
void activate_derivative(Activation a, const linalg::Matrix& z,
                         linalg::Matrix& out);

/// True for activations that are piecewise linear (ReLU, identity); these
/// admit exact MILP encodings. Smooth activations are verified through
/// interval abstraction only.
bool is_piecewise_linear(Activation a);

/// Number of decision branches a single neuron with this activation
/// contributes to MC/DC analysis (0 for smooth/identity, 1 for ReLU).
int branch_count(Activation a);

std::string to_string(Activation a);
Activation activation_from_string(const std::string& name);

}  // namespace safenn::nn
