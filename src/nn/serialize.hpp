// Plain-text (de)serialization of networks.
//
// Certification workflows must pin the exact artifact that was verified;
// a human-diffable text format makes the verified network auditable.
#pragma once

#include <iosfwd>
#include <string>

#include "nn/network.hpp"

namespace safenn::nn {

/// Writes `net` in the "safenn-network v1" text format.
void save_network(std::ostream& os, const Network& net);

/// Parses a network written by save_network. Throws safenn::Error on any
/// malformed input.
Network load_network(std::istream& is);

/// File-path conveniences.
void save_network_file(const std::string& path, const Network& net);
Network load_network_file(const std::string& path);

}  // namespace safenn::nn
