// Plain-text (de)serialization of networks.
//
// Certification workflows must pin the exact artifact that was verified;
// a human-diffable text format makes the verified network auditable. The
// v2 format additionally pins the payload with a content checksum so a
// corrupted or truncated file can never yield a (partial) network: the
// loader validates the checksum before parsing a single parameter.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "common/error.hpp"
#include "nn/network.hpp"

namespace safenn::nn {

/// Typed serialization failure. Derives from safenn::Error so existing
/// catch sites keep working; `kind()` lets callers (registry, tests)
/// distinguish corruption from version skew from plain bad input.
class SerializeError : public Error {
 public:
  enum class Kind {
    kBadMagic,            // not a safenn-network file at all
    kUnsupportedVersion,  // recognized magic, unknown format version
    kTruncated,           // payload ends before the checksum line
    kChecksumMismatch,    // payload bytes do not hash to the recorded sum
    kMalformed,           // checksum ok but a field fails to parse
    kIo,                  // underlying stream/file failure
  };

  SerializeError(Kind kind, const std::string& what)
      : Error(what), kind_(kind) {}

  Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

const char* to_string(SerializeError::Kind kind);

/// Writes `net` in the "safenn-network v2" text format: a version header,
/// the layer payload, and a trailing `checksum <16-hex>` line (FNV-1a 64
/// over the payload bytes between header and checksum line).
void save_network(std::ostream& os, const Network& net);

/// Parses a network written by save_network. Throws SerializeError on any
/// malformed, truncated, corrupted, or wrong-version input; a network is
/// returned only after the whole payload has been checksum-verified and
/// parsed, so no partial network can ever escape.
Network load_network(std::istream& is);

/// In-memory conveniences (the registry embeds network text verbatim).
std::string network_to_string(const Network& net);
Network network_from_string(const std::string& text);

/// Content checksum of `net`: FNV-1a 64 over the exact v2 payload bytes —
/// the same value save_network records in its trailing `checksum` line.
/// Two networks share a checksum iff they serialize identically, which is
/// what makes it a cache/identity key (verification cache, registry).
std::uint64_t network_checksum(const Network& net);

/// File-path conveniences.
void save_network_file(const std::string& path, const Network& net);
Network load_network_file(const std::string& path);

}  // namespace safenn::nn
